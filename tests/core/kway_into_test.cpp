// kway_partition_into (the server's warm-buffer entry point) and
// cooperative cancellation at level boundaries.
//
// The contract under test: the _into variant is byte-identical to
// kway_partition for every (graph, k, seed) — scratch reuse, workspace
// injection, and earlier calls with other shapes must never leak into a
// result — and a CancelToken aborts the pipeline with CancelledError while
// an unexpired token is unobservable.
#include <gtest/gtest.h>

#include <chrono>
#include <vector>

#include "core/cancel.hpp"
#include "core/kway.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"
#include "support/workspace.hpp"

namespace mgp {
namespace {

TEST(KwayIntoTest, MatchesKwayPartition) {
  const Graph g = fem2d_tri(20, 20, 4);
  MultilevelConfig cfg;
  KwayScratch scratch;
  std::vector<part_t> part;
  for (part_t k : {part_t{2}, part_t{3}, part_t{5}, part_t{8}}) {
    for (std::uint64_t seed : {1ULL, 7ULL, 1995ULL}) {
      Rng r1(seed), r2(seed);
      KwayResult expect = kway_partition(g, k, cfg, r1);
      ewt_t cut = kway_partition_into(g, k, cfg, r2, scratch, nullptr, part);
      EXPECT_EQ(part, expect.part) << "k=" << k << " seed=" << seed;
      EXPECT_EQ(cut, expect.edge_cut) << "k=" << k << " seed=" << seed;
    }
  }
}

TEST(KwayIntoTest, ScratchCarriesNoStateAcrossShapes) {
  // A big run, then a smaller graph, then the big run again: the third call
  // must reproduce the first bit for bit despite the warm (and now
  // differently-sized) scratch.
  const Graph big = grid2d(30, 30);
  const Graph small = grid2d(7, 5);
  MultilevelConfig cfg;
  KwayScratch scratch;
  std::vector<part_t> part;

  Rng r1(42);
  ewt_t first = kway_partition_into(big, 8, cfg, r1, scratch, nullptr, part);
  std::vector<part_t> first_part = part;

  Rng r2(9);
  kway_partition_into(small, 3, cfg, r2, scratch, nullptr, part);

  Rng r3(42);
  ewt_t third = kway_partition_into(big, 8, cfg, r3, scratch, nullptr, part);
  EXPECT_EQ(part, first_part);
  EXPECT_EQ(third, first);
}

TEST(KwayIntoTest, WorkspaceInjectionDoesNotChangeResults) {
  const Graph g = fem2d_tri(15, 15, 6);
  MultilevelConfig cfg;
  KwayScratch s1, s2;
  std::vector<part_t> p1, p2;
  BisectWorkspace ws;
  Rng r1(5), r2(5);
  ewt_t c1 = kway_partition_into(g, 6, cfg, r1, s1, nullptr, p1);
  ewt_t c2 = kway_partition_into(g, 6, cfg, r2, s2, &ws, p2);
  EXPECT_EQ(p1, p2);
  EXPECT_EQ(c1, c2);
}

TEST(KwayCancelTest, PreCancelledTokenAborts) {
  const Graph g = grid2d(20, 20);
  CancelToken token;
  token.cancel();
  MultilevelConfig cfg;
  cfg.cancel = &token;
  Rng rng(1);
  EXPECT_THROW(kway_partition(g, 4, cfg, rng), CancelledError);

  KwayScratch scratch;
  std::vector<part_t> part;
  Rng rng2(1);
  EXPECT_THROW(kway_partition_into(g, 4, cfg, rng2, scratch, nullptr, part),
               CancelledError);
}

TEST(KwayCancelTest, PassedDeadlineAborts) {
  const Graph g = grid2d(20, 20);
  CancelToken token;
  token.set_deadline(std::chrono::steady_clock::now() -
                     std::chrono::milliseconds(1));
  MultilevelConfig cfg;
  cfg.cancel = &token;
  Rng rng(1);
  EXPECT_THROW(kway_partition(g, 4, cfg, rng), CancelledError);
}

TEST(KwayCancelTest, UnexpiredTokenIsUnobservable) {
  const Graph g = fem2d_tri(18, 18, 5);
  CancelToken token;
  token.set_deadline(std::chrono::steady_clock::now() + std::chrono::hours(1));
  MultilevelConfig plain, timed;
  timed.cancel = &token;
  Rng r1(13), r2(13);
  KwayResult a = kway_partition(g, 6, plain, r1);
  KwayResult b = kway_partition(g, 6, timed, r2);
  EXPECT_EQ(a.part, b.part);
  EXPECT_EQ(a.edge_cut, b.edge_cut);
}

TEST(KwayCancelTest, TokenResetRearms) {
  const Graph g = grid2d(12, 12);
  CancelToken token;
  token.cancel();
  EXPECT_TRUE(token.expired());
  token.reset();
  EXPECT_FALSE(token.expired());
  MultilevelConfig cfg;
  cfg.cancel = &token;
  Rng rng(2);
  KwayResult res = kway_partition(g, 4, cfg, rng);  // must run to completion
  EXPECT_EQ(res.part.size(), static_cast<std::size_t>(g.num_vertices()));
}

}  // namespace
}  // namespace mgp
