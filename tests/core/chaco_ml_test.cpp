#include "core/chaco_ml.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "metrics/partition_metrics.hpp"

namespace mgp {
namespace {

TEST(ChacoMlTest, ConfigMatchesPaperDescription) {
  MultilevelConfig cfg = MultilevelConfig::chaco_ml();
  EXPECT_EQ(cfg.matching, MatchingScheme::kRandom);
  EXPECT_EQ(cfg.initpart, InitPartScheme::kSpectral);
  EXPECT_EQ(cfg.refine, RefinePolicy::kKLR);
  EXPECT_EQ(cfg.refine_period, 2);
}

TEST(ChacoMlTest, BisectionIsValid) {
  Graph g = fem2d_tri(30, 30, 2);
  Rng rng(1);
  BisectResult r = chaco_ml_bisect(g, g.total_vertex_weight() / 2, rng);
  EXPECT_EQ(check_bisection(g, r.bisection), "");
  EXPECT_LT(r.bisection.cut, g.num_edges() / 2);
}

TEST(ChacoMlTest, KwayPartitionIsValid) {
  Graph g = fem2d_tri(24, 24, 4);
  Rng rng(2);
  KwayResult r = chaco_ml_partition(g, 8, rng);
  EXPECT_EQ(check_partition(g, r.part, 8), "");
  PartitionQuality q = evaluate_partition(g, r.part, 8);
  EXPECT_LT(q.imbalance, 1.25);
}

TEST(ChacoMlTest, DeterministicGivenSeed) {
  Graph g = fem2d_tri(20, 20, 5);
  Rng r1(3), r2(3);
  KwayResult a = chaco_ml_partition(g, 4, r1);
  KwayResult b = chaco_ml_partition(g, 4, r2);
  EXPECT_EQ(a.part, b.part);
}

}  // namespace
}  // namespace mgp
