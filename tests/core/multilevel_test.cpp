#include "core/multilevel.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "graph/generators.hpp"

namespace mgp {
namespace {

TEST(MultilevelTest, BisectsGridValidAndBalanced) {
  Graph g = grid2d(40, 40);
  Rng rng(1);
  MultilevelConfig cfg;
  BisectResult r = multilevel_bisect(g, 800, cfg, rng);
  EXPECT_EQ(check_bisection(g, r.bisection), "");
  EXPECT_GT(r.levels, 2);
  EXPECT_LE(r.coarsest_n, cfg.coarsen_to);
  // Balance: within one coarse multinode of the target.
  EXPECT_NEAR(static_cast<double>(r.bisection.part_weight[0]), 800.0, 810.0 * 0.1);
  // 40x40 grid optimal cut is 40; multilevel should be in its vicinity.
  EXPECT_LE(r.bisection.cut, 80);
}

TEST(MultilevelTest, TinyGraphSkipsCoarsening) {
  Graph g = grid2d(5, 5);
  Rng rng(2);
  MultilevelConfig cfg;
  BisectResult r = multilevel_bisect(g, 12, cfg, rng);
  EXPECT_EQ(r.levels, 0);
  EXPECT_EQ(r.coarsest_n, 25);
  EXPECT_EQ(check_bisection(g, r.bisection), "");
}

TEST(MultilevelTest, RefinementImprovesOverNone) {
  Graph g = fem2d_tri(35, 35, 3);
  MultilevelConfig with;
  MultilevelConfig without;
  without.refine = RefinePolicy::kNone;
  ewt_t cut_with = 0, cut_without = 0;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    Rng r1(seed), r2(seed);
    cut_with += multilevel_bisect(g, g.total_vertex_weight() / 2, with, r1).bisection.cut;
    cut_without +=
        multilevel_bisect(g, g.total_vertex_weight() / 2, without, r2).bisection.cut;
  }
  EXPECT_LT(cut_with, cut_without);
}

TEST(MultilevelTest, TimersArePopulated) {
  Graph g = fem2d_tri(30, 30, 4);
  Rng rng(5);
  MultilevelConfig cfg;
  PhaseTimers timers;
  multilevel_bisect(g, g.total_vertex_weight() / 2, cfg, rng, &timers);
  EXPECT_GT(timers.get(PhaseTimers::kCoarsen), 0.0);
  EXPECT_GT(timers.get(PhaseTimers::kInitPart), 0.0);
  EXPECT_GT(timers.get(PhaseTimers::kRefine), 0.0);
  EXPECT_GT(timers.get(PhaseTimers::kProject), 0.0);
}

TEST(MultilevelTest, DeterministicGivenSeed) {
  Graph g = fem2d_tri(25, 25, 6);
  MultilevelConfig cfg;
  Rng r1(7), r2(7);
  BisectResult a = multilevel_bisect(g, g.total_vertex_weight() / 2, cfg, r1);
  BisectResult b = multilevel_bisect(g, g.total_vertex_weight() / 2, cfg, r2);
  EXPECT_EQ(a.bisection.side, b.bisection.side);
  EXPECT_EQ(a.bisection.cut, b.bisection.cut);
}

using CfgParam = std::tuple<MatchingScheme, InitPartScheme, RefinePolicy>;

class ConfigMatrixTest : public ::testing::TestWithParam<CfgParam> {};

TEST_P(ConfigMatrixTest, EveryPhaseCombinationProducesValidBisection) {
  auto [matching, initpart, refine] = GetParam();
  Graph g = fem2d_tri(20, 20, 8);
  MultilevelConfig cfg;
  cfg.matching = matching;
  cfg.initpart = initpart;
  cfg.refine = refine;
  Rng rng(11);
  BisectResult r = multilevel_bisect(g, g.total_vertex_weight() / 2, cfg, rng);
  EXPECT_EQ(check_bisection(g, r.bisection), "");
  EXPECT_GT(r.bisection.part_weight[0], 0);
  EXPECT_GT(r.bisection.part_weight[1], 0);
  // Any sane multilevel bisection of this mesh stays below the trivial
  // interleave cut.
  EXPECT_LT(r.bisection.cut, g.num_edges() / 2);
}

INSTANTIATE_TEST_SUITE_P(
    AllPhaseChoices, ConfigMatrixTest,
    ::testing::Combine(
        ::testing::Values(MatchingScheme::kRandom, MatchingScheme::kHeavyEdge,
                          MatchingScheme::kLightEdge, MatchingScheme::kHeavyClique),
        ::testing::Values(InitPartScheme::kGGP, InitPartScheme::kGGGP,
                          InitPartScheme::kSpectral),
        ::testing::Values(RefinePolicy::kNone, RefinePolicy::kGR, RefinePolicy::kKLR,
                          RefinePolicy::kBGR, RefinePolicy::kBKLR,
                          RefinePolicy::kBKLGR)),
    [](const ::testing::TestParamInfo<CfgParam>& info) {
      return to_string(std::get<0>(info.param)) + "_" +
             to_string(std::get<1>(info.param)) + "_" +
             to_string(std::get<2>(info.param));
    });

TEST(MultilevelTest, UnevenTargetRespected) {
  Graph g = grid2d(30, 30);
  Rng rng(13);
  MultilevelConfig cfg;
  const vwt_t target0 = 300;  // one third
  BisectResult r = multilevel_bisect(g, target0, cfg, rng);
  EXPECT_NEAR(static_cast<double>(r.bisection.part_weight[0]),
              static_cast<double>(target0), 0.15 * 900);
}

TEST(MultilevelTest, DescribeNamesConfig) {
  MultilevelConfig cfg;
  EXPECT_EQ(describe(cfg), "HEM+GGGP+BKLGR");
  EXPECT_EQ(describe(MultilevelConfig::chaco_ml()), "RM+SBP+KLR(every 2)");
}

}  // namespace
}  // namespace mgp
