#include "core/kway.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "metrics/partition_metrics.hpp"

namespace mgp {
namespace {

class KwayKTest : public ::testing::TestWithParam<part_t> {};

TEST_P(KwayKTest, PartitionIsValidBalancedAndUsesAllParts) {
  const part_t k = GetParam();
  Graph g = fem2d_tri(28, 28, 3);
  Rng rng(1);
  MultilevelConfig cfg;
  KwayResult r = kway_partition(g, k, cfg, rng);
  EXPECT_EQ(check_partition(g, r.part, k), "");
  PartitionQuality q = evaluate_partition(g, r.part, k);
  EXPECT_LT(q.imbalance, 1.25);
  EXPECT_GT(q.min_part_weight, 0);  // every part non-empty
  EXPECT_EQ(q.edge_cut, r.edge_cut);
}

INSTANTIATE_TEST_SUITE_P(Ks, KwayKTest, ::testing::Values(2, 3, 4, 5, 7, 8, 16, 32));

TEST(KwayTest, KOneIsTrivial) {
  Graph g = grid2d(8, 8);
  Rng rng(2);
  MultilevelConfig cfg;
  KwayResult r = kway_partition(g, 1, cfg, rng);
  EXPECT_EQ(r.edge_cut, 0);
  for (part_t p : r.part) EXPECT_EQ(p, 0);
}

TEST(KwayTest, MoreVerticesThanPartsDegenerate) {
  Graph g = path_graph(5);
  Rng rng(3);
  MultilevelConfig cfg;
  KwayResult r = kway_partition(g, 8, cfg, rng);
  EXPECT_EQ(check_partition(g, r.part, 8), "");
}

TEST(KwayTest, CutGrowsWithK) {
  Graph g = fem2d_tri(30, 30, 5);
  Rng r1(4), r2(4);
  MultilevelConfig cfg;
  KwayResult k4 = kway_partition(g, 4, cfg, r1);
  KwayResult k32 = kway_partition(g, 32, cfg, r2);
  EXPECT_LT(k4.edge_cut, k32.edge_cut);
}

TEST(KwayTest, ComputeKwayCutBruteForceAgreement) {
  Graph g = fem2d_tri(10, 10, 6);
  Rng rng(5);
  std::vector<part_t> part(static_cast<std::size_t>(g.num_vertices()));
  for (auto& p : part) p = static_cast<part_t>(rng.next_below(4));
  ewt_t brute = 0;
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    auto nbrs = g.neighbors(u);
    auto wgts = g.edge_weights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] > u &&
          part[static_cast<std::size_t>(u)] != part[static_cast<std::size_t>(nbrs[i])]) {
        brute += wgts[i];
      }
    }
  }
  EXPECT_EQ(compute_kway_cut(g, part), brute);
}

TEST(KwayTest, CustomBisectorIsUsed) {
  // A bisector that splits by vertex id parity produces a predictable part
  // structure through the recursion.
  Graph g = path_graph(16);
  Bisector even_odd = [](const Graph& sub, vwt_t, Rng&) {
    std::vector<part_t> side(static_cast<std::size_t>(sub.num_vertices()));
    for (vid_t v = 0; v < sub.num_vertices(); ++v) {
      side[static_cast<std::size_t>(v)] = v % 2;
    }
    return make_bisection(sub, std::move(side));
  };
  Rng rng(6);
  KwayResult r = recursive_bisection(g, 4, even_odd, rng);
  EXPECT_EQ(check_partition(g, r.part, 4), "");
}

TEST(KwayTest, TimersAccumulateAcrossBisections) {
  Graph g = fem2d_tri(25, 25, 7);
  Rng rng(7);
  MultilevelConfig cfg;
  PhaseTimers timers;
  kway_partition(g, 8, cfg, rng, &timers);
  EXPECT_GT(timers.get(PhaseTimers::kCoarsen), 0.0);
  EXPECT_GT(timers.utime(), 0.0);
}

TEST(KwayTest, DeterministicGivenSeed) {
  Graph g = fem2d_tri(20, 20, 8);
  MultilevelConfig cfg;
  Rng r1(9), r2(9);
  KwayResult a = kway_partition(g, 8, cfg, r1);
  KwayResult b = kway_partition(g, 8, cfg, r2);
  EXPECT_EQ(a.part, b.part);
}

TEST(KwayTest, RngConsumedExactlyOncePerRun) {
  // The whole recursion is seeded by a single next_u64() draw — every
  // subproblem derives its stream from (that draw, tree path).  This is
  // what makes results reproducible from Config::seed alone and invariant
  // under thread count; pin it so a hidden extra draw can't sneak in.
  Graph g = path_graph(32);
  Bisector halves = [](const Graph& sub, vwt_t, Rng&) {
    std::vector<part_t> side(static_cast<std::size_t>(sub.num_vertices()));
    for (vid_t v = 0; v < sub.num_vertices(); ++v) {
      side[static_cast<std::size_t>(v)] = v < sub.num_vertices() / 2 ? 0 : 1;
    }
    return make_bisection(sub, std::move(side));
  };
  Rng used(11), shadow(11);
  recursive_bisection(g, 8, halves, used);
  shadow.next_u64();
  EXPECT_EQ(used.next_u64(), shadow.next_u64());
}

TEST(KwayTest, ParallelEqualsSequentialForNonHemSchemes) {
  // For matching schemes with no parallel variant the pipeline runs the
  // same algorithms with and without a pool, so threads = 1 and
  // threads = 4 must agree bit for bit.
  Graph g = fem2d_tri(26, 26, 15);
  for (MatchingScheme scheme :
       {MatchingScheme::kRandom, MatchingScheme::kLightEdge,
        MatchingScheme::kHeavyClique}) {
    MultilevelConfig cfg;
    cfg.matching = scheme;
    cfg.threads = 1;
    Rng r1(21);
    KwayResult seq = kway_partition(g, 8, cfg, r1);
    cfg.threads = 4;
    Rng r2(21);
    KwayResult par = kway_partition(g, 8, cfg, r2);
    EXPECT_EQ(seq.part, par.part) << to_string(scheme);
    EXPECT_EQ(seq.edge_cut, par.edge_cut) << to_string(scheme);
  }
}

TEST(KwayTest, PinnedPartitionForFixedSeed) {
  // Golden regression: the exact partition for Rng(12345) on a 12x12 grid
  // (large enough to coarsen), k = 4, paper-default config, sequential
  // path.  Any change to RNG stream discipline, subproblem seeding, or
  // phase draw order shows up here as a diff rather than as a silent
  // reproducibility break.
  Graph g = grid2d(12, 12);
  MultilevelConfig cfg;
  Rng rng(12345);
  KwayResult r = kway_partition(g, 4, cfg, rng);
  EXPECT_EQ(check_partition(g, r.part, 4), "");
  const std::vector<part_t> expected = {
      1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0,
      1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0,
      1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0, 0,
      2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2,
      2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3,
      3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3, 3};
  EXPECT_EQ(r.part, expected);
  EXPECT_EQ(r.edge_cut, 30);
  // And the parallel pipeline's own golden, equally pinned (it legitimately
  // differs from the sequential one: proposal HEM replaces sequential HEM).
  ThreadPool pool(4);
  Rng prng(12345);
  KwayResult pr = kway_partition(g, 4, cfg, prng, nullptr, &pool);
  EXPECT_EQ(check_partition(g, pr.part, 4), "");
  ThreadPool pool1(1);
  Rng prng1(12345);
  KwayResult pr1 = kway_partition(g, 4, cfg, prng1, nullptr, &pool1);
  EXPECT_EQ(pr.part, pr1.part);
}

TEST(KwayTest, GridFourWayNearOptimal) {
  // 20x20 grid into 4 quadrants: optimal cut is 2*20 = 40.
  Graph g = grid2d(20, 20);
  Rng rng(10);
  MultilevelConfig cfg;
  KwayResult r = kway_partition(g, 4, cfg, rng);
  EXPECT_LE(r.edge_cut, 80);  // within 2x of optimal
}

}  // namespace
}  // namespace mgp
