#include "core/kway_direct.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "graph/generators.hpp"
#include "metrics/partition_metrics.hpp"
#include "support/thread_pool.hpp"
#include "support/workspace.hpp"

namespace mgp {
namespace {

class KwayDirectKTest : public ::testing::TestWithParam<part_t> {};

TEST_P(KwayDirectKTest, ValidBalancedNonEmptyParts) {
  const part_t k = GetParam();
  Graph g = fem2d_tri(30, 30, 3);
  Rng rng(1);
  KwayDirectConfig cfg;
  KwayResult r = kway_partition_direct(g, k, cfg, rng);
  EXPECT_EQ(check_partition(g, r.part, k), "");
  PartitionQuality q = evaluate_partition(g, r.part, k);
  EXPECT_LT(q.imbalance, 1.3);
  EXPECT_GT(q.min_part_weight, 0);
  EXPECT_EQ(q.edge_cut, r.edge_cut);
}

INSTANTIATE_TEST_SUITE_P(Ks, KwayDirectKTest, ::testing::Values(2, 4, 8, 16, 32, 64));

TEST(KwayDirectTest, CutComparableToRecursiveBisection) {
  Graph g = fem3d_tet(12, 12, 12, 5);
  const part_t k = 32;
  Rng r1(7), r2(7);
  KwayDirectConfig direct_cfg;
  MultilevelConfig rb_cfg;
  KwayResult direct = kway_partition_direct(g, k, direct_cfg, r1);
  KwayResult rb = kway_partition(g, k, rb_cfg, r2);
  // Same quality class: within 35% either way.
  EXPECT_LT(static_cast<double>(direct.edge_cut),
            1.35 * static_cast<double>(rb.edge_cut));
  EXPECT_LT(static_cast<double>(rb.edge_cut),
            1.35 * static_cast<double>(direct.edge_cut));
}

TEST(KwayDirectTest, GreedyRefineNeverWorsensCut) {
  Graph g = fem2d_tri(20, 20, 9);
  Rng rng(3);
  const part_t k = 6;
  std::vector<part_t> part(static_cast<std::size_t>(g.num_vertices()));
  for (auto& p : part) p = static_cast<part_t>(rng.next_below(k));
  const ewt_t before = compute_kway_cut(g, part);
  const vwt_t limit = g.total_vertex_weight() / k + g.total_vertex_weight() / 10;
  KwayRefineStats s = kway_greedy_refine(g, part, k, limit, 0, 8, rng);
  const ewt_t after = compute_kway_cut(g, part);
  EXPECT_LE(after, before);
  EXPECT_EQ(before - after, s.cut_reduction);
  EXPECT_GE(s.passes, 1);
}

TEST(KwayDirectTest, GreedyRefineRespectsWeightCeiling) {
  Graph g = grid2d(12, 12);
  Rng rng(4);
  const part_t k = 4;
  std::vector<part_t> part(144);
  for (vid_t v = 0; v < 144; ++v) part[static_cast<std::size_t>(v)] = v % k;
  const vwt_t limit = 40;  // ideal 36, slack 4
  kway_greedy_refine(g, part, k, limit, 0, 8, rng);
  std::vector<vwt_t> pwgts(static_cast<std::size_t>(k), 0);
  for (vid_t v = 0; v < 144; ++v) {
    pwgts[static_cast<std::size_t>(part[static_cast<std::size_t>(v)])] += 1;
  }
  for (vwt_t w : pwgts) EXPECT_LE(w, limit);
}

TEST(KwayDirectTest, RefineFixesPlantedNoise) {
  // Perfect quadrant partition with 5% random relabels: greedy refinement
  // should recover (nearly) the planted cut.
  Graph g = grid2d(20, 20);
  std::vector<part_t> part(400);
  for (vid_t v = 0; v < 400; ++v) {
    vid_t x = v % 20, y = v / 20;
    part[static_cast<std::size_t>(v)] = static_cast<part_t>((y / 10) * 2 + (x / 10));
  }
  const ewt_t planted = compute_kway_cut(g, part);
  Rng noise(5);
  for (int i = 0; i < 20; ++i) {
    part[static_cast<std::size_t>(noise.next_vid(400))] =
        static_cast<part_t>(noise.next_below(4));
  }
  ASSERT_GT(compute_kway_cut(g, part), planted);
  Rng rng(6);
  kway_greedy_refine(g, part, 4, 110, 1, 8, rng);
  EXPECT_LE(compute_kway_cut(g, part), planted + 10);
}

TEST(KwayDirectTest, DeterministicGivenSeed) {
  Graph g = fem2d_tri(22, 22, 11);
  KwayDirectConfig cfg;
  Rng r1(13), r2(13);
  KwayResult a = kway_partition_direct(g, 16, cfg, r1);
  KwayResult b = kway_partition_direct(g, 16, cfg, r2);
  EXPECT_EQ(a.part, b.part);
}

TEST(KwayDirectTest, TwoWayNeverEmptiesAPart) {
  // Regression: the greedy refiner once applied a min-part floor only for
  // k > 2, so on a star graph a 2-way direct call could drain one side to
  // zero (every leaf has positive gain toward the hub's part).  The uniform
  // floor must keep both parts non-empty.
  Graph g = star_graph(16);
  KwayDirectConfig cfg;
  cfg.coarsen_to_floor = 2;
  cfg.coarse_vertices_per_part = 1;
  for (std::uint64_t seed : {1ull, 7ull, 31337ull}) {
    Rng rng(seed);
    KwayResult r = kway_partition_direct(g, 2, cfg, rng);
    ASSERT_EQ(check_partition(g, r.part, 2), "") << "seed=" << seed;
    std::vector<vwt_t> pwgts(2, 0);
    for (std::size_t v = 0; v < r.part.size(); ++v) {
      pwgts[static_cast<std::size_t>(r.part[v])] += g.vwgt()[v];
    }
    EXPECT_GT(pwgts[0], 0) << "seed=" << seed;
    EXPECT_GT(pwgts[1], 0) << "seed=" << seed;
  }
}

TEST(KwayDirectTest, ConfigValidationRejectsNonsense) {
  auto expect_throws = [](KwayDirectConfig cfg, part_t k = 4) {
    EXPECT_THROW(cfg.validate(k), std::invalid_argument);
  };
  expect_throws(KwayDirectConfig{}, 0);  // k < 1
  {
    KwayDirectConfig c;
    c.coarse_vertices_per_part = 0;
    expect_throws(c);
  }
  {
    KwayDirectConfig c;
    c.coarsen_to_floor = 0;
    expect_throws(c);
  }
  {
    KwayDirectConfig c;
    c.min_shrink_factor = 0.0;
    expect_throws(c);
    c.min_shrink_factor = 1.5;
    expect_throws(c);
  }
  {
    KwayDirectConfig c;
    c.max_refine_passes = 0;
    expect_throws(c);
  }
  {
    KwayDirectConfig c;
    c.imbalance = -0.1;
    expect_throws(c);
  }
  {
    // The initial-partition config derives from `base`; a contradictory
    // override (base.coarsen_to = 0) is rejected rather than silently used.
    KwayDirectConfig c;
    c.base.coarsen_to = 0;
    expect_throws(c);
  }
  EXPECT_NO_THROW(KwayDirectConfig{}.validate(4));
}

TEST(KwayDirectTest, IntoMatchesWrapper) {
  // The workspace-threaded entry point is the wrapper's implementation:
  // same bytes, warm or cold, with or without a pool.
  Graph g = fem2d_tri(24, 24, 5);
  KwayDirectConfig cfg;
  Rng r1(17);
  KwayResult wrapped = kway_partition_direct(g, 12, cfg, r1);

  KwayDirectWorkspace dws;
  BisectWorkspace bws;
  std::vector<part_t> part;
  for (int repeat = 0; repeat < 3; ++repeat) {
    Rng r2(17);
    const ewt_t cut = kway_partition_direct_into(g, 12, cfg, r2, dws, &bws, part);
    EXPECT_EQ(cut, wrapped.edge_cut) << "repeat=" << repeat;
    EXPECT_EQ(part, wrapped.part) << "repeat=" << repeat;
  }

  // Pooled runs engage parallel HEM, so compare against the pooled wrapper
  // (cfg.base.threads > 1 makes it build its own pool); any two pool sizes
  // are byte-identical, so 2 here vs the wrapper's 4 still must match.
  KwayDirectConfig pooled_cfg = cfg;
  pooled_cfg.base.threads = 4;
  Rng r3(17);
  KwayResult pooled_wrapped = kway_partition_direct(g, 12, pooled_cfg, r3);
  ThreadPool pool(2);
  Rng r4(17);
  const ewt_t pooled =
      kway_partition_direct_into(g, 12, cfg, r4, dws, &bws, part, nullptr, &pool);
  EXPECT_EQ(pooled, pooled_wrapped.edge_cut);
  EXPECT_EQ(part, pooled_wrapped.part);
}

TEST(KwayDirectTest, KOneTrivial) {
  Graph g = grid2d(6, 6);
  Rng rng(1);
  KwayDirectConfig cfg;
  KwayResult r = kway_partition_direct(g, 1, cfg, rng);
  EXPECT_EQ(r.edge_cut, 0);
}

TEST(KwayDirectTest, TimersPopulated) {
  Graph g = fem2d_tri(25, 25, 15);
  Rng rng(2);
  KwayDirectConfig cfg;
  PhaseTimers timers;
  kway_partition_direct(g, 8, cfg, rng, &timers);
  EXPECT_GT(timers.get(PhaseTimers::kCoarsen), 0.0);
  EXPECT_GT(timers.get(PhaseTimers::kInitPart), 0.0);
  EXPECT_GT(timers.get(PhaseTimers::kRefine), 0.0);
}

}  // namespace
}  // namespace mgp
