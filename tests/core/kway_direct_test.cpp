#include "core/kway_direct.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "metrics/partition_metrics.hpp"

namespace mgp {
namespace {

class KwayDirectKTest : public ::testing::TestWithParam<part_t> {};

TEST_P(KwayDirectKTest, ValidBalancedNonEmptyParts) {
  const part_t k = GetParam();
  Graph g = fem2d_tri(30, 30, 3);
  Rng rng(1);
  KwayDirectConfig cfg;
  KwayResult r = kway_partition_direct(g, k, cfg, rng);
  EXPECT_EQ(check_partition(g, r.part, k), "");
  PartitionQuality q = evaluate_partition(g, r.part, k);
  EXPECT_LT(q.imbalance, 1.3);
  EXPECT_GT(q.min_part_weight, 0);
  EXPECT_EQ(q.edge_cut, r.edge_cut);
}

INSTANTIATE_TEST_SUITE_P(Ks, KwayDirectKTest, ::testing::Values(2, 4, 8, 16, 32, 64));

TEST(KwayDirectTest, CutComparableToRecursiveBisection) {
  Graph g = fem3d_tet(12, 12, 12, 5);
  const part_t k = 32;
  Rng r1(7), r2(7);
  KwayDirectConfig direct_cfg;
  MultilevelConfig rb_cfg;
  KwayResult direct = kway_partition_direct(g, k, direct_cfg, r1);
  KwayResult rb = kway_partition(g, k, rb_cfg, r2);
  // Same quality class: within 35% either way.
  EXPECT_LT(static_cast<double>(direct.edge_cut), 1.35 * static_cast<double>(rb.edge_cut));
  EXPECT_LT(static_cast<double>(rb.edge_cut), 1.35 * static_cast<double>(direct.edge_cut));
}

TEST(KwayDirectTest, GreedyRefineNeverWorsensCut) {
  Graph g = fem2d_tri(20, 20, 9);
  Rng rng(3);
  const part_t k = 6;
  std::vector<part_t> part(static_cast<std::size_t>(g.num_vertices()));
  for (auto& p : part) p = static_cast<part_t>(rng.next_below(k));
  const ewt_t before = compute_kway_cut(g, part);
  const vwt_t limit = g.total_vertex_weight() / k + g.total_vertex_weight() / 10;
  KwayRefineStats s = kway_greedy_refine(g, part, k, limit, 0, 8, rng);
  const ewt_t after = compute_kway_cut(g, part);
  EXPECT_LE(after, before);
  EXPECT_EQ(before - after, s.cut_reduction);
  EXPECT_GE(s.passes, 1);
}

TEST(KwayDirectTest, GreedyRefineRespectsWeightCeiling) {
  Graph g = grid2d(12, 12);
  Rng rng(4);
  const part_t k = 4;
  std::vector<part_t> part(144);
  for (vid_t v = 0; v < 144; ++v) part[static_cast<std::size_t>(v)] = v % k;
  const vwt_t limit = 40;  // ideal 36, slack 4
  kway_greedy_refine(g, part, k, limit, 0, 8, rng);
  std::vector<vwt_t> pwgts(static_cast<std::size_t>(k), 0);
  for (vid_t v = 0; v < 144; ++v) {
    pwgts[static_cast<std::size_t>(part[static_cast<std::size_t>(v)])] += 1;
  }
  for (vwt_t w : pwgts) EXPECT_LE(w, limit);
}

TEST(KwayDirectTest, RefineFixesPlantedNoise) {
  // Perfect quadrant partition with 5% random relabels: greedy refinement
  // should recover (nearly) the planted cut.
  Graph g = grid2d(20, 20);
  std::vector<part_t> part(400);
  for (vid_t v = 0; v < 400; ++v) {
    vid_t x = v % 20, y = v / 20;
    part[static_cast<std::size_t>(v)] = static_cast<part_t>((y / 10) * 2 + (x / 10));
  }
  const ewt_t planted = compute_kway_cut(g, part);
  Rng noise(5);
  for (int i = 0; i < 20; ++i) {
    part[static_cast<std::size_t>(noise.next_vid(400))] =
        static_cast<part_t>(noise.next_below(4));
  }
  ASSERT_GT(compute_kway_cut(g, part), planted);
  Rng rng(6);
  kway_greedy_refine(g, part, 4, 110, 1, 8, rng);
  EXPECT_LE(compute_kway_cut(g, part), planted + 10);
}

TEST(KwayDirectTest, DeterministicGivenSeed) {
  Graph g = fem2d_tri(22, 22, 11);
  KwayDirectConfig cfg;
  Rng r1(13), r2(13);
  KwayResult a = kway_partition_direct(g, 16, cfg, r1);
  KwayResult b = kway_partition_direct(g, 16, cfg, r2);
  EXPECT_EQ(a.part, b.part);
}

TEST(KwayDirectTest, KOneTrivial) {
  Graph g = grid2d(6, 6);
  Rng rng(1);
  KwayDirectConfig cfg;
  KwayResult r = kway_partition_direct(g, 1, cfg, rng);
  EXPECT_EQ(r.edge_cut, 0);
}

TEST(KwayDirectTest, TimersPopulated) {
  Graph g = fem2d_tri(25, 25, 15);
  Rng rng(2);
  KwayDirectConfig cfg;
  PhaseTimers timers;
  kway_partition_direct(g, 8, cfg, rng, &timers);
  EXPECT_GT(timers.get(PhaseTimers::kCoarsen), 0.0);
  EXPECT_GT(timers.get(PhaseTimers::kInitPart), 0.0);
  EXPECT_GT(timers.get(PhaseTimers::kRefine), 0.0);
}

}  // namespace
}  // namespace mgp
