#pragma once

// Shared definition of the golden regression corpus: six generator-family
// graphs partitioned with the paper-default pipeline at pinned seeds.  Both
// the diffing test (tests/integration/golden_test.cpp) and the refresh tool
// (tests/golden/golden_refresh.cpp) include this header, so the corpus can
// only ever be defined in one place.
//
// Regenerate the pinned file with scripts/refresh_golden.sh after any
// *intentional* behavioural change; an unintentional diff is a regression.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "coarsen/strategy.hpp"
#include "core/kway.hpp"
#include "core/kway_direct.hpp"
#include "dynamic/churn.hpp"
#include "dynamic/delta.hpp"
#include "dynamic/incremental.hpp"
#include "graph/generators.hpp"

namespace mgp::golden {

struct GoldenEntry {
  std::string name;
  part_t k;
  std::uint64_t seed;
  Graph (*build)();
  bool direct = false;  ///< direct k-way (core/kway_direct) vs recursive bisection
  // Churn rows replay `churn_batches` synthesized delta batches (fraction
  // `churn_fraction` of edges each, Rng(seed)-scripted) through the
  // incremental repartitioner and pin the final labelling + cut.
  int churn_batches = 0;
  double churn_fraction = 0.0;
  /// Coarsening engine (DESIGN.md §12); non-default rows pin the algebraic-
  /// distance and n-level strategies so their output can't drift silently.
  CoarsenStrategy strategy = CoarsenStrategy::kMatching;
};

inline std::vector<GoldenEntry> corpus() {
  return {
      {"fem2d_tri_40x40", 8, 4242, [] { return fem2d_tri(40, 40, 7); }},
      {"grid3d_27_8x8x8", 8, 4242, [] { return grid3d_27(8, 8, 8); }},
      {"power_grid_2000", 8, 4242, [] { return power_grid(2000, 3); }},
      {"circuit_1500", 8, 4242, [] { return circuit(1500, 11); }},
      {"finan_24x24", 8, 4242, [] { return finan(24, 24, 5); }},
      {"random_geo_1500", 8, 4242, [] { return random_geometric(1500, 6.0, 9); }},
      // Direct k-way rows (default KwayDirectConfig, 1 thread) across the
      // k range the server's auto threshold spans.
      {"fem2d_tri_40x40_direct_k4", 4, 4242, [] { return fem2d_tri(40, 40, 7); },
       true},
      {"circuit_1500_direct_k8", 8, 4242, [] { return circuit(1500, 11); }, true},
      {"random_geo_1500_direct_k16", 16, 4242,
       [] { return random_geometric(1500, 6.0, 9); }, true},
      // Dynamic rows: pinned churn replays through the warm-start
      // repartitioner (src/dynamic/incremental) — anchor partition, then
      // 1%-of-edges delta batches, hashing the final labelling.
      {"circuit_1500_churn_k8", 8, 4242, [] { return circuit(1500, 11); },
       true, 4, 0.01},
      {"fem2d_tri_40x40_churn_k4", 4, 4242, [] { return fem2d_tri(40, 40, 7); },
       true, 4, 0.01},
      {"random_geo_1500_churn_k16", 16, 4242,
       [] { return random_geometric(1500, 6.0, 9); }, true, 4, 0.01},
      // Alternative coarsening engines, one recursive-bisection row and one
      // direct k-way row each (k spanning the server's auto threshold).
      {"fem2d_tri_40x40_ad_k4", 4, 4242, [] { return fem2d_tri(40, 40, 7); },
       false, 0, 0.0, CoarsenStrategy::kAlgebraicDistance},
      {"random_geo_1500_ad_k16", 16, 4242,
       [] { return random_geometric(1500, 6.0, 9); }, true, 0, 0.0,
       CoarsenStrategy::kAlgebraicDistance},
      {"circuit_1500_nlevel_k4", 4, 4242, [] { return circuit(1500, 11); },
       false, 0, 0.0, CoarsenStrategy::kNLevel},
      {"finan_24x24_nlevel_k16", 16, 4242, [] { return finan(24, 24, 5); },
       true, 0, 0.0, CoarsenStrategy::kNLevel},
  };
}

struct GoldenResult {
  ewt_t cut;
  std::uint64_t part_hash;
};

/// FNV-1a over the label sequence: any single relabelled vertex changes it.
inline std::uint64_t fnv1a64(std::span<const part_t> part) {
  std::uint64_t h = 1469598103934665603ull;
  for (part_t p : part) {
    h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(p));
    h *= 1099511628211ull;
  }
  return h;
}

inline GoldenResult run_entry(const GoldenEntry& e) {
  if (e.churn_batches > 0) {
    Graph g = e.build();
    Graph spare;
    dynamic::LabelState state;
    dynamic::IncrementalWorkspace iws;
    BisectWorkspace bws;
    dynamic::DeltaScratch scratch;
    dynamic::DeltaApplyResult res;
    dynamic::DeltaBatch batch;
    const dynamic::IncrementalConfig icfg;  // paper-default base pipeline
    Rng churn_rng(e.seed);
    // Anchor: empty batch computes the from-scratch starting labelling.
    dynamic::repartition_after_delta(g, e.k, icfg, e.seed, state,
                                     dynamic::graph_fingerprint(g), {}, 0.0,
                                     iws, &bws, nullptr);
    for (int bi = 0; bi < e.churn_batches; ++bi) {
      dynamic::synth_churn_batch(g, e.churn_fraction, churn_rng, batch);
      if (!dynamic::apply_delta(g, batch, scratch, spare, res).empty()) {
        return {-1, 0};  // malformed synthesized batch: flag loudly
      }
      std::swap(g, spare);
      dynamic::repartition_after_delta(g, e.k, icfg, e.seed, state,
                                       res.fingerprint, scratch.touched,
                                       res.churn_ratio, iws, &bws, nullptr);
    }
    return {state.cut, fnv1a64(state.part)};
  }
  const Graph g = e.build();
  Rng rng(e.seed);
  if (e.direct) {
    KwayDirectConfig cfg;  // defaults on top of the paper pipeline
    cfg.base.coarsen.strategy = e.strategy;
    const KwayResult r = kway_partition_direct(g, e.k, cfg, rng);
    return {r.edge_cut, fnv1a64(r.part)};
  }
  MultilevelConfig cfg;  // paper defaults: HEM + GGGP + BKLGR, 1 thread
  cfg.coarsen.strategy = e.strategy;
  const KwayResult r = kway_partition(g, e.k, cfg, rng);
  return {r.edge_cut, fnv1a64(r.part)};
}

}  // namespace mgp::golden
