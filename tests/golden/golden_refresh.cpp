// Regenerates the pinned golden-cut file from the corpus definition in
// golden_corpus.hpp.  Run via scripts/refresh_golden.sh, or directly:
//
//   mgp_golden_refresh tests/golden/golden_cuts.txt

#include <cstdio>

#include "golden/golden_corpus.hpp"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <output-file>\n", argv[0]);
    return 2;
  }
  std::FILE* f = std::fopen(argv[1], "w");
  if (f == nullptr) {
    std::perror(argv[1]);
    return 1;
  }
  std::fprintf(f,
               "# Golden partition corpus — pinned cuts and partition hashes.\n"
               "# Format: name k seed cut fnv1a64(part)\n"
               "# Regenerate with scripts/refresh_golden.sh after intentional\n"
               "# behavioural changes; unexpected diffs are regressions.\n");
  for (const mgp::golden::GoldenEntry& e : mgp::golden::corpus()) {
    const mgp::golden::GoldenResult r = mgp::golden::run_entry(e);
    std::fprintf(f, "%s %d %llu %lld %016llx\n", e.name.c_str(),
                 static_cast<int>(e.k), static_cast<unsigned long long>(e.seed),
                 static_cast<long long>(r.cut),
                 static_cast<unsigned long long>(r.part_hash));
    std::printf("%-18s k=%d cut=%lld hash=%016llx\n", e.name.c_str(),
                static_cast<int>(e.k), static_cast<long long>(r.cut),
                static_cast<unsigned long long>(r.part_hash));
  }
  std::fclose(f);
  return 0;
}
