#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

namespace mgp {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next_u64() == b.next_u64());
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ZeroSeedIsValid) {
  Rng r(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(r.next_u64());
  EXPECT_GT(seen.size(), 95u);  // not stuck in a tiny cycle
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng r(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(r.next_below(bound), bound);
  }
}

TEST(RngTest, NextBelowOneIsAlwaysZero) {
  Rng r(7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(r.next_below(1), 0u);
}

TEST(RngTest, NextBelowRoughlyUniform) {
  Rng r(123);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[r.next_below(kBuckets)];
  for (int c : counts) {
    EXPECT_GT(c, kDraws / kBuckets * 0.9);
    EXPECT_LT(c, kDraws / kBuckets * 1.1);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng r(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double x = r.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(5);
  Rng child = a.split();
  // Child values differ from parent's subsequent values.
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next_u64() == child.next_u64());
  EXPECT_LT(equal, 3);
}

TEST(RngTest, SplitIsDeterministic) {
  Rng a(5), b(5);
  Rng ca = a.split(), cb = b.split();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ca.next_u64(), cb.next_u64());
}

class RngPermutationTest : public ::testing::TestWithParam<vid_t> {};

TEST_P(RngPermutationTest, PermutationIsValid) {
  Rng r(GetParam());
  const vid_t n = GetParam();
  std::vector<vid_t> p = r.permutation(n);
  ASSERT_EQ(p.size(), static_cast<std::size_t>(n));
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  for (vid_t v : p) {
    ASSERT_GE(v, 0);
    ASSERT_LT(v, n);
    ASSERT_FALSE(seen[static_cast<std::size_t>(v)]);
    seen[static_cast<std::size_t>(v)] = true;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RngPermutationTest,
                         ::testing::Values(0, 1, 2, 3, 10, 100, 1000));

TEST(RngTest, ShuffleIsUnbiasedOnThreeElements) {
  // All 6 permutations of 3 elements should appear ~uniformly.
  Rng r(77);
  std::map<std::vector<int>, int> hist;
  for (int trial = 0; trial < 6000; ++trial) {
    std::vector<int> v = {0, 1, 2};
    r.shuffle(std::span<int>(v));
    ++hist[v];
  }
  ASSERT_EQ(hist.size(), 6u);
  for (const auto& [perm, count] : hist) {
    EXPECT_GT(count, 800);
    EXPECT_LT(count, 1200);
  }
}

}  // namespace
}  // namespace mgp
