#include "support/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace mgp {
namespace {

TEST(ThreadPoolTest, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1);
}

TEST(ThreadPoolTest, ZeroResolvesToHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), ThreadPool::hardware_threads());
}

TEST(ThreadPoolTest, SubmitReturnsValueThroughFuture) {
  ThreadPool pool(4);
  auto fut = pool.submit([]() { return 6 * 7; });
  EXPECT_EQ(pool.wait_help(fut), 42);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInlineOnCaller) {
  ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  auto fut = pool.submit([caller]() { return std::this_thread::get_id() == caller; });
  // With no workers the task has already run by the time submit returns.
  EXPECT_EQ(fut.wait_for(std::chrono::seconds(0)), std::future_status::ready);
  EXPECT_TRUE(fut.get());
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto fut = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait_help(fut), std::runtime_error);
}

class ThreadPoolSizeTest : public ::testing::TestWithParam<int> {};

TEST_P(ThreadPoolSizeTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(GetParam());
  for (vid_t n : {vid_t{0}, vid_t{1}, vid_t{7}, vid_t{64}, vid_t{1000}}) {
    std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
    pool.parallel_for(n, [&](vid_t begin, vid_t end) {
      for (vid_t i = begin; i < end; ++i) {
        hits[static_cast<std::size_t>(i)].fetch_add(1, std::memory_order_relaxed);
      }
    });
    for (vid_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
          << "n=" << n << " i=" << i << " threads=" << GetParam();
    }
  }
}

TEST_P(ThreadPoolSizeTest, ChunkBoundariesAreAPureFunctionOfNAndChunks) {
  // The deterministic static partitioning contract: chunk c covers
  // [c*ceil(n/chunks), min(n, (c+1)*ceil(n/chunks))) regardless of pool size.
  ThreadPool pool(GetParam());
  const vid_t n = 103;
  const int chunks = 5;
  const vid_t step = (n + chunks - 1) / chunks;
  std::vector<std::pair<vid_t, vid_t>> ranges(chunks, {-1, -1});
  std::mutex mu;
  pool.parallel_for_chunks(n, chunks, [&](int c, vid_t begin, vid_t end) {
    std::lock_guard<std::mutex> lock(mu);
    ranges[static_cast<std::size_t>(c)] = {begin, end};
  });
  for (int c = 0; c < chunks; ++c) {
    const vid_t begin = std::min<vid_t>(n, static_cast<vid_t>(c) * step);
    const vid_t end = std::min<vid_t>(n, begin + step);
    if (begin >= end) continue;  // empty trailing chunk never runs
    EXPECT_EQ(ranges[static_cast<std::size_t>(c)].first, begin);
    EXPECT_EQ(ranges[static_cast<std::size_t>(c)].second, end);
  }
}

TEST_P(ThreadPoolSizeTest, ManySmallTasksAllComplete) {
  ThreadPool pool(GetParam());
  std::atomic<int> done{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 500; ++i) {
    futs.push_back(pool.submit([&done]() { done.fetch_add(1); }));
  }
  for (auto& f : futs) pool.wait_help(f);
  EXPECT_EQ(done.load(), 500);
}

INSTANTIATE_TEST_SUITE_P(PoolSizes, ThreadPoolSizeTest, ::testing::Values(1, 2, 4, 8));

int parallel_fib(ThreadPool& pool, int n) {
  if (n < 2) return n;
  auto fut = pool.submit([&pool, n]() { return parallel_fib(pool, n - 1); });
  const int b = parallel_fib(pool, n - 2);
  return pool.wait_help(fut) + b;
}

TEST(ThreadPoolTest, NestedForkJoinDoesNotDeadlock) {
  // Tasks submitting tasks and joining them: with a fixed pool this
  // deadlocks unless the waiting thread helps drain the queue.  fib(14)
  // creates far more simultaneous joins than workers.
  ThreadPool pool(2);
  EXPECT_EQ(parallel_fib(pool, 14), 377);
}

TEST(ThreadPoolTest, NestedParallelForInsideTask) {
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  auto fut = pool.submit([&]() {
    pool.parallel_for(100, [&](vid_t begin, vid_t end) {
      long local = 0;
      for (vid_t i = begin; i < end; ++i) local += i;
      sum.fetch_add(local);
    });
  });
  pool.wait_help(fut);
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingTasks) {
  std::atomic<int> done{0};
  std::future<int> fut;
  {
    ThreadPool pool(3);
    for (int i = 0; i < 64; ++i) {
      pool.submit([&done]() { done.fetch_add(1); });
    }
    fut = pool.submit([]() { return 7; });
  }
  EXPECT_EQ(done.load(), 64);
  EXPECT_EQ(fut.get(), 7);  // no broken promise after pool destruction
}

}  // namespace
}  // namespace mgp
