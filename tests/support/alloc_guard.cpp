// Counting global allocator (see alloc_guard.hpp).  Defining the global
// operator new/delete here overrides the toolchain's for any binary this
// file is linked into; the underlying storage still comes from malloc/free,
// so sanitizer interceptors keep working underneath.

#include "support/alloc_guard.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_deallocs{0};
std::atomic<std::uint64_t> g_bytes{0};

void* counted_alloc(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* counted_alloc_aligned(std::size_t size, std::size_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
  // aligned_alloc requires the size to be a multiple of the alignment.
  const std::size_t rounded = (size + align - 1) / align * align;
  void* p = std::aligned_alloc(align, rounded == 0 ? align : rounded);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void counted_free(void* p) {
  if (p == nullptr) return;
  g_deallocs.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}

}  // namespace

namespace mgp::testing {

std::uint64_t allocation_count() { return g_allocs.load(std::memory_order_relaxed); }
std::uint64_t deallocation_count() {
  return g_deallocs.load(std::memory_order_relaxed);
}
std::uint64_t allocated_bytes() { return g_bytes.load(std::memory_order_relaxed); }
bool counting_allocator_active() { return true; }

}  // namespace mgp::testing

// ---------------------------------------------------------------------------
// Global operator new/delete replacements.
// ---------------------------------------------------------------------------

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc_aligned(size, static_cast<std::size_t>(align));
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return counted_alloc(size);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return counted_alloc(size);
  } catch (...) {
    return nullptr;
  }
}

void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }
void operator delete(void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { counted_free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { counted_free(p); }
