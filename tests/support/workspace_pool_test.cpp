// WorkspacePool under concurrency: leases are exclusive, returns recycle,
// and the pool never creates more workspaces than the peak concurrency.
// Run under TSan by the sanitizer CI job (the pool is the server's shared
// per-request workspace source).
#include <gtest/gtest.h>

#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "support/workspace.hpp"

namespace mgp {
namespace {

TEST(WorkspacePoolTest, ReusesReturnedWorkspace) {
  WorkspacePool pool;
  BisectWorkspace* first = nullptr;
  {
    WorkspacePool::Lease lease = pool.checkout();
    first = lease.get();
    ASSERT_NE(first, nullptr);
  }
  {
    WorkspacePool::Lease lease = pool.checkout();
    EXPECT_EQ(lease.get(), first);  // warm free list, not a fresh workspace
  }
  WorkspacePool::Stats s = pool.stats();
  EXPECT_EQ(s.checkouts, 2u);
  EXPECT_EQ(s.created, 1u);
  EXPECT_EQ(s.reuse_hits, 1u);
}

TEST(WorkspacePoolTest, ConcurrentLeasesAreExclusive) {
  WorkspacePool pool;
  constexpr int kThreads = 8;
  constexpr int kIters = 200;

  std::mutex mu;
  std::set<BisectWorkspace*> active;
  bool overlap = false;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        WorkspacePool::Lease lease = pool.checkout();
        {
          std::lock_guard<std::mutex> lock(mu);
          if (!active.insert(lease.get()).second) overlap = true;
        }
        // Touch the workspace the way a real borrower would.
        lease->match_order.assign(64, 0);
        lease->proj.assign(64, 0);
        {
          std::lock_guard<std::mutex> lock(mu);
          active.erase(lease.get());
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_FALSE(overlap) << "two live leases shared a workspace";
  WorkspacePool::Stats s = pool.stats();
  EXPECT_EQ(s.checkouts, static_cast<std::size_t>(kThreads) * kIters);
  EXPECT_GE(s.created, 1u);
  EXPECT_LE(s.created, static_cast<std::size_t>(kThreads));
  EXPECT_EQ(s.reuse_hits, s.checkouts - s.created);
}

TEST(WorkspacePoolTest, TracksPeakReservedBytes) {
  WorkspacePool pool;
  {
    WorkspacePool::Lease lease = pool.checkout();
    lease->proj.reserve(4096);
  }
  EXPECT_GE(pool.stats().bytes_peak, 4096 * sizeof(part_t));
}

}  // namespace
}  // namespace mgp
