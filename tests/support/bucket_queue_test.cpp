#include "support/bucket_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "support/rng.hpp"

namespace mgp {
namespace {

TEST(BucketQueueTest, EmptyAfterReset) {
  BucketQueue q;
  q.reset(10, 5);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0);
  for (vid_t v = 0; v < 10; ++v) EXPECT_FALSE(q.contains(v));
}

TEST(BucketQueueTest, InsertPopSingle) {
  BucketQueue q;
  q.reset(4, 10);
  q.insert(2, 7);
  EXPECT_TRUE(q.contains(2));
  EXPECT_EQ(q.max_gain(), 7);
  EXPECT_EQ(q.pop_max(), 2);
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.contains(2));
}

TEST(BucketQueueTest, PopsInDescendingGainOrder) {
  BucketQueue q;
  q.reset(5, 10);
  q.insert(0, -3);
  q.insert(1, 5);
  q.insert(2, 0);
  q.insert(3, 10);
  q.insert(4, -10);
  std::vector<vid_t> order;
  while (!q.empty()) order.push_back(q.pop_max());
  EXPECT_EQ(order, (std::vector<vid_t>{3, 1, 2, 0, 4}));
}

TEST(BucketQueueTest, LifoWithinEqualGains) {
  BucketQueue q;
  q.reset(3, 5);
  q.insert(0, 2);
  q.insert(1, 2);
  q.insert(2, 2);
  EXPECT_EQ(q.pop_max(), 2);  // most recently inserted first
  EXPECT_EQ(q.pop_max(), 1);
  EXPECT_EQ(q.pop_max(), 0);
}

TEST(BucketQueueTest, UpdateMovesVertex) {
  BucketQueue q;
  q.reset(3, 10);
  q.insert(0, 1);
  q.insert(1, 5);
  q.update(0, 9);
  EXPECT_EQ(q.gain_of(0), 9);
  EXPECT_EQ(q.pop_max(), 0);
  EXPECT_EQ(q.pop_max(), 1);
}

TEST(BucketQueueTest, UpdateToSameGainIsNoop) {
  BucketQueue q;
  q.reset(2, 5);
  q.insert(0, 3);
  q.update(0, 3);
  EXPECT_EQ(q.gain_of(0), 3);
  EXPECT_EQ(q.pop_max(), 0);
}

TEST(BucketQueueTest, RemoveMiddleOfBucket) {
  BucketQueue q;
  q.reset(4, 5);
  q.insert(0, 2);
  q.insert(1, 2);
  q.insert(2, 2);
  q.remove(1);
  EXPECT_FALSE(q.contains(1));
  EXPECT_EQ(q.size(), 2);
  EXPECT_EQ(q.pop_max(), 2);
  EXPECT_EQ(q.pop_max(), 0);
}

TEST(BucketQueueTest, NegativeGainBoundary) {
  BucketQueue q;
  q.reset(2, 4);
  q.insert(0, -4);
  q.insert(1, 4);
  EXPECT_EQ(q.pop_max(), 1);
  EXPECT_EQ(q.max_gain(), -4);
  EXPECT_EQ(q.pop_max(), 0);
}

TEST(BucketQueueTest, ReusableAcrossResets) {
  BucketQueue q;
  q.reset(3, 2);
  q.insert(0, 1);
  q.reset(5, 8);
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.contains(0));
  q.insert(4, -8);
  EXPECT_EQ(q.pop_max(), 4);
}

TEST(BucketQueueTest, MaxGainTracksAfterPops) {
  BucketQueue q;
  q.reset(4, 10);
  q.insert(0, 10);
  q.insert(1, 2);
  q.pop_max();
  EXPECT_EQ(q.max_gain(), 2);
  q.insert(2, 6);
  EXPECT_EQ(q.max_gain(), 6);
}

/// Property test: behave identically to a reference implementation under a
/// random operation sequence.
TEST(BucketQueueTest, MatchesReferenceUnderRandomOps) {
  Rng rng(2024);
  const vid_t n = 64;
  const BucketQueue::gain_t max_gain = 20;
  BucketQueue q;
  q.reset(n, max_gain);
  std::map<vid_t, BucketQueue::gain_t> ref;

  for (int step = 0; step < 20000; ++step) {
    const int op = static_cast<int>(rng.next_below(4));
    const vid_t v = rng.next_vid(n);
    const BucketQueue::gain_t g =
        static_cast<BucketQueue::gain_t>(rng.next_below(2 * max_gain + 1)) - max_gain;
    switch (op) {
      case 0:  // insert
        if (!ref.contains(v)) {
          q.insert(v, g);
          ref[v] = g;
        }
        break;
      case 1:  // update
        if (ref.contains(v)) {
          q.update(v, g);
          ref[v] = g;
        }
        break;
      case 2:  // remove
        if (ref.contains(v)) {
          q.remove(v);
          ref.erase(v);
        }
        break;
      case 3:  // pop_max: must return *some* vertex with the max gain
        if (!ref.empty()) {
          BucketQueue::gain_t best = -1000;
          for (const auto& [rv, rg] : ref) best = std::max(best, rg);
          ASSERT_EQ(q.max_gain(), best);
          vid_t popped = q.pop_max();
          ASSERT_TRUE(ref.contains(popped));
          ASSERT_EQ(ref[popped], best);
          ref.erase(popped);
        }
        break;
    }
    ASSERT_EQ(q.size(), static_cast<vid_t>(ref.size()));
    ASSERT_EQ(q.empty(), ref.empty());
  }
}

}  // namespace
}  // namespace mgp
