// Global allocation counting for the zero-allocation regression tests.
//
// Linking the companion alloc_guard.cpp into a binary replaces the global
// operator new/delete with counting wrappers around malloc/free.  AllocGuard
// then measures the number of heap allocations across a scope:
//
//   warm_up_the_kernel();
//   mgp::testing::AllocGuard guard;
//   run_the_kernel_again();
//   EXPECT_EQ(guard.allocations(), 0u);
//
// The counters are process-wide atomics, so guard scopes must not race with
// allocating threads they don't mean to count (the regression tests run the
// serial kernels single-threaded).  Link this fixture only into binaries
// that want it — it changes the global allocator for the whole process.
#pragma once

#include <cstddef>
#include <cstdint>

namespace mgp::testing {

/// Total operator-new calls since process start.
std::uint64_t allocation_count();
/// Total operator-delete calls since process start.
std::uint64_t deallocation_count();
/// Total bytes requested from operator new since process start.
std::uint64_t allocated_bytes();

/// True when the counting allocator is linked in (alloc_guard.cpp sets it).
/// Tests assert this to fail loudly if the fixture silently fell out of the
/// link line.
bool counting_allocator_active();

/// Scope-delta reader over the global counters.
class AllocGuard {
 public:
  AllocGuard()
      : start_allocs_(allocation_count()),
        start_deallocs_(deallocation_count()),
        start_bytes_(allocated_bytes()) {}

  /// Allocations since construction.
  std::uint64_t allocations() const { return allocation_count() - start_allocs_; }
  /// Deallocations since construction.
  std::uint64_t deallocations() const {
    return deallocation_count() - start_deallocs_;
  }
  /// Bytes requested since construction.
  std::uint64_t bytes() const { return allocated_bytes() - start_bytes_; }

 private:
  std::uint64_t start_allocs_;
  std::uint64_t start_deallocs_;
  std::uint64_t start_bytes_;
};

}  // namespace mgp::testing
