#include "support/timer.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace mgp {
namespace {

TEST(TimerTest, MeasuresNonNegativeTime) {
  Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(t.seconds(), 0.0);
}

TEST(TimerTest, ResetRestartsClock) {
  Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 1000000; ++i) sink = sink + i;
  double before = t.seconds();
  t.reset();
  EXPECT_LE(t.seconds(), before + 1.0);  // sanity: reset did not go backwards wildly
}

TEST(TimerTest, IsMonotonicNonDecreasing) {
  Timer t;
  double prev = t.seconds();
  for (int i = 0; i < 1000; ++i) {
    const double cur = t.seconds();
    ASSERT_GE(cur, prev);
    prev = cur;
  }
}

TEST(TimerTest, MeasuresASleepWithinTolerance) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s = t.seconds();
  // Sleeps can overshoot under load but never undershoot a steady clock.
  EXPECT_GE(s, 0.019);
  EXPECT_LT(s, 5.0);
}

TEST(TimerTest, ResetDiscardsPriorElapsedTime) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  t.reset();
  EXPECT_LT(t.seconds(), 0.019);
}

TEST(PhaseTimersTest, StartsAtZero) {
  PhaseTimers pt;
  for (int p = 0; p < PhaseTimers::kNumPhases; ++p) {
    EXPECT_DOUBLE_EQ(pt.get(static_cast<PhaseTimers::Phase>(p)), 0.0);
  }
  EXPECT_DOUBLE_EQ(pt.total(), 0.0);
  EXPECT_DOUBLE_EQ(pt.utime(), 0.0);
}

TEST(PhaseTimersTest, AccumulatesPerPhase) {
  PhaseTimers pt;
  pt.add(PhaseTimers::kCoarsen, 1.0);
  pt.add(PhaseTimers::kCoarsen, 0.5);
  pt.add(PhaseTimers::kRefine, 2.0);
  EXPECT_DOUBLE_EQ(pt.get(PhaseTimers::kCoarsen), 1.5);
  EXPECT_DOUBLE_EQ(pt.get(PhaseTimers::kRefine), 2.0);
  EXPECT_DOUBLE_EQ(pt.get(PhaseTimers::kInitPart), 0.0);
}

TEST(PhaseTimersTest, UtimeIsInitPlusRefinePlusProject) {
  // Matches the paper's definition: UTime = ITime + RTime + PTime.
  PhaseTimers pt;
  pt.add(PhaseTimers::kCoarsen, 10.0);
  pt.add(PhaseTimers::kInitPart, 1.0);
  pt.add(PhaseTimers::kRefine, 2.0);
  pt.add(PhaseTimers::kProject, 3.0);
  EXPECT_DOUBLE_EQ(pt.utime(), 6.0);
  EXPECT_DOUBLE_EQ(pt.total(), 16.0);
}

TEST(PhaseTimersTest, ClearZeroesEverything) {
  PhaseTimers pt;
  pt.add(PhaseTimers::kProject, 3.0);
  pt.clear();
  EXPECT_DOUBLE_EQ(pt.total(), 0.0);
}

TEST(PhaseTimersTest, ScopedPhaseAddsElapsed) {
  PhaseTimers pt;
  {
    ScopedPhase sp(pt, PhaseTimers::kInitPart);
    volatile double sink = 0;
    for (int i = 0; i < 10000; ++i) sink = sink + i;
  }
  EXPECT_GT(pt.get(PhaseTimers::kInitPart), 0.0);
  EXPECT_DOUBLE_EQ(pt.get(PhaseTimers::kCoarsen), 0.0);
}

TEST(PhaseTimersTest, ScopedPhasesAccumulateAcrossScopes) {
  // multilevel_bisect opens one ScopedPhase per level per phase; the slot
  // must sum them, not overwrite.
  PhaseTimers pt;
  for (int level = 0; level < 3; ++level) {
    ScopedPhase sp(pt, PhaseTimers::kRefine);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(pt.get(PhaseTimers::kRefine), 0.014);
  EXPECT_DOUBLE_EQ(pt.utime(), pt.get(PhaseTimers::kRefine));
}

TEST(PhaseTimersTest, NestedScopesOnDifferentPhasesBothRecord) {
  PhaseTimers pt;
  {
    ScopedPhase outer(pt, PhaseTimers::kCoarsen);
    {
      ScopedPhase inner(pt, PhaseTimers::kInitPart);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  // The outer scope covers the inner one, so it measures at least as long.
  EXPECT_GT(pt.get(PhaseTimers::kInitPart), 0.0);
  EXPECT_GE(pt.get(PhaseTimers::kCoarsen), pt.get(PhaseTimers::kInitPart));
}

TEST(PhaseTimersTest, ClearThenAddStartsFresh) {
  PhaseTimers pt;
  pt.add(PhaseTimers::kCoarsen, 4.0);
  pt.clear();
  pt.add(PhaseTimers::kCoarsen, 1.0);
  EXPECT_DOUBLE_EQ(pt.get(PhaseTimers::kCoarsen), 1.0);
  EXPECT_DOUBLE_EQ(pt.total(), 1.0);
}

}  // namespace
}  // namespace mgp
