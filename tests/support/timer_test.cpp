#include "support/timer.hpp"

#include <gtest/gtest.h>

namespace mgp {
namespace {

TEST(TimerTest, MeasuresNonNegativeTime) {
  Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(t.seconds(), 0.0);
}

TEST(TimerTest, ResetRestartsClock) {
  Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 1000000; ++i) sink = sink + i;
  double before = t.seconds();
  t.reset();
  EXPECT_LE(t.seconds(), before + 1.0);  // sanity: reset did not go backwards wildly
}

TEST(PhaseTimersTest, AccumulatesPerPhase) {
  PhaseTimers pt;
  pt.add(PhaseTimers::kCoarsen, 1.0);
  pt.add(PhaseTimers::kCoarsen, 0.5);
  pt.add(PhaseTimers::kRefine, 2.0);
  EXPECT_DOUBLE_EQ(pt.get(PhaseTimers::kCoarsen), 1.5);
  EXPECT_DOUBLE_EQ(pt.get(PhaseTimers::kRefine), 2.0);
  EXPECT_DOUBLE_EQ(pt.get(PhaseTimers::kInitPart), 0.0);
}

TEST(PhaseTimersTest, UtimeIsInitPlusRefinePlusProject) {
  // Matches the paper's definition: UTime = ITime + RTime + PTime.
  PhaseTimers pt;
  pt.add(PhaseTimers::kCoarsen, 10.0);
  pt.add(PhaseTimers::kInitPart, 1.0);
  pt.add(PhaseTimers::kRefine, 2.0);
  pt.add(PhaseTimers::kProject, 3.0);
  EXPECT_DOUBLE_EQ(pt.utime(), 6.0);
  EXPECT_DOUBLE_EQ(pt.total(), 16.0);
}

TEST(PhaseTimersTest, ClearZeroesEverything) {
  PhaseTimers pt;
  pt.add(PhaseTimers::kProject, 3.0);
  pt.clear();
  EXPECT_DOUBLE_EQ(pt.total(), 0.0);
}

TEST(PhaseTimersTest, ScopedPhaseAddsElapsed) {
  PhaseTimers pt;
  {
    ScopedPhase sp(pt, PhaseTimers::kInitPart);
    volatile double sink = 0;
    for (int i = 0; i < 10000; ++i) sink = sink + i;
  }
  EXPECT_GT(pt.get(PhaseTimers::kInitPart), 0.0);
  EXPECT_DOUBLE_EQ(pt.get(PhaseTimers::kCoarsen), 0.0);
}

}  // namespace
}  // namespace mgp
