#include "graph/components.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace mgp {
namespace {

TEST(ComponentsTest, EmptyGraphIsConnected) {
  EXPECT_TRUE(is_connected(empty_graph(0)));
}

TEST(ComponentsTest, SingleVertexConnected) {
  EXPECT_TRUE(is_connected(empty_graph(1)));
}

TEST(ComponentsTest, IsolatedVerticesAreSeparateComponents) {
  Components cc = connected_components(empty_graph(4));
  EXPECT_EQ(cc.count, 4);
}

TEST(ComponentsTest, PathIsOneComponent) {
  Components cc = connected_components(path_graph(10));
  EXPECT_EQ(cc.count, 1);
  for (vid_t v = 0; v < 10; ++v) EXPECT_EQ(cc.comp[static_cast<std::size_t>(v)], 0);
}

TEST(ComponentsTest, TwoCliquesAreTwoComponents) {
  GraphBuilder b(6);
  for (vid_t i = 0; i < 3; ++i)
    for (vid_t j = i + 1; j < 3; ++j) b.add_edge(i, j);
  for (vid_t i = 3; i < 6; ++i)
    for (vid_t j = i + 1; j < 6; ++j) b.add_edge(i, j);
  Graph g = std::move(b).build();
  Components cc = connected_components(g);
  EXPECT_EQ(cc.count, 2);
  EXPECT_EQ(cc.comp[0], cc.comp[1]);
  EXPECT_EQ(cc.comp[3], cc.comp[5]);
  EXPECT_NE(cc.comp[0], cc.comp[3]);
  EXPECT_FALSE(is_connected(g));
}

TEST(ComponentsTest, LabelsAreDense) {
  GraphBuilder b(5);
  b.add_edge(0, 4);  // components: {0,4}, {1}, {2}, {3}
  Graph g = std::move(b).build();
  Components cc = connected_components(g);
  EXPECT_EQ(cc.count, 4);
  for (vid_t v = 0; v < 5; ++v) {
    EXPECT_GE(cc.comp[static_cast<std::size_t>(v)], 0);
    EXPECT_LT(cc.comp[static_cast<std::size_t>(v)], cc.count);
  }
}

TEST(ComponentsTest, GeneratedMeshesAreConnected) {
  EXPECT_TRUE(is_connected(grid2d(17, 9)));
  EXPECT_TRUE(is_connected(grid3d(5, 6, 7)));
  EXPECT_TRUE(is_connected(fem2d_tri(20, 20, 3)));
  EXPECT_TRUE(is_connected(grid3d_27(4, 5, 6)));
}

}  // namespace
}  // namespace mgp
