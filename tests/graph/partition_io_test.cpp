#include "graph/partition_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/kway.hpp"
#include "graph/generators.hpp"
#include "metrics/validate.hpp"
#include "support/rng.hpp"

namespace mgp {
namespace {

TEST(PartitionIoTest, RoundTripPartition) {
  std::vector<part_t> part = {0, 3, 1, 2, 2, 0};
  std::ostringstream out;
  write_partition(out, part);
  std::istringstream in(out.str());
  EXPECT_EQ(read_partition(in, 6, 4), part);
}

TEST(PartitionIoTest, RejectsWrongCount) {
  std::istringstream short_in("0\n1\n");
  EXPECT_THROW(read_partition(short_in, 3), std::runtime_error);
  std::istringstream long_in("0\n1\n0\n1\n");
  EXPECT_THROW(read_partition(long_in, 3), std::runtime_error);
}

TEST(PartitionIoTest, RejectsOutOfRangePart) {
  std::istringstream neg("0\n-1\n");
  EXPECT_THROW(read_partition(neg, 2), std::runtime_error);
  std::istringstream big("0\n5\n");
  EXPECT_THROW(read_partition(big, 2, /*k=*/4), std::runtime_error);
}

TEST(PartitionIoTest, RoundTripPermutation) {
  Rng rng(3);
  std::vector<vid_t> perm = rng.permutation(40);
  std::ostringstream out;
  write_permutation(out, perm);
  std::istringstream in(out.str());
  EXPECT_EQ(read_permutation(in, 40), perm);
}

TEST(PartitionIoTest, RejectsNonPermutation) {
  std::istringstream dup("0\n0\n2\n");
  EXPECT_THROW(read_permutation(dup, 3), std::runtime_error);
  std::istringstream oob("0\n1\n7\n");
  EXPECT_THROW(read_permutation(oob, 3), std::runtime_error);
}

TEST(PartitionIoTest, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/mgp_part_io_test.part";
  std::vector<part_t> part = {1, 0, 1, 1, 0};
  write_partition_file(path, part);
  EXPECT_EQ(read_partition_file(path, 5, 2), part);
  EXPECT_THROW(read_partition_file("/nonexistent/x.part", 5), std::runtime_error);
}

TEST(PartitionIoTest, PipelineRoundTripThroughFileValidates) {
  // End to end: partition -> write -> read -> byte-equal, and the native
  // validator (the twin of scripts/validate_partition.py) accepts it.
  Graph g = fem2d_tri(18, 18, 5);
  MultilevelConfig cfg;
  Rng rng(11);
  KwayResult res = kway_partition(g, 6, cfg, rng);
  const std::string path = ::testing::TempDir() + "/mgp_pipeline_roundtrip.part";
  write_partition_file(path, res.part);
  std::vector<part_t> back = read_partition_file(path, g.num_vertices(), 6);
  EXPECT_EQ(back, res.part);
  PartitionValidation v = validate_partition(back, g.num_vertices(), 6);
  EXPECT_TRUE(v.valid) << (v.errors.empty() ? "" : v.errors.front());
}

TEST(KwayBestOfTest, NotWorseThanSingleTrial) {
  Graph g = fem2d_tri(20, 20, 4);
  MultilevelConfig cfg;
  Rng r1(5), r2(5);
  KwayResult single = kway_partition(g, 8, cfg, r1);
  KwayResult best = kway_partition_best_of(g, 8, cfg, 4, r2);
  EXPECT_LE(best.edge_cut, single.edge_cut);
  EXPECT_EQ(best.part.size(), static_cast<std::size_t>(g.num_vertices()));
}

TEST(KwayBestOfTest, OneTrialEqualsSingleCall) {
  Graph g = fem2d_tri(15, 15, 6);
  MultilevelConfig cfg;
  Rng r1(7), r2(7);
  KwayResult a = kway_partition(g, 4, cfg, r1);
  KwayResult b = kway_partition_best_of(g, 4, cfg, 1, r2);
  EXPECT_EQ(a.part, b.part);
}

}  // namespace
}  // namespace mgp
