#include "graph/permute.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "initpart/bisection_state.hpp"
#include "support/rng.hpp"

namespace mgp {
namespace {

TEST(PermuteTest, IsPermutationAcceptsIdentity) {
  std::vector<vid_t> p = {0, 1, 2, 3};
  EXPECT_TRUE(is_permutation(p));
}

TEST(PermuteTest, IsPermutationRejectsDuplicate) {
  std::vector<vid_t> p = {0, 1, 1, 3};
  EXPECT_FALSE(is_permutation(p));
}

TEST(PermuteTest, IsPermutationRejectsOutOfRange) {
  std::vector<vid_t> p = {0, 1, 4};
  EXPECT_FALSE(is_permutation(p));
  std::vector<vid_t> q = {0, -1, 2};
  EXPECT_FALSE(is_permutation(q));
}

TEST(PermuteTest, InvertPermutationRoundTrips) {
  Rng rng(11);
  std::vector<vid_t> p = rng.permutation(50);
  std::vector<vid_t> inv = invert_permutation(p);
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_EQ(inv[static_cast<std::size_t>(p[i])], static_cast<vid_t>(i));
    EXPECT_EQ(p[static_cast<std::size_t>(inv[i])], static_cast<vid_t>(i));
  }
}

TEST(PermuteTest, PermuteGraphPreservesStructure) {
  Graph g = fem2d_tri(8, 8, 5);
  Rng rng(13);
  std::vector<vid_t> p = rng.permutation(g.num_vertices());
  Graph h = permute_graph(g, p);
  EXPECT_EQ(h.validate(), "");
  EXPECT_EQ(h.num_vertices(), g.num_vertices());
  EXPECT_EQ(h.num_edges(), g.num_edges());
  EXPECT_EQ(h.total_edge_weight(), g.total_edge_weight());
  EXPECT_EQ(h.total_vertex_weight(), g.total_vertex_weight());
  // Degrees carry over through the permutation.
  for (vid_t i = 0; i < h.num_vertices(); ++i) {
    EXPECT_EQ(h.degree(i), g.degree(p[static_cast<std::size_t>(i)]));
    EXPECT_EQ(h.vertex_weight(i), g.vertex_weight(p[static_cast<std::size_t>(i)]));
  }
}

TEST(PermuteTest, PermuteGraphRejectsNonPermutation) {
  Graph g = path_graph(4);
  std::vector<vid_t> bad = {0, 0, 1, 2};
  EXPECT_THROW(permute_graph(g, bad), std::invalid_argument);
}

TEST(PermuteTest, ExtractSubgraphOfClique) {
  Graph g = complete_graph(6);
  std::vector<vid_t> sel = {1, 3, 5};
  Subgraph s = extract_subgraph(g, sel);
  EXPECT_EQ(s.graph.num_vertices(), 3);
  EXPECT_EQ(s.graph.num_edges(), 3);  // K_3
  EXPECT_EQ(s.graph.validate(), "");
  EXPECT_EQ(s.local_to_global, sel);
}

TEST(PermuteTest, ExtractSubgraphKeepsWeights) {
  GraphBuilder b(4);
  b.set_vertex_weight(1, 9);
  b.add_edge(0, 1, 4);
  b.add_edge(1, 2, 6);
  b.add_edge(2, 3, 8);
  Graph g = std::move(b).build();
  std::vector<vid_t> sel = {1, 2};
  Subgraph s = extract_subgraph(g, sel);
  EXPECT_EQ(s.graph.num_edges(), 1);
  EXPECT_EQ(s.graph.total_edge_weight(), 6);
  EXPECT_EQ(s.graph.vertex_weight(0), 9);
}

TEST(PermuteTest, ExtractWhereSplitsByLabel) {
  Graph g = path_graph(6);
  std::vector<part_t> labels = {0, 0, 0, 1, 1, 1};
  Subgraph a = extract_where(g, labels, 0);
  Subgraph b = extract_where(g, labels, 1);
  EXPECT_EQ(a.graph.num_vertices(), 3);
  EXPECT_EQ(b.graph.num_vertices(), 3);
  EXPECT_EQ(a.graph.num_edges(), 2);  // the path 0-1-2
  EXPECT_EQ(b.graph.num_edges(), 2);  // the path 3-4-5
}

TEST(PermuteTest, ExtractEmptySelection) {
  Graph g = path_graph(3);
  Subgraph s = extract_subgraph(g, std::span<const vid_t>{});
  EXPECT_EQ(s.graph.num_vertices(), 0);
  EXPECT_EQ(s.graph.num_edges(), 0);
}

TEST(PermuteTest, SubgraphEdgeCountMatchesInternalEdges) {
  // Edges within the selection survive; edges leaving it are dropped.
  Graph g = grid2d(5, 5);
  std::vector<part_t> labels(25, 0);
  for (vid_t v = 0; v < 10; ++v) labels[static_cast<std::size_t>(v)] = 1;
  Subgraph s = extract_where(g, labels, 1);
  ewt_t crossing = compute_cut(g, labels);
  EXPECT_EQ(s.graph.num_edges() + extract_where(g, labels, 0).graph.num_edges() +
                crossing,
            g.num_edges());
}

}  // namespace
}  // namespace mgp
