#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include "graph/components.hpp"

namespace mgp {
namespace {

TEST(GeneratorsTest, PathGraph) {
  Graph g = path_graph(5);
  EXPECT_EQ(g.num_edges(), 4);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(2), 2);
  EXPECT_EQ(g.validate(), "");
}

TEST(GeneratorsTest, CycleGraph) {
  Graph g = cycle_graph(7);
  EXPECT_EQ(g.num_edges(), 7);
  for (vid_t v = 0; v < 7; ++v) EXPECT_EQ(g.degree(v), 2);
  EXPECT_THROW(cycle_graph(2), std::invalid_argument);
}

TEST(GeneratorsTest, StarGraph) {
  Graph g = star_graph(9);
  EXPECT_EQ(g.degree(0), 8);
  for (vid_t v = 1; v < 9; ++v) EXPECT_EQ(g.degree(v), 1);
}

TEST(GeneratorsTest, CompleteGraph) {
  Graph g = complete_graph(6);
  EXPECT_EQ(g.num_edges(), 15);
  for (vid_t v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 5);
}

TEST(GeneratorsTest, CompleteBipartite) {
  Graph g = complete_bipartite(3, 4);
  EXPECT_EQ(g.num_vertices(), 7);
  EXPECT_EQ(g.num_edges(), 12);
  for (vid_t v = 0; v < 3; ++v) EXPECT_EQ(g.degree(v), 4);
  for (vid_t v = 3; v < 7; ++v) EXPECT_EQ(g.degree(v), 3);
}

TEST(GeneratorsTest, Grid2dStructure) {
  Graph g = grid2d(4, 3);
  EXPECT_EQ(g.num_vertices(), 12);
  EXPECT_EQ(g.num_edges(), 3 * 3 + 4 * 2);  // horizontal + vertical
  EXPECT_EQ(g.degree(0), 2);                // corner
  EXPECT_EQ(g.validate(), "");
}

TEST(GeneratorsTest, Stencil9HasDiagonals) {
  Graph g = stencil9(3, 3);
  // Center vertex of 3x3 9-point stencil touches all 8 others.
  EXPECT_EQ(g.degree(4), 8);
}

TEST(GeneratorsTest, Grid3dStructure) {
  Graph g = grid3d(3, 3, 3);
  EXPECT_EQ(g.num_vertices(), 27);
  // Center of 3x3x3 7-point stencil has degree 6.
  EXPECT_EQ(g.degree(13), 6);
}

TEST(GeneratorsTest, Grid3d27Structure) {
  Graph g = grid3d_27(3, 3, 3);
  // Center vertex adjacent to all 26 others in the 3x3x3 cube.
  EXPECT_EQ(g.degree(13), 26);
  EXPECT_EQ(g.validate(), "");
}

TEST(GeneratorsTest, Fem2dTriDeterministicPerSeed) {
  Graph a = fem2d_tri(10, 10, 42);
  Graph b = fem2d_tri(10, 10, 42);
  Graph c = fem2d_tri(10, 10, 43);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  for (vid_t v = 0; v < a.num_vertices(); ++v) {
    auto na = a.neighbors(v);
    auto nb = b.neighbors(v);
    ASSERT_EQ(std::vector<vid_t>(na.begin(), na.end()),
              std::vector<vid_t>(nb.begin(), nb.end()));
  }
  // Different seed flips some diagonals: same vertex count, same edge count,
  // different adjacency somewhere.
  EXPECT_EQ(a.num_edges(), c.num_edges());
  bool any_diff = false;
  for (vid_t v = 0; v < a.num_vertices() && !any_diff; ++v) {
    auto na = a.neighbors(v);
    auto nc = c.neighbors(v);
    any_diff = std::vector<vid_t>(na.begin(), na.end()) !=
               std::vector<vid_t>(nc.begin(), nc.end());
  }
  EXPECT_TRUE(any_diff);
}

TEST(GeneratorsTest, Fem2dTriAverageDegreeNearSix) {
  Graph g = fem2d_tri(30, 30, 1);
  double avg = 2.0 * static_cast<double>(g.num_edges()) / g.num_vertices();
  EXPECT_GT(avg, 5.0);
  EXPECT_LT(avg, 6.0);
}

TEST(GeneratorsTest, LshapeOmitsQuadrant) {
  Graph g = lshape2d(10, 2);
  // Full grid would be 100; the open upper-right quadrant removes ~16 of
  // the (x > 5, y > 5) vertices.
  EXPECT_LT(g.num_vertices(), 100);
  EXPECT_GT(g.num_vertices(), 70);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.validate(), "");
}

TEST(GeneratorsTest, Fem3dTetConnectedAndDenserThan7pt) {
  Graph tet = fem3d_tet(6, 6, 6, 9);
  Graph g7 = grid3d(6, 6, 6);
  EXPECT_TRUE(is_connected(tet));
  EXPECT_GT(tet.num_edges(), g7.num_edges());
  EXPECT_EQ(tet.validate(), "");
}

TEST(GeneratorsTest, PowerGridSparseAndConnected) {
  Graph g = power_grid(2000, 17);
  EXPECT_TRUE(is_connected(g));
  double avg = 2.0 * static_cast<double>(g.num_edges()) / g.num_vertices();
  EXPECT_GT(avg, 1.5);
  EXPECT_LT(avg, 4.5);
  EXPECT_EQ(g.validate(), "");
}

TEST(GeneratorsTest, FinanHasCliqueBlocks) {
  Graph g = finan(8, 10, 3);
  EXPECT_EQ(g.num_vertices(), 80);
  EXPECT_TRUE(is_connected(g));
  // Each block contributes a K_10 (45 edges), so at least 360 edges.
  EXPECT_GE(g.num_edges(), 8 * 45);
  EXPECT_EQ(g.validate(), "");
}

TEST(GeneratorsTest, CircuitHasSkewedDegrees) {
  Graph g = circuit(3000, 11);
  EXPECT_TRUE(is_connected(g));
  vid_t dmax = 0;
  for (vid_t v = 0; v < g.num_vertices(); ++v) dmax = std::max(dmax, g.degree(v));
  // Preferential attachment produces hubs far above the mean (~4).
  EXPECT_GT(dmax, 30);
  EXPECT_EQ(g.validate(), "");
}

TEST(GeneratorsTest, RandomGeometricHitsTargetDegree) {
  Graph g = random_geometric(3000, 8.0, 5);
  double avg = 2.0 * static_cast<double>(g.num_edges()) / g.num_vertices();
  EXPECT_GT(avg, 5.0);
  EXPECT_LT(avg, 11.0);
  EXPECT_TRUE(is_connected(g));
}

class SuiteTest : public ::testing::TestWithParam<SuiteKind> {};

TEST_P(SuiteTest, SuiteGraphsAreValidAndConnected) {
  auto suite = paper_suite(GetParam(), 0.02, 1234);
  EXPECT_GE(suite.size(), 10u);
  for (const auto& ng : suite) {
    SCOPED_TRACE(ng.name);
    EXPECT_EQ(ng.graph.validate(), "");
    EXPECT_GT(ng.graph.num_vertices(), 0);
    EXPECT_FALSE(ng.name.empty());
    EXPECT_FALSE(ng.description.empty());
    EXPECT_FALSE(ng.stands_in_for.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, SuiteTest,
                         ::testing::Values(SuiteKind::kTables, SuiteKind::kFigures,
                                           SuiteKind::kOrdering));

TEST(SuiteTest, ScaleGrowsGraphs) {
  auto small = paper_suite(SuiteKind::kTables, 0.01, 7);
  auto large = paper_suite(SuiteKind::kTables, 0.05, 7);
  ASSERT_EQ(small.size(), large.size());
  vid_t total_small = 0, total_large = 0;
  for (const auto& g : small) total_small += g.graph.num_vertices();
  for (const auto& g : large) total_large += g.graph.num_vertices();
  EXPECT_GT(total_large, 2 * total_small);
}

}  // namespace
}  // namespace mgp
