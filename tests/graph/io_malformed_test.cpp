// Malformed-input battery for the graph readers (graph/io.cpp).
//
// Every rejection here used to be accepted silently (garbage neighbours,
// self-loops, truncated rows) or crash later in the pipeline; the reader
// now fails fast with a line-numbered message.  The acceptance cases pin
// down the deliberate tolerances: trailing isolated vertices at EOF and
// value-less entries under a non-pattern MatrixMarket banner.
#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>

namespace mgp {
namespace {

Graph parse_metis(const std::string& text) {
  std::istringstream in(text);
  return read_metis_graph(in);
}

Graph parse_mtx(const std::string& text) {
  std::istringstream in(text);
  return read_matrix_market(in);
}

void expect_metis_rejected(const std::string& text, const std::string& why) {
  EXPECT_THROW(parse_metis(text), std::runtime_error) << why;
}

void expect_mtx_rejected(const std::string& text, const std::string& why) {
  EXPECT_THROW(parse_mtx(text), std::runtime_error) << why;
}

TEST(MetisMalformedTest, HeaderErrors) {
  expect_metis_rejected("", "empty file");
  expect_metis_rejected("% only comments\n", "comment-only file");
  expect_metis_rejected("x 3\n", "non-numeric vertex count");
  expect_metis_rejected("3\n", "missing edge count");
  expect_metis_rejected("-1 0\n", "negative vertex count");
  expect_metis_rejected("3 -2\n", "negative edge count");
  expect_metis_rejected("3 2 011 9\n2\n1 3\n2\n", "token after the fmt field");
  expect_metis_rejected("3 2 21\n2\n1 3\n2\n", "fmt digit outside 0/1");
  expect_metis_rejected("3 2 0011\n2\n1 3\n2\n", "fmt longer than three digits");
  expect_metis_rejected("3 2 100\n2\n1 3\n2\n", "vertex sizes unsupported");
  expect_metis_rejected("5000000000 0\n", "vertex count above the 32-bit limit");
}

TEST(MetisMalformedTest, AdjacencyErrors) {
  expect_metis_rejected("2 1\n0\n1\n", "neighbour id 0 (ids are 1-based)");
  expect_metis_rejected("2 1\n3\n1\n", "neighbour id beyond n");
  expect_metis_rejected("2 1\n1\n2\n", "self-loop");
  expect_metis_rejected("2 1\n2 x\n1\n", "non-numeric token in adjacency");
  expect_metis_rejected("2 1\n2\n1\n1\n", "more vertex lines than the header");
  expect_metis_rejected("2 5\n2\n1\n", "edge count mismatch");
}

TEST(MetisMalformedTest, WeightErrors) {
  expect_metis_rejected("2 1 10\nx 2\n1 1\n", "non-numeric vertex weight");
  expect_metis_rejected("2 1 10\n-1 2\n1 1\n", "negative vertex weight");
  expect_metis_rejected("2 1 10\n1099511627777 2\n1 1\n", "vertex weight too large");
  expect_metis_rejected("2 1 1\n2 0\n1 0\n", "zero edge weight");
  expect_metis_rejected("2 1 1\n2 -3\n1 -3\n", "negative edge weight");
  expect_metis_rejected("2 1 1\n2\n1 5\n", "missing edge weight");
  expect_metis_rejected("2 1 1\n2 1099511627777\n1 1099511627777\n",
                        "edge weight too large");
}

TEST(MetisMalformedTest, ToleratesTrailingIsolatedVerticesAtEof) {
  // Some writers omit lines for trailing isolated vertices entirely.
  Graph g = parse_metis("3 1\n2\n1\n");
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_EQ(g.degree(2), 0);
}

TEST(MetisMalformedTest, ErrorMessagesCarryTheLineNumber) {
  try {
    parse_metis("3 2\n2\n1 3\nbad\n");
    FAIL() << "expected a parse error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos) << e.what();
  }
}

TEST(MatrixMarketMalformedTest, BannerAndSizeErrors) {
  expect_mtx_rejected("", "empty file");
  expect_mtx_rejected("%%MatrixMarket matrix array real general\n2 2\n1\n1\n1\n1\n",
                      "non-coordinate banner");
  expect_mtx_rejected(
      "%%MatrixMarket matrix coordinate complex general\n2 2 1\n1 2 1 0\n",
      "complex banner");
  expect_mtx_rejected("%%MatrixMarket matrix coordinate real general\n",
                      "missing size line");
  expect_mtx_rejected("%%MatrixMarket matrix coordinate real general\n2 x 1\n",
                      "non-numeric size line");
  expect_mtx_rejected("%%MatrixMarket matrix coordinate real general\n2 2 1 7\n1 2 1\n",
                      "token after the size line");
  expect_mtx_rejected("2 3 1\n1 2 1\n", "non-square matrix");
  expect_mtx_rejected("0 0 0\n", "zero dimension");
}

TEST(MatrixMarketMalformedTest, EntryErrors) {
  expect_mtx_rejected("2 2 1\n1 3 1\n", "column index out of range");
  expect_mtx_rejected("2 2 1\n3 1 1\n", "row index out of range");
  expect_mtx_rejected("2 2 1\n0 1 1\n", "index 0 (ids are 1-based)");
  expect_mtx_rejected("2 2 1\nx 1 1\n", "non-numeric index");
  expect_mtx_rejected("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2 x\n",
                      "non-numeric value");
  expect_mtx_rejected("2 2 1\n1 2 1 9\n", "trailing token on an entry line");
  expect_mtx_rejected("2 2 3\n1 2 1\n", "fewer entries than declared");
  expect_mtx_rejected("2 2 1\n1 2 1\n2 1 1\n", "more entries than declared");
}

TEST(MatrixMarketMalformedTest, ToleratesValueLessEntriesUnderRealBanner) {
  // Pattern-style lines under a real banner appear in the wild.
  Graph g =
      parse_mtx("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2\n");
  EXPECT_EQ(g.num_vertices(), 2);
  EXPECT_EQ(g.num_edges(), 1);
}

TEST(MatrixMarketMalformedTest, PatternBannerStillParses) {
  Graph g = parse_mtx(
      "%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n2 1\n3 2\n");
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 2);
}

}  // namespace
}  // namespace mgp
