#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace mgp {
namespace {

/// Structural equality of two graphs (same CSR content).
void expect_same_graph(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (vid_t v = 0; v < a.num_vertices(); ++v) {
    EXPECT_EQ(a.vertex_weight(v), b.vertex_weight(v));
    auto na = a.neighbors(v);
    auto nb = b.neighbors(v);
    ASSERT_EQ(std::vector<vid_t>(na.begin(), na.end()),
              std::vector<vid_t>(nb.begin(), nb.end()));
    auto wa = a.edge_weights(v);
    auto wb = b.edge_weights(v);
    ASSERT_EQ(std::vector<ewt_t>(wa.begin(), wa.end()),
              std::vector<ewt_t>(wb.begin(), wb.end()));
  }
}

TEST(MetisIoTest, ParsesMinimalFile) {
  std::istringstream in("3 2\n2 3\n1\n1\n");
  Graph g = read_metis_graph(in);
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_EQ(g.degree(0), 2);
}

TEST(MetisIoTest, SkipsCommentLines) {
  std::istringstream in("% a comment\n2 1\n% another\n2\n1\n");
  Graph g = read_metis_graph(in);
  EXPECT_EQ(g.num_edges(), 1);
}

TEST(MetisIoTest, ParsesEdgeWeights) {
  std::istringstream in("2 1 001\n2 9\n1 9\n");
  Graph g = read_metis_graph(in);
  EXPECT_EQ(g.total_edge_weight(), 9);
}

TEST(MetisIoTest, ParsesVertexWeights) {
  std::istringstream in("2 1 010\n5 2\n7 1\n");
  Graph g = read_metis_graph(in);
  EXPECT_EQ(g.vertex_weight(0), 5);
  EXPECT_EQ(g.vertex_weight(1), 7);
}

TEST(MetisIoTest, RejectsBadHeader) {
  std::istringstream in("abc def\n");
  EXPECT_THROW(read_metis_graph(in), std::runtime_error);
}

TEST(MetisIoTest, RejectsNeighborOutOfRange) {
  std::istringstream in("2 1\n3\n1\n");
  EXPECT_THROW(read_metis_graph(in), std::runtime_error);
}

TEST(MetisIoTest, RejectsEdgeCountMismatch) {
  std::istringstream in("3 5\n2\n1 3\n2\n");
  EXPECT_THROW(read_metis_graph(in), std::runtime_error);
}

TEST(MetisIoTest, RejectsEmptyFile) {
  std::istringstream in("");
  EXPECT_THROW(read_metis_graph(in), std::runtime_error);
}

TEST(MetisIoTest, RoundTripUnweighted) {
  Graph g = fem2d_tri(7, 9, 21);
  std::ostringstream out;
  write_metis_graph(out, g);
  std::istringstream in(out.str());
  Graph h = read_metis_graph(in);
  expect_same_graph(g, h);
}

TEST(MetisIoTest, RoundTripWeighted) {
  GraphBuilder b(4);
  b.set_vertex_weight(0, 3);
  b.set_vertex_weight(3, 2);
  b.add_edge(0, 1, 5);
  b.add_edge(1, 2, 1);
  b.add_edge(2, 3, 4);
  Graph g = std::move(b).build();
  std::ostringstream out;
  write_metis_graph(out, g);
  std::istringstream in(out.str());
  Graph h = read_metis_graph(in);
  expect_same_graph(g, h);
}

TEST(MetisIoTest, FileRoundTrip) {
  Graph g = grid2d(6, 5);
  const std::string path = ::testing::TempDir() + "/mgp_io_test.graph";
  write_metis_graph_file(path, g);
  Graph h = read_metis_graph_file(path);
  expect_same_graph(g, h);
}

TEST(MetisIoTest, MissingFileThrows) {
  EXPECT_THROW(read_metis_graph_file("/nonexistent/nope.graph"), std::runtime_error);
}

TEST(MatrixMarketTest, ParsesSymmetricPattern) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern symmetric\n"
      "3 3 4\n"
      "1 1\n"
      "2 1\n"
      "3 2\n"
      "3 3\n");
  Graph g = read_matrix_market(in);
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 2);  // diagonal entries dropped
}

TEST(MatrixMarketTest, ParsesRealValuesIgnoringThem) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "2 2 3\n"
      "1 1 4.0\n"
      "2 1 -1.5\n"
      "2 2 4.0\n");
  Graph g = read_matrix_market(in);
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_EQ(g.total_edge_weight(), 1);  // unit weights
}

TEST(MatrixMarketTest, GeneralFileWithBothTriangles) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 4\n"
      "1 1 1\n"
      "1 2 2\n"
      "2 1 2\n"
      "2 2 1\n");
  Graph g = read_matrix_market(in);
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_EQ(g.edge_weights(0)[0], 1);  // duplicates collapse to unit weight
}

TEST(MatrixMarketTest, RejectsNonSquare) {
  std::istringstream in("%%MatrixMarket matrix coordinate pattern general\n2 3 1\n1 2\n");
  EXPECT_THROW(read_matrix_market(in), std::runtime_error);
}

TEST(MatrixMarketTest, RejectsIndexOutOfRange) {
  std::istringstream in("%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 5\n");
  EXPECT_THROW(read_matrix_market(in), std::runtime_error);
}

}  // namespace
}  // namespace mgp
