#include "graph/csr.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace mgp {
namespace {

Graph triangle() {
  GraphBuilder b(3);
  b.add_edge(0, 1, 2);
  b.add_edge(1, 2, 3);
  b.add_edge(0, 2, 5);
  return std::move(b).build();
}

TEST(CsrTest, EmptyGraph) {
  Graph g = empty_graph(0);
  EXPECT_EQ(g.num_vertices(), 0);
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_TRUE(g.empty());
  EXPECT_EQ(g.validate(), "");
}

TEST(CsrTest, IsolatedVertices) {
  Graph g = empty_graph(5);
  EXPECT_EQ(g.num_vertices(), 5);
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_EQ(g.degree(3), 0);
  EXPECT_EQ(g.total_vertex_weight(), 5);
  EXPECT_EQ(g.validate(), "");
}

TEST(CsrTest, TriangleBasics) {
  Graph g = triangle();
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 3);
  EXPECT_EQ(g.num_arcs(), 6);
  EXPECT_EQ(g.degree(0), 2);
  EXPECT_EQ(g.total_edge_weight(), 10);
  EXPECT_EQ(g.total_vertex_weight(), 3);
  EXPECT_EQ(g.validate(), "");
}

TEST(CsrTest, NeighborsAndWeightsAligned) {
  Graph g = triangle();
  auto nbrs = g.neighbors(0);
  auto wgts = g.edge_weights(0);
  ASSERT_EQ(nbrs.size(), 2u);
  ASSERT_EQ(wgts.size(), 2u);
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    if (nbrs[i] == 1) {
      EXPECT_EQ(wgts[i], 2);
    }
    if (nbrs[i] == 2) {
      EXPECT_EQ(wgts[i], 5);
    }
  }
}

TEST(CsrTest, MaxWeightedDegree) {
  Graph g = triangle();
  // Vertex 2 touches weights 3 and 5.
  EXPECT_EQ(g.max_weighted_degree(), 8);
}

TEST(CsrTest, ValidateDetectsSelfLoop) {
  std::vector<eid_t> xadj = {0, 1};
  std::vector<vid_t> adjncy = {0};
  std::vector<vwt_t> vwgt = {1};
  std::vector<ewt_t> adjwgt = {1};
  Graph g(std::move(xadj), std::move(adjncy), std::move(vwgt), std::move(adjwgt));
  EXPECT_NE(g.validate().find("self-loop"), std::string::npos);
}

TEST(CsrTest, ValidateDetectsMissingReverseEdge) {
  std::vector<eid_t> xadj = {0, 1, 1};
  std::vector<vid_t> adjncy = {1};
  std::vector<vwt_t> vwgt = {1, 1};
  std::vector<ewt_t> adjwgt = {1};
  Graph g(std::move(xadj), std::move(adjncy), std::move(vwgt), std::move(adjwgt));
  EXPECT_NE(g.validate().find("missing reverse"), std::string::npos);
}

TEST(CsrTest, ValidateDetectsAsymmetricWeight) {
  std::vector<eid_t> xadj = {0, 1, 2};
  std::vector<vid_t> adjncy = {1, 0};
  std::vector<vwt_t> vwgt = {1, 1};
  std::vector<ewt_t> adjwgt = {2, 3};
  Graph g(std::move(xadj), std::move(adjncy), std::move(vwgt), std::move(adjwgt));
  EXPECT_NE(g.validate().find("asymmetric"), std::string::npos);
}

TEST(CsrTest, ValidateDetectsOutOfRangeNeighbor) {
  std::vector<eid_t> xadj = {0, 1};
  std::vector<vid_t> adjncy = {5};
  std::vector<vwt_t> vwgt = {1};
  std::vector<ewt_t> adjwgt = {1};
  Graph g(std::move(xadj), std::move(adjncy), std::move(vwgt), std::move(adjwgt));
  EXPECT_NE(g.validate().find("out of range"), std::string::npos);
}

TEST(CsrTest, ValidateDetectsNonPositiveEdgeWeight) {
  std::vector<eid_t> xadj = {0, 1, 2};
  std::vector<vid_t> adjncy = {1, 0};
  std::vector<vwt_t> vwgt = {1, 1};
  std::vector<ewt_t> adjwgt = {0, 0};
  Graph g(std::move(xadj), std::move(adjncy), std::move(vwgt), std::move(adjwgt));
  EXPECT_NE(g.validate().find("non-positive edge weight"), std::string::npos);
}

TEST(CsrTest, ValidateDetectsDuplicateEdge) {
  std::vector<eid_t> xadj = {0, 2, 4};
  std::vector<vid_t> adjncy = {1, 1, 0, 0};
  std::vector<vwt_t> vwgt = {1, 1};
  std::vector<ewt_t> adjwgt = {1, 1, 1, 1};
  Graph g(std::move(xadj), std::move(adjncy), std::move(vwgt), std::move(adjwgt));
  EXPECT_NE(g.validate().find("duplicate"), std::string::npos);
}

TEST(CsrTest, TotalEdgeWeightCountsEachEdgeOnce) {
  Graph g = grid2d(4, 4);
  // 4x4 grid: 3*4 + 4*3 = 24 edges, unit weights.
  EXPECT_EQ(g.num_edges(), 24);
  EXPECT_EQ(g.total_edge_weight(), 24);
}

}  // namespace
}  // namespace mgp
