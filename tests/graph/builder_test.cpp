#include "graph/builder.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace mgp {
namespace {

TEST(BuilderTest, BuildsSimpleEdge) {
  GraphBuilder b(2);
  b.add_edge(0, 1, 7);
  Graph g = std::move(b).build();
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_EQ(g.total_edge_weight(), 7);
  EXPECT_EQ(g.validate(), "");
}

TEST(BuilderTest, SelfLoopsIgnored) {
  GraphBuilder b(3);
  b.add_edge(1, 1);
  b.add_edge(0, 2);
  Graph g = std::move(b).build();
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_EQ(g.degree(1), 0);
}

TEST(BuilderTest, ParallelEdgesAccumulateWeight) {
  GraphBuilder b(2);
  b.add_edge(0, 1, 3);
  b.add_edge(1, 0, 4);
  Graph g = std::move(b).build();
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_EQ(g.edge_weights(0)[0], 7);
  EXPECT_EQ(g.edge_weights(1)[0], 7);
  EXPECT_EQ(g.validate(), "");
}

TEST(BuilderTest, VertexWeights) {
  GraphBuilder b(3);
  b.set_vertex_weight(0, 10);
  b.set_vertex_weight(2, 5);
  b.add_edge(0, 1);
  Graph g = std::move(b).build();
  EXPECT_EQ(g.vertex_weight(0), 10);
  EXPECT_EQ(g.vertex_weight(1), 1);  // default
  EXPECT_EQ(g.vertex_weight(2), 5);
  EXPECT_EQ(g.total_vertex_weight(), 16);
}

TEST(BuilderTest, OutOfRangeThrows) {
  GraphBuilder b(2);
  EXPECT_THROW(b.add_edge(0, 2), std::out_of_range);
  EXPECT_THROW(b.add_edge(-1, 1), std::out_of_range);
}

TEST(BuilderTest, NonPositiveWeightThrows) {
  GraphBuilder b(2);
  EXPECT_THROW(b.add_edge(0, 1, 0), std::invalid_argument);
  EXPECT_THROW(b.add_edge(0, 1, -5), std::invalid_argument);
}

TEST(BuilderTest, AdjacencyRowsAreSorted) {
  GraphBuilder b(5);
  b.add_edge(2, 4);
  b.add_edge(2, 0);
  b.add_edge(2, 3);
  b.add_edge(2, 1);
  Graph g = std::move(b).build();
  auto nbrs = g.neighbors(2);
  ASSERT_EQ(nbrs.size(), 4u);
  for (std::size_t i = 1; i < nbrs.size(); ++i) EXPECT_LT(nbrs[i - 1], nbrs[i]);
}

TEST(BuilderTest, LargeRandomGraphValidates) {
  GraphBuilder b(200);
  std::uint64_t state = 99;
  auto next = [&]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<vid_t>((state >> 33) % 200);
  };
  for (int i = 0; i < 2000; ++i) {
    vid_t u = next(), v = next();
    if (u != v) b.add_edge(u, v);
  }
  Graph g = std::move(b).build();
  EXPECT_EQ(g.validate(), "");
}

}  // namespace
}  // namespace mgp
