#include "cholesky/sparse_cholesky.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "graph/generators.hpp"
#include "order/mmd.hpp"
#include "order/symbolic.hpp"
#include "spectral/laplacian.hpp"
#include "support/rng.hpp"

namespace mgp {
namespace {

std::vector<vid_t> identity_perm(vid_t n) {
  std::vector<vid_t> p(static_cast<std::size_t>(n));
  std::iota(p.begin(), p.end(), vid_t{0});
  return p;
}

TEST(SymmetricMatrixTest, LaplacianLayout) {
  Graph g = path_graph(3);
  SymmetricMatrix a = laplacian_matrix(g, 1.0);
  ASSERT_EQ(a.n, 3);
  // Column 0: diag (1+1=2), then row 1 (-1).
  EXPECT_EQ(a.rowind[0], 0);
  EXPECT_DOUBLE_EQ(a.values[0], 2.0);
  EXPECT_EQ(a.rowind[1], 1);
  EXPECT_DOUBLE_EQ(a.values[1], -1.0);
  // Column 1: diag 3, then row 2.
  EXPECT_DOUBLE_EQ(a.values[static_cast<std::size_t>(a.colptr[1])], 3.0);
}

TEST(SymmetricMatrixTest, MultiplyMatchesLaplacianApply) {
  Graph g = fem2d_tri(8, 8, 5);
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  SymmetricMatrix a = laplacian_matrix(g, 2.5);
  Rng rng(3);
  std::vector<double> x(n);
  for (double& v : x) v = rng.next_double() - 0.5;
  std::vector<double> y_mat(n, 0.0), y_lap(n);
  a.multiply_add(x, y_mat);
  laplacian_apply(g, x, y_lap);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(y_mat[i], y_lap[i] + 2.5 * x[i], 1e-10);
  }
}

TEST(CholeskyTest, FactorStructureMatchesSymbolic) {
  Graph g = fem2d_tri(9, 9, 7);
  SymmetricMatrix a = laplacian_matrix(g);
  CholeskyResult r = cholesky_factorize(a);
  ASSERT_TRUE(r.ok);
  SymbolicFactor sf = symbolic_cholesky(g, identity_perm(g.num_vertices()));
  EXPECT_EQ(r.factor.nnz(), sf.nnz_factor);
  // Per-column counts must agree exactly.
  for (vid_t j = 0; j < g.num_vertices(); ++j) {
    EXPECT_EQ(r.factor.colptr[static_cast<std::size_t>(j) + 1] -
                  r.factor.colptr[static_cast<std::size_t>(j)],
              sf.col_count[static_cast<std::size_t>(j)])
        << "column " << j;
  }
}

TEST(CholeskyTest, ReconstructsMatrixOnSmallGraph) {
  // Dense check: L L^T must equal A.
  Graph g = cycle_graph(6);
  SymmetricMatrix a = laplacian_matrix(g, 1.5);
  CholeskyResult r = cholesky_factorize(a);
  ASSERT_TRUE(r.ok);
  const std::size_t n = 6;
  std::vector<double> dense_l(n * n, 0.0);
  for (vid_t j = 0; j < r.factor.n; ++j) {
    for (eid_t p = r.factor.colptr[static_cast<std::size_t>(j)];
         p < r.factor.colptr[static_cast<std::size_t>(j) + 1]; ++p) {
      dense_l[static_cast<std::size_t>(r.factor.rowind[static_cast<std::size_t>(p)]) * n +
              static_cast<std::size_t>(j)] = r.factor.values[static_cast<std::size_t>(p)];
    }
  }
  std::vector<double> dense_a(n * n, 0.0);
  for (vid_t j = 0; j < a.n; ++j) {
    for (eid_t p = a.colptr[static_cast<std::size_t>(j)];
         p < a.colptr[static_cast<std::size_t>(j) + 1]; ++p) {
      vid_t i = a.rowind[static_cast<std::size_t>(p)];
      dense_a[static_cast<std::size_t>(i) * n + static_cast<std::size_t>(j)] =
          a.values[static_cast<std::size_t>(p)];
      dense_a[static_cast<std::size_t>(j) * n + static_cast<std::size_t>(i)] =
          a.values[static_cast<std::size_t>(p)];
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double llt = 0;
      for (std::size_t k = 0; k < n; ++k) llt += dense_l[i * n + k] * dense_l[j * n + k];
      EXPECT_NEAR(llt, dense_a[i * n + j], 1e-10) << "(" << i << "," << j << ")";
    }
  }
}

class CholeskySolveTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CholeskySolveTest, SolvesToSmallResidual) {
  Graph g = fem2d_tri(10 + static_cast<vid_t>(GetParam() % 5), 11, GetParam());
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  SymmetricMatrix a = laplacian_matrix(g, 1.0);
  CholeskyResult r = cholesky_factorize(a);
  ASSERT_TRUE(r.ok);
  Rng rng(GetParam());
  std::vector<double> x_true(n);
  for (double& v : x_true) v = rng.next_double() * 2.0 - 1.0;
  std::vector<double> b(n, 0.0);
  a.multiply_add(x_true, b);
  r.factor.solve(std::span<double>(b));
  double err = 0;
  for (std::size_t i = 0; i < n; ++i) err = std::max(err, std::abs(b[i] - x_true[i]));
  EXPECT_LT(err, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CholeskySolveTest, ::testing::Values(1, 2, 3, 4, 5));

TEST(CholeskyTest, IndefiniteMatrixReportsFailure) {
  Graph g = path_graph(5);
  SymmetricMatrix a = laplacian_matrix(g, -10.0);  // strongly negative shift
  CholeskyResult r = cholesky_factorize(a);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.failed_column, kInvalidVid);
}

TEST(CholeskyTest, SingularLaplacianCollapsesLastPivot) {
  // shift = 0: the pure Laplacian is singular (constant null vector); the
  // final pivot must collapse to ~0 (reported as failure, or as a pivot
  // many orders of magnitude below the diagonal scale when rounding leaves
  // it barely positive).
  Graph g = cycle_graph(8);
  SymmetricMatrix a = laplacian_matrix(g, 0.0);
  CholeskyResult r = cholesky_factorize(a);
  if (r.ok) {
    const std::size_t last = static_cast<std::size_t>(r.factor.colptr[7]);
    EXPECT_LT(r.factor.values[last], 1e-6);
  } else {
    EXPECT_EQ(r.failed_column, 7);
  }
}

TEST(CholeskyTest, PermutedSystemSolvesOriginal) {
  Graph g = grid2d(7, 6);
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  SymmetricMatrix a = laplacian_matrix(g, 1.0);
  Rng rng(9);
  std::vector<vid_t> perm = rng.permutation(g.num_vertices());
  SymmetricMatrix pa = permute_matrix(a, perm);
  CholeskyResult r = cholesky_factorize(pa);
  ASSERT_TRUE(r.ok);

  std::vector<double> x_true(n);
  for (double& v : x_true) v = rng.next_double();
  std::vector<double> b(n, 0.0);
  a.multiply_add(x_true, b);
  // Permute rhs, solve, un-permute.
  std::vector<double> pb(n);
  for (std::size_t i = 0; i < n; ++i) pb[i] = b[static_cast<std::size_t>(perm[i])];
  r.factor.solve(std::span<double>(pb));
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(pb[i], x_true[static_cast<std::size_t>(perm[i])], 1e-9);
  }
}

TEST(CholeskyTest, MmdOrderingShrinksNumericFactor) {
  Graph g = grid2d(14, 14);
  SymmetricMatrix a = laplacian_matrix(g, 1.0);
  CholeskyResult natural = cholesky_factorize(a);
  CholeskyResult ordered = cholesky_factorize(permute_matrix(a, mmd_order(g)));
  ASSERT_TRUE(natural.ok);
  ASSERT_TRUE(ordered.ok);
  EXPECT_LT(ordered.factor.nnz(), natural.factor.nnz());
}

TEST(CholeskyTest, DiagonalMatrix) {
  Graph g = empty_graph(4);
  SymmetricMatrix a = laplacian_matrix(g, 4.0);  // 4 I
  CholeskyResult r = cholesky_factorize(a);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.factor.nnz(), 4);
  for (double v : r.factor.values) EXPECT_DOUBLE_EQ(v, 2.0);
}

}  // namespace
}  // namespace mgp
