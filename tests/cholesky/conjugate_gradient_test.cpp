#include "cholesky/conjugate_gradient.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "support/rng.hpp"

namespace mgp {
namespace {

class CgSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CgSeedTest, SolvesSpdSystem) {
  Graph g = fem2d_tri(12, 12, GetParam());
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  SymmetricMatrix a = laplacian_matrix(g, 1.0);
  Rng rng(GetParam());
  std::vector<double> x_true(n);
  for (double& v : x_true) v = rng.next_double() * 2.0 - 1.0;
  std::vector<double> b(n, 0.0);
  a.multiply_add(x_true, b);

  std::vector<double> x(n, 0.0);
  CgResult r = conjugate_gradient(a, b, std::span<double>(x));
  ASSERT_TRUE(r.converged);
  double err = 0.0;
  for (std::size_t i = 0; i < n; ++i) err = std::max(err, std::abs(x[i] - x_true[i]));
  EXPECT_LT(err, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CgSeedTest, ::testing::Values(1, 2, 3));

TEST(CgTest, AgreesWithDirectSolve) {
  Graph g = grid3d(6, 6, 6);
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  SymmetricMatrix a = laplacian_matrix(g, 2.0);
  Rng rng(7);
  std::vector<double> b(n);
  for (double& v : b) v = rng.next_double();

  std::vector<double> x_cg(n, 0.0);
  CgResult r = conjugate_gradient(a, b, std::span<double>(x_cg));
  ASSERT_TRUE(r.converged);

  CholeskyResult chol = cholesky_factorize(a);
  ASSERT_TRUE(chol.ok);
  std::vector<double> x_direct(b);
  chol.factor.solve(std::span<double>(x_direct));

  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x_cg[i], x_direct[i], 1e-6);
}

TEST(CgTest, PreconditionerReducesIterations) {
  // A badly scaled system: Jacobi preconditioning must help.
  Graph base = fem2d_tri(14, 14, 9);
  SymmetricMatrix a = laplacian_matrix(base, 0.01);
  // Scale one row/col block heavily by bumping some diagonal entries.
  for (vid_t j = 0; j < a.n; j += 7) {
    a.values[static_cast<std::size_t>(a.colptr[static_cast<std::size_t>(j)])] *= 1000.0;
  }
  const std::size_t n = static_cast<std::size_t>(a.n);
  Rng rng(3);
  std::vector<double> b(n);
  for (double& v : b) v = rng.next_double();

  CgOptions with;
  CgOptions without;
  without.jacobi_preconditioner = false;
  std::vector<double> x1(n, 0.0), x2(n, 0.0);
  CgResult r1 = conjugate_gradient(a, b, std::span<double>(x1), with);
  CgResult r2 = conjugate_gradient(a, b, std::span<double>(x2), without);
  ASSERT_TRUE(r1.converged);
  ASSERT_TRUE(r2.converged);
  EXPECT_LT(r1.iterations, r2.iterations);
}

TEST(CgTest, ZeroRhsConvergesImmediately) {
  Graph g = path_graph(5);
  SymmetricMatrix a = laplacian_matrix(g, 1.0);
  std::vector<double> b(5, 0.0), x(5, 0.0);
  CgResult r = conjugate_gradient(a, b, std::span<double>(x));
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.iterations, 0);
}

TEST(CgTest, WarmStartFinishesFaster) {
  Graph g = fem2d_tri(12, 12, 4);
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  SymmetricMatrix a = laplacian_matrix(g, 1.0);
  Rng rng(5);
  std::vector<double> b(n);
  for (double& v : b) v = rng.next_double();
  std::vector<double> cold(n, 0.0);
  CgResult rc = conjugate_gradient(a, b, std::span<double>(cold));
  ASSERT_TRUE(rc.converged);
  // Restarting from the converged solution should need (almost) no steps.
  std::vector<double> warm(cold);
  CgResult rw = conjugate_gradient(a, b, std::span<double>(warm));
  EXPECT_LE(rw.iterations, 1);
}

}  // namespace
}  // namespace mgp
