#include "refine/refine.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace mgp {
namespace {

Bisection stripes(const Graph& g, vid_t period) {
  std::vector<part_t> side(static_cast<std::size_t>(g.num_vertices()));
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    side[static_cast<std::size_t>(v)] = (v / period) % 2;
  }
  return make_bisection(g, std::move(side));
}

class PolicyTest : public ::testing::TestWithParam<RefinePolicy> {};

TEST_P(PolicyTest, ImprovesOrPreservesCut) {
  Graph g = fem2d_tri(14, 14, 2);
  Bisection b = stripes(g, 14);
  const ewt_t before = b.cut;
  Rng rng(3);
  refine_bisection(g, b, g.total_vertex_weight() / 2, GetParam(),
                   g.num_vertices(), rng);
  EXPECT_LE(b.cut, before);
  EXPECT_EQ(check_bisection(g, b), "");
}

TEST_P(PolicyTest, DeterministicGivenSeed) {
  Graph g = fem2d_tri(12, 12, 9);
  Bisection b1 = stripes(g, 6);
  Bisection b2 = stripes(g, 6);
  Rng r1(4), r2(4);
  refine_bisection(g, b1, g.total_vertex_weight() / 2, GetParam(), g.num_vertices(), r1);
  refine_bisection(g, b2, g.total_vertex_weight() / 2, GetParam(), g.num_vertices(), r2);
  EXPECT_EQ(b1.side, b2.side);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyTest,
                         ::testing::Values(RefinePolicy::kNone, RefinePolicy::kGR,
                                           RefinePolicy::kKLR, RefinePolicy::kBGR,
                                           RefinePolicy::kBKLR, RefinePolicy::kBKLGR),
                         [](const ::testing::TestParamInfo<RefinePolicy>& info) {
                           return to_string(info.param);
                         });

TEST(PolicyTest, NoneDoesNothing) {
  Graph g = grid2d(6, 6);
  Bisection b = stripes(g, 3);
  Bisection before = b;
  Rng rng(5);
  KlStats s = refine_bisection(g, b, 18, RefinePolicy::kNone, 36, rng);
  EXPECT_EQ(b.side, before.side);
  EXPECT_EQ(b.cut, before.cut);
  EXPECT_EQ(s.passes, 0);
}

TEST(PolicyTest, GrIsSinglePassFullQueue) {
  Graph g = grid2d(10, 10);
  Bisection b = stripes(g, 1);
  Rng rng(6);
  KlStats s = refine_bisection(g, b, 50, RefinePolicy::kGR, 100, rng);
  EXPECT_EQ(s.passes, 1);
  EXPECT_EQ(s.insertions, 100);  // every vertex inserted once
}

TEST(PolicyTest, BgrInsertsOnlyBoundary) {
  Graph g = grid2d(10, 10);
  Bisection b = stripes(g, 5);  // clean vertical stripes -> small boundary
  const vid_t boundary = count_boundary_vertices(g, b.side);
  Rng rng(7);
  KlStats s = refine_bisection(g, b, 50, RefinePolicy::kBGR, 100, rng);
  EXPECT_EQ(s.passes, 1);
  EXPECT_LE(s.insertions, boundary + s.moves_attempted * 4);
  EXPECT_LT(s.insertions, 100);
}

TEST(PolicyTest, BklgrSwitchesOnBoundarySize) {
  Graph g = grid2d(24, 24);
  // Small boundary relative to a huge "original" graph -> BKLR (multi-pass
  // allowed).  Large relative boundary -> BGR (one pass).
  Bisection b1 = stripes(g, 12);
  Rng r1(8);
  KlStats s1 = refine_bisection(g, b1, 288, RefinePolicy::kBKLGR,
                                /*original_n=*/10'000'000, r1);
  EXPECT_GE(s1.passes, 1);  // multi-pass permitted (may converge in 1)

  Bisection b2 = stripes(g, 1);  // interleave: everything is boundary
  Rng r2(8);
  KlStats s2 = refine_bisection(g, b2, 288, RefinePolicy::kBKLGR,
                                /*original_n=*/g.num_vertices(), r2);
  EXPECT_EQ(s2.passes, 1);  // boundary >= 2% of original -> single pass BGR
}

TEST(PolicyTest, KlrNotWorseThanGr) {
  Graph g = fem2d_tri(16, 16, 10);
  Bisection b1 = stripes(g, 1);
  Bisection b2 = stripes(g, 1);
  Rng r1(9), r2(9);
  refine_bisection(g, b1, g.total_vertex_weight() / 2, RefinePolicy::kGR,
                   g.num_vertices(), r1);
  refine_bisection(g, b2, g.total_vertex_weight() / 2, RefinePolicy::kKLR,
                   g.num_vertices(), r2);
  EXPECT_LE(b2.cut, b1.cut);
}

TEST(PolicyTest, ToStringRoundTrip) {
  EXPECT_EQ(to_string(RefinePolicy::kNone), "none");
  EXPECT_EQ(to_string(RefinePolicy::kGR), "GR");
  EXPECT_EQ(to_string(RefinePolicy::kKLR), "KLR");
  EXPECT_EQ(to_string(RefinePolicy::kBGR), "BGR");
  EXPECT_EQ(to_string(RefinePolicy::kBKLR), "BKLR");
  EXPECT_EQ(to_string(RefinePolicy::kBKLGR), "BKLGR");
}

}  // namespace
}  // namespace mgp
