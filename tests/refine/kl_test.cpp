#include "refine/kl.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace mgp {
namespace {

/// Deliberately poor halving: odd/even interleave.
Bisection interleaved(const Graph& g) {
  std::vector<part_t> side(static_cast<std::size_t>(g.num_vertices()));
  for (vid_t v = 0; v < g.num_vertices(); ++v) side[static_cast<std::size_t>(v)] = v % 2;
  return make_bisection(g, std::move(side));
}

TEST(KlTest, NeverWorsensCut) {
  Graph g = fem2d_tri(12, 12, 3);
  for (bool boundary : {false, true}) {
    for (bool single : {false, true}) {
      Bisection b = interleaved(g);
      const ewt_t before = b.cut;
      KlOptions opts;
      opts.boundary_only = boundary;
      opts.single_pass = single;
      Rng rng(5);
      kl_refine(g, b, g.total_vertex_weight() / 2, opts, rng);
      EXPECT_LE(b.cut, before);
      EXPECT_EQ(check_bisection(g, b), "");
    }
  }
}

TEST(KlTest, ImprovesInterleavedGrid) {
  Graph g = grid2d(10, 10);
  Bisection b = interleaved(g);
  const ewt_t before = b.cut;  // 180: every edge cut
  Rng rng(6);
  KlOptions opts;
  kl_refine(g, b, 50, opts, rng);
  EXPECT_LT(b.cut, before / 2);
}

TEST(KlTest, FixesAlmostPerfectPartition) {
  // Path split 0..14 | 15..29 with two vertices swapped: one pass of
  // boundary KL must restore the clean cut of 1.
  Graph g = path_graph(30);
  std::vector<part_t> side(30);
  for (vid_t v = 0; v < 30; ++v) side[static_cast<std::size_t>(v)] = v < 15 ? 0 : 1;
  std::swap(side[14], side[15]);
  Bisection b = make_bisection(g, std::move(side));
  ASSERT_GT(b.cut, 1);
  Rng rng(7);
  KlOptions opts;
  opts.boundary_only = true;
  kl_refine(g, b, 15, opts, rng);
  EXPECT_EQ(b.cut, 1);
  // The clean cut may land a vertex either side of the midpoint within the
  // one-vertex weight slack.
  EXPECT_GE(b.part_weight[0], 14);
  EXPECT_LE(b.part_weight[0], 16);
}

TEST(KlTest, RespectsWeightLimits) {
  Graph g = grid2d(8, 8);
  Bisection b = interleaved(g);
  Rng rng(8);
  KlOptions opts;
  kl_refine(g, b, 32, opts, rng);
  // Unit weights, slack = 1 vertex: neither side may exceed 33.
  EXPECT_LE(b.part_weight[0], 33);
  EXPECT_LE(b.part_weight[1], 33);
}

TEST(KlTest, StatsAreCoherent) {
  Graph g = fem2d_tri(10, 10, 4);
  Bisection b = interleaved(g);
  const ewt_t before = b.cut;
  Rng rng(9);
  KlOptions opts;
  KlStats s = kl_refine(g, b, 50, opts, rng);
  EXPECT_GE(s.passes, 1);
  EXPECT_LE(s.passes, opts.max_passes);
  EXPECT_GE(s.moves_attempted, s.swapped);
  EXPECT_EQ(s.cut_reduction, before - b.cut);
}

TEST(KlTest, SinglePassDoesExactlyOnePass) {
  Graph g = fem2d_tri(10, 10, 5);
  Bisection b = interleaved(g);
  Rng rng(10);
  KlOptions opts;
  opts.single_pass = true;
  KlStats s = kl_refine(g, b, 50, opts, rng);
  EXPECT_EQ(s.passes, 1);
}

TEST(KlTest, MultiPassNotWorseThanSinglePass) {
  Graph g = fem2d_tri(14, 14, 6);
  Bisection b1 = interleaved(g);
  Bisection b2 = interleaved(g);
  KlOptions single;
  single.single_pass = true;
  KlOptions multi;
  Rng r1(11), r2(11);
  kl_refine(g, b1, g.total_vertex_weight() / 2, single, r1);
  kl_refine(g, b2, g.total_vertex_weight() / 2, multi, r2);
  EXPECT_LE(b2.cut, b1.cut);
}

TEST(KlTest, BoundaryInsertsFewerVertices) {
  // The whole point of the boundary variants (§3.3): far less queue traffic.
  Graph g = grid2d(20, 20);
  std::vector<part_t> side(400);
  for (vid_t v = 0; v < 400; ++v) side[static_cast<std::size_t>(v)] = (v % 20) < 10 ? 0 : 1;
  Bisection b1 = make_bisection(g, side);
  Bisection b2 = make_bisection(g, side);
  KlOptions full;
  KlOptions boundary;
  boundary.boundary_only = true;
  Rng r1(12), r2(12);
  KlStats sf = kl_refine(g, b1, 200, full, r1);
  KlStats sb = kl_refine(g, b2, 200, boundary, r2);
  EXPECT_LT(sb.insertions, sf.insertions / 2);
}

TEST(KlTest, ZeroCutIsFixedPoint) {
  // Disconnected halves with no cut edges: nothing to do, nothing changes.
  GraphBuilder gb(8);
  for (vid_t i = 0; i < 4; ++i)
    for (vid_t j = i + 1; j < 4; ++j) gb.add_edge(i, j);
  for (vid_t i = 4; i < 8; ++i)
    for (vid_t j = i + 1; j < 8; ++j) gb.add_edge(i, j);
  Graph g = std::move(gb).build();
  std::vector<part_t> side = {0, 0, 0, 0, 1, 1, 1, 1};
  Bisection b = make_bisection(g, side);
  Rng rng(13);
  KlOptions opts;
  kl_refine(g, b, 4, opts, rng);
  EXPECT_EQ(b.cut, 0);
  EXPECT_EQ(b.side, side);
}

TEST(KlTest, EmptyGraph) {
  Graph g = empty_graph(0);
  Bisection b;
  Rng rng(1);
  KlOptions opts;
  KlStats s = kl_refine(g, b, 0, opts, rng);
  EXPECT_EQ(s.passes, 0);
}

TEST(KlTest, WeightedVerticesStayWithinSlack) {
  GraphBuilder gb(6);
  for (vid_t v = 0; v < 6; ++v) gb.set_vertex_weight(v, v == 0 ? 10 : 2);
  gb.add_edge(0, 1);
  gb.add_edge(1, 2);
  gb.add_edge(2, 3);
  gb.add_edge(3, 4);
  gb.add_edge(4, 5);
  Graph g = std::move(gb).build();
  std::vector<part_t> side = {0, 1, 0, 1, 0, 1};
  Bisection b = make_bisection(g, side);
  Rng rng(14);
  KlOptions opts;
  const vwt_t target0 = g.total_vertex_weight() / 2;  // 10
  kl_refine(g, b, target0, opts, rng);
  EXPECT_EQ(check_bisection(g, b), "");
  // Slack is one max vertex weight (10): limit = 20 per side.
  EXPECT_LE(b.part_weight[0], 20);
  EXPECT_LE(b.part_weight[1], 20);
}

TEST(KlTest, CountBoundaryVertices) {
  Graph g = grid2d(4, 4);
  std::vector<part_t> side(16, 0);
  for (vid_t v = 0; v < 16; ++v) side[static_cast<std::size_t>(v)] = (v % 4) < 2 ? 0 : 1;
  EXPECT_EQ(count_boundary_vertices(g, side), 8);
  std::fill(side.begin(), side.end(), part_t{0});
  EXPECT_EQ(count_boundary_vertices(g, side), 0);
}

TEST(KlTest, DeterministicGivenSeed) {
  Graph g = fem2d_tri(12, 12, 7);
  Bisection b1 = interleaved(g);
  Bisection b2 = interleaved(g);
  Rng r1(15), r2(15);
  KlOptions opts;
  kl_refine(g, b1, g.total_vertex_weight() / 2, opts, r1);
  kl_refine(g, b2, g.total_vertex_weight() / 2, opts, r2);
  EXPECT_EQ(b1.side, b2.side);
  EXPECT_EQ(b1.cut, b2.cut);
}

class KlWindowTest : public ::testing::TestWithParam<int> {};

TEST_P(KlWindowTest, NonImprovingWindowStillImproves) {
  Graph g = fem2d_tri(10, 10, 8);
  Bisection b = interleaved(g);
  const ewt_t before = b.cut;
  Rng rng(16);
  KlOptions opts;
  opts.non_improving_window = GetParam();
  kl_refine(g, b, 50, opts, rng);
  EXPECT_LE(b.cut, before);
  EXPECT_EQ(check_bisection(g, b), "");
}

INSTANTIATE_TEST_SUITE_P(Windows, KlWindowTest, ::testing::Values(1, 5, 50, 500));

}  // namespace
}  // namespace mgp
