// Unit tests for the deterministic parallel greedy boundary refiner
// (refine/parallel_refine.*): pool-size invariance, the KL invariants
// (monotone cut, balance bound), move-at-most-once semantics, round
// accounting, and the refine_bisection auto-selection rules.
#include <gtest/gtest.h>

#include <vector>

#include "graph/generators.hpp"
#include "initpart/bisection_state.hpp"
#include "refine/parallel_refine.hpp"
#include "refine/refine.hpp"
#include "support/thread_pool.hpp"

namespace mgp {
namespace {

Bisection random_bisection(const Graph& g, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<part_t> side(static_cast<std::size_t>(g.num_vertices()));
  for (auto& s : side) s = static_cast<part_t>(rng.next_below(2));
  return make_bisection(g, std::move(side));
}

vid_t count_diff(const std::vector<part_t>& a, const std::vector<part_t>& b) {
  vid_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff += a[i] != b[i] ? 1 : 0;
  return diff;
}

TEST(ParallelRefineTest, ByteIdenticalAcrossPoolSizes) {
  const Graph g = fem2d_tri(40, 40, 5);
  const vwt_t target0 = g.total_vertex_weight() / 2;
  const Bisection start = random_bisection(g, 11);

  Bisection reference;
  KlStats ref_stats;
  std::vector<obs::KlPassReport> ref_log;
  for (int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    Bisection b = start;
    std::vector<obs::KlPassReport> log;
    KlStats stats = parallel_bgr_refine(g, b, target0, {}, pool, &log);
    ASSERT_EQ(check_bisection(g, b), "") << "threads=" << threads;
    if (threads == 1) {
      reference = b;
      ref_stats = stats;
      ref_log = log;
      EXPECT_GT(stats.swapped, 0);  // a random start must be improvable
      continue;
    }
    EXPECT_EQ(b.side, reference.side) << "threads=" << threads;
    EXPECT_EQ(b.cut, reference.cut) << "threads=" << threads;
    EXPECT_EQ(stats.swapped, ref_stats.swapped) << "threads=" << threads;
    EXPECT_EQ(stats.parallel_rounds, ref_stats.parallel_rounds)
        << "threads=" << threads;
    EXPECT_EQ(stats.conflict_rejects, ref_stats.conflict_rejects)
        << "threads=" << threads;
    // The per-round report is part of the determinism contract too.
    ASSERT_EQ(log.size(), ref_log.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < log.size(); ++i) {
      EXPECT_EQ(log[i].moves_attempted, ref_log[i].moves_attempted);
      EXPECT_EQ(log[i].moves_kept, ref_log[i].moves_kept);
      EXPECT_EQ(log[i].cut_after, ref_log[i].cut_after);
    }
  }
}

TEST(ParallelRefineTest, NeverWorsensCutAndRespectsBalanceBound) {
  ThreadPool pool(4);
  const KlOptions opts;
  for (std::uint64_t seed : {1u, 7u, 23u}) {
    for (const auto& [name, g] :
         {std::pair<std::string, Graph>{"fem2d", fem2d_tri(24, 24, seed)},
          std::pair<std::string, Graph>{"power", power_grid(900, seed + 1)},
          std::pair<std::string, Graph>{"circuit", circuit(700, seed + 2)}}) {
      const vwt_t total = g.total_vertex_weight();
      const vwt_t target0 = total / 2;
      vwt_t max_vwgt = 0;
      for (vid_t v = 0; v < g.num_vertices(); ++v) {
        max_vwgt = std::max(max_vwgt, g.vertex_weight(v));
      }
      const vwt_t slack = static_cast<vwt_t>(opts.weight_slack_factor *
                                             static_cast<double>(max_vwgt));

      Bisection b = random_bisection(g, seed * 13 + 5);
      const ewt_t cut_before = b.cut;
      const vwt_t w_before[2] = {b.part_weight[0], b.part_weight[1]};
      const std::vector<part_t> side_before = b.side;

      KlStats stats = parallel_bgr_refine(g, b, target0, opts, pool);

      ASSERT_EQ(check_bisection(g, b), "") << name;
      EXPECT_LE(b.cut, cut_before) << name << ": refiner worsened the cut";
      EXPECT_EQ(cut_before - b.cut, stats.cut_reduction) << name;
      const vwt_t target[2] = {target0, total - target0};
      for (int s = 0; s < 2; ++s) {
        EXPECT_LE(b.part_weight[s], std::max(w_before[s], target[s] + slack))
            << name << ": balance bound violated on side " << s;
      }
      // Move-at-most-once: every changed label is exactly one kept move.
      EXPECT_EQ(count_diff(side_before, b.side), stats.swapped) << name;
    }
  }
}

TEST(ParallelRefineTest, RoundAccountingIsConsistent) {
  const Graph g = fem2d_tri(32, 32, 3);
  const vwt_t target0 = g.total_vertex_weight() / 2;
  Bisection b = random_bisection(g, 77);
  const ewt_t cut_before = b.cut;

  ThreadPool pool(4);
  std::vector<obs::KlPassReport> log;
  KlStats stats = parallel_bgr_refine(g, b, target0, {}, pool, &log);

  ASSERT_EQ(static_cast<int>(log.size()), stats.parallel_rounds);
  EXPECT_EQ(stats.passes, 1);
  std::int64_t kept = 0, attempted = 0, rejected = 0;
  ewt_t cut = cut_before;
  for (std::size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ(log[i].pass, static_cast<int>(i) + 1);
    EXPECT_EQ(log[i].cut_before, cut);
    EXPECT_LE(log[i].cut_after, log[i].cut_before);
    EXPECT_EQ(log[i].moves_attempted, log[i].moves_kept + log[i].moves_undone);
    cut = log[i].cut_after;
    kept += log[i].moves_kept;
    attempted += log[i].moves_attempted;
    rejected += log[i].moves_undone;
  }
  EXPECT_EQ(cut, b.cut);
  EXPECT_EQ(kept, stats.swapped);
  EXPECT_EQ(attempted, stats.moves_attempted);
  EXPECT_EQ(rejected, stats.conflict_rejects);
  // The final round commits nothing (that is the termination certificate),
  // unless the round cap fired first.
  ASSERT_FALSE(log.empty());
  EXPECT_EQ(log.back().moves_kept, 0);
}

TEST(ParallelRefineTest, DegenerateInputs) {
  ThreadPool pool(4);
  // Empty graph: no work, no crash.
  Graph empty;
  Bisection be;
  KlStats s = parallel_bgr_refine(empty, be, 0, {}, pool);
  EXPECT_EQ(s.swapped, 0);

  // A perfectly split disconnected graph has no boundary: one round, no
  // proposals, nothing moves.
  Graph g = grid2d(8, 8);  // single component; split it along a clean seam
  std::vector<part_t> side(static_cast<std::size_t>(g.num_vertices()));
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    side[static_cast<std::size_t>(v)] = v < g.num_vertices() / 2 ? 0 : 1;
  }
  Bisection b = make_bisection(g, side);
  const ewt_t cut_before = b.cut;
  KlStats s2 = parallel_bgr_refine(g, b, g.total_vertex_weight() / 2, {}, pool);
  EXPECT_LE(b.cut, cut_before);
  EXPECT_EQ(check_bisection(g, b), "");
  EXPECT_GE(s2.parallel_rounds, 1);
}

TEST(ParallelRefineTest, DispatchUsesParallelPathAboveThreshold) {
  const Graph g = fem2d_tri(36, 36, 9);
  const vwt_t target0 = g.total_vertex_weight() / 2;
  const Bisection start = random_bisection(g, 42);
  ThreadPool pool(4);

  // Forced on (threshold 0): refine_bisection must reproduce the direct
  // call bit for bit and leave the RNG untouched (the parallel refiner
  // draws no randomness).
  KlOptions forced;
  forced.parallel_boundary_min = 0;
  Bisection direct = start;
  KlStats direct_stats = parallel_bgr_refine(g, direct, target0, forced, pool);
  for (RefinePolicy policy : {RefinePolicy::kBGR, RefinePolicy::kBKLGR}) {
    Bisection b = start;
    Rng rng(123);
    KlStats s = refine_bisection(g, b, target0, policy, g.num_vertices(), rng,
                                 forced, nullptr, nullptr, &pool);
    EXPECT_EQ(b.side, direct.side) << to_string(policy);
    EXPECT_EQ(b.cut, direct.cut) << to_string(policy);
    EXPECT_EQ(s.parallel_rounds, direct_stats.parallel_rounds) << to_string(policy);
    EXPECT_EQ(rng.next_u64(), Rng(123).next_u64())
        << to_string(policy) << ": parallel path must not draw randomness";
  }

  // Forced off (threshold beyond |V|): with or without a pool,
  // refine_bisection is the sequential engine, bit for bit.
  KlOptions off;
  off.parallel_boundary_min = g.num_vertices() + 1;
  for (RefinePolicy policy : {RefinePolicy::kBGR, RefinePolicy::kBKLGR}) {
    Bisection seq = start;
    Rng rng_seq(7);
    refine_bisection(g, seq, target0, policy, g.num_vertices(), rng_seq, off);
    Bisection pooled = start;
    Rng rng_pool(7);
    refine_bisection(g, pooled, target0, policy, g.num_vertices(), rng_pool, off,
                     nullptr, nullptr, &pool);
    EXPECT_EQ(pooled.side, seq.side) << to_string(policy);
    EXPECT_EQ(rng_pool.next_u64(), rng_seq.next_u64()) << to_string(policy);
  }
}

TEST(ParallelRefineTest, WarmWorkspaceFromLargerGraphIsSafeOnSmallGraph) {
  // Regression: with 16 fixed propose chunks, a graph with n <= 225 has
  // step * 16 > n, so trailing chunks are empty and parallel_for_chunks
  // never runs their bodies.  A workspace still warm from a larger graph
  // must not leak its old cand_count entries into the commit pass (stale
  // candidate ids can be >= n — out-of-bounds).
  ThreadPool pool(4);
  KlWorkspace ws;
  {
    // Populate every chunk's count with something large.
    const Graph big = fem2d_tri(40, 40, 5);
    Bisection b = random_bisection(big, 11);
    parallel_bgr_refine(big, b, big.total_vertex_weight() / 2, {}, pool, nullptr,
                        &ws);
  }
  const Graph small = grid2d(7, 7);  // n = 49: chunks 13..15 are empty
  ASSERT_LE(small.num_vertices(), 225);
  const vwt_t target0 = small.total_vertex_weight() / 2;
  const Bisection start = random_bisection(small, 3);

  Bisection fresh = start;
  KlStats fresh_stats = parallel_bgr_refine(small, fresh, target0, {}, pool);
  Bisection warm = start;
  KlStats warm_stats =
      parallel_bgr_refine(small, warm, target0, {}, pool, nullptr, &ws);

  ASSERT_EQ(check_bisection(small, warm), "");
  EXPECT_EQ(warm.side, fresh.side);
  EXPECT_EQ(warm.cut, fresh.cut);
  EXPECT_EQ(warm_stats.swapped, fresh_stats.swapped);
  EXPECT_EQ(warm_stats.conflict_rejects, fresh_stats.conflict_rejects);
}

TEST(ParallelRefineTest, WarmWorkspaceIsByteIdenticalToFresh) {
  const Graph g = fem2d_tri(28, 28, 2);
  const vwt_t target0 = g.total_vertex_weight() / 2;
  ThreadPool pool(2);
  KlWorkspace ws;
  Bisection warm_ref;
  for (int run = 0; run < 3; ++run) {
    Bisection fresh = random_bisection(g, 31);
    Bisection warm = fresh;
    parallel_bgr_refine(g, fresh, target0, {}, pool);
    parallel_bgr_refine(g, warm, target0, {}, pool, nullptr, &ws);
    ASSERT_EQ(warm.side, fresh.side) << "run " << run;
    ASSERT_EQ(warm.cut, fresh.cut) << "run " << run;
  }
}

}  // namespace
}  // namespace mgp
