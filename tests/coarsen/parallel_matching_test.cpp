#include "coarsen/parallel_matching.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "coarsen/contract.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace mgp {
namespace {

using GraphThreads = std::tuple<const char*, int>;

Graph graph_by_name(const std::string& name) {
  if (name == "path") return path_graph(101);
  if (name == "grid") return grid2d(17, 13);
  if (name == "fem") return fem2d_tri(20, 20, 3);
  if (name == "grid3d27") return grid3d_27(5, 5, 5);
  if (name == "star") return star_graph(40);
  if (name == "clique") return complete_graph(17);
  if (name == "isolated") return empty_graph(11);
  return path_graph(2);
}

class ParallelMatchingTest : public ::testing::TestWithParam<GraphThreads> {};

TEST_P(ParallelMatchingTest, ProducesMaximalMatching) {
  auto [name, threads] = GetParam();
  Graph g = graph_by_name(name);
  Matching m = compute_matching_parallel_hem(g, threads);
  EXPECT_TRUE(is_maximal_matching(g, m)) << name << " threads=" << threads;
}

TEST_P(ParallelMatchingTest, IdenticalAcrossThreadCounts) {
  auto [name, threads] = GetParam();
  Graph g = graph_by_name(name);
  Matching seq = compute_matching_parallel_hem(g, 1);
  Matching par = compute_matching_parallel_hem(g, threads);
  EXPECT_EQ(seq.match, par.match);
  EXPECT_EQ(seq.pairs, par.pairs);
  EXPECT_EQ(seq.weight, par.weight);
}

INSTANTIATE_TEST_SUITE_P(
    GraphsTimesThreads, ParallelMatchingTest,
    ::testing::Combine(::testing::Values("path", "grid", "fem", "grid3d27", "star",
                                         "clique", "isolated"),
                       ::testing::Values(1, 2, 4, 8)),
    [](const ::testing::TestParamInfo<GraphThreads>& info) {
      return std::string(std::get<0>(info.param)) + "_t" +
             std::to_string(std::get<1>(info.param));
    });

TEST(ParallelMatchingTest, GreedyOnHeaviestEdges) {
  // The weight-total-order makes proposal matching grab the heaviest edge
  // of every local neighbourhood: on a weighted path 1-9-1-9-1 the two 9s
  // cannot both be taken (they share a vertex), but the heavier-first rule
  // takes a maximum-weight maximal matching here.
  GraphBuilder b(5);
  b.add_edge(0, 1, 1);
  b.add_edge(1, 2, 9);
  b.add_edge(2, 3, 1);
  b.add_edge(3, 4, 9);
  Graph g = std::move(b).build();
  Matching m = compute_matching_parallel_hem(g, 2);
  EXPECT_EQ(m.match[1], 2);
  EXPECT_EQ(m.match[3], 4);
  EXPECT_EQ(m.weight, 18);
}

TEST(ParallelMatchingTest, WeightCompetitiveWithSerialHem) {
  // Same quality class as the sequential heavy-edge matching: W(M) within
  // 25% on a weighted mesh (proposal matching is in fact >= 1/2-optimal).
  Graph base = fem2d_tri(25, 25, 7);
  GraphBuilder b(base.num_vertices());
  Rng wrng(5);
  for (vid_t u = 0; u < base.num_vertices(); ++u) {
    for (vid_t v : base.neighbors(u)) {
      if (u < v) b.add_edge(u, v, 1 + static_cast<ewt_t>(wrng.next_below(30)));
    }
  }
  Graph g = std::move(b).build();
  Matching par = compute_matching_parallel_hem(g, 4);
  ewt_t serial_total = 0;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    Rng rng(seed);
    serial_total += compute_matching(g, MatchingScheme::kHeavyEdge, {}, rng).weight;
  }
  const double serial_avg = static_cast<double>(serial_total) / 4.0;
  EXPECT_GT(static_cast<double>(par.weight), 0.75 * serial_avg);
}

// --- Parity suite: the parallel matcher against sequential HEM on every ---
// --- generator family, and thread-count invariance beyond seed coverage. ---

std::vector<std::pair<std::string, Graph>> parity_families() {
  std::vector<std::pair<std::string, Graph>> out;
  out.emplace_back("grid2d", grid2d(24, 21));
  out.emplace_back("stencil9", stencil9(20, 20));
  out.emplace_back("fem2d", fem2d_tri(22, 22, 3));
  out.emplace_back("lshape", lshape2d(24, 5));
  out.emplace_back("grid3d", grid3d(8, 8, 7));
  out.emplace_back("grid3d27", grid3d_27(7, 6, 6));
  out.emplace_back("fem3d", fem3d_tet(7, 6, 6, 9));
  out.emplace_back("power", power_grid(1100, 11));
  out.emplace_back("finan", finan(10, 13, 13));
  out.emplace_back("circuit", circuit(1000, 15));
  out.emplace_back("geom", random_geometric(900, 7.0, 17));
  return out;
}

TEST(ParallelMatchingParityTest, ValidMaximalOnAllGeneratorFamilies) {
  for (const auto& [name, g] : parity_families()) {
    Matching m = compute_matching_parallel_hem(g, 4);
    EXPECT_TRUE(is_maximal_matching(g, m)) << name;
  }
}

TEST(ParallelMatchingParityTest, IdenticalAcrossThreadCountsOnAllFamilies) {
  for (const auto& [name, g] : parity_families()) {
    Matching t1 = compute_matching_parallel_hem(g, 1);
    Matching t2 = compute_matching_parallel_hem(g, 2);
    Matching t8 = compute_matching_parallel_hem(g, 8);
    EXPECT_EQ(t1.match, t2.match) << name;
    EXPECT_EQ(t1.match, t8.match) << name;
    EXPECT_EQ(t1.pairs, t8.pairs) << name;
    EXPECT_EQ(t1.weight, t8.weight) << name;
  }
}

TEST(ParallelMatchingParityTest, SharedPoolMatchesOwnedPool) {
  // The pool-reusing overload (what the multilevel pipeline calls) must
  // agree with the convenience overload that builds its own pool.
  ThreadPool pool(4);
  for (const auto& [name, g] : parity_families()) {
    Matching owned = compute_matching_parallel_hem(g, 4);
    Matching shared = compute_matching_parallel_hem(g, pool);
    EXPECT_EQ(owned.match, shared.match) << name;
  }
}

TEST(ParallelMatchingParityTest, WeightWithinToleranceOfSequentialHemEverywhere) {
  // Proposal matching is >= 1/2-optimal; in practice it lands within ~25%
  // of sequential HEM's matched weight.  Assert that on every family.
  for (const auto& [name, g] : parity_families()) {
    Matching par = compute_matching_parallel_hem(g, 4);
    ewt_t serial_total = 0;
    constexpr int kTrials = 3;
    for (std::uint64_t seed = 0; seed < kTrials; ++seed) {
      Rng rng(seed);
      serial_total += compute_matching(g, MatchingScheme::kHeavyEdge, {}, rng).weight;
    }
    const double serial_avg = static_cast<double>(serial_total) / kTrials;
    EXPECT_GT(static_cast<double>(par.weight), 0.75 * serial_avg) << name;
    // Maximality also bounds the pair count from below: a maximal matching
    // is at least half the size of a maximum one, and sequential HEM's
    // matching is itself maximal, so the counts are within 2x each way.
    Rng rng(0);
    Matching seq = compute_matching(g, MatchingScheme::kHeavyEdge, {}, rng);
    EXPECT_GE(2 * par.pairs, seq.pairs) << name;
    EXPECT_GE(2 * seq.pairs, par.pairs) << name;
  }
}

TEST(ParallelMatchingTest, ContractionWorksOnParallelMatching) {
  Graph g = grid3d_27(5, 5, 4);
  Matching m = compute_matching_parallel_hem(g, 4);
  Contraction c = contract(g, m, {});
  EXPECT_EQ(c.coarse.validate(), "");
  EXPECT_EQ(c.coarse.total_vertex_weight(), g.total_vertex_weight());
  EXPECT_EQ(c.coarse.total_edge_weight(), g.total_edge_weight() - m.weight);
}

TEST(ParallelMatchingTest, FullCoarseningPipeline) {
  // Coarsen a mesh to < 50 vertices purely with the parallel matcher.
  Graph g = fem2d_tri(30, 30, 9);
  std::vector<Contraction> levels;
  const Graph* cur = &g;
  int guard = 0;
  while (cur->num_vertices() > 50 && guard++ < 40) {
    Matching m = compute_matching_parallel_hem(*cur, 4);
    if (m.pairs == 0) break;
    levels.push_back(contract(*cur, m, {}));
    cur = &levels.back().coarse;
  }
  EXPECT_LE(cur->num_vertices(), 50);
  EXPECT_EQ(cur->total_vertex_weight(), g.total_vertex_weight());
}

}  // namespace
}  // namespace mgp
