// Coarsening property-test wall: every CoarseningStrategy × every generator
// family, asserting the per-level invariants that §3.1 relies on:
//
//   * vertex-weight conservation — a multinode weighs the sum of its
//     constituents, so Σ vwgt is invariant level to level;
//   * edge-weight conservation — weight leaves the cut graph only by moving
//     *inside* a multinode: W(E_i) = W(E_{i+1}) + (Σ cewgt_{i+1} − Σ cewgt_i);
//   * the matching-based strategies produce an involution whose pairs are
//     edges (is_maximal_matching), and the coarse map collapses at most a
//     pair per coarse vertex;
//   * the coarse graph is structurally valid (symmetric, no self-loops);
//   * the vertex count strictly decreases at every accepted level;
//   * whole-pipeline partitions are byte-identical across pool sizes
//     {1, 2, 4, 8} for every strategy (and, for the advanced strategies,
//     with no pool at all — they are sequential by construction).
#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include "coarsen/strategy.hpp"
#include "core/kway.hpp"
#include "graph/generators.hpp"
#include "metrics/partition_metrics.hpp"
#include "support/thread_pool.hpp"
#include "support/workspace.hpp"

namespace mgp {
namespace {

/// The full generator zoo at property-test sizes: big enough for several
/// levels, small enough that 3 strategies × 11 families × 4 pools stays fast.
std::vector<std::pair<std::string, Graph>> all_families() {
  std::vector<std::pair<std::string, Graph>> out;
  out.emplace_back("grid2d", grid2d(12, 9));
  out.emplace_back("stencil9", stencil9(10, 10));
  out.emplace_back("fem2d_tri", fem2d_tri(12, 12, 3));
  out.emplace_back("lshape2d", lshape2d(140, 5));
  out.emplace_back("grid3d", grid3d(6, 5, 4));
  out.emplace_back("grid3d_27", grid3d_27(5, 5, 3));
  out.emplace_back("fem3d_tet", fem3d_tet(5, 5, 4, 7));
  out.emplace_back("power_grid", power_grid(240, 5));
  out.emplace_back("finan", finan(6, 8, 11));
  out.emplace_back("circuit", circuit(220, 7));
  out.emplace_back("random_geometric", random_geometric(240, 5.0, 9));
  return out;
}

constexpr CoarsenStrategy kStrategies[] = {
    CoarsenStrategy::kMatching,
    CoarsenStrategy::kAlgebraicDistance,
    CoarsenStrategy::kNLevel,
};

ewt_t sum_cewgt(std::span<const ewt_t> cewgt) {
  return std::accumulate(cewgt.begin(), cewgt.end(), ewt_t{0});
}

/// Runs one ladder to `coarsen_to`, asserting every per-level invariant.
void check_ladder(const std::string& family, const Graph& g,
                  CoarsenStrategy kind, vid_t nlevel_batch) {
  const CoarseningStrategy& strategy = coarsening_strategy(kind);
  CoarsenOptions opts;
  opts.strategy = kind;
  opts.nlevel_batch = nlevel_batch;
  BisectWorkspace ws;
  Rng rng(4242);
  const std::string tag =
      family + " strategy=" + to_string(kind) + " batch=" + std::to_string(nlevel_batch);

  const Graph* cur = &g;
  std::span<const ewt_t> cewgt;
  std::vector<std::unique_ptr<Contraction>> levels;
  int level = 0;
  while (cur->num_vertices() > 12 && level < 2000) {
    levels.push_back(std::make_unique<Contraction>());
    Contraction& c = *levels.back();
    CoarsenLevelStats stats;
    if (!strategy.coarsen_level(*cur, cewgt, MatchingScheme::kHeavyEdge, opts,
                                0.95, rng, nullptr, ws, c, stats)) {
      break;
    }
    const vid_t fine_n = cur->num_vertices();
    const vid_t coarse_n = c.coarse.num_vertices();
    const std::string at = tag + " level=" + std::to_string(level);

    // Monotone decrease and progress accounting.
    ASSERT_LT(coarse_n, fine_n) << at;
    ASSERT_GT(stats.matched_pairs, 0) << at;
    ASSERT_EQ(fine_n - coarse_n, stats.matched_pairs) << at;

    // Structural validity covers symmetry and the no-self-loop rule.
    ASSERT_EQ(c.coarse.validate(), "") << at;

    // Weight conservation: vertices exactly, edges up to interior absorption.
    ASSERT_EQ(c.coarse.total_vertex_weight(), cur->total_vertex_weight()) << at;
    ASSERT_EQ(cur->total_edge_weight(),
              c.coarse.total_edge_weight() +
                  (sum_cewgt(c.cewgt) - sum_cewgt(cewgt)))
        << at;

    // The coarse map covers every fine vertex and hits every coarse id.
    ASSERT_EQ(c.cmap.size(), static_cast<std::size_t>(fine_n)) << at;
    ASSERT_EQ(c.cewgt.size(), static_cast<std::size_t>(coarse_n)) << at;
    std::vector<int> hits(static_cast<std::size_t>(coarse_n), 0);
    for (vid_t v = 0; v < fine_n; ++v) {
      const vid_t cv = c.cmap[static_cast<std::size_t>(v)];
      ASSERT_GE(cv, 0) << at;
      ASSERT_LT(cv, coarse_n) << at;
      ++hits[static_cast<std::size_t>(cv)];
    }
    for (vid_t cv = 0; cv < coarse_n; ++cv) {
      ASSERT_GE(hits[static_cast<std::size_t>(cv)], 1) << at << " coarse=" << cv;
    }

    if (kind != CoarsenStrategy::kNLevel) {
      // Matching strategies: the level was built from a maximal matching —
      // an involution whose matched pairs are edges — and contracts at most
      // a pair into each coarse vertex.
      ASSERT_TRUE(is_maximal_matching(*cur, ws.match)) << at;
      for (vid_t cv = 0; cv < coarse_n; ++cv) {
        ASSERT_LE(hits[static_cast<std::size_t>(cv)], 2) << at;
      }
      ASSERT_EQ(stats.matched_pairs, ws.match.pairs) << at;
    }

    cur = &c.coarse;
    cewgt = c.cewgt;
    ++level;
  }
  ASSERT_GT(level, 0) << tag << ": ladder never coarsened";
}

TEST(StrategyPropertyTest, PerLevelInvariantsEveryStrategyEveryFamily) {
  for (const auto& [name, g] : all_families()) {
    for (CoarsenStrategy kind : kStrategies) {
      check_ladder(name, g, kind, /*nlevel_batch=*/0);
    }
  }
}

TEST(StrategyPropertyTest, LiteralOneEdgePerLevelNLevel) {
  // nlevel_batch = 1 is the textbook n-level algorithm: one contraction per
  // level, hundreds of levels.  Run it on a couple of families end to end.
  for (const auto& [name, g] : all_families()) {
    if (name != "fem2d_tri" && name != "circuit") continue;
    check_ladder(name, g, CoarsenStrategy::kNLevel, /*nlevel_batch=*/1);
  }
}

TEST(StrategyPropertyTest, PartitionsByteIdenticalAcrossPoolSizes) {
  constexpr int kPoolSizes[] = {1, 2, 4, 8};
  for (const auto& [name, g] : all_families()) {
    for (CoarsenStrategy kind : kStrategies) {
      MultilevelConfig cfg;
      cfg.coarsen.strategy = kind;
      std::vector<part_t> reference;
      for (int threads : kPoolSizes) {
        ThreadPool pool(threads);
        Rng rng(1234);
        KwayResult r = kway_partition(g, 4, cfg, rng, nullptr, &pool);
        ASSERT_EQ(check_partition(g, r.part, 4), "")
            << name << " strategy=" << to_string(kind) << " t=" << threads;
        if (threads == kPoolSizes[0]) {
          reference = r.part;
        } else {
          ASSERT_EQ(r.part, reference)
              << "partition differs: " << name
              << " strategy=" << to_string(kind) << " threads=" << threads;
        }
      }
      if (kind != CoarsenStrategy::kMatching) {
        // The advanced strategies are sequential by construction, so even
        // the no-pool path must match the pooled bytes (kMatching keeps the
        // documented threads==1 sequential-HEM caveat).
        Rng rng(1234);
        KwayResult r = kway_partition(g, 4, cfg, rng, nullptr, nullptr);
        ASSERT_EQ(r.part, reference)
            << "no-pool partition differs: " << name
            << " strategy=" << to_string(kind);
      }
    }
  }
}

TEST(StrategyPropertyTest, SchemeByteRoundTrip) {
  for (std::uint8_t b = 0; b <= kSchemeByteMax; ++b) {
    CoarsenStrategy s;
    MatchingScheme m;
    ASSERT_TRUE(scheme_from_byte(b, s, m)) << int(b);
    EXPECT_EQ(scheme_byte(s, m), b);
  }
  CoarsenStrategy s;
  MatchingScheme m;
  EXPECT_FALSE(scheme_from_byte(kSchemeByteMax + 1, s, m));
  EXPECT_FALSE(scheme_from_byte(0xff, s, m));
}

}  // namespace
}  // namespace mgp
