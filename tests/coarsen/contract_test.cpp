#include "coarsen/contract.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "initpart/bisection_state.hpp"

namespace mgp {
namespace {

TEST(ContractTest, CollapsesSingleEdge) {
  Graph g = path_graph(3);  // 0-1-2
  Matching m;
  m.match = {1, 0, 2};
  m.pairs = 1;
  m.weight = 1;
  Contraction c = contract(g, m, {});
  EXPECT_EQ(c.coarse.num_vertices(), 2);
  EXPECT_EQ(c.coarse.num_edges(), 1);
  // Multinode {0,1} has weight 2, vertex 2 stays at 1.
  EXPECT_EQ(c.coarse.vertex_weight(c.cmap[0]), 2);
  EXPECT_EQ(c.cmap[0], c.cmap[1]);
  EXPECT_NE(c.cmap[0], c.cmap[2]);
  EXPECT_EQ(c.coarse.validate(), "");
}

TEST(ContractTest, ParallelEdgesMergeWeights) {
  // Square 0-1-2-3-0; match (0,1) and (2,3): coarse graph has 2 multinodes
  // joined by the two cross edges (1,2) and (3,0) -> single edge weight 2.
  Graph g = cycle_graph(4);
  Matching m;
  m.match = {1, 0, 3, 2};
  m.pairs = 2;
  m.weight = 2;
  Contraction c = contract(g, m, {});
  EXPECT_EQ(c.coarse.num_vertices(), 2);
  EXPECT_EQ(c.coarse.num_edges(), 1);
  EXPECT_EQ(c.coarse.edge_weights(0)[0], 2);
}

TEST(ContractTest, VertexWeightConservation) {
  Graph g = fem2d_tri(15, 15, 2);
  Rng rng(4);
  Matching m = compute_matching(g, MatchingScheme::kHeavyEdge, {}, rng);
  Contraction c = contract(g, m, {});
  EXPECT_EQ(c.coarse.total_vertex_weight(), g.total_vertex_weight());
}

TEST(ContractTest, PaperEdgeWeightInvariant) {
  // §3.1: W(E_{i+1}) = W(E_i) - W(M_i).
  Graph g = fem2d_tri(15, 15, 6);
  for (MatchingScheme scheme :
       {MatchingScheme::kRandom, MatchingScheme::kHeavyEdge,
        MatchingScheme::kLightEdge, MatchingScheme::kHeavyClique}) {
    Rng rng(8);
    Matching m = compute_matching(g, scheme, {}, rng);
    Contraction c = contract(g, m, {});
    EXPECT_EQ(c.coarse.total_edge_weight(), g.total_edge_weight() - m.weight)
        << to_string(scheme);
  }
}

TEST(ContractTest, CoarseVertexCountIsFineMinusPairs) {
  Graph g = grid2d(10, 10);
  Rng rng(5);
  Matching m = compute_matching(g, MatchingScheme::kRandom, {}, rng);
  Contraction c = contract(g, m, {});
  EXPECT_EQ(c.coarse.num_vertices(), g.num_vertices() - m.pairs);
}

TEST(ContractTest, CmapIsSurjectiveOntoCoarse) {
  Graph g = grid2d(8, 8);
  Rng rng(6);
  Matching m = compute_matching(g, MatchingScheme::kHeavyEdge, {}, rng);
  Contraction c = contract(g, m, {});
  std::vector<bool> hit(static_cast<std::size_t>(c.coarse.num_vertices()), false);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    vid_t cv = c.cmap[static_cast<std::size_t>(v)];
    ASSERT_GE(cv, 0);
    ASSERT_LT(cv, c.coarse.num_vertices());
    hit[static_cast<std::size_t>(cv)] = true;
  }
  for (bool h : hit) EXPECT_TRUE(h);
}

TEST(ContractTest, CewgtTracksCollapsedEdgeWeight) {
  // Triangle with weights: match (0,1) across weight-5 edge.
  GraphBuilder b(3);
  b.add_edge(0, 1, 5);
  b.add_edge(1, 2, 2);
  b.add_edge(0, 2, 3);
  Graph g = std::move(b).build();
  Matching m;
  m.match = {1, 0, 2};
  m.pairs = 1;
  m.weight = 5;
  Contraction c = contract(g, m, {});
  vid_t mn = c.cmap[0];
  EXPECT_EQ(c.cewgt[static_cast<std::size_t>(mn)], 5);
  EXPECT_EQ(c.cewgt[static_cast<std::size_t>(c.cmap[2])], 0);
  // The two edges to vertex 2 merge into one of weight 5.
  EXPECT_EQ(c.coarse.num_edges(), 1);
  EXPECT_EQ(c.coarse.edge_weights(mn)[0], 5);
}

TEST(ContractTest, CewgtAccumulatesAcrossLevels) {
  // Path of 4 with unit weights, contract twice down to a single multinode.
  Graph g = path_graph(4);
  Matching m1;
  m1.match = {1, 0, 3, 2};
  m1.pairs = 2;
  m1.weight = 2;
  Contraction c1 = contract(g, m1, {});
  ASSERT_EQ(c1.coarse.num_vertices(), 2);
  Matching m2;
  m2.match = {1, 0};
  m2.pairs = 1;
  m2.weight = c1.coarse.edge_weights(0)[0];
  Contraction c2 = contract(c1.coarse, m2, c1.cewgt);
  ASSERT_EQ(c2.coarse.num_vertices(), 1);
  // Total interior weight equals the whole original edge weight (3).
  EXPECT_EQ(c2.cewgt[0], 3);
  EXPECT_EQ(c2.coarse.total_vertex_weight(), 4);
}

TEST(ContractTest, EdgeCutPreservedUnderProjection) {
  // §3.1: "The edge-cut of the partition in a coarser graph will be equal
  // to the edge-cut of the same partition in the finer graph."
  Graph g = fem2d_tri(12, 12, 9);
  Rng rng(10);
  Matching m = compute_matching(g, MatchingScheme::kHeavyEdge, {}, rng);
  Contraction c = contract(g, m, {});

  // Any labelling of the coarse graph, projected to the fine graph, must
  // have the same cut.
  std::vector<part_t> coarse_side(static_cast<std::size_t>(c.coarse.num_vertices()));
  Rng lab(3);
  for (auto& s : coarse_side) s = static_cast<part_t>(lab.next_below(2));
  std::vector<part_t> fine_side(static_cast<std::size_t>(g.num_vertices()));
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    fine_side[static_cast<std::size_t>(v)] =
        coarse_side[static_cast<std::size_t>(c.cmap[static_cast<std::size_t>(v)])];
  }
  EXPECT_EQ(compute_cut(c.coarse, coarse_side), compute_cut(g, fine_side));
}

TEST(ContractTest, RepeatedCoarseningReachesSmallGraph) {
  Graph g = grid2d(20, 20);
  std::vector<Contraction> levels;
  const Graph* cur = &g;
  std::span<const ewt_t> cewgt;
  Rng rng(14);
  int guard = 0;
  while (cur->num_vertices() > 20 && guard++ < 50) {
    Matching m = compute_matching(*cur, MatchingScheme::kHeavyEdge, cewgt, rng);
    if (m.pairs == 0) break;
    levels.push_back(contract(*cur, m, cewgt));
    cur = &levels.back().coarse;
    cewgt = levels.back().cewgt;
    EXPECT_EQ(cur->validate(), "");
    EXPECT_EQ(cur->total_vertex_weight(), g.total_vertex_weight());
  }
  EXPECT_LE(cur->num_vertices(), 20);
}

TEST(ContractTest, EmptyMatchingCopiesGraph) {
  Graph g = empty_graph(4);
  Matching m;
  m.match = {0, 1, 2, 3};
  Contraction c = contract(g, m, {});
  EXPECT_EQ(c.coarse.num_vertices(), 4);
  EXPECT_EQ(c.coarse.num_edges(), 0);
}

}  // namespace
}  // namespace mgp
