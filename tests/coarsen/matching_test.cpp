#include "coarsen/matching.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace mgp {
namespace {

using SchemeGraph = std::tuple<MatchingScheme, const char*>;

Graph graph_by_name(const std::string& name) {
  if (name == "path") return path_graph(31);
  if (name == "cycle") return cycle_graph(40);
  if (name == "grid") return grid2d(9, 11);
  if (name == "fem") return fem2d_tri(12, 12, 8);
  if (name == "grid3d27") return grid3d_27(4, 4, 4);
  if (name == "star") return star_graph(17);
  if (name == "clique") return complete_graph(12);
  if (name == "isolated") return empty_graph(9);
  return path_graph(2);
}

class MatchingPropertyTest : public ::testing::TestWithParam<SchemeGraph> {};

TEST_P(MatchingPropertyTest, ProducesMaximalMatching) {
  auto [scheme, name] = GetParam();
  Graph g = graph_by_name(name);
  Rng rng(99);
  Matching m = compute_matching(g, scheme, {}, rng);
  EXPECT_TRUE(is_maximal_matching(g, m)) << to_string(scheme) << " on " << name;
}

TEST_P(MatchingPropertyTest, DeterministicGivenSeed) {
  auto [scheme, name] = GetParam();
  Graph g = graph_by_name(name);
  Rng r1(5), r2(5);
  Matching m1 = compute_matching(g, scheme, {}, r1);
  Matching m2 = compute_matching(g, scheme, {}, r2);
  EXPECT_EQ(m1.match, m2.match);
}

TEST_P(MatchingPropertyTest, WeightBookkeepingIsConsistent) {
  auto [scheme, name] = GetParam();
  Graph g = graph_by_name(name);
  Rng rng(3);
  Matching m = compute_matching(g, scheme, {}, rng);
  // Recompute W(M) and |M| from the match array.
  ewt_t weight = 0;
  vid_t pairs = 0;
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    vid_t p = m.match[static_cast<std::size_t>(u)];
    if (p > u) {
      ++pairs;
      auto nbrs = g.neighbors(u);
      auto wgts = g.edge_weights(u);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        if (nbrs[i] == p) {
          weight += wgts[i];
          break;
        }
      }
    }
  }
  EXPECT_EQ(m.pairs, pairs);
  EXPECT_EQ(m.weight, weight);
}

INSTANTIATE_TEST_SUITE_P(
    SchemesTimesGraphs, MatchingPropertyTest,
    ::testing::Combine(
        ::testing::Values(MatchingScheme::kRandom, MatchingScheme::kHeavyEdge,
                          MatchingScheme::kLightEdge, MatchingScheme::kHeavyClique),
        ::testing::Values("path", "cycle", "grid", "fem", "grid3d27", "star",
                          "clique", "isolated")),
    [](const ::testing::TestParamInfo<SchemeGraph>& info) {
      return to_string(std::get<0>(info.param)) + std::string("_") +
             std::get<1>(info.param);
    });

TEST(MatchingTest, HemPrefersHeavyEdge) {
  // Path 0-1-2 with weights 1 and 100: HEM must match (1,2).
  GraphBuilder b(3);
  b.add_edge(0, 1, 1);
  b.add_edge(1, 2, 100);
  Graph g = std::move(b).build();
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed);
    Matching m = compute_matching(g, MatchingScheme::kHeavyEdge, {}, rng);
    // Whichever endpoint is visited first, the heavy edge must be taken
    // whenever vertex 1 or 2 initiates.  Vertex 0 initiating first can only
    // grab (0,1).  So across seeds, (1,2) should dominate; but the invariant
    // that must always hold: if vertex 1 is unmatched when visited, it picks 2.
    if (m.match[1] != 0) {
      EXPECT_EQ(m.match[1], 2);
      EXPECT_EQ(m.match[2], 1);
    }
  }
}

TEST(MatchingTest, HemMaximizesWeightOnDisjointChoice) {
  // Two disjoint edges with different weights: both always matched, and the
  // matching weight equals the total.
  GraphBuilder b(4);
  b.add_edge(0, 1, 5);
  b.add_edge(2, 3, 9);
  Graph g = std::move(b).build();
  Rng rng(1);
  Matching m = compute_matching(g, MatchingScheme::kHeavyEdge, {}, rng);
  EXPECT_EQ(m.pairs, 2);
  EXPECT_EQ(m.weight, 14);
}

TEST(MatchingTest, LemPrefersLightEdge) {
  GraphBuilder b(3);
  b.add_edge(0, 1, 100);
  b.add_edge(1, 2, 1);
  Graph g = std::move(b).build();
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed);
    Matching m = compute_matching(g, MatchingScheme::kLightEdge, {}, rng);
    if (m.match[1] != 0) {
      EXPECT_EQ(m.match[1], 2);
    }
  }
}

TEST(MatchingTest, HemCollectsMoreWeightThanLemOnAverage) {
  Graph g = fem2d_tri(20, 20, 4);
  // Give the graph varied edge weights by using HCM-style cewgt? Simpler:
  // weighted graph via two rounds of coarsening is tested in contract_test;
  // here use a weighted builder.
  GraphBuilder b(g.num_vertices());
  Rng wrng(7);
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    for (vid_t v : g.neighbors(u)) {
      if (u < v) b.add_edge(u, v, 1 + static_cast<ewt_t>(wrng.next_below(20)));
    }
  }
  Graph wg = std::move(b).build();
  ewt_t hem_total = 0, lem_total = 0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Rng r1(seed), r2(seed);
    hem_total += compute_matching(wg, MatchingScheme::kHeavyEdge, {}, r1).weight;
    lem_total += compute_matching(wg, MatchingScheme::kLightEdge, {}, r2).weight;
  }
  EXPECT_GT(hem_total, lem_total);
}

TEST(MatchingTest, HcmUsesEdgeDensity) {
  // Four vertices with *stable* density preferences (each vertex's densest
  // option prefers it back), so every random visit order yields the same
  // matching {(0,1), (2,3)}:
  //   density(0,1) = 2*(4+4+1)/2 = 9     density(0,2) = 2*(4+0+1)/2 = 5
  //   density(2,3) = 2*(0+0+10)/2 = 10   density(1,3) = 2*(4+0+1)/2 = 5
  // Note HEM would see a tie for vertex 0 (both its edges weigh 1) and
  // would *prefer* 2-3's weight-10 edge regardless of density — the
  // contracted-edge-weight term is what HCM adds.
  GraphBuilder b(4);
  b.add_edge(0, 1, 1);
  b.add_edge(0, 2, 1);
  b.add_edge(1, 3, 1);
  b.add_edge(2, 3, 10);
  Graph g = std::move(b).build();
  std::vector<ewt_t> cewgt = {4, 4, 0, 0};
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    Rng rng(seed);
    Matching m = compute_matching(g, MatchingScheme::kHeavyClique, cewgt, rng);
    EXPECT_EQ(m.match, (std::vector<vid_t>{1, 0, 3, 2})) << "seed " << seed;
  }
}

TEST(MatchingTest, IsolatedVerticesStayUnmatched) {
  Graph g = empty_graph(5);
  Rng rng(0);
  Matching m = compute_matching(g, MatchingScheme::kRandom, {}, rng);
  EXPECT_EQ(m.pairs, 0);
  for (vid_t v = 0; v < 5; ++v) EXPECT_EQ(m.match[static_cast<std::size_t>(v)], v);
}

TEST(MatchingTest, PathMatchingHasLinearSize) {
  // A maximal matching on a path of n vertices has >= (n-1)/3 edges
  // (every unmatched edge is adjacent to a matched one).
  Graph g = path_graph(100);
  Rng rng(12);
  Matching m = compute_matching(g, MatchingScheme::kRandom, {}, rng);
  EXPECT_GE(m.pairs, 33);
}

TEST(MatchingTest, IsMaximalMatchingRejectsBadInvolution) {
  Graph g = path_graph(4);
  Matching m;
  m.match = {1, 0, 3, 1};  // 3 -> 1 but 1 -> 0
  EXPECT_FALSE(is_maximal_matching(g, m));
}

TEST(MatchingTest, IsMaximalMatchingRejectsNonEdgePair) {
  Graph g = path_graph(4);
  Matching m;
  m.match = {2, 3, 0, 1};  // (0,2) and (1,3) are not edges of the path
  EXPECT_FALSE(is_maximal_matching(g, m));
}

TEST(MatchingTest, IsMaximalMatchingRejectsNonMaximal) {
  Graph g = path_graph(2);
  Matching m;
  m.match = {0, 1};  // both unmatched though edge (0,1) exists
  EXPECT_FALSE(is_maximal_matching(g, m));
}

TEST(MatchingTest, RejectsWrongSizedCewgt) {
  // A non-empty cewgt span must cover every vertex: HCM reads cewgt[v] for
  // both endpoints, so a short span would index out of bounds (and any
  // wrong-sized span means the caller paired the wrong level's buffers).
  Graph g = path_graph(6);
  Rng rng(5);
  std::vector<ewt_t> short_cewgt(5, 0);
  EXPECT_THROW(compute_matching(g, MatchingScheme::kHeavyClique, short_cewgt, rng),
               std::invalid_argument);
  std::vector<ewt_t> long_cewgt(7, 0);
  EXPECT_THROW(compute_matching(g, MatchingScheme::kHeavyEdge, long_cewgt, rng),
               std::invalid_argument);
  // Empty keeps its documented "level 0: all zeros" meaning.
  Matching m = compute_matching(g, MatchingScheme::kHeavyClique, {}, rng);
  EXPECT_TRUE(is_maximal_matching(g, m));
}

}  // namespace
}  // namespace mgp
