#include "obs/report.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace mgp::obs {
namespace {

BisectionReport make_bisection(std::int64_t n, std::int64_t final_cut) {
  BisectionReport b;
  b.n = n;
  b.total_weight = n;
  b.target0 = n / 2;
  b.num_levels = 2;
  b.coarsest_n = n / 4;
  b.initpart_candidate_cuts = {9, 7, 8};
  b.initial_cut = 7;
  b.final_cut = final_cut;
  b.final_balance = 1.02;
  LevelReport l;
  l.level = 0;
  l.vertices = n;
  l.edges = 3 * n;
  l.total_vertex_weight = n;
  l.matched_fraction = 0.5;  // exactly representable: stable in %.17g output
  l.cut_before_refine = 8;
  l.cut_after_refine = final_cut;
  l.balance = 1.02;
  l.refined = true;
  KlPassReport p;
  p.pass = 1;
  p.moves_attempted = 12;
  p.moves_kept = 10;
  p.moves_undone = 2;
  p.insertions = 20;
  p.cut_before = 8;
  p.cut_after = final_cut;
  p.early_exit = true;
  p.queue_peak = 6;
  l.kl_passes.push_back(p);
  b.levels.push_back(l);
  return b;
}

TEST(RunReportTest, AppendsAndExposesBisections) {
  RunReport rep;
  EXPECT_EQ(rep.num_bisections(), 0u);
  rep.add_bisection(make_bisection(100, 5));
  rep.add_bisection(make_bisection(50, 3));
  EXPECT_EQ(rep.num_bisections(), 2u);
  const auto bis = rep.bisections();
  ASSERT_EQ(bis.size(), 2u);
  EXPECT_EQ(bis[0].n, 100);
  EXPECT_EQ(bis[1].n, 50);
  ASSERT_EQ(bis[0].levels.size(), 1u);
  ASSERT_EQ(bis[0].levels[0].kl_passes.size(), 1u);
  EXPECT_EQ(bis[0].levels[0].kl_passes[0].moves_kept, 10);
}

TEST(RunReportTest, PhaseTimesAccumulate) {
  RunReport rep;
  PhaseTimers a;
  a.add(PhaseTimers::kCoarsen, 1.0);
  a.add(PhaseTimers::kRefine, 0.5);
  PhaseTimers b;
  b.add(PhaseTimers::kCoarsen, 0.25);
  rep.add_phase_times(a);
  rep.add_phase_times(b);
  const PhaseTimers pt = rep.phase_times();
  EXPECT_DOUBLE_EQ(pt.get(PhaseTimers::kCoarsen), 1.25);
  EXPECT_DOUBLE_EQ(pt.get(PhaseTimers::kRefine), 0.5);
}

TEST(RunReportTest, SerializationIsStableAcrossInsertionOrder) {
  // Pool scheduling decides completion order; the JSON must not.
  std::vector<BisectionReport> items;
  items.push_back(make_bisection(400, 11));
  items.push_back(make_bisection(200, 9));
  items.push_back(make_bisection(200, 4));
  items.push_back(make_bisection(100, 2));

  RunReport forward;
  forward.tool = "report_test";
  for (const auto& b : items) forward.add_bisection(BisectionReport(b));
  RunReport backward;
  backward.tool = "report_test";
  for (auto it = items.rbegin(); it != items.rend(); ++it) {
    backward.add_bisection(BisectionReport(*it));
  }
  EXPECT_EQ(forward.to_json(), backward.to_json());
  // Larger subgraphs (roots of the recursion tree) serialize first.
  const std::string json = forward.to_json();
  EXPECT_LT(json.find("\"n\": 400"), json.find("\"n\": 200"));
  EXPECT_LT(json.find("\"n\": 200"), json.find("\"n\": 100"));
  // Ties on n break on the remaining content key, ascending final_cut here.
  EXPECT_LT(json.find("\"final_cut\": 4"), json.find("\"final_cut\": 9"));
}

TEST(RunReportTest, JsonCarriesMetadataPhaseTimesAndStructure) {
  RunReport rep;
  rep.tool = "report_test";
  rep.scheme = "HEM+GGGP+BKLGR";
  rep.k = 8;
  rep.threads = 4;
  rep.seed = 123456789;
  PhaseTimers pt;
  pt.add(PhaseTimers::kInitPart, 0.125);
  rep.add_phase_times(pt);
  rep.add_bisection(make_bisection(64, 6));
  const std::string json = rep.to_json();
  EXPECT_NE(json.find("\"version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"tool\": \"report_test\""), std::string::npos);
  EXPECT_NE(json.find("\"scheme\": \"HEM+GGGP+BKLGR\""), std::string::npos);
  EXPECT_NE(json.find("\"k\": 8"), std::string::npos);
  EXPECT_NE(json.find("\"threads\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"seed\": 123456789"), std::string::npos);
  // Phase times use the paper's vocabulary.
  EXPECT_NE(json.find("\"ctime_s\""), std::string::npos);
  EXPECT_NE(json.find("\"itime_s\": 0.125"), std::string::npos);
  EXPECT_NE(json.find("\"rtime_s\""), std::string::npos);
  EXPECT_NE(json.find("\"ptime_s\""), std::string::npos);
  EXPECT_NE(json.find("\"utime_s\": 0.125"), std::string::npos);
  // The bisection ladder and KL pass detail survive serialization.
  EXPECT_NE(json.find("\"initpart_candidate_cuts\""), std::string::npos);
  EXPECT_NE(json.find("\"matched_fraction\": 0.5"), std::string::npos);
  EXPECT_NE(json.find("\"early_exit\": true"), std::string::npos);
  EXPECT_NE(json.find("\"queue_peak\": 6"), std::string::npos);
  // No metrics snapshot passed: no metrics key.
  EXPECT_EQ(json.find("\"metrics\""), std::string::npos);
}

TEST(RunReportTest, EmbedsMetricsSnapshotWhenGiven) {
  RunReport rep;
  MetricsRegistry reg;
  reg.add(reg.counter("test.counter"), 17);
  reg.record_max(reg.max_gauge("test.gauge"), 5);
  reg.observe(reg.histogram("test.hist", {10}), 3);
  const MetricsSnapshot snap = reg.snapshot();
  const std::string json = rep.to_json(&snap);
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"test.counter\": 17"), std::string::npos);
  EXPECT_NE(json.find("\"test.gauge\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"test.hist\""), std::string::npos);
  EXPECT_NE(json.find("\"upper_bounds\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"sum\": 3"), std::string::npos);
}

TEST(RunReportTest, WriteJsonFileRoundTrips) {
  RunReport rep;
  rep.tool = "file_test";
  rep.add_bisection(make_bisection(32, 2));
  const std::string path = "report_test_out.json";
  ASSERT_TRUE(rep.write_json_file(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(buf.str(), rep.to_json());
  in.close();
  std::remove(path.c_str());
  EXPECT_FALSE(rep.write_json_file("/nonexistent-dir/report.json"));
}

TEST(RunReportTest, ConcurrentAppendsAreSafe) {
  RunReport rep;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < kPerThread; ++i) {
        rep.add_bisection(make_bisection(64 + t, i));
        PhaseTimers pt;
        pt.add(PhaseTimers::kProject, 0.001);
        rep.add_phase_times(pt);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(rep.num_bisections(),
            static_cast<std::size_t>(kThreads) * kPerThread);
  EXPECT_NEAR(rep.phase_times().get(PhaseTimers::kProject),
              kThreads * kPerThread * 0.001, 1e-9);
}

TEST(ObsContextTest, PipelineMetricsArePreRegistered) {
  Obs ob;
  EXPECT_TRUE(ob.collect_report);
  ob.metrics.add(ob.pipeline.bisections, 3);
  ob.metrics.add(ob.pipeline.kl_passes, 5);
  ob.metrics.record_max(ob.pipeline.queue_peak, 40);
  ob.metrics.observe(ob.pipeline.shrink_pct, 55);
  const MetricsSnapshot snap = ob.metrics.snapshot();
  EXPECT_EQ(snap.counter_value("pipeline.bisections"), 3);
  EXPECT_EQ(snap.counter_value("kl.passes"), 5);
  EXPECT_EQ(snap.counter_value("pipeline.coarsen_levels"), 0);
  EXPECT_EQ(snap.counter_value("pipeline.matched_pairs"), 0);
  EXPECT_EQ(snap.counter_value("kl.moves_attempted"), 0);
  EXPECT_EQ(snap.counter_value("kl.moves_kept"), 0);
  EXPECT_EQ(snap.counter_value("kl.moves_undone"), 0);
  EXPECT_EQ(snap.counter_value("kl.insertions"), 0);
  EXPECT_EQ(snap.counter_value("kl.early_exits"), 0);
  EXPECT_EQ(snap.gauge_max("kl.queue_peak"), 40);
  const auto* h = snap.histogram("coarsen.shrink_pct");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 1);
  EXPECT_EQ(h->sum, 55);
}

}  // namespace
}  // namespace mgp::obs
