#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace mgp::obs {
namespace {

TEST(MetricsRegistryTest, CounterAccumulates) {
  MetricsRegistry reg;
  const auto id = reg.counter("test.counter");
  reg.add(id);
  reg.add(id, 41);
  EXPECT_EQ(reg.current(id), 42);
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter_value("test.counter"), 42);
  EXPECT_EQ(snap.counter_value("no.such"), 0);
}

TEST(MetricsRegistryTest, RegistrationIsIdempotentByName) {
  MetricsRegistry reg;
  const auto a = reg.counter("dup");
  const auto b = reg.counter("dup");
  EXPECT_EQ(a, b);
  reg.add(a, 1);
  reg.add(b, 1);
  EXPECT_EQ(reg.current(a), 2);
  EXPECT_EQ(reg.size(), 1);
}

TEST(MetricsRegistryTest, MaxGaugeKeepsMaximum) {
  MetricsRegistry reg;
  const auto id = reg.max_gauge("test.gauge");
  EXPECT_EQ(reg.current(id), 0);  // never recorded
  reg.record_max(id, 5);
  reg.record_max(id, 3);
  reg.record_max(id, 9);
  reg.record_max(id, 7);
  EXPECT_EQ(reg.current(id), 9);
  EXPECT_EQ(reg.snapshot().gauge_max("test.gauge"), 9);
}

TEST(MetricsRegistryTest, HistogramBucketsSumAndCount) {
  MetricsRegistry reg;
  const auto id = reg.histogram("test.hist", {10, 20, 30});
  reg.observe(id, 5);    // bucket 0 (<= 10)
  reg.observe(id, 10);   // bucket 0 (inclusive bound)
  reg.observe(id, 15);   // bucket 1
  reg.observe(id, 100);  // +inf bucket
  const MetricsSnapshot snap = reg.snapshot();
  const auto* h = snap.histogram("test.hist");
  ASSERT_NE(h, nullptr);
  ASSERT_EQ(h->counts.size(), 4u);  // 3 bounds + inf
  EXPECT_EQ(h->counts[0], 2);
  EXPECT_EQ(h->counts[1], 1);
  EXPECT_EQ(h->counts[2], 0);
  EXPECT_EQ(h->counts[3], 1);
  EXPECT_EQ(h->count, 4);
  EXPECT_EQ(h->sum, 130);
  EXPECT_EQ(snap.histogram("absent"), nullptr);
}

TEST(MetricsRegistryTest, MergesAcrossThreads) {
  MetricsRegistry reg;
  const auto counter = reg.counter("mt.counter");
  const auto gauge = reg.max_gauge("mt.gauge");
  const auto hist = reg.histogram("mt.hist", {100});
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      for (int i = 0; i < kAddsPerThread; ++i) reg.add(counter);
      reg.record_max(gauge, t + 1);
      reg.observe(hist, t < 4 ? 50 : 500);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(reg.current(counter), kThreads * kAddsPerThread);
  EXPECT_EQ(reg.current(gauge), kThreads);
  const MetricsSnapshot snap = reg.snapshot();
  const auto* h = snap.histogram("mt.hist");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->counts[0], 4);
  EXPECT_EQ(h->counts[1], 4);
  EXPECT_EQ(h->count, kThreads);
}

TEST(MetricsRegistryTest, TwoRegistriesAreIndependent) {
  // The thread-local shard cache is keyed by a process-unique registry uid;
  // a second registry must never see the first one's shard.
  MetricsRegistry a;
  MetricsRegistry b;
  const auto ia = a.counter("same.name");
  const auto ib = b.counter("same.name");
  a.add(ia, 7);
  b.add(ib, 11);
  EXPECT_EQ(a.current(ia), 7);
  EXPECT_EQ(b.current(ib), 11);
}

TEST(MetricsRegistryTest, RegistryOutlivedByNoThreadStillSnapshots) {
  // A thread that wrote and exited must leave its contribution visible.
  MetricsRegistry reg;
  const auto id = reg.counter("ephemeral");
  std::thread([&]() { reg.add(id, 3); }).join();
  EXPECT_EQ(reg.current(id), 3);
}

TEST(PhaseMetricsTest, AccumulatesAndMergesIntoPhaseTimers) {
  MetricsRegistry reg;
  PhaseMetrics pm(reg);
  pm.add_ns(PhaseTimers::kCoarsen, 1'500'000'000);  // 1.5 s
  pm.add_ns(PhaseTimers::kRefine, 500'000'000);
  PhaseTimers pt = pm.view();
  EXPECT_NEAR(pt.get(PhaseTimers::kCoarsen), 1.5, 1e-9);
  EXPECT_NEAR(pt.get(PhaseTimers::kRefine), 0.5, 1e-9);
  EXPECT_NEAR(pt.utime(), 0.5, 1e-9);

  PhaseTimers out;
  out.add(PhaseTimers::kCoarsen, 1.0);
  pm.merge_into(out);
  EXPECT_NEAR(out.get(PhaseTimers::kCoarsen), 2.5, 1e-9);
}

TEST(PhaseMetricsTest, AddPhaseTimersRoundTrips) {
  MetricsRegistry reg;
  PhaseMetrics pm(reg);
  PhaseTimers in;
  in.add(PhaseTimers::kInitPart, 0.25);
  in.add(PhaseTimers::kProject, 0.75);
  pm.add(in);
  PhaseTimers out = pm.view();
  EXPECT_NEAR(out.get(PhaseTimers::kInitPart), 0.25, 1e-6);
  EXPECT_NEAR(out.get(PhaseTimers::kProject), 0.75, 1e-6);
}

TEST(PhaseMetricsTest, ConcurrentAddsFromManyThreads) {
  MetricsRegistry reg;
  PhaseMetrics pm(reg);
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&]() {
      for (int i = 0; i < 1000; ++i) pm.add_ns(PhaseTimers::kRefine, 1'000'000);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_NEAR(pm.view().get(PhaseTimers::kRefine), kThreads * 1.0, 1e-6);
}

TEST(PhaseMetricsTest, ScopeTimesItsBlock) {
  MetricsRegistry reg;
  PhaseMetrics pm(reg);
  {
    PhaseMetrics::Scope scope(pm, PhaseTimers::kInitPart);
    volatile double sink = 0;
    for (int i = 0; i < 10000; ++i) sink = sink + i;
  }
  EXPECT_GT(pm.view().get(PhaseTimers::kInitPart), 0.0);
  EXPECT_DOUBLE_EQ(pm.view().get(PhaseTimers::kCoarsen), 0.0);
}

}  // namespace
}  // namespace mgp::obs
