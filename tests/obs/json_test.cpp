#include "obs/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

namespace mgp::obs {
namespace {

TEST(JsonWriterTest, CompactObject) {
  std::ostringstream os;
  JsonWriter w(os, /*indent=*/0);
  w.begin_object();
  w.kv("a", std::int64_t{1});
  w.kv("b", "two");
  w.kv("c", true);
  w.end_object();
  EXPECT_EQ(os.str(), "{\"a\": 1,\"b\": \"two\",\"c\": true}");
}

TEST(JsonWriterTest, CompactArrayAndNesting) {
  std::ostringstream os;
  JsonWriter w(os, 0);
  w.begin_object();
  w.key("xs");
  w.begin_array();
  w.value(1);
  w.value(2);
  w.begin_object();
  w.kv("deep", false);
  w.end_object();
  w.end_array();
  w.end_object();
  EXPECT_EQ(os.str(), "{\"xs\": [1,2,{\"deep\": false}]}");
}

TEST(JsonWriterTest, EmptyContainers) {
  std::ostringstream os;
  JsonWriter w(os, 2);
  w.begin_object();
  w.key("o");
  w.begin_object();
  w.end_object();
  w.key("a");
  w.begin_array();
  w.end_array();
  w.end_object();
  // Empty containers close on the same line even in indented mode.
  EXPECT_NE(os.str().find("\"o\": {}"), std::string::npos);
  EXPECT_NE(os.str().find("\"a\": []"), std::string::npos);
}

TEST(JsonWriterTest, IndentedLayout) {
  std::ostringstream os;
  JsonWriter w(os, 2);
  w.begin_object();
  w.kv("a", 1);
  w.end_object();
  EXPECT_EQ(os.str(), "{\n  \"a\": 1\n}");
}

TEST(JsonWriterTest, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(JsonWriter::escape("plain"), "plain");
  EXPECT_EQ(JsonWriter::escape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonWriter::escape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonWriter::escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(JsonWriter::escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  std::ostringstream os;
  JsonWriter w(os, 0);
  w.begin_array();
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.value(std::numeric_limits<double>::infinity());
  w.value(1.5);
  w.null();
  w.end_array();
  EXPECT_EQ(os.str(), "[null,null,1.5,null]");
}

TEST(JsonWriterTest, Uint64RoundTripsLargeValues) {
  std::ostringstream os;
  JsonWriter w(os, 0);
  w.value(std::uint64_t{18446744073709551615ULL});
  EXPECT_EQ(os.str(), "18446744073709551615");
}

}  // namespace
}  // namespace mgp::obs
