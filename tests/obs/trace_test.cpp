#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <future>
#include <sstream>
#include <string>
#include <vector>

#include "support/thread_pool.hpp"

namespace mgp::obs {
namespace {

// These tests exercise the real recording machinery; under MGP_OBS=OFF the
// Span class is an empty stub and there is nothing to test.
#define REQUIRE_OBS_COMPILED() \
  if (!kObsCompiled) GTEST_SKIP() << "library built with MGP_OBS=OFF"

TEST(TraceTest, DisabledByDefaultAndSpansAreDropped) {
  ASSERT_FALSE(tracing_enabled());
  {
    Span s("dropped");
    s.arg("x", 1);
  }
  EXPECT_EQ(trace_event_count(), 0u);
}

TEST(TraceTest, SpanRecordsOnlyBetweenStartAndStop) {
  REQUIRE_OBS_COMPILED();
  trace_start();
  EXPECT_TRUE(tracing_enabled());
  {
    Span s("recorded");
    s.arg("n", 42);
  }
  trace_stop();
  EXPECT_FALSE(tracing_enabled());
  EXPECT_EQ(trace_event_count(), 1u);
  {
    Span s("after_stop");
  }
  EXPECT_EQ(trace_event_count(), 1u);  // buffered events survive stop
}

TEST(TraceTest, StartClearsPreviousEvents) {
  REQUIRE_OBS_COMPILED();
  trace_start();
  { Span s("old"); }
  trace_stop();
  ASSERT_EQ(trace_event_count(), 1u);
  trace_start();
  EXPECT_EQ(trace_event_count(), 0u);
  { Span s("new"); }
  trace_stop();
  EXPECT_EQ(trace_event_count(), 1u);
  trace_start();  // leave the buffer clean for later tests
  trace_stop();
}

TEST(TraceTest, MgpSpanMacroRecords) {
  REQUIRE_OBS_COMPILED();
  trace_start();
  {
    MGP_SPAN("macro_span");
  }
  trace_stop();
  EXPECT_EQ(trace_event_count(), 1u);
  trace_start();
  trace_stop();
}

TEST(TraceTest, AtMostTwoArgsAreKept) {
  REQUIRE_OBS_COMPILED();
  trace_start();
  {
    Span s("many_args");
    s.arg("a", 1);
    s.arg("b", 2);
    s.arg("c", 3);  // dropped, not UB
  }
  trace_stop();
  const std::string json = trace_chrome_json();
  EXPECT_NE(json.find("\"a\""), std::string::npos);
  EXPECT_NE(json.find("\"b\""), std::string::npos);
  EXPECT_EQ(json.find("\"c\": 3"), std::string::npos);
  trace_start();
  trace_stop();
}

TEST(TraceTest, ChromeJsonHasExpectedStructure) {
  REQUIRE_OBS_COMPILED();
  set_thread_name("trace-test-main");
  trace_start();
  {
    Span s("outer");
    s.arg("n", 123);
    { Span inner("inner"); }
  }
  trace_stop();
  const std::string json = trace_chrome_json();
  // Top-level Chrome trace-event envelope, loadable by Perfetto.
  EXPECT_EQ(json.find("{"), 0u);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // Complete ("X") events with the span names and the arg.
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"inner\""), std::string::npos);
  EXPECT_NE(json.find("\"n\": 123"), std::string::npos);
  EXPECT_NE(json.find("\"dur\""), std::string::npos);
  // Thread-name metadata events.
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("trace-test-main"), std::string::npos);
  trace_start();
  trace_stop();
}

TEST(TraceTest, WriteChromeCreatesFile) {
  REQUIRE_OBS_COMPILED();
  trace_start();
  { Span s("to_file"); }
  trace_stop();
  const std::string path = "trace_test_out.json";
  ASSERT_TRUE(trace_write_chrome(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(buf.str().find("to_file"), std::string::npos);
  in.close();
  std::remove(path.c_str());
  trace_start();
  trace_stop();
}

TEST(TraceTest, WriteChromeFailsOnBadPath) {
  REQUIRE_OBS_COMPILED();
  EXPECT_FALSE(trace_write_chrome("/nonexistent-dir/trace.json"));
}

// Concurrency test, run at the two pool sizes the sanitizers workflow
// exercises under TSan.  Every pool task records spans concurrently with
// the main thread; pool.task wrapper spans add one event per executed task.
class TraceThreadedTest : public ::testing::TestWithParam<int> {};

TEST_P(TraceThreadedTest, ManyThreadsRecordConcurrently) {
  REQUIRE_OBS_COMPILED();
  const int threads = GetParam();
  constexpr int kTasks = 64;
  constexpr int kSpansPerTask = 50;
  trace_start();
  {
    ThreadPool pool(threads);
    std::vector<std::future<void>> futs;
    futs.reserve(kTasks);
    for (int t = 0; t < kTasks; ++t) {
      futs.push_back(pool.submit([&]() {
        for (int i = 0; i < kSpansPerTask; ++i) {
          Span s("worker_span");
          s.arg("i", i);
        }
      }));
    }
    for (auto& f : futs) pool.wait_help(f);
  }
  trace_stop();
  // At least the explicit spans; pool.task wrappers may add more.
  EXPECT_GE(trace_event_count(),
            static_cast<std::size_t>(kTasks) * kSpansPerTask);
  const std::string json = trace_chrome_json();
  EXPECT_NE(json.find("worker_span"), std::string::npos);
  if (threads > 1) {
    // Worker threads self-label, and executed tasks get wrapper spans.
    EXPECT_NE(json.find("pool-worker-0"), std::string::npos);
  }
  trace_start();
  trace_stop();
}

INSTANTIATE_TEST_SUITE_P(PoolSizes, TraceThreadedTest, ::testing::Values(2, 8),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "threads" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace mgp::obs
