// End-to-end service tests over real sockets: an in-process Server plus
// Client connections on a Unix-domain (and TCP loopback) transport.
//
// The load-bearing assertion is byte-identity: a partition computed through
// the server — any concurrency, any queue interleaving, any cache state —
// equals what the offline pipeline produces for the same (graph, k, seed,
// config).  Around it sit the service-behaviour contracts: cache hits on
// repeats, OVERLOADED instead of hangs when the admission queue is full,
// DEADLINE_EXCEEDED for expired budgets (with the worker released), error
// answers for malformed frames, and a clean drain on shutdown.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <semaphore>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/kway.hpp"
#include "core/kway_direct.hpp"
#include "dynamic/churn.hpp"
#include "dynamic/delta.hpp"
#include "dynamic/incremental.hpp"
#include "graph/generators.hpp"
#include "server/client.hpp"
#include "server/net.hpp"
#include "server/server.hpp"
#include "support/rng.hpp"

namespace mgp::server {
namespace {

std::string socket_path(const std::string& name) {
  return ::testing::TempDir() + "/mgp_" + name + ".sock";
}

/// The configuration RequestOptions defaults map to (see config_from_head).
MultilevelConfig offline_cfg() {
  MultilevelConfig cfg;
  cfg.matching = MatchingScheme::kHeavyEdge;
  cfg.initpart = InitPartScheme::kGGGP;
  cfg.refine = RefinePolicy::kBKLGR;
  cfg.coarsen_to = 100;
  cfg.threads = 1;
  return cfg;
}

KwayResult offline(const Graph& g, part_t k, std::uint64_t seed) {
  Rng rng(seed);
  return kway_partition(g, k, offline_cfg(), rng);
}

/// The direct-path comparator: what a kDirect request must byte-match.
KwayResult offline_direct(const Graph& g, part_t k, std::uint64_t seed) {
  KwayDirectConfig cfg;
  cfg.base = offline_cfg();
  Rng rng(seed);
  return kway_partition_direct(g, k, cfg, rng);
}

/// Stops and joins the server even when an assertion unwinds the test.
class ServerGuard {
 public:
  explicit ServerGuard(Server& s) : s_(s) {}
  ~ServerGuard() {
    s_.request_stop();
    s_.join();
  }

 private:
  Server& s_;
};

TEST(ServerLoopbackTest, ConcurrentClientsMatchOfflinePipeline) {
  ServerConfig cfg;
  cfg.unix_path = socket_path("concurrent");
  cfg.num_workers = 4;
  Server server(cfg);
  std::string err;
  ASSERT_TRUE(server.start(err)) << err;
  ServerGuard guard(server);

  const Graph g = grid2d(40, 40);
  constexpr int kClients = 8;
  constexpr part_t kParts = 8;
  std::vector<PartitionOutcome> outcomes(kClients);
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      std::string cerr_msg;
      Client client = Client::connect_unix(cfg.unix_path, cerr_msg);
      if (!client.connected()) return;
      RequestOptions opts;
      opts.k = kParts;
      opts.seed = 100 + static_cast<std::uint64_t>(i);
      outcomes[static_cast<std::size_t>(i)] = client.partition(g, opts);
    });
  }
  for (auto& t : threads) t.join();

  for (int i = 0; i < kClients; ++i) {
    const PartitionOutcome& out = outcomes[static_cast<std::size_t>(i)];
    ASSERT_TRUE(out.ok()) << "client " << i << ": " << out.error;
    const KwayResult expect = offline(g, kParts, 100 + static_cast<std::uint64_t>(i));
    EXPECT_EQ(out.part, expect.part) << "seed " << 100 + i;
    EXPECT_EQ(out.edge_cut, expect.edge_cut);
  }
}

TEST(ServerLoopbackTest, DirectModeConcurrentClientsMatchOfflineDirect) {
  // The kway_mode=direct leg of the byte-identity contract: 8 concurrent
  // clients forcing direct k-way all get exactly what the offline direct
  // pipeline computes, regardless of worker/queue interleaving.
  ServerConfig cfg;
  cfg.unix_path = socket_path("direct");
  cfg.num_workers = 4;
  Server server(cfg);
  std::string err;
  ASSERT_TRUE(server.start(err)) << err;
  ServerGuard guard(server);

  const Graph g = grid2d(40, 40);
  constexpr int kClients = 8;
  constexpr part_t kParts = 16;
  std::vector<PartitionOutcome> outcomes(kClients);
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      std::string cerr_msg;
      Client client = Client::connect_unix(cfg.unix_path, cerr_msg);
      if (!client.connected()) return;
      RequestOptions opts;
      opts.k = kParts;
      opts.kway_mode = KwayMode::kDirect;
      opts.seed = 500 + static_cast<std::uint64_t>(i);
      outcomes[static_cast<std::size_t>(i)] = client.partition(g, opts);
    });
  }
  for (auto& t : threads) t.join();

  for (int i = 0; i < kClients; ++i) {
    const PartitionOutcome& out = outcomes[static_cast<std::size_t>(i)];
    ASSERT_TRUE(out.ok()) << "client " << i << ": " << out.error;
    const KwayResult expect =
        offline_direct(g, kParts, 500 + static_cast<std::uint64_t>(i));
    EXPECT_EQ(out.part, expect.part) << "seed " << 500 + i;
    EXPECT_EQ(out.edge_cut, expect.edge_cut);
  }
}

TEST(ServerLoopbackTest, KwayModeSelectsThePipeline) {
  // kAuto's threshold routes small k to recursive bisection and large k to
  // direct; explicit modes override it in both directions.  Each answer is
  // byte-identical to its offline comparator.
  ServerConfig cfg;
  cfg.unix_path = socket_path("kwaymode");
  cfg.direct_min_k = 8;  // make both auto outcomes reachable with modest k
  Server server(cfg);
  std::string err;
  ASSERT_TRUE(server.start(err)) << err;
  ServerGuard guard(server);

  const Graph g = fem2d_tri(20, 20, 4);
  std::string cerr_msg;
  Client client = Client::connect_unix(cfg.unix_path, cerr_msg);
  ASSERT_TRUE(client.connected()) << cerr_msg;

  RequestOptions opts;
  opts.k = 4;  // below the threshold: auto -> recursive bisection
  PartitionOutcome out = client.partition(g, opts);
  ASSERT_TRUE(out.ok()) << out.error;
  EXPECT_EQ(out.part, offline(g, 4, opts.seed).part);

  opts.k = 8;  // at the threshold: auto -> direct
  out = client.partition(g, opts);
  ASSERT_TRUE(out.ok()) << out.error;
  EXPECT_EQ(out.part, offline_direct(g, 8, opts.seed).part);

  opts.kway_mode = KwayMode::kRecursiveBisection;  // explicit override
  out = client.partition(g, opts);
  ASSERT_TRUE(out.ok()) << out.error;
  EXPECT_EQ(out.part, offline(g, 8, opts.seed).part);

  opts.k = 4;
  opts.kway_mode = KwayMode::kDirect;  // explicit override the other way
  out = client.partition(g, opts);
  ASSERT_TRUE(out.ok()) << out.error;
  EXPECT_EQ(out.part, offline_direct(g, 4, opts.seed).part);

  // The mode sits inside the config digest: the three distinct answers for
  // k=8 (auto-direct, forced rb) were cache misses, not collisions.
  EXPECT_EQ(server.cache().stats().hits, 0u);
}

TEST(ServerLoopbackTest, DirectModeDeadlineExpiryReleasesTheWorker) {
  // A deadline that expires mid-queue on a direct-mode request must answer
  // DEADLINE_EXCEEDED and leave the worker able to serve the next direct
  // request (whose bytes still match offline).
  ServerConfig cfg;
  cfg.unix_path = socket_path("directdl");
  cfg.num_workers = 1;
  cfg.test_on_dequeue = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  };
  Server server(cfg);
  std::string err;
  ASSERT_TRUE(server.start(err)) << err;
  ServerGuard guard(server);

  const Graph g = grid2d(24, 24);
  std::string cerr_msg;
  Client client = Client::connect_unix(cfg.unix_path, cerr_msg);
  ASSERT_TRUE(client.connected()) << cerr_msg;

  RequestOptions opts;
  opts.k = 16;
  opts.kway_mode = KwayMode::kDirect;
  opts.deadline_ms = 5;  // burned while the request waits in the hook
  PartitionOutcome expired = client.partition(g, opts);
  EXPECT_EQ(expired.status, Status::kDeadlineExceeded);

  opts.deadline_ms = 0;
  PartitionOutcome ok = client.partition(g, opts);
  ASSERT_TRUE(ok.ok()) << ok.error;
  EXPECT_EQ(ok.part, offline_direct(g, 16, opts.seed).part);
  EXPECT_EQ(server.metrics().snapshot().counter_value("server.deadline_expired"), 1);
}

TEST(ServerLoopbackTest, UnknownKwayModeAnswersBadRequest) {
  ServerConfig cfg;
  cfg.unix_path = socket_path("badmode");
  Server server(cfg);
  std::string err;
  ASSERT_TRUE(server.start(err)) << err;
  ServerGuard guard(server);

  const Graph g = grid2d(8, 8);
  RequestOptions opts;
  opts.k = 2;
  std::vector<std::uint8_t> payload;
  encode_partition_request(g, opts, payload);
  payload[15] = 200;  // not a KwayMode

  Fd fd = connect_unix(cfg.unix_path, err);
  ASSERT_TRUE(fd.valid()) << err;
  ASSERT_TRUE(write_frame(fd.get(), MsgType::kPartitionRequest, payload));
  FrameHeader h;
  std::vector<std::uint8_t> resp;
  ASSERT_EQ(read_frame(fd.get(), h, resp, 1 << 20), ReadFrameResult::kOk);
  ASSERT_EQ(h.type, MsgType::kErrorResponse);
  Status st = Status::kOk;
  std::string msg;
  ASSERT_TRUE(decode_error_response(resp, st, msg));
  EXPECT_EQ(st, Status::kBadRequest);
  EXPECT_NE(msg.find("kway mode"), std::string::npos) << msg;
}

TEST(ServerLoopbackTest, RepeatRequestIsServedFromCache) {
  ServerConfig cfg;
  cfg.unix_path = socket_path("cache");
  Server server(cfg);
  std::string err;
  ASSERT_TRUE(server.start(err)) << err;
  ServerGuard guard(server);

  const Graph g = fem2d_tri(20, 20, 4);
  std::string cerr_msg;
  Client client = Client::connect_unix(cfg.unix_path, cerr_msg);
  ASSERT_TRUE(client.connected()) << cerr_msg;

  RequestOptions opts;
  opts.k = 4;
  PartitionOutcome first = client.partition(g, opts);
  ASSERT_TRUE(first.ok()) << first.error;
  EXPECT_FALSE(first.cache_hit);

  PartitionOutcome second = client.partition(g, opts);
  ASSERT_TRUE(second.ok()) << second.error;
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.part, first.part);
  EXPECT_EQ(second.edge_cut, first.edge_cut);

  // A different deadline must not change the cache identity...
  opts.deadline_ms = 60000;
  PartitionOutcome third = client.partition(g, opts);
  ASSERT_TRUE(third.ok()) << third.error;
  EXPECT_TRUE(third.cache_hit);
  // ...while a different seed must.
  opts.deadline_ms = 0;
  opts.seed += 1;
  PartitionOutcome fourth = client.partition(g, opts);
  ASSERT_TRUE(fourth.ok()) << fourth.error;
  EXPECT_FALSE(fourth.cache_hit);

  EXPECT_EQ(server.metrics().snapshot().counter_value("server.cache_hits"), 2);
  EXPECT_EQ(server.cache().stats().hits, 2u);
}

TEST(ServerLoopbackTest, CoarsenStrategiesServeEndToEndWithSeparateCacheKeys) {
  // The scheme byte sits in the digested config region, so the same
  // (graph, k, seed) under different coarsening strategies must be three
  // distinct cache entries — and each served partition must equal the
  // offline pipeline run with the same strategy.
  ServerConfig cfg;
  cfg.unix_path = socket_path("strategy_cache");
  Server server(cfg);
  std::string err;
  ASSERT_TRUE(server.start(err)) << err;
  ServerGuard guard(server);

  const Graph g = fem2d_tri(20, 20, 4);
  std::string cerr_msg;
  Client client = Client::connect_unix(cfg.unix_path, cerr_msg);
  ASSERT_TRUE(client.connected()) << cerr_msg;

  RequestOptions opts;
  opts.k = 4;
  opts.kway_mode = KwayMode::kRecursiveBisection;
  for (const CoarsenStrategy strategy :
       {CoarsenStrategy::kMatching, CoarsenStrategy::kAlgebraicDistance,
        CoarsenStrategy::kNLevel}) {
    opts.coarsen_strategy = strategy;
    PartitionOutcome first = client.partition(g, opts);
    ASSERT_TRUE(first.ok()) << first.error;
    EXPECT_FALSE(first.cache_hit)
        << "strategy " << static_cast<int>(strategy) << " collided";

    MultilevelConfig offline;
    offline.coarsen.strategy = strategy;
    Rng rng(opts.seed);
    const KwayResult want = kway_partition(g, opts.k, offline, rng);
    EXPECT_EQ(first.part, want.part)
        << "strategy " << static_cast<int>(strategy);
    EXPECT_EQ(first.edge_cut, want.edge_cut);

    // Repeats under the same strategy do hit.
    PartitionOutcome again = client.partition(g, opts);
    ASSERT_TRUE(again.ok()) << again.error;
    EXPECT_TRUE(again.cache_hit);
    EXPECT_EQ(again.part, first.part);
  }
  EXPECT_EQ(server.cache().stats().hits, 3u);
  EXPECT_EQ(server.cache().stats().misses, 3u);
}

TEST(ServerLoopbackTest, FullQueueAnswersOverloadedWithoutHanging) {
  std::counting_semaphore<8> entered(0);  // worker reached the dequeue hook
  std::counting_semaphore<8> hold(0);     // permits for the hook to proceed
  ServerConfig cfg;
  cfg.unix_path = socket_path("overload");
  cfg.num_workers = 1;
  cfg.queue_capacity = 1;
  cfg.test_on_dequeue = [&] {
    entered.release();
    hold.acquire();
  };
  Server server(cfg);
  std::string err;
  ASSERT_TRUE(server.start(err)) << err;
  ServerGuard guard(server);

  const Graph g = grid2d(16, 16);
  RequestOptions opts;
  opts.k = 2;

  // Request A occupies the only worker (held inside the hook)...
  PartitionOutcome a_out, b_out;
  std::thread a([&] {
    std::string e;
    Client c = Client::connect_unix(cfg.unix_path, e);
    if (c.connected()) a_out = c.partition(g, opts);
  });
  entered.acquire();

  // ...request B takes the single queue slot...
  std::thread b([&] {
    std::string e;
    Client c = Client::connect_unix(cfg.unix_path, e);
    if (c.connected()) b_out = c.partition(g, opts);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // ...so request C must be rejected inline, not left hanging.
  std::string e;
  Client c = Client::connect_unix(cfg.unix_path, e);
  ASSERT_TRUE(c.connected()) << e;
  PartitionOutcome c_out = c.partition(g, opts);

  hold.release(4);  // let everything drain before asserting
  a.join();
  b.join();

  EXPECT_TRUE(a_out.ok()) << a_out.error;
  // B and C race for the queue slot; exactly one of them computed and the
  // other was turned away at admission.
  const bool b_won = b_out.ok() && c_out.status == Status::kOverloaded;
  const bool c_won = c_out.ok() && b_out.status == Status::kOverloaded;
  EXPECT_TRUE(b_won || c_won) << "B: " << to_string(b_out.status)
                              << ", C: " << to_string(c_out.status);
  EXPECT_EQ(server.metrics().snapshot().counter_value("server.rejected_overloaded"),
            1);
}

TEST(ServerLoopbackTest, ExpiredDeadlineReleasesTheWorker) {
  ServerConfig cfg;
  cfg.unix_path = socket_path("deadline");
  cfg.num_workers = 1;
  cfg.test_on_dequeue = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
  };
  Server server(cfg);
  std::string err;
  ASSERT_TRUE(server.start(err)) << err;
  ServerGuard guard(server);

  const Graph g = grid2d(16, 16);
  std::string cerr_msg;
  Client client = Client::connect_unix(cfg.unix_path, cerr_msg);
  ASSERT_TRUE(client.connected()) << cerr_msg;

  RequestOptions opts;
  opts.k = 2;
  opts.deadline_ms = 5;  // burned while the request waits in the hook
  PartitionOutcome expired = client.partition(g, opts);
  EXPECT_EQ(expired.status, Status::kDeadlineExceeded);
  EXPECT_FALSE(expired.error.empty());

  // The worker survived the expiry and serves the next request normally.
  opts.deadline_ms = 0;
  PartitionOutcome ok = client.partition(g, opts);
  ASSERT_TRUE(ok.ok()) << ok.error;
  EXPECT_EQ(ok.part, offline(g, 2, opts.seed).part);
  EXPECT_EQ(server.metrics().snapshot().counter_value("server.deadline_expired"), 1);
}

TEST(ServerLoopbackTest, WorkerSurvivesAThrowingJob) {
  // Anything a request does that throws past the handler must hit the
  // worker's exception barrier, answer INTERNAL, and leave the (only)
  // worker alive for the next request — not std::terminate the daemon.
  std::atomic<int> calls{0};
  ServerConfig cfg;
  cfg.unix_path = socket_path("barrier");
  cfg.num_workers = 1;
  cfg.test_on_dequeue = [&] {
    if (calls.fetch_add(1) == 0) throw std::runtime_error("injected worker fault");
  };
  Server server(cfg);
  std::string err;
  ASSERT_TRUE(server.start(err)) << err;
  ServerGuard guard(server);

  const Graph g = grid2d(16, 16);
  std::string cerr_msg;
  Client client = Client::connect_unix(cfg.unix_path, cerr_msg);
  ASSERT_TRUE(client.connected()) << cerr_msg;

  RequestOptions opts;
  opts.k = 2;
  PartitionOutcome faulted = client.partition(g, opts);
  EXPECT_EQ(faulted.status, Status::kInternal);
  EXPECT_NE(faulted.error.find("injected worker fault"), std::string::npos)
      << faulted.error;

  PartitionOutcome ok = client.partition(g, opts);
  ASSERT_TRUE(ok.ok()) << ok.error;
  EXPECT_EQ(ok.part, offline(g, 2, opts.seed).part);
}

TEST(ServerLoopbackTest, FinishedConnectionThreadsAreReaped) {
  ServerConfig cfg;
  cfg.unix_path = socket_path("reap");
  Server server(cfg);
  std::string err;
  ASSERT_TRUE(server.start(err)) << err;
  ServerGuard guard(server);

  const Graph g = grid2d(8, 8);
  RequestOptions opts;
  opts.k = 2;
  for (int i = 0; i < 16; ++i) {
    std::string e;
    Client client = Client::connect_unix(cfg.unix_path, e);
    ASSERT_TRUE(client.connected()) << e;
    ASSERT_TRUE(client.partition(g, opts).ok());
  }

  // Each accept reaps previously finished connection threads, so after the
  // churn the tracked slot count must stay small — not grow to 16.  Probe
  // connections trigger the reap; retry because a just-closed connection's
  // thread may still be announcing itself.
  bool bounded = false;
  for (int attempt = 0; attempt < 200 && !bounded; ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    std::string e;
    Client probe = Client::connect_unix(cfg.unix_path, e);
    ASSERT_TRUE(probe.connected()) << e;
    std::string json;
    ASSERT_TRUE(probe.stats(json, e)) << e;  // roundtrip: accept completed
    bounded = server.connection_slots() <= 4;
  }
  EXPECT_TRUE(bounded) << "slots: " << server.connection_slots();
}

TEST(ServerLoopbackTest, MalformedPayloadAnswersBadRequest) {
  ServerConfig cfg;
  cfg.unix_path = socket_path("badreq");
  Server server(cfg);
  std::string err;
  ASSERT_TRUE(server.start(err)) << err;
  ServerGuard guard(server);

  Fd fd = connect_unix(cfg.unix_path, err);
  ASSERT_TRUE(fd.valid()) << err;
  const std::uint8_t garbage[10] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  ASSERT_TRUE(write_frame(fd.get(), MsgType::kPartitionRequest, garbage));

  FrameHeader h;
  std::vector<std::uint8_t> payload;
  ASSERT_EQ(read_frame(fd.get(), h, payload, 1 << 20), ReadFrameResult::kOk);
  ASSERT_EQ(h.type, MsgType::kErrorResponse);
  Status st = Status::kOk;
  std::string msg;
  ASSERT_TRUE(decode_error_response(payload, st, msg));
  EXPECT_EQ(st, Status::kBadRequest);

  // An unknown message type is answered, not ignored, on the same socket.
  ASSERT_TRUE(write_frame(fd.get(), static_cast<MsgType>(77), {}));
  ASSERT_EQ(read_frame(fd.get(), h, payload, 1 << 20), ReadFrameResult::kOk);
  ASSERT_TRUE(decode_error_response(payload, st, msg));
  EXPECT_EQ(st, Status::kBadRequest);
}

TEST(ServerLoopbackTest, UnknownVersionAnswersUnsupportedVersion) {
  ServerConfig cfg;
  cfg.unix_path = socket_path("version");
  Server server(cfg);
  std::string err;
  ASSERT_TRUE(server.start(err)) << err;
  ServerGuard guard(server);

  Fd fd = connect_unix(cfg.unix_path, err);
  ASSERT_TRUE(fd.valid()) << err;
  std::uint8_t header[kFrameHeaderBytes];
  FrameHeader h;
  h.type = MsgType::kPartitionRequest;
  h.payload_len = 0;
  encode_frame_header(h, header);
  header[4] = 9;  // a future protocol version
  ASSERT_TRUE(send_all(fd.get(), header, sizeof(header)));

  std::vector<std::uint8_t> payload;
  ASSERT_EQ(read_frame(fd.get(), h, payload, 1 << 20), ReadFrameResult::kOk);
  Status st = Status::kOk;
  std::string msg;
  ASSERT_TRUE(decode_error_response(payload, st, msg));
  EXPECT_EQ(st, Status::kUnsupportedVersion);
}

TEST(ServerLoopbackTest, StatsReportServerCounters) {
  ServerConfig cfg;
  cfg.unix_path = socket_path("stats");
  Server server(cfg);
  std::string err;
  ASSERT_TRUE(server.start(err)) << err;
  ServerGuard guard(server);

  std::string cerr_msg;
  Client client = Client::connect_unix(cfg.unix_path, cerr_msg);
  ASSERT_TRUE(client.connected()) << cerr_msg;
  RequestOptions opts;
  opts.k = 2;
  ASSERT_TRUE(client.partition(grid2d(10, 10), opts).ok());

  std::string json;
  ASSERT_TRUE(client.stats(json, cerr_msg)) << cerr_msg;
  EXPECT_NE(json.find("server.requests"), std::string::npos);
  EXPECT_NE(json.find("\"cache\""), std::string::npos);
  EXPECT_NE(json.find("\"queue\""), std::string::npos);
}

TEST(ServerLoopbackTest, TcpTransportMatchesOffline) {
  ServerConfig cfg;
  cfg.tcp_port = 0;  // ephemeral
  Server server(cfg);
  std::string err;
  ASSERT_TRUE(server.start(err)) << err;
  ServerGuard guard(server);
  ASSERT_NE(server.tcp_port(), 0);

  std::string cerr_msg;
  Client client = Client::connect_tcp("127.0.0.1", server.tcp_port(), cerr_msg);
  ASSERT_TRUE(client.connected()) << cerr_msg;
  const Graph g = fem2d_tri(15, 15, 6);
  RequestOptions opts;
  opts.k = 6;
  PartitionOutcome out = client.partition(g, opts);
  ASSERT_TRUE(out.ok()) << out.error;
  EXPECT_EQ(out.part, offline(g, 6, opts.seed).part);
}

TEST(ServerLoopbackTest, PinDeltaMatchesOfflineTwin) {
  // The dynamic path's byte-identity contract: a churn sequence replayed
  // through PIN_GRAPH + DELTA_REPARTITION equals the offline incremental
  // replay (apply_delta + repartition_after_delta) step for step — same
  // labellings, same fingerprint chain.
  ServerConfig cfg;
  cfg.unix_path = socket_path("pindelta");
  cfg.num_workers = 4;
  Server server(cfg);
  std::string err;
  ASSERT_TRUE(server.start(err)) << err;
  ServerGuard guard(server);

  Graph g = circuit(700, 11);
  constexpr part_t kParts = 8;
  constexpr std::uint64_t kSeed = 4242;

  // Pre-synthesize the churn script against the evolving offline graph.
  std::vector<dynamic::DeltaBatch> batches(3);
  {
    Graph sim = circuit(700, 11);
    Rng rng(99);
    dynamic::DeltaScratch scratch;
    dynamic::DeltaApplyResult res;
    Graph spare;
    for (auto& b : batches) {
      dynamic::synth_churn_batch(sim, 0.01, rng, b);
      ASSERT_EQ(dynamic::apply_delta(sim, b, scratch, spare, res), "");
      std::swap(sim, spare);
    }
  }

  Client client = Client::connect_unix(cfg.unix_path, err);
  ASSERT_TRUE(client.connected()) << err;
  const Client::PinOutcome pin = client.pin(g);
  ASSERT_TRUE(pin.ok()) << pin.error;
  EXPECT_FALSE(pin.already_pinned);
  EXPECT_EQ(pin.fingerprint, dynamic::graph_fingerprint(g));

  RequestOptions opts;
  opts.k = kParts;
  opts.seed = kSeed;

  dynamic::LabelState state;
  dynamic::IncrementalWorkspace iws;
  BisectWorkspace bws;
  dynamic::DeltaScratch scratch;
  dynamic::DeltaApplyResult res;
  dynamic::IncrementalConfig icfg;
  icfg.direct.base = offline_cfg();  // what config_from_head maps defaults to
  Graph spare;

  std::uint64_t fp = pin.fingerprint;
  for (std::size_t bi = 0; bi < batches.size(); ++bi) {
    const Client::DeltaOutcome out = client.delta(fp, batches[bi], opts);
    ASSERT_TRUE(out.ok()) << out.error;

    ASSERT_EQ(dynamic::apply_delta(g, batches[bi], scratch, spare, res), "");
    std::swap(g, spare);
    dynamic::repartition_after_delta(g, kParts, icfg, kSeed, state,
                                     res.fingerprint, scratch.touched,
                                     res.churn_ratio, iws, &bws, nullptr);

    ASSERT_EQ(out.fingerprint, res.fingerprint) << "batch " << bi;
    ASSERT_EQ(out.part, state.part) << "labelling diverged at batch " << bi;
    ASSERT_EQ(out.edge_cut, state.cut) << "batch " << bi;
    EXPECT_EQ(out.from_scratch, bi == 0);  // first delta has no previous
    fp = out.fingerprint;
  }

  // Re-pin of the final graph reports already_pinned (the entry was
  // re-keyed to the post-delta fingerprint).
  const Client::PinOutcome repin = client.pin(g);
  ASSERT_TRUE(repin.ok()) << repin.error;
  EXPECT_TRUE(repin.already_pinned);
  EXPECT_EQ(repin.fingerprint, fp);
}

TEST(ServerLoopbackTest, DeltaUnknownFingerprintAnswersNotFound) {
  ServerConfig cfg;
  cfg.unix_path = socket_path("notfound");
  Server server(cfg);
  std::string err;
  ASSERT_TRUE(server.start(err)) << err;
  ServerGuard guard(server);

  Client client = Client::connect_unix(cfg.unix_path, err);
  ASSERT_TRUE(client.connected()) << err;

  dynamic::DeltaBatch batch;
  batch.edge_ins.push_back({0, 1, 1});
  RequestOptions opts;
  opts.k = 4;
  const Client::DeltaOutcome out = client.delta(0xBADF00Dull, batch, opts);
  EXPECT_EQ(out.status, Status::kNotFound);
  EXPECT_FALSE(out.ok());
  // The connection stays usable afterwards.
  std::string json;
  EXPECT_TRUE(client.stats(json, err)) << err;
  EXPECT_NE(json.find("\"store\""), std::string::npos);
}

TEST(ServerLoopbackTest, EmptyDeltaBatchHitsTheLabelCache) {
  ServerConfig cfg;
  cfg.unix_path = socket_path("labelcache");
  Server server(cfg);
  std::string err;
  ASSERT_TRUE(server.start(err)) << err;
  ServerGuard guard(server);

  const Graph g = circuit(500, 7);
  Client client = Client::connect_unix(cfg.unix_path, err);
  ASSERT_TRUE(client.connected()) << err;
  const Client::PinOutcome pin = client.pin(g);
  ASSERT_TRUE(pin.ok()) << pin.error;

  RequestOptions opts;
  opts.k = 4;
  opts.seed = 7;
  dynamic::DeltaBatch empty;

  // First empty delta: no labelling yet, computed from scratch.
  const Client::DeltaOutcome first = client.delta(pin.fingerprint, empty, opts);
  ASSERT_TRUE(first.ok()) << first.error;
  EXPECT_TRUE(first.from_scratch);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_EQ(first.fingerprint, pin.fingerprint);  // identity patch

  // Second: served straight from the entry's label slot.
  const Client::DeltaOutcome second = client.delta(pin.fingerprint, empty, opts);
  ASSERT_TRUE(second.ok()) << second.error;
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.part, first.part);
  EXPECT_EQ(second.edge_cut, first.edge_cut);

  // A different config digest gets its own slot (no false sharing).
  opts.seed = 8;
  const Client::DeltaOutcome other = client.delta(pin.fingerprint, empty, opts);
  ASSERT_TRUE(other.ok()) << other.error;
  EXPECT_FALSE(other.cache_hit);
}

TEST(ServerLoopbackTest, MalformedDeltaAnswersBadRequest) {
  ServerConfig cfg;
  cfg.unix_path = socket_path("baddelta");
  Server server(cfg);
  std::string err;
  ASSERT_TRUE(server.start(err)) << err;
  ServerGuard guard(server);

  const Graph g = circuit(500, 7);
  Client client = Client::connect_unix(cfg.unix_path, err);
  ASSERT_TRUE(client.connected()) << err;
  const Client::PinOutcome pin = client.pin(g);
  ASSERT_TRUE(pin.ok()) << pin.error;

  dynamic::DeltaBatch batch;
  batch.edge_ins.push_back({0, 0, 1});  // self-loop: apply_delta rejects
  RequestOptions opts;
  opts.k = 4;
  const Client::DeltaOutcome out = client.delta(pin.fingerprint, batch, opts);
  EXPECT_EQ(out.status, Status::kBadRequest);

  // The rejected patch must not have corrupted the pinned graph: a good
  // delta against the same fingerprint still succeeds.
  dynamic::DeltaBatch good;
  good.weight_upd.push_back({0, 5});
  const Client::DeltaOutcome ok = client.delta(pin.fingerprint, good, opts);
  EXPECT_TRUE(ok.ok()) << ok.error;
}

TEST(ServerLoopbackTest, ShutdownUnlinksTheSocketFile) {
  ServerConfig cfg;
  cfg.unix_path = socket_path("shutdown");
  {
    Server server(cfg);
    std::string err;
    ASSERT_TRUE(server.start(err)) << err;
    EXPECT_EQ(::access(cfg.unix_path.c_str(), F_OK), 0);
    server.request_stop();
    server.join();
  }
  EXPECT_NE(::access(cfg.unix_path.c_str(), F_OK), 0);
}

}  // namespace
}  // namespace mgp::server
