// ResultCache semantics: hit/miss accounting, LRU eviction order,
// re-insert refresh, and byte-exact copies into caller buffers.
#include "server/result_cache.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace mgp::server {
namespace {

CacheKey key_of(std::uint64_t fp, std::uint64_t digest) {
  CacheKey k;
  k.graph_fp = fp;
  k.config_digest = digest;
  return k;
}

TEST(ResultCacheTest, MissThenInsertThenHit) {
  ResultCache cache(4);
  std::vector<part_t> out;
  ewt_t cut = -1;
  EXPECT_FALSE(cache.lookup(key_of(1, 1), out, cut));

  std::vector<part_t> part = {0, 1, 1, 0, 2};
  cache.insert(key_of(1, 1), part, 9);
  ASSERT_TRUE(cache.lookup(key_of(1, 1), out, cut));
  EXPECT_EQ(out, part);
  EXPECT_EQ(cut, 9);

  ResultCache::Stats s = cache.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.insertions, 1u);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ResultCacheTest, KeysDifferingInEitherHalfMiss) {
  ResultCache cache(4);
  std::vector<part_t> part = {0, 1};
  cache.insert(key_of(1, 1), part, 0);
  std::vector<part_t> out;
  ewt_t cut = 0;
  EXPECT_FALSE(cache.lookup(key_of(2, 1), out, cut));  // other graph
  EXPECT_FALSE(cache.lookup(key_of(1, 2), out, cut));  // other config
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsed) {
  ResultCache cache(2);
  std::vector<part_t> pa = {0}, pb = {1}, pc = {2};
  cache.insert(key_of(1, 0), pa, 1);
  cache.insert(key_of(2, 0), pb, 2);

  std::vector<part_t> out;
  ewt_t cut = 0;
  ASSERT_TRUE(cache.lookup(key_of(1, 0), out, cut));  // refresh A

  cache.insert(key_of(3, 0), pc, 3);  // evicts B, the LRU entry
  EXPECT_FALSE(cache.lookup(key_of(2, 0), out, cut));
  ASSERT_TRUE(cache.lookup(key_of(1, 0), out, cut));
  EXPECT_EQ(out, pa);
  ASSERT_TRUE(cache.lookup(key_of(3, 0), out, cut));
  EXPECT_EQ(out, pc);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ResultCacheTest, ReinsertOnlyRefreshesRecency) {
  ResultCache cache(2);
  std::vector<part_t> pa = {0}, pb = {1}, pc = {2};
  cache.insert(key_of(1, 0), pa, 1);
  cache.insert(key_of(2, 0), pb, 2);
  // Deterministic pipeline: same key carries the same bytes, so a re-insert
  // must not duplicate the entry — only refresh it.
  cache.insert(key_of(1, 0), pa, 1);
  EXPECT_EQ(cache.stats().insertions, 2u);
  EXPECT_EQ(cache.size(), 2u);

  cache.insert(key_of(3, 0), pc, 3);  // now B is LRU, not A
  std::vector<part_t> out;
  ewt_t cut = 0;
  EXPECT_FALSE(cache.lookup(key_of(2, 0), out, cut));
  EXPECT_TRUE(cache.lookup(key_of(1, 0), out, cut));
}

TEST(ResultCacheTest, RecyclingPreservesBytes) {
  // Hammer a capacity-1 cache: every insert recycles the previous entry's
  // node and buffer; the returned bytes must always be the latest insert's.
  ResultCache cache(1);
  std::vector<part_t> out;
  ewt_t cut = 0;
  for (int i = 0; i < 32; ++i) {
    std::vector<part_t> part(static_cast<std::size_t>(8 + (i % 3)),
                             static_cast<part_t>(i));
    cache.insert(key_of(static_cast<std::uint64_t>(i), 7), part, i);
    ASSERT_TRUE(cache.lookup(key_of(static_cast<std::uint64_t>(i), 7), out, cut));
    EXPECT_EQ(out, part);
    EXPECT_EQ(cut, i);
    EXPECT_EQ(cache.size(), 1u);
  }
  EXPECT_EQ(cache.stats().evictions, 31u);
}

TEST(ResultCacheTest, LookupOverwritesCallerBuffer) {
  ResultCache cache(2);
  std::vector<part_t> part = {5, 6};
  cache.insert(key_of(1, 1), part, 4);
  std::vector<part_t> out(100, -1);  // stale, larger than the entry
  ewt_t cut = 0;
  ASSERT_TRUE(cache.lookup(key_of(1, 1), out, cut));
  EXPECT_EQ(out, part);
}

TEST(ResultCacheTest, CapacityClampedToOne) {
  ResultCache cache(0);
  std::vector<part_t> part = {1};
  cache.insert(key_of(1, 1), part, 0);
  std::vector<part_t> out;
  ewt_t cut = 0;
  EXPECT_TRUE(cache.lookup(key_of(1, 1), out, cut));
}

}  // namespace
}  // namespace mgp::server
