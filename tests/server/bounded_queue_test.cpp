// BoundedQueue semantics: non-blocking admission, FIFO order, and the
// drain-after-close contract the server's shutdown sequence relies on.
#include "server/bounded_queue.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace mgp::server {
namespace {

TEST(BoundedQueueTest, TryPushFailsWhenFull) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));  // never blocks: admission control
  EXPECT_EQ(q.size(), 2u);
}

TEST(BoundedQueueTest, FifoOrder) {
  BoundedQueue<int> q(4);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(q.try_push(int(i)));
  for (int i = 0; i < 4; ++i) {
    auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(BoundedQueueTest, PopBlocksUntilPush) {
  BoundedQueue<int> q(1);
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ASSERT_TRUE(q.try_push(42));
  });
  auto v = q.pop();  // must wait for the producer, not spin-fail
  producer.join();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 42);
}

TEST(BoundedQueueTest, CloseDrainsBacklogThenReturnsEmpty) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.try_push(7));
  ASSERT_TRUE(q.try_push(8));
  q.close();
  // The shutdown contract: queued work is still handed out after close...
  auto a = q.pop();
  auto b = q.pop();
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*a, 7);
  EXPECT_EQ(*b, 8);
  // ...and only then does pop() report exhaustion.
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueueTest, TryPushAfterCloseFails) {
  BoundedQueue<int> q(4);
  q.close();
  EXPECT_FALSE(q.try_push(1));
}

TEST(BoundedQueueTest, CloseWakesBlockedConsumers) {
  BoundedQueue<int> q(1);
  std::vector<std::thread> consumers;
  std::atomic<int> finished{0};
  for (int i = 0; i < 3; ++i) {
    consumers.emplace_back([&] {
      while (q.pop().has_value()) {
      }
      finished.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(finished.load(), 3);
}

TEST(BoundedQueueTest, MoveOnlyPayloads) {
  BoundedQueue<std::unique_ptr<int>> q(2);
  EXPECT_TRUE(q.try_push(std::make_unique<int>(5)));
  auto v = q.pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 5);
}

}  // namespace
}  // namespace mgp::server
