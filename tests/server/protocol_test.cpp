// Wire-format unit tests: frame header codec, request encode/decode
// roundtrips, payload validation, response codecs, and the cache-key
// contract (deadline excluded by construction).
#include "server/protocol.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "graph/generators.hpp"

namespace mgp::server {
namespace {

std::vector<std::uint8_t> encode_request(const Graph& g, const RequestOptions& opts) {
  std::vector<std::uint8_t> out;
  encode_partition_request(g, opts, out);
  return out;
}

TEST(FrameHeaderTest, RoundTrip) {
  FrameHeader h;
  h.type = MsgType::kPartitionRequest;
  h.payload_len = 12345;
  std::uint8_t buf[kFrameHeaderBytes];
  encode_frame_header(h, buf);
  FrameHeader back;
  ASSERT_TRUE(decode_frame_header(buf, back));
  EXPECT_EQ(back.magic, kMagic);
  EXPECT_EQ(back.version, kProtocolVersion);
  EXPECT_EQ(back.type, MsgType::kPartitionRequest);
  EXPECT_EQ(back.payload_len, 12345u);
}

TEST(FrameHeaderTest, RejectsBadMagic) {
  FrameHeader h;
  std::uint8_t buf[kFrameHeaderBytes];
  encode_frame_header(h, buf);
  buf[0] ^= 0xFF;
  FrameHeader back;
  EXPECT_FALSE(decode_frame_header(buf, back));
}

TEST(RequestCodecTest, HeadRoundTrip) {
  Graph g = grid2d(6, 6);
  RequestOptions opts;
  opts.k = 7;
  opts.seed = 0xDEADBEEFCAFEULL;
  opts.matching = MatchingScheme::kRandom;
  opts.initpart = InitPartScheme::kGGP;
  opts.refine = RefinePolicy::kKLR;
  opts.coarsen_to = 42;
  opts.deadline_ms = 900;
  std::vector<std::uint8_t> payload = encode_request(g, opts);

  RequestHead head;
  std::string err;
  ASSERT_EQ(decode_request_head(payload, head, err), Status::kOk) << err;
  EXPECT_EQ(head.k, 7u);
  EXPECT_EQ(head.seed, 0xDEADBEEFCAFEULL);
  EXPECT_EQ(head.matching, static_cast<std::uint8_t>(MatchingScheme::kRandom));
  EXPECT_EQ(head.initpart, static_cast<std::uint8_t>(InitPartScheme::kGGP));
  EXPECT_EQ(head.refine, static_cast<std::uint8_t>(RefinePolicy::kKLR));
  EXPECT_EQ(head.coarsen_to, 42u);
  EXPECT_EQ(head.deadline_ms, 900u);
  EXPECT_EQ(head.n, static_cast<std::uint64_t>(g.num_vertices()));
  EXPECT_EQ(head.arcs, static_cast<std::uint64_t>(g.xadj().back()));
}

TEST(RequestCodecTest, GraphRoundTrip) {
  Graph g = fem2d_tri(8, 8, 3);
  std::vector<std::uint8_t> payload = encode_request(g, RequestOptions{});

  RequestHead head;
  std::string err;
  ASSERT_EQ(decode_request_head(payload, head, err), Status::kOk) << err;
  Graph back;
  ASSERT_EQ(decode_request_graph(payload, head, back, err), Status::kOk) << err;

  ASSERT_EQ(back.num_vertices(), g.num_vertices());
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(back.vertex_weight(v), g.vertex_weight(v));
  }
  for (std::size_t i = 0; i < g.xadj().size(); ++i) {
    ASSERT_EQ(back.xadj()[i], g.xadj()[i]);
  }
  for (std::size_t i = 0; i < g.adjncy().size(); ++i) {
    ASSERT_EQ(back.adjncy()[i], g.adjncy()[i]);
    ASSERT_EQ(back.adjwgt()[i], g.adjwgt()[i]);
  }
}

TEST(RequestCodecTest, ConfigFromHeadMapsSchemes) {
  Graph g = grid2d(4, 4);
  RequestOptions opts;
  opts.matching = MatchingScheme::kHeavyClique;
  opts.initpart = InitPartScheme::kSpectral;
  opts.refine = RefinePolicy::kBGR;
  opts.coarsen_to = 33;
  std::vector<std::uint8_t> payload = encode_request(g, opts);
  RequestHead head;
  std::string err;
  ASSERT_EQ(decode_request_head(payload, head, err), Status::kOk) << err;
  MultilevelConfig cfg = config_from_head(head);
  EXPECT_EQ(cfg.matching, MatchingScheme::kHeavyClique);
  EXPECT_EQ(cfg.initpart, InitPartScheme::kSpectral);
  EXPECT_EQ(cfg.refine, RefinePolicy::kBGR);
  EXPECT_EQ(cfg.coarsen_to, 33);
  EXPECT_EQ(cfg.threads, 1);  // the server parallelizes across requests
}

TEST(RequestCodecTest, RejectsTruncatedHead) {
  Graph g = grid2d(4, 4);
  std::vector<std::uint8_t> payload = encode_request(g, RequestOptions{});
  payload.resize(kRequestHeadBytes - 1);
  RequestHead head;
  std::string err;
  EXPECT_EQ(decode_request_head(payload, head, err), Status::kBadRequest);
  EXPECT_FALSE(err.empty());
}

TEST(RequestCodecTest, RejectsLengthMismatch) {
  Graph g = grid2d(4, 4);
  std::vector<std::uint8_t> payload = encode_request(g, RequestOptions{});
  payload.pop_back();  // arrays no longer match the declared n/arcs
  RequestHead head;
  std::string err;
  EXPECT_EQ(decode_request_head(payload, head, err), Status::kBadRequest);
}

TEST(RequestCodecTest, RejectsArcCountThatWrapsTheLengthCheck) {
  // n = 0, arcs = 2^62: naively, 4*arcs + 8*arcs == 12 * 2^62 wraps to 0
  // mod 2^64, so the expected-length arithmetic would match this tiny
  // payload and the decoder would attempt a 2^62-element resize.  The
  // dimension bound must reject it before any size arithmetic.
  std::vector<std::uint8_t> payload(kRequestHeadBytes + 8, 0);
  payload[0] = 2;           // k = 2
  payload[16] = 100;        // coarsen_to = 100
  payload[36 + 7] = 0x40;   // arcs = 1 << 62 (little-endian u64 at 36)
  RequestHead head;
  std::string err;
  EXPECT_EQ(decode_request_head(payload, head, err), Status::kBadRequest);
  EXPECT_FALSE(err.empty());
}

TEST(RequestCodecTest, RejectsVertexCountBeyondThePayload) {
  std::vector<std::uint8_t> payload(kRequestHeadBytes, 0);
  payload[0] = 2;                          // k = 2
  payload[16] = 100;                       // coarsen_to = 100
  payload[28] = 0xE8;
  payload[29] = 0x03;                      // n = 1000, but zero array bytes
  RequestHead head;
  std::string err;
  EXPECT_EQ(decode_request_head(payload, head, err), Status::kBadRequest);
}

TEST(RequestCodecTest, DeadlineCeilingIsEnforced) {
  Graph g = grid2d(4, 4);
  RequestOptions opts;
  opts.deadline_ms = kMaxDeadlineMs + 1;  // would wrap chrono arithmetic
  RequestHead head;
  std::string err;
  EXPECT_EQ(decode_request_head(encode_request(g, opts), head, err),
            Status::kBadRequest);
  opts.deadline_ms = kMaxDeadlineMs;  // the ceiling itself is accepted
  EXPECT_EQ(decode_request_head(encode_request(g, opts), head, err), Status::kOk)
      << err;
  EXPECT_EQ(head.deadline_ms, kMaxDeadlineMs);
}

TEST(RequestCodecTest, RejectsZeroK) {
  Graph g = grid2d(4, 4);
  std::vector<std::uint8_t> payload = encode_request(g, RequestOptions{});
  payload[0] = payload[1] = payload[2] = payload[3] = 0;  // k = 0
  RequestHead head;
  std::string err;
  EXPECT_EQ(decode_request_head(payload, head, err), Status::kBadRequest);
}

TEST(RequestCodecTest, RejectsBadSchemeEnums) {
  Graph g = grid2d(4, 4);
  for (std::size_t off : {std::size_t{12}, std::size_t{13}, std::size_t{14}}) {
    std::vector<std::uint8_t> payload = encode_request(g, RequestOptions{});
    payload[off] = 0xEE;
    RequestHead head;
    std::string err;
    EXPECT_EQ(decode_request_head(payload, head, err), Status::kBadRequest)
        << "scheme byte at offset " << off;
  }
}

TEST(RequestCodecTest, CoarsenStrategyBytesRoundTripThroughConfig) {
  // Scheme bytes 4 (algebraic distance) and 5 (n-level) share the matching
  // byte's slot; decoding must recover the strategy and fall back to the
  // default HEM matcher (the strategies ignore MatchingScheme anyway).
  Graph g = grid2d(4, 4);
  for (const CoarsenStrategy strategy :
       {CoarsenStrategy::kAlgebraicDistance, CoarsenStrategy::kNLevel}) {
    RequestOptions opts;
    opts.coarsen_strategy = strategy;
    opts.matching = MatchingScheme::kRandom;  // must be ignored on the wire
    std::vector<std::uint8_t> payload = encode_request(g, opts);
    EXPECT_EQ(payload[12], scheme_byte(strategy, opts.matching));

    RequestHead head;
    std::string err;
    ASSERT_EQ(decode_request_head(payload, head, err), Status::kOk) << err;
    const MultilevelConfig cfg = config_from_head(head);
    EXPECT_EQ(cfg.coarsen.strategy, strategy);
    EXPECT_EQ(cfg.matching, MatchingScheme::kHeavyEdge);
  }
}

TEST(RequestCodecTest, RejectsSchemeByteJustPastNLevel) {
  // 5 (n-level) is the last assigned scheme byte; 6 must already fail, not
  // only the 0xEE far-out value RejectsBadSchemeEnums probes.
  Graph g = grid2d(4, 4);
  std::vector<std::uint8_t> payload = encode_request(g, RequestOptions{});
  payload[12] = kSchemeByteMax + 1;
  RequestHead head;
  std::string err;
  EXPECT_EQ(decode_request_head(payload, head, err), Status::kBadRequest);
  EXPECT_NE(err.find("coarsening"), std::string::npos) << err;
}

TEST(RequestCodecTest, RejectsNonMonotoneXadj) {
  Graph g = grid2d(4, 4);
  std::vector<std::uint8_t> payload = encode_request(g, RequestOptions{});
  // xadj[1] (u64 little-endian at kRequestHeadBytes + 8) -> huge value.
  payload[kRequestHeadBytes + 8 + 7] = 0x7F;
  RequestHead head;
  std::string err;
  ASSERT_EQ(decode_request_head(payload, head, err), Status::kOk) << err;
  Graph back;
  EXPECT_EQ(decode_request_graph(payload, head, back, err), Status::kBadRequest);
}

TEST(RequestCodecTest, RejectsNeighbourOutOfRange) {
  Graph g = grid2d(4, 4);
  std::vector<std::uint8_t> payload = encode_request(g, RequestOptions{});
  const std::size_t adjncy_off =
      kRequestHeadBytes + 8 * (static_cast<std::size_t>(g.num_vertices()) + 1);
  std::memset(payload.data() + adjncy_off, 0xFF, 4);  // adjncy[0] = huge
  RequestHead head;
  std::string err;
  ASSERT_EQ(decode_request_head(payload, head, err), Status::kOk) << err;
  Graph back;
  EXPECT_EQ(decode_request_graph(payload, head, back, err), Status::kBadRequest);
}

TEST(RequestCodecTest, RejectsNonPositiveEdgeWeight) {
  Graph g = grid2d(4, 4);
  std::vector<std::uint8_t> payload = encode_request(g, RequestOptions{});
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  const std::size_t arcs = static_cast<std::size_t>(g.xadj().back());
  const std::size_t adjwgt_off = kRequestHeadBytes + 8 * (n + 1) + 4 * arcs + 8 * n;
  std::memset(payload.data() + adjwgt_off, 0, 8);  // adjwgt[0] = 0
  RequestHead head;
  std::string err;
  ASSERT_EQ(decode_request_head(payload, head, err), Status::kOk) << err;
  Graph back;
  EXPECT_EQ(decode_request_graph(payload, head, back, err), Status::kBadRequest);
}

TEST(CacheKeyTest, DeadlineNeverReachesTheKey) {
  Graph g = grid2d(5, 5);
  RequestOptions a, b;
  a.deadline_ms = 0;
  b.deadline_ms = 123456;
  EXPECT_EQ(cache_key_of(encode_request(g, a)), cache_key_of(encode_request(g, b)));
}

TEST(CacheKeyTest, SeedAndSchemeChangeTheDigestOnly) {
  Graph g = grid2d(5, 5);
  RequestOptions base, reseeded;
  reseeded.seed = base.seed + 1;
  const CacheKey ka = cache_key_of(encode_request(g, base));
  const CacheKey kb = cache_key_of(encode_request(g, reseeded));
  EXPECT_EQ(ka.graph_fp, kb.graph_fp);
  EXPECT_NE(ka.config_digest, kb.config_digest);
}

TEST(CacheKeyTest, GraphChangesTheFingerprint) {
  const CacheKey ka = cache_key_of(encode_request(grid2d(5, 5), RequestOptions{}));
  const CacheKey kb = cache_key_of(encode_request(grid2d(5, 6), RequestOptions{}));
  EXPECT_NE(ka.graph_fp, kb.graph_fp);
}

TEST(CacheKeyTest, KeyPinsExactVertexAndPartCounts) {
  // The digests are non-cryptographic; the key carries n and k verbatim so
  // even a colliding forgery cannot be served a wrong-shaped labelling.
  Graph g = grid2d(5, 5);
  RequestOptions opts;
  opts.k = 7;
  const CacheKey key = cache_key_of(encode_request(g, opts));
  EXPECT_EQ(key.n, 25u);
  EXPECT_EQ(key.k, 7u);
}

TEST(ResponseCodecTest, PartitionRoundTrip) {
  std::vector<part_t> part = {0, 3, 1, 2, 2, 0, 1, 3};
  std::vector<std::uint8_t> payload;
  encode_partition_response(part, 4, 77, /*cache_hit=*/true, payload);
  PartitionResponseView view;
  ASSERT_TRUE(decode_partition_response(payload, view));
  EXPECT_EQ(view.k, 4);
  EXPECT_EQ(view.edge_cut, 77);
  EXPECT_TRUE(view.cache_hit);
  ASSERT_EQ(view.n, part.size());
  ASSERT_EQ(view.labels.size(), 4 * part.size());
  for (std::size_t v = 0; v < part.size(); ++v) {
    std::uint32_t label = 0;
    std::memcpy(&label, view.labels.data() + 4 * v, 4);
    EXPECT_EQ(static_cast<part_t>(label), part[v]);
  }
}

TEST(ResponseCodecTest, ErrorRoundTrip) {
  std::vector<std::uint8_t> payload;
  encode_error_response(Status::kOverloaded, "queue full", payload);
  Status st = Status::kOk;
  std::string msg;
  ASSERT_TRUE(decode_error_response(payload, st, msg));
  EXPECT_EQ(st, Status::kOverloaded);
  EXPECT_EQ(msg, "queue full");
}

TEST(ResponseCodecTest, ErrorFrameRoundTrip) {
  std::vector<std::uint8_t> frame;
  encode_error_frame(Status::kInternal, "boom", frame);
  FrameHeader h;
  ASSERT_TRUE(decode_frame_header(frame, h));
  EXPECT_EQ(h.type, MsgType::kErrorResponse);
  ASSERT_EQ(frame.size(), kFrameHeaderBytes + h.payload_len);
  Status st = Status::kOk;
  std::string msg;
  ASSERT_TRUE(decode_error_response(
      std::span<const std::uint8_t>(frame).subspan(kFrameHeaderBytes), st, msg));
  EXPECT_EQ(st, Status::kInternal);
  EXPECT_EQ(msg, "boom");
}

TEST(ResponseCodecTest, StatsRoundTrip) {
  std::vector<std::uint8_t> payload;
  encode_stats_response("{\"x\":1}", payload);
  std::string json;
  ASSERT_TRUE(decode_stats_response(payload, json));
  EXPECT_EQ(json, "{\"x\":1}");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int s = 0; s <= 7; ++s) {
    EXPECT_FALSE(to_string(static_cast<Status>(s)).empty());
  }
  EXPECT_EQ(to_string(Status::kNotFound), "NOT_FOUND");
}

TEST(PinCodecTest, RoundTripAndFingerprintUnification) {
  const Graph g = fem2d_tri(10, 10, 3);
  std::vector<std::uint8_t> payload;
  encode_pin_request(g, payload);

  RequestHead head;
  std::string err;
  ASSERT_EQ(decode_pin_request(payload, head, err), Status::kOk) << err;
  EXPECT_EQ(head.n, static_cast<std::uint64_t>(g.num_vertices()));

  Graph back;
  ASSERT_EQ(decode_pin_graph(payload, head, back, err), Status::kOk) << err;
  EXPECT_EQ(back.validate(), "");
  EXPECT_EQ(back.num_vertices(), g.num_vertices());

  // The unification contract: the PIN payload is exactly the graph region
  // of a PartitionRequest, so its hash equals that request's graph_fp.
  RequestOptions opts;
  opts.k = 4;
  const std::vector<std::uint8_t> req = encode_request(g, opts);
  EXPECT_EQ(fnv1a64(payload), cache_key_of(req).graph_fp);
}

TEST(PinCodecTest, RejectsTruncatedAndMalformed) {
  const Graph g = fem2d_tri(6, 6, 3);
  std::vector<std::uint8_t> payload;
  encode_pin_request(g, payload);
  RequestHead head;
  std::string err;

  std::vector<std::uint8_t> torn(payload.begin(), payload.begin() + 8);
  EXPECT_EQ(decode_pin_request(torn, head, err), Status::kBadRequest);

  std::vector<std::uint8_t> short_by_one(payload.begin(), payload.end() - 1);
  EXPECT_EQ(decode_pin_request(short_by_one, head, err), Status::kBadRequest);

  // Vertex count far beyond what the payload can carry (wrap hardening).
  std::vector<std::uint8_t> huge = payload;
  for (int i = 0; i < 8; ++i) huge[static_cast<std::size_t>(i)] = 0xFF;
  EXPECT_EQ(decode_pin_request(huge, head, err), Status::kBadRequest);
}

TEST(PinCodecTest, PinResponseRoundTrip) {
  std::vector<std::uint8_t> payload;
  encode_pin_response(0xDEADBEEFCAFEull, 100, 400, true, payload);
  PinResponseView view;
  ASSERT_TRUE(decode_pin_response(payload, view));
  EXPECT_EQ(view.fingerprint, 0xDEADBEEFCAFEull);
  EXPECT_EQ(view.n, 100u);
  EXPECT_EQ(view.arcs, 400u);
  EXPECT_TRUE(view.already_pinned);
  std::vector<std::uint8_t> torn(payload.begin(), payload.end() - 1);
  EXPECT_FALSE(decode_pin_response(torn, view));
}

dynamic::DeltaBatch sample_batch() {
  dynamic::DeltaBatch b;
  b.edge_ins.push_back({1, 7, 3});
  b.edge_ins.push_back({2, 9, 1});
  b.edge_del.push_back({0, 1});
  b.vertex_add.push_back(5);
  b.vertex_rem.push_back(4);
  b.weight_upd.push_back({3, 11});
  return b;
}

TEST(DeltaCodecTest, RequestRoundTrip) {
  const dynamic::DeltaBatch batch = sample_batch();
  RequestOptions opts;
  opts.k = 16;
  opts.seed = 777;
  opts.matching = MatchingScheme::kRandom;
  opts.coarsen_to = 250;
  opts.deadline_ms = 1500;
  std::vector<std::uint8_t> payload;
  encode_delta_request(0xABCDEF0123ull, batch, opts, payload);

  DeltaHead head;
  std::string err;
  ASSERT_EQ(decode_delta_head(payload, head, err), Status::kOk) << err;
  EXPECT_EQ(head.k, 16u);
  EXPECT_EQ(head.seed, 777u);
  EXPECT_EQ(head.fingerprint, 0xABCDEF0123ull);
  EXPECT_EQ(head.deadline_ms, 1500u);
  EXPECT_EQ(head.n_edge_ins, 2u);
  EXPECT_EQ(head.n_edge_del, 1u);
  EXPECT_EQ(head.n_vertex_add, 1u);
  EXPECT_EQ(head.n_vertex_rem, 1u);
  EXPECT_EQ(head.n_weight_upd, 1u);

  dynamic::DeltaBatch back;
  ASSERT_EQ(decode_delta_ops(payload, head, back, err), Status::kOk) << err;
  ASSERT_EQ(back.edge_ins.size(), 2u);
  EXPECT_EQ(back.edge_ins[0].u, 1);
  EXPECT_EQ(back.edge_ins[0].v, 7);
  EXPECT_EQ(back.edge_ins[0].w, 3);
  ASSERT_EQ(back.edge_del.size(), 1u);
  ASSERT_EQ(back.vertex_add.size(), 1u);
  EXPECT_EQ(back.vertex_add[0], 5);
  ASSERT_EQ(back.vertex_rem.size(), 1u);
  EXPECT_EQ(back.vertex_rem[0], 4);
  ASSERT_EQ(back.weight_upd.size(), 1u);
  EXPECT_EQ(back.weight_upd[0].w, 11);
}

TEST(DeltaCodecTest, DigestRegionMatchesPartitionRequestLayout) {
  // Bytes [0, 20) of a DELTA payload are byte-identical to the config-digest
  // region of a PartitionRequest with the same options — the invariant that
  // lets one digest key both the result cache and the warm-start slots.
  const Graph g = fem2d_tri(6, 6, 3);
  RequestOptions opts;
  opts.k = 12;
  opts.seed = 31337;
  opts.refine = RefinePolicy::kKLR;
  opts.deadline_ms = 900;  // outside the digest in both layouts
  const std::vector<std::uint8_t> req = encode_request(g, opts);
  std::vector<std::uint8_t> del;
  encode_delta_request(1, sample_batch(), opts, del);
  ASSERT_GE(del.size(), kConfigDigestBytes);
  EXPECT_EQ(std::memcmp(req.data(), del.data(), kConfigDigestBytes), 0);
}

TEST(DeltaCodecTest, RejectsMalformedHeads) {
  std::vector<std::uint8_t> payload;
  encode_delta_request(1, sample_batch(), RequestOptions{}, payload);
  DeltaHead head;
  std::string err;

  std::vector<std::uint8_t> torn(payload.begin(),
                                 payload.begin() + kDeltaHeadBytes - 1);
  EXPECT_EQ(decode_delta_head(torn, head, err), Status::kBadRequest);

  std::vector<std::uint8_t> extra = payload;
  extra.push_back(0);  // exact-length check
  EXPECT_EQ(decode_delta_head(extra, head, err), Status::kBadRequest);

  // Op count that would wrap the length arithmetic.
  std::vector<std::uint8_t> wrap = payload;
  for (std::size_t i = 36; i < 44; ++i) wrap[i] = 0xFF;
  EXPECT_EQ(decode_delta_head(wrap, head, err), Status::kBadRequest);

  // Bad scheme enum inside the digest region.
  std::vector<std::uint8_t> bad_enum = payload;
  bad_enum[12] = 0x7F;
  EXPECT_EQ(decode_delta_head(bad_enum, head, err), Status::kBadRequest);
}

TEST(DeltaCodecTest, EmptyBatchRoundTrips) {
  dynamic::DeltaBatch empty;
  std::vector<std::uint8_t> payload;
  encode_delta_request(99, empty, RequestOptions{}, payload);
  EXPECT_EQ(payload.size(), kDeltaHeadBytes);
  DeltaHead head;
  std::string err;
  ASSERT_EQ(decode_delta_head(payload, head, err), Status::kOk) << err;
  dynamic::DeltaBatch back;
  back.edge_ins.push_back({1, 2, 3});  // must be cleared by the decoder
  ASSERT_EQ(decode_delta_ops(payload, head, back, err), Status::kOk) << err;
  EXPECT_TRUE(back.empty());
}

TEST(DeltaCodecTest, DeltaResponseRoundTrip) {
  const std::vector<part_t> part = {0, 1, 2, 3, 0, 1};
  std::vector<std::uint8_t> payload;
  encode_delta_response(0xFEEDull, true, 2, part, 4, 12345, false, payload);
  DeltaResponseView view;
  ASSERT_TRUE(decode_delta_response(payload, view));
  EXPECT_EQ(view.fingerprint, 0xFEEDull);
  EXPECT_TRUE(view.from_scratch);
  EXPECT_EQ(view.reason, 2);
  EXPECT_EQ(view.body.k, 4);
  EXPECT_EQ(view.body.edge_cut, 12345);
  EXPECT_FALSE(view.body.cache_hit);
  ASSERT_EQ(view.body.n, part.size());
  std::vector<std::uint8_t> torn(payload.begin(), payload.begin() + 11);
  EXPECT_FALSE(decode_delta_response(torn, view));
}

}  // namespace
}  // namespace mgp::server
