// Zero-allocation regression for the request path (links the counting
// allocator from tests/support/alloc_guard.cpp).
//
// The service's steady-state guarantee: once a worker's RequestHandler has
// warmed its buffers (decoded-graph CSR, recursion scratch, labelling,
// response frame) and the shared pool/cache have reached capacity, handling
// a request of no-larger size touches the heap zero times — on the compute
// path (decode → partition → cache insert with recycling) and on the
// cache-hit path alike.  Socket and queue plumbing are outside the claim;
// the handler is exercised in-process on pre-encoded wire payloads.
#include <gtest/gtest.h>

#include <chrono>
#include <vector>

#include "graph/generators.hpp"
#include "obs/metrics.hpp"
#include "server/handler.hpp"
#include "server/protocol.hpp"
#include "server/result_cache.hpp"
#include "support/alloc_guard.hpp"
#include "support/workspace.hpp"

namespace mgp::server {
namespace {

using ::mgp::testing::AllocGuard;

TEST(ServerAllocTest, SteadyStateComputePathIsAllocationFree) {
  ASSERT_TRUE(::mgp::testing::counting_allocator_active());

  WorkspacePool pool;
  ResultCache cache(1);  // capacity 1: every insert exercises recycling
  obs::MetricsRegistry reg;
  ServerMetrics ids(reg);
  RequestHandler handler(pool, cache, reg, ids);

  const Graph g = grid2d(32, 32);
  std::vector<std::vector<std::uint8_t>> payloads;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    RequestOptions opts;
    opts.k = 8;
    opts.seed = seed;
    encode_partition_request(g, opts, payloads.emplace_back());
  }

  const auto now = std::chrono::steady_clock::now();
  std::vector<std::uint8_t> frame;
  // Warm-up: every payload twice, so graph/scratch/labelling capacities,
  // the cache's recycled entry, and the response frame all reach their
  // high-water marks (seeds repeat, so buffer sizes repeat exactly).
  for (int round = 0; round < 2; ++round) {
    for (const auto& p : payloads) handler.handle(p, now, frame);
  }

  // Compute path: seed 3 left the capacity-1 cache long ago, so this is a
  // full decode -> partition -> insert-with-eviction cycle.
  {
    AllocGuard guard;
    handler.handle(payloads[2], now, frame);
    EXPECT_EQ(guard.allocations(), 0u);
  }

  // Cache-hit path: the last guarded run left seed 3 cached.
  {
    AllocGuard guard;
    handler.handle(payloads[2], now, frame);
    EXPECT_EQ(guard.allocations(), 0u);
  }
}

TEST(ServerAllocTest, DirectModeSteadyStateIsAllocationFree) {
  // The direct k-way dispatch shares the guarantee: the handler's
  // KwayDirectWorkspace warms like its recursive-bisection scratch, so a
  // warm kway_mode=direct request allocates exactly zero times.
  ASSERT_TRUE(::mgp::testing::counting_allocator_active());

  WorkspacePool pool;
  ResultCache cache(1);
  obs::MetricsRegistry reg;
  ServerMetrics ids(reg);
  RequestHandler handler(pool, cache, reg, ids);

  const Graph g = grid2d(32, 32);
  std::vector<std::vector<std::uint8_t>> payloads;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    RequestOptions opts;
    opts.k = 16;
    opts.kway_mode = KwayMode::kDirect;
    opts.seed = seed;
    encode_partition_request(g, opts, payloads.emplace_back());
  }

  const auto now = std::chrono::steady_clock::now();
  std::vector<std::uint8_t> frame;
  for (int round = 0; round < 2; ++round) {
    for (const auto& p : payloads) handler.handle(p, now, frame);
  }

  AllocGuard guard;
  handler.handle(payloads[1], now, frame);  // evicted: full direct compute
  EXPECT_EQ(guard.allocations(), 0u);
}

TEST(ServerAllocTest, ErrorPathsDoNotLeakIntoSteadyState) {
  // Rejecting a malformed payload between well-formed requests must not
  // disturb the warm state (err_ strings may allocate; the next compute
  // request still must not).
  ASSERT_TRUE(::mgp::testing::counting_allocator_active());

  WorkspacePool pool;
  ResultCache cache(1);
  obs::MetricsRegistry reg;
  ServerMetrics ids(reg);
  RequestHandler handler(pool, cache, reg, ids);

  const Graph g = grid2d(24, 24);
  std::vector<std::uint8_t> a, b;
  RequestOptions opts;
  opts.k = 4;
  opts.seed = 10;
  encode_partition_request(g, opts, a);
  opts.seed = 11;
  encode_partition_request(g, opts, b);
  const std::vector<std::uint8_t> garbage(10, 0xAB);

  const auto now = std::chrono::steady_clock::now();
  std::vector<std::uint8_t> frame;
  for (int round = 0; round < 2; ++round) {
    handler.handle(a, now, frame);
    handler.handle(garbage, now, frame);
    handler.handle(b, now, frame);
  }

  AllocGuard guard;
  handler.handle(a, now, frame);  // compute (evicted by b) after an error
  EXPECT_EQ(guard.allocations(), 0u);
}

}  // namespace
}  // namespace mgp::server
