#include "metrics/partition_metrics.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace mgp {
namespace {

TEST(PartitionMetricsTest, PerfectQuartersOfAGrid) {
  Graph g = grid2d(4, 4);
  // Quadrants of the 4x4 grid.
  std::vector<part_t> part(16);
  for (vid_t v = 0; v < 16; ++v) {
    vid_t x = v % 4, y = v / 4;
    part[static_cast<std::size_t>(v)] = static_cast<part_t>((y / 2) * 2 + (x / 2));
  }
  PartitionQuality q = evaluate_partition(g, part, 4);
  EXPECT_EQ(q.edge_cut, 8);
  EXPECT_DOUBLE_EQ(q.imbalance, 1.0);
  EXPECT_EQ(q.max_part_weight, 4);
  EXPECT_EQ(q.min_part_weight, 4);
}

TEST(PartitionMetricsTest, BoundaryVerticesCounted) {
  Graph g = path_graph(6);
  std::vector<part_t> part = {0, 0, 0, 1, 1, 1};
  PartitionQuality q = evaluate_partition(g, part, 2);
  EXPECT_EQ(q.boundary_vertices, 2);  // vertices 2 and 3
  EXPECT_EQ(q.comm_volume, 2);
  EXPECT_EQ(q.edge_cut, 1);
}

TEST(PartitionMetricsTest, CommVolumeCountsDistinctParts) {
  // Star center adjacent to leaves in 3 different parts: volume 3 for the
  // center plus 1 for each leaf in a foreign part.
  Graph g = star_graph(4);
  std::vector<part_t> part = {0, 1, 2, 3};
  PartitionQuality q = evaluate_partition(g, part, 4);
  EXPECT_EQ(q.comm_volume, 3 + 3);
  EXPECT_EQ(q.boundary_vertices, 4);
}

TEST(PartitionMetricsTest, SinglePartHasNoCut) {
  Graph g = fem2d_tri(6, 6, 1);
  std::vector<part_t> part(static_cast<std::size_t>(g.num_vertices()), 0);
  PartitionQuality q = evaluate_partition(g, part, 1);
  EXPECT_EQ(q.edge_cut, 0);
  EXPECT_EQ(q.boundary_vertices, 0);
  EXPECT_EQ(q.comm_volume, 0);
  EXPECT_DOUBLE_EQ(q.imbalance, 1.0);
}

TEST(PartitionMetricsTest, WeightedImbalance) {
  GraphBuilder b(3);
  b.set_vertex_weight(0, 6);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  Graph g = std::move(b).build();
  std::vector<part_t> part = {0, 1, 1};
  PartitionQuality q = evaluate_partition(g, part, 2);
  // total 8, ideal 4, max part 6.
  EXPECT_DOUBLE_EQ(q.imbalance, 1.5);
}

TEST(PartitionMetricsTest, CheckPartitionAcceptsValid) {
  Graph g = path_graph(4);
  std::vector<part_t> part = {0, 1, 2, 0};
  EXPECT_EQ(check_partition(g, part, 3), "");
}

TEST(PartitionMetricsTest, CheckPartitionRejectsOutOfRange) {
  Graph g = path_graph(3);
  std::vector<part_t> part = {0, 3, 1};
  EXPECT_NE(check_partition(g, part, 3), "");
  std::vector<part_t> neg = {0, -1, 1};
  EXPECT_NE(check_partition(g, neg, 3), "");
}

TEST(PartitionMetricsTest, CheckPartitionRejectsSizeMismatch) {
  Graph g = path_graph(3);
  std::vector<part_t> part = {0, 1};
  EXPECT_NE(check_partition(g, part, 2), "");
}

TEST(PartitionMetricsTest, EdgeCutRespectsWeights) {
  GraphBuilder b(4);
  b.add_edge(0, 1, 10);
  b.add_edge(1, 2, 20);
  b.add_edge(2, 3, 30);
  Graph g = std::move(b).build();
  std::vector<part_t> part = {0, 0, 1, 1};
  PartitionQuality q = evaluate_partition(g, part, 2);
  EXPECT_EQ(q.edge_cut, 20);
}

}  // namespace
}  // namespace mgp
