// Native partition validator (metrics/validate.cpp) — the C++ twin of
// scripts/validate_partition.py must accept and reject the same inputs.
#include "metrics/validate.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/kway.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"

namespace mgp {
namespace {

TEST(ValidatePartitionTest, AcceptsBalancedPartition) {
  std::vector<part_t> part = {0, 1, 0, 1};
  PartitionValidation v = validate_partition(part, 4, 2);
  EXPECT_TRUE(v.valid);
  EXPECT_TRUE(v.errors.empty());
  ASSERT_EQ(v.part_sizes.size(), 2u);
  EXPECT_EQ(v.part_sizes[0], 2);
  EXPECT_EQ(v.part_sizes[1], 2);
  EXPECT_DOUBLE_EQ(v.imbalance, 1.0);
}

TEST(ValidatePartitionTest, RejectsSizeMismatch) {
  std::vector<part_t> part = {0, 1, 0};
  EXPECT_FALSE(validate_partition(part, 4, 2).valid);
}

TEST(ValidatePartitionTest, RejectsOutOfRangeLabels) {
  std::vector<part_t> low = {0, -1, 1, 0};
  EXPECT_FALSE(validate_partition(low, 4, 2).valid);
  std::vector<part_t> high = {0, 2, 1, 0};
  EXPECT_FALSE(validate_partition(high, 4, 2).valid);
}

TEST(ValidatePartitionTest, CapsOutOfRangeErrorSpam) {
  // Mirror the script: report the first handful, then stop.
  std::vector<part_t> part(40, 99);
  PartitionValidation v = validate_partition(part, 40, 2);
  EXPECT_FALSE(v.valid);
  EXPECT_LE(v.errors.size(), 12u);
}

TEST(ValidatePartitionTest, RejectsEmptyPart) {
  std::vector<part_t> part = {0, 0, 0, 0};
  PartitionValidation v = validate_partition(part, 4, 2);
  EXPECT_FALSE(v.valid);
  ASSERT_FALSE(v.errors.empty());
  EXPECT_NE(v.errors.front().find("empty"), std::string::npos);
}

TEST(ValidatePartitionTest, RejectsExcessImbalance) {
  // Sizes {4, 1, 1}, ideal ceil(6/3) = 2 -> imbalance 2.0 > 1.5.
  std::vector<part_t> part = {0, 0, 0, 0, 1, 2};
  PartitionValidation v = validate_partition(part, 6, 3);
  EXPECT_FALSE(v.valid);
  EXPECT_DOUBLE_EQ(v.imbalance, 2.0);
}

TEST(ValidatePartitionTest, ImbalanceBoundIsConfigurable) {
  std::vector<part_t> part = {0, 0, 0, 0, 1, 2};
  EXPECT_TRUE(validate_partition(part, 6, 3, /*max_imbalance=*/2.0).valid);
}

TEST(ValidatePartitionTest, RejectsBadK) {
  std::vector<part_t> part = {0};
  EXPECT_FALSE(validate_partition(part, 1, 0).valid);
}

TEST(ValidatePartitionTest, AcceptsPipelineOutput) {
  Graph g = fem2d_tri(20, 20, 4);
  MultilevelConfig cfg;
  Rng rng(3);
  KwayResult res = kway_partition(g, 8, cfg, rng);
  PartitionValidation v = validate_partition(res.part, g.num_vertices(), 8);
  EXPECT_TRUE(v.valid) << (v.errors.empty() ? "" : v.errors.front());
  EXPECT_GE(v.imbalance, 1.0);
}

}  // namespace
}  // namespace mgp
