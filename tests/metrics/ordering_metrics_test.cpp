#include "metrics/ordering_metrics.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/generators.hpp"

namespace mgp {
namespace {

TEST(OrderingMetricsTest, AgreesWithSymbolicFactor) {
  Graph g = grid2d(8, 8);
  std::vector<vid_t> perm(64);
  std::iota(perm.begin(), perm.end(), vid_t{0});
  OrderingQuality q = evaluate_ordering(g, perm);
  SymbolicFactor sf = symbolic_cholesky(g, perm);
  EXPECT_EQ(q.nnz_factor, sf.nnz_factor);
  EXPECT_EQ(q.flops, sf.flops);
  ConcurrencyProfile cp = concurrency_profile(sf);
  EXPECT_EQ(q.etree_height, cp.etree_height);
  EXPECT_EQ(q.critical_path_flops, cp.critical_path_flops);
}

TEST(OrderingMetricsTest, PathIsCheapest) {
  Graph g = path_graph(20);
  std::vector<vid_t> perm(20);
  std::iota(perm.begin(), perm.end(), vid_t{0});
  OrderingQuality q = evaluate_ordering(g, perm);
  EXPECT_EQ(q.nnz_factor, 39);
  EXPECT_GE(q.average_width, 1.0);
}

TEST(OrderingMetricsTest, FormatFlops) {
  EXPECT_EQ(format_flops(0), "0");
  EXPECT_EQ(format_flops(1500), "1.5e+03");
  EXPECT_FALSE(format_flops(123456789).empty());
}

}  // namespace
}  // namespace mgp
