// Compilation test for the umbrella header plus a smoke run of the
// three-call quickstart it advertises.
#include "mgp.hpp"

#include <gtest/gtest.h>

namespace mgp {
namespace {

TEST(UmbrellaTest, QuickstartCompilesAndRuns) {
  Graph g = fem2d_tri(12, 12, 1);
  Rng rng(1995);
  KwayResult r = kway_partition(g, 4, MultilevelConfig{}, rng);
  EXPECT_EQ(check_partition(g, r.part, 4), "");
  EXPECT_GT(r.edge_cut, 0);
}

}  // namespace
}  // namespace mgp
