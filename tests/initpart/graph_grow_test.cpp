#include "initpart/graph_grow.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace mgp {
namespace {

class GrowTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GrowTest, GgpReachesTargetWeight) {
  Graph g = grid2d(12, 12);
  Rng rng(GetParam());
  const vwt_t target0 = g.total_vertex_weight() / 2;
  Bisection b = ggp_grow_once(g, target0, rng);
  EXPECT_EQ(check_bisection(g, b), "");
  EXPECT_GE(b.part_weight[0], target0);
  // Overshoot bounded by one BFS frontier's worth; certainly < target + n/4.
  EXPECT_LT(b.part_weight[0], target0 + g.num_vertices() / 4);
}

TEST_P(GrowTest, GggpReachesTargetWeight) {
  Graph g = grid2d(12, 12);
  Rng rng(GetParam());
  const vwt_t target0 = g.total_vertex_weight() / 2;
  Bisection b = gggp_grow_once(g, target0, rng);
  EXPECT_EQ(check_bisection(g, b), "");
  EXPECT_GE(b.part_weight[0], target0);
  EXPECT_LE(b.part_weight[0], target0 + 1);  // greedy adds one vertex at a time
}

INSTANTIATE_TEST_SUITE_P(Seeds, GrowTest, ::testing::Values(1, 2, 3, 4, 5));

TEST(GrowTest, GgpGrownRegionIsConnectedOnConnectedGraph) {
  Graph g = fem2d_tri(10, 10, 3);
  Rng rng(7);
  Bisection b = ggp_grow_once(g, g.total_vertex_weight() / 2, rng);
  // BFS growth on a connected graph yields a connected side 0: check that
  // every side-0 vertex (except one seed) has a side-0 neighbour.
  vid_t side0 = 0, with_nbr = 0;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (b.side[static_cast<std::size_t>(v)] != 0) continue;
    ++side0;
    for (vid_t u : g.neighbors(v)) {
      if (b.side[static_cast<std::size_t>(u)] == 0) {
        ++with_nbr;
        break;
      }
    }
  }
  EXPECT_GE(with_nbr, side0 - 1);
}

TEST(GrowTest, UnbalancedTargetRespected) {
  Graph g = grid2d(10, 10);
  Rng rng(5);
  const vwt_t target0 = 25;  // 1/4 of the graph
  Bisection b = gggp_grow_once(g, target0, rng);
  EXPECT_GE(b.part_weight[0], 25);
  EXPECT_LE(b.part_weight[0], 26);
}

TEST(GrowTest, BestOfTrialsNotWorseThanSingle) {
  Graph g = fem2d_tri(14, 14, 11);
  const vwt_t target0 = g.total_vertex_weight() / 2;
  Rng r1(3), r2(3);
  Bisection single = gggp_grow_once(g, target0, r1);
  Bisection multi = gggp_bisect(g, target0, 5, r2);
  EXPECT_LE(multi.cut, single.cut);
}

TEST(GrowTest, GggpBeatsGgpOnAverage) {
  // The paper: "GGGP consistently performing better" (§3.2).  Averaged over
  // seeds on a mesh, GGGP's cut should not lose to GGP's.
  Graph g = fem2d_tri(16, 16, 13);
  const vwt_t target0 = g.total_vertex_weight() / 2;
  ewt_t ggp_total = 0, gggp_total = 0;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    Rng r1(seed), r2(seed);
    ggp_total += ggp_bisect(g, target0, 10, r1).cut;
    gggp_total += gggp_bisect(g, target0, 5, r2).cut;
  }
  EXPECT_LE(gggp_total, ggp_total);
}

TEST(GrowTest, HandlesDisconnectedGraph) {
  // Two 4-cliques, no cross edges: growth must reseed to reach the target.
  GraphBuilder b(8);
  for (vid_t i = 0; i < 4; ++i)
    for (vid_t j = i + 1; j < 4; ++j) b.add_edge(i, j);
  for (vid_t i = 4; i < 8; ++i)
    for (vid_t j = i + 1; j < 8; ++j) b.add_edge(i, j);
  Graph g = std::move(b).build();
  Rng rng(9);
  Bisection bis = ggp_grow_once(g, 4, rng);
  EXPECT_EQ(bis.part_weight[0], 4);
  Rng rng2(9);
  Bisection bis2 = gggp_grow_once(g, 4, rng2);
  EXPECT_EQ(bis2.part_weight[0], 4);
}

TEST(GrowTest, PathGraphOptimalCut) {
  // On a path, both schemes should find the optimal cut of 1 easily.
  // Any contiguous grown interval cuts at most 2 edges; best-of-trials
  // frequently touches an endpoint for the optimal cut of 1.
  Graph g = path_graph(40);
  Rng rng(21);
  Bisection b = gggp_bisect(g, 20, 5, rng);
  EXPECT_LE(b.cut, 2);
  EXPECT_GE(b.cut, 1);
}

TEST(GrowTest, SingleVertexGraph) {
  Graph g = empty_graph(1);
  Rng rng(1);
  Bisection b = ggp_grow_once(g, 0, rng);
  EXPECT_EQ(b.side.size(), 1u);
}

}  // namespace
}  // namespace mgp
