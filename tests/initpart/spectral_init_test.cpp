#include "initpart/spectral_init.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace mgp {
namespace {

TEST(SplitMedianTest, SplitsByValueOrder) {
  Graph g = path_graph(4);
  std::vector<double> vals = {0.9, -0.5, 0.1, -0.9};
  Bisection b = split_at_weighted_median(g, vals, 2);
  // Two smallest values (indices 3 and 1) go to side 0.
  EXPECT_EQ(b.side[3], 0);
  EXPECT_EQ(b.side[1], 0);
  EXPECT_EQ(b.side[0], 1);
  EXPECT_EQ(b.side[2], 1);
  EXPECT_EQ(check_bisection(g, b), "");
}

TEST(SplitMedianTest, RespectsVertexWeights) {
  GraphBuilder gb(3);
  gb.set_vertex_weight(0, 5);
  gb.add_edge(0, 1);
  gb.add_edge(1, 2);
  Graph g = std::move(gb).build();
  std::vector<double> vals = {-1.0, 0.0, 1.0};
  Bisection b = split_at_weighted_median(g, vals, 5);
  // Vertex 0 alone already reaches the target weight of 5.
  EXPECT_EQ(b.side[0], 0);
  EXPECT_EQ(b.side[1], 1);
  EXPECT_EQ(b.side[2], 1);
}

TEST(SplitMedianTest, TieBreakIsDeterministic) {
  Graph g = empty_graph(4);
  std::vector<double> vals = {0.5, 0.5, 0.5, 0.5};
  Bisection a = split_at_weighted_median(g, vals, 2);
  Bisection b = split_at_weighted_median(g, vals, 2);
  EXPECT_EQ(a.side, b.side);
  EXPECT_EQ(a.part_weight[0], 2);
}

TEST(SpectralBisectTest, PathSplitsContiguously) {
  // The Fiedler vector of a path is monotone (cos profile), so the spectral
  // split is the contiguous optimal halving with cut 1.
  Graph g = path_graph(30);
  Rng rng(2);
  FiedlerOptions opts;
  Bisection b = spectral_bisect(g, 15, {}, opts, rng);
  EXPECT_EQ(b.cut, 1);
  EXPECT_EQ(b.part_weight[0], 15);
}

TEST(SpectralBisectTest, Grid2dFindsStraightCut) {
  // 8x16 grid: the Fiedler vector varies along the long axis; the optimal
  // bisection cuts the 8 rung edges in the middle.
  Graph g = grid2d(8, 16);
  Rng rng(3);
  FiedlerOptions opts;
  Bisection b = spectral_bisect(g, 64, {}, opts, rng);
  EXPECT_EQ(b.cut, 8);
  EXPECT_EQ(check_bisection(g, b), "");
}

TEST(SpectralBisectTest, LargerGraphUsesLanczosAndStaysReasonable) {
  Graph g = grid2d(12, 30);  // 360 > dense threshold -> Lanczos path
  Rng rng(4);
  FiedlerOptions opts;
  Bisection b = spectral_bisect(g, 180, {}, opts, rng);
  EXPECT_EQ(check_bisection(g, b), "");
  // Optimal cut is 12; allow slack for iterative convergence.
  EXPECT_LE(b.cut, 24);
}

TEST(SpectralBisectTest, DisconnectedGraphSeparatesComponents) {
  // Two equal cliques: Fiedler value 0, eigenvector constant per component;
  // the split should put whole components on each side -> cut 0.
  GraphBuilder gb(8);
  for (vid_t i = 0; i < 4; ++i)
    for (vid_t j = i + 1; j < 4; ++j) gb.add_edge(i, j);
  for (vid_t i = 4; i < 8; ++i)
    for (vid_t j = i + 1; j < 8; ++j) gb.add_edge(i, j);
  Graph g = std::move(gb).build();
  Rng rng(5);
  FiedlerOptions opts;
  Bisection b = spectral_bisect(g, 4, {}, opts, rng);
  EXPECT_EQ(b.cut, 0);
  EXPECT_EQ(b.part_weight[0], 4);
}

}  // namespace
}  // namespace mgp
