#include "initpart/bisection_state.hpp"

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace mgp {
namespace {

TEST(BisectionStateTest, ComputeCutOnPath) {
  Graph g = path_graph(4);
  std::vector<part_t> side = {0, 0, 1, 1};
  EXPECT_EQ(compute_cut(g, side), 1);
  side = {0, 1, 0, 1};
  EXPECT_EQ(compute_cut(g, side), 3);
}

TEST(BisectionStateTest, ComputeCutRespectsWeights) {
  GraphBuilder b(3);
  b.add_edge(0, 1, 10);
  b.add_edge(1, 2, 7);
  Graph g = std::move(b).build();
  std::vector<part_t> side = {0, 0, 1};
  EXPECT_EQ(compute_cut(g, side), 7);
}

TEST(BisectionStateTest, MakeBisectionFillsCaches) {
  Graph g = cycle_graph(6);
  Bisection b = make_bisection(g, {0, 0, 0, 1, 1, 1});
  EXPECT_EQ(b.part_weight[0], 3);
  EXPECT_EQ(b.part_weight[1], 3);
  EXPECT_EQ(b.cut, 2);
  EXPECT_EQ(check_bisection(g, b), "");
}

TEST(BisectionStateTest, AllOneSide) {
  Graph g = path_graph(3);
  Bisection b = make_bisection(g, {0, 0, 0});
  EXPECT_EQ(b.cut, 0);
  EXPECT_EQ(b.part_weight[0], 3);
  EXPECT_EQ(b.part_weight[1], 0);
}

TEST(BisectionStateTest, BalancePerfectHalves) {
  Graph g = path_graph(4);
  Bisection b = make_bisection(g, {0, 0, 1, 1});
  EXPECT_DOUBLE_EQ(bisection_balance(g, b, 2), 1.0);
}

TEST(BisectionStateTest, BalanceReflectsOverweight) {
  Graph g = path_graph(4);
  Bisection b = make_bisection(g, {0, 0, 0, 1});
  EXPECT_DOUBLE_EQ(bisection_balance(g, b, 2), 1.5);
}

TEST(BisectionStateTest, CheckDetectsWrongCachedCut) {
  Graph g = path_graph(4);
  Bisection b = make_bisection(g, {0, 0, 1, 1});
  b.cut = 99;
  EXPECT_NE(check_bisection(g, b), "");
}

TEST(BisectionStateTest, CheckDetectsWrongWeights) {
  Graph g = path_graph(4);
  Bisection b = make_bisection(g, {0, 0, 1, 1});
  b.part_weight[0] = 7;
  EXPECT_NE(check_bisection(g, b), "");
}

TEST(BisectionStateTest, CheckDetectsBadLabel) {
  Graph g = path_graph(3);
  Bisection b = make_bisection(g, {0, 0, 1});
  b.side[1] = 5;
  EXPECT_NE(check_bisection(g, b), "");
}

TEST(BisectionStateTest, CheckDetectsSizeMismatch) {
  Graph g = path_graph(3);
  Bisection b = make_bisection(g, {0, 0, 1});
  b.side.pop_back();
  EXPECT_NE(check_bisection(g, b), "");
}

}  // namespace
}  // namespace mgp
