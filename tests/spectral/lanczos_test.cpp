#include "spectral/lanczos.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "spectral/laplacian.hpp"

namespace mgp {
namespace {

TEST(TridiagEigenTest, MatchesAnalytic2x2) {
  std::vector<double> alpha = {2.0, 2.0};
  std::vector<double> beta = {1.0};
  TridiagEigen e = tridiag_eigen(alpha, beta);
  EXPECT_NEAR(e.values[0], 1.0, 1e-10);
  EXPECT_NEAR(e.values[1], 3.0, 1e-10);
}

TEST(TridiagEigenTest, SingleElement) {
  std::vector<double> alpha = {5.0};
  TridiagEigen e = tridiag_eigen(alpha, {});
  ASSERT_EQ(e.values.size(), 1u);
  EXPECT_DOUBLE_EQ(e.values[0], 5.0);
}

class TridiagSmallestTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TridiagSmallestTest, AgreesWithFullDecomposition) {
  // The O(m) Sturm/inverse-iteration path must reproduce the full Jacobi
  // decomposition's smallest eigenpair on random tridiagonal matrices.
  const std::size_t m = GetParam();
  Rng rng(m * 977);
  std::vector<double> alpha(m), beta(m > 1 ? m - 1 : 0);
  for (double& a : alpha) a = 4.0 * rng.next_double();
  for (double& b : beta) b = 2.0 * rng.next_double() - 1.0;
  TridiagPair fast = tridiag_smallest(alpha, beta);
  TridiagEigen full = tridiag_eigen(alpha, beta);
  EXPECT_NEAR(fast.value, full.values[0], 1e-8);
  // Vectors agree up to sign.
  double dot_fv = 0.0;
  for (std::size_t i = 0; i < m; ++i) dot_fv += fast.vector[i] * full.vectors[i];
  EXPECT_NEAR(std::abs(dot_fv), 1.0, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TridiagSmallestTest,
                         ::testing::Values(1, 2, 3, 5, 10, 25, 60, 120));

TEST(TridiagSmallestTest, DiagonalMatrix) {
  std::vector<double> alpha = {5.0, 1.0, 3.0};
  std::vector<double> beta = {0.0, 0.0};
  TridiagPair p = tridiag_smallest(alpha, beta);
  EXPECT_NEAR(p.value, 1.0, 1e-10);
  EXPECT_NEAR(std::abs(p.vector[1]), 1.0, 1e-6);
}

TEST(LanczosTest, CycleAlgebraicConnectivity) {
  // Cycle on n vertices: lambda_2 = 2 - 2 cos(2 pi / n).
  const vid_t n = 200;
  Graph g = cycle_graph(n);
  Rng rng(1);
  LanczosOptions opts;
  opts.max_iters = 150;
  LanczosResult r = lanczos_fiedler(g, {}, opts, rng);
  const double expect = 2.0 - 2.0 * std::cos(2.0 * M_PI / n);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.value, expect, 1e-4 * expect + 1e-8);
}

TEST(LanczosTest, ResultIsUnitAndDeflated) {
  Graph g = fem2d_tri(15, 15, 3);
  Rng rng(2);
  LanczosOptions opts;
  LanczosResult r = lanczos_fiedler(g, {}, opts, rng);
  EXPECT_NEAR(norm2(r.vector), 1.0, 1e-8);
  double sum = 0;
  for (double v : r.vector) sum += v;
  EXPECT_NEAR(sum, 0.0, 1e-6);
}

TEST(LanczosTest, ResidualIsSmallOnConvergence) {
  Graph g = grid2d(20, 10);
  Rng rng(3);
  LanczosOptions opts;
  opts.max_iters = 200;
  opts.tol = 1e-7;
  LanczosResult r = lanczos_fiedler(g, {}, opts, rng);
  ASSERT_TRUE(r.converged);
  // Verify the eigen-residual directly: ||L v - lambda v||.
  std::vector<double> y(r.vector.size());
  laplacian_apply(g, r.vector, y);
  axpy(-r.value, r.vector, std::span<double>(y));
  EXPECT_LT(norm2(y), 1e-4);
}

TEST(LanczosTest, WarmStartConvergesFaster) {
  Graph g = grid2d(25, 12);
  Rng rng(4);
  LanczosOptions opts;
  opts.max_iters = 250;
  opts.tol = 1e-6;
  LanczosResult cold = lanczos_fiedler(g, {}, opts, rng);
  ASSERT_TRUE(cold.converged);
  // Re-run warm-started with the converged vector: should finish in far
  // fewer iterations.  This property is what makes MSB viable.
  LanczosResult warm = lanczos_fiedler(g, cold.vector, opts, rng);
  EXPECT_TRUE(warm.converged);
  EXPECT_LT(warm.iterations, std::max(2, cold.iterations / 2));
}

TEST(LanczosTest, PathFiedlerVectorIsMonotone) {
  Graph g = path_graph(120);
  Rng rng(5);
  LanczosOptions opts;
  opts.max_iters = 200;
  LanczosResult r = lanczos_fiedler(g, {}, opts, rng);
  ASSERT_TRUE(r.converged);
  // The Fiedler vector of a path is cos((i+1/2) pi/n): strictly monotone.
  const bool increasing = r.vector.front() < r.vector.back();
  int violations = 0;
  for (std::size_t i = 1; i < r.vector.size(); ++i) {
    const bool up = r.vector[i] > r.vector[i - 1];
    if (up != increasing) ++violations;
  }
  EXPECT_EQ(violations, 0);
}

TEST(LanczosTest, TinyGraphs) {
  Rng rng(6);
  LanczosOptions opts;
  {
    Graph g = empty_graph(1);
    LanczosResult r = lanczos_fiedler(g, {}, opts, rng);
    EXPECT_TRUE(r.converged);
    ASSERT_EQ(r.vector.size(), 1u);
  }
  {
    Graph g = path_graph(2);
    LanczosResult r = lanczos_fiedler(g, {}, opts, rng);
    ASSERT_EQ(r.vector.size(), 2u);
    EXPECT_NEAR(r.value, 2.0, 1e-6);  // K_2 Laplacian eigenvalues: 0 and 2
    EXPECT_NEAR(r.vector[0], -r.vector[1], 1e-8);
  }
}

TEST(LanczosTest, DeterministicGivenSeed) {
  Graph g = fem2d_tri(10, 10, 4);
  LanczosOptions opts;
  Rng r1(7), r2(7);
  LanczosResult a = lanczos_fiedler(g, {}, opts, r1);
  LanczosResult b = lanczos_fiedler(g, {}, opts, r2);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_DOUBLE_EQ(a.value, b.value);
}

}  // namespace
}  // namespace mgp
