#include "spectral/jacobi.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "spectral/laplacian.hpp"

namespace mgp {
namespace {

TEST(JacobiTest, DiagonalMatrixIsItsOwnDecomposition) {
  std::vector<double> m = {3.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0};
  DenseEigen e = jacobi_eigen(m, 3);
  EXPECT_NEAR(e.values[0], 1.0, 1e-12);
  EXPECT_NEAR(e.values[1], 2.0, 1e-12);
  EXPECT_NEAR(e.values[2], 3.0, 1e-12);
}

TEST(JacobiTest, TwoByTwoAnalytic) {
  // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
  std::vector<double> m = {2.0, 1.0, 1.0, 2.0};
  DenseEigen e = jacobi_eigen(m, 2);
  EXPECT_NEAR(e.values[0], 1.0, 1e-12);
  EXPECT_NEAR(e.values[1], 3.0, 1e-12);
  // Eigenvector for value 1 is (1,-1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::abs(e.vectors[0] - (-e.vectors[1])), 0.0, 1e-10);
}

TEST(JacobiTest, EigenvectorsSatisfyDefinition) {
  Graph g = fem2d_tri(4, 4, 7);
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  std::vector<double> m = laplacian_dense(g);
  DenseEigen e = jacobi_eigen(m, n);
  for (std::size_t k = 0; k < n; ++k) {
    std::vector<double> v(e.vectors.begin() + static_cast<std::ptrdiff_t>(k * n),
                          e.vectors.begin() + static_cast<std::ptrdiff_t>((k + 1) * n));
    std::vector<double> mv(n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) mv[i] += m[i * n + j] * v[j];
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(mv[i], e.values[k] * v[i], 1e-8);
    }
  }
}

TEST(JacobiTest, EigenvectorsAreOrthonormal) {
  Graph g = grid2d(4, 3);
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  DenseEigen e = jacobi_eigen(laplacian_dense(g), n);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = a; b < n; ++b) {
      double d = 0;
      for (std::size_t i = 0; i < n; ++i) d += e.vectors[a * n + i] * e.vectors[b * n + i];
      EXPECT_NEAR(d, a == b ? 1.0 : 0.0, 1e-9);
    }
  }
}

TEST(JacobiTest, PathLaplacianAnalyticEigenvalues) {
  // Path on n vertices: eigenvalues 2 - 2 cos(k*pi/n), k = 0..n-1.
  const std::size_t n = 8;
  Graph g = path_graph(static_cast<vid_t>(n));
  DenseEigen e = jacobi_eigen(laplacian_dense(g), n);
  for (std::size_t k = 0; k < n; ++k) {
    double expect = 2.0 - 2.0 * std::cos(static_cast<double>(k) * M_PI / n);
    EXPECT_NEAR(e.values[k], expect, 1e-9);
  }
}

TEST(JacobiTest, ValuesAreAscending) {
  Graph g = fem2d_tri(5, 5, 2);
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  DenseEigen e = jacobi_eigen(laplacian_dense(g), n);
  for (std::size_t k = 1; k < n; ++k) EXPECT_LE(e.values[k - 1], e.values[k] + 1e-12);
  // Laplacian: smallest eigenvalue is 0 with the constant eigenvector.
  EXPECT_NEAR(e.values[0], 0.0, 1e-9);
}

TEST(JacobiTest, OneByOne) {
  std::vector<double> m = {42.0};
  DenseEigen e = jacobi_eigen(m, 1);
  EXPECT_DOUBLE_EQ(e.values[0], 42.0);
  EXPECT_NEAR(std::abs(e.vectors[0]), 1.0, 1e-12);
}

}  // namespace
}  // namespace mgp
