#include "spectral/laplacian.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace mgp {
namespace {

TEST(LaplacianTest, ConstantVectorInNullSpace) {
  Graph g = fem2d_tri(6, 6, 1);
  std::vector<double> x(static_cast<std::size_t>(g.num_vertices()), 3.0);
  std::vector<double> y(x.size());
  laplacian_apply(g, x, y);
  for (double v : y) EXPECT_NEAR(v, 0.0, 1e-12);
}

TEST(LaplacianTest, MatchesDenseOnSmallGraph) {
  GraphBuilder b(4);
  b.add_edge(0, 1, 2);
  b.add_edge(1, 2, 3);
  b.add_edge(2, 3, 1);
  b.add_edge(0, 3, 4);
  Graph g = std::move(b).build();
  std::vector<double> dense = laplacian_dense(g);
  std::vector<double> x = {1.0, -2.0, 0.5, 3.0};
  std::vector<double> y_sparse(4), y_dense(4, 0.0);
  laplacian_apply(g, x, y_sparse);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j) y_dense[i] += dense[i * 4 + j] * x[j];
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(y_sparse[i], y_dense[i], 1e-12);
}

TEST(LaplacianTest, DiagonalIsWeightedDegree) {
  GraphBuilder b(3);
  b.add_edge(0, 1, 5);
  b.add_edge(1, 2, 7);
  Graph g = std::move(b).build();
  std::vector<double> d = laplacian_diagonal(g);
  EXPECT_DOUBLE_EQ(d[0], 5.0);
  EXPECT_DOUBLE_EQ(d[1], 12.0);
  EXPECT_DOUBLE_EQ(d[2], 7.0);
}

TEST(LaplacianTest, QuadraticFormEqualsCutEnergy) {
  // x^T L x = sum over edges w_uv (x_u - x_v)^2.
  Graph g = cycle_graph(5);
  std::vector<double> x = {1.0, 2.0, -1.0, 0.0, 3.0};
  std::vector<double> y(5);
  laplacian_apply(g, x, y);
  double xtlx = dot(x, y);
  double expected = 0;
  for (vid_t u = 0; u < 5; ++u) {
    for (vid_t v : g.neighbors(u)) {
      if (v > u) {
        double d = x[static_cast<std::size_t>(u)] - x[static_cast<std::size_t>(v)];
        expected += d * d;
      }
    }
  }
  EXPECT_NEAR(xtlx, expected, 1e-12);
}

TEST(VectorOpsTest, DotNormAxpyScale) {
  std::vector<double> a = {3.0, 4.0};
  std::vector<double> b = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 11.0);
  EXPECT_DOUBLE_EQ(norm2(a), 5.0);
  axpy(2.0, b, std::span<double>(a));
  EXPECT_DOUBLE_EQ(a[0], 5.0);
  EXPECT_DOUBLE_EQ(a[1], 8.0);
  scale(std::span<double>(a), 0.5);
  EXPECT_DOUBLE_EQ(a[0], 2.5);
}

TEST(VectorOpsTest, DeflateConstantRemovesMean) {
  std::vector<double> x = {1.0, 2.0, 3.0, 6.0};
  deflate_constant(std::span<double>(x));
  double sum = 0;
  for (double v : x) sum += v;
  EXPECT_NEAR(sum, 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(x[0], -2.0);
}

}  // namespace
}  // namespace mgp
