#include "spectral/fiedler.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "spectral/laplacian.hpp"

namespace mgp {
namespace {

TEST(FiedlerTest, SmallGraphUsesExactPath) {
  Graph g = path_graph(20);
  Rng rng(1);
  FiedlerOptions opts;  // dense threshold 128 > 20
  FiedlerResult r = fiedler_vector(g, {}, opts, rng);
  EXPECT_TRUE(r.exact);
  const double expect = 2.0 - 2.0 * std::cos(M_PI / 20);
  EXPECT_NEAR(r.value, expect, 1e-9);
}

TEST(FiedlerTest, LargeGraphUsesLanczos) {
  Graph g = grid2d(20, 10);
  Rng rng(2);
  FiedlerOptions opts;
  FiedlerResult r = fiedler_vector(g, {}, opts, rng);
  EXPECT_FALSE(r.exact);
  EXPECT_EQ(r.vector.size(), static_cast<std::size_t>(g.num_vertices()));
}

TEST(FiedlerTest, DenseAndLanczosAgreeOnValue) {
  Graph g = grid2d(10, 9);  // 90 vertices: under the default dense threshold
  Rng rng(3);
  FiedlerOptions dense_opts;
  FiedlerResult exact = fiedler_vector(g, {}, dense_opts, rng);
  FiedlerOptions lanczos_opts;
  lanczos_opts.dense_threshold = 1;
  lanczos_opts.lanczos.max_iters = 89;
  lanczos_opts.lanczos.tol = 1e-8;
  FiedlerResult iter = fiedler_vector(g, {}, lanczos_opts, rng);
  EXPECT_NEAR(exact.value, iter.value, 1e-4);
}

TEST(FiedlerTest, SignStructureSplitsPathInHalf) {
  Graph g = path_graph(64);
  Rng rng(4);
  FiedlerOptions opts;
  FiedlerResult r = fiedler_vector(g, {}, opts, rng);
  // One sign change, at the middle.
  int sign_changes = 0;
  for (std::size_t i = 1; i < r.vector.size(); ++i) {
    if ((r.vector[i] > 0) != (r.vector[i - 1] > 0)) ++sign_changes;
  }
  EXPECT_EQ(sign_changes, 1);
}

TEST(FiedlerTest, SingletonAndEmpty) {
  Rng rng(5);
  FiedlerOptions opts;
  FiedlerResult r1 = fiedler_vector(empty_graph(1), {}, opts, rng);
  EXPECT_EQ(r1.vector.size(), 1u);
  FiedlerResult r0 = fiedler_vector(empty_graph(0), {}, opts, rng);
  EXPECT_EQ(r0.vector.size(), 0u);
}

TEST(FiedlerTest, DisconnectedGraphHasZeroValue) {
  Graph g = empty_graph(10);
  Rng rng(6);
  FiedlerOptions opts;
  FiedlerResult r = fiedler_vector(g, {}, opts, rng);
  EXPECT_NEAR(r.value, 0.0, 1e-9);
}

}  // namespace
}  // namespace mgp
