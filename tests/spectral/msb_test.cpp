#include "spectral/msb.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "metrics/partition_metrics.hpp"

namespace mgp {
namespace {

TEST(MsbTest, BisectsLongGridNearOptimally) {
  // 10 x 60 grid: optimal bisection cuts 10 edges across the long axis.
  Graph g = grid2d(10, 60);
  Rng rng(1);
  MsbOptions opts;
  Bisection b = msb_bisect(g, 300, opts, rng);
  EXPECT_EQ(check_bisection(g, b), "");
  EXPECT_EQ(b.part_weight[0], 300);
  EXPECT_LE(b.cut, 20);  // within 2x of optimal
}

TEST(MsbTest, SmallGraphSkipsCoarsening) {
  Graph g = grid2d(6, 6);  // 36 < coarsen_to
  Rng rng(2);
  MsbOptions opts;
  Bisection b = msb_bisect(g, 18, opts, rng);
  EXPECT_EQ(check_bisection(g, b), "");
  EXPECT_EQ(b.cut, 6);  // exact spectral answer on the coarsest (= original)
}

TEST(MsbTest, KlRefinementNeverHurts) {
  Graph g = fem2d_tri(30, 30, 3);
  Rng r1(4), r2(4);
  MsbOptions plain;
  MsbOptions with_kl;
  with_kl.kl_refine = true;
  Bisection b1 = msb_bisect(g, g.total_vertex_weight() / 2, plain, r1);
  Bisection b2 = msb_bisect(g, g.total_vertex_weight() / 2, with_kl, r2);
  EXPECT_LE(b2.cut, b1.cut);
  EXPECT_EQ(check_bisection(g, b2), "");
}

TEST(MsbTest, KwayPartitionIsValidAndBalanced) {
  Graph g = fem2d_tri(24, 24, 5);
  Rng rng(6);
  MsbOptions opts;
  KwayResult r = msb_partition(g, 8, opts, rng);
  EXPECT_EQ(check_partition(g, r.part, 8), "");
  PartitionQuality q = evaluate_partition(g, r.part, 8);
  EXPECT_LT(q.imbalance, 1.15);
  EXPECT_EQ(q.edge_cut, r.edge_cut);
  EXPECT_GT(r.edge_cut, 0);
}

TEST(MsbTest, DeterministicGivenSeed) {
  Graph g = fem2d_tri(20, 20, 7);
  MsbOptions opts;
  Rng r1(9), r2(9);
  Bisection a = msb_bisect(g, g.total_vertex_weight() / 2, opts, r1);
  Bisection b = msb_bisect(g, g.total_vertex_weight() / 2, opts, r2);
  EXPECT_EQ(a.side, b.side);
}

}  // namespace
}  // namespace mgp
