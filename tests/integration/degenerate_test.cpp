// Degenerate-graph battery: every matcher × initial partitioner × refiner
// combination run over pathological inputs.  These tests assert survival
// and structural invariants (labels in range, cut consistent, every vertex
// labelled) — not cut quality, which is meaningless here.
//
// The graphs cover the edge cases the pipeline's loops are most likely to
// mishandle: nothing to coarsen (isolated vertices), nothing to bisect
// (n <= 1), a single dominant hub (star), maximal density (K16), gain
// arithmetic degeneracy (all-zero edge weights), and multi-component
// re-seeding (fully disconnected).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/kway.hpp"
#include "core/kway_direct.hpp"
#include "graph/generators.hpp"

namespace mgp {
namespace {

struct DegenerateCase {
  std::string name;
  Graph graph;
};

/// Path 0-1-...-7 whose edges all weigh zero.  Violates validate()'s
/// positive-weight rule on purpose: contraction, gain tracking, and cut
/// accounting must still not crash or corrupt state when every gain is 0.
Graph zero_weight_path() {
  const vid_t n = 8;
  std::vector<eid_t> xadj(static_cast<std::size_t>(n) + 1, 0);
  std::vector<vid_t> adjncy;
  std::vector<ewt_t> adjwgt;
  for (vid_t v = 0; v < n; ++v) {
    if (v > 0) {
      adjncy.push_back(v - 1);
      adjwgt.push_back(0);
    }
    if (v + 1 < n) {
      adjncy.push_back(v + 1);
      adjwgt.push_back(0);
    }
    xadj[static_cast<std::size_t>(v) + 1] = static_cast<eid_t>(adjncy.size());
  }
  std::vector<vwt_t> vwgt(static_cast<std::size_t>(n), 1);
  return Graph(std::move(xadj), std::move(adjncy), std::move(vwgt),
               std::move(adjwgt));
}

std::vector<DegenerateCase> degenerate_cases() {
  std::vector<DegenerateCase> cases;
  cases.push_back({"empty", empty_graph(0)});
  cases.push_back({"single_vertex", empty_graph(1)});
  cases.push_back({"two_isolated", empty_graph(2)});
  cases.push_back({"star16", star_graph(16)});
  cases.push_back({"complete16", complete_graph(16)});
  cases.push_back({"zero_weight_edges", zero_weight_path()});
  cases.push_back({"disconnected8", empty_graph(8)});
  return cases;
}

/// Structural invariants of a k-way result; returns "" when consistent.
std::string check_partition(const Graph& g, const KwayResult& r, part_t k) {
  if (r.part.size() != static_cast<std::size_t>(g.num_vertices())) {
    return "part size mismatch";
  }
  for (std::size_t v = 0; v < r.part.size(); ++v) {
    if (r.part[v] < 0 || r.part[v] >= k) {
      return "label out of range at vertex " + std::to_string(v);
    }
  }
  if (r.edge_cut != compute_kway_cut(g, r.part)) return "cached cut inconsistent";
  return "";
}

class DegenerateGraphTest : public ::testing::TestWithParam<int> {};

TEST_P(DegenerateGraphTest, EveryPipelineComboSurvives) {
  const DegenerateCase c = degenerate_cases()[static_cast<std::size_t>(GetParam())];
  const MatchingScheme matchers[] = {
      MatchingScheme::kRandom, MatchingScheme::kHeavyEdge,
      MatchingScheme::kLightEdge, MatchingScheme::kHeavyClique};
  const InitPartScheme initparts[] = {InitPartScheme::kGGP, InitPartScheme::kGGGP,
                                      InitPartScheme::kSpectral};
  const RefinePolicy refiners[] = {RefinePolicy::kNone,  RefinePolicy::kGR,
                                   RefinePolicy::kKLR,   RefinePolicy::kBGR,
                                   RefinePolicy::kBKLR,  RefinePolicy::kBKLGR};

  for (MatchingScheme m : matchers) {
    for (InitPartScheme ip : initparts) {
      for (RefinePolicy rp : refiners) {
        for (part_t k : {part_t{2}, part_t{5}}) {
          MultilevelConfig cfg;
          cfg.matching = m;
          cfg.initpart = ip;
          cfg.refine = rp;
          cfg.coarsen_to = 2;  // force coarsening even on tiny graphs
          SCOPED_TRACE(c.name + " " + to_string(m) + "+" + to_string(ip) + "+" +
                       to_string(rp) + " k=" + std::to_string(k));
          Rng rng(31337);
          KwayResult r = kway_partition(c.graph, k, cfg, rng);
          EXPECT_EQ(check_partition(c.graph, r, k), "");
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllCases, DegenerateGraphTest, ::testing::Range(0, 7),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return degenerate_cases()
                               [static_cast<std::size_t>(info.param)].name;
                         });

class DegenerateDirectKwayTest : public ::testing::TestWithParam<int> {};

TEST_P(DegenerateDirectKwayTest, DirectKwaySurvives) {
  // The direct path has its own coarsening ladder, initial k-way partition,
  // and propose/commit refiner — all of which must survive the same
  // pathologies, including k far above the vertex count.
  const DegenerateCase c = degenerate_cases()[static_cast<std::size_t>(GetParam())];
  for (part_t k : {part_t{2}, part_t{5}, part_t{16}}) {
    KwayDirectConfig cfg;
    cfg.coarsen_to_floor = 2;       // force coarsening even on tiny graphs
    cfg.coarse_vertices_per_part = 1;
    SCOPED_TRACE(c.name + " k=" + std::to_string(k));
    Rng rng(31337);
    KwayResult r = kway_partition_direct(c.graph, k, cfg, rng);
    EXPECT_EQ(check_partition(c.graph, r, k), "");
  }
}

INSTANTIATE_TEST_SUITE_P(AllCases, DegenerateDirectKwayTest, ::testing::Range(0, 7),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return degenerate_cases()
                               [static_cast<std::size_t>(info.param)].name;
                         });

}  // namespace
}  // namespace mgp
