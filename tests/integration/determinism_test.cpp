// Cross-cutting determinism suite for the parallel pipeline.
//
// "Fast but silently different" is the failure mode of parallel
// partitioners, so this suite pins the repo's central threading guarantee:
// the partition produced by the parallel pipeline is a pure function of the
// seed — byte-identical for every pool size in {1, 2, 4, 8}, for every
// matching scheme × refinement policy, on several generator families.
//
// Three layers of the guarantee, each asserted separately:
//   1. contraction: parallel row assembly == sequential bytes, any pool;
//   2. coarsening + kway: whole-pipeline partitions identical across pools;
//   3. config plumbing: cfg.threads = t engages the same algorithms as an
//      explicit pool, so user-visible runs are invariant too.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "coarsen/contract.hpp"
#include "coarsen/parallel_matching.hpp"
#include "core/kway.hpp"
#include "core/kway_direct.hpp"
#include "graph/generators.hpp"
#include "metrics/partition_metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "support/thread_pool.hpp"

namespace mgp {
namespace {

constexpr int kPoolSizes[] = {1, 2, 4, 8};

std::vector<std::pair<std::string, Graph>> family_graphs() {
  std::vector<std::pair<std::string, Graph>> out;
  // fem2d is sized past the kway spawn threshold so the fork/join recursion
  // actually runs as concurrent pool tasks, not just inline.
  out.emplace_back("fem2d", fem2d_tri(48, 48, 3));
  out.emplace_back("grid3d27", grid3d_27(6, 6, 4));
  out.emplace_back("power", power_grid(1200, 5));
  out.emplace_back("circuit", circuit(900, 7));
  out.emplace_back("finan", finan(10, 12, 11));
  return out;
}

using SchemeRefine = std::tuple<MatchingScheme, RefinePolicy>;

class PipelineDeterminismTest : public ::testing::TestWithParam<SchemeRefine> {};

TEST_P(PipelineDeterminismTest, PartitionsByteIdenticalAcrossPoolSizes) {
  auto [scheme, refine] = GetParam();
  MultilevelConfig cfg;
  cfg.matching = scheme;
  cfg.refine = refine;
  for (const auto& [name, g] : family_graphs()) {
    std::vector<part_t> reference;
    for (int threads : kPoolSizes) {
      ThreadPool pool(threads);
      Rng rng(1234);
      KwayResult r = kway_partition(g, 8, cfg, rng, nullptr, &pool);
      ASSERT_EQ(check_partition(g, r.part, 8), "") << name << " t=" << threads;
      if (threads == kPoolSizes[0]) {
        reference = r.part;
      } else {
        ASSERT_EQ(r.part, reference)
            << "partition differs: " << name << " scheme=" << to_string(scheme)
            << " refine=" << to_string(refine) << " threads=" << threads;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SchemesTimesRefiners, PipelineDeterminismTest,
    ::testing::Combine(::testing::Values(MatchingScheme::kRandom,
                                         MatchingScheme::kHeavyEdge,
                                         MatchingScheme::kLightEdge,
                                         MatchingScheme::kHeavyClique),
                       ::testing::Values(RefinePolicy::kNone, RefinePolicy::kGR,
                                         RefinePolicy::kKLR, RefinePolicy::kBGR,
                                         RefinePolicy::kBKLR,
                                         RefinePolicy::kBKLGR)),
    [](const ::testing::TestParamInfo<SchemeRefine>& info) {
      return to_string(std::get<0>(info.param)) + "_" +
             to_string(std::get<1>(info.param));
    });

TEST(PipelineDeterminismTest, ParallelRefinerByteIdenticalAcrossPoolSizes) {
  // Force the propose/commit parallel refiner onto every refined level
  // (threshold 0: any boundary qualifies whenever a pool is attached) and
  // assert the whole-pipeline guarantee still holds: partitions are a pure
  // function of the seed for every pool size, for both greedy-leg policies
  // and for all matching schemes.
  for (RefinePolicy refine : {RefinePolicy::kBGR, RefinePolicy::kBKLGR}) {
    for (MatchingScheme scheme :
         {MatchingScheme::kRandom, MatchingScheme::kHeavyEdge}) {
      MultilevelConfig cfg;
      cfg.matching = scheme;
      cfg.refine = refine;
      cfg.kl.parallel_boundary_min = 0;
      for (const auto& [name, g] : family_graphs()) {
        std::vector<part_t> reference;
        for (int threads : kPoolSizes) {
          ThreadPool pool(threads);
          Rng rng(1234);
          KwayResult r = kway_partition(g, 8, cfg, rng, nullptr, &pool);
          ASSERT_EQ(check_partition(g, r.part, 8), "") << name << " t=" << threads;
          if (threads == kPoolSizes[0]) {
            reference = r.part;
          } else {
            ASSERT_EQ(r.part, reference)
                << "parallel-refined partition differs: " << name
                << " scheme=" << to_string(scheme) << " refine=" << to_string(refine)
                << " threads=" << threads;
          }
        }
      }
    }
  }
}

TEST(PipelineDeterminismTest, ParallelRefinerUnaffectedByObsCollection) {
  // The determinism contract composes: obs collection must not perturb the
  // parallel refiner's rounds either.
  Graph g = fem2d_tri(48, 48, 3);
  MultilevelConfig cfg;
  cfg.kl.parallel_boundary_min = 0;
  std::vector<part_t> reference;
  for (int threads : kPoolSizes) {
    ThreadPool pool(threads);
    Rng rng(555);
    KwayResult plain = kway_partition(g, 8, cfg, rng, nullptr, &pool);
    if (reference.empty()) reference = plain.part;
    ASSERT_EQ(plain.part, reference) << "t=" << threads;

    obs::Obs ob;
    MultilevelConfig with_obs = cfg;
    with_obs.obs = &ob;
    Rng obs_rng(555);
    KwayResult traced = kway_partition(g, 8, with_obs, obs_rng, nullptr, &pool);
    ASSERT_EQ(traced.part, reference) << "obs run diverged, t=" << threads;
    // The parallel refiner actually ran and its counters are populated.
    EXPECT_GT(ob.metrics.snapshot().counter_value("refine.parallel_rounds"), 0)
        << "t=" << threads;
  }
}

TEST(PipelineDeterminismTest, ConfigThreadsMatchesExplicitPool) {
  // cfg.threads = t must run exactly the algorithms an explicit pool runs,
  // so user-visible partitions are invariant across every threads > 1.
  Graph g = fem2d_tri(30, 30, 9);
  MultilevelConfig cfg;  // HEM + GGGP + BKLGR, the paper default
  std::vector<part_t> reference;
  for (int threads : {2, 4, 8}) {
    cfg.threads = threads;
    Rng rng(99);
    KwayResult r = kway_partition(g, 8, cfg, rng);
    if (reference.empty()) {
      reference = r.part;
    } else {
      ASSERT_EQ(r.part, reference) << "threads=" << threads;
    }
  }
  // ... and matches a caller-owned pool of any size.
  ThreadPool pool(3);
  cfg.threads = 1;
  Rng rng(99);
  KwayResult r = kway_partition(g, 8, cfg, rng, nullptr, &pool);
  EXPECT_EQ(r.part, reference);
}

TEST(PipelineDeterminismTest, SequentialPathUnaffectedByPoolElsewhere) {
  // threads == 1 (the default) must stay the pre-pool sequential path:
  // repeated runs agree with themselves.
  Graph g = grid3d_27(7, 6, 5);
  MultilevelConfig cfg;
  Rng r1(5), r2(5);
  KwayResult a = kway_partition(g, 8, cfg, r1);
  KwayResult b = kway_partition(g, 8, cfg, r2);
  EXPECT_EQ(a.part, b.part);
  EXPECT_EQ(a.edge_cut, b.edge_cut);
}

TEST(PipelineDeterminismTest, ObsCollectionDoesNotPerturbPartitions) {
  // The observability contract (DESIGN.md): attaching an Obs context draws
  // no randomness and alters no control flow, so partitions stay
  // byte-identical with collection on or off, for every pool size.
  Graph g = fem2d_tri(48, 48, 3);
  MultilevelConfig cfg;  // HEM + GGGP + BKLGR, the paper default
  std::vector<part_t> reference;
  std::vector<std::tuple<std::int64_t, std::int64_t, std::int64_t, std::int64_t>>
      ref_bisections;
  for (int threads : kPoolSizes) {
    ThreadPool pool(threads);
    Rng plain_rng(1234);
    KwayResult plain = kway_partition(g, 8, cfg, plain_rng, nullptr, &pool);
    if (reference.empty()) reference = plain.part;
    ASSERT_EQ(plain.part, reference) << "plain run diverged, t=" << threads;

    obs::Obs ob;
    MultilevelConfig with_obs = cfg;
    with_obs.obs = &ob;
    Rng obs_rng(1234);
    PhaseTimers timers;
    KwayResult traced = kway_partition(g, 8, with_obs, obs_rng, &timers, &pool);
    ASSERT_EQ(traced.part, reference) << "obs run diverged, t=" << threads;

    // The report must actually have collected, and agree with the metrics.
    EXPECT_EQ(ob.report.num_bisections(), 7u);  // k=8 -> 7 bisections
    EXPECT_EQ(ob.metrics.snapshot().counter_value("pipeline.bisections"), 7);
    EXPECT_GT(timers.total(), 0.0);

    // Report content (modulo times) is pool-size-invariant: same multiset
    // of bisections regardless of scheduling.
    std::vector<std::tuple<std::int64_t, std::int64_t, std::int64_t, std::int64_t>>
        content;
    for (const auto& b : ob.report.bisections()) {
      content.emplace_back(b.n, b.coarsest_n, b.initial_cut, b.final_cut);
    }
    std::sort(content.begin(), content.end());
    if (ref_bisections.empty()) {
      ref_bisections = content;
    } else {
      EXPECT_EQ(content, ref_bisections) << "report differs, t=" << threads;
    }
  }
}

TEST(PipelineDeterminismTest, TracingDoesNotPerturbPartitions) {
  if (!obs::kObsCompiled) GTEST_SKIP() << "library built with MGP_OBS=OFF";
  Graph g = fem2d_tri(48, 48, 3);
  MultilevelConfig cfg;
  std::vector<part_t> reference;
  for (int threads : kPoolSizes) {
    ThreadPool pool(threads);
    Rng rng(4321);
    obs::trace_start();
    KwayResult r = kway_partition(g, 8, cfg, rng, nullptr, &pool);
    obs::trace_stop();
    EXPECT_GT(obs::trace_event_count(), 0u) << "t=" << threads;
    if (reference.empty()) {
      reference = r.part;
      // Same seed, tracing off: identical bytes.
      ThreadPool pool2(threads);
      Rng rng2(4321);
      KwayResult untraced = kway_partition(g, 8, cfg, rng2, nullptr, &pool2);
      ASSERT_EQ(untraced.part, reference);
    } else {
      ASSERT_EQ(r.part, reference) << "traced run diverged, t=" << threads;
    }
  }
  obs::trace_start();  // drop this test's events so later tests start clean
  obs::trace_stop();
}

TEST(DirectKwayDeterminismTest, PartitionsByteIdenticalAcrossPoolSizes) {
  // Direct k-way shares the pipeline's central guarantee: the propose/commit
  // k-way refiner draws no randomness and commits in a traversal-independent
  // order, so for a fixed seed the partition is byte-identical for every
  // pool size — the refiner merely proposes in parallel.
  KwayDirectConfig cfg;
  for (part_t k : {part_t{4}, part_t{16}}) {
    for (const auto& [name, g] : family_graphs()) {
      std::vector<part_t> reference;
      for (int threads : kPoolSizes) {
        ThreadPool pool(threads);
        Rng rng(1234);
        KwayResult r = kway_partition_direct(g, k, cfg, rng, nullptr, &pool);
        ASSERT_EQ(check_partition(g, r.part, k), "")
            << name << " k=" << k << " t=" << threads;
        if (threads == kPoolSizes[0]) {
          reference = r.part;
        } else {
          ASSERT_EQ(r.part, reference) << "direct k-way partition differs: "
                                       << name << " k=" << k << " t=" << threads;
        }
      }
    }
  }
}

TEST(DirectKwayDeterminismTest, ObsCollectionDoesNotPerturbPartitions) {
  // Obs composes with the direct path too: collection draws no randomness
  // and alters no control flow, at every pool size.
  Graph g = fem2d_tri(48, 48, 3);
  KwayDirectConfig cfg;
  std::vector<part_t> reference;
  for (int threads : kPoolSizes) {
    ThreadPool pool(threads);
    Rng plain_rng(555);
    KwayResult plain = kway_partition_direct(g, 16, cfg, plain_rng, nullptr, &pool);
    if (reference.empty()) reference = plain.part;
    ASSERT_EQ(plain.part, reference) << "plain run diverged, t=" << threads;

    obs::Obs ob;
    KwayDirectConfig with_obs = cfg;
    with_obs.base.obs = &ob;
    Rng obs_rng(555);
    KwayResult traced = kway_partition_direct(g, 16, with_obs, obs_rng, nullptr, &pool);
    ASSERT_EQ(traced.part, reference) << "obs run diverged, t=" << threads;
    // The direct pipeline actually ran: it coarsened and its k-way refiner
    // iterated at least one round.
    EXPECT_GT(ob.metrics.snapshot().counter_value("kway.direct.levels"), 0)
        << "t=" << threads;
    EXPECT_GT(ob.metrics.snapshot().counter_value("refine.kway_rounds"), 0)
        << "t=" << threads;
  }
}

TEST(ContractDeterminismTest, ParallelContractionByteIdenticalToSequential) {
  for (const auto& [name, g] : family_graphs()) {
    Rng rng(77);
    Matching m = compute_matching(g, MatchingScheme::kHeavyEdge, {}, rng);
    Contraction seq = contract(g, m, {});
    for (int threads : kPoolSizes) {
      ThreadPool pool(threads);
      Contraction par = contract(g, m, {}, &pool);
      ASSERT_EQ(par.coarse.xadj().size(), seq.coarse.xadj().size()) << name;
      ASSERT_TRUE(std::equal(par.coarse.xadj().begin(), par.coarse.xadj().end(),
                             seq.coarse.xadj().begin()))
          << name << " t=" << threads;
      ASSERT_TRUE(std::equal(par.coarse.adjncy().begin(), par.coarse.adjncy().end(),
                             seq.coarse.adjncy().begin()))
          << name << " t=" << threads;
      ASSERT_TRUE(std::equal(par.coarse.adjwgt().begin(), par.coarse.adjwgt().end(),
                             seq.coarse.adjwgt().begin()))
          << name << " t=" << threads;
      ASSERT_TRUE(std::equal(par.coarse.vwgt().begin(), par.coarse.vwgt().end(),
                             seq.coarse.vwgt().begin()))
          << name << " t=" << threads;
      ASSERT_EQ(par.cmap, seq.cmap) << name << " t=" << threads;
      ASSERT_EQ(par.cewgt, seq.cewgt) << name << " t=" << threads;
    }
  }
}

TEST(ContractDeterminismTest, ParallelContractionOfDeepHierarchy) {
  // Byte-equality must hold at every level of a full coarsening hierarchy,
  // where multinode weights and interior-edge weights have accumulated.
  Graph g = fem2d_tri(26, 26, 13);
  ThreadPool pool(4);
  const Graph* cur = &g;
  std::vector<Contraction> seq_levels, par_levels;
  std::span<const ewt_t> cewgt;
  while (cur->num_vertices() > 60) {
    Matching m = compute_matching_parallel_hem(*cur, pool);
    Contraction s = contract(*cur, m, cewgt);
    Contraction p = contract(*cur, m, cewgt, &pool);
    ASSERT_EQ(p.cmap, s.cmap);
    ASSERT_EQ(p.cewgt, s.cewgt);
    ASSERT_TRUE(std::equal(p.coarse.adjncy().begin(), p.coarse.adjncy().end(),
                           s.coarse.adjncy().begin()));
    ASSERT_TRUE(std::equal(p.coarse.adjwgt().begin(), p.coarse.adjwgt().end(),
                           s.coarse.adjwgt().begin()));
    par_levels.push_back(std::move(p));
    cur = &par_levels.back().coarse;
    cewgt = par_levels.back().cewgt;
  }
  EXPECT_LE(cur->num_vertices(), 60);
}

}  // namespace
}  // namespace mgp
