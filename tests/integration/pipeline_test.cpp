// End-to-end pipeline tests: the full suite of generated graphs through
// partitioning and ordering, asserting structural validity and sane quality
// on every one.
#include <gtest/gtest.h>

#include "core/chaco_ml.hpp"
#include "core/kway.hpp"
#include "graph/generators.hpp"
#include "graph/permute.hpp"
#include "metrics/ordering_metrics.hpp"
#include "metrics/partition_metrics.hpp"
#include "order/nested_dissection.hpp"
#include "spectral/msb.hpp"

namespace mgp {
namespace {

class SuitePipelineTest : public ::testing::TestWithParam<std::size_t> {
 public:
  static const std::vector<NamedGraph>& suite() {
    static const std::vector<NamedGraph> s =
        paper_suite(SuiteKind::kFigures, 0.01, 777);
    return s;
  }
};

TEST_P(SuitePipelineTest, EightWayPartitionEndToEnd) {
  const NamedGraph& ng = suite()[GetParam()];
  SCOPED_TRACE(ng.name);
  Rng rng(99);
  MultilevelConfig cfg;
  KwayResult r = kway_partition(ng.graph, 8, cfg, rng);
  EXPECT_EQ(check_partition(ng.graph, r.part, 8), "");
  PartitionQuality q = evaluate_partition(ng.graph, r.part, 8);
  EXPECT_LT(q.imbalance, 1.3);
  EXPECT_GT(q.min_part_weight, 0);
  // Cut must beat a random 8-way labelling by a wide margin.
  Rng lab(5);
  std::vector<part_t> random_part(static_cast<std::size_t>(ng.graph.num_vertices()));
  for (auto& p : random_part) p = static_cast<part_t>(lab.next_below(8));
  EXPECT_LT(q.edge_cut, compute_kway_cut(ng.graph, random_part));
}

TEST_P(SuitePipelineTest, OrderingEndToEnd) {
  const NamedGraph& ng = suite()[GetParam()];
  SCOPED_TRACE(ng.name);
  Rng rng(101);
  MultilevelConfig cfg;
  NdOptions nd;
  std::vector<vid_t> perm = mlnd_order(ng.graph, cfg, nd, rng);
  ASSERT_TRUE(is_permutation(perm));
  OrderingQuality q = evaluate_ordering(ng.graph, perm);
  EXPECT_GT(q.flops, 0);
  EXPECT_GE(q.average_width, 1.0);
}

INSTANTIATE_TEST_SUITE_P(AllGraphs, SuitePipelineTest,
                         ::testing::Range<std::size_t>(0, 16),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                           return SuitePipelineTest::suite()[info.param].name;
                         });

TEST(PipelineTest, AllFourPartitionersAgreeOnValidity) {
  Graph g = fem2d_tri(22, 22, 31);
  const part_t k = 4;
  Rng r1(1), r2(2), r3(3), r4(4);
  MultilevelConfig ours;
  KwayResult a = kway_partition(g, k, ours, r1);
  KwayResult b = chaco_ml_partition(g, k, r2);
  MsbOptions msb;
  KwayResult c = msb_partition(g, k, msb, r3);
  MsbOptions msbkl = msb;
  msbkl.kl_refine = true;
  KwayResult d = msb_partition(g, k, msbkl, r4);
  for (const KwayResult* r : {&a, &b, &c, &d}) {
    EXPECT_EQ(check_partition(g, r->part, k), "");
    PartitionQuality q = evaluate_partition(g, r->part, k);
    EXPECT_LT(q.imbalance, 1.3);
  }
}

}  // namespace
}  // namespace mgp
