// Zero-allocation regression tests for the workspace-threaded hot path.
//
// Each test warms a workspace by running a kernel a few times, then asserts
// that a further identical run performs *zero* heap allocations (counted by
// the global allocator replacement in tests/support/alloc_guard.cpp).  The
// guarded runs reuse the warm-up's RNG seed so buffer sizes repeat exactly;
// the point is steady-state behaviour, not randomness.
//
// These tests pin down the tentpole guarantee of the workspace subsystem:
// once warm, HEM matching + contraction, GGGP initial partitioning, and the
// BKLGR refiner's inner loops never touch the heap.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "coarsen/contract.hpp"
#include "core/kway_direct.hpp"
#include "core/multilevel.hpp"
#include "graph/generators.hpp"
#include "initpart/graph_grow.hpp"
#include "refine/parallel_refine.hpp"
#include "refine/refine.hpp"
#include "support/alloc_guard.hpp"
#include "support/thread_pool.hpp"
#include "support/workspace.hpp"

namespace mgp {
namespace {

using ::mgp::testing::AllocGuard;

TEST(AllocGuardTest, FixtureCountsAllocations) {
  ASSERT_TRUE(::mgp::testing::counting_allocator_active());
  AllocGuard guard;
  EXPECT_EQ(guard.allocations(), 0u);
  {
    std::vector<int> v(1024, 7);
    EXPECT_GE(guard.allocations(), 1u);
    EXPECT_GE(guard.bytes(), 1024 * sizeof(int));
  }
  EXPECT_GE(guard.deallocations(), 1u);
}

TEST(AllocRegressionTest, HemContractSteadyStateIsAllocationFree) {
  const Graph g = grid2d(64, 64);
  BisectWorkspace ws;
  ws.levels.push_back(std::make_unique<Contraction>());
  ws.levels.push_back(std::make_unique<Contraction>());

  // Two coarsening steps per run, as in the real ladder: HEM on the input
  // graph, then HEM on its contraction (with the accumulated cewgt).
  auto run = [&]() {
    Rng rng(2024);
    compute_matching(g, MatchingScheme::kHeavyEdge, {}, rng, ws.match,
                     ws.match_order);
    contract_into(g, ws.match, {}, nullptr, ws.contract, ws.arena, *ws.levels[0]);
    const Graph& c1 = ws.levels[0]->coarse;
    compute_matching(c1, MatchingScheme::kHeavyEdge, ws.levels[0]->cewgt, rng,
                     ws.match, ws.match_order);
    contract_into(c1, ws.match, ws.levels[0]->cewgt, nullptr, ws.contract,
                  ws.arena, *ws.levels[1]);
  };

  run();  // warm the buffers
  run();  // let the arena coalesce after its first reset

  AllocGuard guard;
  run();
  EXPECT_EQ(guard.allocations(), 0u)
      << "HEM+contract allocated in steady state (" << guard.bytes() << " bytes)";
  EXPECT_GT(ws.levels[1]->coarse.num_vertices(), 0);
}

TEST(AllocRegressionTest, GggpSteadyStateIsAllocationFree) {
  const Graph g = grid2d(16, 16);  // coarsest-graph scale
  const vwt_t target0 = g.total_vertex_weight() / 2;
  GrowScratch ws;
  Bisection best;

  auto run = [&]() {
    Rng rng(99);
    gggp_bisect_into(g, target0, /*trials=*/5, rng, ws, best, nullptr);
  };

  run();
  run();

  AllocGuard guard;
  run();
  EXPECT_EQ(guard.allocations(), 0u)
      << "GGGP allocated in steady state (" << guard.bytes() << " bytes)";
  EXPECT_EQ(best.side.size(), static_cast<std::size_t>(g.num_vertices()));
}

TEST(AllocRegressionTest, BklgrSteadyStateIsAllocationFree) {
  const Graph g = grid2d(32, 32);
  const vid_t n = g.num_vertices();
  const vwt_t target0 = g.total_vertex_weight() / 2;
  KlWorkspace ws;
  Bisection b;
  b.side.assign(static_cast<std::size_t>(n), 0);

  // Re-create the same starting labelling before every run (in place).
  auto relabel = [&]() {
    for (vid_t v = 0; v < n; ++v) {
      b.side[static_cast<std::size_t>(v)] = v < n / 2 ? 0 : 1;
    }
    refresh_bisection(g, b);
  };

  auto run = [&]() {
    relabel();
    Rng rng(5);
    refine_bisection(g, b, target0, RefinePolicy::kBKLGR, n, rng, {}, nullptr,
                     &ws);
  };

  run();
  run();

  AllocGuard guard;
  run();
  EXPECT_EQ(guard.allocations(), 0u)
      << "BKLGR allocated in steady state (" << guard.bytes() << " bytes)";
}

TEST(AllocRegressionTest, ParallelBgrSteadyStateIsAllocationFree) {
  // The parallel refiner shares the KlWorkspace zero-allocation guarantee.
  // A one-worker pool executes parallel_for_chunks inline (no task futures),
  // so the only possible allocations are the refiner's own buffers — which
  // must all live in the warm workspace.
  const Graph g = grid2d(40, 40);
  const vid_t n = g.num_vertices();
  const vwt_t target0 = g.total_vertex_weight() / 2;
  ThreadPool pool(1);
  KlWorkspace ws;
  Bisection b;
  b.side.assign(static_cast<std::size_t>(n), 0);

  auto relabel = [&]() {
    for (vid_t v = 0; v < n; ++v) {
      b.side[static_cast<std::size_t>(v)] = (v / 40 + v % 40) % 2;
    }
    refresh_bisection(g, b);
  };

  auto run = [&]() {
    relabel();
    parallel_bgr_refine(g, b, target0, {}, pool, nullptr, &ws);
  };

  run();
  run();

  AllocGuard guard;
  run();
  EXPECT_EQ(guard.allocations(), 0u)
      << "parallel BGR allocated in steady state (" << guard.bytes() << " bytes)";
}

TEST(AllocRegressionTest, KwayDirectIntoSteadyStateIsAllocationFree) {
  // The direct k-way entry point is stricter than multilevel_bisect: once
  // the KwayDirectWorkspace and BisectWorkspace have warmed (two runs: the
  // first grows every buffer, the second lets the contraction arena
  // coalesce), a further identical run touches the heap zero times — the
  // coarsening ladder, the coarsest initial partition, the k-way refiner's
  // tables, and the projection ping-pong all live in the workspaces.
  const Graph g = fem2d_tri(40, 40, 3);
  const part_t k = 16;
  KwayDirectConfig cfg;
  KwayDirectWorkspace dws;
  BisectWorkspace bws;
  std::vector<part_t> part;

  auto run = [&]() {
    Rng rng(2024);
    return kway_partition_direct_into(g, k, cfg, rng, dws, &bws, part);
  };

  run();
  run();

  AllocGuard guard;
  const ewt_t cut = run();
  EXPECT_EQ(guard.allocations(), 0u)
      << "direct k-way allocated in steady state (" << guard.bytes() << " bytes)";
  EXPECT_GT(cut, 0);
  EXPECT_EQ(part.size(), static_cast<std::size_t>(g.num_vertices()));
}

TEST(AllocRegressionTest, KwayDirectAlgebraicDistanceSteadyStateIsAllocationFree) {
  // Same contract as the default ladder, under the algebraic-distance
  // strategy: the relaxation double-buffers and the AD-HEM visit scratch
  // live in BisectWorkspace::coarsen, so a warm rerun never allocates.
  const Graph g = fem2d_tri(40, 40, 3);
  const part_t k = 8;
  KwayDirectConfig cfg;
  cfg.base.coarsen.strategy = CoarsenStrategy::kAlgebraicDistance;
  KwayDirectWorkspace dws;
  BisectWorkspace bws;
  std::vector<part_t> part;

  auto run = [&]() {
    Rng rng(2024);
    return kway_partition_direct_into(g, k, cfg, rng, dws, &bws, part);
  };

  run();
  run();

  AllocGuard guard;
  const ewt_t cut = run();
  EXPECT_EQ(guard.allocations(), 0u)
      << "AD coarsening allocated in steady state (" << guard.bytes() << " bytes)";
  EXPECT_GT(cut, 0);
}

TEST(AllocRegressionTest, KwayDirectNLevelSteadyStateIsAllocationFree) {
  // N-level builds a per-level dynamic adjacency plus a lazy heap; rows are
  // cleared (never shrunk) and the coarse CSR recycles the level slot's
  // storage, so the whole ladder — O(log n) levels deep — must be heap-free
  // once the second run has pushed every buffer to its high-water mark.
  const Graph g = fem2d_tri(28, 28, 3);
  const part_t k = 8;
  KwayDirectConfig cfg;
  cfg.base.coarsen.strategy = CoarsenStrategy::kNLevel;
  KwayDirectWorkspace dws;
  BisectWorkspace bws;
  std::vector<part_t> part;

  auto run = [&]() {
    Rng rng(2024);
    return kway_partition_direct_into(g, k, cfg, rng, dws, &bws, part);
  };

  run();
  run();

  AllocGuard guard;
  const ewt_t cut = run();
  EXPECT_EQ(guard.allocations(), 0u)
      << "n-level coarsening allocated in steady state (" << guard.bytes()
      << " bytes)";
  EXPECT_GT(cut, 0);
}

TEST(AllocRegressionTest, MultilevelBisectSteadyStateIsBounded) {
  // The full bisection is documented to allocate O(1) per call once warm
  // (the returned labelling plus one trial-buffer regrowth) — not zero, but
  // far from the O(levels) of the workspace-less path.
  const Graph g = grid2d(48, 48);
  const vwt_t target0 = g.total_vertex_weight() / 2;
  const MultilevelConfig cfg;  // HEM + GGGP + BKLGR, sequential
  BisectWorkspace ws;

  auto run = [&]() {
    Rng rng(12345);
    return multilevel_bisect(g, target0, cfg, rng, nullptr, nullptr, nullptr, &ws);
  };

  run();
  run();

  AllocGuard guard;
  BisectResult r = run();
  EXPECT_LE(guard.allocations(), 8u)
      << "multilevel_bisect steady state should allocate O(1), got "
      << guard.allocations();
  EXPECT_EQ(r.bisection.side.size(), static_cast<std::size_t>(g.num_vertices()));
}

}  // namespace
}  // namespace mgp
