// Property/invariant suite over randomized generator graphs.
//
// The paper's multilevel machinery rests on a handful of structural
// invariants (§3.1, §3.3); every phase is checked here on graphs from
// several generator families with randomized seeds:
//
//   matching      — involution, consistent pairs/weight bookkeeping,
//                   maximality, matched pairs are edges;
//   contraction   — conserves total vertex weight and satisfies
//                   W(E_{i+1}) = W(E_i) − W(M_i); every level of the
//                   hierarchy passes Graph::validate();
//   refinement    — never worsens the edge-cut and never pushes a side
//                   past max(initial weight, target + slack), the KL
//                   engine's accept bound.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "coarsen/contract.hpp"
#include "coarsen/matching.hpp"
#include "coarsen/parallel_matching.hpp"
#include "graph/generators.hpp"
#include "initpart/bisection_state.hpp"
#include "refine/parallel_refine.hpp"
#include "refine/refine.hpp"
#include "support/thread_pool.hpp"

namespace mgp {
namespace {

std::vector<std::pair<std::string, Graph>> random_graphs(std::uint64_t seed) {
  std::vector<std::pair<std::string, Graph>> out;
  out.emplace_back("fem2d", fem2d_tri(20, 22, seed));
  out.emplace_back("fem3d", fem3d_tet(6, 6, 5, seed + 1));
  out.emplace_back("power", power_grid(900, seed + 2));
  out.emplace_back("circuit", circuit(800, seed + 3));
  out.emplace_back("geom", random_geometric(700, 6.0, seed + 4));
  out.emplace_back("finan", finan(9, 11, seed + 5));
  return out;
}

constexpr MatchingScheme kSchemes[] = {
    MatchingScheme::kRandom, MatchingScheme::kHeavyEdge,
    MatchingScheme::kLightEdge, MatchingScheme::kHeavyClique};

/// Recomputes pairs and weight from scratch and checks the involution.
void expect_matching_consistent(const Graph& g, const Matching& m,
                                const std::string& tag) {
  ASSERT_EQ(m.match.size(), static_cast<std::size_t>(g.num_vertices())) << tag;
  vid_t pairs = 0;
  ewt_t weight = 0;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    const vid_t p = m.match[static_cast<std::size_t>(v)];
    ASSERT_GE(p, 0) << tag;
    ASSERT_LT(p, g.num_vertices()) << tag;
    ASSERT_EQ(m.match[static_cast<std::size_t>(p)], v)
        << tag << ": match is not an involution at v=" << v;
    if (p <= v) continue;  // count each pair once, at its smaller endpoint
    ++pairs;
    auto nbrs = g.neighbors(v);
    auto wgts = g.edge_weights(v);
    bool is_edge = false;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] == p) {
        is_edge = true;
        weight += wgts[i];
        break;
      }
    }
    ASSERT_TRUE(is_edge) << tag << ": matched pair (" << v << "," << p
                         << ") is not an edge";
  }
  EXPECT_EQ(m.pairs, pairs) << tag;
  EXPECT_EQ(m.weight, weight) << tag;
  EXPECT_TRUE(is_maximal_matching(g, m)) << tag;
}

TEST(InvariantsTest, MatchingInvolutionPairsWeightAllSchemes) {
  for (std::uint64_t seed : {3u, 17u}) {
    for (const auto& [name, g] : random_graphs(seed)) {
      for (MatchingScheme scheme : kSchemes) {
        Rng rng(seed * 131 + 7);
        Matching m = compute_matching(g, scheme, {}, rng);
        expect_matching_consistent(g, m, name + "/" + to_string(scheme));
      }
      Matching pm = compute_matching_parallel_hem(g, 4);
      expect_matching_consistent(g, pm, name + "/parallelHEM");
    }
  }
}

TEST(InvariantsTest, ContractionConservesWeightAtEveryLevel) {
  // Full hierarchies down to <= 80 vertices: at every level, vertex weight
  // is conserved, W(E_{i+1}) = W(E_i) - W(M_i), and the coarse graph is
  // structurally valid.  Exercises both the sequential and parallel paths.
  ThreadPool pool(4);
  for (const auto& [name, g] : random_graphs(23)) {
    for (MatchingScheme scheme : {MatchingScheme::kRandom, MatchingScheme::kHeavyEdge}) {
      Rng rng(42);
      const Graph* cur = &g;
      std::vector<Contraction> levels;
      std::span<const ewt_t> cewgt;
      int guard = 0;
      while (cur->num_vertices() > 80 && guard++ < 60) {
        Matching m = compute_matching(*cur, scheme, cewgt, rng);
        expect_matching_consistent(*cur, m, name + " level " + std::to_string(guard));
        const vwt_t fine_vwgt = cur->total_vertex_weight();
        const ewt_t fine_ewgt = cur->total_edge_weight();
        Contraction c = contract(*cur, m, cewgt,
                                 guard % 2 == 0 ? &pool : nullptr);
        ASSERT_EQ(c.coarse.validate(), "")
            << name << "/" << to_string(scheme) << " level " << guard;
        ASSERT_EQ(c.coarse.total_vertex_weight(), fine_vwgt)
            << name << ": contraction must conserve vertex weight";
        ASSERT_EQ(c.coarse.total_edge_weight(), fine_ewgt - m.weight)
            << name << ": W(E_{i+1}) != W(E_i) - W(M_i)";
        // cmap is a surjection onto [0, cn) and matched pairs share a slot.
        for (vid_t v = 0; v < cur->num_vertices(); ++v) {
          const vid_t cv = c.cmap[static_cast<std::size_t>(v)];
          ASSERT_GE(cv, 0);
          ASSERT_LT(cv, c.coarse.num_vertices());
          ASSERT_EQ(cv, c.cmap[static_cast<std::size_t>(
                            m.match[static_cast<std::size_t>(v)])]);
        }
        levels.push_back(std::move(c));
        cur = &levels.back().coarse;
        cewgt = levels.back().cewgt;
        if (levels.size() >= 2) {
          // Interior edge weight accumulates: every coarse vertex carries at
          // least its constituents' interior weight, and the totals satisfy
          // W_interior(i+1) = W_interior(i) + W(M_i).
          const auto& prev = levels[levels.size() - 2];
          ewt_t prev_total = 0, cur_total = 0;
          for (ewt_t w : prev.cewgt) prev_total += w;
          for (ewt_t w : levels.back().cewgt) cur_total += w;
          ASSERT_EQ(cur_total, prev_total + m.weight) << name;
        }
      }
      ASSERT_LE(cur->num_vertices(), 80) << name << ": coarsening stalled";
    }
  }
}

constexpr RefinePolicy kRefiners[] = {RefinePolicy::kGR, RefinePolicy::kKLR,
                                      RefinePolicy::kBGR, RefinePolicy::kBKLR,
                                      RefinePolicy::kBKLGR};

TEST(InvariantsTest, RefinersNeverWorsenCutNorViolateBalanceBound) {
  for (const auto& [name, g] : random_graphs(51)) {
    const vwt_t total = g.total_vertex_weight();
    const vwt_t target0 = total / 2;
    vwt_t max_vwgt = 0;
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
      max_vwgt = std::max(max_vwgt, g.vertex_weight(v));
    }
    const KlOptions opts;  // defaults, as the pipeline uses them
    const vwt_t slack =
        static_cast<vwt_t>(opts.weight_slack_factor * static_cast<double>(max_vwgt));

    for (RefinePolicy policy : kRefiners) {
      for (std::uint64_t bseed : {1u, 9u}) {
        // A random (typically awful and slightly unbalanced) starting point.
        Rng brng(bseed);
        std::vector<part_t> side(static_cast<std::size_t>(g.num_vertices()));
        for (auto& s : side) s = static_cast<part_t>(brng.next_below(2));
        Bisection b = make_bisection(g, std::move(side));
        const ewt_t cut_before = b.cut;
        const vwt_t w_before[2] = {b.part_weight[0], b.part_weight[1]};

        Rng rng(bseed * 7 + 1);
        KlStats stats =
            refine_bisection(g, b, target0, policy, g.num_vertices(), rng, opts);

        const std::string tag = name + "/" + to_string(policy);
        ASSERT_EQ(check_bisection(g, b), "") << tag;
        EXPECT_LE(b.cut, cut_before) << tag << ": refiner worsened the cut";
        EXPECT_EQ(cut_before - b.cut, stats.cut_reduction) << tag;
        // The KL accept rule: a side may never exceed
        // max(its pass-start weight, its target + slack).
        const vwt_t target[2] = {target0, total - target0};
        for (int s = 0; s < 2; ++s) {
          EXPECT_LE(b.part_weight[s], std::max(w_before[s], target[s] + slack))
              << tag << ": balance bound violated on side " << s;
        }
      }
    }
  }
}

TEST(InvariantsTest, ParallelRefinerInvariantsUnderConcurrency) {
  // The parallel propose/commit refiner obeys the same contract as the KL
  // engine — the cut never worsens and no side exceeds max(its entry
  // weight, target + slack) — and its per-round accounting (checked under
  // TSan: propose sweeps run on real pool workers) chains exactly: each
  // round's cut_after is the next round's cut_before, kept+rejected =
  // attempted, and the kept total equals the number of changed labels.
  ThreadPool pool(4);
  const KlOptions opts;
  for (const auto& [name, g] : random_graphs(37)) {
    const vwt_t total = g.total_vertex_weight();
    const vwt_t target0 = total / 2;
    vwt_t max_vwgt = 0;
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
      max_vwgt = std::max(max_vwgt, g.vertex_weight(v));
    }
    const vwt_t slack =
        static_cast<vwt_t>(opts.weight_slack_factor * static_cast<double>(max_vwgt));

    for (std::uint64_t bseed : {2u, 12u}) {
      Rng brng(bseed);
      std::vector<part_t> side(static_cast<std::size_t>(g.num_vertices()));
      for (auto& s : side) s = static_cast<part_t>(brng.next_below(2));
      Bisection b = make_bisection(g, std::move(side));
      const ewt_t cut_before = b.cut;
      const vwt_t w_before[2] = {b.part_weight[0], b.part_weight[1]};
      const std::vector<part_t> side_before = b.side;

      std::vector<obs::KlPassReport> log;
      KlStats stats = parallel_bgr_refine(g, b, target0, opts, pool, &log);

      const std::string tag = name + "/parallelBGR";
      ASSERT_EQ(check_bisection(g, b), "") << tag;
      EXPECT_LE(b.cut, cut_before) << tag << ": refiner worsened the cut";
      EXPECT_EQ(cut_before - b.cut, stats.cut_reduction) << tag;
      const vwt_t target[2] = {target0, total - target0};
      for (int s = 0; s < 2; ++s) {
        EXPECT_LE(b.part_weight[s], std::max(w_before[s], target[s] + slack))
            << tag << ": balance bound violated on side " << s;
      }

      vid_t moved = 0;
      for (std::size_t i = 0; i < side_before.size(); ++i) {
        moved += side_before[i] != b.side[i] ? 1 : 0;
      }
      EXPECT_EQ(moved, stats.swapped) << tag << ": a vertex moved twice";

      ASSERT_EQ(static_cast<int>(log.size()), stats.parallel_rounds) << tag;
      ewt_t cut = cut_before;
      std::int64_t kept = 0, attempted = 0;
      for (const obs::KlPassReport& rep : log) {
        EXPECT_EQ(rep.cut_before, cut) << tag;
        EXPECT_LE(rep.cut_after, rep.cut_before) << tag;
        EXPECT_EQ(rep.moves_attempted, rep.moves_kept + rep.moves_undone) << tag;
        cut = rep.cut_after;
        kept += rep.moves_kept;
        attempted += rep.moves_attempted;
      }
      EXPECT_EQ(cut, b.cut) << tag;
      EXPECT_EQ(kept, stats.swapped) << tag;
      EXPECT_EQ(attempted, stats.moves_attempted) << tag;
    }
  }
}

TEST(InvariantsTest, RefinementMonotoneAfterConvergence) {
  // Running KLR to convergence and then refining again may at best improve
  // further (a different random insertion order can escape a tie); the cut
  // can never move up.
  Graph g = fem2d_tri(18, 18, 4);
  Rng brng(2);
  std::vector<part_t> side(static_cast<std::size_t>(g.num_vertices()));
  for (auto& s : side) s = static_cast<part_t>(brng.next_below(2));
  Bisection b = make_bisection(g, std::move(side));
  const vwt_t target0 = g.total_vertex_weight() / 2;
  Rng rng(3);
  refine_bisection(g, b, target0, RefinePolicy::kKLR, g.num_vertices(), rng);
  const ewt_t converged_cut = b.cut;
  Rng rng2(4);
  refine_bisection(g, b, target0, RefinePolicy::kKLR, g.num_vertices(), rng2);
  EXPECT_LE(b.cut, converged_cut);
}

}  // namespace
}  // namespace mgp
