// Shape-level reproductions of the paper's headline claims at test scale.
// The bench/ harness reproduces the full tables; these tests pin the
// *directional* findings so a regression that flips a conclusion fails CI.
#include <gtest/gtest.h>

#include "core/chaco_ml.hpp"
#include "core/kway.hpp"
#include "graph/generators.hpp"
#include "graph/permute.hpp"
#include "metrics/ordering_metrics.hpp"
#include "order/mmd.hpp"
#include "order/nested_dissection.hpp"
#include "spectral/msb.hpp"
#include "support/timer.hpp"

namespace mgp {
namespace {

/// A mid-size FE mesh, the paper's bread-and-butter workload.
Graph test_mesh() { return fem3d_tet(12, 12, 12, 4242); }

TEST(PaperClaimsTest, Table3_HemUnrefinedCutFarBelowLem) {
  // Table 3: without refinement, HEM's initial partitions are drastically
  // better than LEM's (often 5-20x) and clearly better than RM's.
  Graph g = test_mesh();
  auto unrefined_cut = [&](MatchingScheme m) {
    MultilevelConfig cfg;
    cfg.matching = m;
    cfg.refine = RefinePolicy::kNone;
    Rng rng(7);
    return kway_partition(g, 8, cfg, rng).edge_cut;
  };
  const ewt_t hem = unrefined_cut(MatchingScheme::kHeavyEdge);
  const ewt_t rm = unrefined_cut(MatchingScheme::kRandom);
  const ewt_t lem = unrefined_cut(MatchingScheme::kLightEdge);
  EXPECT_LT(hem, lem);
  EXPECT_LT(hem, rm);
}

TEST(PaperClaimsTest, Table2_RefinedCutsWithinSpreadAcrossMatchings) {
  // Table 2: after full refinement the matching schemes land within a
  // modest factor of each other ("within 10%" in the paper; we allow 40%
  // at this reduced scale).
  Graph g = test_mesh();
  std::vector<ewt_t> cuts;
  for (MatchingScheme m : {MatchingScheme::kRandom, MatchingScheme::kHeavyEdge,
                           MatchingScheme::kLightEdge, MatchingScheme::kHeavyClique}) {
    MultilevelConfig cfg;
    cfg.matching = m;
    Rng rng(11);
    cuts.push_back(kway_partition(g, 8, cfg, rng).edge_cut);
  }
  const ewt_t best = *std::min_element(cuts.begin(), cuts.end());
  const ewt_t worst = *std::max_element(cuts.begin(), cuts.end());
  EXPECT_LE(static_cast<double>(worst), 1.4 * static_cast<double>(best));
}

TEST(PaperClaimsTest, Table4_RefinementPoliciesWithinSpread) {
  // Table 4: "the size of the edge-cut does not vary significantly for
  // different refinement policies" (within 15%; we allow 35% at this scale).
  Graph g = test_mesh();
  std::vector<ewt_t> cuts;
  for (RefinePolicy p : {RefinePolicy::kGR, RefinePolicy::kKLR, RefinePolicy::kBGR,
                         RefinePolicy::kBKLR, RefinePolicy::kBKLGR}) {
    MultilevelConfig cfg;
    cfg.refine = p;
    Rng rng(13);
    cuts.push_back(kway_partition(g, 8, cfg, rng).edge_cut);
  }
  const ewt_t best = *std::min_element(cuts.begin(), cuts.end());
  const ewt_t worst = *std::max_element(cuts.begin(), cuts.end());
  EXPECT_LE(static_cast<double>(worst), 1.35 * static_cast<double>(best));
}

TEST(PaperClaimsTest, Section41_KlSwapsSmallFractionOfVertices) {
  // §4.1: "a single iteration of KL terminates after only a small
  // percentage of the vertices have been swapped (less than 5%)."
  Graph g = test_mesh();
  MultilevelConfig cfg;
  cfg.refine = RefinePolicy::kKLR;
  Rng rng(17);
  BisectResult r = multilevel_bisect(g, g.total_vertex_weight() / 2, cfg, rng);
  // Swaps summed across all levels stay well below the vertex count.
  EXPECT_LT(r.refine_stats.swapped, g.num_vertices() / 4);
}

TEST(PaperClaimsTest, Fig1_OurCutNotWorseThanMsbOverall) {
  // Figure 1: our multilevel beats MSB on edge-cut for almost every matrix.
  // At test scale we assert the aggregate over three meshes.
  double ratio_sum = 0;
  int count = 0;
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    Graph g = fem3d_tet(9, 9, 9, seed);
    Rng r1(seed), r2(seed);
    MultilevelConfig ours;
    MsbOptions msb;
    ewt_t our_cut = kway_partition(g, 8, ours, r1).edge_cut;
    ewt_t msb_cut = msb_partition(g, 8, msb, r2).edge_cut;
    ratio_sum += static_cast<double>(our_cut) / static_cast<double>(msb_cut);
    ++count;
  }
  EXPECT_LE(ratio_sum / count, 1.05);
}

TEST(PaperClaimsTest, Fig4_OursFasterThanMsb) {
  // Figure 4: MSB is an order of magnitude slower; at test scale demand 2x.
  Graph g = fem3d_tet(10, 10, 10, 5);
  Rng r1(3), r2(3);
  MultilevelConfig ours;
  Timer t1;
  kway_partition(g, 16, ours, r1);
  const double ours_time = t1.seconds();
  MsbOptions msb;
  Timer t2;
  msb_partition(g, 16, msb, r2);
  const double msb_time = t2.seconds();
  EXPECT_LT(ours_time * 2.0, msb_time);
}

TEST(PaperClaimsTest, Fig5_MlndBeatsNaturalAndRandomOrder) {
  Graph g = grid3d(9, 9, 9);
  Rng rng(19);
  MultilevelConfig cfg;
  NdOptions nd;
  std::vector<vid_t> mlnd = mlnd_order(g, cfg, nd, rng);
  std::vector<vid_t> natural(static_cast<std::size_t>(g.num_vertices()));
  for (vid_t v = 0; v < g.num_vertices(); ++v) natural[static_cast<std::size_t>(v)] = v;
  Rng prng(23);
  std::vector<vid_t> random_perm = prng.permutation(g.num_vertices());
  const std::int64_t f_mlnd = evaluate_ordering(g, mlnd).flops;
  EXPECT_LT(f_mlnd, evaluate_ordering(g, natural).flops);
  EXPECT_LT(f_mlnd, evaluate_ordering(g, random_perm).flops);
}

TEST(PaperClaimsTest, Fig5_MlndCompetitiveWithMmdOn3dMesh) {
  // Fig 5: on 3D FE problems MLND outperforms MMD (by 2-3x on the largest).
  // At this small scale we require MLND to be within 1.5x and expect it to
  // win outright on the larger instance.
  Graph g = fem3d_tet(10, 10, 10, 29);
  Rng rng(31);
  MultilevelConfig cfg;
  NdOptions nd;
  const std::int64_t f_mlnd = evaluate_ordering(g, mlnd_order(g, cfg, nd, rng)).flops;
  const std::int64_t f_mmd = evaluate_ordering(g, mmd_order(g)).flops;
  EXPECT_LT(f_mlnd, f_mmd * 3 / 2);
}

TEST(PaperClaimsTest, Section43_MlndEtreeShorterThanMmd) {
  // §4.3: MMD etrees are "long and slender"; nested dissection ones are
  // balanced.
  Graph g = grid3d(10, 10, 10);
  Rng rng(37);
  MultilevelConfig cfg;
  NdOptions nd;
  nd.leaf_size = 60;
  OrderingQuality mlnd = evaluate_ordering(g, mlnd_order(g, cfg, nd, rng));
  OrderingQuality mmd = evaluate_ordering(g, mmd_order(g));
  // The load-bearing parallel metric at this scale: a wider elimination
  // tree (more exploitable concurrency).  The critical path crossover needs
  // paper-size graphs (see bench/fig5_ordering), so here we only require
  // MLND's critical path not to be materially worse.
  EXPECT_GT(mlnd.average_width, mmd.average_width);
  EXPECT_LT(static_cast<double>(mlnd.critical_path_flops),
            1.5 * static_cast<double>(mmd.critical_path_flops));
}

TEST(PaperClaimsTest, Table4_BoundaryPoliciesInsertLess) {
  // §3.3/Table 4: boundary refinement's entire advantage is avoiding the
  // full-queue insertions.
  Graph g = test_mesh();
  auto insertions = [&](RefinePolicy p) {
    MultilevelConfig cfg;
    cfg.refine = p;
    Rng rng(41);
    return multilevel_bisect(g, g.total_vertex_weight() / 2, cfg, rng)
        .refine_stats.insertions;
  };
  EXPECT_LT(insertions(RefinePolicy::kBGR), insertions(RefinePolicy::kGR));
  EXPECT_LT(insertions(RefinePolicy::kBKLR), insertions(RefinePolicy::kKLR));
}

}  // namespace
}  // namespace mgp
