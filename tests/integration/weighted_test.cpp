// Weighted-graph pipelines: everything the paper's algorithms guarantee for
// unit weights must also hold with heterogeneous vertex and edge weights
// (coarse levels always are weighted — these tests feed weighted graphs in
// at level 0 as well).
#include <gtest/gtest.h>

#include "core/kway.hpp"
#include "core/kway_direct.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "metrics/partition_metrics.hpp"
#include "order/nested_dissection.hpp"
#include "graph/permute.hpp"

namespace mgp {
namespace {

/// A mesh with lumpy vertex weights (1..8) and edge weights (1..5).
Graph weighted_mesh(vid_t nx, vid_t ny, std::uint64_t seed) {
  Graph base = fem2d_tri(nx, ny, seed);
  Rng rng(seed + 1);
  GraphBuilder b(base.num_vertices());
  for (vid_t v = 0; v < base.num_vertices(); ++v) {
    b.set_vertex_weight(v, 1 + static_cast<vwt_t>(rng.next_below(8)));
  }
  for (vid_t u = 0; u < base.num_vertices(); ++u) {
    for (vid_t v : base.neighbors(u)) {
      if (u < v) b.add_edge(u, v, 1 + static_cast<ewt_t>(rng.next_below(5)));
    }
  }
  return std::move(b).build();
}

class WeightedSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WeightedSeedTest, MultilevelBisectBalancesWeight) {
  Graph g = weighted_mesh(20, 20, GetParam());
  Rng rng(GetParam());
  MultilevelConfig cfg;
  const vwt_t target0 = g.total_vertex_weight() / 2;
  BisectResult r = multilevel_bisect(g, target0, cfg, rng);
  EXPECT_EQ(check_bisection(g, r.bisection), "");
  // Balanced in *weight*, within a small multiple of the max vertex weight.
  EXPECT_NEAR(static_cast<double>(r.bisection.part_weight[0]),
              static_cast<double>(target0),
              0.08 * static_cast<double>(g.total_vertex_weight()));
}

TEST_P(WeightedSeedTest, KwayBalancesWeightNotCount) {
  Graph g = weighted_mesh(18, 18, GetParam());
  Rng rng(GetParam());
  MultilevelConfig cfg;
  KwayResult r = kway_partition(g, 8, cfg, rng);
  EXPECT_EQ(check_partition(g, r.part, 8), "");
  PartitionQuality q = evaluate_partition(g, r.part, 8);
  EXPECT_LT(q.imbalance, 1.35);
}

TEST_P(WeightedSeedTest, KwayDirectHandlesWeights) {
  Graph g = weighted_mesh(18, 18, GetParam());
  Rng rng(GetParam());
  KwayDirectConfig cfg;
  KwayResult r = kway_partition_direct(g, 8, cfg, rng);
  EXPECT_EQ(check_partition(g, r.part, 8), "");
  PartitionQuality q = evaluate_partition(g, r.part, 8);
  EXPECT_LT(q.imbalance, 1.4);
  EXPECT_GT(q.min_part_weight, 0);
}

TEST_P(WeightedSeedTest, OrderingHandlesWeightedPattern) {
  // Ordering operates on the pattern; vertex weights must not break it.
  Graph g = weighted_mesh(14, 14, GetParam());
  Rng rng(GetParam());
  MultilevelConfig cfg;
  NdOptions nd;
  std::vector<vid_t> perm = mlnd_order(g, cfg, nd, rng);
  EXPECT_TRUE(is_permutation(perm));
}

INSTANTIATE_TEST_SUITE_P(Seeds, WeightedSeedTest, ::testing::Values(1, 2, 3, 4));

TEST(WeightedTest, EdgeWeightsSteerTheCut) {
  // A path with one cheap edge in the middle of expensive ones: the bisector
  // must cut the cheap edge even at slight balance cost.
  GraphBuilder b(8);
  for (vid_t v = 0; v + 1 < 8; ++v) {
    b.add_edge(v, v + 1, v == 4 ? 1 : 100);
  }
  Graph g = std::move(b).build();
  Rng rng(5);
  MultilevelConfig cfg;
  BisectResult r = multilevel_bisect(g, 4, cfg, rng);
  EXPECT_EQ(r.bisection.cut, 1);
}

TEST(WeightedTest, HeavyVertexDominatesBalance) {
  // One vertex holds half the total weight: it must sit alone-ish on a side.
  GraphBuilder b(10);
  b.set_vertex_weight(0, 9);
  for (vid_t v = 0; v + 1 < 10; ++v) b.add_edge(v, v + 1);
  Graph g = std::move(b).build();
  Rng rng(6);
  MultilevelConfig cfg;
  const vwt_t target0 = g.total_vertex_weight() / 2;  // 9
  BisectResult r = multilevel_bisect(g, target0, cfg, rng);
  EXPECT_EQ(check_bisection(g, r.bisection), "");
  // Each side's weight is within one max-vertex of the target.
  EXPECT_GE(r.bisection.part_weight[0], 5);
  EXPECT_LE(r.bisection.part_weight[0], 13);
}

TEST(WeightedTest, CommVolumeUsesCountsNotWeights) {
  GraphBuilder b(3);
  b.set_vertex_weight(1, 50);
  b.add_edge(0, 1, 99);
  b.add_edge(1, 2, 99);
  Graph g = std::move(b).build();
  std::vector<part_t> part = {0, 1, 0};
  PartitionQuality q = evaluate_partition(g, part, 2);
  EXPECT_EQ(q.edge_cut, 198);   // weighted
  EXPECT_EQ(q.comm_volume, 3);  // structural: 1 sees part 0; 0 and 2 see part 1
}

}  // namespace
}  // namespace mgp
