// Disconnected and degenerate inputs through every top-level entry point.
// Real matrices (the paper's FINAN512 among them) contain multiple
// components; nested dissection's recursion *creates* disconnected
// subgraphs even from connected inputs, so nothing may assume connectivity.
#include <gtest/gtest.h>

#include "core/chaco_ml.hpp"
#include "core/kway.hpp"
#include "core/kway_direct.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/permute.hpp"
#include "metrics/ordering_metrics.hpp"
#include "metrics/partition_metrics.hpp"
#include "order/mmd.hpp"
#include "order/nested_dissection.hpp"
#include "spectral/msb.hpp"

namespace mgp {
namespace {

/// Four disconnected blobs of different sizes and structures.
Graph four_islands() {
  GraphBuilder b(70);
  // Island 1: clique 0..9.
  for (vid_t i = 0; i < 10; ++i)
    for (vid_t j = i + 1; j < 10; ++j) b.add_edge(i, j);
  // Island 2: path 10..29.
  for (vid_t i = 10; i + 1 < 30; ++i) b.add_edge(i, i + 1);
  // Island 3: 5x6 grid on 30..59.
  for (vid_t y = 0; y < 6; ++y) {
    for (vid_t x = 0; x < 5; ++x) {
      vid_t u = 30 + y * 5 + x;
      if (x + 1 < 5) b.add_edge(u, u + 1);
      if (y + 1 < 6) b.add_edge(u, u + 5);
    }
  }
  // Island 4: star on 60..69.
  for (vid_t i = 61; i < 70; ++i) b.add_edge(60, i);
  return std::move(b).build();
}

TEST(DisconnectedTest, MultilevelBisectStaysValid) {
  Graph g = four_islands();
  Rng rng(1);
  MultilevelConfig cfg;
  BisectResult r = multilevel_bisect(g, g.total_vertex_weight() / 2, cfg, rng);
  EXPECT_EQ(check_bisection(g, r.bisection), "");
  // Ideally it separates whole islands: cut 0 is achievable; demand "small".
  EXPECT_LE(r.bisection.cut, 6);
}

TEST(DisconnectedTest, KwayAcrossIslands) {
  Graph g = four_islands();
  Rng rng(2);
  MultilevelConfig cfg;
  KwayResult r = kway_partition(g, 4, cfg, rng);
  EXPECT_EQ(check_partition(g, r.part, 4), "");
  PartitionQuality q = evaluate_partition(g, r.part, 4);
  EXPECT_GT(q.min_part_weight, 0);
}

TEST(DisconnectedTest, KwayDirectAcrossIslands) {
  Graph g = four_islands();
  Rng rng(3);
  KwayDirectConfig cfg;
  KwayResult r = kway_partition_direct(g, 4, cfg, rng);
  EXPECT_EQ(check_partition(g, r.part, 4), "");
}

TEST(DisconnectedTest, MsbAcrossIslands) {
  Graph g = four_islands();
  Rng rng(4);
  MsbOptions opts;
  Bisection b = msb_bisect(g, g.total_vertex_weight() / 2, opts, rng);
  EXPECT_EQ(check_bisection(g, b), "");
}

TEST(DisconnectedTest, ChacoMlAcrossIslands) {
  Graph g = four_islands();
  Rng rng(5);
  BisectResult r = chaco_ml_bisect(g, g.total_vertex_weight() / 2, rng);
  EXPECT_EQ(check_bisection(g, r.bisection), "");
}

TEST(DisconnectedTest, OrderingsAcrossIslands) {
  Graph g = four_islands();
  EXPECT_TRUE(is_permutation(mmd_order(g)));
  Rng rng(6);
  MultilevelConfig cfg;
  NdOptions nd;
  nd.leaf_size = 12;
  std::vector<vid_t> perm = mlnd_order(g, cfg, nd, rng);
  ASSERT_TRUE(is_permutation(perm));
  // Disconnected blocks factor independently: the etree is a forest, so no
  // ordering can be worse than factoring the densest island densely.
  OrderingQuality q = evaluate_ordering(g, perm);
  EXPECT_GT(q.flops, 0);
}

TEST(DisconnectedTest, TinyGraphsThroughEveryEntryPoint) {
  for (vid_t n : {0, 1, 2, 3}) {
    SCOPED_TRACE(n);
    Graph g = n >= 2 ? path_graph(n) : empty_graph(n);
    Rng rng(7);
    MultilevelConfig cfg;
    if (n > 0) {
      KwayResult r = kway_partition(g, std::min<part_t>(2, n), cfg, rng);
      EXPECT_EQ(check_partition(g, r.part, std::min<part_t>(2, n)), "");
    }
    EXPECT_TRUE(is_permutation(mmd_order(g)));
    NdOptions nd;
    EXPECT_TRUE(is_permutation(mlnd_order(g, cfg, nd, rng)));
  }
}

}  // namespace
}  // namespace mgp
