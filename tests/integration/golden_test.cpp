// Golden regression corpus: re-runs the pinned generator-family graphs and
// diffs cut + partition hash against tests/golden/golden_cuts.txt.  Any
// behavioural drift in matching, contraction, initial partitioning, or
// refinement shows up here even if quality-style tests still pass.
//
// After an *intentional* algorithm change, regenerate the file with
// scripts/refresh_golden.sh and review the diff like any other code change.

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "golden/golden_corpus.hpp"

#ifndef MGP_GOLDEN_FILE
#error "MGP_GOLDEN_FILE must be defined to the pinned golden_cuts.txt path"
#endif

namespace mgp {
namespace {

struct PinnedEntry {
  part_t k = 0;
  std::uint64_t seed = 0;
  ewt_t cut = 0;
  std::uint64_t part_hash = 0;
};

std::map<std::string, PinnedEntry> load_pinned(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.is_open()) << "cannot open golden file: " << path;
  std::map<std::string, PinnedEntry> pinned;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    std::string name;
    long long k = 0, cut = 0;
    unsigned long long seed = 0;
    std::string hash_hex;
    ss >> name >> k >> seed >> cut >> hash_hex;
    EXPECT_FALSE(ss.fail()) << "malformed golden line: " << line;
    PinnedEntry e;
    e.k = static_cast<part_t>(k);
    e.seed = seed;
    e.cut = static_cast<ewt_t>(cut);
    e.part_hash = std::stoull(hash_hex, nullptr, 16);
    pinned[name] = e;
  }
  return pinned;
}

TEST(GoldenCorpusTest, PinnedFileCoversExactlyTheCorpus) {
  const auto pinned = load_pinned(MGP_GOLDEN_FILE);
  const auto entries = golden::corpus();
  EXPECT_EQ(pinned.size(), entries.size())
      << "golden file and corpus definition disagree — rerun "
         "scripts/refresh_golden.sh";
  for (const golden::GoldenEntry& e : entries) {
    EXPECT_TRUE(pinned.count(e.name)) << "missing golden entry: " << e.name;
  }
}

TEST(GoldenCorpusTest, CutsAndPartitionHashesMatchPinnedValues) {
  const auto pinned = load_pinned(MGP_GOLDEN_FILE);
  for (const golden::GoldenEntry& e : golden::corpus()) {
    auto it = pinned.find(e.name);
    ASSERT_NE(it, pinned.end()) << e.name;
    ASSERT_EQ(it->second.k, e.k) << e.name;
    ASSERT_EQ(it->second.seed, e.seed) << e.name;
    const golden::GoldenResult r = golden::run_entry(e);
    EXPECT_EQ(r.cut, it->second.cut)
        << e.name << ": cut drifted from pinned value. If intentional, rerun "
        << "scripts/refresh_golden.sh and commit the diff.";
    EXPECT_EQ(r.part_hash, it->second.part_hash)
        << e.name << ": partition labelling drifted from pinned value. If "
        << "intentional, rerun scripts/refresh_golden.sh and commit the diff.";
  }
}

}  // namespace
}  // namespace mgp
