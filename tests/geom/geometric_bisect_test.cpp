#include "geom/geometric_bisect.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/kway.hpp"
#include "metrics/partition_metrics.hpp"

namespace mgp {
namespace {

TEST(GeometryTest, EmbeddedGeneratorsAgreeWithGraphGenerators) {
  EmbeddedGraph eg = embedded_grid2d(7, 5);
  EXPECT_EQ(eg.graph.num_vertices(), 35);
  EXPECT_EQ(eg.coords.size(), 35u);
  EXPECT_EQ(eg.coords.dims, 2);
  // Vertex (x=3, y=2) has id 2*7+3 = 17.
  EXPECT_DOUBLE_EQ(eg.coords.x[17], 3.0);
  EXPECT_DOUBLE_EQ(eg.coords.y[17], 2.0);
}

TEST(GeometryTest, Embedded3dCoordinates) {
  EmbeddedGraph eg = embedded_grid3d(3, 4, 5);
  EXPECT_EQ(eg.coords.dims, 3);
  EXPECT_EQ(eg.coords.size(), 60u);
  EXPECT_DOUBLE_EQ(eg.coords.z[59], 4.0);
}

TEST(GeometryTest, SubsetCoordinates) {
  EmbeddedGraph eg = embedded_grid2d(4, 4);
  std::vector<vid_t> sel = {5, 10};
  Coordinates sub = subset_coordinates(eg.coords, sel);
  ASSERT_EQ(sub.size(), 2u);
  EXPECT_DOUBLE_EQ(sub.x[0], eg.coords.x[5]);
  EXPECT_DOUBLE_EQ(sub.y[1], eg.coords.y[10]);
}

TEST(GeometryTest, EmbeddedRandomGeometricConsistent) {
  EmbeddedGraph eg = embedded_random_geometric(800, 8.0, 3);
  EXPECT_EQ(eg.coords.size(), static_cast<std::size_t>(eg.graph.num_vertices()));
  EXPECT_EQ(eg.graph.validate(), "");
}

TEST(CoordinateBisectTest, SplitsLongGridAcrossShortAxis) {
  // 20x5 grid: widest axis is x; the median cut crosses 5 edges.
  EmbeddedGraph eg = embedded_grid2d(20, 5);
  Bisection b = coordinate_bisect(eg.graph, eg.coords, 50);
  EXPECT_EQ(b.cut, 5);
  EXPECT_EQ(b.part_weight[0], 50);
  EXPECT_EQ(check_bisection(eg.graph, b), "");
}

TEST(InertialBisectTest, PrincipalAxisOfAnisotropicCloud) {
  // Grid stretched along x: principal axis must be ±e_x.
  EmbeddedGraph eg = embedded_grid2d(30, 3);
  std::vector<double> axis = principal_axis(eg.graph, eg.coords);
  ASSERT_EQ(axis.size(), 2u);
  EXPECT_NEAR(std::abs(axis[0]), 1.0, 1e-9);
  EXPECT_NEAR(axis[1], 0.0, 1e-9);
}

TEST(InertialBisectTest, MatchesCoordinateCutOnAxisAlignedGrid) {
  EmbeddedGraph eg = embedded_grid2d(24, 6);
  Bisection b = inertial_bisect(eg.graph, eg.coords, 72);
  EXPECT_EQ(b.cut, 6);
  EXPECT_EQ(check_bisection(eg.graph, b), "");
}

TEST(InertialBisectTest, RotatedCloudStillCutsPerpendicularly) {
  // Rotate the 24x6 grid by 30 degrees; inertial bisection must still find
  // the long axis and produce the same 6-edge cut.
  EmbeddedGraph eg = embedded_grid2d(24, 6);
  const double c = std::cos(0.5), s = std::sin(0.5);
  for (std::size_t i = 0; i < eg.coords.size(); ++i) {
    const double x = eg.coords.x[i], y = eg.coords.y[i];
    eg.coords.x[i] = c * x - s * y;
    eg.coords.y[i] = s * x + c * y;
  }
  Bisection b = inertial_bisect(eg.graph, eg.coords, 72);
  EXPECT_EQ(b.cut, 6);
}

class GeometricKwayTest
    : public ::testing::TestWithParam<std::tuple<GeometricMethod, part_t>> {};

TEST_P(GeometricKwayTest, PartitionIsValidAndBalanced) {
  auto [method, k] = GetParam();
  EmbeddedGraph eg = embedded_fem2d_tri(24, 24, 7);
  GeometricKwayResult r = geometric_partition(eg.graph, eg.coords, k, method);
  EXPECT_EQ(check_partition(eg.graph, r.part, k), "");
  PartitionQuality q = evaluate_partition(eg.graph, r.part, k);
  EXPECT_LT(q.imbalance, 1.2);
  EXPECT_GT(q.min_part_weight, 0);
  EXPECT_EQ(q.edge_cut, r.edge_cut);
}

INSTANTIATE_TEST_SUITE_P(
    MethodsTimesK, GeometricKwayTest,
    ::testing::Combine(::testing::Values(GeometricMethod::kCoordinate,
                                         GeometricMethod::kInertial),
                       ::testing::Values(2, 4, 7, 16)),
    [](const ::testing::TestParamInfo<std::tuple<GeometricMethod, part_t>>& info) {
      return std::string(std::get<0>(info.param) == GeometricMethod::kCoordinate
                             ? "coordinate"
                             : "inertial") +
             "_k" + std::to_string(std::get<1>(info.param));
    });

TEST(GeometricKwayTest, MultilevelBeatsGeometricOnIrregularGraph) {
  // The paper's §1 claim: geometric methods are fast but lose on quality.
  // The gap shows on genuinely irregular point clouds (on perfect lattices
  // an axis-aligned cut is already optimal, and geometric methods tie).
  EmbeddedGraph eg = embedded_random_geometric(2500, 8.0, 11);
  GeometricKwayResult geo =
      geometric_partition(eg.graph, eg.coords, 8, GeometricMethod::kInertial);
  Rng rng(1);
  MultilevelConfig cfg;
  KwayResult ml = kway_partition(eg.graph, 8, cfg, rng);
  EXPECT_LT(ml.edge_cut, geo.edge_cut);
}

}  // namespace
}  // namespace mgp
