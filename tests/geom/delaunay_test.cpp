#include "geom/delaunay.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/components.hpp"
#include "support/rng.hpp"

namespace mgp {
namespace {

double incircle_ref(double ax, double ay, double bx, double by, double cx,
                    double cy, double dx, double dy) {
  const double adx = ax - dx, ady = ay - dy;
  const double bdx = bx - dx, bdy = by - dy;
  const double cdx = cx - dx, cdy = cy - dy;
  const double ad = adx * adx + ady * ady;
  const double bd = bdx * bdx + bdy * bdy;
  const double cd = cdx * cdx + cdy * cdy;
  return adx * (bdy * cd - bd * cdy) - ady * (bdx * cd - bd * cdx) +
         ad * (bdx * cdy - bdy * cdx);
}

TEST(DelaunayTest, ThreePointsOneTriangle) {
  std::vector<double> xs = {0.0, 1.0, 0.3};
  std::vector<double> ys = {0.0, 0.1, 1.0};
  Triangulation t = delaunay_triangulate(xs, ys);
  EXPECT_EQ(t.num_triangles(), 1u);
}

TEST(DelaunayTest, SquareWithCenter) {
  // 4 corners + center: 4 triangles, 8 edges.
  std::vector<double> xs = {0.0, 1.0, 1.0, 0.0, 0.51};
  std::vector<double> ys = {0.0, 0.0, 1.0, 1.0, 0.49};
  Triangulation t = delaunay_triangulate(xs, ys);
  EXPECT_EQ(t.num_triangles(), 4u);
  EmbeddedGraph eg = delaunay_mesh_graph(xs, ys);
  EXPECT_EQ(eg.graph.num_edges(), 8);
  EXPECT_EQ(eg.graph.validate(), "");
}

TEST(DelaunayTest, RejectsBadInput) {
  std::vector<double> xs = {0.0, 1.0};
  std::vector<double> ys = {0.0, 1.0};
  EXPECT_THROW(delaunay_triangulate(xs, ys), std::invalid_argument);
  std::vector<double> ys3 = {0.0, 1.0, 2.0};
  EXPECT_THROW(delaunay_triangulate(xs, ys3), std::invalid_argument);
}

TEST(DelaunayTest, EulerFormulaHolds) {
  // For a triangulation of a point set: T = 2n - 2 - h, E = 3n - 3 - h
  // (h = hull vertices).  Check the derived identity E = T + n - 1 for a
  // connected planar triangulation (Euler: n - E + (T+1) = 2).
  EmbeddedGraph eg = delaunay_mesh(500, 42);
  Triangulation t;
  {
    t = delaunay_triangulate(eg.coords.x, eg.coords.y);
  }
  EXPECT_EQ(static_cast<long long>(eg.graph.num_edges()),
            static_cast<long long>(t.num_triangles()) + eg.graph.num_vertices() - 1);
}

class DelaunaySizeTest : public ::testing::TestWithParam<vid_t> {};

TEST_P(DelaunaySizeTest, MeshIsValidConnectedPlanarDensity) {
  EmbeddedGraph eg = delaunay_mesh(GetParam(), 7);
  EXPECT_EQ(eg.graph.validate(), "");
  EXPECT_TRUE(is_connected(eg.graph));
  // Planar: E <= 3n - 6; triangulation: E close to that bound.
  const long long n = eg.graph.num_vertices();
  const long long e = eg.graph.num_edges();
  EXPECT_LE(e, 3 * n - 6);
  EXPECT_GE(e, 2 * n);  // far denser than a tree
}

INSTANTIATE_TEST_SUITE_P(Sizes, DelaunaySizeTest,
                         ::testing::Values(10, 50, 200, 1000, 5000));

TEST(DelaunayTest, EmptyCircumcirclePropertyBruteForce) {
  // The defining property, verified exhaustively on a small instance.
  Rng rng(11);
  const vid_t n = 60;
  std::vector<double> xs(n), ys(n);
  for (vid_t i = 0; i < n; ++i) {
    xs[static_cast<std::size_t>(i)] = rng.next_double();
    ys[static_cast<std::size_t>(i)] = rng.next_double();
  }
  Triangulation t = delaunay_triangulate(xs, ys);
  for (std::size_t ti = 0; ti < t.num_triangles(); ++ti) {
    const vid_t a = t.tri_vertices[3 * ti];
    const vid_t b = t.tri_vertices[3 * ti + 1];
    const vid_t c = t.tri_vertices[3 * ti + 2];
    for (vid_t d = 0; d < n; ++d) {
      if (d == a || d == b || d == c) continue;
      EXPECT_LE(incircle_ref(xs[static_cast<std::size_t>(a)], ys[static_cast<std::size_t>(a)],
                             xs[static_cast<std::size_t>(b)], ys[static_cast<std::size_t>(b)],
                             xs[static_cast<std::size_t>(c)], ys[static_cast<std::size_t>(c)],
                             xs[static_cast<std::size_t>(d)], ys[static_cast<std::size_t>(d)]),
                1e-9)
          << "triangle " << ti << " circumcircle contains point " << d;
    }
  }
}

TEST(DelaunayTest, DeterministicGivenSeed) {
  EmbeddedGraph a = delaunay_mesh(300, 5);
  EmbeddedGraph b = delaunay_mesh(300, 5);
  ASSERT_EQ(a.graph.num_edges(), b.graph.num_edges());
  for (vid_t v = 0; v < a.graph.num_vertices(); ++v) {
    auto na = a.graph.neighbors(v);
    auto nb = b.graph.neighbors(v);
    ASSERT_EQ(std::vector<vid_t>(na.begin(), na.end()),
              std::vector<vid_t>(nb.begin(), nb.end()));
  }
}

TEST(DelaunayTest, StressTwentyThousandPoints) {
  // Walk-based point location and cavity bookkeeping at scale: the mesh
  // must stay structurally valid and connected.
  for (std::uint64_t seed : {0ULL, 1ULL}) {
    EmbeddedGraph eg = delaunay_mesh(20000, seed);
    EXPECT_EQ(eg.graph.validate(), "");
    EXPECT_TRUE(is_connected(eg.graph));
  }
}

TEST(DelaunayTest, AverageDegreeNearSix) {
  EmbeddedGraph eg = delaunay_mesh(4000, 9);
  const double avg = 2.0 * static_cast<double>(eg.graph.num_edges()) /
                     static_cast<double>(eg.graph.num_vertices());
  EXPECT_GT(avg, 5.5);
  EXPECT_LT(avg, 6.0);
}

}  // namespace
}  // namespace mgp
