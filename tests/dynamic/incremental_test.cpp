// Warm-start repartitioning tests: fallback policy (no-previous, churn
// ratio, quality bound), projection/placement correctness, and the
// subsystem's central determinism claim — the same churn sequence yields
// byte-identical labellings for every pool size in {1, 2, 4, 8}, at both
// ends of the k range the server serves.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "dynamic/churn.hpp"
#include "dynamic/delta.hpp"
#include "dynamic/incremental.hpp"
#include "graph/generators.hpp"
#include "metrics/partition_metrics.hpp"
#include "support/thread_pool.hpp"

namespace mgp::dynamic {
namespace {

struct Replayer {
  Graph g;
  Graph spare;
  LabelState state;
  IncrementalWorkspace iws;
  BisectWorkspace bws;
  DeltaScratch scratch;
  DeltaApplyResult res;
  IncrementalConfig icfg;
  std::uint64_t seed = 4242;

  explicit Replayer(Graph initial) : g(std::move(initial)) {}

  RepartitionResult step(const DeltaBatch& batch, part_t k,
                         ThreadPool* pool = nullptr) {
    const std::string err = apply_delta(g, batch, scratch, spare, res);
    EXPECT_EQ(err, "");
    std::swap(g, spare);
    return repartition_after_delta(g, k, icfg, seed, state, res.fingerprint,
                                   scratch.touched, res.churn_ratio, iws, &bws,
                                   pool);
  }
};

TEST(Incremental, FirstDeltaPartitionsFromScratch) {
  Replayer r(circuit(600, 11));
  DeltaBatch batch;  // even an empty batch must produce a labelling
  const RepartitionResult out = r.step(batch, 8);
  EXPECT_TRUE(out.from_scratch);
  EXPECT_EQ(out.reason, RepartitionResult::Reason::kNoPrevious);
  EXPECT_TRUE(r.state.valid);
  EXPECT_EQ(r.state.fingerprint, r.res.fingerprint);
  EXPECT_EQ(check_partition(r.g, r.state.part, 8), "");
  EXPECT_EQ(out.cut, r.state.cut);
}

TEST(Incremental, SmallDeltaWarmStarts) {
  Replayer r(circuit(900, 7));
  r.step(DeltaBatch{}, 8);  // anchor

  Rng rng(31);
  DeltaBatch batch;
  synth_churn_batch(r.g, 0.01, rng, batch);
  const RepartitionResult out = r.step(batch, 8);
  EXPECT_FALSE(out.from_scratch);
  EXPECT_EQ(out.reason, RepartitionResult::Reason::kIncremental);
  EXPECT_EQ(check_partition(r.g, r.state.part, 8), "");
  EXPECT_EQ(r.state.fingerprint, r.res.fingerprint);
}

TEST(Incremental, HighChurnFallsBackToScratch) {
  Replayer r(circuit(900, 7));
  r.step(DeltaBatch{}, 8);

  Rng rng(32);
  DeltaBatch batch;  // 30% of edges rewired >> full_rebuild_ratio (20%)
  synth_churn_batch(r.g, 0.30, rng, batch);
  const RepartitionResult out = r.step(batch, 8);
  EXPECT_TRUE(out.from_scratch);
  EXPECT_EQ(out.reason, RepartitionResult::Reason::kChurnRatio);
  EXPECT_EQ(check_partition(r.g, r.state.part, 8), "");
}

TEST(Incremental, QualityBoundReanchorsWithScratch) {
  Replayer r(circuit(900, 7));
  r.step(DeltaBatch{}, 8);

  // Corrupt the tracked estimate so any incremental answer violates the
  // bound: the gate must trigger and re-anchor at a from-scratch cut.
  r.state.cut_estimate = 0.25;
  Rng rng(33);
  DeltaBatch batch;
  synth_churn_batch(r.g, 0.005, rng, batch);
  const RepartitionResult out = r.step(batch, 8);
  EXPECT_TRUE(out.from_scratch);
  EXPECT_EQ(out.reason, RepartitionResult::Reason::kQualityBound);
  EXPECT_EQ(static_cast<double>(r.state.cut), r.state.cut_estimate);
}

TEST(Incremental, ForeignKLabelsForceScratch) {
  Replayer r(circuit(600, 11));
  r.step(DeltaBatch{}, 16);  // labels now live in [0, 16)

  Rng rng(34);
  DeltaBatch batch;
  synth_churn_batch(r.g, 0.005, rng, batch);
  const RepartitionResult out = r.step(batch, 4);  // k changed under the state
  EXPECT_TRUE(out.from_scratch);
  EXPECT_EQ(out.reason, RepartitionResult::Reason::kNoPrevious);
  EXPECT_EQ(check_partition(r.g, r.state.part, 4), "");
}

TEST(Incremental, NewVerticesArePlacedAndLabelled) {
  Replayer r(fem2d_tri(20, 20, 3));
  r.step(DeltaBatch{}, 4);
  const vid_t old_n = r.g.num_vertices();

  DeltaBatch batch;
  batch.vertex_add.push_back(1);  // id old_n, connected to 0 and 1
  batch.vertex_add.push_back(1);  // id old_n+1, isolated
  batch.edge_ins.push_back({static_cast<vid_t>(old_n), 0, 3});
  batch.edge_ins.push_back({static_cast<vid_t>(old_n), 1, 1});
  const RepartitionResult out = r.step(batch, 4);
  EXPECT_FALSE(out.from_scratch);
  ASSERT_EQ(r.state.part.size(), static_cast<std::size_t>(old_n) + 2);
  EXPECT_EQ(check_partition(r.g, r.state.part, 4), "");
}

TEST(Incremental, TombstonedVerticesKeepIndexCompatibility) {
  Replayer r(fem2d_tri(20, 20, 3));
  r.step(DeltaBatch{}, 4);
  const vid_t n = r.g.num_vertices();

  DeltaBatch batch;
  batch.vertex_rem.push_back(5);
  const RepartitionResult out = r.step(batch, 4);
  EXPECT_FALSE(out.from_scratch);
  EXPECT_EQ(r.state.part.size(), static_cast<std::size_t>(n));
  EXPECT_EQ(check_partition(r.g, r.state.part, 4), "");
}

TEST(Incremental, WarmCutStaysWithinQualityBoundOfScratch) {
  // Churn 1% repeatedly; after each step the incremental cut must stay
  // within the configured bound of a from-scratch answer on the same graph
  // (the acceptance criterion's quality half, asserted structurally).
  Replayer r(circuit(1200, 11));
  r.step(DeltaBatch{}, 8);
  Rng rng(35);
  DeltaBatch batch;
  for (int round = 0; round < 5; ++round) {
    synth_churn_batch(r.g, 0.01, rng, batch);
    const RepartitionResult out = r.step(batch, 8);
    ASSERT_EQ(check_partition(r.g, r.state.part, 8), "");
    // The gate itself guarantees this, but assert the external contract.
    EXPECT_LE(static_cast<double>(out.cut),
              r.icfg.quality_bound * r.state.cut_estimate *
                  (1.0 + r.res.churn_ratio) + 1.0);
  }
}

// --- The determinism wall: same churn script, every pool size, both k ends.

class ChurnDeterminismTest : public ::testing::TestWithParam<part_t> {};

TEST_P(ChurnDeterminismTest, ByteIdenticalAcrossPoolSizes) {
  const part_t k = GetParam();
  constexpr int kPoolSizes[] = {1, 2, 4, 8};
  constexpr int kBatches = 6;

  std::vector<std::vector<part_t>> ref_parts;
  std::vector<std::uint64_t> ref_fps;
  for (int threads : kPoolSizes) {
    ThreadPool pool(threads);
    Replayer r(circuit(900, 7));
    Rng churn_rng(555);  // identical script for every pool size
    DeltaBatch batch;
    std::vector<std::vector<part_t>> parts;
    std::vector<std::uint64_t> fps;
    for (int b = 0; b < kBatches; ++b) {
      synth_churn_batch(r.g, 0.01, churn_rng, batch);
      r.step(batch, k, &pool);
      ASSERT_EQ(check_partition(r.g, r.state.part, k), "")
          << "k=" << k << " threads=" << threads << " batch=" << b;
      parts.push_back(r.state.part);
      fps.push_back(r.state.fingerprint);
    }
    if (threads == kPoolSizes[0]) {
      ref_parts = std::move(parts);
      ref_fps = std::move(fps);
    } else {
      ASSERT_EQ(fps, ref_fps) << "fingerprint chain diverged, threads=" << threads;
      for (int b = 0; b < kBatches; ++b) {
        ASSERT_EQ(parts[static_cast<std::size_t>(b)],
                  ref_parts[static_cast<std::size_t>(b)])
            << "labelling diverged: k=" << k << " threads=" << threads
            << " batch=" << b;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(KRange, ChurnDeterminismTest,
                         ::testing::Values(part_t{4}, part_t{16}));

}  // namespace
}  // namespace mgp::dynamic
