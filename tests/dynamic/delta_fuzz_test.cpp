// Seed-sweep fuzz for the delta patcher (DESIGN.md §11).
//
// Two oracles, 64 seeds each:
//
//   1. Model mirror: random DeltaBatch sequences (edge churn, vertex adds,
//      tombstones, weight updates) are applied through apply_delta while a
//      plain edge-map model replays the same mutations; after every batch
//      the patched CSR's fingerprint must equal a from-scratch GraphBuilder
//      rebuild of the model.  The patcher's row-surgery fast path and the
//      naive rebuild must never diverge, whatever op mix the seed draws.
//
//   2. Churn round-trip: synth_churn_batch forward then invert_churn_batch
//      back must land exactly on the origin fingerprint — the ping-pong
//      contract the alloc tests and figL bench rely on.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "dynamic/churn.hpp"
#include "dynamic/delta.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "support/rng.hpp"

namespace mgp::dynamic {
namespace {

constexpr std::uint64_t kNumSeeds = 64;

Graph base_graph(std::uint64_t seed) {
  switch (seed % 4) {
    case 0: return grid2d(9, 11);
    case 1: return fem2d_tri(10, 10, 6);
    case 2: return cycle_graph(120);
    default: return random_geometric(140, 5.0, static_cast<int>(seed));
  }
}

// Reference model: undirected edge map keyed (u, v) with u < v, explicit
// vertex weights, and an alive flag per id (tombstoned ids stay allocated
// with weight 0 and no incident edges — exactly the patcher's semantics).
struct ModelGraph {
  std::map<std::pair<vid_t, vid_t>, ewt_t> edges;
  std::vector<vwt_t> vwgt;
  std::vector<char> alive;

  explicit ModelGraph(const Graph& g) {
    const vid_t n = g.num_vertices();
    vwgt.resize(static_cast<std::size_t>(n));
    alive.assign(static_cast<std::size_t>(n), 1);
    for (vid_t u = 0; u < n; ++u) {
      vwgt[static_cast<std::size_t>(u)] = g.vertex_weight(u);
      const auto nbrs = g.neighbors(u);
      const auto wgts = g.edge_weights(u);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        if (u < nbrs[i]) edges[{u, nbrs[i]}] = wgts[i];
      }
    }
  }

  vid_t num_vertices() const { return static_cast<vid_t>(vwgt.size()); }

  static std::pair<vid_t, vid_t> key(vid_t u, vid_t v) {
    return u < v ? std::make_pair(u, v) : std::make_pair(v, u);
  }

  // Replays `batch` in the documented op order: adds, weight updates,
  // removals, deletions, insertions.
  void apply(const DeltaBatch& batch) {
    for (vwt_t w : batch.vertex_add) {
      vwgt.push_back(w);
      alive.push_back(1);
    }
    for (const WeightUpd& wu : batch.weight_upd) {
      vwgt[static_cast<std::size_t>(wu.v)] = wu.w;
    }
    for (vid_t v : batch.vertex_rem) {
      alive[static_cast<std::size_t>(v)] = 0;
      vwgt[static_cast<std::size_t>(v)] = 0;
      for (auto it = edges.begin(); it != edges.end();) {
        if (it->first.first == v || it->first.second == v) {
          it = edges.erase(it);
        } else {
          ++it;
        }
      }
    }
    for (const EdgeDel& e : batch.edge_del) edges.erase(key(e.u, e.v));
    for (const EdgeIns& e : batch.edge_ins) {
      const bool fresh = edges.emplace(key(e.u, e.v), e.w).second;
      ASSERT_TRUE(fresh) << "fuzz generator inserted a duplicate edge";
    }
  }

  Graph rebuild() const {
    GraphBuilder b(num_vertices());
    for (vid_t v = 0; v < num_vertices(); ++v) {
      b.set_vertex_weight(v, vwgt[static_cast<std::size_t>(v)]);
    }
    for (const auto& [uv, w] : edges) b.add_edge(uv.first, uv.second, w);
    return std::move(b).build();
  }
};

// Draws a random batch that is valid by construction: ops never touch a
// tombstoned id, a vertex removed by this batch, or collide with each other
// (the rejection paths have their own tests in delta_test.cpp).
void synth_fuzz_batch(const ModelGraph& model, Rng& rng, DeltaBatch& out) {
  out.clear();
  const vid_t old_n = model.num_vertices();
  std::vector<vid_t> live;
  for (vid_t v = 0; v < old_n; ++v) {
    if (model.alive[static_cast<std::size_t>(v)] != 0) live.push_back(v);
  }

  // Tombstones first, so every later draw can exclude them.
  std::vector<char> gone(static_cast<std::size_t>(old_n), 0);
  if (live.size() > 8 && rng.next_below(3) == 0) {
    const vid_t victim = live[static_cast<std::size_t>(
        rng.next_below(static_cast<std::uint64_t>(live.size())))];
    out.vertex_rem.push_back(victim);
    gone[static_cast<std::size_t>(victim)] = 1;
  }
  std::vector<vid_t> usable;
  for (vid_t v : live) {
    if (gone[static_cast<std::size_t>(v)] == 0) usable.push_back(v);
  }

  // Fresh vertices (ids old_n, old_n+1, ...) join the usable pool — edge
  // insertions below may connect them, covering the add-then-connect path.
  const std::uint64_t adds = rng.next_below(3);
  for (std::uint64_t i = 0; i < adds; ++i) {
    out.vertex_add.push_back(static_cast<vwt_t>(1 + rng.next_below(9)));
    usable.push_back(old_n + static_cast<vid_t>(i));
  }

  // Weight updates on a few surviving old vertices.
  const std::uint64_t upds = rng.next_below(4);
  std::vector<char> upd_seen(static_cast<std::size_t>(old_n), 0);
  for (std::uint64_t i = 0; i < upds && !live.empty(); ++i) {
    const vid_t v = live[static_cast<std::size_t>(
        rng.next_below(static_cast<std::uint64_t>(live.size())))];
    if (gone[static_cast<std::size_t>(v)] != 0 ||
        upd_seen[static_cast<std::size_t>(v)] != 0) {
      continue;
    }
    upd_seen[static_cast<std::size_t>(v)] = 1;
    out.weight_upd.push_back({v, static_cast<vwt_t>(1 + rng.next_below(12))});
  }

  // Deletions: sample distinct existing edges whose endpoints survive.
  std::vector<std::pair<vid_t, vid_t>> keys;
  for (const auto& [uv, w] : model.edges) {
    (void)w;
    if (gone[static_cast<std::size_t>(uv.first)] == 0 &&
        gone[static_cast<std::size_t>(uv.second)] == 0) {
      keys.push_back(uv);
    }
  }
  std::vector<char> deleted(keys.size(), 0);
  const std::uint64_t dels =
      keys.empty() ? 0 : rng.next_below(1 + keys.size() / 8);
  for (std::uint64_t i = 0; i < dels; ++i) {
    const std::size_t pick = static_cast<std::size_t>(
        rng.next_below(static_cast<std::uint64_t>(keys.size())));
    if (deleted[pick] != 0) continue;
    deleted[pick] = 1;
    out.edge_del.push_back({keys[pick].first, keys[pick].second});
  }

  // Insertions: rejection-sample non-edges among usable ids; a pair deleted
  // by this batch is also skipped, keeping the op sets disjoint.
  const std::uint64_t want_ins = rng.next_below(6);
  std::vector<std::pair<vid_t, vid_t>> fresh;
  for (int tries = 0; fresh.size() < want_ins && tries < 200; ++tries) {
    if (usable.size() < 2) break;
    const vid_t u = usable[static_cast<std::size_t>(
        rng.next_below(static_cast<std::uint64_t>(usable.size())))];
    const vid_t v = usable[static_cast<std::size_t>(
        rng.next_below(static_cast<std::uint64_t>(usable.size())))];
    if (u == v) continue;
    const auto k = ModelGraph::key(u, v);
    if (model.edges.count(k) != 0) continue;
    if (std::find(fresh.begin(), fresh.end(), k) != fresh.end()) continue;
    fresh.push_back(k);
  }
  for (const auto& [u, v] : fresh) {
    out.edge_ins.push_back({u, v, static_cast<ewt_t>(1 + rng.next_below(9))});
  }
}

TEST(DeltaFuzz, RandomBatchChainsMatchFromScratchRebuilds) {
  constexpr int kBatchesPerSeed = 5;
  for (std::uint64_t seed = 0; seed < kNumSeeds; ++seed) {
    Rng rng(seed * 7919 + 17);
    Graph cur = base_graph(seed);
    ModelGraph model(cur);

    // Persistent scratch + ping-pong destination, as the GraphStore runs it.
    DeltaScratch scratch;
    Graph other;
    DeltaBatch batch;
    for (int step = 0; step < kBatchesPerSeed; ++step) {
      synth_fuzz_batch(model, rng, batch);
      if (batch.empty()) continue;

      DeltaApplyResult res;
      const std::string err = apply_delta(cur, batch, scratch, other, res);
      ASSERT_EQ(err, "") << "seed " << seed << " step " << step;
      ASSERT_EQ(other.validate(), "") << "seed " << seed << " step " << step;

      model.apply(batch);
      const Graph expected = model.rebuild();
      ASSERT_EQ(res.fingerprint, graph_fingerprint(expected))
          << "seed " << seed << " step " << step;
      ASSERT_EQ(graph_fingerprint(other), res.fingerprint)
          << "seed " << seed << " step " << step;
      std::swap(cur, other);
    }
  }
}

TEST(DeltaFuzz, ChurnForwardThenInverseReturnsOriginFingerprint) {
  for (std::uint64_t seed = 0; seed < kNumSeeds; ++seed) {
    Rng rng(seed);
    const Graph origin = base_graph(seed);
    const std::uint64_t origin_fp = graph_fingerprint(origin);

    DeltaBatch fwd, inv;
    synth_churn_batch(origin, 0.15, rng, fwd);
    invert_churn_batch(origin, fwd, inv);

    DeltaScratch scratch;
    Graph churned, back;
    DeltaApplyResult res;
    ASSERT_EQ(apply_delta(origin, fwd, scratch, churned, res), "")
        << "seed " << seed;
    // A 15% churn must actually move the fingerprint, or the round trip
    // below proves nothing.
    ASSERT_NE(res.fingerprint, origin_fp) << "seed " << seed;

    ASSERT_EQ(apply_delta(churned, inv, scratch, back, res), "")
        << "seed " << seed;
    EXPECT_EQ(res.fingerprint, origin_fp) << "seed " << seed;
    EXPECT_EQ(graph_fingerprint(back), origin_fp) << "seed " << seed;
  }
}

}  // namespace
}  // namespace mgp::dynamic
