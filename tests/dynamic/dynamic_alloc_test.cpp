// Zero-allocation regression for the warm delta path (links the counting
// allocator from tests/support/alloc_guard.cpp).
//
// The incremental subsystem's steady-state guarantee, asserted at two
// layers: (1) library level — apply_delta ping-ponging a warm graph pair
// plus repartition_after_delta through warm workspaces allocates nothing;
// (2) handler level — a warm DELTA_REPARTITION request is allocation-free
// end to end (decode ops, checkout, patch, swap, warm-start refine, rekey,
// encode response frame).  The churn alternates a batch with its exact
// inverse, so graph shapes — and therefore every buffer high-water mark —
// repeat forever.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <utility>
#include <vector>

#include "dynamic/churn.hpp"
#include "dynamic/delta.hpp"
#include "dynamic/graph_store.hpp"
#include "dynamic/incremental.hpp"
#include "graph/generators.hpp"
#include "obs/metrics.hpp"
#include "server/handler.hpp"
#include "server/protocol.hpp"
#include "server/result_cache.hpp"
#include "support/alloc_guard.hpp"
#include "support/rng.hpp"
#include "support/workspace.hpp"

namespace mgp::dynamic {
namespace {

using ::mgp::testing::AllocGuard;

TEST(DynamicAllocTest, WarmDeltaLibraryPathIsAllocationFree) {
  ASSERT_TRUE(::mgp::testing::counting_allocator_active());

  Graph g = circuit(1500, 11);
  Graph spare;
  DeltaBatch fwd, bwd;
  {
    Rng rng(99);
    synth_churn_batch(g, 0.01, rng, fwd);
  }
  invert_churn_batch(g, fwd, bwd);

  DeltaScratch scratch;
  DeltaApplyResult res;
  LabelState state;
  IncrementalWorkspace iws;
  BisectWorkspace bws;
  IncrementalConfig icfg;
  constexpr part_t k = 8;

  const auto cycle = [&](const DeltaBatch& batch) {
    ASSERT_EQ(apply_delta(g, batch, scratch, spare, res), "");
    std::swap(g, spare);
    repartition_after_delta(g, k, icfg, 4242, state, res.fingerprint,
                            scratch.touched, res.churn_ratio, iws, &bws,
                            nullptr);
  };

  // Warm-up: two full A/B cycles (the first from-scratch anchor included),
  // so every workspace reaches the exact high-water shape it will repeat.
  for (int round = 0; round < 2; ++round) {
    cycle(fwd);
    cycle(bwd);
  }

  AllocGuard guard;
  cycle(fwd);
  cycle(bwd);
  EXPECT_EQ(guard.allocations(), 0u);
}

TEST(DynamicAllocTest, WarmDeltaHandlerPathIsAllocationFree) {
  ASSERT_TRUE(::mgp::testing::counting_allocator_active());

  WorkspacePool pool;
  server::ResultCache cache(1);
  obs::MetricsRegistry reg;
  server::ServerMetrics ids(reg);
  GraphStore store(256u << 20);
  server::RequestHandler handler(pool, cache, reg, ids,
                                 server::kDefaultDirectMinK, &store);

  Graph g = circuit(1500, 11);
  DeltaBatch fwd, bwd;
  {
    Rng rng(99);
    synth_churn_batch(g, 0.01, rng, fwd);
  }
  invert_churn_batch(g, fwd, bwd);
  const std::uint64_t fp_a = graph_fingerprint(g);
  // Fingerprint after fwd: compute it once via a throwaway patch.
  std::uint64_t fp_b = 0;
  {
    DeltaScratch scratch;
    DeltaApplyResult res;
    Graph dst;
    ASSERT_EQ(apply_delta(g, fwd, scratch, dst, res), "");
    fp_b = res.fingerprint;
  }

  std::vector<std::uint8_t> pin_payload, delta_fwd, delta_bwd;
  server::encode_pin_request(g, pin_payload);
  server::RequestOptions opts;
  opts.k = 8;
  opts.seed = 4242;
  server::encode_delta_request(fp_a, fwd, opts, delta_fwd);
  server::encode_delta_request(fp_b, bwd, opts, delta_bwd);

  const auto now = std::chrono::steady_clock::now();
  std::vector<std::uint8_t> frame;
  handler.handle_pin(pin_payload, frame);
  {
    server::FrameHeader h;
    ASSERT_TRUE(server::decode_frame_header(frame, h));
    ASSERT_EQ(h.type, server::MsgType::kPinGraphResponse);
  }

  // Warm-up: two full fwd/bwd cycles re-key the entry A -> B -> A -> ... and
  // warm the label slot, batch decode buffers, and the response frame.
  for (int round = 0; round < 2; ++round) {
    handler.handle_delta(delta_fwd, now, frame);
    handler.handle_delta(delta_bwd, now, frame);
  }

  AllocGuard guard;
  handler.handle_delta(delta_fwd, now, frame);
  handler.handle_delta(delta_bwd, now, frame);
  EXPECT_EQ(guard.allocations(), 0u);

  // And the responses the guarded cycle produced are well-formed successes.
  server::FrameHeader h;
  ASSERT_TRUE(server::decode_frame_header(frame, h));
  EXPECT_EQ(h.type, server::MsgType::kDeltaResponse);
  server::DeltaResponseView view;
  ASSERT_TRUE(server::decode_delta_response(
      std::span<const std::uint8_t>(frame).subspan(server::kFrameHeaderBytes),
      view));
  EXPECT_EQ(view.fingerprint, fp_a);
  EXPECT_FALSE(view.from_scratch);
}

}  // namespace
}  // namespace mgp::dynamic
