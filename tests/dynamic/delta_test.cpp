// DeltaBatch / apply_delta unit tests: patched CSRs equal from-scratch
// rebuilds, fingerprints match the wire encoding, every rejection path
// rejects, and the delta-script grammar round-trips.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "dynamic/churn.hpp"
#include "dynamic/delta.hpp"
#include "dynamic/delta_script.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "server/protocol.hpp"
#include "support/rng.hpp"

namespace mgp::dynamic {
namespace {

// 4-cycle with a chord: 0-1, 1-2, 2-3, 3-0, 0-2.
Graph chorded_square() {
  GraphBuilder b(4);
  b.add_edge(0, 1, 1);
  b.add_edge(1, 2, 2);
  b.add_edge(2, 3, 3);
  b.add_edge(3, 0, 4);
  b.add_edge(0, 2, 5);
  return std::move(b).build();
}

// Applies `batch` to `src` with fresh scratch, asserting success.
Graph apply_ok(const Graph& src, const DeltaBatch& batch, DeltaApplyResult* res = nullptr) {
  DeltaScratch scratch;
  DeltaApplyResult local;
  Graph dst;
  const std::string err = apply_delta(src, batch, scratch, dst, local);
  EXPECT_EQ(err, "");
  EXPECT_EQ(dst.validate(), "");
  if (res != nullptr) *res = local;
  return dst;
}

std::string apply_err(const Graph& src, const DeltaBatch& batch) {
  DeltaScratch scratch;
  DeltaApplyResult res;
  Graph dst;
  return apply_delta(src, batch, scratch, dst, res);
}

TEST(DeltaApply, EdgeInsertMatchesFromScratchRebuild) {
  const Graph src = chorded_square();
  DeltaBatch batch;
  batch.edge_ins.push_back({1, 3, 7});

  const Graph patched = apply_ok(src, batch);

  GraphBuilder b(4);
  b.add_edge(0, 1, 1);
  b.add_edge(1, 2, 2);
  b.add_edge(2, 3, 3);
  b.add_edge(3, 0, 4);
  b.add_edge(0, 2, 5);
  b.add_edge(1, 3, 7);
  const Graph expected = std::move(b).build();

  EXPECT_EQ(graph_fingerprint(patched), graph_fingerprint(expected));
}

TEST(DeltaApply, EdgeDeleteMatchesFromScratchRebuild) {
  const Graph src = chorded_square();
  DeltaBatch batch;
  batch.edge_del.push_back({0, 2});

  const Graph patched = apply_ok(src, batch);

  GraphBuilder b(4);
  b.add_edge(0, 1, 1);
  b.add_edge(1, 2, 2);
  b.add_edge(2, 3, 3);
  b.add_edge(3, 0, 4);
  const Graph expected = std::move(b).build();

  EXPECT_EQ(graph_fingerprint(patched), graph_fingerprint(expected));
}

TEST(DeltaApply, DeletePlusInsertRewritesEdgeWeight) {
  const Graph src = chorded_square();
  DeltaBatch batch;  // the edge-weight-update idiom
  batch.edge_del.push_back({0, 2});
  batch.edge_ins.push_back({0, 2, 9});

  const Graph patched = apply_ok(src, batch);
  bool found = false;
  const auto nbrs = patched.neighbors(0);
  const auto wgts = patched.edge_weights(0);
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    if (nbrs[i] == 2) {
      EXPECT_EQ(wgts[i], 9);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(DeltaApply, VertexAddAppendsIdsAndConnects) {
  const Graph src = chorded_square();
  DeltaBatch batch;
  batch.vertex_add.push_back(6);  // id 4
  batch.edge_ins.push_back({4, 0, 2});

  DeltaApplyResult res;
  const Graph patched = apply_ok(src, batch, &res);
  EXPECT_EQ(res.old_n, 4);
  EXPECT_EQ(res.new_n, 5);
  ASSERT_EQ(patched.num_vertices(), 5);
  EXPECT_EQ(patched.vertex_weight(4), 6);
  ASSERT_EQ(patched.degree(4), 1u);
  EXPECT_EQ(patched.neighbors(4)[0], 0);
}

TEST(DeltaApply, VertexRemoveTombstones) {
  const Graph src = chorded_square();
  DeltaBatch batch;
  batch.vertex_rem.push_back(2);

  const Graph patched = apply_ok(src, batch);
  ASSERT_EQ(patched.num_vertices(), 4);  // ids never shift
  EXPECT_EQ(patched.degree(2), 0u);
  EXPECT_EQ(patched.vertex_weight(2), 0);
  // Neighbors of 2 lost exactly the arc to 2.
  EXPECT_EQ(patched.degree(0), 2u);  // was 3 (1, 2, 3)
  EXPECT_EQ(patched.degree(1), 1u);  // was 2 (0, 2)
  EXPECT_EQ(patched.degree(3), 1u);  // was 2 (0, 2)
}

TEST(DeltaApply, WeightUpdateOnlyChangesVwgt) {
  const Graph src = chorded_square();
  DeltaBatch batch;
  batch.weight_upd.push_back({1, 42});

  const Graph patched = apply_ok(src, batch);
  EXPECT_EQ(patched.vertex_weight(1), 42);
  EXPECT_EQ(patched.num_edges(), src.num_edges());
}

TEST(DeltaApply, TouchedFrontierIsExactAndAscending) {
  const Graph src = chorded_square();
  DeltaBatch batch;
  batch.edge_del.push_back({2, 3});

  DeltaScratch scratch;
  DeltaApplyResult res;
  Graph dst;
  ASSERT_EQ(apply_delta(src, batch, scratch, dst, res), "");
  // Only rows 2 and 3 were rebuilt.
  ASSERT_EQ(scratch.touched.size(), 2u);
  EXPECT_EQ(scratch.touched[0], 2);
  EXPECT_EQ(scratch.touched[1], 3);
}

TEST(DeltaApply, ChurnRatioCountsInsertedAndRemovedArcs) {
  const Graph src = chorded_square();  // 10 arcs
  DeltaBatch batch;
  batch.edge_del.push_back({0, 2});   // -2 arcs
  batch.edge_ins.push_back({1, 3, 1});  // +2 arcs

  DeltaApplyResult res;
  apply_ok(src, batch, &res);
  EXPECT_EQ(res.arcs_changed, 4);
  EXPECT_DOUBLE_EQ(res.churn_ratio, 4.0 / 10.0);
}

TEST(DeltaApply, FingerprintMatchesPinPayloadHash) {
  // The contract that unifies the store with the result cache: the patched
  // graph's fingerprint equals FNV-1a over its PIN_GRAPH wire payload.
  const Graph src = fem2d_tri(8, 8, 3);
  DeltaBatch batch;
  batch.edge_ins.push_back({0, 9, 2});

  DeltaApplyResult res;
  const Graph patched = apply_ok(src, batch, &res);
  std::vector<std::uint8_t> payload;
  server::encode_pin_request(patched, payload);
  EXPECT_EQ(res.fingerprint, server::fnv1a64(payload));
  EXPECT_EQ(res.fingerprint, graph_fingerprint(patched));
}

TEST(DeltaApply, EmptyBatchIsIdentity) {
  const Graph src = chorded_square();
  DeltaBatch batch;
  DeltaApplyResult res;
  const Graph patched = apply_ok(src, batch, &res);
  EXPECT_EQ(res.arcs_changed, 0);
  EXPECT_EQ(res.fingerprint, graph_fingerprint(src));
}

TEST(DeltaApply, RejectsEveryMalformedOp) {
  const Graph src = chorded_square();
  {
    DeltaBatch b;  // inserting an existing edge
    b.edge_ins.push_back({0, 1, 1});
    EXPECT_NE(apply_err(src, b), "");
  }
  {
    DeltaBatch b;  // deleting a missing edge
    b.edge_del.push_back({1, 3});
    EXPECT_NE(apply_err(src, b), "");
  }
  {
    DeltaBatch b;  // self-loop
    b.edge_ins.push_back({1, 1, 1});
    EXPECT_NE(apply_err(src, b), "");
  }
  {
    DeltaBatch b;  // out-of-range endpoint
    b.edge_ins.push_back({0, 99, 1});
    EXPECT_NE(apply_err(src, b), "");
  }
  {
    DeltaBatch b;  // duplicate insert within the batch
    b.edge_ins.push_back({1, 3, 1});
    b.edge_ins.push_back({3, 1, 1});
    EXPECT_NE(apply_err(src, b), "");
  }
  {
    DeltaBatch b;  // duplicate removal
    b.vertex_rem.push_back(2);
    b.vertex_rem.push_back(2);
    EXPECT_NE(apply_err(src, b), "");
  }
  {
    DeltaBatch b;  // op touching a vertex removed in the same batch
    b.vertex_rem.push_back(2);
    b.edge_ins.push_back({2, 3, 1});
    EXPECT_NE(apply_err(src, b), "");
  }
  {
    DeltaBatch b;  // weight update on a removed vertex
    b.vertex_rem.push_back(2);
    b.weight_upd.push_back({2, 5});
    EXPECT_NE(apply_err(src, b), "");
  }
  {
    DeltaBatch b;  // negative added-vertex weight
    b.vertex_add.push_back(-1);
    EXPECT_NE(apply_err(src, b), "");
  }
  {
    DeltaBatch b;  // non-positive edge weight
    b.edge_ins.push_back({1, 3, 0});
    EXPECT_NE(apply_err(src, b), "");
  }
}

TEST(DeltaApply, RejectionLeavesSourceIntact) {
  const Graph src = chorded_square();
  const std::uint64_t before = graph_fingerprint(src);
  DeltaBatch b;
  b.edge_del.push_back({1, 3});
  EXPECT_NE(apply_err(src, b), "");
  EXPECT_EQ(graph_fingerprint(src), before);
}

TEST(DeltaApply, WarmScratchPingPongsAcrossManyBatches) {
  // Patch forward and backward a few times through the same scratch and
  // ping-pong pair; every intermediate validates and the fingerprint chain
  // returns to the origin.
  Graph g = fem2d_tri(12, 12, 5);
  const std::uint64_t origin = graph_fingerprint(g);
  Rng rng(77);
  DeltaBatch fwd, bwd;
  DeltaScratch scratch;
  DeltaApplyResult res;
  Graph spare;
  for (int round = 0; round < 4; ++round) {
    synth_churn_batch(g, 0.02, rng, fwd);
    invert_churn_batch(g, fwd, bwd);
    ASSERT_EQ(apply_delta(g, fwd, scratch, spare, res), "");
    std::swap(g, spare);
    ASSERT_EQ(g.validate(), "");
    ASSERT_EQ(apply_delta(g, bwd, scratch, spare, res), "");
    std::swap(g, spare);
    ASSERT_EQ(res.fingerprint, origin) << "round " << round;
  }
}

TEST(DeltaScript, RoundTripsThroughWriter) {
  std::vector<DeltaBatch> batches(2);
  batches[0].vertex_add.push_back(3);
  batches[0].edge_ins.push_back({0, 4, 2});
  batches[0].weight_upd.push_back({1, 7});
  batches[1].edge_del.push_back({0, 2});
  batches[1].vertex_rem.push_back(3);

  std::ostringstream os;
  write_delta_script(os, batches);
  std::istringstream is(os.str());
  std::vector<DeltaBatch> parsed;
  ASSERT_EQ(parse_delta_script(is, parsed), "");
  ASSERT_EQ(parsed.size(), 2u);
  ASSERT_EQ(parsed[0].vertex_add.size(), 1u);
  EXPECT_EQ(parsed[0].vertex_add[0], 3);
  ASSERT_EQ(parsed[0].edge_ins.size(), 1u);
  EXPECT_EQ(parsed[0].edge_ins[0].v, 4);
  EXPECT_EQ(parsed[0].edge_ins[0].w, 2);
  ASSERT_EQ(parsed[1].edge_del.size(), 1u);
  ASSERT_EQ(parsed[1].vertex_rem.size(), 1u);
}

TEST(DeltaScript, ParsesCommentsBlanksAndEmptyBatches) {
  std::istringstream is(
      "# churn script\n"
      "\n"
      "batch\n"
      "batch\n"
      "ae 0 1 5\n");
  std::vector<DeltaBatch> parsed;
  ASSERT_EQ(parse_delta_script(is, parsed), "");
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_TRUE(parsed[0].empty());
  ASSERT_EQ(parsed[1].edge_ins.size(), 1u);
}

TEST(DeltaScript, RejectsMalformedLines) {
  const char* bad[] = {
      "ae 0 1 5\n",          // op before the first batch
      "batch\nae 0 1\n",     // missing field
      "batch\nae 0 1 5 9\n", // trailing token
      "batch\nzz 1\n",       // unknown op
      "batch\nae x 1 5\n",   // non-numeric
  };
  for (const char* script : bad) {
    std::istringstream is(script);
    std::vector<DeltaBatch> parsed;
    EXPECT_NE(parse_delta_script(is, parsed), "") << script;
  }
}

TEST(Churn, SynthesizedBatchesApplyCleanly) {
  const Graph g = circuit(600, 11);
  Rng rng(123);
  DeltaBatch batch;
  for (int round = 0; round < 5; ++round) {
    synth_churn_batch(g, 0.01, rng, batch);
    EXPECT_FALSE(batch.empty());
    DeltaApplyResult res;
    apply_ok(g, batch, &res);
    EXPECT_GT(res.arcs_changed, 0);
  }
}

}  // namespace
}  // namespace mgp::dynamic
