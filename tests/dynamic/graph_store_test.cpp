// GraphStore unit tests: pin/checkout semantics, byte-budgeted LRU
// eviction, lease-based eviction immunity, and post-delta re-keying.
#include <gtest/gtest.h>

#include <cstdint>
#include <utility>

#include "dynamic/delta.hpp"
#include "dynamic/graph_store.hpp"
#include "graph/generators.hpp"

namespace mgp::dynamic {
namespace {

Graph make_graph(std::uint64_t seed) { return circuit(400, seed); }

// Pins a fresh graph under an arbitrary distinct fingerprint.
GraphStore::PinOutcome pin_fresh(GraphStore& store, std::uint64_t fp,
                                 std::uint64_t seed = 1) {
  Graph g = make_graph(seed);
  return store.pin(g, fp);
}

TEST(GraphStore, PinThenCheckout) {
  GraphStore store(64u << 20);
  Graph g = make_graph(3);
  const std::uint64_t fp = graph_fingerprint(g);
  const vid_t n = g.num_vertices();

  const GraphStore::PinOutcome out = store.pin(g, fp);
  EXPECT_TRUE(out.ok);
  EXPECT_FALSE(out.already_pinned);

  GraphStore::EntryPtr e = store.checkout(fp);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->fingerprint, fp);
  EXPECT_EQ(e->graph.num_vertices(), n);
  EXPECT_EQ(store.checkout(fp ^ 1), nullptr);
}

TEST(GraphStore, RepinRefreshesWithoutMoving) {
  GraphStore store(64u << 20);
  Graph g = make_graph(3);
  const std::uint64_t fp = graph_fingerprint(g);
  ASSERT_TRUE(store.pin(g, fp).ok);

  Graph again = make_graph(3);
  const GraphStore::PinOutcome out = store.pin(again, fp);
  EXPECT_TRUE(out.ok);
  EXPECT_TRUE(out.already_pinned);
  EXPECT_GT(again.num_vertices(), 0);  // caller's graph untouched on re-pin
  EXPECT_EQ(store.stats().repins, 1u);
  EXPECT_EQ(store.stats().entries, 1u);
}

TEST(GraphStore, BudgetEvictsLeastRecentlyUsed) {
  // Budget sized for roughly two entries; pinning a third evicts the LRU.
  Graph probe = make_graph(1);
  const std::size_t one = probe.memory_bytes();
  GraphStore store(one * 5 / 2);

  ASSERT_TRUE(pin_fresh(store, 100, 1).ok);
  ASSERT_TRUE(pin_fresh(store, 200, 2).ok);
  // Touch 100 so 200 becomes the eviction candidate.
  ASSERT_NE(store.checkout(100), nullptr);
  ASSERT_TRUE(pin_fresh(store, 300, 3).ok);

  EXPECT_NE(store.checkout(100), nullptr);
  EXPECT_EQ(store.checkout(200), nullptr);  // evicted
  EXPECT_NE(store.checkout(300), nullptr);
  EXPECT_GE(store.stats().evictions, 1u);
}

TEST(GraphStore, CheckedOutEntriesAreNotEvictable) {
  Graph probe = make_graph(1);
  const std::size_t one = probe.memory_bytes();
  GraphStore store(one * 3 / 2);  // fits one entry comfortably, not two

  ASSERT_TRUE(pin_fresh(store, 100, 1).ok);
  GraphStore::EntryPtr lease = store.checkout(100);
  ASSERT_NE(lease, nullptr);

  // The only evictable entry is leased, so this pin must be rejected.
  const GraphStore::PinOutcome out = pin_fresh(store, 200, 2);
  EXPECT_FALSE(out.ok);
  EXPECT_GE(store.stats().rejected, 1u);
  EXPECT_NE(store.checkout(100), nullptr);

  // Releasing the lease makes it evictable again.
  lease.reset();
  EXPECT_TRUE(pin_fresh(store, 200, 2).ok);
  EXPECT_EQ(store.checkout(100), nullptr);
}

TEST(GraphStore, OversizedGraphIsRejectedAndReturned) {
  GraphStore store(1024);  // far below any real graph
  Graph g = make_graph(1);
  const vid_t n = g.num_vertices();
  const GraphStore::PinOutcome out = store.pin(g, 42);
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(g.num_vertices(), n);  // graph handed back on rejection
  EXPECT_EQ(store.stats().entries, 0u);
}

TEST(GraphStore, RekeyMovesEntryToNewFingerprint) {
  GraphStore store(64u << 20);
  ASSERT_TRUE(pin_fresh(store, 100, 1).ok);
  GraphStore::EntryPtr e = store.checkout(100);
  ASSERT_NE(e, nullptr);
  {
    std::lock_guard<std::mutex> lock(e->mu);
    e->fingerprint = 777;
    store.rekey(e, 100, 777);
  }
  EXPECT_EQ(store.checkout(100), nullptr);
  GraphStore::EntryPtr moved = store.checkout(777);
  ASSERT_NE(moved, nullptr);
  EXPECT_EQ(moved.get(), e.get());
}

TEST(GraphStore, RekeyOntoIdleOccupantEvictsIt) {
  GraphStore store(64u << 20);
  ASSERT_TRUE(pin_fresh(store, 100, 1).ok);
  ASSERT_TRUE(pin_fresh(store, 200, 2).ok);
  GraphStore::EntryPtr e = store.checkout(100);
  ASSERT_NE(e, nullptr);
  {
    std::lock_guard<std::mutex> lock(e->mu);
    e->fingerprint = 200;
    store.rekey(e, 100, 200);
  }
  GraphStore::EntryPtr now = store.checkout(200);
  ASSERT_NE(now, nullptr);
  EXPECT_EQ(now.get(), e.get());  // ours won; the idle occupant was evicted
  EXPECT_EQ(store.stats().entries, 1u);
}

TEST(GraphStore, RekeyOntoLeasedOccupantDropsSelf) {
  GraphStore store(64u << 20);
  ASSERT_TRUE(pin_fresh(store, 100, 1).ok);
  ASSERT_TRUE(pin_fresh(store, 200, 2).ok);
  GraphStore::EntryPtr occupant = store.checkout(200);
  GraphStore::EntryPtr e = store.checkout(100);
  ASSERT_NE(e, nullptr);
  {
    std::lock_guard<std::mutex> lock(e->mu);
    e->fingerprint = 200;
    store.rekey(e, 100, 200);
  }
  // The occupant keeps its slot; our entry is no longer reachable (a later
  // delta sees NOT_FOUND and re-pins) but the lease stays valid.
  GraphStore::EntryPtr now = store.checkout(200);
  ASSERT_NE(now, nullptr);
  EXPECT_EQ(now.get(), occupant.get());
  EXPECT_EQ(store.checkout(100), nullptr);
  EXPECT_GT(e->graph.num_vertices(), 0);
}

TEST(GraphStore, StatsTrackBytesAndCounts) {
  GraphStore store(64u << 20);
  ASSERT_TRUE(pin_fresh(store, 100, 1).ok);
  ASSERT_TRUE(pin_fresh(store, 200, 2).ok);
  const GraphStore::Stats s = store.stats();
  EXPECT_EQ(s.pins, 2u);
  EXPECT_EQ(s.entries, 2u);
  EXPECT_GT(s.bytes, 0u);
  EXPECT_EQ(s.max_bytes, 64u << 20);
  EXPECT_LE(s.bytes, s.max_bytes);
}

}  // namespace
}  // namespace mgp::dynamic
