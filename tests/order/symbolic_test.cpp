#include "order/symbolic.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "graph/generators.hpp"
#include "graph/permute.hpp"
#include "support/rng.hpp"

namespace mgp {
namespace {

std::vector<vid_t> identity_perm(vid_t n) {
  std::vector<vid_t> p(static_cast<std::size_t>(n));
  std::iota(p.begin(), p.end(), vid_t{0});
  return p;
}

/// Reference symbolic factorisation by explicit elimination (O(n^3)-ish,
/// for tiny graphs): returns per-column factor counts including diagonal.
std::vector<std::int64_t> brute_force_colcounts(const Graph& g,
                                                std::span<const vid_t> perm) {
  const vid_t n = g.num_vertices();
  std::vector<vid_t> inv = invert_permutation(perm);
  // adj[i] = current nonzero set of row/col i (in new numbering), i.e. the
  // elimination graph.
  std::vector<std::set<vid_t>> adj(static_cast<std::size_t>(n));
  for (vid_t u = 0; u < n; ++u) {
    for (vid_t v : g.neighbors(u)) {
      adj[static_cast<std::size_t>(inv[static_cast<std::size_t>(u)])].insert(
          inv[static_cast<std::size_t>(v)]);
    }
  }
  std::vector<std::int64_t> cc(static_cast<std::size_t>(n), 1);
  for (vid_t j = 0; j < n; ++j) {
    std::vector<vid_t> later;
    for (vid_t x : adj[static_cast<std::size_t>(j)]) {
      if (x > j) later.push_back(x);
    }
    cc[static_cast<std::size_t>(j)] += static_cast<std::int64_t>(later.size());
    // Eliminate j: pairwise fill among the later neighbours.
    for (std::size_t a = 0; a < later.size(); ++a) {
      for (std::size_t b = a + 1; b < later.size(); ++b) {
        adj[static_cast<std::size_t>(later[a])].insert(later[b]);
        adj[static_cast<std::size_t>(later[b])].insert(later[a]);
      }
    }
  }
  return cc;
}

TEST(SymbolicTest, PathNaturalOrderHasNoFill) {
  Graph g = path_graph(10);
  SymbolicFactor sf = symbolic_cholesky(g, identity_perm(10));
  // Tridiagonal: every column except the last has exactly one off-diagonal.
  EXPECT_EQ(sf.nnz_factor, 10 + 9);
  EXPECT_EQ(sf.flops, 9 * 4 + 1);
}

TEST(SymbolicTest, CliqueIsFullyDense) {
  const vid_t n = 8;
  Graph g = complete_graph(n);
  SymbolicFactor sf = symbolic_cholesky(g, identity_perm(n));
  EXPECT_EQ(sf.nnz_factor, n * (n + 1) / 2);
}

TEST(SymbolicTest, StarLeafFirstNoFill) {
  Graph g = star_graph(8);
  std::vector<vid_t> perm = {1, 2, 3, 4, 5, 6, 7, 0};
  SymbolicFactor sf = symbolic_cholesky(g, perm);
  EXPECT_EQ(sf.nnz_factor, 8 + 7);  // no fill
}

TEST(SymbolicTest, StarCenterFirstFullFill) {
  Graph g = star_graph(8);
  SymbolicFactor sf = symbolic_cholesky(g, identity_perm(8));
  // Eliminating the center connects all leaves: dense factor.
  EXPECT_EQ(sf.nnz_factor, 8 * 9 / 2);
}

class SymbolicBruteForceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SymbolicBruteForceTest, MatchesReferenceOnRandomOrdersAndGraphs) {
  Rng rng(GetParam());
  Graph g = fem2d_tri(5 + static_cast<vid_t>(GetParam() % 4),
                      5 + static_cast<vid_t>(GetParam() % 3), GetParam());
  std::vector<vid_t> perm = rng.permutation(g.num_vertices());
  SymbolicFactor sf = symbolic_cholesky(g, perm);
  std::vector<std::int64_t> ref = brute_force_colcounts(g, perm);
  ASSERT_EQ(sf.col_count.size(), ref.size());
  for (std::size_t j = 0; j < ref.size(); ++j) {
    EXPECT_EQ(sf.col_count[j], ref[j]) << "column " << j;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SymbolicBruteForceTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(SymbolicTest, FlopsAndNnzAreSumAndSumOfSquares) {
  Graph g = grid2d(5, 5);
  Rng rng(3);
  std::vector<vid_t> perm = rng.permutation(25);
  SymbolicFactor sf = symbolic_cholesky(g, perm);
  std::int64_t nnz = 0, flops = 0;
  for (std::int64_t cc : sf.col_count) {
    nnz += cc;
    flops += cc * cc;
  }
  EXPECT_EQ(sf.nnz_factor, nnz);
  EXPECT_EQ(sf.flops, flops);
}

TEST(ConcurrencyTest, ChainHasNoConcurrency) {
  Graph g = path_graph(12);
  // Center-out ordering would chain; natural order of a path gives a chain
  // etree and thus critical path == total flops.
  SymbolicFactor sf = symbolic_cholesky(g, identity_perm(12));
  ConcurrencyProfile cp = concurrency_profile(sf);
  EXPECT_EQ(cp.etree_height, 12);
  EXPECT_EQ(cp.critical_path_flops, sf.flops);
  EXPECT_DOUBLE_EQ(cp.average_width, 1.0);
}

TEST(ConcurrencyTest, BalancedTreeHasWidth) {
  // Star ordered leaves-first: etree of height 2, heavy concurrency.
  Graph g = star_graph(17);
  std::vector<vid_t> perm(17);
  for (vid_t i = 0; i < 16; ++i) perm[static_cast<std::size_t>(i)] = i + 1;
  perm[16] = 0;
  SymbolicFactor sf = symbolic_cholesky(g, perm);
  ConcurrencyProfile cp = concurrency_profile(sf);
  EXPECT_EQ(cp.etree_height, 2);
  EXPECT_GT(cp.average_width, 4.0);
}

TEST(ConcurrencyTest, CriticalPathBoundedByTotal) {
  Graph g = fem2d_tri(8, 8, 5);
  Rng rng(6);
  std::vector<vid_t> perm = rng.permutation(g.num_vertices());
  SymbolicFactor sf = symbolic_cholesky(g, perm);
  ConcurrencyProfile cp = concurrency_profile(sf);
  EXPECT_LE(cp.critical_path_flops, sf.flops);
  EXPECT_GE(cp.average_width, 1.0);
}

}  // namespace
}  // namespace mgp
