#include "order/vertex_cover.hpp"

#include <gtest/gtest.h>

#include "support/rng.hpp"

namespace mgp {
namespace {

BipartiteGraph from_edges(vid_t nl, vid_t nr,
                          const std::vector<std::pair<vid_t, vid_t>>& edges) {
  BipartiteGraph g;
  g.nl = nl;
  g.nr = nr;
  g.xadj.assign(static_cast<std::size_t>(nl) + 1, 0);
  for (auto [l, r] : edges) ++g.xadj[static_cast<std::size_t>(l) + 1];
  for (vid_t i = 0; i < nl; ++i) g.xadj[static_cast<std::size_t>(i) + 1] += g.xadj[static_cast<std::size_t>(i)];
  g.adj.resize(edges.size());
  std::vector<eid_t> cursor(g.xadj.begin(), g.xadj.end() - 1);
  for (auto [l, r] : edges) g.adj[static_cast<std::size_t>(cursor[static_cast<std::size_t>(l)]++)] = r;
  return g;
}

/// Checks that the cover touches every edge and is no larger than the matching.
void expect_valid_minimum_cover(const BipartiteGraph& g) {
  BipartiteMatching m = hopcroft_karp(g);
  VertexCover c = minimum_vertex_cover(g, m);
  EXPECT_EQ(static_cast<vid_t>(c.left.size() + c.right.size()), m.size);
  std::vector<char> in_l(static_cast<std::size_t>(g.nl), 0);
  std::vector<char> in_r(static_cast<std::size_t>(g.nr), 0);
  for (vid_t l : c.left) in_l[static_cast<std::size_t>(l)] = 1;
  for (vid_t r : c.right) in_r[static_cast<std::size_t>(r)] = 1;
  for (vid_t l = 0; l < g.nl; ++l) {
    for (eid_t e = g.xadj[static_cast<std::size_t>(l)];
         e < g.xadj[static_cast<std::size_t>(l) + 1]; ++e) {
      vid_t r = g.adj[static_cast<std::size_t>(e)];
      EXPECT_TRUE(in_l[static_cast<std::size_t>(l)] || in_r[static_cast<std::size_t>(r)])
          << "edge (" << l << "," << r << ") uncovered";
    }
  }
}

TEST(HopcroftKarpTest, PerfectMatchingOnK33) {
  auto g = from_edges(3, 3, {{0, 0}, {0, 1}, {0, 2}, {1, 0}, {1, 1}, {1, 2},
                             {2, 0}, {2, 1}, {2, 2}});
  BipartiteMatching m = hopcroft_karp(g);
  EXPECT_EQ(m.size, 3);
  for (vid_t l = 0; l < 3; ++l) {
    vid_t r = m.match_l[static_cast<std::size_t>(l)];
    ASSERT_NE(r, kInvalidVid);
    EXPECT_EQ(m.match_r[static_cast<std::size_t>(r)], l);
  }
}

TEST(HopcroftKarpTest, StarNeedsOneEdge) {
  // One left vertex connected to all rights: matching size 1.
  auto g = from_edges(1, 5, {{0, 0}, {0, 1}, {0, 2}, {0, 3}, {0, 4}});
  EXPECT_EQ(hopcroft_karp(g).size, 1);
}

TEST(HopcroftKarpTest, AugmentingPathNeeded) {
  // Classic case requiring augmentation: l0-{r0}, l1-{r0,r1}.
  auto g = from_edges(2, 2, {{0, 0}, {1, 0}, {1, 1}});
  EXPECT_EQ(hopcroft_karp(g).size, 2);
}

TEST(HopcroftKarpTest, EmptyGraph) {
  auto g = from_edges(3, 3, {});
  EXPECT_EQ(hopcroft_karp(g).size, 0);
}

TEST(HopcroftKarpTest, LongAlternatingChain) {
  // Path l0-r0-l1-r1-l2-r2: perfect matching exists.
  auto g = from_edges(3, 3, {{0, 0}, {1, 0}, {1, 1}, {2, 1}, {2, 2}});
  EXPECT_EQ(hopcroft_karp(g).size, 3);
}

TEST(VertexCoverTest, CoversK33) {
  expect_valid_minimum_cover(from_edges(
      3, 3, {{0, 0}, {0, 1}, {0, 2}, {1, 0}, {1, 1}, {1, 2}, {2, 0}, {2, 1}, {2, 2}}));
}

TEST(VertexCoverTest, StarCoverIsTheCenter) {
  auto g = from_edges(1, 5, {{0, 0}, {0, 1}, {0, 2}, {0, 3}, {0, 4}});
  BipartiteMatching m = hopcroft_karp(g);
  VertexCover c = minimum_vertex_cover(g, m);
  EXPECT_EQ(c.left.size() + c.right.size(), 1u);
  ASSERT_EQ(c.left.size(), 1u);
  EXPECT_EQ(c.left[0], 0);
}

TEST(VertexCoverTest, IsolatedVerticesExcluded) {
  auto g = from_edges(3, 3, {{1, 1}});
  BipartiteMatching m = hopcroft_karp(g);
  VertexCover c = minimum_vertex_cover(g, m);
  EXPECT_EQ(c.left.size() + c.right.size(), 1u);
}

TEST(VertexCoverTest, RandomGraphsSatisfyKoenig) {
  Rng rng(42);
  for (int trial = 0; trial < 30; ++trial) {
    const vid_t nl = 2 + rng.next_vid(20);
    const vid_t nr = 2 + rng.next_vid(20);
    std::vector<std::pair<vid_t, vid_t>> edges;
    std::set<std::pair<vid_t, vid_t>> seen;
    const int ne = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(nl) * nr / 2 + 1));
    for (int e = 0; e < ne; ++e) {
      std::pair<vid_t, vid_t> p{rng.next_vid(nl), rng.next_vid(nr)};
      if (seen.insert(p).second) edges.push_back(p);
    }
    expect_valid_minimum_cover(from_edges(nl, nr, edges));
  }
}

}  // namespace
}  // namespace mgp
