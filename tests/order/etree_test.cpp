#include "order/etree.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/generators.hpp"
#include "support/rng.hpp"

namespace mgp {
namespace {

std::vector<vid_t> identity_perm(vid_t n) {
  std::vector<vid_t> p(static_cast<std::size_t>(n));
  std::iota(p.begin(), p.end(), vid_t{0});
  return p;
}

TEST(EtreeTest, PathNaturalOrderIsChain) {
  Graph g = path_graph(6);
  std::vector<vid_t> parent = elimination_tree(g, identity_perm(6));
  for (vid_t j = 0; j < 5; ++j) EXPECT_EQ(parent[static_cast<std::size_t>(j)], j + 1);
  EXPECT_EQ(parent[5], kInvalidVid);
  EXPECT_EQ(etree_height(parent), 6);
}

TEST(EtreeTest, StarLeavesFirstIsFlat) {
  // Star with center last: every leaf's parent is the center; height 2.
  Graph g = star_graph(6);  // center 0
  std::vector<vid_t> perm = {1, 2, 3, 4, 5, 0};  // center eliminated last
  std::vector<vid_t> parent = elimination_tree(g, perm);
  for (vid_t j = 0; j < 5; ++j) EXPECT_EQ(parent[static_cast<std::size_t>(j)], 5);
  EXPECT_EQ(parent[5], kInvalidVid);
  EXPECT_EQ(etree_height(parent), 2);
}

TEST(EtreeTest, StarCenterFirstIsChain) {
  // Eliminating the center first connects all leaves: etree is a chain.
  Graph g = star_graph(5);
  std::vector<vid_t> perm = {0, 1, 2, 3, 4};
  std::vector<vid_t> parent = elimination_tree(g, perm);
  EXPECT_EQ(etree_height(parent), 5);
}

TEST(EtreeTest, DisconnectedGraphIsForest) {
  Graph g = empty_graph(4);
  std::vector<vid_t> parent = elimination_tree(g, identity_perm(4));
  for (vid_t j = 0; j < 4; ++j) EXPECT_EQ(parent[static_cast<std::size_t>(j)], kInvalidVid);
  EXPECT_EQ(etree_height(parent), 1);
}

TEST(EtreeTest, ParentsAlwaysLater) {
  Graph g = fem2d_tri(10, 10, 3);
  Rng rng(5);
  std::vector<vid_t> perm = rng.permutation(g.num_vertices());
  std::vector<vid_t> parent = elimination_tree(g, perm);
  for (std::size_t j = 0; j < parent.size(); ++j) {
    if (parent[j] != kInvalidVid) {
      EXPECT_GT(parent[j], static_cast<vid_t>(j));
    }
  }
}

TEST(EtreeTest, ChildrenInverseOfParents) {
  Graph g = grid2d(6, 6);
  Rng rng(6);
  std::vector<vid_t> perm = rng.permutation(g.num_vertices());
  std::vector<vid_t> parent = elimination_tree(g, perm);
  EtreeChildren ch = etree_children(parent);
  vid_t counted = 0;
  for (std::size_t p = 0; p < parent.size(); ++p) {
    for (eid_t e = ch.xadj[p]; e < ch.xadj[p + 1]; ++e) {
      vid_t c = ch.child[static_cast<std::size_t>(e)];
      EXPECT_EQ(parent[static_cast<std::size_t>(c)], static_cast<vid_t>(p));
      ++counted;
    }
  }
  EXPECT_EQ(static_cast<std::size_t>(counted) + ch.roots.size(), parent.size());
  for (vid_t r : ch.roots) EXPECT_EQ(parent[static_cast<std::size_t>(r)], kInvalidVid);
}

TEST(EtreeTest, CliqueIsAlwaysAChain) {
  Graph g = complete_graph(7);
  Rng rng(7);
  std::vector<vid_t> perm = rng.permutation(7);
  std::vector<vid_t> parent = elimination_tree(g, perm);
  // In a clique every column j has parent j+1.
  for (vid_t j = 0; j < 6; ++j) EXPECT_EQ(parent[static_cast<std::size_t>(j)], j + 1);
}

}  // namespace
}  // namespace mgp
