#include "order/separator_refine.hpp"

#include <gtest/gtest.h>

#include "core/multilevel.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/permute.hpp"
#include "metrics/ordering_metrics.hpp"
#include "order/nested_dissection.hpp"

namespace mgp {
namespace {

/// A deliberately fat separator: the whole boundary strip of a grid split.
Separator fat_grid_separator(const Graph& g, vid_t nx, vid_t ny) {
  std::vector<part_t> label(static_cast<std::size_t>(nx * ny));
  for (vid_t v = 0; v < nx * ny; ++v) {
    vid_t x = v % nx;
    if (x < nx / 2 - 1) {
      label[static_cast<std::size_t>(v)] = kSepA;
    } else if (x > nx / 2) {
      label[static_cast<std::size_t>(v)] = kSepB;
    } else {
      label[static_cast<std::size_t>(v)] = kSepS;  // two full columns
    }
  }
  Separator s;
  s.label = std::move(label);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (s.label[static_cast<std::size_t>(v)] == kSepS) {
      ++s.sep_size;
      s.sep_weight += g.vertex_weight(v);
    }
  }
  return s;
}

TEST(SeparatorRefineTest, ShrinksFatSeparator) {
  Graph g = grid2d(12, 12);
  Separator s = fat_grid_separator(g, 12, 12);
  ASSERT_EQ(check_separator(g, s), "");
  ASSERT_EQ(s.sep_size, 24);  // two columns
  Rng rng(1);
  SepRefineOptions opts;
  SepRefineStats stats = refine_separator(g, s, opts, rng);
  EXPECT_EQ(check_separator(g, s), "");
  EXPECT_EQ(s.sep_size, 12);  // one column is enough
  EXPECT_GT(stats.moves, 0);
  EXPECT_EQ(stats.weight_reduction, 12);
}

TEST(SeparatorRefineTest, NeverIncreasesWeight) {
  Graph g = fem2d_tri(16, 16, 5);
  Rng rng(2);
  MultilevelConfig cfg;
  Bisection b = multilevel_bisect(g, g.total_vertex_weight() / 2, cfg, rng).bisection;
  Separator s = vertex_separator_from_bisection(g, b);
  const vwt_t before = s.sep_weight;
  SepRefineOptions opts;
  SepRefineStats stats = refine_separator(g, s, opts, rng);
  EXPECT_LE(s.sep_weight, before);
  EXPECT_EQ(s.sep_weight, before - stats.weight_reduction);
  EXPECT_EQ(check_separator(g, s), "");
}

TEST(SeparatorRefineTest, MinimumCoverSeparatorOftenAlreadyOptimal) {
  // On a clean grid split, the min-cover separator is one column; no
  // improving move exists.
  Graph g = grid2d(10, 10);
  std::vector<part_t> side(100);
  for (vid_t v = 0; v < 100; ++v) side[static_cast<std::size_t>(v)] = (v % 10) < 5 ? 0 : 1;
  Bisection b = make_bisection(g, std::move(side));
  Separator s = vertex_separator_from_bisection(g, b);
  const vid_t before = s.sep_size;
  Rng rng(3);
  SepRefineOptions opts;
  refine_separator(g, s, opts, rng);
  EXPECT_EQ(s.sep_size, before);
}

TEST(SeparatorRefineTest, EmptySeparatorNoop) {
  Graph g = path_graph(4);
  Separator s;
  s.label = {kSepA, kSepA, kSepA, kSepA};
  Rng rng(4);
  SepRefineOptions opts;
  SepRefineStats stats = refine_separator(g, s, opts, rng);
  EXPECT_EQ(stats.moves, 0);
}

TEST(SeparatorRefineTest, WeightedVerticesUseWeights) {
  // Separator holds a heavy vertex; moving it out pulls a light one in.
  GraphBuilder gb(3);
  gb.set_vertex_weight(1, 10);
  gb.add_edge(0, 1);
  gb.add_edge(1, 2);
  Graph g = std::move(gb).build();
  Separator s;
  s.label = {kSepA, kSepS, kSepB};
  s.sep_size = 1;
  s.sep_weight = 10;
  Rng rng(5);
  SepRefineOptions opts;
  opts.max_side_fraction = 1.0;
  refine_separator(g, s, opts, rng);
  // 1 moves to a side (gain 10 - 1 = 9), pulling the other endpoint into S;
  // with no balance ceiling the cascade may absorb that endpoint too.
  EXPECT_LE(s.sep_weight, 1);
  EXPECT_EQ(check_separator(g, s), "");
}

TEST(SeparatorRefineTest, MlndWithRefinementNotWorse) {
  Graph g = grid3d_27(8, 8, 8);
  MultilevelConfig cfg;
  NdOptions plain;
  NdOptions refined;
  refined.refine_separator = true;
  std::int64_t f_plain = 0, f_refined = 0;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    Rng r1(seed), r2(seed);
    f_plain += evaluate_ordering(g, mlnd_order(g, cfg, plain, r1)).flops;
    f_refined += evaluate_ordering(g, mlnd_order(g, cfg, refined, r2)).flops;
  }
  // Refinement consumes RNG draws, so the two runs follow different random
  // streams — per-separator non-increase is asserted exactly above; here we
  // only require the end-to-end aggregate to stay within stream noise.
  EXPECT_LE(static_cast<double>(f_refined), 1.12 * static_cast<double>(f_plain));
}

}  // namespace
}  // namespace mgp
