#include "order/nested_dissection.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/permute.hpp"
#include "order/mmd.hpp"
#include "order/symbolic.hpp"

namespace mgp {
namespace {

std::vector<vid_t> identity_perm(vid_t n) {
  std::vector<vid_t> p(static_cast<std::size_t>(n));
  std::iota(p.begin(), p.end(), vid_t{0});
  return p;
}

TEST(NestedDissectionTest, ProducesValidPermutation) {
  Graph g = fem2d_tri(20, 20, 3);
  Rng rng(1);
  MultilevelConfig cfg;
  NdOptions opts;
  std::vector<vid_t> perm = mlnd_order(g, cfg, opts, rng);
  EXPECT_TRUE(is_permutation(perm));
}

TEST(NestedDissectionTest, SmallGraphDelegatesToMmd) {
  Graph g = grid2d(5, 5);  // 25 < leaf_size
  Rng rng(2);
  MultilevelConfig cfg;
  NdOptions opts;
  std::vector<vid_t> perm = mlnd_order(g, cfg, opts, rng);
  EXPECT_EQ(perm, mmd_order(g));
}

TEST(NestedDissectionTest, SeparatorNumberedLast) {
  // With leaf_size tiny, the top-level separator occupies the last
  // positions; verify by checking that removing the last sep_size vertices
  // disconnects... simpler: top-level property via a long grid: the last
  // few ordered vertices must form a valid separator of the whole graph.
  Graph g = grid2d(8, 32);
  Rng rng(3);
  MultilevelConfig cfg;
  NdOptions opts;
  opts.leaf_size = 16;
  std::vector<vid_t> perm = mlnd_order(g, cfg, opts, rng);
  ASSERT_TRUE(is_permutation(perm));
  // The top separator of an 8x32 grid has ~8 vertices.  Check: the last 12
  // vertices' removal splits the graph (every remaining vertex can only
  // reach < n-12 vertices).
  std::vector<char> removed(static_cast<std::size_t>(g.num_vertices()), 0);
  for (std::size_t i = perm.size() - 12; i < perm.size(); ++i) {
    removed[static_cast<std::size_t>(perm[i])] = 1;
  }
  // BFS from the first ordered vertex among the remainder.
  std::vector<char> seen(static_cast<std::size_t>(g.num_vertices()), 0);
  std::vector<vid_t> queue = {perm[0]};
  seen[static_cast<std::size_t>(perm[0])] = 1;
  std::size_t reached = 1;
  for (std::size_t h = 0; h < queue.size(); ++h) {
    for (vid_t u : g.neighbors(queue[h])) {
      if (!seen[static_cast<std::size_t>(u)] && !removed[static_cast<std::size_t>(u)]) {
        seen[static_cast<std::size_t>(u)] = 1;
        queue.push_back(u);
        ++reached;
      }
    }
  }
  EXPECT_LT(reached, static_cast<std::size_t>(g.num_vertices()) - 12);
}

TEST(NestedDissectionTest, BeatsNaturalOrderOnGrid) {
  Graph g = grid2d(20, 20);
  Rng rng(4);
  MultilevelConfig cfg;
  NdOptions opts;
  std::vector<vid_t> perm = mlnd_order(g, cfg, opts, rng);
  std::int64_t nd = symbolic_cholesky(g, perm).flops;
  std::int64_t nat = symbolic_cholesky(g, identity_perm(g.num_vertices())).flops;
  EXPECT_LT(nd, nat);
}

TEST(NestedDissectionTest, MoreConcurrencyThanMmd) {
  // §4.3: "orderings based on nested dissection produce orderings that have
  // both more concurrency and better balance" than minimum degree.
  Graph g = grid2d(24, 24);
  Rng rng(5);
  MultilevelConfig cfg;
  NdOptions opts;
  std::vector<vid_t> nd_perm = mlnd_order(g, cfg, opts, rng);
  SymbolicFactor nd_sf = symbolic_cholesky(g, nd_perm);
  SymbolicFactor md_sf = symbolic_cholesky(g, mmd_order(g));
  ConcurrencyProfile nd_cp = concurrency_profile(nd_sf);
  ConcurrencyProfile md_cp = concurrency_profile(md_sf);
  EXPECT_GT(nd_cp.average_width, md_cp.average_width * 0.8);
  EXPECT_LE(nd_cp.etree_height, md_cp.etree_height * 2);
}

TEST(NestedDissectionTest, SndProducesValidPermutation) {
  Graph g = fem2d_tri(16, 16, 6);
  Rng rng(6);
  MsbOptions msb;
  NdOptions opts;
  std::vector<vid_t> perm = snd_order(g, msb, opts, rng);
  EXPECT_TRUE(is_permutation(perm));
}

TEST(NestedDissectionTest, BoundarySeparatorAblationStillValid) {
  Graph g = fem2d_tri(14, 14, 7);
  Rng rng(7);
  MultilevelConfig cfg;
  NdOptions opts;
  opts.boundary_separator = true;
  std::vector<vid_t> perm = mlnd_order(g, cfg, opts, rng);
  EXPECT_TRUE(is_permutation(perm));
}

TEST(NestedDissectionTest, VertexCoverSeparatorNotWorseThanBoundary) {
  Graph g = grid2d(18, 18);
  MultilevelConfig cfg;
  NdOptions vc_opts;
  NdOptions bd_opts;
  bd_opts.boundary_separator = true;
  std::int64_t vc_total = 0, bd_total = 0;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    Rng r1(seed), r2(seed);
    vc_total += symbolic_cholesky(g, mlnd_order(g, cfg, vc_opts, r1)).flops;
    bd_total += symbolic_cholesky(g, mlnd_order(g, cfg, bd_opts, r2)).flops;
  }
  EXPECT_LE(vc_total, bd_total * 11 / 10);  // min cover should not lose by >10%
}

TEST(NestedDissectionTest, DisconnectedGraphHandled) {
  // Two disjoint grids.
  GraphBuilder b(32);
  auto idx = [](vid_t x, vid_t y, vid_t off) { return off + y * 4 + x; };
  for (vid_t off : {0, 16}) {
    for (vid_t y = 0; y < 4; ++y) {
      for (vid_t x = 0; x < 4; ++x) {
        if (x + 1 < 4) b.add_edge(idx(x, y, off), idx(x + 1, y, off));
        if (y + 1 < 4) b.add_edge(idx(x, y, off), idx(x, y + 1, off));
      }
    }
  }
  Graph g = std::move(b).build();
  Rng rng(8);
  MultilevelConfig cfg;
  NdOptions opts;
  opts.leaf_size = 8;
  std::vector<vid_t> perm = mlnd_order(g, cfg, opts, rng);
  EXPECT_TRUE(is_permutation(perm));
}

TEST(NestedDissectionTest, DeterministicGivenSeed) {
  Graph g = fem2d_tri(15, 15, 9);
  MultilevelConfig cfg;
  NdOptions opts;
  Rng r1(10), r2(10);
  EXPECT_EQ(mlnd_order(g, cfg, opts, r1), mlnd_order(g, cfg, opts, r2));
}

}  // namespace
}  // namespace mgp
