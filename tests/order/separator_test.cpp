#include "order/separator.hpp"

#include <gtest/gtest.h>

#include "core/multilevel.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace mgp {
namespace {

TEST(SeparatorTest, PathMiddleEdgeYieldsOneVertex) {
  Graph g = path_graph(6);
  Bisection b = make_bisection(g, {0, 0, 0, 1, 1, 1});
  Separator s = vertex_separator_from_bisection(g, b);
  EXPECT_EQ(check_separator(g, s), "");
  EXPECT_EQ(s.sep_size, 1);
  // The separator is one endpoint of the cut edge (2,3).
  EXPECT_TRUE(s.label[2] == kSepS || s.label[3] == kSepS);
}

TEST(SeparatorTest, GridSeparatorIsOneColumn) {
  // 6x6 grid split into left/right halves: 6 cut edges, min cover = 6
  // vertices (one column).
  Graph g = grid2d(6, 6);
  std::vector<part_t> side(36);
  for (vid_t v = 0; v < 36; ++v) side[static_cast<std::size_t>(v)] = (v % 6) < 3 ? 0 : 1;
  Bisection b = make_bisection(g, std::move(side));
  Separator s = vertex_separator_from_bisection(g, b);
  EXPECT_EQ(check_separator(g, s), "");
  EXPECT_EQ(s.sep_size, 6);
}

TEST(SeparatorTest, MinCoverNotLargerThanBoundary) {
  Graph g = fem2d_tri(20, 20, 3);
  Rng rng(1);
  MultilevelConfig cfg;
  Bisection b = multilevel_bisect(g, g.total_vertex_weight() / 2, cfg, rng).bisection;
  Separator vc = vertex_separator_from_bisection(g, b);
  Separator bd = boundary_separator_from_bisection(g, b);
  EXPECT_EQ(check_separator(g, vc), "");
  EXPECT_EQ(check_separator(g, bd), "");
  EXPECT_LE(vc.sep_size, bd.sep_size);
  EXPECT_GT(vc.sep_size, 0);
}

TEST(SeparatorTest, SeparatorWeightSums) {
  GraphBuilder gb(4);
  gb.set_vertex_weight(1, 7);
  gb.add_edge(0, 1);
  gb.add_edge(1, 2);
  gb.add_edge(2, 3);
  Graph g = std::move(gb).build();
  Bisection b = make_bisection(g, {0, 0, 1, 1});
  Separator s = vertex_separator_from_bisection(g, b);
  EXPECT_EQ(s.sep_size, 1);
  // Separator is vertex 1 (weight 7) or 2 (weight 1); weight must match.
  vid_t sep_v = s.label[1] == kSepS ? 1 : 2;
  EXPECT_EQ(s.sep_weight, g.vertex_weight(sep_v));
}

TEST(SeparatorTest, ZeroCutHasEmptySeparator) {
  GraphBuilder gb(6);
  gb.add_edge(0, 1);
  gb.add_edge(1, 2);
  gb.add_edge(3, 4);
  gb.add_edge(4, 5);
  Graph g = std::move(gb).build();
  Bisection b = make_bisection(g, {0, 0, 0, 1, 1, 1});
  ASSERT_EQ(b.cut, 0);
  Separator s = vertex_separator_from_bisection(g, b);
  EXPECT_EQ(s.sep_size, 0);
  EXPECT_EQ(check_separator(g, s), "");
}

TEST(SeparatorTest, CheckSeparatorDetectsABEdge) {
  Graph g = path_graph(2);
  Separator s;
  s.label = {kSepA, kSepB};
  EXPECT_NE(check_separator(g, s), "");
}

TEST(SeparatorTest, CompleteBipartiteSeparatorIsSmallerSide) {
  // K_{3,7} split along the bipartition: min vertex cover = 3 (left side).
  Graph g = complete_bipartite(3, 7);
  std::vector<part_t> side(10, 1);
  for (vid_t v = 0; v < 3; ++v) side[static_cast<std::size_t>(v)] = 0;
  Bisection b = make_bisection(g, std::move(side));
  Separator s = vertex_separator_from_bisection(g, b);
  EXPECT_EQ(s.sep_size, 3);
  EXPECT_EQ(check_separator(g, s), "");
}

class SeparatorPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeparatorPropertyTest, RandomBisectionsYieldValidSeparators) {
  Graph g = fem2d_tri(15, 15, GetParam());
  Rng rng(GetParam());
  std::vector<part_t> side(static_cast<std::size_t>(g.num_vertices()));
  for (auto& x : side) x = static_cast<part_t>(rng.next_below(2));
  Bisection b = make_bisection(g, std::move(side));
  Separator s = vertex_separator_from_bisection(g, b);
  EXPECT_EQ(check_separator(g, s), "");
  // König: separator no larger than the number of cut edges.
  EXPECT_LE(static_cast<ewt_t>(s.sep_size), b.cut);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeparatorPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace mgp
