#include "order/mmd.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/permute.hpp"
#include "order/symbolic.hpp"

namespace mgp {
namespace {

std::vector<vid_t> identity_perm(vid_t n) {
  std::vector<vid_t> p(static_cast<std::size_t>(n));
  std::iota(p.begin(), p.end(), vid_t{0});
  return p;
}

class MmdGraphTest : public ::testing::TestWithParam<const char*> {
 protected:
  Graph make() const {
    std::string name = GetParam();
    if (name == "path") return path_graph(50);
    if (name == "cycle") return cycle_graph(41);
    if (name == "grid") return grid2d(12, 13);
    if (name == "fem") return fem2d_tri(14, 14, 3);
    if (name == "grid3d") return grid3d(6, 6, 6);
    if (name == "grid3d27") return grid3d_27(5, 5, 5);
    if (name == "star") return star_graph(30);
    if (name == "clique") return complete_graph(15);
    if (name == "isolated") return empty_graph(12);
    if (name == "bipartite") return complete_bipartite(6, 9);
    return path_graph(3);
  }
};

TEST_P(MmdGraphTest, ProducesValidPermutation) {
  Graph g = make();
  std::vector<vid_t> perm = mmd_order(g);
  EXPECT_TRUE(is_permutation(perm));
}

TEST_P(MmdGraphTest, SingleEliminationAlsoValid) {
  Graph g = make();
  MmdOptions opts;
  opts.multiple = false;
  EXPECT_TRUE(is_permutation(mmd_order(g, opts)));
}

TEST_P(MmdGraphTest, NoSupervariablesAlsoValid) {
  Graph g = make();
  MmdOptions opts;
  opts.supervariables = false;
  EXPECT_TRUE(is_permutation(mmd_order(g, opts)));
}

TEST_P(MmdGraphTest, Deterministic) {
  Graph g = make();
  EXPECT_EQ(mmd_order(g), mmd_order(g));
}

INSTANTIATE_TEST_SUITE_P(Graphs, MmdGraphTest,
                         ::testing::Values("path", "cycle", "grid", "fem", "grid3d",
                                           "grid3d27", "star", "clique", "isolated",
                                           "bipartite"));

TEST(MmdTest, PathYieldsZeroFill) {
  // Minimum degree on a path always eliminates endpoints (degree 1), which
  // produces no fill at all.
  Graph g = path_graph(40);
  SymbolicFactor sf = symbolic_cholesky(g, mmd_order(g));
  EXPECT_EQ(sf.nnz_factor, 40 + 39);
}

TEST(MmdTest, StarEliminatesLeavesFirst) {
  Graph g = star_graph(20);
  std::vector<vid_t> perm = mmd_order(g);
  // Center (vertex 0, degree 19) must come last.
  EXPECT_EQ(perm.back(), 0);
  SymbolicFactor sf = symbolic_cholesky(g, perm);
  EXPECT_EQ(sf.nnz_factor, 20 + 19);  // no fill
}

TEST(MmdTest, TreeYieldsZeroFill) {
  // Any tree admits a perfect (no-fill) elimination; minimum degree finds it
  // because a tree always has a leaf.
  GraphBuilder b(15);
  for (vid_t v = 1; v < 15; ++v) b.add_edge(v, (v - 1) / 2);  // complete binary tree
  Graph g = std::move(b).build();
  SymbolicFactor sf = symbolic_cholesky(g, mmd_order(g));
  EXPECT_EQ(sf.nnz_factor, 15 + 14);
}

TEST(MmdTest, BeatsNaturalOrderOnGrid) {
  Graph g = grid2d(15, 15);
  SymbolicFactor natural = symbolic_cholesky(g, identity_perm(g.num_vertices()));
  SymbolicFactor md = symbolic_cholesky(g, mmd_order(g));
  EXPECT_LT(md.flops, natural.flops);
  EXPECT_LT(md.nnz_factor, natural.nnz_factor);
}

TEST(MmdTest, BeatsRandomOrderOnFemMesh) {
  Graph g = fem2d_tri(16, 16, 9);
  Rng rng(4);
  SymbolicFactor random_order = symbolic_cholesky(g, rng.permutation(g.num_vertices()));
  SymbolicFactor md = symbolic_cholesky(g, mmd_order(g));
  EXPECT_LT(md.flops, random_order.flops / 2);
}

TEST(MmdTest, CliqueAnyOrderSameFill) {
  Graph g = complete_graph(10);
  SymbolicFactor sf = symbolic_cholesky(g, mmd_order(g));
  EXPECT_EQ(sf.nnz_factor, 10 * 11 / 2);
}

TEST(MmdTest, SupervariablesDoNotChangeQualityClass) {
  Graph g = grid3d(5, 5, 5);
  MmdOptions with;
  MmdOptions without;
  without.supervariables = false;
  std::int64_t f_with = symbolic_cholesky(g, mmd_order(g, with)).flops;
  std::int64_t f_without = symbolic_cholesky(g, mmd_order(g, without)).flops;
  // Same algorithm family: within 3x of each other.
  EXPECT_LT(f_with, 3 * f_without);
  EXPECT_LT(f_without, 3 * f_with);
}

TEST(MmdTest, MultipleVsSingleEliminationSameQualityClass) {
  Graph g = fem2d_tri(12, 12, 7);
  MmdOptions multiple;
  MmdOptions single;
  single.multiple = false;
  std::int64_t fm = symbolic_cholesky(g, mmd_order(g, multiple)).flops;
  std::int64_t fs = symbolic_cholesky(g, mmd_order(g, single)).flops;
  EXPECT_LT(fm, 3 * fs);
  EXPECT_LT(fs, 3 * fm);
}

TEST(MmdTest, EmptyGraph) {
  EXPECT_TRUE(mmd_order(empty_graph(0)).empty());
}

TEST(MmdTest, SingleVertex) {
  std::vector<vid_t> p = mmd_order(empty_graph(1));
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0], 0);
}

}  // namespace
}  // namespace mgp
