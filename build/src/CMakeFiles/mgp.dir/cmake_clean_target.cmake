file(REMOVE_RECURSE
  "libmgp.a"
)
