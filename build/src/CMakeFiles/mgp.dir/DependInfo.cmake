
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cholesky/conjugate_gradient.cpp" "src/CMakeFiles/mgp.dir/cholesky/conjugate_gradient.cpp.o" "gcc" "src/CMakeFiles/mgp.dir/cholesky/conjugate_gradient.cpp.o.d"
  "/root/repo/src/cholesky/sparse_cholesky.cpp" "src/CMakeFiles/mgp.dir/cholesky/sparse_cholesky.cpp.o" "gcc" "src/CMakeFiles/mgp.dir/cholesky/sparse_cholesky.cpp.o.d"
  "/root/repo/src/coarsen/contract.cpp" "src/CMakeFiles/mgp.dir/coarsen/contract.cpp.o" "gcc" "src/CMakeFiles/mgp.dir/coarsen/contract.cpp.o.d"
  "/root/repo/src/coarsen/matching.cpp" "src/CMakeFiles/mgp.dir/coarsen/matching.cpp.o" "gcc" "src/CMakeFiles/mgp.dir/coarsen/matching.cpp.o.d"
  "/root/repo/src/coarsen/parallel_matching.cpp" "src/CMakeFiles/mgp.dir/coarsen/parallel_matching.cpp.o" "gcc" "src/CMakeFiles/mgp.dir/coarsen/parallel_matching.cpp.o.d"
  "/root/repo/src/core/chaco_ml.cpp" "src/CMakeFiles/mgp.dir/core/chaco_ml.cpp.o" "gcc" "src/CMakeFiles/mgp.dir/core/chaco_ml.cpp.o.d"
  "/root/repo/src/core/config.cpp" "src/CMakeFiles/mgp.dir/core/config.cpp.o" "gcc" "src/CMakeFiles/mgp.dir/core/config.cpp.o.d"
  "/root/repo/src/core/kway.cpp" "src/CMakeFiles/mgp.dir/core/kway.cpp.o" "gcc" "src/CMakeFiles/mgp.dir/core/kway.cpp.o.d"
  "/root/repo/src/core/kway_direct.cpp" "src/CMakeFiles/mgp.dir/core/kway_direct.cpp.o" "gcc" "src/CMakeFiles/mgp.dir/core/kway_direct.cpp.o.d"
  "/root/repo/src/core/multilevel.cpp" "src/CMakeFiles/mgp.dir/core/multilevel.cpp.o" "gcc" "src/CMakeFiles/mgp.dir/core/multilevel.cpp.o.d"
  "/root/repo/src/geom/delaunay.cpp" "src/CMakeFiles/mgp.dir/geom/delaunay.cpp.o" "gcc" "src/CMakeFiles/mgp.dir/geom/delaunay.cpp.o.d"
  "/root/repo/src/geom/geometric_bisect.cpp" "src/CMakeFiles/mgp.dir/geom/geometric_bisect.cpp.o" "gcc" "src/CMakeFiles/mgp.dir/geom/geometric_bisect.cpp.o.d"
  "/root/repo/src/geom/geometry.cpp" "src/CMakeFiles/mgp.dir/geom/geometry.cpp.o" "gcc" "src/CMakeFiles/mgp.dir/geom/geometry.cpp.o.d"
  "/root/repo/src/graph/builder.cpp" "src/CMakeFiles/mgp.dir/graph/builder.cpp.o" "gcc" "src/CMakeFiles/mgp.dir/graph/builder.cpp.o.d"
  "/root/repo/src/graph/components.cpp" "src/CMakeFiles/mgp.dir/graph/components.cpp.o" "gcc" "src/CMakeFiles/mgp.dir/graph/components.cpp.o.d"
  "/root/repo/src/graph/csr.cpp" "src/CMakeFiles/mgp.dir/graph/csr.cpp.o" "gcc" "src/CMakeFiles/mgp.dir/graph/csr.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/CMakeFiles/mgp.dir/graph/generators.cpp.o" "gcc" "src/CMakeFiles/mgp.dir/graph/generators.cpp.o.d"
  "/root/repo/src/graph/io.cpp" "src/CMakeFiles/mgp.dir/graph/io.cpp.o" "gcc" "src/CMakeFiles/mgp.dir/graph/io.cpp.o.d"
  "/root/repo/src/graph/partition_io.cpp" "src/CMakeFiles/mgp.dir/graph/partition_io.cpp.o" "gcc" "src/CMakeFiles/mgp.dir/graph/partition_io.cpp.o.d"
  "/root/repo/src/graph/permute.cpp" "src/CMakeFiles/mgp.dir/graph/permute.cpp.o" "gcc" "src/CMakeFiles/mgp.dir/graph/permute.cpp.o.d"
  "/root/repo/src/initpart/bisection_state.cpp" "src/CMakeFiles/mgp.dir/initpart/bisection_state.cpp.o" "gcc" "src/CMakeFiles/mgp.dir/initpart/bisection_state.cpp.o.d"
  "/root/repo/src/initpart/graph_grow.cpp" "src/CMakeFiles/mgp.dir/initpart/graph_grow.cpp.o" "gcc" "src/CMakeFiles/mgp.dir/initpart/graph_grow.cpp.o.d"
  "/root/repo/src/initpart/spectral_init.cpp" "src/CMakeFiles/mgp.dir/initpart/spectral_init.cpp.o" "gcc" "src/CMakeFiles/mgp.dir/initpart/spectral_init.cpp.o.d"
  "/root/repo/src/metrics/ordering_metrics.cpp" "src/CMakeFiles/mgp.dir/metrics/ordering_metrics.cpp.o" "gcc" "src/CMakeFiles/mgp.dir/metrics/ordering_metrics.cpp.o.d"
  "/root/repo/src/metrics/partition_metrics.cpp" "src/CMakeFiles/mgp.dir/metrics/partition_metrics.cpp.o" "gcc" "src/CMakeFiles/mgp.dir/metrics/partition_metrics.cpp.o.d"
  "/root/repo/src/order/etree.cpp" "src/CMakeFiles/mgp.dir/order/etree.cpp.o" "gcc" "src/CMakeFiles/mgp.dir/order/etree.cpp.o.d"
  "/root/repo/src/order/mmd.cpp" "src/CMakeFiles/mgp.dir/order/mmd.cpp.o" "gcc" "src/CMakeFiles/mgp.dir/order/mmd.cpp.o.d"
  "/root/repo/src/order/nested_dissection.cpp" "src/CMakeFiles/mgp.dir/order/nested_dissection.cpp.o" "gcc" "src/CMakeFiles/mgp.dir/order/nested_dissection.cpp.o.d"
  "/root/repo/src/order/separator.cpp" "src/CMakeFiles/mgp.dir/order/separator.cpp.o" "gcc" "src/CMakeFiles/mgp.dir/order/separator.cpp.o.d"
  "/root/repo/src/order/separator_refine.cpp" "src/CMakeFiles/mgp.dir/order/separator_refine.cpp.o" "gcc" "src/CMakeFiles/mgp.dir/order/separator_refine.cpp.o.d"
  "/root/repo/src/order/symbolic.cpp" "src/CMakeFiles/mgp.dir/order/symbolic.cpp.o" "gcc" "src/CMakeFiles/mgp.dir/order/symbolic.cpp.o.d"
  "/root/repo/src/order/vertex_cover.cpp" "src/CMakeFiles/mgp.dir/order/vertex_cover.cpp.o" "gcc" "src/CMakeFiles/mgp.dir/order/vertex_cover.cpp.o.d"
  "/root/repo/src/refine/kl.cpp" "src/CMakeFiles/mgp.dir/refine/kl.cpp.o" "gcc" "src/CMakeFiles/mgp.dir/refine/kl.cpp.o.d"
  "/root/repo/src/refine/refine.cpp" "src/CMakeFiles/mgp.dir/refine/refine.cpp.o" "gcc" "src/CMakeFiles/mgp.dir/refine/refine.cpp.o.d"
  "/root/repo/src/spectral/fiedler.cpp" "src/CMakeFiles/mgp.dir/spectral/fiedler.cpp.o" "gcc" "src/CMakeFiles/mgp.dir/spectral/fiedler.cpp.o.d"
  "/root/repo/src/spectral/jacobi.cpp" "src/CMakeFiles/mgp.dir/spectral/jacobi.cpp.o" "gcc" "src/CMakeFiles/mgp.dir/spectral/jacobi.cpp.o.d"
  "/root/repo/src/spectral/lanczos.cpp" "src/CMakeFiles/mgp.dir/spectral/lanczos.cpp.o" "gcc" "src/CMakeFiles/mgp.dir/spectral/lanczos.cpp.o.d"
  "/root/repo/src/spectral/laplacian.cpp" "src/CMakeFiles/mgp.dir/spectral/laplacian.cpp.o" "gcc" "src/CMakeFiles/mgp.dir/spectral/laplacian.cpp.o.d"
  "/root/repo/src/spectral/msb.cpp" "src/CMakeFiles/mgp.dir/spectral/msb.cpp.o" "gcc" "src/CMakeFiles/mgp.dir/spectral/msb.cpp.o.d"
  "/root/repo/src/support/bucket_queue.cpp" "src/CMakeFiles/mgp.dir/support/bucket_queue.cpp.o" "gcc" "src/CMakeFiles/mgp.dir/support/bucket_queue.cpp.o.d"
  "/root/repo/src/support/rng.cpp" "src/CMakeFiles/mgp.dir/support/rng.cpp.o" "gcc" "src/CMakeFiles/mgp.dir/support/rng.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
