# Empty dependencies file for mgp.
# This may be replaced when dependencies are built.
