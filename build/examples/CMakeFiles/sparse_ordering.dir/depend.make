# Empty dependencies file for sparse_ordering.
# This may be replaced when dependencies are built.
