file(REMOVE_RECURSE
  "CMakeFiles/sparse_ordering.dir/sparse_ordering.cpp.o"
  "CMakeFiles/sparse_ordering.dir/sparse_ordering.cpp.o.d"
  "sparse_ordering"
  "sparse_ordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sparse_ordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
