file(REMOVE_RECURSE
  "CMakeFiles/fem_decomposition.dir/fem_decomposition.cpp.o"
  "CMakeFiles/fem_decomposition.dir/fem_decomposition.cpp.o.d"
  "fem_decomposition"
  "fem_decomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fem_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
