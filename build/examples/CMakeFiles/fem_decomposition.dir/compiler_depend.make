# Empty compiler generated dependencies file for fem_decomposition.
# This may be replaced when dependencies are built.
