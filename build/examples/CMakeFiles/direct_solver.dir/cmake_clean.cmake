file(REMOVE_RECURSE
  "CMakeFiles/direct_solver.dir/direct_solver.cpp.o"
  "CMakeFiles/direct_solver.dir/direct_solver.cpp.o.d"
  "direct_solver"
  "direct_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/direct_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
