# Empty dependencies file for direct_solver.
# This may be replaced when dependencies are built.
