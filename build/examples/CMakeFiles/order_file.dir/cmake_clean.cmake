file(REMOVE_RECURSE
  "CMakeFiles/order_file.dir/order_file.cpp.o"
  "CMakeFiles/order_file.dir/order_file.cpp.o.d"
  "order_file"
  "order_file.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/order_file.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
