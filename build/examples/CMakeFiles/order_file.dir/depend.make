# Empty dependencies file for order_file.
# This may be replaced when dependencies are built.
