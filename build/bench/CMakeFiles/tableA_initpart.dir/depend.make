# Empty dependencies file for tableA_initpart.
# This may be replaced when dependencies are built.
