file(REMOVE_RECURSE
  "CMakeFiles/tableA_initpart.dir/tableA_initpart.cpp.o"
  "CMakeFiles/tableA_initpart.dir/tableA_initpart.cpp.o.d"
  "tableA_initpart"
  "tableA_initpart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tableA_initpart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
