file(REMOVE_RECURSE
  "CMakeFiles/table2_matching.dir/table2_matching.cpp.o"
  "CMakeFiles/table2_matching.dir/table2_matching.cpp.o.d"
  "table2_matching"
  "table2_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
