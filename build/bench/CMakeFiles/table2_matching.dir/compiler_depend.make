# Empty compiler generated dependencies file for table2_matching.
# This may be replaced when dependencies are built.
