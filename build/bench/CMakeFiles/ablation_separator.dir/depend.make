# Empty dependencies file for ablation_separator.
# This may be replaced when dependencies are built.
