file(REMOVE_RECURSE
  "CMakeFiles/ablation_separator.dir/ablation_separator.cpp.o"
  "CMakeFiles/ablation_separator.dir/ablation_separator.cpp.o.d"
  "ablation_separator"
  "ablation_separator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_separator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
