file(REMOVE_RECURSE
  "CMakeFiles/fig3_vs_chacoml.dir/fig3_vs_chacoml.cpp.o"
  "CMakeFiles/fig3_vs_chacoml.dir/fig3_vs_chacoml.cpp.o.d"
  "fig3_vs_chacoml"
  "fig3_vs_chacoml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_vs_chacoml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
