# Empty dependencies file for fig3_vs_chacoml.
# This may be replaced when dependencies are built.
