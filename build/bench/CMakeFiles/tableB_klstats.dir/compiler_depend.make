# Empty compiler generated dependencies file for tableB_klstats.
# This may be replaced when dependencies are built.
