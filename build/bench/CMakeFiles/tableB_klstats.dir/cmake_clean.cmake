file(REMOVE_RECURSE
  "CMakeFiles/tableB_klstats.dir/tableB_klstats.cpp.o"
  "CMakeFiles/tableB_klstats.dir/tableB_klstats.cpp.o.d"
  "tableB_klstats"
  "tableB_klstats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tableB_klstats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
