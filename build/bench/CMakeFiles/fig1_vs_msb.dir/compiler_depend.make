# Empty compiler generated dependencies file for fig1_vs_msb.
# This may be replaced when dependencies are built.
