file(REMOVE_RECURSE
  "CMakeFiles/fig1_vs_msb.dir/fig1_vs_msb.cpp.o"
  "CMakeFiles/fig1_vs_msb.dir/fig1_vs_msb.cpp.o.d"
  "fig1_vs_msb"
  "fig1_vs_msb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_vs_msb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
