# Empty compiler generated dependencies file for table4_refine.
# This may be replaced when dependencies are built.
