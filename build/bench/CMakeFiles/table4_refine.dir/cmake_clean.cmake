file(REMOVE_RECURSE
  "CMakeFiles/table4_refine.dir/table4_refine.cpp.o"
  "CMakeFiles/table4_refine.dir/table4_refine.cpp.o.d"
  "table4_refine"
  "table4_refine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_refine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
