file(REMOVE_RECURSE
  "CMakeFiles/table3_noref.dir/table3_noref.cpp.o"
  "CMakeFiles/table3_noref.dir/table3_noref.cpp.o.d"
  "table3_noref"
  "table3_noref.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_noref.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
