# Empty dependencies file for table3_noref.
# This may be replaced when dependencies are built.
