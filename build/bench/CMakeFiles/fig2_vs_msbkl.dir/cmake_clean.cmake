file(REMOVE_RECURSE
  "CMakeFiles/fig2_vs_msbkl.dir/fig2_vs_msbkl.cpp.o"
  "CMakeFiles/fig2_vs_msbkl.dir/fig2_vs_msbkl.cpp.o.d"
  "fig2_vs_msbkl"
  "fig2_vs_msbkl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_vs_msbkl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
