# Empty compiler generated dependencies file for fig2_vs_msbkl.
# This may be replaced when dependencies are built.
