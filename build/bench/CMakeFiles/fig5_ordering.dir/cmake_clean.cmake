file(REMOVE_RECURSE
  "CMakeFiles/fig5_ordering.dir/fig5_ordering.cpp.o"
  "CMakeFiles/fig5_ordering.dir/fig5_ordering.cpp.o.d"
  "fig5_ordering"
  "fig5_ordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_ordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
