# Empty dependencies file for fig5_ordering.
# This may be replaced when dependencies are built.
