# Empty compiler generated dependencies file for figK_kway_direct.
# This may be replaced when dependencies are built.
