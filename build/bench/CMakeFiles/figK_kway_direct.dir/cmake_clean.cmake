file(REMOVE_RECURSE
  "CMakeFiles/figK_kway_direct.dir/figK_kway_direct.cpp.o"
  "CMakeFiles/figK_kway_direct.dir/figK_kway_direct.cpp.o.d"
  "figK_kway_direct"
  "figK_kway_direct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figK_kway_direct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
