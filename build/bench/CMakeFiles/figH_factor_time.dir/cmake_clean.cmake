file(REMOVE_RECURSE
  "CMakeFiles/figH_factor_time.dir/figH_factor_time.cpp.o"
  "CMakeFiles/figH_factor_time.dir/figH_factor_time.cpp.o.d"
  "figH_factor_time"
  "figH_factor_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figH_factor_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
