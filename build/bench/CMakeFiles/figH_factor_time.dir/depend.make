# Empty dependencies file for figH_factor_time.
# This may be replaced when dependencies are built.
