file(REMOVE_RECURSE
  "CMakeFiles/figG_geometric.dir/figG_geometric.cpp.o"
  "CMakeFiles/figG_geometric.dir/figG_geometric.cpp.o.d"
  "figG_geometric"
  "figG_geometric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figG_geometric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
