# Empty dependencies file for figG_geometric.
# This may be replaced when dependencies are built.
