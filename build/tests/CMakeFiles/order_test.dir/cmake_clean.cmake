file(REMOVE_RECURSE
  "CMakeFiles/order_test.dir/order/etree_test.cpp.o"
  "CMakeFiles/order_test.dir/order/etree_test.cpp.o.d"
  "CMakeFiles/order_test.dir/order/mmd_test.cpp.o"
  "CMakeFiles/order_test.dir/order/mmd_test.cpp.o.d"
  "CMakeFiles/order_test.dir/order/nested_dissection_test.cpp.o"
  "CMakeFiles/order_test.dir/order/nested_dissection_test.cpp.o.d"
  "CMakeFiles/order_test.dir/order/separator_refine_test.cpp.o"
  "CMakeFiles/order_test.dir/order/separator_refine_test.cpp.o.d"
  "CMakeFiles/order_test.dir/order/separator_test.cpp.o"
  "CMakeFiles/order_test.dir/order/separator_test.cpp.o.d"
  "CMakeFiles/order_test.dir/order/symbolic_test.cpp.o"
  "CMakeFiles/order_test.dir/order/symbolic_test.cpp.o.d"
  "CMakeFiles/order_test.dir/order/vertex_cover_test.cpp.o"
  "CMakeFiles/order_test.dir/order/vertex_cover_test.cpp.o.d"
  "order_test"
  "order_test.pdb"
  "order_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/order_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
