
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/order/etree_test.cpp" "tests/CMakeFiles/order_test.dir/order/etree_test.cpp.o" "gcc" "tests/CMakeFiles/order_test.dir/order/etree_test.cpp.o.d"
  "/root/repo/tests/order/mmd_test.cpp" "tests/CMakeFiles/order_test.dir/order/mmd_test.cpp.o" "gcc" "tests/CMakeFiles/order_test.dir/order/mmd_test.cpp.o.d"
  "/root/repo/tests/order/nested_dissection_test.cpp" "tests/CMakeFiles/order_test.dir/order/nested_dissection_test.cpp.o" "gcc" "tests/CMakeFiles/order_test.dir/order/nested_dissection_test.cpp.o.d"
  "/root/repo/tests/order/separator_refine_test.cpp" "tests/CMakeFiles/order_test.dir/order/separator_refine_test.cpp.o" "gcc" "tests/CMakeFiles/order_test.dir/order/separator_refine_test.cpp.o.d"
  "/root/repo/tests/order/separator_test.cpp" "tests/CMakeFiles/order_test.dir/order/separator_test.cpp.o" "gcc" "tests/CMakeFiles/order_test.dir/order/separator_test.cpp.o.d"
  "/root/repo/tests/order/symbolic_test.cpp" "tests/CMakeFiles/order_test.dir/order/symbolic_test.cpp.o" "gcc" "tests/CMakeFiles/order_test.dir/order/symbolic_test.cpp.o.d"
  "/root/repo/tests/order/vertex_cover_test.cpp" "tests/CMakeFiles/order_test.dir/order/vertex_cover_test.cpp.o" "gcc" "tests/CMakeFiles/order_test.dir/order/vertex_cover_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mgp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
