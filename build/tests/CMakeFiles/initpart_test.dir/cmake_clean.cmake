file(REMOVE_RECURSE
  "CMakeFiles/initpart_test.dir/initpart/bisection_state_test.cpp.o"
  "CMakeFiles/initpart_test.dir/initpart/bisection_state_test.cpp.o.d"
  "CMakeFiles/initpart_test.dir/initpart/graph_grow_test.cpp.o"
  "CMakeFiles/initpart_test.dir/initpart/graph_grow_test.cpp.o.d"
  "CMakeFiles/initpart_test.dir/initpart/spectral_init_test.cpp.o"
  "CMakeFiles/initpart_test.dir/initpart/spectral_init_test.cpp.o.d"
  "initpart_test"
  "initpart_test.pdb"
  "initpart_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/initpart_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
