# Empty compiler generated dependencies file for initpart_test.
# This may be replaced when dependencies are built.
