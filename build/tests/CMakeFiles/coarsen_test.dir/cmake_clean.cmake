file(REMOVE_RECURSE
  "CMakeFiles/coarsen_test.dir/coarsen/contract_test.cpp.o"
  "CMakeFiles/coarsen_test.dir/coarsen/contract_test.cpp.o.d"
  "CMakeFiles/coarsen_test.dir/coarsen/matching_test.cpp.o"
  "CMakeFiles/coarsen_test.dir/coarsen/matching_test.cpp.o.d"
  "CMakeFiles/coarsen_test.dir/coarsen/parallel_matching_test.cpp.o"
  "CMakeFiles/coarsen_test.dir/coarsen/parallel_matching_test.cpp.o.d"
  "coarsen_test"
  "coarsen_test.pdb"
  "coarsen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coarsen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
