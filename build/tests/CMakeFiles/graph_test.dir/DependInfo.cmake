
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/graph/builder_test.cpp" "tests/CMakeFiles/graph_test.dir/graph/builder_test.cpp.o" "gcc" "tests/CMakeFiles/graph_test.dir/graph/builder_test.cpp.o.d"
  "/root/repo/tests/graph/components_test.cpp" "tests/CMakeFiles/graph_test.dir/graph/components_test.cpp.o" "gcc" "tests/CMakeFiles/graph_test.dir/graph/components_test.cpp.o.d"
  "/root/repo/tests/graph/csr_test.cpp" "tests/CMakeFiles/graph_test.dir/graph/csr_test.cpp.o" "gcc" "tests/CMakeFiles/graph_test.dir/graph/csr_test.cpp.o.d"
  "/root/repo/tests/graph/generators_test.cpp" "tests/CMakeFiles/graph_test.dir/graph/generators_test.cpp.o" "gcc" "tests/CMakeFiles/graph_test.dir/graph/generators_test.cpp.o.d"
  "/root/repo/tests/graph/io_test.cpp" "tests/CMakeFiles/graph_test.dir/graph/io_test.cpp.o" "gcc" "tests/CMakeFiles/graph_test.dir/graph/io_test.cpp.o.d"
  "/root/repo/tests/graph/partition_io_test.cpp" "tests/CMakeFiles/graph_test.dir/graph/partition_io_test.cpp.o" "gcc" "tests/CMakeFiles/graph_test.dir/graph/partition_io_test.cpp.o.d"
  "/root/repo/tests/graph/permute_test.cpp" "tests/CMakeFiles/graph_test.dir/graph/permute_test.cpp.o" "gcc" "tests/CMakeFiles/graph_test.dir/graph/permute_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mgp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
