file(REMOVE_RECURSE
  "CMakeFiles/spectral_test.dir/spectral/fiedler_test.cpp.o"
  "CMakeFiles/spectral_test.dir/spectral/fiedler_test.cpp.o.d"
  "CMakeFiles/spectral_test.dir/spectral/jacobi_test.cpp.o"
  "CMakeFiles/spectral_test.dir/spectral/jacobi_test.cpp.o.d"
  "CMakeFiles/spectral_test.dir/spectral/lanczos_test.cpp.o"
  "CMakeFiles/spectral_test.dir/spectral/lanczos_test.cpp.o.d"
  "CMakeFiles/spectral_test.dir/spectral/laplacian_test.cpp.o"
  "CMakeFiles/spectral_test.dir/spectral/laplacian_test.cpp.o.d"
  "CMakeFiles/spectral_test.dir/spectral/msb_test.cpp.o"
  "CMakeFiles/spectral_test.dir/spectral/msb_test.cpp.o.d"
  "spectral_test"
  "spectral_test.pdb"
  "spectral_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spectral_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
