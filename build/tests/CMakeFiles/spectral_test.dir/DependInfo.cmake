
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/spectral/fiedler_test.cpp" "tests/CMakeFiles/spectral_test.dir/spectral/fiedler_test.cpp.o" "gcc" "tests/CMakeFiles/spectral_test.dir/spectral/fiedler_test.cpp.o.d"
  "/root/repo/tests/spectral/jacobi_test.cpp" "tests/CMakeFiles/spectral_test.dir/spectral/jacobi_test.cpp.o" "gcc" "tests/CMakeFiles/spectral_test.dir/spectral/jacobi_test.cpp.o.d"
  "/root/repo/tests/spectral/lanczos_test.cpp" "tests/CMakeFiles/spectral_test.dir/spectral/lanczos_test.cpp.o" "gcc" "tests/CMakeFiles/spectral_test.dir/spectral/lanczos_test.cpp.o.d"
  "/root/repo/tests/spectral/laplacian_test.cpp" "tests/CMakeFiles/spectral_test.dir/spectral/laplacian_test.cpp.o" "gcc" "tests/CMakeFiles/spectral_test.dir/spectral/laplacian_test.cpp.o.d"
  "/root/repo/tests/spectral/msb_test.cpp" "tests/CMakeFiles/spectral_test.dir/spectral/msb_test.cpp.o" "gcc" "tests/CMakeFiles/spectral_test.dir/spectral/msb_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mgp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
