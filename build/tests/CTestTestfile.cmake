# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/coarsen_test[1]_include.cmake")
include("/root/repo/build/tests/initpart_test[1]_include.cmake")
include("/root/repo/build/tests/refine_test[1]_include.cmake")
include("/root/repo/build/tests/spectral_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/order_test[1]_include.cmake")
include("/root/repo/build/tests/cholesky_test[1]_include.cmake")
include("/root/repo/build/tests/geom_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/umbrella_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
