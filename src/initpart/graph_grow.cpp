#include "initpart/graph_grow.hpp"

#include <cassert>
#include <utility>

namespace mgp {
namespace {

/// Picks a random vertex still labelled 1 (for re-seeding growth after a
/// component is exhausted).  Linear probe from a random start.
vid_t random_unreached(const Graph& g, std::span<const part_t> side, Rng& rng) {
  const vid_t n = g.num_vertices();
  vid_t start = rng.next_vid(n);
  for (vid_t k = 0; k < n; ++k) {
    vid_t v = (start + k) % n;
    if (side[static_cast<std::size_t>(v)] == 1) return v;
  }
  return kInvalidVid;
}

/// Runs `grow` `trials` times into ws.trial, keeping the smallest cut in
/// `best` by swapping buffers (first trial always wins over whatever `best`
/// held on entry — same selection as the historical "best starts empty"
/// loop, with no per-trial allocation).
template <typename GrowFn>
void best_of_trials(const Graph& g, vwt_t target0, int trials, Rng& rng,
                    GrowScratch& ws, Bisection& best,
                    std::vector<ewt_t>* trial_cuts, GrowFn grow) {
  bool have_best = false;
  for (int t = 0; t < trials; ++t) {
    grow(g, target0, rng, ws, ws.trial);
    if (trial_cuts) trial_cuts->push_back(ws.trial.cut);
    if (!have_best || ws.trial.cut < best.cut) {
      std::swap(best.side, ws.trial.side);
      best.part_weight[0] = ws.trial.part_weight[0];
      best.part_weight[1] = ws.trial.part_weight[1];
      best.cut = ws.trial.cut;
      have_best = true;
    }
  }
  if (!have_best) {
    best.side.clear();
    best.part_weight[0] = 0;
    best.part_weight[1] = 0;
    best.cut = 0;
  }
}

}  // namespace

void ggp_grow_into(const Graph& g, vwt_t target0, Rng& rng, GrowScratch& ws,
                   Bisection& out) {
  const vid_t n = g.num_vertices();
  out.side.assign(static_cast<std::size_t>(n), 1);
  if (n == 0) {
    refresh_bisection(g, out);
    return;
  }

  std::vector<vid_t>& queue = ws.bfs_queue;
  queue.clear();
  queue.reserve(static_cast<std::size_t>(n));
  vwt_t grown = 0;
  std::size_t head = 0;

  vid_t seed = rng.next_vid(n);
  out.side[static_cast<std::size_t>(seed)] = 0;
  grown += g.vertex_weight(seed);
  queue.push_back(seed);

  while (grown < target0) {
    if (head == queue.size()) {
      vid_t reseed = random_unreached(g, out.side, rng);
      if (reseed == kInvalidVid) break;  // everything absorbed
      out.side[static_cast<std::size_t>(reseed)] = 0;
      grown += g.vertex_weight(reseed);
      queue.push_back(reseed);
      continue;
    }
    vid_t u = queue[head++];
    for (vid_t v : g.neighbors(u)) {
      if (out.side[static_cast<std::size_t>(v)] == 1) {
        out.side[static_cast<std::size_t>(v)] = 0;
        grown += g.vertex_weight(v);
        queue.push_back(v);
        if (grown >= target0) break;
      }
    }
  }
  refresh_bisection(g, out);
}

Bisection ggp_grow_once(const Graph& g, vwt_t target0, Rng& rng) {
  GrowScratch ws;
  Bisection out;
  ggp_grow_into(g, target0, rng, ws, out);
  return out;
}

void ggp_bisect_into(const Graph& g, vwt_t target0, int trials, Rng& rng,
                     GrowScratch& ws, Bisection& best,
                     std::vector<ewt_t>* trial_cuts) {
  best_of_trials(g, target0, trials, rng, ws, best, trial_cuts,
                 [](const Graph& gg, vwt_t t0, Rng& r, GrowScratch& w, Bisection& out) {
                   ggp_grow_into(gg, t0, r, w, out);
                 });
}

Bisection ggp_bisect(const Graph& g, vwt_t target0, int trials, Rng& rng,
                     std::vector<ewt_t>* trial_cuts) {
  GrowScratch ws;
  Bisection best;
  ggp_bisect_into(g, target0, trials, rng, ws, best, trial_cuts);
  return best;
}

void gggp_grow_into(const Graph& g, vwt_t target0, Rng& rng, GrowScratch& ws,
                    Bisection& out) {
  const vid_t n = g.num_vertices();
  out.side.assign(static_cast<std::size_t>(n), 1);
  if (n == 0) {
    refresh_bisection(g, out);
    return;
  }

  // Gain of absorbing v into side 0: (weight of edges to side 0) - (weight
  // of edges to side 1).  Only frontier vertices live in the queue.
  BucketQueue& pq = ws.pq;
  pq.reset(n, std::max<ewt_t>(1, g.max_weighted_degree()));

  vwt_t grown = 0;
  auto absorb = [&](vid_t u) {
    out.side[static_cast<std::size_t>(u)] = 0;
    grown += g.vertex_weight(u);
    auto nbrs = g.neighbors(u);
    auto wgts = g.edge_weights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      vid_t v = nbrs[i];
      if (out.side[static_cast<std::size_t>(v)] == 0) continue;
      // v gains 2*w(u,v): the edge (u,v) moves from "to side 1" to "to side 0".
      if (pq.contains(v)) {
        pq.update(v, pq.gain_of(v) + 2 * wgts[i]);
      } else {
        // First contact with the growing region: gain = w(to 0) - w(to 1)
        // = 2*w(u,v) - weighted_degree(v).
        ewt_t deg = 0;
        for (ewt_t w : g.edge_weights(v)) deg += w;
        pq.insert(v, 2 * wgts[i] - deg);
      }
    }
  };

  absorb(rng.next_vid(n));
  while (grown < target0) {
    if (pq.empty()) {
      vid_t reseed = random_unreached(g, out.side, rng);
      if (reseed == kInvalidVid) break;
      absorb(reseed);
      continue;
    }
    absorb(pq.pop_max());
  }
  refresh_bisection(g, out);
}

Bisection gggp_grow_once(const Graph& g, vwt_t target0, Rng& rng) {
  GrowScratch ws;
  Bisection out;
  gggp_grow_into(g, target0, rng, ws, out);
  return out;
}

void gggp_bisect_into(const Graph& g, vwt_t target0, int trials, Rng& rng,
                      GrowScratch& ws, Bisection& best,
                      std::vector<ewt_t>* trial_cuts) {
  best_of_trials(g, target0, trials, rng, ws, best, trial_cuts,
                 [](const Graph& gg, vwt_t t0, Rng& r, GrowScratch& w, Bisection& out) {
                   gggp_grow_into(gg, t0, r, w, out);
                 });
}

Bisection gggp_bisect(const Graph& g, vwt_t target0, int trials, Rng& rng,
                      std::vector<ewt_t>* trial_cuts) {
  GrowScratch ws;
  Bisection best;
  gggp_bisect_into(g, target0, trials, rng, ws, best, trial_cuts);
  return best;
}

}  // namespace mgp
