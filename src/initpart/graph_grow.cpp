#include "initpart/graph_grow.hpp"

#include <cassert>

#include "support/bucket_queue.hpp"

namespace mgp {
namespace {

/// Picks a random vertex still labelled 1 (for re-seeding growth after a
/// component is exhausted).  Linear probe from a random start.
vid_t random_unreached(const Graph& g, std::span<const part_t> side, Rng& rng) {
  const vid_t n = g.num_vertices();
  vid_t start = rng.next_vid(n);
  for (vid_t k = 0; k < n; ++k) {
    vid_t v = (start + k) % n;
    if (side[static_cast<std::size_t>(v)] == 1) return v;
  }
  return kInvalidVid;
}

}  // namespace

Bisection ggp_grow_once(const Graph& g, vwt_t target0, Rng& rng) {
  const vid_t n = g.num_vertices();
  std::vector<part_t> side(static_cast<std::size_t>(n), 1);
  if (n == 0) return make_bisection(g, std::move(side));

  std::vector<vid_t> queue;
  queue.reserve(static_cast<std::size_t>(n));
  vwt_t grown = 0;
  std::size_t head = 0;

  vid_t seed = rng.next_vid(n);
  side[static_cast<std::size_t>(seed)] = 0;
  grown += g.vertex_weight(seed);
  queue.push_back(seed);

  while (grown < target0) {
    if (head == queue.size()) {
      vid_t reseed = random_unreached(g, side, rng);
      if (reseed == kInvalidVid) break;  // everything absorbed
      side[static_cast<std::size_t>(reseed)] = 0;
      grown += g.vertex_weight(reseed);
      queue.push_back(reseed);
      continue;
    }
    vid_t u = queue[head++];
    for (vid_t v : g.neighbors(u)) {
      if (side[static_cast<std::size_t>(v)] == 1) {
        side[static_cast<std::size_t>(v)] = 0;
        grown += g.vertex_weight(v);
        queue.push_back(v);
        if (grown >= target0) break;
      }
    }
  }
  return make_bisection(g, std::move(side));
}

Bisection ggp_bisect(const Graph& g, vwt_t target0, int trials, Rng& rng,
                     std::vector<ewt_t>* trial_cuts) {
  Bisection best;
  for (int t = 0; t < trials; ++t) {
    Bisection b = ggp_grow_once(g, target0, rng);
    if (trial_cuts) trial_cuts->push_back(b.cut);
    if (best.empty() || b.cut < best.cut) best = std::move(b);
  }
  return best;
}

Bisection gggp_grow_once(const Graph& g, vwt_t target0, Rng& rng) {
  const vid_t n = g.num_vertices();
  std::vector<part_t> side(static_cast<std::size_t>(n), 1);
  if (n == 0) return make_bisection(g, std::move(side));

  // Gain of absorbing v into side 0: (weight of edges to side 0) - (weight
  // of edges to side 1).  Only frontier vertices live in the queue.
  BucketQueue pq;
  pq.reset(n, std::max<ewt_t>(1, g.max_weighted_degree()));

  vwt_t grown = 0;
  auto absorb = [&](vid_t u) {
    side[static_cast<std::size_t>(u)] = 0;
    grown += g.vertex_weight(u);
    auto nbrs = g.neighbors(u);
    auto wgts = g.edge_weights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      vid_t v = nbrs[i];
      if (side[static_cast<std::size_t>(v)] == 0) continue;
      // v gains 2*w(u,v): the edge (u,v) moves from "to side 1" to "to side 0".
      if (pq.contains(v)) {
        pq.update(v, pq.gain_of(v) + 2 * wgts[i]);
      } else {
        // First contact with the growing region: gain = w(to 0) - w(to 1)
        // = 2*w(u,v) - weighted_degree(v).
        ewt_t deg = 0;
        for (ewt_t w : g.edge_weights(v)) deg += w;
        pq.insert(v, 2 * wgts[i] - deg);
      }
    }
  };

  absorb(rng.next_vid(n));
  while (grown < target0) {
    if (pq.empty()) {
      vid_t reseed = random_unreached(g, side, rng);
      if (reseed == kInvalidVid) break;
      absorb(reseed);
      continue;
    }
    absorb(pq.pop_max());
  }
  return make_bisection(g, std::move(side));
}

Bisection gggp_bisect(const Graph& g, vwt_t target0, int trials, Rng& rng,
                      std::vector<ewt_t>* trial_cuts) {
  Bisection best;
  for (int t = 0; t < trials; ++t) {
    Bisection b = gggp_grow_once(g, target0, rng);
    if (trial_cuts) trial_cuts->push_back(b.cut);
    if (best.empty() || b.cut < best.cut) best = std::move(b);
  }
  return best;
}

}  // namespace mgp
