// Graph-growing initial bisection of the coarsest graph (§3.2).
//
//   GGP  — "randomly selects a vertex v and grows a region around it in a
//          breadth-first fashion until half of the vertex weight has been
//          included."
//   GGGP — greedy variant: also grows from a random seed, but always absorbs
//          the frontier vertex that leads to the smallest increase in the
//          edge-cut (largest gain), tracked with the FM bucket queue.
//
// Both run several trials from different random seeds and keep the best cut
// (the paper used 10 trials for GGP and 5 for GGGP).
#pragma once

#include <vector>

#include "initpart/bisection_state.hpp"
#include "support/bucket_queue.hpp"
#include "support/rng.hpp"

namespace mgp {

/// Reusable scratch for the graph-growing bisectors: the BFS frontier (GGP),
/// the gain queue (GGGP), and a per-trial labelling.  Keeping one of these
/// warm makes every *_into call below allocation-free.
struct GrowScratch {
  std::vector<vid_t> bfs_queue;
  BucketQueue pq;
  Bisection trial;

  std::size_t memory_bytes() const {
    return bfs_queue.capacity() * sizeof(vid_t) +
           trial.side.capacity() * sizeof(part_t);
  }
};

/// One GGP bisection: grows side 0 until its weight reaches `target0`.
/// Disconnected graphs are handled by re-seeding in an untouched component.
Bisection ggp_grow_once(const Graph& g, vwt_t target0, Rng& rng);

/// Best of `trials` GGP bisections (smallest cut).  When `trial_cuts` is
/// non-null, every trial's cut is appended in trial order (observability;
/// never changes the selection).
Bisection ggp_bisect(const Graph& g, vwt_t target0, int trials, Rng& rng,
                     std::vector<ewt_t>* trial_cuts = nullptr);

/// One GGGP bisection (greedy growth).
Bisection gggp_grow_once(const Graph& g, vwt_t target0, Rng& rng);

/// Best of `trials` GGGP bisections (smallest cut).  `trial_cuts` as above.
Bisection gggp_bisect(const Graph& g, vwt_t target0, int trials, Rng& rng,
                      std::vector<ewt_t>* trial_cuts = nullptr);

/// Allocation-free forms: scratch comes from `ws` and the result lands in
/// `out`/`best`, whose buffers are recycled across calls.  Identical RNG
/// draws and byte-identical results to the forms above (which wrap these).
void ggp_grow_into(const Graph& g, vwt_t target0, Rng& rng, GrowScratch& ws,
                   Bisection& out);
void ggp_bisect_into(const Graph& g, vwt_t target0, int trials, Rng& rng,
                     GrowScratch& ws, Bisection& best,
                     std::vector<ewt_t>* trial_cuts = nullptr);
void gggp_grow_into(const Graph& g, vwt_t target0, Rng& rng, GrowScratch& ws,
                    Bisection& out);
void gggp_bisect_into(const Graph& g, vwt_t target0, int trials, Rng& rng,
                      GrowScratch& ws, Bisection& best,
                      std::vector<ewt_t>* trial_cuts = nullptr);

}  // namespace mgp
