#include "initpart/spectral_init.hpp"

#include <algorithm>
#include <numeric>

namespace mgp {

Bisection split_at_weighted_median(const Graph& g, std::span<const double> values,
                                   vwt_t target0) {
  std::vector<vid_t> order;
  Bisection out;
  split_at_weighted_median_into(g, values, target0, order, out);
  return out;
}

void split_at_weighted_median_into(const Graph& g, std::span<const double> values,
                                   vwt_t target0, std::vector<vid_t>& order,
                                   Bisection& out) {
  const vid_t n = g.num_vertices();
  order.resize(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), vid_t{0});
  std::sort(order.begin(), order.end(), [&](vid_t a, vid_t b) {
    double va = values[static_cast<std::size_t>(a)];
    double vb = values[static_cast<std::size_t>(b)];
    if (va != vb) return va < vb;
    return a < b;  // deterministic tie-break
  });

  out.side.assign(static_cast<std::size_t>(n), 1);
  vwt_t grown = 0;
  for (vid_t v : order) {
    if (grown >= target0) break;
    out.side[static_cast<std::size_t>(v)] = 0;
    grown += g.vertex_weight(v);
  }
  refresh_bisection(g, out);
}

Bisection spectral_bisect(const Graph& g, vwt_t target0,
                          std::span<const double> warm_start,
                          const FiedlerOptions& opts, Rng& rng) {
  FiedlerResult f = fiedler_vector(g, warm_start, opts, rng);
  return split_at_weighted_median(g, f.vector, target0);
}

}  // namespace mgp
