// Two-way partition representation shared by the partitioning and
// refinement phases.
//
// A bisection is a 0/1 label per vertex plus cached part weights and
// edge-cut.  The k-way driver (core/kway) produces general partitions by
// recursive bisection, so this struct — not a k-way table — is the workhorse
// of the whole library.
#pragma once

#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "support/types.hpp"

namespace mgp {

struct Bisection {
  std::vector<part_t> side;   ///< side[v] in {0, 1}
  vwt_t part_weight[2] = {0, 0};
  ewt_t cut = 0;

  bool empty() const { return side.empty(); }
};

/// Edge-cut of an arbitrary labelling (each cut edge's weight counted once).
ewt_t compute_cut(const Graph& g, std::span<const part_t> side);

/// Builds a Bisection from a labelling, computing weights and cut. O(|E|).
Bisection make_bisection(const Graph& g, std::vector<part_t> side);

/// Recomputes b's cached part weights and cut from b.side (already sized and
/// labelled) without touching the heap.  make_bisection == move side in,
/// then refresh.
void refresh_bisection(const Graph& g, Bisection& b);

/// max(part_weight) / ideal(part weight given targets); 1.0 is perfect.
/// `target0` is the desired weight of side 0 (defaults to half).
double bisection_balance(const Graph& g, const Bisection& b, vwt_t target0);

/// Consistency check for tests: recomputes weights and cut from scratch and
/// compares with the cached values; also validates labels.  Returns an
/// empty string when consistent.
std::string check_bisection(const Graph& g, const Bisection& b);

}  // namespace mgp
