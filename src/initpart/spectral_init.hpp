// Spectral bisection (SBP) of a graph (§3.2 option (a)).
//
// Computes the Fiedler vector and splits at the weighted median: vertices
// are sorted by their Fiedler coordinate and side 0 takes the prefix whose
// vertex weight first reaches the target.  Used both as an initial
// partitioner for the coarsest graph (the paper's SBP / Chaco-ML) and as
// the per-level bisection of the MSB and SND baselines.
#pragma once

#include <span>

#include "initpart/bisection_state.hpp"
#include "spectral/fiedler.hpp"
#include "support/rng.hpp"

namespace mgp {

/// Bisects g by its Fiedler vector.  `warm_start` optionally seeds the
/// eigensolver (size n) — this is how MSB propagates spectral information
/// up the multilevel hierarchy.
Bisection spectral_bisect(const Graph& g, vwt_t target0,
                          std::span<const double> warm_start,
                          const FiedlerOptions& opts, Rng& rng);

/// Splits an arbitrary embedding at its weighted median.  Exposed for tests
/// and for MSB (which carries the Fiedler vector itself).
Bisection split_at_weighted_median(const Graph& g, std::span<const double> values,
                                   vwt_t target0);

/// Allocation-free form: the sort order comes from `order_scratch` and the
/// result lands in `out`, both caller-owned and reused.  Byte-identical to
/// the form above (which wraps this).  The eigensolve itself still
/// allocates — only the split is workspace-managed.
void split_at_weighted_median_into(const Graph& g, std::span<const double> values,
                                   vwt_t target0, std::vector<vid_t>& order_scratch,
                                   Bisection& out);

}  // namespace mgp
