#include "initpart/bisection_state.hpp"

#include <algorithm>
#include <sstream>

namespace mgp {

ewt_t compute_cut(const Graph& g, std::span<const part_t> side) {
  ewt_t cut2 = 0;  // each cut edge counted from both endpoints
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    auto nbrs = g.neighbors(u);
    auto wgts = g.edge_weights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (side[static_cast<std::size_t>(u)] != side[static_cast<std::size_t>(nbrs[i])]) {
        cut2 += wgts[i];
      }
    }
  }
  return cut2 / 2;
}

Bisection make_bisection(const Graph& g, std::vector<part_t> side) {
  Bisection b;
  b.side = std::move(side);
  refresh_bisection(g, b);
  return b;
}

void refresh_bisection(const Graph& g, Bisection& b) {
  b.part_weight[0] = 0;
  b.part_weight[1] = 0;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    b.part_weight[b.side[static_cast<std::size_t>(v)]] += g.vertex_weight(v);
  }
  b.cut = compute_cut(g, b.side);
}

double bisection_balance(const Graph& g, const Bisection& b, vwt_t target0) {
  const vwt_t total = g.total_vertex_weight();
  if (total == 0) return 1.0;
  const vwt_t target1 = total - target0;
  double r0 = target0 > 0 ? static_cast<double>(b.part_weight[0]) / static_cast<double>(target0)
                          : (b.part_weight[0] > 0 ? 1e9 : 1.0);
  double r1 = target1 > 0 ? static_cast<double>(b.part_weight[1]) / static_cast<double>(target1)
                          : (b.part_weight[1] > 0 ? 1e9 : 1.0);
  return std::max(r0, r1);
}

std::string check_bisection(const Graph& g, const Bisection& b) {
  std::ostringstream err;
  if (b.side.size() != static_cast<std::size_t>(g.num_vertices())) {
    err << "side size " << b.side.size() << " != n " << g.num_vertices();
    return err.str();
  }
  vwt_t w[2] = {0, 0};
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    part_t s = b.side[static_cast<std::size_t>(v)];
    if (s != 0 && s != 1) {
      err << "vertex " << v << " has label " << s;
      return err.str();
    }
    w[s] += g.vertex_weight(v);
  }
  if (w[0] != b.part_weight[0] || w[1] != b.part_weight[1]) {
    err << "cached part weights (" << b.part_weight[0] << ", " << b.part_weight[1]
        << ") != recomputed (" << w[0] << ", " << w[1] << ")";
    return err.str();
  }
  ewt_t cut = compute_cut(g, b.side);
  if (cut != b.cut) {
    err << "cached cut " << b.cut << " != recomputed " << cut;
    return err.str();
  }
  return {};
}

}  // namespace mgp
