// Deterministic parallel k-way refinement (extension).
//
// Generalizes the round-synchronous propose/commit scheme of
// refine/parallel_refine.* from 2 parts to k — the k-way local search of
// Sanders & Schulz ("Engineering Multilevel Graph Partitioning Algorithms")
// run under the parallel shape of Holtgrewe et al. (PAPERS.md):
//
//   repeat:  (1) PROPOSE — shard the vertex range into *fixed* chunks (a
//                pure function of |V|, never of the pool size) and, in
//                parallel, compute each unlocked boundary vertex's best
//                target part against connectivity tables and part weights
//                *frozen at round start*; positive-gain candidates land in
//                their chunk's slot of the proposal table;
//            (2) COMMIT — walk the proposals in ascending vertex order on
//                one thread, recompute each gain against the *committed*
//                labelling, re-check the balance ceiling and floor against
//                the committed part weights, and apply the survivors
//                (locking them; a vertex moves at most once per pass);
//   until a round commits nothing.
//
// Candidate selection is per-vertex over frozen state, so the proposal set
// is independent of chunk scheduling; fixed contiguous chunks read back in
// chunk order make the commit order ascending-by-vertex-id; the commit pass
// is sequential; and no randomness is drawn.  Partitions are therefore
// byte-identical across pool sizes — a null pool runs the identical rounds
// inline over the identical chunk boundaries.  Every committed move has
// strictly positive recomputed gain and locks its vertex, so rounds
// terminate.  DESIGN.md §10 carries the full argument.
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "graph/csr.hpp"
#include "support/thread_pool.hpp"

namespace mgp {

/// Reusable scratch for kway_parallel_refine.  Default-constructed empty;
/// warms to the (n, k) high-water size on first use, after which calls of
/// no-larger shape perform zero heap allocations.
struct KwayRefineWorkspace {
  std::vector<vwt_t> frozen_pwgts;  ///< k: part weights at round start
  std::vector<ewt_t> conn;          ///< (chunks+1)*k: per-chunk + commit scratch
  std::vector<part_t> touched;      ///< (chunks+1)*k: parts seen per vertex
  std::vector<vid_t> cand;          ///< step*chunks: proposal vertices
  std::vector<part_t> cand_to;      ///< step*chunks: proposal targets
  std::vector<vid_t> cand_count;    ///< chunks
  std::vector<char> locked;         ///< n: move-at-most-once-per-pass locks
  std::vector<std::pair<ewt_t, vid_t>> bal;  ///< balance candidates (gain, v)

  /// Heap bytes currently reserved (capacity, not size).
  std::size_t bytes_reserved() const;
};

struct KwayRefineResult {
  int passes = 0;             ///< outer unlock passes run
  int rounds = 0;             ///< propose/commit rounds across all passes
  vid_t proposals = 0;        ///< candidates emitted by propose sweeps
  vid_t moves = 0;            ///< commits applied
  vid_t conflict_rejects = 0; ///< proposals rejected at commit re-validation
  ewt_t cut_reduction = 0;    ///< total gain of committed moves
};

/// Parallel k-way refinement of `part` in place.  `pwgts` (size k) must hold
/// the labelling's current part weights on entry and is maintained
/// incrementally — never recomputed from scratch.  A move must keep its
/// target at or below `max_part_weight` and its source at or above
/// `min_part_weight` (uniformly for every k, 2 included, so refinement can
/// never empty a part; pass 0 to disable the floor).  `max_passes` bounds
/// the outer unlock passes; each pass runs propose/commit rounds to
/// quiescence, and the call stops early once a whole pass commits nothing.
///
/// Draws no randomness.  Byte-identical result for every pool size,
/// including a null `pool` (inline execution of the same rounds).
KwayRefineResult kway_parallel_refine(const Graph& g, std::span<part_t> part,
                                      part_t k, std::span<vwt_t> pwgts,
                                      vwt_t max_part_weight,
                                      vwt_t min_part_weight, int max_passes,
                                      ThreadPool* pool,
                                      KwayRefineWorkspace& ws);

/// Frontier-restricted variant for incremental repartitioning (DESIGN.md
/// §11): only vertices with `active[v] != 0` are examined by the propose
/// sweeps, and every committed move activates the moved vertex and its
/// neighbours — the search grows outward from the seed frontier exactly as
/// far as it keeps finding improving moves.  Activation happens in the
/// sequential commit pass, so the mask evolution (and the result) is
/// byte-identical for every pool size.  `active` must have size n and is
/// mutated in place; an all-ones mask reproduces kway_parallel_refine byte
/// for byte (a wrong-sized mask falls back to the unrestricted refiner).
KwayRefineResult kway_parallel_refine_active(
    const Graph& g, std::span<part_t> part, part_t k, std::span<vwt_t> pwgts,
    vwt_t max_part_weight, vwt_t min_part_weight, int max_passes,
    ThreadPool* pool, KwayRefineWorkspace& ws, std::span<char> active);

/// Explicit balance phase: refinement only ever makes strictly-positive-gain
/// moves, so a partition that *arrives* overweight (a lumpy coarsest-level
/// initial partition, or compounded recursive-bisection slack) would stay
/// overweight forever.  This drains every part above `max_part_weight` by
/// moving vertices out of overweight parts, cheapest cut damage first (all
/// candidates sorted by gain, re-validated at apply time), into the best
/// part with capacity — accepting negative gains.  A move never pushes its
/// target above the ceiling, so total excess strictly decreases and the
/// loop terminates.  Sequential and randomness-free: byte-deterministic
/// regardless of pool size.  Returns the move count.
vid_t kway_balance(const Graph& g, std::span<part_t> part, part_t k,
                   std::span<vwt_t> pwgts, vwt_t max_part_weight,
                   vwt_t min_part_weight, KwayRefineWorkspace& ws);

}  // namespace mgp
