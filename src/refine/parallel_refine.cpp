#include "refine/parallel_refine.hpp"

#include <algorithm>
#include <array>

#include "obs/trace.hpp"

namespace mgp {
namespace {

/// Shard count for the propose sweeps.  Fixed — chunk boundaries must be a
/// pure function of |V| so the concatenated proposal list (and with it the
/// commit order) is identical for every pool size.  More chunks than pool
/// threads just queue; 16 keeps every machine size busy without slicing the
/// scan too thin.
constexpr int kProposeChunks = 16;

/// Safety cap on propose/commit rounds.  Termination is already guaranteed
/// (every commit locks its vertex), but the tail rounds harvest next to
/// nothing; the cap bounds the worst case deterministically.
constexpr int kMaxRounds = 64;

}  // namespace

KlStats parallel_bgr_refine(const Graph& g, Bisection& b, vwt_t target0,
                            const KlOptions& opts, ThreadPool& pool,
                            std::vector<obs::KlPassReport>* pass_log,
                            KlWorkspace* ext_ws) {
  const vid_t n = g.num_vertices();
  KlStats stats;
  stats.passes = 1;
  if (n == 0) return stats;
  obs::Span span("refine.parallel");
  span.arg("n", n);

  KlWorkspace local_ws;
  KlWorkspace& ws = ext_ws ? *ext_ws : local_ws;
  ws.ed.resize(static_cast<std::size_t>(n));
  ws.id.resize(static_cast<std::size_t>(n));
  ws.locked.resize(static_cast<std::size_t>(n));
  const vid_t step = (n + kProposeChunks - 1) / kProposeChunks;
  ws.cand.resize(static_cast<std::size_t>(step) * kProposeChunks);
  ws.cand_count.resize(kProposeChunks);
  // A warm workspace may arrive from a larger graph.  Chunks that are empty
  // here (c * step >= n, which happens for small n) are never visited by
  // parallel_for_chunks, so stale counts from the previous graph would feed
  // out-of-range vertex ids to the commit pass — zero them all up front.
  std::fill(ws.cand_count.begin(), ws.cand_count.end(), vid_t{0});

  // --- Gain initialisation (parallel O(|E|)).  Each chunk writes only its
  // own ed/id range and reads the labelling, which is frozen until commit.
  std::array<vwt_t, kProposeChunks> chunk_max_vwgt{};
  pool.parallel_for_chunks(n, kProposeChunks, [&](int c, vid_t begin, vid_t end) {
    vwt_t mx = 0;
    for (vid_t u = begin; u < end; ++u) {
      ewt_t ed = 0, id = 0;
      auto nbrs = g.neighbors(u);
      auto wgts = g.edge_weights(u);
      const part_t su = b.side[static_cast<std::size_t>(u)];
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        if (b.side[static_cast<std::size_t>(nbrs[i])] == su) {
          id += wgts[i];
        } else {
          ed += wgts[i];
        }
      }
      ws.ed[static_cast<std::size_t>(u)] = ed;
      ws.id[static_cast<std::size_t>(u)] = id;
      mx = std::max(mx, g.vertex_weight(u));
    }
    chunk_max_vwgt[static_cast<std::size_t>(c)] = mx;
  });
  vwt_t max_vwgt = 0;
  for (vwt_t mx : chunk_max_vwgt) max_vwgt = std::max(max_vwgt, mx);
  std::fill(ws.locked.begin(), ws.locked.end(), char{0});

  // KL's accept bound: a side may never exceed max(entry weight, target +
  // slack).  Re-validated against the committed weights at every commit.
  const vwt_t total = g.total_vertex_weight();
  const vwt_t target[2] = {target0, total - target0};
  const vwt_t slack =
      static_cast<vwt_t>(opts.weight_slack_factor * static_cast<double>(max_vwgt));
  const vwt_t limit[2] = {
      std::max(b.part_weight[0], target[0] + slack),
      std::max(b.part_weight[1], target[1] + slack),
  };

  const ewt_t cut_at_entry = b.cut;
  for (int round = 0; round < kMaxRounds; ++round) {
    ++stats.parallel_rounds;
    const ewt_t round_start_cut = b.cut;
    const vid_t rejects_before = stats.conflict_rejects;

    // --- Propose: per-vertex predicate over frozen gain tables; chunks
    // write disjoint slots, so the sweep is race-free and its result is
    // independent of scheduling.
    {
      obs::Span propose_span("refine.propose");
      pool.parallel_for_chunks(n, kProposeChunks, [&](int c, vid_t begin, vid_t end) {
        vid_t cnt = 0;
        vid_t* slot = ws.cand.data() + static_cast<std::size_t>(c) * step;
        for (vid_t u = begin; u < end; ++u) {
          const std::size_t uu = static_cast<std::size_t>(u);
          if (ws.locked[uu]) continue;
          if (ws.ed[uu] == 0) continue;           // interior vertex
          if (ws.ed[uu] - ws.id[uu] <= 0) continue;  // non-positive gain
          slot[cnt++] = u;
        }
        ws.cand_count[static_cast<std::size_t>(c)] = cnt;
      });
    }

    vid_t proposals = 0;
    for (vid_t c : ws.cand_count) proposals += c;
    stats.moves_attempted += proposals;
    stats.insertions += proposals;

    // --- Commit: one deterministic ascending-vertex pass.  Earlier commits
    // may have absorbed a proposal's gain or taken its balance headroom, so
    // every move is re-validated against the committed state before it
    // applies; stale proposals count as conflict rejects.
    vid_t committed = 0;
    {
      obs::Span commit_span("refine.commit");
      for (int c = 0; c < kProposeChunks; ++c) {
        const vid_t* slot = ws.cand.data() + static_cast<std::size_t>(c) * step;
        const vid_t cnt = ws.cand_count[static_cast<std::size_t>(c)];
        for (vid_t i = 0; i < cnt; ++i) {
          const vid_t v = slot[i];
          const std::size_t vv = static_cast<std::size_t>(v);
          const ewt_t gain = ws.ed[vv] - ws.id[vv];
          const part_t from = b.side[vv];
          const part_t to = 1 - from;
          const vwt_t wv = g.vertex_weight(v);
          if (ws.ed[vv] == 0 || gain <= 0 || b.part_weight[to] + wv > limit[to]) {
            ++stats.conflict_rejects;
            continue;
          }
          b.side[vv] = to;
          b.part_weight[from] -= wv;
          b.part_weight[to] += wv;
          b.cut -= gain;
          ws.locked[vv] = 1;
          std::swap(ws.ed[vv], ws.id[vv]);
          ++committed;
          auto nbrs = g.neighbors(v);
          auto wgts = g.edge_weights(v);
          for (std::size_t j = 0; j < nbrs.size(); ++j) {
            const std::size_t uu = static_cast<std::size_t>(nbrs[j]);
            const ewt_t w = wgts[j];
            if (b.side[uu] == to) {
              ws.ed[uu] -= w;
              ws.id[uu] += w;
            } else {
              ws.ed[uu] += w;
              ws.id[uu] -= w;
            }
          }
        }
      }
    }
    stats.swapped += committed;

    if (pass_log) {
      obs::KlPassReport rep;
      rep.pass = stats.parallel_rounds;
      rep.moves_attempted = proposals;
      rep.moves_kept = committed;
      rep.moves_undone = stats.conflict_rejects - rejects_before;
      rep.insertions = proposals;
      rep.cut_before = round_start_cut;
      rep.cut_after = b.cut;
      rep.early_exit = false;
      rep.queue_peak = proposals;
      pass_log->push_back(rep);
    }

    if (committed == 0) break;  // no proposal survived: a local minimum
  }

  stats.cut_reduction = cut_at_entry - b.cut;
  return stats;
}

}  // namespace mgp
