#include "refine/refine.hpp"

#include "refine/parallel_refine.hpp"

namespace mgp {

std::string to_string(RefinePolicy p) {
  switch (p) {
    case RefinePolicy::kNone: return "none";
    case RefinePolicy::kGR: return "GR";
    case RefinePolicy::kKLR: return "KLR";
    case RefinePolicy::kBGR: return "BGR";
    case RefinePolicy::kBKLR: return "BKLR";
    case RefinePolicy::kBKLGR: return "BKLGR";
  }
  return "?";
}

namespace {

/// The parallel propose/commit refiner replaces the greedy boundary leg
/// when a pool is attached and the boundary is big enough to amortise the
/// fork.  Both inputs are pure functions of the partition, never of the
/// pool size, so the selection itself is deterministic across pool sizes.
bool use_parallel_greedy(ThreadPool* pool, vid_t boundary, const KlOptions& opts) {
  return pool != nullptr && boundary >= opts.parallel_boundary_min;
}

}  // namespace

KlStats refine_bisection(const Graph& g, Bisection& b, vwt_t target0,
                         RefinePolicy policy, vid_t original_n, Rng& rng,
                         const KlOptions& base_opts,
                         std::vector<obs::KlPassReport>* pass_log, KlWorkspace* ws,
                         ThreadPool* pool) {
  KlOptions opts = base_opts;
  switch (policy) {
    case RefinePolicy::kNone:
      return {};
    case RefinePolicy::kGR:
      opts.boundary_only = false;
      opts.single_pass = true;
      break;
    case RefinePolicy::kKLR:
      opts.boundary_only = false;
      opts.single_pass = false;
      break;
    case RefinePolicy::kBGR: {
      if (pool != nullptr &&
          use_parallel_greedy(pool, count_boundary_vertices(g, b.side), base_opts)) {
        return parallel_bgr_refine(g, b, target0, base_opts, *pool, pass_log, ws);
      }
      opts.boundary_only = true;
      opts.single_pass = true;
      break;
    }
    case RefinePolicy::kBKLR:
      opts.boundary_only = true;
      opts.single_pass = false;
      break;
    case RefinePolicy::kBKLGR: {
      // §3.3: "if the number of vertices in the boundary of the coarse graph
      // is less than 2% of the number of vertices in the original graph,
      // refinement is performed using BKLR, otherwise BGR is used."
      const vid_t boundary = count_boundary_vertices(g, b.side);
      const bool small_boundary =
          static_cast<double>(boundary) <
          base_opts.bklgr_boundary_fraction * static_cast<double>(original_n);
      // The greedy (large-boundary) leg is exactly where refinement cost
      // peaks and where the propose/commit scheme applies.
      if (!small_boundary && use_parallel_greedy(pool, boundary, base_opts)) {
        return parallel_bgr_refine(g, b, target0, base_opts, *pool, pass_log, ws);
      }
      opts.boundary_only = true;
      opts.single_pass = !small_boundary;
      break;
    }
  }
  return kl_refine(g, b, target0, opts, rng, pass_log, ws);
}

}  // namespace mgp
