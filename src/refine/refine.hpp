// Refinement policy dispatch (§3.3 / Table 4).
//
// Five policies from the paper, plus kNone for the Table 3 experiment
// (edge-cut when no refinement is performed):
//
//   GR    — one KL pass over all vertices
//   KLR   — KL passes over all vertices until convergence
//   BGR   — one pass, boundary vertices only
//   BKLR  — boundary passes until convergence
//   BKLGR — the hybrid: BKLR while the boundary is small relative to the
//           *original* graph (< 2% of |V_0|), BGR once it grows past that.
#pragma once

#include <string>

#include "refine/kl.hpp"

namespace mgp {

class ThreadPool;

enum class RefinePolicy { kNone, kGR, kKLR, kBGR, kBKLR, kBKLGR };

/// Paper mnemonic ("GR", "BKLGR", ...).
std::string to_string(RefinePolicy p);

/// Refines one level's bisection under the given policy.
///
/// `original_n` is |V_0|, the finest graph's vertex count — the BKLGR
/// switch rule compares the current boundary size against 2% of it.
/// Returns the engine stats (zeroed for kNone).
///
/// `pass_log`, when non-null, collects one obs::KlPassReport per KL pass
/// (see kl_refine); passive, never perturbs the result.
///
/// `ws`, when non-null, supplies the KL engine's scratch buffers (reused
/// across calls; byte-identical results either way — see kl_refine).
///
/// `pool`, when non-null, lets the greedy boundary leg (BGR, and BKLGR's
/// large-boundary leg) run as the deterministic parallel propose/commit
/// refiner once the boundary reaches base_opts.parallel_boundary_min
/// vertices (refine/parallel_refine.*).  The selection depends only on the
/// partition, so results are byte-identical across pool sizes — and ANY
/// attached pool selects it, including a 1-thread pool (which runs the
/// propose/commit algorithm inline).  Only a null pool keeps the exact
/// sequential KL/BGR engine; equivalence between the two refiners is not a
/// contract.  kway_partition attaches a pool only when
/// cfg.resolved_threads() > 1, so cfg.threads == 1 stays sequential.
KlStats refine_bisection(const Graph& g, Bisection& b, vwt_t target0,
                         RefinePolicy policy, vid_t original_n, Rng& rng,
                         const KlOptions& base_opts = {},
                         std::vector<obs::KlPassReport>* pass_log = nullptr,
                         KlWorkspace* ws = nullptr, ThreadPool* pool = nullptr);

}  // namespace mgp
