// The Kernighan–Lin refinement engine (§3.3).
//
// The paper's KL variant (after [6], Fiduccia–Mattheyses style) moves one
// vertex at a time: repeatedly take the highest-gain unlocked vertex from
// the heavier side, move it, and lock it.  A pass ends when x = 50
// consecutive moves fail to produce a new best cut (those trailing moves
// are undone) or when the queues empty.  KLR iterates passes to a local
// minimum; GR runs exactly one pass ("the largest decrease in the edge-cut
// is obtained during the first pass").
//
// The boundary variants (BGR/BKLR) seed the gain queues with boundary
// vertices only, inserting newly-boundary vertices with positive gain as
// refinement proceeds — same moves machinery, far less queue traffic.
#pragma once

#include <span>
#include <vector>

#include "initpart/bisection_state.hpp"
#include "obs/report.hpp"
#include "support/bucket_queue.hpp"
#include "support/rng.hpp"

namespace mgp {

/// Reusable scratch of one kl_refine call: gain bookkeeping, the per-side
/// FM bucket queues, the move log for undo, and the random insertion order.
/// Pass a warm one to kl_refine for an allocation-free inner loop; every
/// field is fully re-initialised per pass, so a reused workspace behaves
/// exactly like a fresh one.
///
/// The parallel refiner (refine/parallel_refine.*) shares the gain tables
/// and lock bits and adds its per-chunk proposal table, so one warm
/// workspace serves both refinement paths allocation-free.
struct KlWorkspace {
  std::vector<ewt_t> ed;        ///< external degree: edge weight to other side
  std::vector<ewt_t> id;        ///< internal degree: edge weight to own side
  std::vector<char> locked;     ///< moved this pass
  BucketQueue queue[2];         ///< per-side gain queues
  std::vector<vid_t> moves;     ///< move log for undo
  std::vector<vid_t> order;     ///< random insertion order
  std::vector<vid_t> cand;        ///< parallel refiner: per-chunk proposal slots
  std::vector<vid_t> cand_count;  ///< parallel refiner: per-chunk proposal counts

  std::size_t memory_bytes() const {
    return ed.capacity() * sizeof(ewt_t) + id.capacity() * sizeof(ewt_t) +
           locked.capacity() + moves.capacity() * sizeof(vid_t) +
           order.capacity() * sizeof(vid_t) + cand.capacity() * sizeof(vid_t) +
           cand_count.capacity() * sizeof(vid_t);
  }
};

struct KlOptions {
  /// Stop a pass after this many consecutive non-improving moves (§3.3's x).
  int non_improving_window = 50;
  /// Pass cap for the multi-pass policies (convergence usually takes 2-4).
  int max_passes = 8;
  /// Seed the queues with boundary vertices only (BGR/BKLR).
  bool boundary_only = false;
  /// Stop after a single pass (GR/BGR).
  bool single_pass = false;
  /// Additive slack on each side's target weight, in units of the maximum
  /// vertex weight (coarse-level multinodes are lumpy; a best-cut state is
  /// only accepted within target + slack).
  double weight_slack_factor = 1.0;
  /// BKLGR's switch rule (§3.3): run multi-pass BKLR while the boundary is
  /// smaller than this fraction of the original graph, else single-pass BGR.
  double bklgr_boundary_fraction = 0.02;
  /// Parallel refinement auto-selection: with a thread pool attached, the
  /// greedy boundary leg (BGR, and BKLGR's large-boundary leg) switches to
  /// the propose/commit parallel refiner once the boundary has at least
  /// this many vertices (below it, sequential KL is faster than a fork).
  /// 0 forces the parallel refiner whenever a pool is attached.  The
  /// decision depends only on the partition, never on the pool size, so
  /// partitions stay byte-identical across pool sizes.
  vid_t parallel_boundary_min = 2048;
};

struct KlStats {
  int passes = 0;
  /// Vertices whose move survived undo, summed over passes ("swapped").
  vid_t swapped = 0;
  /// All moves attempted, including undone ones.
  vid_t moves_attempted = 0;
  /// Total queue insertions (the cost the boundary variants avoid).
  vid_t insertions = 0;
  /// Edge-cut improvement achieved.
  ewt_t cut_reduction = 0;
  /// Parallel refiner only: propose/commit rounds executed (0 on the
  /// sequential path).
  int parallel_rounds = 0;
  /// Parallel refiner only: proposals rejected at commit re-validation
  /// (their gain went stale or the balance headroom was taken).
  vid_t conflict_rejects = 0;
};

/// Refines `b` in place.  `target0` is side 0's desired vertex weight.
/// Deterministic given rng state.
///
/// When `pass_log` is non-null, one obs::KlPassReport per executed pass is
/// appended (moves / rollbacks / early-exit / bucket-queue peak occupancy).
/// Logging is passive — it draws no randomness and cannot change the result.
///
/// When `ws` is non-null its buffers are used as the call's scratch (and
/// retained for the next call); a null `ws` uses a call-local workspace.
/// Results are byte-identical either way.
KlStats kl_refine(const Graph& g, Bisection& b, vwt_t target0, const KlOptions& opts,
                  Rng& rng, std::vector<obs::KlPassReport>* pass_log = nullptr,
                  KlWorkspace* ws = nullptr);

/// Number of boundary vertices (vertices with at least one cut edge).
vid_t count_boundary_vertices(const Graph& g, std::span<const part_t> side);

}  // namespace mgp
