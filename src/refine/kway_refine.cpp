#include "refine/kway_refine.hpp"

#include <algorithm>

#include "obs/trace.hpp"

namespace mgp {
namespace {

/// Shard count for the propose sweeps.  Fixed — chunk boundaries must be a
/// pure function of |V| so the concatenated proposal list (and with it the
/// commit order) is identical for every pool size.  Matches the 2-way
/// refiner's shard count (refine/parallel_refine.cpp).
constexpr int kProposeChunks = 16;

/// Safety cap on propose/commit rounds per pass.  Termination is already
/// guaranteed (every commit locks its vertex for the rest of the pass), but
/// the tail rounds harvest next to nothing; the cap bounds the worst case
/// deterministically.
constexpr int kMaxRounds = 64;

/// Runs `body(c, begin, end)` over the same fixed chunk decomposition with
/// or without a pool: ThreadPool::parallel_for_chunks and the inline loop
/// compute identical boundaries, so the refiner's per-chunk proposal slots —
/// and therefore the commit order — do not depend on whether a pool exists.
template <typename Fn>
void for_chunks(vid_t n, ThreadPool* pool, Fn&& body) {
  if (n <= 0) return;
  if (pool) {
    pool->parallel_for_chunks(n, kProposeChunks, body);
    return;
  }
  const vid_t step = (n + kProposeChunks - 1) / kProposeChunks;
  for (int c = 0; c < kProposeChunks; ++c) {
    const vid_t begin = std::min<vid_t>(n, static_cast<vid_t>(c) * step);
    const vid_t end = std::min<vid_t>(n, begin + step);
    if (begin >= end) break;
    body(c, begin, end);
  }
}

std::size_t vec_bytes(const auto& v) {
  return v.capacity() * sizeof(typename std::decay_t<decltype(v)>::value_type);
}

}  // namespace

std::size_t KwayRefineWorkspace::bytes_reserved() const {
  return vec_bytes(frozen_pwgts) + vec_bytes(conn) + vec_bytes(touched) +
         vec_bytes(cand) + vec_bytes(cand_to) + vec_bytes(cand_count) +
         vec_bytes(locked) + vec_bytes(bal);
}

namespace {

/// Shared body of the full and frontier-restricted refiners.  `active` is
/// either null (every vertex eligible — the classic refiner, byte-identical
/// to its pre-mask behaviour) or an n-sized mask; committed moves activate
/// the moved vertex and its neighbours, growing the frontier.  Activation
/// happens only in the sequential commit pass, so the active set — like the
/// labelling — is a pure function of the round history, never of the pool.
KwayRefineResult kway_refine_impl(const Graph& g, std::span<part_t> part,
                                  part_t k, std::span<vwt_t> pwgts,
                                  vwt_t max_part_weight, vwt_t min_part_weight,
                                  int max_passes, ThreadPool* pool,
                                  KwayRefineWorkspace& ws, char* active) {
  KwayRefineResult res;
  const vid_t n = g.num_vertices();
  if (n == 0 || k <= 1) return res;
  obs::Span span("refine.kway");
  span.arg("n", n);
  span.arg("k", k);

  const std::size_t kk = static_cast<std::size_t>(k);
  const vid_t step = (n + kProposeChunks - 1) / kProposeChunks;
  ws.frozen_pwgts.resize(kk);
  // Chunk c's connectivity scratch lives at conn[c*k, (c+1)*k); slot
  // kProposeChunks is the sequential commit pass's own scratch.  Both are
  // zeroed between vertices via the touched lists, so only a fresh (cold or
  // regrown) workspace needs the explicit fill.
  const std::size_t conn_size = static_cast<std::size_t>(kProposeChunks + 1) * kk;
  if (ws.conn.size() < conn_size) {
    ws.conn.assign(conn_size, 0);
    ws.touched.resize(conn_size);
  }
  ws.cand.resize(static_cast<std::size_t>(step) * kProposeChunks);
  ws.cand_to.resize(static_cast<std::size_t>(step) * kProposeChunks);
  ws.cand_count.resize(kProposeChunks);
  ws.locked.resize(static_cast<std::size_t>(n));
  // A warm workspace may arrive from a larger graph.  Chunks that are empty
  // here (c * step >= n) are never visited by the chunk loop, so stale
  // counts from the previous graph would feed out-of-range vertex ids to
  // the commit pass — zero them all up front.
  std::fill(ws.cand_count.begin(), ws.cand_count.end(), vid_t{0});

  for (int pass = 0; pass < max_passes; ++pass) {
    ++res.passes;
    std::fill(ws.locked.begin(), ws.locked.end(), char{0});
    vid_t pass_moves = 0;

    for (int round = 0; round < kMaxRounds; ++round) {
      ++res.rounds;
      std::copy(pwgts.begin(), pwgts.end(), ws.frozen_pwgts.begin());

      // --- Propose: each chunk scans its fixed vertex range against the
      // labelling and part weights frozen at round start, writing its
      // candidates into a disjoint slot — race-free, and the proposal set
      // is independent of scheduling.
      {
        obs::Span propose_span("refine.kway.propose");
        for_chunks(n, pool, [&](int c, vid_t begin, vid_t end) {
          ewt_t* conn = ws.conn.data() + static_cast<std::size_t>(c) * kk;
          part_t* touched = ws.touched.data() + static_cast<std::size_t>(c) * kk;
          vid_t* cand = ws.cand.data() + static_cast<std::size_t>(c) * step;
          part_t* cand_to = ws.cand_to.data() + static_cast<std::size_t>(c) * step;
          vid_t cnt = 0;
          for (vid_t u = begin; u < end; ++u) {
            const std::size_t uu = static_cast<std::size_t>(u);
            if (ws.locked[uu]) continue;
            if (active != nullptr && active[uu] == 0) continue;
            const part_t from = part[uu];
            auto nbrs = g.neighbors(u);
            auto wgts = g.edge_weights(u);
            int num_touched = 0;
            for (std::size_t i = 0; i < nbrs.size(); ++i) {
              const part_t p = part[static_cast<std::size_t>(nbrs[i])];
              if (conn[static_cast<std::size_t>(p)] == 0) {
                touched[num_touched++] = p;
              }
              conn[static_cast<std::size_t>(p)] += wgts[i];
            }
            const ewt_t internal = conn[static_cast<std::size_t>(from)];
            const vwt_t wv = g.vertex_weight(u);
            part_t best = from;
            ewt_t best_gain = 0;
            vwt_t best_w = 0;
            // Source must stay at or above the floor (checked again at
            // commit against the committed weights).
            if (ws.frozen_pwgts[static_cast<std::size_t>(from)] - wv >=
                min_part_weight) {
              for (int t = 0; t < num_touched; ++t) {
                const part_t p = touched[t];
                if (p == from) continue;
                const vwt_t pw = ws.frozen_pwgts[static_cast<std::size_t>(p)];
                if (pw + wv > max_part_weight) continue;
                const ewt_t gain = conn[static_cast<std::size_t>(p)] - internal;
                if (gain < 0) continue;
                // Zero-gain moves are admitted only when they strictly
                // improve balance: the cut never rises and the sum of
                // squared part weights strictly falls, so (cut, imbalance)
                // decreases lexicographically and rounds still terminate.
                if (gain == 0 &&
                    pw + wv >=
                        ws.frozen_pwgts[static_cast<std::size_t>(from)]) {
                  continue;
                }
                // Highest gain, then lighter frozen target, then lower part
                // id: a total order over frozen state, so the chosen target
                // never depends on the touched list's traversal order.
                const bool take =
                    best == from || gain > best_gain ||
                    (gain == best_gain &&
                     (pw < best_w || (pw == best_w && p < best)));
                if (take) {
                  best = p;
                  best_gain = gain;
                  best_w = pw;
                }
              }
            }
            for (int t = 0; t < num_touched; ++t) {
              conn[static_cast<std::size_t>(touched[t])] = 0;
            }
            if (best != from) {
              cand[cnt] = u;
              cand_to[cnt] = best;
              ++cnt;
            }
          }
          ws.cand_count[static_cast<std::size_t>(c)] = cnt;
        });
      }

      vid_t proposals = 0;
      for (vid_t c : ws.cand_count) proposals += c;
      res.proposals += proposals;

      // --- Commit: one deterministic ascending-vertex pass.  Earlier
      // commits may have absorbed a proposal's gain or taken its balance
      // headroom, so the gain and both weight bounds are recomputed against
      // the committed state; stale proposals count as conflict rejects.
      vid_t committed = 0;
      {
        obs::Span commit_span("refine.kway.commit");
        ewt_t* conn =
            ws.conn.data() + static_cast<std::size_t>(kProposeChunks) * kk;
        part_t* touched =
            ws.touched.data() + static_cast<std::size_t>(kProposeChunks) * kk;
        for (int c = 0; c < kProposeChunks; ++c) {
          const vid_t* cand = ws.cand.data() + static_cast<std::size_t>(c) * step;
          const part_t* cand_to =
              ws.cand_to.data() + static_cast<std::size_t>(c) * step;
          const vid_t cnt = ws.cand_count[static_cast<std::size_t>(c)];
          for (vid_t i = 0; i < cnt; ++i) {
            const vid_t v = cand[i];
            const std::size_t vv = static_cast<std::size_t>(v);
            const part_t to = cand_to[i];
            // v never moved this round (only commits move vertices, and a
            // commit locks), so `from` still matches the propose sweep.
            const part_t from = part[vv];
            auto nbrs = g.neighbors(v);
            auto wgts = g.edge_weights(v);
            int num_touched = 0;
            for (std::size_t j = 0; j < nbrs.size(); ++j) {
              const part_t p = part[static_cast<std::size_t>(nbrs[j])];
              if (conn[static_cast<std::size_t>(p)] == 0) {
                touched[num_touched++] = p;
              }
              conn[static_cast<std::size_t>(p)] += wgts[j];
            }
            const ewt_t gain = conn[static_cast<std::size_t>(to)] -
                               conn[static_cast<std::size_t>(from)];
            for (int t = 0; t < num_touched; ++t) {
              conn[static_cast<std::size_t>(touched[t])] = 0;
            }
            const vwt_t wv = g.vertex_weight(v);
            // Same admission rule as propose, against the committed weights:
            // positive gain, or zero gain with strict balance improvement.
            if (gain < 0 ||
                (gain == 0 && pwgts[static_cast<std::size_t>(to)] + wv >=
                                  pwgts[static_cast<std::size_t>(from)]) ||
                pwgts[static_cast<std::size_t>(to)] + wv > max_part_weight ||
                pwgts[static_cast<std::size_t>(from)] - wv < min_part_weight) {
              ++res.conflict_rejects;
              continue;
            }
            part[vv] = to;
            pwgts[static_cast<std::size_t>(from)] -= wv;
            pwgts[static_cast<std::size_t>(to)] += wv;
            ws.locked[vv] = 1;
            if (active != nullptr) {
              // The move changed every neighbour's connectivity profile:
              // pull them (and v, for the next pass) into the frontier.
              active[vv] = 1;
              for (vid_t nb : nbrs) active[static_cast<std::size_t>(nb)] = 1;
            }
            res.cut_reduction += gain;
            ++committed;
          }
        }
      }
      res.moves += committed;
      pass_moves += committed;
      if (committed == 0) break;  // no proposal survived: a local minimum
    }

    if (pass_moves == 0) break;  // unlocking found nothing new to harvest
  }
  return res;
}

}  // namespace

KwayRefineResult kway_parallel_refine(const Graph& g, std::span<part_t> part,
                                      part_t k, std::span<vwt_t> pwgts,
                                      vwt_t max_part_weight,
                                      vwt_t min_part_weight, int max_passes,
                                      ThreadPool* pool,
                                      KwayRefineWorkspace& ws) {
  return kway_refine_impl(g, part, k, pwgts, max_part_weight, min_part_weight,
                          max_passes, pool, ws, nullptr);
}

KwayRefineResult kway_parallel_refine_active(
    const Graph& g, std::span<part_t> part, part_t k, std::span<vwt_t> pwgts,
    vwt_t max_part_weight, vwt_t min_part_weight, int max_passes,
    ThreadPool* pool, KwayRefineWorkspace& ws, std::span<char> active) {
  if (active.size() != static_cast<std::size_t>(g.num_vertices())) {
    return kway_refine_impl(g, part, k, pwgts, max_part_weight,
                            min_part_weight, max_passes, pool, ws, nullptr);
  }
  return kway_refine_impl(g, part, k, pwgts, max_part_weight, min_part_weight,
                          max_passes, pool, ws, active.data());
}

vid_t kway_balance(const Graph& g, std::span<part_t> part, part_t k,
                   std::span<vwt_t> pwgts, vwt_t max_part_weight,
                   vwt_t min_part_weight, KwayRefineWorkspace& ws) {
  const vid_t n = g.num_vertices();
  if (n == 0 || k <= 1) return 0;

  const std::size_t kk = static_cast<std::size_t>(k);
  // Uses (and maintains) the commit slot's zero-invariant conn scratch, so
  // a workspace warmed by kway_parallel_refine costs nothing extra; only a
  // cold or regrown one allocates.
  const std::size_t conn_size = static_cast<std::size_t>(kProposeChunks + 1) * kk;
  if (ws.conn.size() < conn_size) {
    ws.conn.assign(conn_size, 0);
    ws.touched.resize(conn_size);
  }
  ewt_t* conn = ws.conn.data() + static_cast<std::size_t>(kProposeChunks) * kk;
  part_t* touched = ws.touched.data() + static_cast<std::size_t>(kProposeChunks) * kk;

  auto any_overweight = [&]() {
    for (std::size_t p = 0; p < kk; ++p) {
      if (pwgts[p] > max_part_weight) return true;
    }
    return false;
  };

  // Best admissible destination for v under the *current* weights: highest
  // gain, then lighter target, then lower part id.  Every part is a legal
  // destination (an isolated-from-everywhere target costs gain -internal);
  // returns (from, 0) when no part has capacity.
  auto best_move = [&](vid_t v, part_t from, vwt_t wv) {
    auto nbrs = g.neighbors(v);
    auto wgts = g.edge_weights(v);
    int num_touched = 0;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const part_t p = part[static_cast<std::size_t>(nbrs[i])];
      if (conn[static_cast<std::size_t>(p)] == 0) touched[num_touched++] = p;
      conn[static_cast<std::size_t>(p)] += wgts[i];
    }
    const ewt_t internal = conn[static_cast<std::size_t>(from)];
    part_t best = from;
    ewt_t best_gain = 0;
    vwt_t best_w = 0;
    for (part_t p = 0; p < k; ++p) {
      if (p == from) continue;
      const vwt_t pw = pwgts[static_cast<std::size_t>(p)];
      if (pw + wv > max_part_weight) continue;
      const ewt_t gain = conn[static_cast<std::size_t>(p)] - internal;
      const bool take = best == from || gain > best_gain ||
                        (gain == best_gain &&
                         (pw < best_w || (pw == best_w && p < best)));
      if (take) {
        best = p;
        best_gain = gain;
        best_w = pw;
      }
    }
    for (int t = 0; t < num_touched; ++t) {
      conn[static_cast<std::size_t>(touched[t])] = 0;
    }
    return std::pair<part_t, ewt_t>{best, best_gain};
  };

  vid_t total_moves = 0;
  obs::Span span("refine.kway.balance");
  // Each accepted move shrinks an overweight part without creating a new
  // one, so excess weight decreases monotonically; the pass cap only guards
  // the genuinely infeasible cases (one vertex heavier than the ceiling).
  for (int pass = 0; pass < 8 && any_overweight(); ++pass) {
    // Gather every movable vertex of every overweight part with its current
    // best gain, then drain cheapest-cut-damage first — first-fit by vertex
    // id would evict whatever happens to come first, which is exactly the
    // kind of deep-interior vertex whose eviction shreds the cut.
    ws.bal.clear();
    for (vid_t v = 0; v < n; ++v) {
      const part_t from = part[static_cast<std::size_t>(v)];
      if (pwgts[static_cast<std::size_t>(from)] <= max_part_weight) continue;
      const vwt_t wv = g.vertex_weight(v);
      if (pwgts[static_cast<std::size_t>(from)] - wv < min_part_weight) continue;
      const auto [to, gain] = best_move(v, from, wv);
      if (to != from) ws.bal.emplace_back(gain, v);
    }
    std::sort(ws.bal.begin(), ws.bal.end(),
              [](const std::pair<ewt_t, vid_t>& a, const std::pair<ewt_t, vid_t>& b) {
                return a.first != b.first ? a.first > b.first : a.second < b.second;
              });

    vid_t pass_moves = 0;
    for (const auto& [gain_est, v] : ws.bal) {
      const std::size_t vv = static_cast<std::size_t>(v);
      const part_t from = part[vv];
      // Earlier applications changed the weights, so re-validate: the
      // source may already be drained, the estimated target full.  (The
      // gain estimate only orders the queue; the move itself re-picks.)
      if (pwgts[static_cast<std::size_t>(from)] <= max_part_weight) continue;
      const vwt_t wv = g.vertex_weight(v);
      if (pwgts[static_cast<std::size_t>(from)] - wv < min_part_weight) continue;
      const auto [to, gain] = best_move(v, from, wv);
      (void)gain;
      if (to == from) continue;
      part[vv] = to;
      pwgts[static_cast<std::size_t>(from)] -= wv;
      pwgts[static_cast<std::size_t>(to)] += wv;
      ++pass_moves;
      if (!any_overweight()) break;
    }
    total_moves += pass_moves;
    if (pass_moves == 0) break;  // nothing movable: ceiling unreachable
  }
  span.arg("moves", total_moves);
  return total_moves;
}

}  // namespace mgp
