#include "refine/kl.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

#include "obs/trace.hpp"
#include "support/bucket_queue.hpp"

namespace mgp {
namespace {

ewt_t gain_of(const KlWorkspace& ws, vid_t v) {
  return ws.ed[static_cast<std::size_t>(v)] - ws.id[static_cast<std::size_t>(v)];
}

}  // namespace

vid_t count_boundary_vertices(const Graph& g, std::span<const part_t> side) {
  vid_t count = 0;
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    for (vid_t v : g.neighbors(u)) {
      if (side[static_cast<std::size_t>(u)] != side[static_cast<std::size_t>(v)]) {
        ++count;
        break;
      }
    }
  }
  return count;
}

KlStats kl_refine(const Graph& g, Bisection& b, vwt_t target0, const KlOptions& opts,
                  Rng& rng, std::vector<obs::KlPassReport>* pass_log,
                  KlWorkspace* ext_ws) {
  const vid_t n = g.num_vertices();
  KlStats stats;
  if (n == 0) return stats;
  obs::Span span("kl_refine");
  span.arg("n", n);

  const vwt_t total = g.total_vertex_weight();
  const vwt_t target[2] = {target0, total - target0};
  vwt_t max_vwgt = 0;
  for (vid_t v = 0; v < n; ++v) max_vwgt = std::max(max_vwgt, g.vertex_weight(v));
  const vwt_t slack =
      static_cast<vwt_t>(opts.weight_slack_factor * static_cast<double>(max_vwgt));

  KlWorkspace local_ws;
  KlWorkspace& ws = ext_ws ? *ext_ws : local_ws;
  ws.ed.resize(static_cast<std::size_t>(n));
  ws.id.resize(static_cast<std::size_t>(n));
  ws.locked.resize(static_cast<std::size_t>(n));
  ws.moves.reserve(static_cast<std::size_t>(n));

  const ewt_t max_gain = std::max<ewt_t>(1, g.max_weighted_degree());

  for (int pass = 0; pass < (opts.single_pass ? 1 : opts.max_passes); ++pass) {
    ++stats.passes;
    const ewt_t pass_start_cut = b.cut;
    const KlStats stats_at_pass_start = stats;
    std::int64_t queue_peak = 0;

    // --- Gain initialisation (O(|E|)). ---
    for (vid_t u = 0; u < n; ++u) {
      ewt_t ed = 0, id = 0;
      auto nbrs = g.neighbors(u);
      auto wgts = g.edge_weights(u);
      const part_t su = b.side[static_cast<std::size_t>(u)];
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        if (b.side[static_cast<std::size_t>(nbrs[i])] == su) {
          id += wgts[i];
        } else {
          ed += wgts[i];
        }
      }
      ws.ed[static_cast<std::size_t>(u)] = ed;
      ws.id[static_cast<std::size_t>(u)] = id;
    }
    std::fill(ws.locked.begin(), ws.locked.end(), char{0});
    ws.queue[0].reset(n, max_gain);
    ws.queue[1].reset(n, max_gain);

    // Insert in random order so bucket LIFO ties break randomly (the paper's
    // algorithms are randomized end to end).
    rng.permutation_into(n, ws.order);
    for (vid_t v : ws.order) {
      if (opts.boundary_only && ws.ed[static_cast<std::size_t>(v)] == 0) continue;
      ws.queue[b.side[static_cast<std::size_t>(v)]].insert(v, gain_of(ws, v));
      ++stats.insertions;
    }

    // Best-state tracking: the heaviest side may never exceed its limit.
    const vwt_t limit[2] = {
        std::max(b.part_weight[0], target[0] + slack),
        std::max(b.part_weight[1], target[1] + slack),
    };
    ewt_t best_cut = b.cut;
    std::size_t best_prefix = 0;
    ws.moves.clear();
    int since_best = 0;

    // --- Move loop. ---
    if (pass_log) {
      queue_peak = static_cast<std::int64_t>(ws.queue[0].size()) +
                   static_cast<std::int64_t>(ws.queue[1].size());
    }
    while (since_best < opts.non_improving_window) {
      if (pass_log) {
        queue_peak = std::max(queue_peak,
                              static_cast<std::int64_t>(ws.queue[0].size()) +
                                  static_cast<std::int64_t>(ws.queue[1].size()));
      }
      // Move from the side that is most overweight relative to its target.
      part_t from;
      const double over0 = target[0] > 0
          ? static_cast<double>(b.part_weight[0]) / static_cast<double>(target[0])
          : 0.0;
      const double over1 = target[1] > 0
          ? static_cast<double>(b.part_weight[1]) / static_cast<double>(target[1])
          : 0.0;
      from = over0 >= over1 ? 0 : 1;
      if (ws.queue[from].empty()) from = 1 - from;
      if (ws.queue[from].empty()) break;

      const vid_t v = ws.queue[from].pop_max();
      const part_t to = 1 - from;
      const ewt_t gain = gain_of(ws, v);

      // Execute the move.
      b.side[static_cast<std::size_t>(v)] = to;
      b.part_weight[from] -= g.vertex_weight(v);
      b.part_weight[to] += g.vertex_weight(v);
      b.cut -= gain;
      ws.locked[static_cast<std::size_t>(v)] = 1;
      std::swap(ws.ed[static_cast<std::size_t>(v)], ws.id[static_cast<std::size_t>(v)]);
      ws.moves.push_back(v);
      ++stats.moves_attempted;

      // Gain updates for v's neighbours.
      auto nbrs = g.neighbors(v);
      auto wgts = g.edge_weights(v);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const vid_t u = nbrs[i];
        const std::size_t uu = static_cast<std::size_t>(u);
        const ewt_t w = wgts[i];
        if (b.side[uu] == to) {
          // Edge (u,v) became internal for u.
          ws.ed[uu] -= w;
          ws.id[uu] += w;
        } else {
          // Edge (u,v) became external for u.
          ws.ed[uu] += w;
          ws.id[uu] -= w;
        }
        if (ws.locked[uu]) continue;
        BucketQueue& q = ws.queue[b.side[uu]];
        if (q.contains(u)) {
          if (opts.boundary_only && ws.ed[uu] == 0) {
            q.remove(u);  // left the boundary; no longer a move candidate
          } else {
            q.update(u, gain_of(ws, u));
          }
        } else if (opts.boundary_only && ws.ed[uu] > 0 && gain_of(ws, u) > 0) {
          // §3.3: a vertex that just became a boundary vertex is inserted
          // when it has positive gain.
          q.insert(u, gain_of(ws, u));
          ++stats.insertions;
        }
      }

      // New best?  (Strictly smaller cut, within the weight limits.)
      if (b.cut < best_cut && b.part_weight[0] <= limit[0] &&
          b.part_weight[1] <= limit[1]) {
        best_cut = b.cut;
        best_prefix = ws.moves.size();
        since_best = 0;
      } else {
        ++since_best;
      }
    }

    // --- Undo the trailing non-improving moves. ---
    for (std::size_t i = ws.moves.size(); i > best_prefix; --i) {
      const vid_t v = ws.moves[i - 1];
      const part_t cur = b.side[static_cast<std::size_t>(v)];
      b.side[static_cast<std::size_t>(v)] = 1 - cur;
      b.part_weight[cur] -= g.vertex_weight(v);
      b.part_weight[1 - cur] += g.vertex_weight(v);
    }
    b.cut = best_cut;
    stats.swapped += static_cast<vid_t>(best_prefix);

    if (pass_log) {
      obs::KlPassReport rep;
      rep.pass = stats.passes;
      rep.moves_attempted = stats.moves_attempted - stats_at_pass_start.moves_attempted;
      rep.moves_kept = static_cast<std::int64_t>(best_prefix);
      rep.moves_undone = rep.moves_attempted - rep.moves_kept;
      rep.insertions = stats.insertions - stats_at_pass_start.insertions;
      rep.cut_before = pass_start_cut;
      rep.cut_after = best_cut;
      rep.early_exit = since_best >= opts.non_improving_window;
      rep.queue_peak = queue_peak;
      pass_log->push_back(rep);
    }

    if (best_cut >= pass_start_cut) break;  // converged: pass gained nothing
    stats.cut_reduction += pass_start_cut - best_cut;
  }

  return stats;
}

}  // namespace mgp
