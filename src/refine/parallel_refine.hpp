// Deterministic parallel greedy boundary refinement (extension).
//
// §1: "the Kernighan-Lin heuristic used in the refinement phase is very
// difficult to speedup in parallel computers."  The serial obstacle is the
// *priority order*: KL moves one highest-gain vertex at a time, and every
// move reshuffles its neighbours' gains.  The greedy boundary leg (BGR, and
// BKLGR once the boundary has grown past its switch point) does not need
// that order — it only harvests positive-gain boundary moves — so it admits
// the same round-synchronous propose/commit scheme this repo already uses
// for byte-identical parallel HEM (coarsen/parallel_matching.*):
//
//   repeat:  (1) PROPOSE — shard the vertex range into *fixed* chunks
//                (a pure function of |V|, never of the pool size) and, in
//                parallel, collect every unlocked boundary vertex with
//                positive gain into its chunk's slot of the proposal table;
//            (2) COMMIT — walk the proposals in ascending vertex order on
//                one thread, re-validate each gain and the balance bound
//                against the *committed* state, and apply the survivors
//                (locking them; a vertex moves at most once per call);
//   until a round commits nothing.
//
// Determinism: the proposal predicate is per-vertex (it reads only the
// gain tables, which are frozen during a propose sweep), so the proposal
// *set* is independent of chunk scheduling; fixed contiguous chunks read
// back in chunk order make the commit order ascending-by-vertex-id; and the
// commit pass is sequential.  No randomness is drawn.  Partitions are
// therefore byte-identical across pool sizes — a 1-thread pool runs the
// identical algorithm inline.  Cut strictly decreases with every committed
// move and vertices lock permanently, so rounds terminate.
//
// This is the propose/commit design of Sanders & Schulz and Holtgrewe et
// al. (PAPERS.md) specialised to two-way greedy refinement; DESIGN.md §8
// carries the full argument.
#pragma once

#include <vector>

#include "refine/kl.hpp"
#include "support/thread_pool.hpp"

namespace mgp {

/// Parallel greedy boundary refinement of `b` in place (the BGR leg).
/// `target0` is side 0's desired vertex weight; the balance rule is KL's
/// (a side never exceeds max(its entry weight, target + slack)).
///
/// Draws no randomness.  Byte-identical result for every pool size,
/// including 1 (inline execution of the same rounds).
///
/// When `pass_log` is non-null, one obs::KlPassReport per round is appended
/// (proposals / commits / conflict rejects); passive, never perturbs the
/// result.  When `ws` is non-null its buffers serve as the call's scratch
/// (reused across calls; a warm workspace makes the call allocation-free).
///
/// Stats mapping: passes = 1 (the call is one greedy boundary pass:
/// every vertex moves at most once), parallel_rounds = propose/commit
/// rounds, moves_attempted/insertions = proposals, swapped = commits,
/// conflict_rejects = proposals rejected at commit re-validation.
KlStats parallel_bgr_refine(const Graph& g, Bisection& b, vwt_t target0,
                            const KlOptions& opts, ThreadPool& pool,
                            std::vector<obs::KlPassReport>* pass_log = nullptr,
                            KlWorkspace* ws = nullptr);

}  // namespace mgp
