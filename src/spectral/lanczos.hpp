// Lanczos iteration for the Fiedler vector.
//
// Spectral bisection needs the eigenvector of the second-smallest Laplacian
// eigenvalue.  We run Lanczos on L restricted to the subspace orthogonal to
// the constant vector (the trivial null vector), with full
// reorthogonalisation — robust, and cheap at the sizes MSB visits per level.
//
// A warm start plays the role SYMMLQ refinement plays in Barnard & Simon's
// MSB [2]: seeding Lanczos with the Fiedler vector interpolated from the
// coarser level makes convergence take only a handful of iterations, which
// is precisely the cost profile that makes MSB ~an order of magnitude
// faster than plain spectral bisection yet still 10-35x slower than the
// paper's multilevel scheme.
#pragma once

#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "support/rng.hpp"

namespace mgp {

struct LanczosOptions {
  int max_iters = 80;     ///< Krylov dimension cap.
  double tol = 1e-5;      ///< relative Ritz-residual tolerance.
  int check_every = 5;    ///< convergence-test period (tridiagonal solves).
};

struct LanczosResult {
  std::vector<double> vector;  ///< approximate Fiedler vector, unit norm.
  double value = 0.0;          ///< approximate algebraic connectivity.
  double residual = 0.0;       ///< |beta_m * s_m| at exit (absolute).
  int iterations = 0;
  bool converged = false;
};

/// Smallest eigenpair of L|_{1^perp}.  `warm_start` (optional) seeds the
/// Krylov space; when empty a random start is drawn from rng.
LanczosResult lanczos_fiedler(const Graph& g, std::span<const double> warm_start,
                              const LanczosOptions& opts, Rng& rng);

/// Eigendecomposition of a symmetric tridiagonal matrix given its diagonal
/// `alpha` (size m) and off-diagonal `beta` (size m-1).  Ascending values.
/// Used internally; exposed for tests.
struct TridiagEigen {
  std::vector<double> values;
  std::vector<double> vectors;  ///< column-major, vector k at [k*m, (k+1)*m)
};
TridiagEigen tridiag_eigen(std::span<const double> alpha, std::span<const double> beta);

/// Smallest eigenpair of a symmetric tridiagonal matrix, via Sturm-sequence
/// bisection for the value and inverse iteration for the vector — O(m) per
/// bisection step instead of the O(m^3) full decomposition.  This is what
/// the Lanczos convergence test calls every few iterations.
struct TridiagPair {
  double value = 0.0;
  std::vector<double> vector;
};
TridiagPair tridiag_smallest(std::span<const double> alpha, std::span<const double> beta);

}  // namespace mgp
