#include "spectral/jacobi.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace mgp {

DenseEigen jacobi_eigen(std::span<const double> matrix, std::size_t n,
                        double tol, int max_sweeps) {
  assert(matrix.size() == n * n);
  std::vector<double> a(matrix.begin(), matrix.end());
  // v starts as identity; accumulates the rotations (column k = eigenvector).
  std::vector<double> v(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) v[i * n + i] = 1.0;

  auto off_norm = [&]() {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j) s += a[i * n + j] * a[i * n + j];
    return std::sqrt(2.0 * s);
  };
  double anorm = 0.0;
  for (double x : a) anorm += x * x;
  anorm = std::sqrt(anorm);
  const double threshold = tol * std::max(anorm, 1e-300);

  for (int sweep = 0; sweep < max_sweeps && off_norm() > threshold; ++sweep) {
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a[p * n + q];
        if (std::abs(apq) < 1e-300) continue;
        const double app = a[p * n + p];
        const double aqq = a[q * n + q];
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        // Update rows/cols p and q of a (symmetric).
        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a[k * n + p];
          const double akq = a[k * n + q];
          a[k * n + p] = c * akp - s * akq;
          a[k * n + q] = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a[p * n + k];
          const double aqk = a[q * n + k];
          a[p * n + k] = c * apk - s * aqk;
          a[q * n + k] = s * apk + c * aqk;
        }
        // Accumulate the rotation into v.
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v[k * n + p];
          const double vkq = v[k * n + q];
          v[k * n + p] = c * vkp - s * vkq;
          v[k * n + q] = s * vkp + c * vkq;
        }
      }
    }
  }

  DenseEigen out;
  out.values.resize(n);
  for (std::size_t i = 0; i < n; ++i) out.values[i] = a[i * n + i];

  // Sort ascending, permuting eigenvector columns to match.
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::sort(idx.begin(), idx.end(),
            [&](std::size_t x, std::size_t y) { return out.values[x] < out.values[y]; });
  DenseEigen sorted;
  sorted.values.resize(n);
  sorted.vectors.resize(n * n);
  for (std::size_t k = 0; k < n; ++k) {
    sorted.values[k] = out.values[idx[k]];
    for (std::size_t i = 0; i < n; ++i) sorted.vectors[k * n + i] = v[i * n + idx[k]];
  }
  return sorted;
}

}  // namespace mgp
