#include "spectral/msb.hpp"

#include <utility>
#include <vector>

#include "coarsen/contract.hpp"
#include "initpart/spectral_init.hpp"
#include "spectral/fiedler.hpp"

namespace mgp {

Bisection msb_bisect(const Graph& g, vwt_t target0, const MsbOptions& opts, Rng& rng) {
  // ---- Coarsen with random matching. ----
  std::vector<Contraction> levels;
  const Graph* cur = &g;
  while (cur->num_vertices() > opts.coarsen_to) {
    Matching m = compute_matching(*cur, MatchingScheme::kRandom, {}, rng);
    Contraction c = contract(*cur, m, {});
    if (static_cast<double>(c.coarse.num_vertices()) >
        opts.min_shrink_factor * static_cast<double>(cur->num_vertices())) {
      break;
    }
    levels.push_back(std::move(c));
    cur = &levels.back().coarse;
  }
  const Graph& coarsest = levels.empty() ? g : levels.back().coarse;

  // ---- Exact Fiedler vector of the coarsest graph. ----
  FiedlerOptions fopts;
  fopts.lanczos = opts.lanczos;
  fopts.dense_threshold = std::max<vid_t>(fopts.dense_threshold, opts.coarsen_to);
  FiedlerResult f = fiedler_vector(coarsest, /*warm_start=*/{}, fopts, rng);
  std::vector<double> fied = std::move(f.vector);

  // ---- Uncoarsen: interpolate, then re-converge with warm-started Lanczos. ----
  for (std::size_t li = levels.size(); li-- > 0;) {
    const Graph& fine = (li == 0) ? g : levels[li - 1].coarse;
    const std::vector<vid_t>& cmap = levels[li].cmap;
    std::vector<double> interp(static_cast<std::size_t>(fine.num_vertices()));
    for (std::size_t v = 0; v < interp.size(); ++v) {
      interp[v] = fied[static_cast<std::size_t>(cmap[v])];
    }
    LanczosResult lr = lanczos_fiedler(fine, interp, opts.lanczos, rng);
    fied = std::move(lr.vector);
  }

  // ---- Split at the weighted median of the Fiedler coordinate. ----
  Bisection b = split_at_weighted_median(g, fied, target0);

  if (opts.kl_refine) {
    KlOptions kl = opts.kl;
    kl.boundary_only = false;
    kl.single_pass = false;
    kl_refine(g, b, target0, kl, rng);
  }
  return b;
}

KwayResult msb_partition(const Graph& g, part_t k, const MsbOptions& opts, Rng& rng) {
  Bisector bisect = [&opts](const Graph& sub, vwt_t target0, Rng& r) {
    return msb_bisect(sub, target0, opts, r);
  };
  return recursive_bisection(g, k, bisect, rng);
}

}  // namespace mgp
