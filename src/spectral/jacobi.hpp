// Dense symmetric eigensolver (cyclic Jacobi rotations).
//
// MSB's base case computes the exact Fiedler vector of the coarsest graph;
// since coarsening stops below ~100 vertices, an O(n^3) dense solve is
// negligible and removes all convergence concerns at the bottom of the
// V-cycle.  Also used to diagonalise the Lanczos tridiagonal matrices
// (trivially, since those are already nearly diagonal after rotation).
#pragma once

#include <span>
#include <vector>

namespace mgp {

struct DenseEigen {
  /// Ascending eigenvalues.
  std::vector<double> values;
  /// Column-major eigenvectors: vector k is vectors[k*n .. k*n+n-1],
  /// aligned with values[k].
  std::vector<double> vectors;
};

/// Full eigendecomposition of a symmetric row-major n*n matrix by the
/// cyclic Jacobi method.  Converges quadratically; tolerance is the
/// off-diagonal Frobenius norm relative to the matrix norm.
DenseEigen jacobi_eigen(std::span<const double> matrix, std::size_t n,
                        double tol = 1e-12, int max_sweeps = 64);

}  // namespace mgp
