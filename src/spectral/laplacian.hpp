// Graph Laplacian kernels for the spectral methods.
//
// Spectral bisection needs y = L x products (L = D - A, with edge weights)
// and a few dense-vector primitives.  Everything operates on the CSR graph
// directly — no separate matrix object is materialised.
#pragma once

#include <span>
#include <vector>

#include "graph/csr.hpp"

namespace mgp {

/// y = (D - A) x, the weighted Laplacian applied to x.  O(|E|).
void laplacian_apply(const Graph& g, std::span<const double> x, std::span<double> y);

/// Weighted degree of every vertex (the Laplacian diagonal).
std::vector<double> laplacian_diagonal(const Graph& g);

/// Dense Laplacian matrix (row-major n*n), for the coarsest-graph
/// eigensolve where n < ~100.
std::vector<double> laplacian_dense(const Graph& g);

// Small-vector helpers shared by the eigensolvers.
double dot(std::span<const double> a, std::span<const double> b);
double norm2(std::span<const double> a);
/// y += alpha * x
void axpy(double alpha, std::span<const double> x, std::span<double> y);
/// x *= alpha
void scale(std::span<double> x, double alpha);
/// Removes the component of x along the (unnormalised) all-ones direction.
void deflate_constant(std::span<double> x);

}  // namespace mgp
