// Fiedler-vector computation with automatic method selection.
//
// Small graphs (the coarsest level of MSB, |V| < ~100) get an exact dense
// eigensolve; everything else goes through Lanczos, optionally warm-started
// with a vector interpolated from a coarser graph.
#pragma once

#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "spectral/lanczos.hpp"
#include "support/rng.hpp"

namespace mgp {

struct FiedlerOptions {
  vid_t dense_threshold = 128;  ///< use the dense solver at or below this size
  LanczosOptions lanczos;
};

struct FiedlerResult {
  std::vector<double> vector;  ///< unit norm, orthogonal to constant
  double value = 0.0;          ///< algebraic connectivity estimate
  bool exact = false;          ///< true when the dense path was used
};

/// Computes (an approximation of) the Fiedler vector of g.
/// `warm_start` may be empty; when it has size n it seeds Lanczos.
FiedlerResult fiedler_vector(const Graph& g, std::span<const double> warm_start,
                             const FiedlerOptions& opts, Rng& rng);

}  // namespace mgp
