#include "spectral/laplacian.hpp"

#include <cassert>
#include <cmath>

namespace mgp {

void laplacian_apply(const Graph& g, std::span<const double> x, std::span<double> y) {
  const vid_t n = g.num_vertices();
  assert(x.size() == static_cast<std::size_t>(n));
  assert(y.size() == static_cast<std::size_t>(n));
  for (vid_t u = 0; u < n; ++u) {
    auto nbrs = g.neighbors(u);
    auto wgts = g.edge_weights(u);
    double acc = 0.0;
    double deg = 0.0;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const double w = static_cast<double>(wgts[i]);
      deg += w;
      acc += w * x[static_cast<std::size_t>(nbrs[i])];
    }
    y[static_cast<std::size_t>(u)] = deg * x[static_cast<std::size_t>(u)] - acc;
  }
}

std::vector<double> laplacian_diagonal(const Graph& g) {
  const vid_t n = g.num_vertices();
  std::vector<double> d(static_cast<std::size_t>(n), 0.0);
  for (vid_t u = 0; u < n; ++u) {
    double deg = 0.0;
    for (ewt_t w : g.edge_weights(u)) deg += static_cast<double>(w);
    d[static_cast<std::size_t>(u)] = deg;
  }
  return d;
}

std::vector<double> laplacian_dense(const Graph& g) {
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  std::vector<double> m(n * n, 0.0);
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    auto nbrs = g.neighbors(u);
    auto wgts = g.edge_weights(u);
    double deg = 0.0;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const double w = static_cast<double>(wgts[i]);
      deg += w;
      m[static_cast<std::size_t>(u) * n + static_cast<std::size_t>(nbrs[i])] = -w;
    }
    m[static_cast<std::size_t>(u) * n + static_cast<std::size_t>(u)] = deg;
  }
  return m;
}

double dot(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm2(std::span<const double> a) { return std::sqrt(dot(a, a)); }

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  assert(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(std::span<double> x, double alpha) {
  for (double& v : x) v *= alpha;
}

void deflate_constant(std::span<double> x) {
  if (x.empty()) return;
  double mean = 0.0;
  for (double v : x) mean += v;
  mean /= static_cast<double>(x.size());
  for (double& v : x) v -= mean;
}

}  // namespace mgp
