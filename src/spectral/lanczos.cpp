#include "spectral/lanczos.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "spectral/jacobi.hpp"
#include "spectral/laplacian.hpp"

namespace mgp {

TridiagEigen tridiag_eigen(std::span<const double> alpha, std::span<const double> beta) {
  const std::size_t m = alpha.size();
  assert(beta.size() + 1 == m || (m == 0 && beta.empty()));
  std::vector<double> dense(m * m, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    dense[i * m + i] = alpha[i];
    if (i + 1 < m) {
      dense[i * m + i + 1] = beta[i];
      dense[(i + 1) * m + i] = beta[i];
    }
  }
  DenseEigen e = jacobi_eigen(dense, m);
  return TridiagEigen{std::move(e.values), std::move(e.vectors)};
}

namespace {

/// Number of eigenvalues of T strictly less than x (Sturm sequence count).
int sturm_count(std::span<const double> alpha, std::span<const double> beta, double x) {
  int count = 0;
  double d = 1.0;
  for (std::size_t i = 0; i < alpha.size(); ++i) {
    const double b2 = i == 0 ? 0.0 : beta[i - 1] * beta[i - 1];
    d = alpha[i] - x - (d == 0.0 ? b2 / 1e-300 : b2 / d);
    if (d < 0.0) ++count;
  }
  return count;
}

}  // namespace

TridiagPair tridiag_smallest(std::span<const double> alpha, std::span<const double> beta) {
  const std::size_t m = alpha.size();
  TridiagPair out;
  if (m == 0) return out;
  if (m == 1) {
    out.value = alpha[0];
    out.vector = {1.0};
    return out;
  }

  // Gershgorin interval, then bisection on the Sturm count.
  double lo = alpha[0], hi = alpha[0];
  for (std::size_t i = 0; i < m; ++i) {
    const double r = (i > 0 ? std::abs(beta[i - 1]) : 0.0) +
                     (i + 1 < m ? std::abs(beta[i]) : 0.0);
    lo = std::min(lo, alpha[i] - r);
    hi = std::max(hi, alpha[i] + r);
  }
  const double width = hi - lo;
  for (int it = 0; it < 70 && hi - lo > 1e-14 * std::max(1.0, width); ++it) {
    const double mid = 0.5 * (lo + hi);
    if (sturm_count(alpha, beta, mid) >= 1) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  out.value = 0.5 * (lo + hi);

  // Inverse iteration on (T - value*I) with a tiny perturbation to keep the
  // shifted matrix nonsingular.  Two sweeps of a tridiagonal solve via
  // Gaussian elimination with partial pivoting (LAPACK xSTEIN-style).
  const double shift = out.value + 1e-10 * std::max(1.0, width);
  std::vector<double> x(m, 1.0 / std::sqrt(static_cast<double>(m)));
  // Work arrays for the factorisation of the shifted matrix per sweep.
  std::vector<double> d(m), du(m > 1 ? m - 1 : 0), du2(m > 2 ? m - 2 : 0), dl(m > 1 ? m - 1 : 0);
  for (int sweep = 0; sweep < 3; ++sweep) {
    // Rebuild the tridiagonal T - shift.
    for (std::size_t i = 0; i < m; ++i) d[i] = alpha[i] - shift;
    for (std::size_t i = 0; i + 1 < m; ++i) {
      du[i] = beta[i];
      dl[i] = beta[i];
    }
    std::fill(du2.begin(), du2.end(), 0.0);
    // LU with partial pivoting, applying the row ops to x as we go.
    for (std::size_t i = 0; i + 1 < m; ++i) {
      if (std::abs(dl[i]) > std::abs(d[i])) {
        std::swap(d[i], dl[i]);
        std::swap(du[i], d[i + 1]);
        if (i + 2 < m) {
          du2[i] = du[i + 1];
          du[i + 1] = 0.0;
        }
        std::swap(x[i], x[i + 1]);
      }
      const double piv = d[i] == 0.0 ? 1e-300 : d[i];
      const double mult = dl[i] / piv;
      d[i + 1] -= mult * du[i];
      if (i + 2 < m) du[i + 1] -= mult * du2[i];
      x[i + 1] -= mult * x[i];
    }
    // Back substitution.
    for (std::size_t ii = m; ii-- > 0;) {
      double s = x[ii];
      if (ii + 1 < m) s -= du[ii] * x[ii + 1];
      if (ii + 2 < m) s -= du2[ii] * x[ii + 2];
      const double piv = d[ii] == 0.0 ? 1e-300 : d[ii];
      x[ii] = s / piv;
    }
    double nx = 0.0;
    for (double v : x) nx += v * v;
    nx = std::sqrt(nx);
    if (nx > 0) {
      for (double& v : x) v /= nx;
    }
  }
  out.vector = std::move(x);
  return out;
}

LanczosResult lanczos_fiedler(const Graph& g, std::span<const double> warm_start,
                              const LanczosOptions& opts, Rng& rng) {
  const std::size_t n = static_cast<std::size_t>(g.num_vertices());
  LanczosResult out;
  if (n == 0) return out;
  if (n == 1) {
    out.vector = {1.0};
    out.converged = true;
    return out;
  }

  // Scale for the relative convergence test: Gershgorin bound on ||L||.
  double lnorm = 1.0;
  {
    std::vector<double> diag = laplacian_diagonal(g);
    for (double d : diag) lnorm = std::max(lnorm, 2.0 * d);
  }

  const int max_m = std::min<int>(opts.max_iters, static_cast<int>(n) - 1);
  std::vector<std::vector<double>> q;  // Lanczos basis, each unit, ⟂ constant
  q.reserve(static_cast<std::size_t>(max_m) + 1);
  std::vector<double> alpha, beta;

  // Starting vector: warm start if supplied (projected off the constant),
  // otherwise random.
  std::vector<double> v(n);
  if (warm_start.size() == n) {
    std::copy(warm_start.begin(), warm_start.end(), v.begin());
  } else {
    for (double& x : v) x = rng.next_double() - 0.5;
  }
  deflate_constant(v);
  double nv = norm2(v);
  if (nv < 1e-14) {
    for (double& x : v) x = rng.next_double() - 0.5;
    deflate_constant(v);
    nv = norm2(v);
  }
  scale(v, 1.0 / nv);
  q.push_back(v);

  std::vector<double> w(n);
  auto finish = [&](int m) {
    // Ritz extraction: smallest eigenpair of T_m, mapped back through Q.
    TridiagPair tp = tridiag_smallest(
        alpha, std::span<const double>(beta.data(), alpha.size() - 1));
    out.value = tp.value;
    out.vector.assign(n, 0.0);
    for (int j = 0; j < m; ++j) {
      axpy(tp.vector[static_cast<std::size_t>(j)], q[static_cast<std::size_t>(j)],
           out.vector);
    }
    double nr = norm2(out.vector);
    if (nr > 0) scale(out.vector, 1.0 / nr);
    out.iterations = m;
  };

  for (int j = 0; j < max_m; ++j) {
    laplacian_apply(g, q.back(), w);
    double a = dot(w, q.back());
    alpha.push_back(a);
    axpy(-a, q.back(), w);
    if (j > 0) axpy(-beta.back(), q[static_cast<std::size_t>(j) - 1], w);
    // Full reorthogonalisation (including against the constant direction).
    deflate_constant(w);
    for (const auto& qi : q) axpy(-dot(w, qi), qi, w);

    double b = norm2(w);
    const int m = j + 1;

    // Convergence check: residual of the smallest Ritz pair is |b * s_m|.
    bool check = (m % opts.check_every == 0) || m == max_m || b < 1e-12 * lnorm;
    if (check) {
      TridiagPair tp = tridiag_smallest(
          alpha, std::span<const double>(beta.data(), alpha.size() - 1));
      double s_last = tp.vector[static_cast<std::size_t>(m) - 1];
      double resid = std::abs(b * s_last);
      if (resid <= opts.tol * lnorm || b < 1e-12 * lnorm || m == max_m) {
        out.residual = resid;
        out.converged = resid <= opts.tol * lnorm || b < 1e-12 * lnorm;
        finish(m);
        return out;
      }
    }

    beta.push_back(b);
    scale(w, 1.0 / b);
    q.push_back(w);
  }

  finish(static_cast<int>(alpha.size()));
  return out;
}

}  // namespace mgp
