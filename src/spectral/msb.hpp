// Multilevel Spectral Bisection (Barnard & Simon [2]) — the paper's main
// quality baseline (Figures 1, 2, 4).
//
// "The MSB algorithm coarsens the graph down to a few hundred vertices
// using random matching.  It partitions the coarse graph using spectral
// bisection and obtains the Fiedler vector of the coarser graph.  During
// uncoarsening, it obtains an approximate Fiedler vector of the next level
// fine graph by interpolating the Fiedler vector of the coarser graph, and
// computes a more accurate Fiedler vector using [an iterative solver]."
//
// Our iterative solver is warm-started Lanczos (see spectral/lanczos.hpp);
// the coarsest-level Fiedler vector is exact (dense Jacobi).  MSB-KL runs
// Kernighan-Lin refinement on the final bisection, as in Figure 2.
#pragma once

#include "core/kway.hpp"
#include "initpart/bisection_state.hpp"
#include "spectral/lanczos.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

namespace mgp {

struct MsbOptions {
  vid_t coarsen_to = 100;       ///< RM-coarsen until below this many vertices
  double min_shrink_factor = 0.95;
  LanczosOptions lanczos;       ///< per-level Fiedler refinement
  bool kl_refine = false;       ///< true = the MSB-KL variant
  KlOptions kl;                 ///< used when kl_refine is set
};

/// One MSB (or MSB-KL) bisection of g.
Bisection msb_bisect(const Graph& g, vwt_t target0, const MsbOptions& opts, Rng& rng);

/// k-way MSB partition by recursive bisection.
KwayResult msb_partition(const Graph& g, part_t k, const MsbOptions& opts, Rng& rng);

}  // namespace mgp
