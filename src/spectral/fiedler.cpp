#include "spectral/fiedler.hpp"

#include <cmath>

#include "spectral/jacobi.hpp"
#include "spectral/laplacian.hpp"

namespace mgp {

FiedlerResult fiedler_vector(const Graph& g, std::span<const double> warm_start,
                             const FiedlerOptions& opts, Rng& rng) {
  const vid_t n = g.num_vertices();
  FiedlerResult out;
  if (n <= 1) {
    out.vector.assign(static_cast<std::size_t>(n), 1.0);
    out.exact = true;
    return out;
  }

  if (n <= opts.dense_threshold) {
    std::vector<double> dense = laplacian_dense(g);
    DenseEigen e = jacobi_eigen(dense, static_cast<std::size_t>(n));
    // values[0] ~ 0 (constant vector); the Fiedler pair is index 1.
    out.value = e.values[1];
    out.vector.assign(e.vectors.begin() + static_cast<std::ptrdiff_t>(n),
                      e.vectors.begin() + static_cast<std::ptrdiff_t>(2 * n));
    deflate_constant(out.vector);
    double nr = norm2(out.vector);
    if (nr > 0) scale(out.vector, 1.0 / nr);
    out.exact = true;
    return out;
  }

  LanczosResult lr = lanczos_fiedler(g, warm_start, opts.lanczos, rng);
  out.value = lr.value;
  out.vector = std::move(lr.vector);
  return out;
}

}  // namespace mgp
