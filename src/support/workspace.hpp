// Pooled per-bisection workspaces: the zero-allocation hot path.
//
// One BisectWorkspace owns every transient buffer a multilevel bisection
// needs — the matching and visit order, the coarsening ladder's Contraction
// slots (whose CSR storage is recycled level by level), the initial
// partitioner's frontier/gain-queue/trial scratch, the KL engine's gain
// tables and move log, the projection ping-pong buffer, and a ScratchArena
// for call-local tables.  multilevel_bisect threads it through every kernel,
// so after the first bisection has warmed the buffers to the subproblem's
// size, the steady-state serial hot path performs no heap allocations at
// all (the returned labelling is the one per-call exception; the thread
// pool's task futures are the parallel-path exception).
//
// WorkspacePool hands workspaces to the recursive-bisection workers:
// checkout() pops a free workspace (or creates one — at most one per
// concurrent worker, ever) and the RAII Lease returns it, warm, on scope
// exit.  The pool records reuse and peak-footprint stats that
// core/kway.cpp publishes as the obs gauges `arena.bytes_peak`,
// `arena.reuse_hits`, and `arena.workspaces`.
//
// Determinism: a workspace changes *where* scratch bytes live, never what
// the kernels compute — every kernel re-initialises its scratch fully, and
// the RNG draw order is untouched.  Partitions are byte-identical with or
// without workspaces, across pool sizes, which the determinism suite
// asserts.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "coarsen/contract.hpp"
#include "coarsen/strategy.hpp"
#include "initpart/graph_grow.hpp"
#include "refine/kl.hpp"
#include "support/arena.hpp"

namespace mgp {

/// Every reusable buffer of one multilevel bisection.  Default-constructed
/// empty; warms to the subproblem's high-water size on first use.
struct BisectWorkspace {
  ScratchArena arena;

  // Coarsening.
  Matching match;
  std::vector<vid_t> match_order;  ///< sequential matchers' random visit order
  std::vector<vid_t> propose;      ///< parallel HEM's proposal table
  ContractScratch contract;
  CoarsenWorkspace coarsen;        ///< AD relaxation / n-level PQ scratch
  /// One slot per coarsening level.  unique_ptr keeps each Contraction's
  /// address stable while the vector grows, because the coarsening loop
  /// holds a pointer into the previous level's coarse graph.
  std::vector<std::unique_ptr<Contraction>> levels;

  // Initial partitioning.
  GrowScratch grow;
  std::vector<vid_t> median_order;  ///< spectral split's sort order

  // Refinement + projection.
  KlWorkspace kl;
  std::vector<part_t> proj;  ///< projection ping-pong buffer

  /// Heap bytes currently reserved across all members (capacity, not size).
  std::size_t bytes_reserved() const;
};

/// Thread-safe free list of BisectWorkspaces.  Sized by demand: concurrent
/// checkouts create workspaces (at most one per concurrent worker), returns
/// recycle them warm.
class WorkspacePool {
 public:
  struct Stats {
    std::size_t checkouts = 0;    ///< total checkout() calls
    std::size_t reuse_hits = 0;   ///< checkouts served from the free list
    std::size_t created = 0;      ///< workspaces ever constructed
    std::size_t bytes_peak = 0;   ///< max bytes_reserved() seen at return
  };

  /// RAII handle: returns the workspace to the pool on destruction.
  class Lease {
   public:
    Lease(WorkspacePool& pool, std::unique_ptr<BisectWorkspace> ws)
        : pool_(&pool), ws_(std::move(ws)) {}
    Lease(Lease&&) = default;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    Lease& operator=(Lease&&) = delete;
    ~Lease() {
      if (ws_) pool_->give_back(std::move(ws_));
    }
    BisectWorkspace* get() { return ws_.get(); }
    BisectWorkspace& operator*() { return *ws_; }
    BisectWorkspace* operator->() { return ws_.get(); }

   private:
    WorkspacePool* pool_;
    std::unique_ptr<BisectWorkspace> ws_;
  };

  WorkspacePool() = default;
  WorkspacePool(const WorkspacePool&) = delete;
  WorkspacePool& operator=(const WorkspacePool&) = delete;

  /// Pops a warm workspace, or creates one when the free list is empty.
  Lease checkout();

  /// Snapshot of the counters (copy; safe while leases are live).
  Stats stats() const;

 private:
  friend class Lease;
  void give_back(std::unique_ptr<BisectWorkspace> ws);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<BisectWorkspace>> free_;
  Stats stats_;
};

}  // namespace mgp
