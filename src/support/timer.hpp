// Wall-clock timers and a phase-time accumulator.
//
// The paper reports per-phase times (CTime, ITime, RTime, PTime, UTime); the
// PhaseTimers accumulator mirrors that breakdown so bench binaries can print
// table rows in the paper's own vocabulary.
#pragma once

#include <chrono>
#include <string>
#include <vector>

namespace mgp {

/// Simple monotonic stopwatch.
class Timer {
 public:
  Timer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }
  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Named accumulating timers, matching the paper's phase breakdown:
/// coarsen (CTime), initpart (ITime), refine (RTime), project (PTime).
/// UTime = ITime + RTime + PTime, as defined in Section 4.1.
class PhaseTimers {
 public:
  enum Phase { kCoarsen = 0, kInitPart, kRefine, kProject, kNumPhases };

  void add(Phase p, double seconds) { acc_[p] += seconds; }
  double get(Phase p) const { return acc_[p]; }
  /// Uncoarsening time as the paper defines it.
  double utime() const { return acc_[kInitPart] + acc_[kRefine] + acc_[kProject]; }
  double total() const {
    double t = 0;
    for (double a : acc_) t += a;
    return t;
  }
  void clear() { for (double& a : acc_) a = 0; }

 private:
  double acc_[kNumPhases] = {0, 0, 0, 0};
};

/// RAII guard that adds its lifetime to a PhaseTimers slot.
class ScopedPhase {
 public:
  ScopedPhase(PhaseTimers& timers, PhaseTimers::Phase phase)
      : timers_(timers), phase_(phase) {}
  ~ScopedPhase() { timers_.add(phase_, timer_.seconds()); }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  PhaseTimers& timers_;
  PhaseTimers::Phase phase_;
  Timer timer_;
};

}  // namespace mgp
