#include "support/workspace.hpp"

#include <algorithm>

namespace mgp {

std::size_t BisectWorkspace::bytes_reserved() const {
  std::size_t total = arena.bytes_reserved();
  total += match.match.capacity() * sizeof(vid_t);
  total += match_order.capacity() * sizeof(vid_t);
  total += propose.capacity() * sizeof(vid_t);
  total += contract.memory_bytes();
  total += coarsen.bytes_reserved();
  total += levels.capacity() * sizeof(std::unique_ptr<Contraction>);
  for (const auto& level : levels) {
    if (level) total += level->memory_bytes();
  }
  total += grow.memory_bytes();
  total += median_order.capacity() * sizeof(vid_t);
  total += kl.memory_bytes();
  total += proj.capacity() * sizeof(part_t);
  return total;
}

WorkspacePool::Lease WorkspacePool::checkout() {
  std::unique_ptr<BisectWorkspace> ws;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.checkouts;
    if (!free_.empty()) {
      ++stats_.reuse_hits;
      ws = std::move(free_.back());
      free_.pop_back();
    } else {
      ++stats_.created;
    }
  }
  if (!ws) ws = std::make_unique<BisectWorkspace>();
  return Lease(*this, std::move(ws));
}

void WorkspacePool::give_back(std::unique_ptr<BisectWorkspace> ws) {
  const std::size_t bytes = ws->bytes_reserved();
  std::lock_guard<std::mutex> lock(mu_);
  stats_.bytes_peak = std::max(stats_.bytes_peak, bytes);
  free_.push_back(std::move(ws));
}

WorkspacePool::Stats WorkspacePool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace mgp
