#include "support/arena.hpp"

#include <algorithm>

namespace mgp {

void* ScratchArena::alloc_bytes(std::size_t bytes, std::size_t align) {
  // Keep every handout maximally aligned so interleaved element types never
  // see a misaligned pointer; the padding is charged to the epoch.
  const std::size_t step = (bytes + alignof(std::max_align_t) - 1) &
                           ~(alignof(std::max_align_t) - 1);
  (void)align;  // subsumed by max_align_t rounding
  void* p;
  if (cur_ < chunks_.size() && off_ + step <= chunks_[cur_].size) {
    p = chunks_[cur_].data.get() + off_;
    off_ += step;
  } else {
    p = alloc_slow(step);
  }
  used_ += step;
  peak_ = std::max(peak_, used_);
  return p;
}

void* ScratchArena::alloc_slow(std::size_t bytes) {
  // Advance to the next chunk that fits; append a fresh one when none does.
  // Growth doubles the last chunk so the number of chunks per epoch is
  // logarithmic even under adversarial request sequences.
  while (cur_ + 1 < chunks_.size()) {
    ++cur_;
    off_ = 0;
    if (bytes <= chunks_[cur_].size) {
      off_ = bytes;
      return chunks_[cur_].data.get();
    }
  }
  std::size_t size = chunks_.empty() ? kMinChunk : chunks_.back().size * 2;
  size = std::max(size, bytes);
  Chunk c;
  c.data = std::make_unique<std::byte[]>(size);
  c.size = size;
  ++chunk_allocs_;
  chunks_.push_back(std::move(c));
  cur_ = chunks_.size() - 1;
  off_ = bytes;
  return chunks_[cur_].data.get();
}

void ScratchArena::reset() {
  if (chunks_.size() > 1) {
    // The last epoch fragmented across chunks: coalesce into one chunk
    // covering the peak, so future epochs bump a single region.
    const std::size_t size = std::max(peak_, kMinChunk);
    chunks_.clear();
    Chunk c;
    c.data = std::make_unique<std::byte[]>(size);
    c.size = size;
    ++chunk_allocs_;
    chunks_.push_back(std::move(c));
  }
  cur_ = 0;
  off_ = 0;
  used_ = 0;
}

void ScratchArena::release() {
  chunks_.clear();
  cur_ = off_ = used_ = 0;
}

std::size_t ScratchArena::bytes_reserved() const {
  std::size_t total = 0;
  for (const Chunk& c : chunks_) total += c.size;
  return total;
}

}  // namespace mgp
