// Fixed-size worker pool with work-helping waits and deterministic
// data-parallel loops (extension; threading model in DESIGN.md).
//
// The paper observes (§1) that "the coarsening phase of these methods is
// easy to parallelize"; this pool is the substrate that lets the whole
// pipeline — matching, contraction, and the recursive-bisection tree —
// exploit that on shared memory without sacrificing reproducibility:
//
//   * submit() returns a std::future; wait_help() lets a task block on a
//     future while executing other queued tasks, so nested fork/join
//     (recursive bisection spawning sub-bisections from inside a pool task)
//     cannot deadlock on a fixed-size pool.
//   * parallel_for() splits [0, n) into contiguous chunks processed
//     concurrently.  Chunk boundaries are a pure function of (n, chunk
//     count), and callers merge per-chunk results in chunk order, so any
//     algorithm built on it produces byte-identical output for every
//     thread count (see coarsen/contract.cpp for the canonical use).
//   * A pool constructed with 1 thread spawns no workers at all: every
//     submit and parallel_for runs inline on the caller, which is exactly
//     the pre-pool sequential behavior.
#pragma once

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "support/types.hpp"

namespace mgp {

class ThreadPool {
 public:
  /// Spawns `num_threads - 1` workers (the caller itself is the remaining
  /// executor via run-inline submits and wait_help).  num_threads <= 1 or
  /// 0 workers means fully inline execution.  num_threads == 0 resolves to
  /// hardware_concurrency().
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The parallelism degree this pool was built for (>= 1): worker threads
  /// plus the calling thread.
  int num_threads() const { return num_threads_; }

  /// hardware_concurrency(), never 0.
  static int hardware_threads();

  /// Enqueues `fn` and returns its future.  With no workers the call runs
  /// inline before returning (the future is already ready).
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn&>> {
    using R = std::invoke_result_t<Fn&>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> fut = task->get_future();
    if (workers_.empty()) {
      (*task)();
      return fut;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.emplace_back([task]() { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Pops and runs one queued task on the calling thread.  Returns false if
  /// the queue was empty.  The building block of deadlock-free nested waits.
  bool run_one();

  /// Blocks until `fut` is ready, executing queued tasks while waiting so a
  /// pool task can join its own children without starving the pool.
  template <typename T>
  T wait_help(std::future<T>& fut) {
    using namespace std::chrono_literals;
    while (fut.wait_for(0s) != std::future_status::ready) {
      if (!run_one()) fut.wait_for(50us);
    }
    return fut.get();
  }

  /// Runs body(begin, end) over [0, n) split into num_threads() contiguous
  /// chunks (the caller executes one of them).  Blocks until all chunks
  /// finish.  Exceptions propagate from the first failing chunk.
  template <typename Fn>
  void parallel_for(vid_t n, Fn&& body) {
    parallel_for_chunks(n, num_threads_,
                        [&body](int, vid_t begin, vid_t end) { body(begin, end); });
  }

  /// As parallel_for but with an explicit chunk count and the chunk index
  /// passed to the body — for algorithms that keep per-chunk scratch state
  /// and merge it in chunk order (deterministic regardless of scheduling).
  /// Chunk c covers [c*ceil(n/chunks), min(n, (c+1)*ceil(n/chunks))).
  template <typename Fn>
  void parallel_for_chunks(vid_t n, int chunks, Fn&& body) {
    if (n <= 0) return;
    chunks = std::max(1, chunks);
    const vid_t step = (n + static_cast<vid_t>(chunks) - 1) / static_cast<vid_t>(chunks);
    if (chunks == 1 || workers_.empty() || step >= n) {
      for (int c = 0; c < chunks; ++c) {
        const vid_t begin = std::min<vid_t>(n, static_cast<vid_t>(c) * step);
        const vid_t end = std::min<vid_t>(n, begin + step);
        if (begin >= end) break;
        body(c, begin, end);
      }
      return;
    }
    std::vector<std::future<void>> futs;
    futs.reserve(static_cast<std::size_t>(chunks) - 1);
    for (int c = 1; c < chunks; ++c) {
      const vid_t begin = std::min<vid_t>(n, static_cast<vid_t>(c) * step);
      const vid_t end = std::min<vid_t>(n, begin + step);
      if (begin >= end) break;
      futs.push_back(submit([&body, c, begin, end]() { body(c, begin, end); }));
    }
    body(0, vid_t{0}, std::min<vid_t>(n, step));
    for (auto& f : futs) wait_help(f);
  }

 private:
  void worker_loop(int worker_index);

  int num_threads_ = 1;
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace mgp
