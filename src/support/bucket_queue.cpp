#include "support/bucket_queue.hpp"

#include <cassert>

namespace mgp {

void BucketQueue::reset(vid_t n, gain_t max_gain) {
  offset_ = max_gain;
  head_.assign(static_cast<std::size_t>(2 * max_gain + 1), kInvalidVid);
  node_.assign(static_cast<std::size_t>(n), Node{});
  max_bucket_ = -1;
  size_ = 0;
}

void BucketQueue::link_front(vid_t v, std::size_t bucket) {
  Node& nd = node_[static_cast<std::size_t>(v)];
  nd.prev = kInvalidVid;
  nd.next = head_[bucket];
  if (nd.next != kInvalidVid) node_[static_cast<std::size_t>(nd.next)].prev = v;
  head_[bucket] = v;
}

void BucketQueue::unlink(vid_t v) {
  Node& nd = node_[static_cast<std::size_t>(v)];
  std::size_t bucket = bucket_of(nd.gain);
  if (nd.prev != kInvalidVid) {
    node_[static_cast<std::size_t>(nd.prev)].next = nd.next;
  } else {
    head_[bucket] = nd.next;
  }
  if (nd.next != kInvalidVid) node_[static_cast<std::size_t>(nd.next)].prev = nd.prev;
}

void BucketQueue::insert(vid_t v, gain_t gain) {
  assert(!contains(v));
  Node& nd = node_[static_cast<std::size_t>(v)];
  nd.gain = gain;
  nd.in_queue = true;
  std::size_t bucket = bucket_of(gain);
  assert(bucket < head_.size());
  link_front(v, bucket);
  max_bucket_ = std::max(max_bucket_, static_cast<std::ptrdiff_t>(bucket));
  ++size_;
}

void BucketQueue::update(vid_t v, gain_t new_gain) {
  assert(contains(v));
  Node& nd = node_[static_cast<std::size_t>(v)];
  if (nd.gain == new_gain) return;
  unlink(v);
  nd.gain = new_gain;
  std::size_t bucket = bucket_of(new_gain);
  assert(bucket < head_.size());
  link_front(v, bucket);
  max_bucket_ = std::max(max_bucket_, static_cast<std::ptrdiff_t>(bucket));
}

void BucketQueue::remove(vid_t v) {
  assert(contains(v));
  unlink(v);
  node_[static_cast<std::size_t>(v)].in_queue = false;
  --size_;
}

void BucketQueue::settle_max() const {
  assert(size_ > 0);
  while (head_[static_cast<std::size_t>(max_bucket_)] == kInvalidVid) --max_bucket_;
}

vid_t BucketQueue::pop_max() {
  assert(!empty());
  settle_max();
  vid_t v = head_[static_cast<std::size_t>(max_bucket_)];
  remove(v);
  return v;
}

}  // namespace mgp
