// Bump-allocated scratch arena with high-water-mark reuse.
//
// The multilevel ladder's hot path needs many short-lived, size-bounded
// buffers (scatter tables, visit orders, move logs) whose lifetimes nest
// inside a single kernel invocation.  Allocating them per call is pure
// allocator traffic — Sanders & Schulz attribute a large constant-factor
// share of a multilevel partitioner's runtime to exactly this churn — so the
// arena hands out typed spans from pooled chunks instead:
//
//   * alloc<T>(n) bumps a pointer; no heap activity once the arena has
//     grown to its high-water mark;
//   * reset() rewinds to empty while keeping the memory, so the next kernel
//     call reuses the same bytes (and the same cache lines);
//   * after a reset that observed more than one chunk, the arena coalesces
//     into a single chunk sized to the peak — the steady state is one chunk
//     and zero mallocs, which the allocation-guard tests assert.
//
// The arena is single-threaded by design: each BisectWorkspace (see
// support/workspace.hpp) owns one, and workspaces are checked out by one
// worker at a time.  Only trivially-destructible element types are allowed;
// spans are uninitialized and valid until the next reset().
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace mgp {

class ScratchArena {
 public:
  ScratchArena() = default;
  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  /// Uninitialized span of n elements, aligned for T.  Valid until reset().
  template <typename T>
  std::span<T> alloc(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is never destructed");
    void* p = alloc_bytes(n * sizeof(T), alignof(T));
    return {static_cast<T*>(p), n};
  }

  /// Rewinds to empty, keeping capacity.  If the last epoch spilled into
  /// more than one chunk, the chunks are replaced by a single one sized to
  /// the high-water mark (one allocation now, none afterwards).
  void reset();

  /// Drops all memory (capacity included).  Stats survive.
  void release();

  /// Bytes handed out since the last reset().
  std::size_t bytes_used() const { return used_; }
  /// Largest bytes_used() ever observed (the high-water mark).
  std::size_t bytes_peak() const { return peak_; }
  /// Total bytes currently reserved across chunks.
  std::size_t bytes_reserved() const;
  /// Number of chunk mallocs performed over the arena's lifetime.  Constant
  /// once warm — the allocation-regression tests watch this via the global
  /// counting allocator.
  std::size_t chunk_allocs() const { return chunk_allocs_; }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  void* alloc_bytes(std::size_t bytes, std::size_t align);
  /// Moves to a chunk that fits `bytes`, allocating one if needed.
  void* alloc_slow(std::size_t bytes);

  static constexpr std::size_t kMinChunk = 1 << 14;  // 16 KiB floor

  std::vector<Chunk> chunks_;
  std::size_t cur_ = 0;      // chunk being bumped
  std::size_t off_ = 0;      // offset into chunks_[cur_]
  std::size_t used_ = 0;     // bytes handed out this epoch (incl. padding)
  std::size_t peak_ = 0;
  std::size_t chunk_allocs_ = 0;
};

}  // namespace mgp
