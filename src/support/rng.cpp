#include "support/rng.hpp"

#include <numeric>

namespace mgp {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // All-zero state is the one invalid state for xoshiro; splitmix64 cannot
  // produce four zero outputs in a row, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  // Lemire's multiply-shift rejection method: unbiased, one division in the
  // (rare) rejection path only.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  std::uint64_t low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

Rng Rng::split() { return Rng(next_u64()); }

std::vector<vid_t> Rng::permutation(vid_t n) {
  std::vector<vid_t> perm;
  permutation_into(n, perm);
  return perm;
}

void Rng::permutation_into(vid_t n, std::vector<vid_t>& out) {
  out.resize(static_cast<std::size_t>(n));
  std::iota(out.begin(), out.end(), vid_t{0});
  shuffle(std::span<vid_t>(out));
}

}  // namespace mgp
