#include "support/thread_pool.hpp"

#include <string>

#include "obs/trace.hpp"

namespace mgp {

int ThreadPool::hardware_threads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads <= 0) num_threads = hardware_threads();
  num_threads_ = num_threads;
  const int workers = num_threads - 1;
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i]() { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
  // Tasks still queued at destruction run on the destructing thread so
  // their futures never dangle in a broken-promise state.
  while (run_one()) {
  }
}

bool ThreadPool::run_one() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  {
    obs::Span span("pool.task");
    task();
  }
  return true;
}

void ThreadPool::worker_loop(int worker_index) {
  obs::set_thread_name("pool-worker-" + std::to_string(worker_index));
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this]() { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to do
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    obs::Span span("pool.task");
    task();
  }
}

}  // namespace mgp
