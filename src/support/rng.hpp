// Deterministic random number generation for every randomised phase.
//
// Section 4 of the paper: "Since the nature of the multilevel algorithm
// discussed is randomized, we performed all experiments with fixed seed."
// Every algorithm in mgp that makes a random choice takes an explicit Rng so
// experiments are exactly reproducible and independent phases can be given
// independent streams (split()).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "support/types.hpp"

namespace mgp {

/// Small, fast, high-quality PRNG (xoshiro256**).  Not cryptographic.
class Rng {
 public:
  /// Seeds the four words of state from a single 64-bit seed via splitmix64,
  /// so nearby seeds produce unrelated streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64 random bits.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound) using Lemire's unbiased reduction.
  /// bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform vertex id in [0, n).
  vid_t next_vid(vid_t n) { return static_cast<vid_t>(next_below(static_cast<std::uint64_t>(n))); }

  /// Returns an independent generator (for a sub-phase) without disturbing
  /// the reproducibility of this stream's future values.
  Rng split();

  /// Fisher–Yates shuffle of a span.
  template <typename T>
  void shuffle(std::span<T> data) {
    for (std::size_t i = data.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      std::swap(data[i - 1], data[j]);
    }
  }

  /// Convenience: a random permutation of 0..n-1.
  std::vector<vid_t> permutation(vid_t n);

  /// As permutation(), but into a caller-owned buffer (resized to n; no
  /// allocation once its capacity has warmed).  Draws the identical RNG
  /// stream, so the two forms are interchangeable byte for byte.
  void permutation_into(vid_t n, std::vector<vid_t>& out);

 private:
  std::uint64_t s_[4];
};

}  // namespace mgp
