// Fundamental scalar types used throughout mgp.
//
// The paper's graphs are in the 10^4..10^6 vertex range; 32-bit vertex ids
// are ample and keep CSR arrays compact (cache behaviour dominates the run
// time of coarsening and refinement).  Edge *offsets* are 64-bit so graphs
// with more than 2^31 directed edges still index correctly, and all weight
// accumulators are 64-bit because contraction sums weights level after level.
#pragma once

#include <cstdint>

namespace mgp {

/// Vertex id. Valid ids are 0 .. n-1; kInvalidVid marks "none".
using vid_t = std::int32_t;

/// Index into CSR adjacency arrays (directed edge slot).
using eid_t = std::int64_t;

/// Vertex weight (sum of collapsed fine vertices' weights).
using vwt_t = std::int64_t;

/// Edge weight (sum of collapsed parallel edges' weights).
using ewt_t = std::int64_t;

/// Partition side / block id.
using part_t = std::int32_t;

inline constexpr vid_t kInvalidVid = -1;
inline constexpr part_t kInvalidPart = -1;

}  // namespace mgp
