// Bucket priority queue for Kernighan–Lin-style gain tracking.
//
// Section 3.3: "The data structure used to store the gains is a hash table
// that allows insertions, updates, and extraction of the vertex with maximum
// gain in constant time."  The classical realisation of that requirement
// (Fiduccia–Mattheyses) is an array of doubly-linked gain buckets indexed by
// gain, plus a per-vertex handle; all three operations are O(1) amortised.
//
// Gains are bounded by the maximum weighted degree of the level's graph, so
// the bucket array is sized once per refinement call.  The queue stores
// vertices keyed by an integer gain in [-max_gain, +max_gain].
#pragma once

#include <cstdint>
#include <vector>

#include "support/types.hpp"

namespace mgp {

/// Max-priority queue over vertices with integer keys (gains), implemented
/// as FM gain buckets.  Capacity (number of vertices) and the key range are
/// fixed at reset() time; memory is reused across calls.
class BucketQueue {
 public:
  using gain_t = std::int64_t;

  BucketQueue() = default;

  /// Prepares the queue for vertices 0..n-1 with keys in [-max_gain, max_gain].
  /// O(n + max_gain) the first time, O(size of previous use) afterwards.
  void reset(vid_t n, gain_t max_gain);

  /// True if v is currently in the queue.
  bool contains(vid_t v) const { return node_[static_cast<std::size_t>(v)].in_queue; }

  /// Inserts v with the given gain.  Pre: !contains(v), |gain| <= max_gain.
  void insert(vid_t v, gain_t gain);

  /// Changes v's key.  Pre: contains(v).
  void update(vid_t v, gain_t new_gain);

  /// Removes v.  Pre: contains(v).
  void remove(vid_t v);

  /// Key currently associated with v.  Pre: contains(v).
  gain_t gain_of(vid_t v) const { return node_[static_cast<std::size_t>(v)].gain; }

  /// Removes and returns a vertex with maximum gain (LIFO within a bucket,
  /// which is the classical FM tie-break).  Pre: !empty().
  vid_t pop_max();

  /// Maximum gain currently in the queue.  Pre: !empty().
  gain_t max_gain() const {
    settle_max();
    return static_cast<gain_t>(max_bucket_) - offset_;
  }

  bool empty() const { return size_ == 0; }
  vid_t size() const { return size_; }

 private:
  struct Node {
    vid_t prev = kInvalidVid;
    vid_t next = kInvalidVid;
    gain_t gain = 0;
    bool in_queue = false;
  };

  std::size_t bucket_of(gain_t gain) const {
    return static_cast<std::size_t>(gain + offset_);
  }
  void unlink(vid_t v);
  void link_front(vid_t v, std::size_t bucket);
  /// Walks max_bucket_ down to the first non-empty bucket (amortised O(1):
  /// each decrement is paid for by an insert/update that raised it).
  void settle_max() const;

  std::vector<vid_t> head_;  // bucket -> first vertex or kInvalidVid
  std::vector<Node> node_;   // per-vertex intrusive list node + key
  gain_t offset_ = 0;        // maps gain -> bucket index
  mutable std::ptrdiff_t max_bucket_ = -1;
  vid_t size_ = 0;
};

}  // namespace mgp
