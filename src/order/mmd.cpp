#include "order/mmd.hpp"

#include <algorithm>
#include <cassert>

#include "support/bucket_queue.hpp"

namespace mgp {
namespace {

/// Quotient-graph minimum-degree engine.
///
/// Two marker arrays are used: `marker_` for transient deduplication scans
/// (each scan takes a fresh stamp), and `round_marker_` to tag the
/// variables affected by the current round's eliminations (independence
/// test of multiple elimination + touched-set dedup).
class QuotientGraph {
 public:
  explicit QuotientGraph(const Graph& g, const MmdOptions& opts)
      : n_(g.num_vertices()), opts_(opts) {
    const std::size_t n = static_cast<std::size_t>(n_);
    vlist_.resize(n);
    elist_.resize(n);
    svsize_.assign(n, 1);
    degree_.assign(n, 0);
    state_.assign(n, kVariable);
    merge_parent_.assign(n, kInvalidVid);
    member_next_.assign(n, kInvalidVid);
    member_tail_.resize(n);
    marker_.assign(n, 0);
    round_marker_.assign(n, 0);
    for (vid_t v = 0; v < n_; ++v) {
      auto nbrs = g.neighbors(v);
      vlist_[static_cast<std::size_t>(v)].assign(nbrs.begin(), nbrs.end());
      member_tail_[static_cast<std::size_t>(v)] = v;
      degree_[static_cast<std::size_t>(v)] = static_cast<vwt_t>(nbrs.size());
    }
    queue_.reset(n_, static_cast<BucketQueue::gain_t>(n_));
    for (vid_t v = 0; v < n_; ++v) {
      queue_.insert(v, -static_cast<BucketQueue::gain_t>(
                           degree_[static_cast<std::size_t>(v)]));
    }
  }

  std::vector<vid_t> run() {
    std::vector<vid_t> order;
    order.reserve(static_cast<std::size_t>(n_));
    std::vector<vid_t> deferred;
    std::vector<vid_t> touched;

    while (!queue_.empty()) {
      const BucketQueue::gain_t min_key = queue_.max_gain();
      deferred.clear();
      touched.clear();
      ++round_stamp_;

      // Eliminate a maximal independent set of minimum-degree variables.
      while (!queue_.empty() && queue_.max_gain() == min_key) {
        vid_t p = queue_.pop_max();
        if (round_marker_[static_cast<std::size_t>(p)] == round_stamp_) {
          deferred.push_back(p);  // adjacent to this round's eliminations
          continue;
        }
        eliminate(p, order, touched);
        if (!opts_.multiple) break;
      }
      for (vid_t p : deferred) {
        queue_.insert(p, -static_cast<BucketQueue::gain_t>(
                             degree_[static_cast<std::size_t>(p)]));
      }

      update_degrees(touched);
      if (opts_.supervariables) merge_indistinguishable(touched);
    }
    assert(order.size() == static_cast<std::size_t>(n_));
    return order;
  }

 private:
  enum State : char { kVariable, kElement, kAbsorbedVar, kDeadElement };

  bool is_live_var(vid_t v) const { return state_[static_cast<std::size_t>(v)] == kVariable; }
  bool is_elem(vid_t v) const { return state_[static_cast<std::size_t>(v)] == kElement; }

  /// Union-find over absorbed supervariables (path-halving).
  vid_t find(vid_t v) {
    while (merge_parent_[static_cast<std::size_t>(v)] != kInvalidVid) {
      vid_t p = merge_parent_[static_cast<std::size_t>(v)];
      vid_t gp = merge_parent_[static_cast<std::size_t>(p)];
      if (gp != kInvalidVid) merge_parent_[static_cast<std::size_t>(v)] = gp;
      v = p;
    }
    return v;
  }

  /// Resolves, deduplicates and prunes a variable list in place; drops
  /// `self` and anything that is no longer a live variable.
  void compact_variable_list(std::vector<vid_t>& list, vid_t self) {
    ++stamp_;
    std::size_t out = 0;
    for (vid_t raw : list) {
      // A raw id that was eliminated is stale (the edge is now covered by
      // an element in the elist); absorbed ids resolve to representatives.
      if (state_[static_cast<std::size_t>(raw)] == kElement ||
          state_[static_cast<std::size_t>(raw)] == kDeadElement) {
        continue;
      }
      vid_t v = find(raw);
      if (v == self || !is_live_var(v)) continue;
      if (marker_[static_cast<std::size_t>(v)] == stamp_) continue;
      marker_[static_cast<std::size_t>(v)] = stamp_;
      list[out++] = v;
    }
    list.resize(out);
  }

  void eliminate(vid_t p, std::vector<vid_t>& order, std::vector<vid_t>& touched) {
    const std::size_t sp = static_cast<std::size_t>(p);

    // Mass elimination: the supervariable's member chain is emitted in one go.
    for (vid_t m = p; m != kInvalidVid; m = member_next_[static_cast<std::size_t>(m)]) {
      order.push_back(m);
    }

    // L_p = adjacent variables ∪ variables of adjacent elements.
    std::vector<vid_t> lp;
    ++stamp_;
    const std::uint32_t dedup = stamp_;
    auto add_var = [&](vid_t raw) {
      if (state_[static_cast<std::size_t>(raw)] == kElement ||
          state_[static_cast<std::size_t>(raw)] == kDeadElement) {
        return;
      }
      vid_t v = find(raw);
      if (v == p || !is_live_var(v)) return;
      if (marker_[static_cast<std::size_t>(v)] == dedup) return;
      marker_[static_cast<std::size_t>(v)] = dedup;
      lp.push_back(v);
    };
    for (vid_t v : vlist_[sp]) add_var(v);
    for (vid_t e : elist_[sp]) {
      if (!is_elem(e)) continue;
      for (vid_t v : vlist_[static_cast<std::size_t>(e)]) add_var(v);
      // Element absorption: e's variables are now covered by p.
      state_[static_cast<std::size_t>(e)] = kDeadElement;
      vlist_[static_cast<std::size_t>(e)].clear();
      vlist_[static_cast<std::size_t>(e)].shrink_to_fit();
    }

    state_[sp] = kElement;
    vlist_[sp] = lp;
    elist_[sp].clear();
    elist_[sp].shrink_to_fit();

    // Update each v in L_p.
    for (vid_t v : lp) {
      const std::size_t sv = static_cast<std::size_t>(v);
      // elist: keep live elements, append p.
      std::size_t out = 0;
      for (vid_t e : elist_[sv]) {
        if (is_elem(e)) elist_[sv][out++] = e;
      }
      elist_[sv].resize(out);
      elist_[sv].push_back(p);

      if (queue_.contains(v)) queue_.remove(v);
      if (round_marker_[sv] != round_stamp_) {
        round_marker_[sv] = round_stamp_;
        touched.push_back(v);
      }
    }
    // Quotient-graph compression: entries of v's vlist that are in L_p are
    // now reachable through element p — drop them.  The `dedup` stamp still
    // tags exactly the members of L_p (no scan has bumped marker_ since).
    for (vid_t v : lp) {
      auto& lst = vlist_[static_cast<std::size_t>(v)];
      std::size_t out = 0;
      for (vid_t u : lst) {
        if (state_[static_cast<std::size_t>(u)] == kElement ||
            state_[static_cast<std::size_t>(u)] == kDeadElement) {
          continue;  // stale eliminated entry, covered by an element
        }
        vid_t r = find(u);
        if (!is_live_var(r)) continue;
        if (marker_[static_cast<std::size_t>(r)] == dedup) continue;  // in L_p
        lst[out++] = u;
      }
      lst.resize(out);
    }
  }

  /// Exact external degree (in original-vertex units) of each touched
  /// variable; refreshed in the bucket queue.
  void update_degrees(const std::vector<vid_t>& touched) {
    for (vid_t v : touched) {
      const std::size_t sv = static_cast<std::size_t>(v);
      if (!is_live_var(v)) continue;  // merged into a supervariable
      ++stamp_;
      const std::uint32_t seen = stamp_;
      marker_[sv] = seen;  // exclude self
      vwt_t d = 0;
      auto count = [&](vid_t raw) {
        if (state_[static_cast<std::size_t>(raw)] == kElement ||
            state_[static_cast<std::size_t>(raw)] == kDeadElement) {
          return;
        }
        vid_t r = find(raw);
        if (!is_live_var(r)) return;
        if (marker_[static_cast<std::size_t>(r)] == seen) return;
        marker_[static_cast<std::size_t>(r)] = seen;
        d += svsize_[static_cast<std::size_t>(r)];
      };
      for (vid_t u : vlist_[sv]) count(u);
      std::size_t out = 0;
      for (vid_t e : elist_[sv]) {
        if (!is_elem(e)) continue;
        elist_[sv][out++] = e;
        for (vid_t u : vlist_[static_cast<std::size_t>(e)]) count(u);
      }
      elist_[sv].resize(out);
      degree_[sv] = d;
      if (queue_.contains(v)) {
        queue_.update(v, -static_cast<BucketQueue::gain_t>(d));
      } else {
        queue_.insert(v, -static_cast<BucketQueue::gain_t>(d));
      }
    }
  }

  /// Indistinguishable-variable detection among this round's touched set.
  void merge_indistinguishable(const std::vector<vid_t>& touched) {
    struct Cand {
      std::uint64_t hash;
      vid_t v;
    };
    std::vector<Cand> cands;
    cands.reserve(touched.size());
    for (vid_t v : touched) {
      const std::size_t sv = static_cast<std::size_t>(v);
      if (!is_live_var(v)) continue;
      compact_variable_list(vlist_[sv], v);
      std::uint64_t h = 1469598103934665603ULL;
      for (vid_t u : vlist_[sv]) {
        h += 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(u) + 1);
      }
      for (vid_t e : elist_[sv]) {
        if (is_elem(e)) h += 0xc2b2ae3d27d4eb4fULL * (static_cast<std::uint64_t>(e) + 1);
      }
      cands.push_back({h, v});
    }
    std::sort(cands.begin(), cands.end(), [](const Cand& a, const Cand& b) {
      if (a.hash != b.hash) return a.hash < b.hash;
      return a.v < b.v;
    });

    for (std::size_t i = 0; i < cands.size(); ++i) {
      vid_t u = cands[i].v;
      if (!is_live_var(u)) continue;
      for (std::size_t j = i + 1;
           j < cands.size() && cands[j].hash == cands[i].hash; ++j) {
        vid_t v = cands[j].v;
        if (!is_live_var(v)) continue;
        if (indistinguishable(u, v)) absorb_supervariable(u, v);
      }
    }
  }

  bool indistinguishable(vid_t u, vid_t v) {
    const std::size_t su = static_cast<std::size_t>(u);
    const std::size_t sv = static_cast<std::size_t>(v);
    compact_variable_list(vlist_[su], u);
    compact_variable_list(vlist_[sv], v);

    auto live_elems = [&](std::size_t s) {
      std::vector<vid_t> es;
      for (vid_t e : elist_[s]) {
        if (is_elem(e)) es.push_back(e);
      }
      std::sort(es.begin(), es.end());
      es.erase(std::unique(es.begin(), es.end()), es.end());
      return es;
    };
    if (live_elems(su) != live_elems(sv)) return false;

    // vlist(u) \ {v} must equal vlist(v) \ {u}.
    auto vars_minus = [&](std::size_t s, vid_t excl) {
      std::vector<vid_t> vs;
      for (vid_t x : vlist_[s]) {
        if (x != excl) vs.push_back(x);
      }
      std::sort(vs.begin(), vs.end());
      return vs;
    };
    return vars_minus(su, v) == vars_minus(sv, u);
  }

  void absorb_supervariable(vid_t u, vid_t v) {
    const std::size_t su = static_cast<std::size_t>(u);
    const std::size_t sv = static_cast<std::size_t>(v);
    const vwt_t size_v = svsize_[sv];
    svsize_[su] += size_v;
    state_[sv] = kAbsorbedVar;
    merge_parent_[sv] = u;
    member_next_[static_cast<std::size_t>(member_tail_[su])] = v;
    member_tail_[su] = member_tail_[sv];
    if (queue_.contains(v)) queue_.remove(v);
    vlist_[sv].clear();
    vlist_[sv].shrink_to_fit();
    elist_[sv].clear();
    elist_[sv].shrink_to_fit();
    // v was an external neighbour of u; now interior to the supervariable.
    degree_[su] = std::max<vwt_t>(0, degree_[su] - size_v);
    if (queue_.contains(u)) {
      queue_.update(u, -static_cast<BucketQueue::gain_t>(degree_[su]));
    }
  }

  vid_t n_;
  MmdOptions opts_;
  std::vector<std::vector<vid_t>> vlist_;
  std::vector<std::vector<vid_t>> elist_;
  std::vector<vwt_t> svsize_;
  std::vector<vwt_t> degree_;
  std::vector<char> state_;
  std::vector<vid_t> merge_parent_;
  std::vector<vid_t> member_next_;
  std::vector<vid_t> member_tail_;
  std::vector<std::uint32_t> marker_;
  std::vector<std::uint32_t> round_marker_;
  std::uint32_t stamp_ = 0;
  std::uint32_t round_stamp_ = 0;
  BucketQueue queue_;
};

}  // namespace

std::vector<vid_t> mmd_order(const Graph& g, const MmdOptions& opts) {
  if (g.num_vertices() == 0) return {};
  QuotientGraph qg(g, opts);
  return qg.run();
}

}  // namespace mgp
