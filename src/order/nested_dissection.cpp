#include "order/nested_dissection.hpp"

#include <cassert>

#include "graph/permute.hpp"
#include "order/mmd.hpp"
#include "order/separator.hpp"

namespace mgp {
namespace {

/// Orders `g` (with identities `to_global`), appending original-vertex ids
/// to `order` such that recursion level by recursion level the separator
/// comes last.  `order` is filled back to front: callers reserve the tail
/// slice [lo, hi) of the final permutation for this subgraph.
void nd_recurse(const Graph& g, std::span<const vid_t> to_global,
                const Bisector& bisect, const NdOptions& opts, Rng& rng,
                std::vector<vid_t>& order, std::size_t lo, std::size_t hi) {
  const vid_t n = g.num_vertices();
  assert(hi - lo == static_cast<std::size_t>(n));

  if (n <= opts.leaf_size) {
    std::vector<vid_t> local = mmd_order(g);
    for (std::size_t i = 0; i < local.size(); ++i) {
      order[lo + i] = to_global[static_cast<std::size_t>(local[i])];
    }
    return;
  }

  const vwt_t target0 = g.total_vertex_weight() / 2;
  Bisection b = bisect(g, target0, rng);
  Separator sep = opts.boundary_separator
                      ? boundary_separator_from_bisection(g, b)
                      : vertex_separator_from_bisection(g, b);
  if (opts.refine_separator) refine_separator(g, sep, opts.sep_refine, rng);

  // Degenerate bisection (everything on one side, empty separator) would
  // recurse forever; fall back to MMD for this block.
  const vid_t n_a = [&] {
    vid_t c = 0;
    for (part_t l : sep.label) c += (l == kSepA) ? 1 : 0;
    return c;
  }();
  const vid_t n_s = sep.sep_size;
  const vid_t n_b = n - n_a - n_s;
  if ((n_a == 0 || n_b == 0) && n_s == 0) {
    std::vector<vid_t> local = mmd_order(g);
    for (std::size_t i = 0; i < local.size(); ++i) {
      order[lo + i] = to_global[static_cast<std::size_t>(local[i])];
    }
    return;
  }

  // Separator vertices are numbered last within this block.
  std::size_t pos = hi;
  for (vid_t v = n; v-- > 0;) {
    if (sep.label[static_cast<std::size_t>(v)] == kSepS) {
      order[--pos] = to_global[static_cast<std::size_t>(v)];
    }
  }
  assert(pos == hi - static_cast<std::size_t>(n_s));

  // Recurse on A then B, occupying [lo, lo+n_a) and [lo+n_a, pos).
  for (part_t side : {kSepA, kSepB}) {
    Subgraph sub = extract_where(g, sep.label, side);
    std::vector<vid_t> global_ids(sub.local_to_global.size());
    for (std::size_t i = 0; i < global_ids.size(); ++i) {
      global_ids[i] = to_global[static_cast<std::size_t>(sub.local_to_global[i])];
    }
    const std::size_t lo2 = side == kSepA ? lo : lo + static_cast<std::size_t>(n_a);
    const std::size_t hi2 = lo2 + global_ids.size();
    nd_recurse(sub.graph, global_ids, bisect, opts, rng, order, lo2, hi2);
  }
}

}  // namespace

std::vector<vid_t> nested_dissection(const Graph& g, const Bisector& bisect,
                                     const NdOptions& opts, Rng& rng) {
  const vid_t n = g.num_vertices();
  std::vector<vid_t> order(static_cast<std::size_t>(n), kInvalidVid);
  std::vector<vid_t> identity(static_cast<std::size_t>(n));
  for (vid_t v = 0; v < n; ++v) identity[static_cast<std::size_t>(v)] = v;
  nd_recurse(g, identity, bisect, opts, rng, order, 0,
             static_cast<std::size_t>(n));
  assert(is_permutation(order));
  return order;
}

std::vector<vid_t> mlnd_order(const Graph& g, const MultilevelConfig& cfg,
                              const NdOptions& opts, Rng& rng) {
  Bisector bisect = [&cfg](const Graph& sub, vwt_t target0, Rng& r) {
    return multilevel_bisect(sub, target0, cfg, r).bisection;
  };
  return nested_dissection(g, bisect, opts, rng);
}

std::vector<vid_t> snd_order(const Graph& g, const MsbOptions& msb,
                             const NdOptions& opts, Rng& rng) {
  Bisector bisect = [&msb](const Graph& sub, vwt_t target0, Rng& r) {
    return msb_bisect(sub, target0, msb, r);
  };
  return nested_dissection(g, bisect, opts, rng);
}

}  // namespace mgp
