// Vertex separators from edge separators (§4.3, ref [31]).
//
// Given a bisection (A, B), the cut edges induce a bipartite graph between
// A's boundary and B's boundary; its minimum vertex cover is the smallest
// vertex set S whose removal disconnects A\S from B\S.  Nested dissection
// numbers S last at every recursion level.
#pragma once

#include <vector>

#include "initpart/bisection_state.hpp"
#include "graph/csr.hpp"

namespace mgp {

/// Tri-partition labels produced by separator extraction.
enum : part_t { kSepA = 0, kSepB = 1, kSepS = 2 };

struct Separator {
  /// label[v] in {kSepA, kSepB, kSepS}.
  std::vector<part_t> label;
  vid_t sep_size = 0;
  vwt_t sep_weight = 0;
};

/// Minimum-vertex-cover separator from a bisection.  Guarantees no edge
/// joins an A-labelled to a B-labelled vertex.
Separator vertex_separator_from_bisection(const Graph& g, const Bisection& b);

/// Naive alternative (ablation baseline): take the entire boundary of the
/// smaller side as the separator.
Separator boundary_separator_from_bisection(const Graph& g, const Bisection& b);

/// Empty string when `s` is a valid separator of g (labels in range, no
/// A-B edge), else a description of the first violation.
std::string check_separator(const Graph& g, const Separator& s);

}  // namespace mgp
