#include "order/separator_refine.hpp"

#include <algorithm>

namespace mgp {

SepRefineStats refine_separator(const Graph& g, Separator& sep,
                                const SepRefineOptions& opts, Rng& rng) {
  const vid_t n = g.num_vertices();
  SepRefineStats stats;
  if (n == 0 || sep.sep_size == 0) return stats;

  vwt_t side_weight[2] = {0, 0};
  for (vid_t v = 0; v < n; ++v) {
    const part_t l = sep.label[static_cast<std::size_t>(v)];
    if (l == kSepA) side_weight[0] += g.vertex_weight(v);
    if (l == kSepB) side_weight[1] += g.vertex_weight(v);
  }

  for (int pass = 0; pass < opts.max_passes; ++pass) {
    ++stats.passes;
    vwt_t pass_reduction = 0;
    // Alternate the preferred side per pass so neither side systematically
    // absorbs the separator.
    const part_t first_side = static_cast<part_t>(pass % 2);

    std::vector<vid_t> order = rng.permutation(n);
    for (vid_t s : order) {
      if (sep.label[static_cast<std::size_t>(s)] != kSepS) continue;

      for (int attempt = 0; attempt < 2; ++attempt) {
        const part_t to = static_cast<part_t>((first_side + attempt) % 2);
        const part_t to_label = to == 0 ? kSepA : kSepB;
        const part_t other_label = to == 0 ? kSepB : kSepA;

        // Cost: the other side's neighbours must enter the separator.
        vwt_t pulled = 0;
        for (vid_t u : g.neighbors(s)) {
          if (sep.label[static_cast<std::size_t>(u)] == other_label) {
            pulled += g.vertex_weight(u);
          }
        }
        const vwt_t gain = g.vertex_weight(s) - pulled;
        if (gain <= 0) continue;

        // Balance ceiling on the growing side.
        const vwt_t non_sep = side_weight[0] + side_weight[1] + gain;
        const vwt_t new_side = side_weight[to] + g.vertex_weight(s);
        if (static_cast<double>(new_side) >
            opts.max_side_fraction * static_cast<double>(non_sep)) {
          continue;
        }

        // Execute: s joins `to`; its other-side neighbours join S.
        sep.label[static_cast<std::size_t>(s)] = to_label;
        side_weight[to] += g.vertex_weight(s);
        for (vid_t u : g.neighbors(s)) {
          if (sep.label[static_cast<std::size_t>(u)] == other_label) {
            sep.label[static_cast<std::size_t>(u)] = kSepS;
            side_weight[1 - to] -= g.vertex_weight(u);
          }
        }
        pass_reduction += gain;
        ++stats.moves;
        break;  // s moved; stop trying sides
      }
    }

    stats.weight_reduction += pass_reduction;
    if (pass_reduction == 0) break;
  }

  // Recompute the cached separator size/weight.
  sep.sep_size = 0;
  sep.sep_weight = 0;
  for (vid_t v = 0; v < n; ++v) {
    if (sep.label[static_cast<std::size_t>(v)] == kSepS) {
      ++sep.sep_size;
      sep.sep_weight += g.vertex_weight(v);
    }
  }
  return stats;
}

}  // namespace mgp
