// Greedy vertex-separator refinement (extension).
//
// The paper extracts separators with one shot of minimum vertex cover.  Its
// successor (the METIS node-ordering line) refines separators directly: a
// separator vertex s can move into side A if we pull its B-side neighbours
// into the separator instead; the move pays off when
//     gain = w(s) - w(N(s) ∩ B) > 0,
// i.e. the separator gets lighter.  Alternating greedy sweeps towards each
// side run until no improving move remains.  The separator stays valid (no
// A-B edge) by construction, and side balance is kept within a ceiling.
#pragma once

#include "order/separator.hpp"
#include "support/rng.hpp"

namespace mgp {

struct SepRefineOptions {
  int max_passes = 8;
  /// Neither side may exceed this fraction of the non-separator weight.
  double max_side_fraction = 0.55;
};

struct SepRefineStats {
  int passes = 0;
  vid_t moves = 0;
  vwt_t weight_reduction = 0;
};

/// Refines `sep` in place.  Separator weight never increases; labels remain
/// a valid separator (checked by tests against check_separator()).
SepRefineStats refine_separator(const Graph& g, Separator& sep,
                                const SepRefineOptions& opts, Rng& rng);

}  // namespace mgp
