#include "order/separator.hpp"

#include <sstream>

#include "order/vertex_cover.hpp"

namespace mgp {
namespace {

Separator finalize(const Graph& g, std::vector<part_t> label) {
  Separator s;
  s.label = std::move(label);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (s.label[static_cast<std::size_t>(v)] == kSepS) {
      ++s.sep_size;
      s.sep_weight += g.vertex_weight(v);
    }
  }
  return s;
}

}  // namespace

Separator vertex_separator_from_bisection(const Graph& g, const Bisection& b) {
  const vid_t n = g.num_vertices();
  // Collect boundary vertices per side and give them bipartite-local ids.
  std::vector<vid_t> local(static_cast<std::size_t>(n), kInvalidVid);
  std::vector<vid_t> left_ids, right_ids;
  for (vid_t u = 0; u < n; ++u) {
    const part_t su = b.side[static_cast<std::size_t>(u)];
    for (vid_t v : g.neighbors(u)) {
      if (b.side[static_cast<std::size_t>(v)] != su) {
        if (su == 0) {
          local[static_cast<std::size_t>(u)] = static_cast<vid_t>(left_ids.size());
          left_ids.push_back(u);
        } else {
          local[static_cast<std::size_t>(u)] = static_cast<vid_t>(right_ids.size());
          right_ids.push_back(u);
        }
        break;
      }
    }
  }

  // Bipartite CSR over the cut edges, from side 0.
  BipartiteGraph bg;
  bg.nl = static_cast<vid_t>(left_ids.size());
  bg.nr = static_cast<vid_t>(right_ids.size());
  bg.xadj.assign(static_cast<std::size_t>(bg.nl) + 1, 0);
  for (std::size_t i = 0; i < left_ids.size(); ++i) {
    vid_t u = left_ids[i];
    eid_t cnt = 0;
    for (vid_t v : g.neighbors(u)) {
      if (b.side[static_cast<std::size_t>(v)] == 1) ++cnt;
    }
    bg.xadj[i + 1] = bg.xadj[i] + cnt;
  }
  bg.adj.resize(static_cast<std::size_t>(bg.xadj[static_cast<std::size_t>(bg.nl)]));
  for (std::size_t i = 0; i < left_ids.size(); ++i) {
    vid_t u = left_ids[i];
    eid_t pos = bg.xadj[i];
    for (vid_t v : g.neighbors(u)) {
      if (b.side[static_cast<std::size_t>(v)] == 1) {
        bg.adj[static_cast<std::size_t>(pos++)] = local[static_cast<std::size_t>(v)];
      }
    }
  }

  BipartiteMatching m = hopcroft_karp(bg);
  VertexCover cover = minimum_vertex_cover(bg, m);

  std::vector<part_t> label(static_cast<std::size_t>(n));
  for (vid_t v = 0; v < n; ++v) {
    label[static_cast<std::size_t>(v)] =
        b.side[static_cast<std::size_t>(v)] == 0 ? kSepA : kSepB;
  }
  for (vid_t lu : cover.left) label[static_cast<std::size_t>(left_ids[static_cast<std::size_t>(lu)])] = kSepS;
  for (vid_t rv : cover.right) label[static_cast<std::size_t>(right_ids[static_cast<std::size_t>(rv)])] = kSepS;
  return finalize(g, std::move(label));
}

Separator boundary_separator_from_bisection(const Graph& g, const Bisection& b) {
  const vid_t n = g.num_vertices();
  // Take the boundary of the lighter side, so the bigger side stays whole.
  const part_t small_side = b.part_weight[0] <= b.part_weight[1] ? 0 : 1;
  std::vector<part_t> label(static_cast<std::size_t>(n));
  for (vid_t u = 0; u < n; ++u) {
    const part_t su = b.side[static_cast<std::size_t>(u)];
    label[static_cast<std::size_t>(u)] = su == 0 ? kSepA : kSepB;
    if (su != small_side) continue;
    for (vid_t v : g.neighbors(u)) {
      if (b.side[static_cast<std::size_t>(v)] != su) {
        label[static_cast<std::size_t>(u)] = kSepS;
        break;
      }
    }
  }
  return finalize(g, std::move(label));
}

std::string check_separator(const Graph& g, const Separator& s) {
  std::ostringstream err;
  if (s.label.size() != static_cast<std::size_t>(g.num_vertices())) {
    err << "label size mismatch";
    return err.str();
  }
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    const part_t lu = s.label[static_cast<std::size_t>(u)];
    if (lu != kSepA && lu != kSepB && lu != kSepS) {
      err << "vertex " << u << " has label " << lu;
      return err.str();
    }
    if (lu == kSepS) continue;
    for (vid_t v : g.neighbors(u)) {
      const part_t lv = s.label[static_cast<std::size_t>(v)];
      if (lv != kSepS && lv != lu) {
        err << "edge (" << u << ", " << v << ") joins A and B";
        return err.str();
      }
    }
  }
  return {};
}

}  // namespace mgp
