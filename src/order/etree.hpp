// Elimination tree of a symmetric matrix under a given ordering (Liu's
// algorithm with path compression).
//
// The elimination tree drives both the symbolic factorisation (column
// counts → fill and operation counts, Figure 5) and the concurrency
// analysis of §4.3 ("orderings based on nested dissection produce
// orderings that have both more concurrency and better balance").
#pragma once

#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "support/types.hpp"

namespace mgp {

/// parent[j] = etree parent of column j (in the *ordered* numbering), or
/// kInvalidVid for roots.  `new_to_old` is the ordering: position i is
/// occupied by original vertex new_to_old[i].
std::vector<vid_t> elimination_tree(const Graph& g, std::span<const vid_t> new_to_old);

/// Height of the elimination (forest) — the serial chain length.
vid_t etree_height(std::span<const vid_t> parent);

/// Children lists (CSR-ish) for traversals.
struct EtreeChildren {
  std::vector<eid_t> xadj;
  std::vector<vid_t> child;
  std::vector<vid_t> roots;
};
EtreeChildren etree_children(std::span<const vid_t> parent);

}  // namespace mgp
