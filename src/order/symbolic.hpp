// Symbolic Cholesky factorisation: fill and operation counts for an
// ordering, without forming the numeric factor.
//
// Figure 5 compares orderings by "the number of operations required during
// factorization".  We compute, for each column j of the permuted matrix,
// the number of nonzeros cc(j) in L's column j (the standard row-subtree
// traversal over the elimination tree, O(nnz(L)) time and O(n) space), and
// report:
//   fill  = nnz(L)            = Σ cc(j)
//   flops = Σ cc(j)^2          (dense column update cost, the paper's metric)
// plus the concurrency metrics of §4.3 (critical path, average width).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "support/types.hpp"

namespace mgp {

struct SymbolicFactor {
  /// cc[j] = nonzeros in column j of L, *including* the diagonal, in the
  /// ordered numbering.
  std::vector<std::int64_t> col_count;
  std::vector<vid_t> parent;  ///< elimination tree
  std::int64_t nnz_factor = 0;
  std::int64_t flops = 0;
};

/// Symbolic factorisation of g's pattern under the ordering `new_to_old`.
SymbolicFactor symbolic_cholesky(const Graph& g, std::span<const vid_t> new_to_old);

/// Concurrency profile of a factorisation (§4.3's parallelism argument).
struct ConcurrencyProfile {
  vid_t etree_height = 0;
  /// Flops on the heaviest root-to-leaf path — the parallel critical path
  /// under unlimited processors with one task per column.
  std::int64_t critical_path_flops = 0;
  /// total flops / critical path: average exploitable concurrency.
  double average_width = 0.0;
};

ConcurrencyProfile concurrency_profile(const SymbolicFactor& sf);

}  // namespace mgp
