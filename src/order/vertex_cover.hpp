// Minimum vertex cover of a bipartite graph (König's theorem via
// Hopcroft–Karp maximum matching).
//
// §4.3: "a vertex separator is computed from an edge separator by finding
// the minimum vertex cover [31].  The minimum vertex cover has been found
// to produce very small vertex separators."  The bipartite graph here is
// the boundary subgraph induced by the cut edges of a bisection; its
// minimum vertex cover is the smallest vertex set touching every cut edge,
// i.e. the smallest separator obtainable from that edge separator.
#pragma once

#include <cstdint>
#include <vector>

#include "support/types.hpp"

namespace mgp {

/// A bipartite graph with `nl` left and `nr` right vertices; edges go from
/// left to right (CSR from the left side).
struct BipartiteGraph {
  vid_t nl = 0;
  vid_t nr = 0;
  std::vector<eid_t> xadj;    ///< size nl+1
  std::vector<vid_t> adj;     ///< right-vertex ids
};

struct BipartiteMatching {
  std::vector<vid_t> match_l;  ///< left -> right partner or kInvalidVid
  std::vector<vid_t> match_r;  ///< right -> left partner or kInvalidVid
  vid_t size = 0;
};

/// Hopcroft–Karp maximum matching, O(E sqrt(V)).
BipartiteMatching hopcroft_karp(const BipartiteGraph& g);

struct VertexCover {
  std::vector<vid_t> left;   ///< left-side cover vertices
  std::vector<vid_t> right;  ///< right-side cover vertices
};

/// König construction: a minimum vertex cover from a maximum matching.
/// |left| + |right| == matching size.
VertexCover minimum_vertex_cover(const BipartiteGraph& g, const BipartiteMatching& m);

}  // namespace mgp
