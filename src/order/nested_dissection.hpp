// Nested dissection fill-reducing orderings (§4.3).
//
// "Nested dissection recursively splits a graph into almost equal halves by
// selecting a vertex separator ... the vertices of the graph are numbered
// such that at each level of recursion, the separator vertices are numbered
// after the vertices in the partitions."
//
// The bisection at each level is pluggable:
//   * MLND — the paper's multilevel bisection (HEM + GGGP + BKLGR),
//   * SND  — spectral nested dissection (Pothen, Simon & Wang [32]): the
//            MSB bisection at every level,
// both followed by the minimum-vertex-cover separator of order/separator.
// Small subgraphs are ordered with MMD, the standard practice for nested
// dissection leaf blocks.
#pragma once

#include <vector>

#include "core/config.hpp"
#include "core/kway.hpp"
#include "graph/csr.hpp"
#include "order/separator_refine.hpp"
#include "spectral/msb.hpp"
#include "support/rng.hpp"

namespace mgp {

struct NdOptions {
  /// Subgraphs at or below this size are ordered with MMD.
  vid_t leaf_size = 120;
  /// Use the naive boundary separator instead of minimum vertex cover
  /// (ablation knob; the paper's choice is min vertex cover = false).
  bool boundary_separator = false;
  /// Apply greedy separator refinement after extraction (extension; the
  /// paper stops at the minimum-vertex-cover separator).
  bool refine_separator = false;
  SepRefineOptions sep_refine;
};

/// Generic nested dissection over any bisector.  Returns new_to_old.
std::vector<vid_t> nested_dissection(const Graph& g, const Bisector& bisect,
                                     const NdOptions& opts, Rng& rng);

/// MLND: nested dissection with the paper's multilevel bisection.
std::vector<vid_t> mlnd_order(const Graph& g, const MultilevelConfig& cfg,
                              const NdOptions& opts, Rng& rng);

/// SND: spectral nested dissection (MSB bisection at every level).
std::vector<vid_t> snd_order(const Graph& g, const MsbOptions& msb,
                             const NdOptions& opts, Rng& rng);

}  // namespace mgp
