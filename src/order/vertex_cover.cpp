#include "order/vertex_cover.hpp"

#include <limits>
#include <vector>

namespace mgp {
namespace {

constexpr vid_t kInf = std::numeric_limits<vid_t>::max();

struct HkState {
  const BipartiteGraph& g;
  BipartiteMatching& m;
  std::vector<vid_t> dist;   // BFS layer of each left vertex (+ sentinel)
  std::vector<vid_t> queue;

  explicit HkState(const BipartiteGraph& g_, BipartiteMatching& m_)
      : g(g_), m(m_), dist(static_cast<std::size_t>(g_.nl), kInf) {}

  /// Layers free left vertices; true when an augmenting path exists.
  bool bfs() {
    queue.clear();
    for (vid_t u = 0; u < g.nl; ++u) {
      if (m.match_l[static_cast<std::size_t>(u)] == kInvalidVid) {
        dist[static_cast<std::size_t>(u)] = 0;
        queue.push_back(u);
      } else {
        dist[static_cast<std::size_t>(u)] = kInf;
      }
    }
    bool found = false;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      vid_t u = queue[head];
      for (eid_t e = g.xadj[static_cast<std::size_t>(u)];
           e < g.xadj[static_cast<std::size_t>(u) + 1]; ++e) {
        vid_t r = g.adj[static_cast<std::size_t>(e)];
        vid_t w = m.match_r[static_cast<std::size_t>(r)];
        if (w == kInvalidVid) {
          found = true;
        } else if (dist[static_cast<std::size_t>(w)] == kInf) {
          dist[static_cast<std::size_t>(w)] = dist[static_cast<std::size_t>(u)] + 1;
          queue.push_back(w);
        }
      }
    }
    return found;
  }

  /// Augments along layered paths from u; true on success.
  bool dfs(vid_t u) {
    for (eid_t e = g.xadj[static_cast<std::size_t>(u)];
         e < g.xadj[static_cast<std::size_t>(u) + 1]; ++e) {
      vid_t r = g.adj[static_cast<std::size_t>(e)];
      vid_t w = m.match_r[static_cast<std::size_t>(r)];
      if (w == kInvalidVid ||
          (dist[static_cast<std::size_t>(w)] == dist[static_cast<std::size_t>(u)] + 1 &&
           dfs(w))) {
        m.match_l[static_cast<std::size_t>(u)] = r;
        m.match_r[static_cast<std::size_t>(r)] = u;
        return true;
      }
    }
    dist[static_cast<std::size_t>(u)] = kInf;  // dead end; prune
    return false;
  }
};

}  // namespace

BipartiteMatching hopcroft_karp(const BipartiteGraph& g) {
  BipartiteMatching m;
  m.match_l.assign(static_cast<std::size_t>(g.nl), kInvalidVid);
  m.match_r.assign(static_cast<std::size_t>(g.nr), kInvalidVid);
  HkState st(g, m);
  while (st.bfs()) {
    for (vid_t u = 0; u < g.nl; ++u) {
      if (m.match_l[static_cast<std::size_t>(u)] == kInvalidVid && st.dfs(u)) {
        ++m.size;
      }
    }
  }
  return m;
}

VertexCover minimum_vertex_cover(const BipartiteGraph& g, const BipartiteMatching& m) {
  // König: Z = vertices reachable from free left vertices by alternating
  // paths (non-matching edges left->right, matching edges right->left).
  // Cover = (L \ Z_L) ∪ (R ∩ Z_R).
  std::vector<char> visit_l(static_cast<std::size_t>(g.nl), 0);
  std::vector<char> visit_r(static_cast<std::size_t>(g.nr), 0);
  std::vector<vid_t> queue;
  for (vid_t u = 0; u < g.nl; ++u) {
    if (m.match_l[static_cast<std::size_t>(u)] == kInvalidVid) {
      visit_l[static_cast<std::size_t>(u)] = 1;
      queue.push_back(u);
    }
  }
  for (std::size_t head = 0; head < queue.size(); ++head) {
    vid_t u = queue[head];
    for (eid_t e = g.xadj[static_cast<std::size_t>(u)];
         e < g.xadj[static_cast<std::size_t>(u) + 1]; ++e) {
      vid_t r = g.adj[static_cast<std::size_t>(e)];
      if (m.match_l[static_cast<std::size_t>(u)] == r) continue;  // matching edge
      if (!visit_r[static_cast<std::size_t>(r)]) {
        visit_r[static_cast<std::size_t>(r)] = 1;
        vid_t w = m.match_r[static_cast<std::size_t>(r)];
        if (w != kInvalidVid && !visit_l[static_cast<std::size_t>(w)]) {
          visit_l[static_cast<std::size_t>(w)] = 1;
          queue.push_back(w);
        }
      }
    }
  }
  VertexCover cover;
  for (vid_t u = 0; u < g.nl; ++u) {
    if (!visit_l[static_cast<std::size_t>(u)]) cover.left.push_back(u);
  }
  for (vid_t r = 0; r < g.nr; ++r) {
    if (visit_r[static_cast<std::size_t>(r)]) cover.right.push_back(r);
  }
  return cover;
}

}  // namespace mgp
