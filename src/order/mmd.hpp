// Multiple Minimum Degree ordering (Liu [27]) — Figure 5's baseline.
//
// "The multiple minimum degree algorithm is the most widely used variant of
// minimum degree due to its very fast runtime."  We implement the classic
// quotient-graph formulation:
//
//   * eliminated vertices become *elements*; a variable's fill neighbourhood
//     is its adjacent variables plus the variables of its adjacent elements,
//     so the structure never stores fill edges explicitly;
//   * elements adjacent to a newly formed element are absorbed by it;
//   * indistinguishable variables (identical quotient adjacency) merge into
//     supervariables and are eliminated together (mass elimination);
//   * *multiple* elimination: every round eliminates a maximal independent
//     set of minimum-degree variables before any degree is recomputed —
//     Liu's speed trick and the "multiple" in the name.
//
// Degrees are exact external degrees (in original-vertex units), so the
// ordering quality matches the classical algorithm.
#pragma once

#include <vector>

#include "graph/csr.hpp"
#include "support/types.hpp"

namespace mgp {

struct MmdOptions {
  /// Enable multiple elimination (false = classic single-elimination MD;
  /// same quality class, slower — kept for the ablation bench).
  bool multiple = true;
  /// Enable supervariable (indistinguishable node) merging.
  bool supervariables = true;
};

/// Returns the elimination order as new_to_old: position i holds the i-th
/// eliminated original vertex.  Deterministic.
std::vector<vid_t> mmd_order(const Graph& g, const MmdOptions& opts = {});

}  // namespace mgp
