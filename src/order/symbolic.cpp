#include "order/symbolic.hpp"

#include <algorithm>

#include "graph/permute.hpp"
#include "order/etree.hpp"

namespace mgp {

SymbolicFactor symbolic_cholesky(const Graph& g, std::span<const vid_t> new_to_old) {
  const vid_t n = g.num_vertices();
  SymbolicFactor sf;
  sf.parent = elimination_tree(g, new_to_old);
  sf.col_count.assign(static_cast<std::size_t>(n), 1);  // diagonal

  std::vector<vid_t> old_to_new = invert_permutation(new_to_old);
  // Row-subtree traversal: the nonzeros of L's row i are exactly the nodes
  // visited walking each a_{ij} (j < i) up the etree until reaching a node
  // already marked for row i.  Each visited node j gains one nonzero in its
  // column (the entry L_{ij}).
  std::vector<vid_t> mark(static_cast<std::size_t>(n), kInvalidVid);
  for (vid_t i = 0; i < n; ++i) {
    mark[static_cast<std::size_t>(i)] = i;
    const vid_t old_i = new_to_old[static_cast<std::size_t>(i)];
    for (vid_t old_j : g.neighbors(old_i)) {
      vid_t j = old_to_new[static_cast<std::size_t>(old_j)];
      while (j < i && mark[static_cast<std::size_t>(j)] != i) {
        mark[static_cast<std::size_t>(j)] = i;
        ++sf.col_count[static_cast<std::size_t>(j)];
        j = sf.parent[static_cast<std::size_t>(j)];
        if (j == kInvalidVid) break;
      }
    }
  }

  for (std::int64_t cc : sf.col_count) {
    sf.nnz_factor += cc;
    sf.flops += cc * cc;
  }
  return sf;
}

ConcurrencyProfile concurrency_profile(const SymbolicFactor& sf) {
  const std::size_t n = sf.parent.size();
  ConcurrencyProfile cp;
  cp.etree_height = etree_height(sf.parent);

  // Longest weighted leaf-to-root path: process columns in order (children
  // always precede parents in an elimination tree), accumulating the max
  // path cost into each parent.
  std::vector<std::int64_t> path(n, 0);
  std::int64_t best = 0;
  for (std::size_t j = 0; j < n; ++j) {
    const std::int64_t cost = sf.col_count[j] * sf.col_count[j];
    path[j] += cost;
    best = std::max(best, path[j]);
    const vid_t p = sf.parent[j];
    if (p != kInvalidVid) {
      path[static_cast<std::size_t>(p)] =
          std::max(path[static_cast<std::size_t>(p)], path[j]);
    }
  }
  cp.critical_path_flops = best;
  cp.average_width =
      best > 0 ? static_cast<double>(sf.flops) / static_cast<double>(best) : 1.0;
  return cp;
}

}  // namespace mgp
