#include "order/etree.hpp"

#include <algorithm>

#include "graph/permute.hpp"

namespace mgp {

std::vector<vid_t> elimination_tree(const Graph& g, std::span<const vid_t> new_to_old) {
  const vid_t n = g.num_vertices();
  std::vector<vid_t> old_to_new = invert_permutation(new_to_old);
  std::vector<vid_t> parent(static_cast<std::size_t>(n), kInvalidVid);
  std::vector<vid_t> ancestor(static_cast<std::size_t>(n), kInvalidVid);

  for (vid_t i = 0; i < n; ++i) {
    const vid_t old_i = new_to_old[static_cast<std::size_t>(i)];
    for (vid_t old_j : g.neighbors(old_i)) {
      vid_t j = old_to_new[static_cast<std::size_t>(old_j)];
      // Walk j's ancestor chain up towards i, compressing as we go.
      while (j != kInvalidVid && j < i) {
        vid_t next = ancestor[static_cast<std::size_t>(j)];
        ancestor[static_cast<std::size_t>(j)] = i;
        if (next == kInvalidVid) {
          parent[static_cast<std::size_t>(j)] = i;
          break;
        }
        j = next;
      }
    }
  }
  return parent;
}

vid_t etree_height(std::span<const vid_t> parent) {
  const std::size_t n = parent.size();
  std::vector<vid_t> depth(n, -1);
  vid_t height = 0;
  for (std::size_t j = 0; j < n; ++j) {
    // Follow to the first node with known depth, then unwind.
    std::vector<vid_t> stack;
    vid_t v = static_cast<vid_t>(j);
    while (v != kInvalidVid && depth[static_cast<std::size_t>(v)] < 0) {
      stack.push_back(v);
      v = parent[static_cast<std::size_t>(v)];
    }
    vid_t d = v == kInvalidVid ? 0 : depth[static_cast<std::size_t>(v)] + 1;
    for (std::size_t i = stack.size(); i-- > 0;) {
      depth[static_cast<std::size_t>(stack[i])] = d++;
    }
    height = std::max(height, d);
  }
  return height;
}

EtreeChildren etree_children(std::span<const vid_t> parent) {
  const std::size_t n = parent.size();
  EtreeChildren out;
  out.xadj.assign(n + 1, 0);
  for (std::size_t j = 0; j < n; ++j) {
    if (parent[j] != kInvalidVid) {
      ++out.xadj[static_cast<std::size_t>(parent[j]) + 1];
    } else {
      out.roots.push_back(static_cast<vid_t>(j));
    }
  }
  for (std::size_t j = 0; j < n; ++j) out.xadj[j + 1] += out.xadj[j];
  out.child.resize(n - out.roots.size());
  std::vector<eid_t> cursor(out.xadj.begin(), out.xadj.end() - 1);
  for (std::size_t j = 0; j < n; ++j) {
    if (parent[j] != kInvalidVid) {
      out.child[static_cast<std::size_t>(cursor[static_cast<std::size_t>(parent[j])]++)] =
          static_cast<vid_t>(j);
    }
  }
  return out;
}

}  // namespace mgp
