#include "coarsen/strategy.hpp"

#include <algorithm>
#include <cmath>

#include "coarsen/parallel_matching.hpp"
#include "obs/trace.hpp"
#include "support/workspace.hpp"

namespace mgp {

std::string to_string(CoarsenStrategy s) {
  switch (s) {
    case CoarsenStrategy::kMatching: return "MATCH";
    case CoarsenStrategy::kAlgebraicDistance: return "ADHEM";
    case CoarsenStrategy::kNLevel: return "NLEVEL";
  }
  return "?";
}

std::uint8_t scheme_byte(CoarsenStrategy strategy, MatchingScheme matching) {
  switch (strategy) {
    case CoarsenStrategy::kMatching: return static_cast<std::uint8_t>(matching);
    case CoarsenStrategy::kAlgebraicDistance: return kSchemeByteAlgebraicDistance;
    case CoarsenStrategy::kNLevel: return kSchemeByteNLevel;
  }
  return static_cast<std::uint8_t>(matching);
}

bool scheme_from_byte(std::uint8_t b, CoarsenStrategy& strategy,
                      MatchingScheme& matching) {
  if (b <= static_cast<std::uint8_t>(MatchingScheme::kHeavyClique)) {
    strategy = CoarsenStrategy::kMatching;
    matching = static_cast<MatchingScheme>(b);
    return true;
  }
  if (b == kSchemeByteAlgebraicDistance) {
    strategy = CoarsenStrategy::kAlgebraicDistance;
    matching = MatchingScheme::kHeavyEdge;
    return true;
  }
  if (b == kSchemeByteNLevel) {
    strategy = CoarsenStrategy::kNLevel;
    matching = MatchingScheme::kHeavyEdge;
    return true;
  }
  return false;
}

std::size_t CoarsenWorkspace::bytes_reserved() const {
  std::size_t total = ad_x.capacity() * sizeof(double) +
                      ad_y.capacity() * sizeof(double) +
                      heap.capacity() * sizeof(NLevelEdge) +
                      node_wgt.capacity() * sizeof(vwt_t) +
                      interior_wgt.capacity() * sizeof(ewt_t) +
                      leader.capacity() * sizeof(vid_t) +
                      version.capacity() * sizeof(std::uint32_t) +
                      coarse_id.capacity() * sizeof(vid_t) +
                      scatter.capacity() * sizeof(std::int64_t) +
                      scatter_epoch.capacity() * sizeof(std::uint32_t);
  for (const auto& row : adj) {
    total += row.capacity() * sizeof(std::pair<vid_t, ewt_t>);
  }
  total += adj.capacity() * sizeof(std::vector<std::pair<vid_t, ewt_t>>);
  return total;
}

namespace {

/// Shared stagnation rule of the matching-based strategies: a level that
/// shrinks by less than min_shrink_factor is computed, reported as the stop
/// signal, and discarded by the driver — byte-for-byte the historical
/// behaviour (the matching's RNG draws have already happened).
bool accept_level(const Graph& fine, const Contraction& out,
                  double min_shrink_factor) {
  const double fine_n = static_cast<double>(fine.num_vertices());
  const double coarse_n = static_cast<double>(out.coarse.num_vertices());
  return !(coarse_n > min_shrink_factor * fine_n);
}

// ---- Default: §3.1 maximal matching + pairwise contraction. ----------------

class MatchingCoarsening final : public CoarseningStrategy {
 public:
  bool coarsen_level(const Graph& fine, std::span<const ewt_t> fine_cewgt,
                     MatchingScheme matching, const CoarsenOptions&,
                     double min_shrink_factor, Rng& rng, ThreadPool* pool,
                     BisectWorkspace& ws, Contraction& out,
                     CoarsenLevelStats& stats) const override {
    // With a pool, HEM switches to the proposal-based parallel matcher
    // (deterministic for every pool size; draws no RNG).  The other schemes
    // have no parallel variant and stay sequential — still byte-identical
    // across pool sizes, since they draw the same RNG stream regardless and
    // contraction is thread-count-invariant.
    if (pool && matching == MatchingScheme::kHeavyEdge) {
      compute_matching_parallel_hem(fine, *pool, ws.match, ws.propose);
    } else {
      compute_matching(fine, matching, fine_cewgt, rng, ws.match, ws.match_order);
    }
    contract_into(fine, ws.match, fine_cewgt, pool, ws.contract, ws.arena, out);
    stats.matched_pairs = ws.match.pairs;
    return accept_level(fine, out, min_shrink_factor);
  }
};

// ---- Algebraic-distance-weighted HEM. --------------------------------------

/// Sum over test vectors of |x_r[u] - x_r[v]|: small when u and v settle to
/// similar values under relaxation, i.e. when they sit in the same tightly
/// coupled region.
double ad_distance(const std::vector<double>& x, std::size_t n, int r_count,
                   vid_t u, vid_t v) {
  double d = 0.0;
  for (int r = 0; r < r_count; ++r) {
    const std::size_t base = static_cast<std::size_t>(r) * n;
    d += std::fabs(x[base + static_cast<std::size_t>(u)] -
                   x[base + static_cast<std::size_t>(v)]);
  }
  return d;
}

class AlgebraicDistanceCoarsening final : public CoarseningStrategy {
 public:
  bool coarsen_level(const Graph& fine, std::span<const ewt_t> fine_cewgt,
                     MatchingScheme, const CoarsenOptions& opts,
                     double min_shrink_factor, Rng& rng, ThreadPool* pool,
                     BisectWorkspace& ws, Contraction& out,
                     CoarsenLevelStats& stats) const override {
    const vid_t n = fine.num_vertices();
    const std::size_t un = static_cast<std::size_t>(n);
    CoarsenWorkspace& cw = ws.coarsen;
    const int r_count = std::max(1, opts.ad_test_vectors);
    const int iters = std::max(0, opts.ad_iterations);
    const double omega = opts.ad_omega;

    // Exactly one draw seeds the relaxation, then the visit permutation
    // draws as usual: the stream is identical with or without a pool, so the
    // whole strategy is pool-size-invariant (relaxation and matching are
    // sequential; contraction is thread-count-invariant).
    Rng ad_rng(rng.next_u64());
    const std::size_t total = static_cast<std::size_t>(r_count) * un;
    cw.ad_x.resize(total);
    cw.ad_y.resize(total);
    for (std::size_t i = 0; i < total; ++i) cw.ad_x[i] = ad_rng.next_double();

    for (int it = 0; it < iters; ++it) {
      for (int r = 0; r < r_count; ++r) {
        const std::size_t base = static_cast<std::size_t>(r) * un;
        for (vid_t v = 0; v < n; ++v) {
          auto nbrs = fine.neighbors(v);
          auto wgts = fine.edge_weights(v);
          double wsum = 0.0, acc = 0.0;
          for (std::size_t i = 0; i < nbrs.size(); ++i) {
            const double w = static_cast<double>(wgts[i]);
            wsum += w;
            acc += w * cw.ad_x[base + static_cast<std::size_t>(nbrs[i])];
          }
          const double self = cw.ad_x[base + static_cast<std::size_t>(v)];
          cw.ad_y[base + static_cast<std::size_t>(v)] =
              wsum > 0.0 ? (1.0 - omega) * self + omega * (acc / wsum) : self;
        }
        // Rescale to [0, 1]: JOR contracts everything toward local means, so
        // without renormalisation a few sweeps flatten the vector and the
        // distances lose resolution (Safro et al. §3).
        double lo = cw.ad_y[base], hi = cw.ad_y[base];
        for (std::size_t i = 1; i < un; ++i) {
          lo = std::min(lo, cw.ad_y[base + i]);
          hi = std::max(hi, cw.ad_y[base + i]);
        }
        if (hi > lo) {
          const double scale = 1.0 / (hi - lo);
          for (std::size_t i = 0; i < un; ++i) {
            cw.ad_y[base + i] = (cw.ad_y[base + i] - lo) * scale;
          }
        }
      }
      std::swap(cw.ad_x, cw.ad_y);
    }
    stats.ad_sweeps = n > 0 ? iters : 0;

    // HEM with AD tie-breaking: heaviest edge first, algebraically closest
    // endpoint among equally-heavy candidates.  On unit-weight graphs the
    // weight never discriminates and the distance chooses every partner.
    Matching& m = ws.match;
    m.match.assign(un, kInvalidVid);
    m.pairs = 0;
    m.weight = 0;
    rng.permutation_into(n, ws.match_order);
    auto matched = [&](vid_t v) {
      return m.match[static_cast<std::size_t>(v)] != kInvalidVid;
    };
    for (vid_t u : ws.match_order) {
      if (matched(u)) continue;
      auto nbrs = fine.neighbors(u);
      auto wgts = fine.edge_weights(u);
      vid_t chosen = kInvalidVid;
      ewt_t best_w = -1;
      double best_d = 0.0;
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const vid_t v = nbrs[i];
        if (matched(v)) continue;
        if (wgts[i] > best_w) {
          best_w = wgts[i];
          best_d = ad_distance(cw.ad_x, un, r_count, u, v);
          chosen = v;
        } else if (wgts[i] == best_w) {
          const double d = ad_distance(cw.ad_x, un, r_count, u, v);
          if (d < best_d) {
            best_d = d;
            chosen = v;
          }
        }
      }
      if (chosen != kInvalidVid) {
        m.match[static_cast<std::size_t>(u)] = chosen;
        m.match[static_cast<std::size_t>(chosen)] = u;
        m.weight += best_w;
        ++m.pairs;
      } else {
        m.match[static_cast<std::size_t>(u)] = u;
      }
    }

    contract_into(fine, m, fine_cewgt, pool, ws.contract, ws.arena, out);
    stats.matched_pairs = m.pairs;
    return accept_level(fine, out, min_shrink_factor);
  }
};

// ---- n-level: lazy-PQ tiny-batch edge contraction. -------------------------

using NLevelEdge = CoarsenWorkspace::NLevelEdge;

/// Max-heap order: higher rating first, then heavier edge, then smaller
/// (u, v) — a total order on live entries, so the pop sequence (and with it
/// the whole strategy) is deterministic.
bool heap_worse(const NLevelEdge& a, const NLevelEdge& b) {
  if (a.rating != b.rating) return a.rating < b.rating;
  if (a.w != b.w) return a.w < b.w;
  if (a.u != b.u) return a.u > b.u;
  return a.v > b.v;
}

double nlevel_rating(ewt_t w, vwt_t wu, vwt_t wv) {
  // Heavy-edge rating w / (|u| * |v|): prefers heavy edges between light
  // multinodes, which keeps the contracted graph's weights even (Osipov &
  // Sanders use expansion^2 = w^2 / (|u| * |v|); the shared denominator is
  // what matters for weight balance).
  const double denom = static_cast<double>(std::max<vwt_t>(1, wu)) *
                       static_cast<double>(std::max<vwt_t>(1, wv));
  return static_cast<double>(w) / denom;
}

class NLevelCoarsening final : public CoarseningStrategy {
 public:
  bool coarsen_level(const Graph& fine, std::span<const ewt_t> fine_cewgt,
                     MatchingScheme, const CoarsenOptions& opts,
                     double /*min_shrink_factor*/, Rng&, ThreadPool*,
                     BisectWorkspace& ws, Contraction& out,
                     CoarsenLevelStats& stats) const override {
    // The batch is deliberately tiny, so the matching stagnation rule does
    // not apply: the ladder stops when no contractible edge remains (or the
    // driver's coarsen_to bound is reached).  Draws no RNG; everything is
    // sequential, hence trivially pool-size-invariant.
    const vid_t n = fine.num_vertices();
    const std::size_t un = static_cast<std::size_t>(n);
    CoarsenWorkspace& cw = ws.coarsen;

    // Rebuild the dynamic state from this level's CSR.  Rows live in
    // per-vertex vectors whose capacity persists across calls; the per-level
    // rebuild is O(|E|), amortised by the batch into O(|E|) per constant
    // shrink factor.
    if (cw.adj.size() < un) cw.adj.resize(un);
    for (vid_t v = 0; v < n; ++v) {
      auto& row = cw.adj[static_cast<std::size_t>(v)];
      row.clear();
      auto nbrs = fine.neighbors(v);
      auto wgts = fine.edge_weights(v);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        row.emplace_back(nbrs[i], wgts[i]);
      }
    }
    cw.node_wgt.resize(un);
    for (vid_t v = 0; v < n; ++v) {
      cw.node_wgt[static_cast<std::size_t>(v)] = fine.vertex_weight(v);
    }
    cw.interior_wgt.assign(un, 0);
    if (!fine_cewgt.empty()) {
      std::copy(fine_cewgt.begin(), fine_cewgt.end(), cw.interior_wgt.begin());
    }
    cw.leader.resize(un);
    for (vid_t v = 0; v < n; ++v) cw.leader[static_cast<std::size_t>(v)] = v;
    cw.version.assign(un, 0);
    cw.scatter.resize(un);
    cw.scatter_epoch.assign(un, 0);
    cw.epoch = 0;

    // Seed the lazy heap with every edge once (u < v).
    cw.heap.clear();
    for (vid_t u = 0; u < n; ++u) {
      for (const auto& [v, w] : cw.adj[static_cast<std::size_t>(u)]) {
        if (u < v) {
          cw.heap.push_back({nlevel_rating(w, cw.node_wgt[static_cast<std::size_t>(u)],
                                           cw.node_wgt[static_cast<std::size_t>(v)]),
                             w, u, v, 0, 0});
        }
      }
    }
    std::make_heap(cw.heap.begin(), cw.heap.end(), heap_worse);
    stats.pq_updates += static_cast<std::int64_t>(cw.heap.size());

    const vid_t batch =
        opts.nlevel_batch > 0 ? opts.nlevel_batch : std::max<vid_t>(1, n / 16);
    vid_t merges = 0;
    while (merges < batch && !cw.heap.empty()) {
      std::pop_heap(cw.heap.begin(), cw.heap.end(), heap_worse);
      const NLevelEdge e = cw.heap.back();
      cw.heap.pop_back();
      // Lazy invalidation: an entry is stale when either endpoint died or
      // had its row rebuilt since the push (weights and ratings of live
      // entries are always current — any change to an incident edge bumps
      // an endpoint's version).
      if (cw.leader[static_cast<std::size_t>(e.u)] != e.u ||
          cw.leader[static_cast<std::size_t>(e.v)] != e.v ||
          cw.version[static_cast<std::size_t>(e.u)] != e.ver_u ||
          cw.version[static_cast<std::size_t>(e.v)] != e.ver_v) {
        continue;
      }
      merge(cw, e.u, e.v, e.w, stats);
      ++merges;
    }
    if (merges == 0) return false;  // no contractible edges: ladder is done

    materialize(fine, cw, n, out);
    stats.matched_pairs = merges;
    return true;
  }

 private:
  /// Merges v into u (u < v by heap order) with a single-row patch: u's row
  /// absorbs v's, each common neighbour's row drops its v entry into its u
  /// entry, and each exclusive neighbour renames v to u in place.  Only u's
  /// version is bumped — entries touching v die via the leader check, and
  /// edges not incident to the pair are untouched by construction.
  static void merge(CoarsenWorkspace& cw, vid_t u, vid_t v, ewt_t w_uv,
                    CoarsenLevelStats& stats) {
    const std::size_t su = static_cast<std::size_t>(u);
    const std::size_t sv = static_cast<std::size_t>(v);
    auto& row_u = cw.adj[su];
    auto& row_v = cw.adj[sv];

    cw.node_wgt[su] += cw.node_wgt[sv];
    cw.interior_wgt[su] += cw.interior_wgt[sv] + w_uv;
    cw.leader[sv] = u;

    // Drop the contracted edge from u's row (swap-with-back keeps it O(1)).
    for (std::size_t i = 0; i < row_u.size(); ++i) {
      if (row_u[i].first == v) {
        row_u[i] = row_u.back();
        row_u.pop_back();
        break;
      }
    }
    // Scatter u's surviving neighbours for O(1) common-neighbour merges.
    ++cw.epoch;
    for (std::size_t i = 0; i < row_u.size(); ++i) {
      const std::size_t x = static_cast<std::size_t>(row_u[i].first);
      cw.scatter[x] = static_cast<std::int64_t>(i);
      cw.scatter_epoch[x] = cw.epoch;
    }
    for (const auto& [x, wx] : row_v) {
      if (x == u) continue;  // the contracted edge itself
      const std::size_t sx = static_cast<std::size_t>(x);
      auto& row_x = cw.adj[sx];
      if (cw.scatter_epoch[sx] == cw.epoch) {
        // Common neighbour: parallel edges (u,x) and (v,x) merge.
        row_u[static_cast<std::size_t>(cw.scatter[sx])].second += wx;
        std::size_t pos_u = row_x.size(), pos_v = row_x.size();
        for (std::size_t i = 0; i < row_x.size(); ++i) {
          if (row_x[i].first == u) pos_u = i;
          else if (row_x[i].first == v) pos_v = i;
        }
        row_x[pos_u].second += wx;
        row_x[pos_v] = row_x.back();
        row_x.pop_back();
      } else {
        // Exclusive neighbour of v: the edge just changes endpoint.
        row_u.emplace_back(x, wx);
        cw.scatter[sx] = static_cast<std::int64_t>(row_u.size() - 1);
        cw.scatter_epoch[sx] = cw.epoch;
        for (auto& entry : row_x) {
          if (entry.first == v) {
            entry.first = u;
            break;
          }
        }
      }
    }
    row_v.clear();

    // Invalidate every (·, u) entry and re-push u's row with fresh ratings
    // (vwgt[u] changed, and common-neighbour weights grew).
    ++cw.version[su];
    for (const auto& [x, wx] : row_u) {
      const vid_t a = std::min(u, x), b = std::max(u, x);
      cw.heap.push_back({nlevel_rating(wx, cw.node_wgt[static_cast<std::size_t>(a)],
                                       cw.node_wgt[static_cast<std::size_t>(b)]),
                         wx, a, b, cw.version[static_cast<std::size_t>(a)],
                         cw.version[static_cast<std::size_t>(b)]});
      std::push_heap(cw.heap.begin(), cw.heap.end(), heap_worse);
      ++stats.pq_updates;
    }
  }

  /// Compacts the surviving vertices into a CSR Graph + cmap + cewgt,
  /// recycling `out`'s storage like contract_into does.
  static void materialize(const Graph& fine, CoarsenWorkspace& cw, vid_t n,
                          Contraction& out) {
    const std::size_t un = static_cast<std::size_t>(n);
    cw.coarse_id.resize(un);
    vid_t count = 0;
    for (vid_t v = 0; v < n; ++v) {
      if (cw.leader[static_cast<std::size_t>(v)] == v) {
        cw.coarse_id[static_cast<std::size_t>(v)] = count++;
      }
    }
    // Resolve the merge forest with path compression (sequential, so the
    // compressed shape is deterministic; only the root matters anyway).
    out.cmap.resize(un);
    for (vid_t v = 0; v < n; ++v) {
      vid_t root = v;
      while (cw.leader[static_cast<std::size_t>(root)] != root) {
        root = cw.leader[static_cast<std::size_t>(root)];
      }
      vid_t walk = v;
      while (walk != root) {
        const vid_t next = cw.leader[static_cast<std::size_t>(walk)];
        cw.leader[static_cast<std::size_t>(walk)] = root;
        walk = next;
      }
      out.cmap[static_cast<std::size_t>(v)] =
          cw.coarse_id[static_cast<std::size_t>(root)];
    }

    Graph::Storage s = out.coarse.take_storage();
    s.xadj.clear();
    s.adjncy.clear();
    s.adjwgt.clear();
    s.vwgt.clear();
    out.cewgt.clear();
    s.xadj.push_back(0);
    for (vid_t v = 0; v < n; ++v) {
      const std::size_t sv = static_cast<std::size_t>(v);
      if (cw.leader[sv] != v) continue;
      // Rows only ever reference live vertices, so the coarse id is direct.
      for (const auto& [x, wx] : cw.adj[sv]) {
        s.adjncy.push_back(cw.coarse_id[static_cast<std::size_t>(x)]);
        s.adjwgt.push_back(wx);
      }
      s.xadj.push_back(static_cast<eid_t>(s.adjncy.size()));
      s.vwgt.push_back(cw.node_wgt[sv]);
      out.cewgt.push_back(cw.interior_wgt[sv]);
    }
    (void)fine;
    out.coarse = Graph(std::move(s.xadj), std::move(s.adjncy), std::move(s.vwgt),
                       std::move(s.adjwgt));
  }
};

}  // namespace

const CoarseningStrategy& coarsening_strategy(CoarsenStrategy kind) {
  static const MatchingCoarsening matching;
  static const AlgebraicDistanceCoarsening algebraic;
  static const NLevelCoarsening nlevel;
  switch (kind) {
    case CoarsenStrategy::kMatching: return matching;
    case CoarsenStrategy::kAlgebraicDistance: return algebraic;
    case CoarsenStrategy::kNLevel: return nlevel;
  }
  return matching;
}

}  // namespace mgp
