// Maximal-matching computation: the four coarsening heuristics of §3.1.
//
//   RM  — random matching: visit vertices in random order, match each
//         unmatched vertex with a random unmatched neighbour.
//   HEM — heavy-edge matching (the paper's new heuristic): match with the
//         unmatched neighbour whose connecting edge is heaviest, maximising
//         W(M_i) and hence minimising W(E_{i+1}) = W(E_i) - W(M_i).
//   LEM — light-edge matching: the adversarial dual (minimise W(M_i)); kept
//         because the paper uses it to demonstrate why HEM works.
//   HCM — heavy-clique matching: match the neighbour maximising the edge
//         density of the resulting multinode, approximating the
//         highly-connected-component coarseners of [5, 15, 7].
//
// All four are randomized O(|E|) algorithms, per the paper.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "support/rng.hpp"

namespace mgp {

enum class MatchingScheme { kRandom, kHeavyEdge, kLightEdge, kHeavyClique };

/// Short mnemonic ("RM", "HEM", ...), as used in the paper's tables.
std::string to_string(MatchingScheme s);

struct Matching {
  /// match[v] = v's partner, or v itself when v is unmatched.
  /// Always an involution: match[match[v]] == v.
  std::vector<vid_t> match;
  /// Number of matched pairs (= |M_i|).
  vid_t pairs = 0;
  /// Total weight W(M_i) of the matching.
  ewt_t weight = 0;
};

/// Computes a maximal matching of g with the given scheme.
///
/// `cewgt` is the per-vertex contracted edge weight (total weight of fine
/// edges already collapsed *inside* each multinode); HCM needs it to compute
/// edge densities.  Pass an empty span for level-0 graphs (all zeros).
Matching compute_matching(const Graph& g, MatchingScheme scheme,
                          std::span<const ewt_t> cewgt, Rng& rng);

/// Allocation-free form: writes the matching into `out` and uses
/// `order_scratch` for the random visit order, both caller-owned and reused
/// across calls (no heap traffic once their capacity has warmed).  Draws the
/// identical RNG stream and produces byte-identical results to the form
/// above, which is now a thin wrapper over this one.
void compute_matching(const Graph& g, MatchingScheme scheme,
                      std::span<const ewt_t> cewgt, Rng& rng, Matching& out,
                      std::vector<vid_t>& order_scratch);

/// True iff `m` is a valid maximal matching of g: an involution, every
/// matched pair is an edge, and no unmatched vertex has an unmatched
/// neighbour.  Used by tests and debug checks.
bool is_maximal_matching(const Graph& g, const Matching& m);

}  // namespace mgp
