// Pluggable coarsening engine: one strategy object per way of building
// G_{i+1} from G_i, behind a single per-level interface.
//
//   kMatching          — the paper's §3.1 pipeline: a maximal matching
//                        (RM/HEM/LEM/HCM, or the proposal-based parallel HEM
//                        when a pool is attached) followed by pairwise
//                        contraction.  This is the default and is
//                        byte-identical to the historical hard-coded loop.
//   kAlgebraicDistance — HEM whose ties are broken by *algebraic distance*
//                        ("Advanced Coarsening Schemes for Graph
//                        Partitioning", Safro/Sanders/Schulz): a fixed number
//                        of Jacobi-style relaxation sweeps over a few random
//                        test vectors yields a per-edge similarity; among
//                        equally-heavy edges the matcher prefers the
//                        algebraically *closest* endpoint.  On unit-weight
//                        graphs (where plain HEM degenerates to "first
//                        neighbour wins") the distance does all the work.
//   kNLevel            — the n-level extreme ("n-Level Graph Partitioning",
//                        Osipov/Sanders): contract a small batch of the
//                        heaviest-*rated* edges per level, selected by a
//                        lazy-update priority queue over a dynamic adjacency
//                        that is patched row by row — no full CSR rebuild
//                        between merges; a compact CSR is materialised once
//                        per level for the uncoarsening ladder.
//
// Determinism contract (DESIGN.md §12): every strategy is byte-identical
// across pool sizes {1, 2, 4, 8}.  kMatching keeps the historical caveat
// that threads == 1 (no pool) uses sequential HEM and may differ from the
// pooled result; the two new strategies are sequential by construction and
// identical with or without a pool.  The RNG draw order is part of the
// contract: kMatching draws exactly what the old loop drew, kAlgebraicDistance
// draws one u64 (test-vector seed) then the visit permutation per level, and
// kNLevel draws nothing.
//
// Strategy objects are stateless const singletons (concurrent bisections in
// the fork/join tree share them); all mutable state lives in the
// CoarsenWorkspace owned by each BisectWorkspace, so the warm path stays
// allocation-free.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "coarsen/contract.hpp"
#include "coarsen/matching.hpp"
#include "support/rng.hpp"

namespace mgp {

struct BisectWorkspace;
class ThreadPool;

enum class CoarsenStrategy : std::uint8_t {
  kMatching = 0,         ///< §3.1 matching + contraction (default)
  kAlgebraicDistance,    ///< AD-weighted HEM tie-breaking
  kNLevel,               ///< lazy-PQ single/tiny-batch edge contraction
};

/// Short tag ("MATCH", "ADHEM", "NLEVEL") for describe() strings and CLIs.
std::string to_string(CoarsenStrategy s);

/// Strategy-specific knobs, carried by MultilevelConfig.
struct CoarsenOptions {
  CoarsenStrategy strategy = CoarsenStrategy::kMatching;

  // kAlgebraicDistance: Jacobi relaxation shape.  The defaults follow
  // Safro/Sanders/Schulz's observation that a handful of sweeps over a few
  // test vectors already separates "tight" from "loose" edges.
  int ad_test_vectors = 3;   ///< R: independent relaxation vectors
  int ad_iterations = 8;     ///< fixed JOR sweep count per level
  double ad_omega = 0.5;     ///< JOR damping factor in (0, 1]

  /// kNLevel: edges contracted per level.  0 = adaptive max(1, n/16), which
  /// caps the ladder around 40+ levels per halving; 1 = the literal n-level
  /// algorithm (one edge per level — intended for tests and small graphs).
  vid_t nlevel_batch = 0;
};

/// Per-level statistics a strategy reports back to the driver, which feeds
/// them into obs counters and the per-bisection report.
struct CoarsenLevelStats {
  /// Matched pairs (matching strategies) or edges contracted (n-level).
  vid_t matched_pairs = 0;
  /// Jacobi sweeps performed this level (kAlgebraicDistance only).
  int ad_sweeps = 0;
  /// Lazy-heap pushes this level (kNLevel only).
  std::int64_t pq_updates = 0;
};

/// One way of coarsening a graph by one level.  Implementations own the
/// match→contract→stop decision for their level: a `true` return hands the
/// driver a usable Contraction in `out`; `false` means "stop the ladder
/// here" (matching stagnated, or no contractible edges remain).  A false
/// return may still have drawn RNG and written `out` — the level is simply
/// discarded, exactly like the historical stagnation break.
class CoarseningStrategy {
 public:
  virtual ~CoarseningStrategy() = default;

  /// Builds one coarse level from `fine` into `out`.  `fine_cewgt` is the
  /// per-vertex interior collapsed edge weight (empty at level 0).  Scratch
  /// comes from `ws` (matching buffers, contraction scratch, arena, and the
  /// strategy-specific CoarsenWorkspace); nothing is allocated once the
  /// workspace has warmed to the subproblem's size.
  virtual bool coarsen_level(const Graph& fine, std::span<const ewt_t> fine_cewgt,
                             MatchingScheme matching, const CoarsenOptions& opts,
                             double min_shrink_factor, Rng& rng, ThreadPool* pool,
                             BisectWorkspace& ws, Contraction& out,
                             CoarsenLevelStats& stats) const = 0;
};

/// The shared stateless singleton implementing `kind`.
const CoarseningStrategy& coarsening_strategy(CoarsenStrategy kind);

/// Reusable strategy scratch, one per BisectWorkspace.  Default-constructed
/// empty; warms to the subproblem's high-water size on first use.
struct CoarsenWorkspace {
  // kAlgebraicDistance: double-buffered test vectors, laid out r-major
  // (x[r * n + v]) so one sweep is R contiguous passes.
  std::vector<double> ad_x;
  std::vector<double> ad_y;

  // kNLevel: lazy-update binary heap + dynamic adjacency.
  struct NLevelEdge {
    double rating;       ///< w / (vwgt_u * vwgt_v) at push time
    ewt_t w;             ///< edge weight at push time
    vid_t u, v;          ///< endpoints, u < v (fine-graph ids)
    std::uint32_t ver_u, ver_v;  ///< endpoint versions at push time
  };
  std::vector<NLevelEdge> heap;                          ///< std::*_heap storage
  std::vector<std::vector<std::pair<vid_t, ewt_t>>> adj; ///< mutable rows
  std::vector<vwt_t> node_wgt;        ///< current multinode weights
  std::vector<ewt_t> interior_wgt;    ///< accumulated interior edge weight
  std::vector<vid_t> leader;          ///< merge forest: leader[v] == v when alive
  std::vector<std::uint32_t> version; ///< bumped when a row is rebuilt
  std::vector<vid_t> coarse_id;       ///< alive vertex -> compact coarse id
  std::vector<std::int64_t> scatter;  ///< dense neighbour position table
  std::vector<std::uint32_t> scatter_epoch;
  std::uint32_t epoch = 0;

  /// Heap bytes currently reserved (capacity, not size).
  std::size_t bytes_reserved() const;
};

// ---- Wire/scheme-byte mapping (server protocol, CLIs). ---------------------
// One byte selects the whole coarsening behaviour: values 0..3 are the
// classic matching schemes under the default strategy, 4 and 5 select the
// advanced strategies.  The byte sits inside the request head's config-digest
// region, so distinct schemes can never share a cache entry.
inline constexpr std::uint8_t kSchemeByteAlgebraicDistance = 4;
inline constexpr std::uint8_t kSchemeByteNLevel = 5;
inline constexpr std::uint8_t kSchemeByteMax = kSchemeByteNLevel;

/// Encodes (strategy, matching) into the wire byte.
std::uint8_t scheme_byte(CoarsenStrategy strategy, MatchingScheme matching);

/// Decodes the wire byte; returns false for an unknown value (> 5).
bool scheme_from_byte(std::uint8_t b, CoarsenStrategy& strategy,
                      MatchingScheme& matching);

}  // namespace mgp
