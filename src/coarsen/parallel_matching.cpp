#include "coarsen/parallel_matching.hpp"

#include <atomic>
#include <vector>

#include "obs/trace.hpp"

namespace mgp {

Matching compute_matching_parallel_hem(const Graph& g, ThreadPool& pool) {
  Matching result;
  std::vector<vid_t> propose;
  compute_matching_parallel_hem(g, pool, result, propose);
  return result;
}

void compute_matching_parallel_hem(const Graph& g, ThreadPool& pool, Matching& result,
                                   std::vector<vid_t>& propose) {
  const vid_t n = g.num_vertices();
  obs::Span span("match.parallel_hem");
  span.arg("n", n);
  result.match.assign(static_cast<std::size_t>(n), kInvalidVid);
  result.pairs = 0;
  result.weight = 0;
  propose.assign(static_cast<std::size_t>(n), kInvalidVid);

  auto matched = [&](vid_t v) {
    return result.match[static_cast<std::size_t>(v)] != kInvalidVid;
  };

  // Each round matches at least one pair while any unmatched edge remains,
  // so n/2 rounds suffice; typical convergence is O(log n) rounds.
  for (vid_t round = 0; round <= n / 2 + 1; ++round) {
    // --- Phase 1: propose (reads matches, writes only propose[own block]).
    pool.parallel_for(n, [&](vid_t begin, vid_t end) {
      for (vid_t v = begin; v < end; ++v) {
        propose[static_cast<std::size_t>(v)] = kInvalidVid;
        if (matched(v)) continue;
        auto nbrs = g.neighbors(v);
        auto wgts = g.edge_weights(v);
        ewt_t best_w = -1;
        vid_t best = kInvalidVid;
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
          const vid_t u = nbrs[i];
          if (matched(u)) continue;
          // Total order (weight desc, id asc) makes proposals deterministic
          // and guarantees a mutual pair exists.
          if (wgts[i] > best_w || (wgts[i] == best_w && u < best)) {
            best_w = wgts[i];
            best = u;
          }
        }
        propose[static_cast<std::size_t>(v)] = best;
      }
    });

    // --- Phase 2: commit mutual proposals (each pair written by the worker
    //     owning its smaller endpoint; cells are disjoint across pairs).
    std::atomic<vid_t> new_pairs{0};
    pool.parallel_for(n, [&](vid_t begin, vid_t end) {
      vid_t local = 0;
      for (vid_t v = begin; v < end; ++v) {
        const vid_t u = propose[static_cast<std::size_t>(v)];
        if (u == kInvalidVid || u < v) continue;  // smaller endpoint commits
        if (propose[static_cast<std::size_t>(u)] == v) {
          result.match[static_cast<std::size_t>(v)] = u;
          result.match[static_cast<std::size_t>(u)] = v;
          ++local;
        }
      }
      new_pairs.fetch_add(local, std::memory_order_relaxed);
    });

    const vid_t committed = new_pairs.load();
    if (committed == 0) break;  // no mutual pair left => matching is maximal
    result.pairs += committed;
  }

  // Bookkeeping: self-match the unmatched and accumulate W(M).
  for (vid_t v = 0; v < n; ++v) {
    if (result.match[static_cast<std::size_t>(v)] == kInvalidVid) {
      result.match[static_cast<std::size_t>(v)] = v;
    }
  }
  for (vid_t v = 0; v < n; ++v) {
    const vid_t p = result.match[static_cast<std::size_t>(v)];
    if (p <= v) continue;
    auto nbrs = g.neighbors(v);
    auto wgts = g.edge_weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] == p) {
        result.weight += wgts[i];
        break;
      }
    }
  }
}

Matching compute_matching_parallel_hem(const Graph& g, int num_threads) {
  ThreadPool pool(num_threads <= 0 ? 1 : num_threads);
  return compute_matching_parallel_hem(g, pool);
}

}  // namespace mgp
