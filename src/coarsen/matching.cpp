#include "coarsen/matching.hpp"

#include <cassert>
#include <stdexcept>

#include "obs/trace.hpp"

namespace mgp {

std::string to_string(MatchingScheme s) {
  switch (s) {
    case MatchingScheme::kRandom: return "RM";
    case MatchingScheme::kHeavyEdge: return "HEM";
    case MatchingScheme::kLightEdge: return "LEM";
    case MatchingScheme::kHeavyClique: return "HCM";
  }
  return "?";
}

namespace {

/// Edge density of the multinode formed by matching u and v across an edge
/// of weight w, following the HCM formula: interior edge weight relative to
/// the complete graph on the multinode's constituent (unit) vertices.
double hcm_density(vwt_t vu, vwt_t vv, ewt_t cu, ewt_t cv, ewt_t w) {
  const double verts = static_cast<double>(vu + vv);
  if (verts <= 1.0) return 0.0;
  return 2.0 * static_cast<double>(cu + cv + w) / (verts * (verts - 1.0));
}

}  // namespace

Matching compute_matching(const Graph& g, MatchingScheme scheme,
                          std::span<const ewt_t> cewgt, Rng& rng) {
  Matching result;
  std::vector<vid_t> order;
  compute_matching(g, scheme, cewgt, rng, result, order);
  return result;
}

void compute_matching(const Graph& g, MatchingScheme scheme,
                      std::span<const ewt_t> cewgt, Rng& rng, Matching& result,
                      std::vector<vid_t>& order) {
  const vid_t n = g.num_vertices();
  // An empty span means "level 0: all zeros"; a non-empty span must cover
  // every vertex, or HCM would silently read stale densities (or out of
  // bounds) for the tail.
  if (!cewgt.empty() && cewgt.size() != static_cast<std::size_t>(n)) {
    throw std::invalid_argument(
        "compute_matching: cewgt must be empty or have one entry per vertex");
  }
  obs::Span span("match");
  span.arg("n", n);
  result.match.assign(static_cast<std::size_t>(n), kInvalidVid);
  result.pairs = 0;
  result.weight = 0;

  rng.permutation_into(n, order);
  auto matched = [&](vid_t v) { return result.match[static_cast<std::size_t>(v)] != kInvalidVid; };

  for (vid_t u : order) {
    if (matched(u)) continue;
    auto nbrs = g.neighbors(u);
    auto wgts = g.edge_weights(u);
    vid_t chosen = kInvalidVid;

    switch (scheme) {
      case MatchingScheme::kRandom: {
        // Random unmatched neighbour with a single RNG draw: scan the
        // adjacency list from a random offset and take the first unmatched
        // vertex.  (One draw per vertex keeps RM the cheapest scheme, as in
        // the paper, while the random visit order supplies the bulk of the
        // randomisation.)
        if (!nbrs.empty()) {
          const std::size_t start = static_cast<std::size_t>(rng.next_below(nbrs.size()));
          for (std::size_t k = 0; k < nbrs.size(); ++k) {
            vid_t v = nbrs[(start + k) % nbrs.size()];
            if (!matched(v)) {
              chosen = v;
              break;
            }
          }
        }
        break;
      }
      case MatchingScheme::kHeavyEdge: {
        ewt_t best = -1;
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
          vid_t v = nbrs[i];
          if (matched(v)) continue;
          if (wgts[i] > best) {
            best = wgts[i];
            chosen = v;
          }
        }
        break;
      }
      case MatchingScheme::kLightEdge: {
        ewt_t best = -1;
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
          vid_t v = nbrs[i];
          if (matched(v)) continue;
          if (best < 0 || wgts[i] < best) {
            best = wgts[i];
            chosen = v;
          }
        }
        break;
      }
      case MatchingScheme::kHeavyClique: {
        const ewt_t cu = cewgt.empty() ? 0 : cewgt[static_cast<std::size_t>(u)];
        double best = -1.0;
        ewt_t best_w = -1;
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
          vid_t v = nbrs[i];
          if (matched(v)) continue;
          const ewt_t cv = cewgt.empty() ? 0 : cewgt[static_cast<std::size_t>(v)];
          double d = hcm_density(g.vertex_weight(u), g.vertex_weight(v), cu, cv, wgts[i]);
          // Tie-break on the heavier edge, making HCM the "HEM plus high
          // contracted weight" scheme §3.1 describes.
          if (d > best || (d == best && wgts[i] > best_w)) {
            best = d;
            best_w = wgts[i];
            chosen = v;
          }
        }
        break;
      }
    }

    if (chosen != kInvalidVid) {
      std::size_t i = static_cast<std::size_t>(nbrs.data() - g.adjncy().data());
      // Look up the matched edge's weight for W(M) bookkeeping.
      for (std::size_t k = 0; k < nbrs.size(); ++k) {
        if (nbrs[k] == chosen) {
          result.weight += g.adjwgt()[i + k];
          break;
        }
      }
      result.match[static_cast<std::size_t>(u)] = chosen;
      result.match[static_cast<std::size_t>(chosen)] = u;
      ++result.pairs;
    } else {
      result.match[static_cast<std::size_t>(u)] = u;
    }
  }
}

bool is_maximal_matching(const Graph& g, const Matching& m) {
  const vid_t n = g.num_vertices();
  if (m.match.size() != static_cast<std::size_t>(n)) return false;
  for (vid_t u = 0; u < n; ++u) {
    vid_t p = m.match[static_cast<std::size_t>(u)];
    if (p < 0 || p >= n) return false;
    if (m.match[static_cast<std::size_t>(p)] != u) return false;  // involution
    if (p != u) {
      // Matched pair must be an edge.
      bool edge = false;
      for (vid_t v : g.neighbors(u)) {
        if (v == p) { edge = true; break; }
      }
      if (!edge) return false;
    } else {
      // Maximality: no unmatched neighbour may remain.
      for (vid_t v : g.neighbors(u)) {
        if (m.match[static_cast<std::size_t>(v)] == v) return false;
      }
    }
  }
  return true;
}

}  // namespace mgp
