// Deterministic parallel heavy-edge matching (extension).
//
// §1: "The coarsening phase of these methods is easy to parallelize [23],
// but the Kernighan-Lin heuristic used in the refinement phase is very
// difficult to speedup in parallel computers."  This module implements the
// easy half as the round-synchronous *proposal matching* used by parallel
// multilevel partitioners:
//
//   repeat:  (1) every unmatched vertex proposes to its heaviest unmatched
//                neighbour (ties by smaller vertex id);
//            (2) mutual proposals become matches;
//   until no progress.
//
// Each round is two embarrassingly-parallel sweeps over the vertices with
// no shared mutable state inside a sweep, so the result is *identical for
// every thread count* — the property that makes parallel coarsening
// reproducible.  Progress is guaranteed: the globally heaviest available
// edge (in the (weight, id, id) total order) is always mutual, so each
// round matches at least one pair, and termination with no progress
// certifies maximality.
#pragma once

#include "coarsen/matching.hpp"
#include "support/thread_pool.hpp"

namespace mgp {

/// Heavy-edge matching computed by parallel rounds on `pool`'s workers
/// (a 1-thread pool executes the same algorithm inline; results are
/// byte-identical across pool sizes).
Matching compute_matching_parallel_hem(const Graph& g, ThreadPool& pool);

/// Allocation-free form: the matching goes into `out` and the per-round
/// proposal table into `propose_scratch`, both caller-owned and reused
/// across calls.  Byte-identical to the form above (which wraps this one).
void compute_matching_parallel_hem(const Graph& g, ThreadPool& pool, Matching& out,
                                   std::vector<vid_t>& propose_scratch);

/// Convenience overload: runs on a temporary pool of `num_threads` workers
/// (1 = inline sequential execution of the same algorithm).
Matching compute_matching_parallel_hem(const Graph& g, int num_threads);

}  // namespace mgp
