// Graph contraction: builds G_{i+1} from G_i and a matching (§3.1).
//
// Matched pairs collapse into multinodes whose vertex weight is the sum of
// the pair's weights; parallel edges to a common neighbour merge by summing
// weights, so a partition's edge-cut is identical at every level for the
// same vertex assignment.  Unmatched vertices are copied over.
//
// Contraction is data-parallel over coarse rows: each coarse vertex's
// adjacency depends only on its own fine constituents and the (read-only)
// cmap, so rows can be assembled concurrently into per-chunk scratch
// buffers and concatenated in row order.  The parallel path is
// byte-identical to the sequential one for every thread count.
#pragma once

#include <span>
#include <vector>

#include "coarsen/matching.hpp"
#include "graph/csr.hpp"
#include "support/thread_pool.hpp"

namespace mgp {

struct Contraction {
  Graph coarse;
  /// cmap[fine vertex] = coarse vertex it collapsed into.
  std::vector<vid_t> cmap;
  /// Per coarse vertex: total weight of fine edges interior to the multinode
  /// (accumulated across all levels).  Feeds HCM's edge-density computation.
  std::vector<ewt_t> cewgt;
};

/// Contracts `fine` along `match`.  `fine_cewgt` may be empty (level 0).
/// O(|V| + |E|): two passes over the fine adjacency with a dense
/// coarse-neighbour position table.
///
/// When `pool` is non-null with num_threads() > 1, coarse rows are built in
/// parallel (per-chunk scratch buffers, prefix-sum merge into the output
/// CSR); the result is byte-identical to the sequential path.
Contraction contract(const Graph& fine, const Matching& match,
                     std::span<const ewt_t> fine_cewgt, ThreadPool* pool = nullptr);

}  // namespace mgp
