// Graph contraction: builds G_{i+1} from G_i and a matching (§3.1).
//
// Matched pairs collapse into multinodes whose vertex weight is the sum of
// the pair's weights; parallel edges to a common neighbour merge by summing
// weights, so a partition's edge-cut is identical at every level for the
// same vertex assignment.  Unmatched vertices are copied over.
//
// Contraction is data-parallel over coarse rows: each coarse vertex's
// adjacency depends only on its own fine constituents and the (read-only)
// cmap, so rows can be assembled concurrently into per-chunk scratch
// buffers and concatenated in row order.  The parallel path is
// byte-identical to the sequential one for every thread count.
#pragma once

#include <span>
#include <vector>

#include "coarsen/matching.hpp"
#include "graph/csr.hpp"
#include "support/arena.hpp"
#include "support/thread_pool.hpp"

namespace mgp {

struct Contraction {
  Graph coarse;
  /// cmap[fine vertex] = coarse vertex it collapsed into.
  std::vector<vid_t> cmap;
  /// Per coarse vertex: total weight of fine edges interior to the multinode
  /// (accumulated across all levels).  Feeds HCM's edge-density computation.
  std::vector<ewt_t> cewgt;

  /// Heap bytes reserved by this level (graph storage + maps).
  std::size_t memory_bytes() const {
    return coarse.memory_bytes() + cmap.capacity() * sizeof(vid_t) +
           cewgt.capacity() * sizeof(ewt_t);
  }
};

/// Per-chunk scratch for the parallel contraction path: rows are assembled
/// into these buffers, then concatenated in chunk (= row) order.
struct ContractChunk {
  std::vector<eid_t> pos;  ///< dense coarse-neighbour scatter table
  std::vector<vid_t> adjncy;
  std::vector<ewt_t> adjwgt;
};

/// Reusable scratch for contract_into (the parallel path's per-chunk
/// buffers; the sequential path draws its scratch from the arena instead).
struct ContractScratch {
  std::vector<ContractChunk> chunks;
  std::vector<eid_t> chunk_base;

  std::size_t memory_bytes() const {
    std::size_t total = chunk_base.capacity() * sizeof(eid_t);
    for (const ContractChunk& c : chunks) {
      total += c.pos.capacity() * sizeof(eid_t) + c.adjncy.capacity() * sizeof(vid_t) +
               c.adjwgt.capacity() * sizeof(ewt_t);
    }
    return total;
  }
};

/// Contracts `fine` along `match`.  `fine_cewgt` may be empty (level 0).
/// O(|V| + |E|): two passes over the fine adjacency with a dense
/// coarse-neighbour position table.
///
/// When `pool` is non-null with num_threads() > 1, coarse rows are built in
/// parallel (per-chunk scratch buffers, prefix-sum merge into the output
/// CSR); the result is byte-identical to the sequential path.
Contraction contract(const Graph& fine, const Matching& match,
                     std::span<const ewt_t> fine_cewgt, ThreadPool* pool = nullptr);

/// Allocation-free form: call-local tables come from `arena` (reset here),
/// longer-lived scratch from `scratch`, and the result is rebuilt inside
/// `out`, recycling the capacity of whatever Contraction previously occupied
/// it (the coarse Graph's CSR arrays are moved out, refilled, and moved back
/// in).  The sequential path performs zero heap allocations once every
/// buffer has warmed to this subproblem's size; the parallel path is
/// allocation-free except for the pool's task futures.  Byte-identical to
/// contract() above, which now wraps this.
void contract_into(const Graph& fine, const Matching& match,
                   std::span<const ewt_t> fine_cewgt, ThreadPool* pool,
                   ContractScratch& scratch, ScratchArena& arena, Contraction& out);

}  // namespace mgp
