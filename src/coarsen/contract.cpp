#include "coarsen/contract.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "obs/trace.hpp"

namespace mgp {
namespace {

/// Per-chunk scratch for the parallel path: rows are assembled into these
/// buffers, then concatenated in chunk (= row) order.
struct RowChunk {
  std::vector<vid_t> adjncy;
  std::vector<ewt_t> adjwgt;
};

}  // namespace

Contraction contract(const Graph& fine, const Matching& match,
                     std::span<const ewt_t> fine_cewgt, ThreadPool* pool) {
  const vid_t n = fine.num_vertices();
  assert(match.match.size() == static_cast<std::size_t>(n));
  obs::Span span("contract");
  span.arg("fine_n", n);

  Contraction out;
  out.cmap.assign(static_cast<std::size_t>(n), kInvalidVid);

  // Number coarse vertices: the smaller endpoint of each pair (and every
  // unmatched vertex) claims the next id, in fine-vertex order.  reps[c] is
  // that claiming fine vertex, so coarse rows can be built in any order.
  std::vector<vid_t> reps;
  reps.reserve(static_cast<std::size_t>(n));
  for (vid_t v = 0; v < n; ++v) {
    vid_t p = match.match[static_cast<std::size_t>(v)];
    if (v <= p) {
      out.cmap[static_cast<std::size_t>(v)] = static_cast<vid_t>(reps.size());
      reps.push_back(v);
    }
  }
  const vid_t cn = static_cast<vid_t>(reps.size());
  span.arg("coarse_n", cn);
  for (vid_t v = 0; v < n; ++v) {
    vid_t p = match.match[static_cast<std::size_t>(v)];
    if (v > p) out.cmap[static_cast<std::size_t>(v)] = out.cmap[static_cast<std::size_t>(p)];
  }

  std::vector<vwt_t> cvwgt(static_cast<std::size_t>(cn), 0);
  out.cewgt.assign(static_cast<std::size_t>(cn), 0);
  std::vector<eid_t> cxadj(static_cast<std::size_t>(cn) + 1, 0);

  auto fine_interior = [&](vid_t v) {
    return fine_cewgt.empty() ? ewt_t{0} : fine_cewgt[static_cast<std::size_t>(v)];
  };

  // Assembles coarse rows [row_begin, row_end) into `adjncy`/`adjwgt`,
  // recording each row's end offset *relative to the buffer* in cxadj[c+1].
  // `pos` is a dense scatter table (coarse neighbour -> slot in the row
  // being assembled, or -1), owned by the caller so each chunk reuses one.
  // Row content depends only on the row itself, so any chunking of the row
  // range yields the same bytes after in-order concatenation.
  auto build_rows = [&](vid_t row_begin, vid_t row_end, std::vector<eid_t>& pos,
                        std::vector<vid_t>& adjncy, std::vector<ewt_t>& adjwgt) {
    for (vid_t c = row_begin; c < row_end; ++c) {
      const vid_t v = reps[static_cast<std::size_t>(c)];
      const vid_t p = match.match[static_cast<std::size_t>(v)];

      cvwgt[static_cast<std::size_t>(c)] = fine.vertex_weight(v);
      out.cewgt[static_cast<std::size_t>(c)] = fine_interior(v);
      if (p != v) {
        cvwgt[static_cast<std::size_t>(c)] += fine.vertex_weight(p);
        out.cewgt[static_cast<std::size_t>(c)] += fine_interior(p);
      }

      const eid_t row_start = static_cast<eid_t>(adjncy.size());
      auto scatter = [&](vid_t u) {
        auto nbrs = fine.neighbors(u);
        auto wgts = fine.edge_weights(u);
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
          vid_t cv = out.cmap[static_cast<std::size_t>(nbrs[i])];
          if (cv == c) {
            // Edge interior to the multinode (the collapsed matching edge):
            // count its weight once, on the smaller fine endpoint's scan.
            if (u < nbrs[i]) out.cewgt[static_cast<std::size_t>(c)] += wgts[i];
            continue;
          }
          eid_t slot = pos[static_cast<std::size_t>(cv)];
          if (slot < 0) {
            pos[static_cast<std::size_t>(cv)] = static_cast<eid_t>(adjncy.size());
            adjncy.push_back(cv);
            adjwgt.push_back(wgts[i]);
          } else {
            adjwgt[static_cast<std::size_t>(slot)] += wgts[i];
          }
        }
      };
      scatter(v);
      if (p != v) scatter(p);

      // Reset the scatter table for the next coarse row.
      for (std::size_t i = static_cast<std::size_t>(row_start); i < adjncy.size(); ++i) {
        pos[static_cast<std::size_t>(adjncy[i])] = -1;
      }
      cxadj[static_cast<std::size_t>(c) + 1] = static_cast<eid_t>(adjncy.size());
    }
  };

  const int chunks = pool ? pool->num_threads() : 1;
  if (chunks <= 1 || cn < 2 * static_cast<vid_t>(chunks)) {
    // Sequential path: one buffer, row-relative offsets are already final.
    std::vector<eid_t> pos(static_cast<std::size_t>(cn), -1);
    std::vector<vid_t> cadjncy;
    std::vector<ewt_t> cadjwgt;
    cadjncy.reserve(static_cast<std::size_t>(fine.num_arcs()));
    cadjwgt.reserve(static_cast<std::size_t>(fine.num_arcs()));
    build_rows(0, cn, pos, cadjncy, cadjwgt);
    out.coarse = Graph(std::move(cxadj), std::move(cadjncy), std::move(cvwgt),
                       std::move(cadjwgt));
    return out;
  }

  // Parallel path: each chunk of coarse rows is assembled into its own
  // scratch buffers (disjoint writes everywhere: cvwgt/cewgt/cxadj slots
  // are owned by the row's chunk), then a prefix sum over chunk sizes
  // places every chunk in the output CSR and a second sweep copies.
  std::vector<RowChunk> scratch(static_cast<std::size_t>(chunks));
  pool->parallel_for_chunks(cn, chunks, [&](int c, vid_t begin, vid_t end) {
    std::vector<eid_t> pos(static_cast<std::size_t>(cn), -1);
    auto& rc = scratch[static_cast<std::size_t>(c)];
    rc.adjncy.reserve(static_cast<std::size_t>(fine.num_arcs()) /
                      static_cast<std::size_t>(chunks));
    rc.adjwgt.reserve(static_cast<std::size_t>(fine.num_arcs()) /
                      static_cast<std::size_t>(chunks));
    build_rows(begin, end, pos, rc.adjncy, rc.adjwgt);
  });

  std::vector<eid_t> chunk_base(static_cast<std::size_t>(chunks) + 1, 0);
  for (int c = 0; c < chunks; ++c) {
    chunk_base[static_cast<std::size_t>(c) + 1] =
        chunk_base[static_cast<std::size_t>(c)] +
        static_cast<eid_t>(scratch[static_cast<std::size_t>(c)].adjncy.size());
  }
  const eid_t total_arcs = chunk_base[static_cast<std::size_t>(chunks)];
  std::vector<vid_t> cadjncy(static_cast<std::size_t>(total_arcs));
  std::vector<ewt_t> cadjwgt(static_cast<std::size_t>(total_arcs));

  // Same chunk boundaries as the build sweep, so chunk c's rows are exactly
  // the ones whose cxadj slots it wrote: shift them by the chunk's base and
  // copy its buffers into place.
  pool->parallel_for_chunks(cn, chunks, [&](int c, vid_t begin, vid_t end) {
    const eid_t base = chunk_base[static_cast<std::size_t>(c)];
    for (vid_t row = begin; row < end; ++row) {
      cxadj[static_cast<std::size_t>(row) + 1] += base;
    }
    const auto& rc = scratch[static_cast<std::size_t>(c)];
    std::copy(rc.adjncy.begin(), rc.adjncy.end(),
              cadjncy.begin() + static_cast<std::size_t>(base));
    std::copy(rc.adjwgt.begin(), rc.adjwgt.end(),
              cadjwgt.begin() + static_cast<std::size_t>(base));
  });

  out.coarse = Graph(std::move(cxadj), std::move(cadjncy), std::move(cvwgt),
                     std::move(cadjwgt));
  return out;
}

}  // namespace mgp
