#include "coarsen/contract.hpp"

#include <cassert>

namespace mgp {

Contraction contract(const Graph& fine, const Matching& match,
                     std::span<const ewt_t> fine_cewgt) {
  const vid_t n = fine.num_vertices();
  assert(match.match.size() == static_cast<std::size_t>(n));

  Contraction out;
  out.cmap.assign(static_cast<std::size_t>(n), kInvalidVid);

  // Number coarse vertices: the smaller endpoint of each pair (and every
  // unmatched vertex) claims the next id, in fine-vertex order.
  vid_t cn = 0;
  for (vid_t v = 0; v < n; ++v) {
    vid_t p = match.match[static_cast<std::size_t>(v)];
    if (v <= p) out.cmap[static_cast<std::size_t>(v)] = cn++;
  }
  for (vid_t v = 0; v < n; ++v) {
    vid_t p = match.match[static_cast<std::size_t>(v)];
    if (v > p) out.cmap[static_cast<std::size_t>(v)] = out.cmap[static_cast<std::size_t>(p)];
  }

  std::vector<vwt_t> cvwgt(static_cast<std::size_t>(cn), 0);
  out.cewgt.assign(static_cast<std::size_t>(cn), 0);
  std::vector<eid_t> cxadj(static_cast<std::size_t>(cn) + 1, 0);

  auto fine_interior = [&](vid_t v) {
    return fine_cewgt.empty() ? ewt_t{0} : fine_cewgt[static_cast<std::size_t>(v)];
  };

  // A dense scatter table: for the coarse vertex currently being assembled,
  // pos[c] is the slot of coarse neighbour c in the output row, or -1.
  std::vector<eid_t> pos(static_cast<std::size_t>(cn), -1);
  std::vector<vid_t> cadjncy;
  std::vector<ewt_t> cadjwgt;
  cadjncy.reserve(static_cast<std::size_t>(fine.num_arcs()));
  cadjwgt.reserve(static_cast<std::size_t>(fine.num_arcs()));

  for (vid_t v = 0; v < n; ++v) {
    vid_t p = match.match[static_cast<std::size_t>(v)];
    if (v > p) continue;  // processed with its partner
    vid_t c = out.cmap[static_cast<std::size_t>(v)];

    cvwgt[static_cast<std::size_t>(c)] = fine.vertex_weight(v);
    out.cewgt[static_cast<std::size_t>(c)] = fine_interior(v);
    if (p != v) {
      cvwgt[static_cast<std::size_t>(c)] += fine.vertex_weight(p);
      out.cewgt[static_cast<std::size_t>(c)] += fine_interior(p);
    }

    const eid_t row_begin = static_cast<eid_t>(cadjncy.size());
    auto scatter = [&](vid_t u) {
      auto nbrs = fine.neighbors(u);
      auto wgts = fine.edge_weights(u);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        vid_t cv = out.cmap[static_cast<std::size_t>(nbrs[i])];
        if (cv == c) {
          // Edge interior to the multinode (the collapsed matching edge):
          // count its weight once, on the smaller fine endpoint's scan.
          if (u < nbrs[i]) out.cewgt[static_cast<std::size_t>(c)] += wgts[i];
          continue;
        }
        eid_t slot = pos[static_cast<std::size_t>(cv)];
        if (slot < 0) {
          pos[static_cast<std::size_t>(cv)] = static_cast<eid_t>(cadjncy.size());
          cadjncy.push_back(cv);
          cadjwgt.push_back(wgts[i]);
        } else {
          cadjwgt[static_cast<std::size_t>(slot)] += wgts[i];
        }
      }
    };
    scatter(v);
    if (p != v) scatter(p);

    // Reset the scatter table for the next coarse row.
    for (std::size_t i = static_cast<std::size_t>(row_begin); i < cadjncy.size(); ++i) {
      pos[static_cast<std::size_t>(cadjncy[i])] = -1;
    }
    cxadj[static_cast<std::size_t>(c) + 1] = static_cast<eid_t>(cadjncy.size());
  }

  out.coarse = Graph(std::move(cxadj), std::move(cadjncy), std::move(cvwgt),
                     std::move(cadjwgt));
  return out;
}

}  // namespace mgp
