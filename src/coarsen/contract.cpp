#include "coarsen/contract.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "obs/trace.hpp"

namespace mgp {

Contraction contract(const Graph& fine, const Matching& match,
                     std::span<const ewt_t> fine_cewgt, ThreadPool* pool) {
  ContractScratch scratch;
  ScratchArena arena;
  Contraction out;
  contract_into(fine, match, fine_cewgt, pool, scratch, arena, out);
  return out;
}

void contract_into(const Graph& fine, const Matching& match,
                   std::span<const ewt_t> fine_cewgt, ThreadPool* pool,
                   ContractScratch& scratch, ScratchArena& arena, Contraction& out) {
  const vid_t n = fine.num_vertices();
  assert(match.match.size() == static_cast<std::size_t>(n));
  obs::Span span("contract");
  span.arg("fine_n", n);

  arena.reset();
  out.cmap.assign(static_cast<std::size_t>(n), kInvalidVid);

  // Number coarse vertices: the smaller endpoint of each pair (and every
  // unmatched vertex) claims the next id, in fine-vertex order.  reps[c] is
  // that claiming fine vertex, so coarse rows can be built in any order.
  std::span<vid_t> reps = arena.alloc<vid_t>(static_cast<std::size_t>(n));
  vid_t cn = 0;
  for (vid_t v = 0; v < n; ++v) {
    vid_t p = match.match[static_cast<std::size_t>(v)];
    if (v <= p) {
      out.cmap[static_cast<std::size_t>(v)] = cn;
      reps[static_cast<std::size_t>(cn)] = v;
      ++cn;
    }
  }
  span.arg("coarse_n", cn);
  for (vid_t v = 0; v < n; ++v) {
    vid_t p = match.match[static_cast<std::size_t>(v)];
    if (v > p) out.cmap[static_cast<std::size_t>(v)] = out.cmap[static_cast<std::size_t>(p)];
  }

  // Rebuild the coarse graph inside out.coarse's recycled storage.  Every
  // reserve below is against the *fine* graph's size — an upper bound on any
  // contraction of it — so once warm, mid-build growth can never occur.
  Graph::Storage st = out.coarse.take_storage();
  st.vwgt.reserve(static_cast<std::size_t>(n));
  st.vwgt.assign(static_cast<std::size_t>(cn), 0);
  out.cewgt.reserve(static_cast<std::size_t>(n));
  out.cewgt.assign(static_cast<std::size_t>(cn), 0);
  st.xadj.reserve(static_cast<std::size_t>(n) + 1);
  st.xadj.assign(static_cast<std::size_t>(cn) + 1, 0);

  auto fine_interior = [&](vid_t v) {
    return fine_cewgt.empty() ? ewt_t{0} : fine_cewgt[static_cast<std::size_t>(v)];
  };

  // Assembles coarse rows [row_begin, row_end) into `adjncy`/`adjwgt`,
  // recording each row's end offset *relative to the buffer* in xadj[c+1].
  // `pos` is a dense scatter table (coarse neighbour -> slot in the row
  // being assembled, or -1), owned by the caller so each chunk reuses one.
  // Row content depends only on the row itself, so any chunking of the row
  // range yields the same bytes after in-order concatenation.
  auto build_rows = [&](vid_t row_begin, vid_t row_end, std::span<eid_t> pos,
                        std::vector<vid_t>& adjncy, std::vector<ewt_t>& adjwgt) {
    for (vid_t c = row_begin; c < row_end; ++c) {
      const vid_t v = reps[static_cast<std::size_t>(c)];
      const vid_t p = match.match[static_cast<std::size_t>(v)];

      st.vwgt[static_cast<std::size_t>(c)] = fine.vertex_weight(v);
      out.cewgt[static_cast<std::size_t>(c)] = fine_interior(v);
      if (p != v) {
        st.vwgt[static_cast<std::size_t>(c)] += fine.vertex_weight(p);
        out.cewgt[static_cast<std::size_t>(c)] += fine_interior(p);
      }

      const eid_t row_start = static_cast<eid_t>(adjncy.size());
      auto scatter = [&](vid_t u) {
        auto nbrs = fine.neighbors(u);
        auto wgts = fine.edge_weights(u);
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
          vid_t cv = out.cmap[static_cast<std::size_t>(nbrs[i])];
          if (cv == c) {
            // Edge interior to the multinode (the collapsed matching edge):
            // count its weight once, on the smaller fine endpoint's scan.
            if (u < nbrs[i]) out.cewgt[static_cast<std::size_t>(c)] += wgts[i];
            continue;
          }
          eid_t slot = pos[static_cast<std::size_t>(cv)];
          if (slot < 0) {
            pos[static_cast<std::size_t>(cv)] = static_cast<eid_t>(adjncy.size());
            adjncy.push_back(cv);
            adjwgt.push_back(wgts[i]);
          } else {
            adjwgt[static_cast<std::size_t>(slot)] += wgts[i];
          }
        }
      };
      scatter(v);
      if (p != v) scatter(p);

      // Reset the scatter table for the next coarse row.
      for (std::size_t i = static_cast<std::size_t>(row_start); i < adjncy.size(); ++i) {
        pos[static_cast<std::size_t>(adjncy[i])] = -1;
      }
      st.xadj[static_cast<std::size_t>(c) + 1] = static_cast<eid_t>(adjncy.size());
    }
  };

  const int chunks = pool ? pool->num_threads() : 1;
  if (chunks <= 1 || cn < 2 * static_cast<vid_t>(chunks)) {
    // Sequential path: one buffer, row-relative offsets are already final.
    std::span<eid_t> pos = arena.alloc<eid_t>(static_cast<std::size_t>(cn));
    std::fill(pos.begin(), pos.end(), eid_t{-1});
    st.adjncy.reserve(static_cast<std::size_t>(fine.num_arcs()));
    st.adjwgt.reserve(static_cast<std::size_t>(fine.num_arcs()));
    st.adjncy.clear();
    st.adjwgt.clear();
    build_rows(0, cn, pos, st.adjncy, st.adjwgt);
    out.coarse = Graph(std::move(st.xadj), std::move(st.adjncy), std::move(st.vwgt),
                       std::move(st.adjwgt));
    return;
  }

  // Parallel path: each chunk of coarse rows is assembled into its own
  // scratch buffers (disjoint writes everywhere: vwgt/cewgt/xadj slots
  // are owned by the row's chunk), then a prefix sum over chunk sizes
  // places every chunk in the output CSR and a second sweep copies.
  scratch.chunks.resize(static_cast<std::size_t>(chunks));
  pool->parallel_for_chunks(cn, chunks, [&](int c, vid_t begin, vid_t end) {
    auto& rc = scratch.chunks[static_cast<std::size_t>(c)];
    rc.pos.assign(static_cast<std::size_t>(cn), -1);
    rc.adjncy.clear();
    rc.adjwgt.clear();
    rc.adjncy.reserve(static_cast<std::size_t>(fine.num_arcs()) /
                      static_cast<std::size_t>(chunks));
    rc.adjwgt.reserve(static_cast<std::size_t>(fine.num_arcs()) /
                      static_cast<std::size_t>(chunks));
    build_rows(begin, end, rc.pos, rc.adjncy, rc.adjwgt);
  });

  scratch.chunk_base.assign(static_cast<std::size_t>(chunks) + 1, 0);
  std::vector<eid_t>& chunk_base = scratch.chunk_base;
  for (int c = 0; c < chunks; ++c) {
    chunk_base[static_cast<std::size_t>(c) + 1] =
        chunk_base[static_cast<std::size_t>(c)] +
        static_cast<eid_t>(scratch.chunks[static_cast<std::size_t>(c)].adjncy.size());
  }
  const eid_t total_arcs = chunk_base[static_cast<std::size_t>(chunks)];
  st.adjncy.reserve(static_cast<std::size_t>(fine.num_arcs()));
  st.adjwgt.reserve(static_cast<std::size_t>(fine.num_arcs()));
  st.adjncy.resize(static_cast<std::size_t>(total_arcs));
  st.adjwgt.resize(static_cast<std::size_t>(total_arcs));

  // Same chunk boundaries as the build sweep, so chunk c's rows are exactly
  // the ones whose xadj slots it wrote: shift them by the chunk's base and
  // copy its buffers into place.
  pool->parallel_for_chunks(cn, chunks, [&](int c, vid_t begin, vid_t end) {
    const eid_t base = chunk_base[static_cast<std::size_t>(c)];
    for (vid_t row = begin; row < end; ++row) {
      st.xadj[static_cast<std::size_t>(row) + 1] += base;
    }
    const auto& rc = scratch.chunks[static_cast<std::size_t>(c)];
    std::copy(rc.adjncy.begin(), rc.adjncy.end(),
              st.adjncy.begin() + static_cast<std::size_t>(base));
    std::copy(rc.adjwgt.begin(), rc.adjwgt.end(),
              st.adjwgt.begin() + static_cast<std::size_t>(base));
  });

  out.coarse = Graph(std::move(st.xadj), std::move(st.adjncy), std::move(st.vwgt),
                     std::move(st.adjwgt));
}

}  // namespace mgp
