// Umbrella header: the full public API of the mgp library.
//
// Most applications only need three calls:
//
//   mgp::Graph g = mgp::read_metis_graph_file("mesh.graph");
//   mgp::Rng rng(1995);
//   auto part = mgp::kway_partition(g, 8, mgp::MultilevelConfig{}, rng);
//
// Include the individual headers instead when compile time matters.
#pragma once

// Substrates.
#include "support/types.hpp"       // vid_t / eid_t / weights
#include "support/rng.hpp"         // deterministic randomness
#include "support/timer.hpp"       // phase timing (CTime/ITime/RTime/PTime)
#include "support/thread_pool.hpp" // work-helping pool for the parallel pipeline
#include "support/bucket_queue.hpp"

// Observability: tracing spans, sharded metrics, structured run reports.
// Attach an obs::Obs via MultilevelConfig::obs; see DESIGN.md §6.
#include "obs/trace.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"

// Graphs.
#include "graph/csr.hpp"           // the CSR Graph
#include "graph/builder.hpp"       // edge-list construction
#include "graph/generators.hpp"    // meshes, circuits, the paper suite
#include "graph/io.hpp"            // METIS / MatrixMarket files
#include "graph/partition_io.hpp"  // partition & permutation files
#include "graph/components.hpp"
#include "graph/permute.hpp"

// The multilevel algorithm (the paper's contribution).
#include "coarsen/matching.hpp"    // RM / HEM / LEM / HCM
#include "coarsen/parallel_matching.hpp"
#include "coarsen/contract.hpp"
#include "initpart/graph_grow.hpp" // GGP / GGGP
#include "initpart/spectral_init.hpp"
#include "refine/refine.hpp"       // GR / KLR / BGR / BKLR / BKLGR
#include "core/config.hpp"
#include "core/multilevel.hpp"     // one bisection
#include "core/kway.hpp"           // recursive k-way
#include "core/kway_direct.hpp"    // direct multilevel k-way (extension)
#include "core/chaco_ml.hpp"       // the Chaco-ML baseline

// Dynamic graphs (extension): delta batches, the CSR patcher, and
// warm-start incremental repartitioning.
#include "dynamic/delta.hpp"
#include "dynamic/delta_script.hpp"
#include "dynamic/churn.hpp"
#include "dynamic/incremental.hpp"

// Spectral methods (baselines).
#include "spectral/fiedler.hpp"
#include "spectral/msb.hpp"        // MSB / MSB-KL

// Fill-reducing orderings.
#include "order/nested_dissection.hpp"  // MLND / SND
#include "order/mmd.hpp"                // multiple minimum degree
#include "order/symbolic.hpp"           // symbolic Cholesky / etree metrics

// Numeric solvers (extensions).
#include "cholesky/sparse_cholesky.hpp"
#include "cholesky/conjugate_gradient.hpp"

// Geometry (extensions).
#include "geom/geometry.hpp"
#include "geom/geometric_bisect.hpp"
#include "geom/delaunay.hpp"

// Quality metrics.
#include "metrics/partition_metrics.hpp"
#include "metrics/ordering_metrics.hpp"
