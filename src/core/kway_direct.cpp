#include "core/kway_direct.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "coarsen/contract.hpp"
#include "coarsen/strategy.hpp"
#include "core/cancel.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "support/workspace.hpp"

namespace mgp {

MultilevelConfig KwayDirectConfig::initial_config() const {
  MultilevelConfig c = base;
  // The coarsest-graph partition runs the sequential recursion regardless of
  // the outer thread count: its input is tiny, and keeping the draw order
  // pool-independent is what makes the whole direct path byte-identical
  // across pool sizes.
  c.threads = 1;
  return c;
}

void KwayDirectConfig::validate(part_t k) const {
  if (k < 1) throw std::invalid_argument("kway_direct: k must be >= 1");
  if (coarse_vertices_per_part < 1) {
    throw std::invalid_argument("kway_direct: coarse_vertices_per_part must be >= 1");
  }
  if (coarsen_to_floor < 1) {
    throw std::invalid_argument("kway_direct: coarsen_to_floor must be >= 1");
  }
  if (!(min_shrink_factor > 0.0) || min_shrink_factor > 1.0) {
    throw std::invalid_argument("kway_direct: min_shrink_factor must be in (0, 1]");
  }
  if (max_refine_passes < 1) {
    throw std::invalid_argument("kway_direct: max_refine_passes must be >= 1");
  }
  if (imbalance < 0.0) {
    throw std::invalid_argument("kway_direct: imbalance must be >= 0");
  }
  if (base.coarsen_to < 1) {
    throw std::invalid_argument("kway_direct: base.coarsen_to must be >= 1");
  }
}

std::size_t KwayDirectWorkspace::bytes_reserved() const {
  std::size_t total = init_scratch.memory_bytes() + refine.bytes_reserved();
  for (const auto& level : levels) {
    if (level) total += level->memory_bytes();
  }
  total += pwgts.capacity() * sizeof(vwt_t);
  total += proj.capacity() * sizeof(part_t);
  return total;
}

KwayRefineStats kway_greedy_refine(const Graph& g, std::span<part_t> part, part_t k,
                                   vwt_t max_part_weight, vwt_t min_part_weight,
                                   int max_passes, Rng& rng) {
  const vid_t n = g.num_vertices();
  obs::Span span("kway_greedy_refine");
  span.arg("n", n);
  span.arg("k", k);
  KwayRefineStats stats;

  // Part weights: computed once on entry, then tracked incrementally with
  // every move for the rest of the call (never rescanned per pass).
  std::vector<vwt_t> pwgts(static_cast<std::size_t>(k), 0);
  for (vid_t v = 0; v < n; ++v) {
    pwgts[static_cast<std::size_t>(part[static_cast<std::size_t>(v)])] +=
        g.vertex_weight(v);
  }

  // Scratch: connection weight to each part touched by the current vertex,
  // and the visit order (one buffer, refilled per pass).
  std::vector<ewt_t> conn(static_cast<std::size_t>(k), 0);
  std::vector<part_t> touched;
  touched.reserve(static_cast<std::size_t>(k));
  std::vector<vid_t> order;

  for (int pass = 0; pass < max_passes; ++pass) {
    ++stats.passes;
    ewt_t pass_gain = 0;
    rng.permutation_into(n, order);

    for (vid_t v : order) {
      const part_t from = part[static_cast<std::size_t>(v)];
      auto nbrs = g.neighbors(v);
      auto wgts = g.edge_weights(v);
      touched.clear();
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const part_t p = part[static_cast<std::size_t>(nbrs[i])];
        if (conn[static_cast<std::size_t>(p)] == 0) touched.push_back(p);
        conn[static_cast<std::size_t>(p)] += wgts[i];
      }
      // Interior vertex: nothing to gain.
      if (touched.size() == 1 && touched[0] == from) {
        conn[static_cast<std::size_t>(from)] = 0;
        continue;
      }
      const ewt_t internal = conn[static_cast<std::size_t>(from)];
      const vwt_t wv = g.vertex_weight(v);
      // Never shrink a part below the floor, whatever k is (keeps every
      // part non-empty; a 2-way call is no exception).
      if (pwgts[static_cast<std::size_t>(from)] - wv < min_part_weight) {
        for (part_t p : touched) conn[static_cast<std::size_t>(p)] = 0;
        continue;
      }

      part_t best = from;
      ewt_t best_gain = 0;
      vwt_t best_to_weight = 0;
      for (part_t p : touched) {
        if (p == from) continue;
        if (pwgts[static_cast<std::size_t>(p)] + wv > max_part_weight) continue;
        const ewt_t gain = conn[static_cast<std::size_t>(p)] - internal;
        if (gain < 0) continue;
        const vwt_t to_weight = pwgts[static_cast<std::size_t>(p)];
        bool take;
        if (best == from) {
          // First candidate: positive gain always; zero gain only when the
          // move improves balance (target strictly lighter than source).
          take = gain > 0 || to_weight + wv < pwgts[static_cast<std::size_t>(from)];
        } else {
          take = gain > best_gain || (gain == best_gain && to_weight < best_to_weight);
        }
        if (take) {
          best = p;
          best_gain = gain;
          best_to_weight = to_weight;
        }
      }

      if (best != from) {
        part[static_cast<std::size_t>(v)] = best;
        pwgts[static_cast<std::size_t>(from)] -= wv;
        pwgts[static_cast<std::size_t>(best)] += wv;
        pass_gain += best_gain;
        ++stats.moves;
      }
      for (part_t p : touched) conn[static_cast<std::size_t>(p)] = 0;
    }

    stats.cut_reduction += pass_gain;
    if (pass_gain == 0) break;
  }
  return stats;
}

ewt_t kway_partition_direct_into(const Graph& g, part_t k,
                                 const KwayDirectConfig& cfg, Rng& rng,
                                 KwayDirectWorkspace& dws, BisectWorkspace* ext_ws,
                                 std::vector<part_t>& out_part,
                                 PhaseTimers* timers, ThreadPool* pool) {
  cfg.validate(k);
  PhaseTimers local_pt;
  PhaseTimers& pt = timers ? *timers : local_pt;
  const vid_t n = g.num_vertices();
  obs::Span span("kway_partition_direct");
  span.arg("k", k);
  span.arg("n", n);
  throw_if_cancelled(cfg.base.cancel);

  if (k == 1 || n == 0) {
    out_part.assign(static_cast<std::size_t>(n), 0);
    return 0;
  }

  // Workspace-less callers get a call-local one: same code path throughout,
  // just without cross-call buffer reuse.
  std::unique_ptr<BisectWorkspace> local_ws;
  if (!ext_ws) {
    local_ws = std::make_unique<BisectWorkspace>();
    ext_ws = local_ws.get();
  }
  BisectWorkspace& ws = *ext_ws;
  obs::Obs* const ob = cfg.base.obs;

  // ---- Coarsening (once, not per bisection). ----
  // dws.levels[i] holds G_{i+1}; slots persist across calls (their storage
  // is what contract_into recycles).  The ladder is the workspace's own —
  // ws.levels belongs to the initial partition's sub-bisections.
  const vid_t coarsen_to = std::max<vid_t>(
      cfg.coarsen_to_floor, cfg.coarse_vertices_per_part * static_cast<vid_t>(k));
  std::size_t num_levels = 0;
  const Graph* cur = &g;
  {
    ScopedPhase phase(pt, PhaseTimers::kCoarsen);
    const CoarseningStrategy& strategy =
        coarsening_strategy(cfg.base.coarsen.strategy);
    if (ob) {
      ob->metrics.record_max(ob->pipeline.coarsen_strategy,
                             static_cast<std::int64_t>(cfg.base.coarsen.strategy));
    }
    std::span<const ewt_t> cewgt;  // empty at level 0
    while (cur->num_vertices() > coarsen_to) {
      throw_if_cancelled(cfg.base.cancel);
      obs::Span level_span("kway_direct.coarsen");
      level_span.arg("level", static_cast<std::int64_t>(num_levels));
      level_span.arg("n", cur->num_vertices());
      if (dws.levels.size() <= num_levels) {
        dws.levels.push_back(std::make_unique<Contraction>());
      }
      Contraction& c = *dws.levels[num_levels];
      // The strategy owns match→contract→stop for its level: a false return
      // means the ladder is done (matching stagnated / nothing left to
      // contract) and the just-computed level is discarded.
      CoarsenLevelStats ls;
      if (!strategy.coarsen_level(*cur, cewgt, cfg.base.matching, cfg.base.coarsen,
                                  cfg.min_shrink_factor, rng, pool, ws, c, ls)) {
        break;
      }
      const vid_t fine_n = cur->num_vertices();
      const vid_t coarse_n = c.coarse.num_vertices();
      if (ob) {
        ob->metrics.add(ob->pipeline.kway_direct_levels);
        ob->metrics.add(ob->pipeline.matched_pairs, ls.matched_pairs);
        if (ls.ad_sweeps > 0) {
          ob->metrics.add(ob->pipeline.coarsen_ad_iters, ls.ad_sweeps);
        }
        if (ls.pq_updates > 0) {
          ob->metrics.add(ob->pipeline.coarsen_nlevel_pq_updates, ls.pq_updates);
        }
        ob->metrics.observe(ob->pipeline.shrink_pct,
                            fine_n > 0 ? 100 * static_cast<std::int64_t>(coarse_n) /
                                             fine_n
                                       : 0);
      }
      ++num_levels;
      cur = &c.coarse;
      cewgt = c.cewgt;
    }
  }
  const Graph& coarsest = *cur;

  // ---- Initial k-way partition of the coarsest graph (recursive
  //      bisection — the paper's own algorithm, on a tiny input).  Always
  //      the sequential recursion: draw order must not depend on the pool.
  {
    ScopedPhase phase(pt, PhaseTimers::kInitPart);
    obs::Span init_span("kway_direct.initpart");
    init_span.arg("n", coarsest.num_vertices());
    kway_partition_into(coarsest, k, cfg.initial_config(), rng, dws.init_scratch,
                        &ws, out_part);
  }

  // Part weights of the coarsest labelling; invariant under projection
  // (contraction preserves vertex-weight sums), so they are maintained
  // incrementally by the refiner all the way down — never rescanned.
  const std::size_t kk = static_cast<std::size_t>(k);
  dws.pwgts.assign(kk, 0);
  for (vid_t v = 0; v < coarsest.num_vertices(); ++v) {
    dws.pwgts[static_cast<std::size_t>(out_part[static_cast<std::size_t>(v)])] +=
        coarsest.vertex_weight(v);
  }
  const vwt_t total = g.total_vertex_weight();
  const vwt_t min_part_weight = std::max<vwt_t>(1, (total / k) / 2);

  // ---- Single uncoarsening sweep with parallel k-way refinement. ----
  for (std::size_t li = num_levels + 1; li-- > 0;) {
    throw_if_cancelled(cfg.base.cancel);
    const Graph& level_graph = (li == 0) ? g : dws.levels[li - 1]->coarse;
    {
      ScopedPhase phase(pt, PhaseTimers::kRefine);
      obs::Span refine_span("kway_direct.refine");
      refine_span.arg("level", static_cast<std::int64_t>(li));
      refine_span.arg("n", level_graph.num_vertices());
      // Ceiling from *this* level's max vertex weight: a coarse multinode
      // can outweigh any fine vertex, so a single entry-level bound would
      // be either too loose at the bottom or unsatisfiable at the top.
      vwt_t max_vwgt = 0;
      for (vid_t v = 0; v < level_graph.num_vertices(); ++v) {
        max_vwgt = std::max(max_vwgt, level_graph.vertex_weight(v));
      }
      const vwt_t max_part_weight =
          static_cast<vwt_t>((static_cast<double>(total) / k) *
                             (1.0 + cfg.imbalance)) +
          max_vwgt;
      // Balance before refining: refinement is strictly-positive-gain only,
      // so an overweight part inherited from the lumpy coarsest-level
      // initial partition must be drained explicitly; the refiner then
      // recovers the cut without re-breaking the ceiling.
      kway_balance(level_graph, out_part, k, dws.pwgts, max_part_weight,
                   min_part_weight, dws.refine);
      const KwayRefineResult rr = kway_parallel_refine(
          level_graph, out_part, k, dws.pwgts, max_part_weight, min_part_weight,
          cfg.max_refine_passes, pool, dws.refine);
      if (ob) {
        ob->metrics.add(ob->pipeline.kway_rounds, rr.rounds);
        ob->metrics.add(ob->pipeline.kway_conflict_rejects, rr.conflict_rejects);
      }
    }
    if (li == 0) break;
    ScopedPhase phase(pt, PhaseTimers::kProject);
    obs::Span proj_span("kway_direct.project");
    proj_span.arg("level", static_cast<std::int64_t>(li));
    const std::vector<vid_t>& cmap = dws.levels[li - 1]->cmap;
    dws.proj.resize(cmap.size());
    for (std::size_t v = 0; v < cmap.size(); ++v) {
      dws.proj[v] = out_part[static_cast<std::size_t>(cmap[v])];
    }
    std::swap(out_part, dws.proj);
  }

  // The ladder's swaps migrate capacity between the caller's labelling and
  // dws.proj with level-count parity; equalize the pair on exit so no later
  // call of a different shape inherits a too-small buffer and is forced to
  // regrow (the zero-allocation steady state relies on this).
  const std::size_t part_cap = std::max(out_part.capacity(), dws.proj.capacity());
  out_part.reserve(part_cap);
  dws.proj.reserve(part_cap);

  return compute_kway_cut(g, out_part);
}

KwayResult kway_partition_direct(const Graph& g, part_t k,
                                 const KwayDirectConfig& cfg, Rng& rng,
                                 PhaseTimers* timers, ThreadPool* pool) {
  std::unique_ptr<ThreadPool> local_pool;
  if (!pool && cfg.base.resolved_threads() > 1) {
    local_pool = std::make_unique<ThreadPool>(cfg.base.resolved_threads());
    pool = local_pool.get();
  }
  KwayDirectWorkspace dws;
  BisectWorkspace ws;
  KwayResult result;
  result.k = k;
  result.edge_cut = kway_partition_direct_into(g, k, cfg, rng, dws, &ws,
                                               result.part, timers, pool);
  return result;
}

}  // namespace mgp
