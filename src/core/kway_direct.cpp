#include "core/kway_direct.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

#include "coarsen/contract.hpp"
#include "obs/trace.hpp"

namespace mgp {

KwayRefineStats kway_greedy_refine(const Graph& g, std::span<part_t> part, part_t k,
                                   vwt_t max_part_weight, vwt_t min_part_weight,
                                   int max_passes, Rng& rng) {
  const vid_t n = g.num_vertices();
  obs::Span span("kway_greedy_refine");
  span.arg("n", n);
  span.arg("k", k);
  KwayRefineStats stats;

  std::vector<vwt_t> pwgts(static_cast<std::size_t>(k), 0);
  for (vid_t v = 0; v < n; ++v) {
    pwgts[static_cast<std::size_t>(part[static_cast<std::size_t>(v)])] += g.vertex_weight(v);
  }

  // Scratch: connection weight to each part touched by the current vertex.
  std::vector<ewt_t> conn(static_cast<std::size_t>(k), 0);
  std::vector<part_t> touched;
  touched.reserve(static_cast<std::size_t>(k));

  for (int pass = 0; pass < max_passes; ++pass) {
    ++stats.passes;
    ewt_t pass_gain = 0;
    std::vector<vid_t> order = rng.permutation(n);

    for (vid_t v : order) {
      const part_t from = part[static_cast<std::size_t>(v)];
      auto nbrs = g.neighbors(v);
      auto wgts = g.edge_weights(v);
      touched.clear();
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const part_t p = part[static_cast<std::size_t>(nbrs[i])];
        if (conn[static_cast<std::size_t>(p)] == 0) touched.push_back(p);
        conn[static_cast<std::size_t>(p)] += wgts[i];
      }
      // Interior vertex: nothing to gain.
      if (touched.size() == 1 && touched[0] == from) {
        conn[static_cast<std::size_t>(from)] = 0;
        continue;
      }
      const ewt_t internal = conn[static_cast<std::size_t>(from)];
      const vwt_t wv = g.vertex_weight(v);
      // Never shrink a part below the floor (keeps every part non-empty).
      if (pwgts[static_cast<std::size_t>(from)] - wv < min_part_weight) {
        for (part_t p : touched) conn[static_cast<std::size_t>(p)] = 0;
        continue;
      }

      part_t best = from;
      ewt_t best_gain = 0;
      vwt_t best_to_weight = 0;
      for (part_t p : touched) {
        if (p == from) continue;
        if (pwgts[static_cast<std::size_t>(p)] + wv > max_part_weight) continue;
        const ewt_t gain = conn[static_cast<std::size_t>(p)] - internal;
        if (gain < 0) continue;
        const vwt_t to_weight = pwgts[static_cast<std::size_t>(p)];
        bool take;
        if (best == from) {
          // First candidate: positive gain always; zero gain only when the
          // move improves balance (target strictly lighter than source).
          take = gain > 0 || to_weight + wv < pwgts[static_cast<std::size_t>(from)];
        } else {
          take = gain > best_gain || (gain == best_gain && to_weight < best_to_weight);
        }
        if (take) {
          best = p;
          best_gain = gain;
          best_to_weight = to_weight;
        }
      }

      if (best != from) {
        part[static_cast<std::size_t>(v)] = best;
        pwgts[static_cast<std::size_t>(from)] -= wv;
        pwgts[static_cast<std::size_t>(best)] += wv;
        pass_gain += best_gain;
        ++stats.moves;
      }
      for (part_t p : touched) conn[static_cast<std::size_t>(p)] = 0;
    }

    stats.cut_reduction += pass_gain;
    if (pass_gain == 0) break;
  }
  return stats;
}

KwayResult kway_partition_direct(const Graph& g, part_t k,
                                 const KwayDirectConfig& cfg, Rng& rng,
                                 PhaseTimers* timers) {
  PhaseTimers local;
  PhaseTimers& pt = timers ? *timers : local;
  assert(k >= 1);
  obs::Span span("kway_partition_direct");
  span.arg("k", k);
  span.arg("n", g.num_vertices());

  // ---- Coarsening (once, not per bisection). ----
  const vid_t coarsen_to =
      std::max<vid_t>(cfg.coarsen_to_floor, cfg.coarse_vertices_per_part * k);
  std::vector<Contraction> levels;
  {
    ScopedPhase phase(pt, PhaseTimers::kCoarsen);
    const Graph* cur = &g;
    std::span<const ewt_t> cewgt;
    while (cur->num_vertices() > coarsen_to) {
      Matching m = compute_matching(*cur, cfg.matching, cewgt, rng);
      Contraction c = contract(*cur, m, cewgt);
      if (static_cast<double>(c.coarse.num_vertices()) >
          cfg.min_shrink_factor * static_cast<double>(cur->num_vertices())) {
        break;
      }
      levels.push_back(std::move(c));
      cur = &levels.back().coarse;
      cewgt = levels.back().cewgt;
    }
  }
  const Graph& coarsest = levels.empty() ? g : levels.back().coarse;

  // ---- Initial k-way partition of the coarsest graph (recursive
  //      bisection — the paper's own algorithm, on a tiny input). ----
  KwayResult result;
  {
    ScopedPhase phase(pt, PhaseTimers::kInitPart);
    result = kway_partition(coarsest, k, cfg.initial, rng);
  }

  const vwt_t total = g.total_vertex_weight();
  vwt_t max_vwgt = 0;
  for (vid_t v = 0; v < coarsest.num_vertices(); ++v) {
    max_vwgt = std::max(max_vwgt, coarsest.vertex_weight(v));
  }
  const vwt_t max_part_weight = static_cast<vwt_t>(
      (static_cast<double>(total) / k) * (1.0 + cfg.imbalance)) + max_vwgt;
  const vwt_t min_part_weight = std::max<vwt_t>(1, (total / k) / 2);

  // ---- Uncoarsening with greedy k-way refinement. ----
  for (std::size_t li = levels.size() + 1; li-- > 0;) {
    const Graph& level_graph = (li == 0) ? g : levels[li - 1].coarse;
    {
      ScopedPhase phase(pt, PhaseTimers::kRefine);
      kway_greedy_refine(level_graph, result.part, k, max_part_weight,
                         min_part_weight, cfg.max_refine_passes, rng);
    }
    if (li == 0) break;
    ScopedPhase phase(pt, PhaseTimers::kProject);
    const std::vector<vid_t>& cmap = levels[li - 1].cmap;
    std::vector<part_t> fine(cmap.size());
    for (std::size_t v = 0; v < cmap.size(); ++v) {
      fine[v] = result.part[static_cast<std::size_t>(cmap[v])];
    }
    result.part = std::move(fine);
  }

  result.k = k;
  result.edge_cut = compute_kway_cut(g, result.part);
  return result;
}

}  // namespace mgp
