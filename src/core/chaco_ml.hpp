// The Chaco-ML baseline (Hendrickson & Leland [19, 20]).
//
// "This algorithm ... uses random matching during coarsening, spectral
// bisection for partitioning the coarse graph, and Kernighan-Lin refinement
// every other coarsening level during the uncoarsening phase." (§4.2)
//
// It is realised as a MultilevelConfig preset over the same engine, which
// is faithful to history: Chaco and METIS share the multilevel skeleton and
// differ exactly in these per-phase choices.
#pragma once

#include "core/kway.hpp"

namespace mgp {

/// One Chaco-ML bisection.
BisectResult chaco_ml_bisect(const Graph& g, vwt_t target0, Rng& rng,
                             PhaseTimers* timers = nullptr);

/// k-way Chaco-ML partition by recursive bisection.
KwayResult chaco_ml_partition(const Graph& g, part_t k, Rng& rng,
                              PhaseTimers* timers = nullptr);

}  // namespace mgp
