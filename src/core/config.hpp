// Configuration of the multilevel algorithm: one knob per phase, exactly
// the axes the paper's experiments sweep.
#pragma once

#include <string>

#include "coarsen/matching.hpp"
#include "coarsen/strategy.hpp"
#include "refine/refine.hpp"
#include "spectral/fiedler.hpp"

namespace mgp {

namespace obs {
struct Obs;
}

struct CancelToken;

/// Coarsest-graph partitioning algorithms of §3.2.
enum class InitPartScheme { kGGP, kGGGP, kSpectral };

std::string to_string(InitPartScheme s);

struct MultilevelConfig {
  // Phase 1: coarsening.
  MatchingScheme matching = MatchingScheme::kHeavyEdge;
  /// How levels are built (coarsen/strategy.hpp): the default matching +
  /// contraction pipeline, algebraic-distance HEM, or n-level tiny-batch
  /// contraction, plus the advanced strategies' knobs.  `matching` above
  /// only applies under CoarsenStrategy::kMatching.
  CoarsenOptions coarsen;
  /// Coarsen until the graph has at most this many vertices ("a few
  /// hundred" / "|V_m| < 100" in the paper).
  vid_t coarsen_to = 100;
  /// Stop coarsening early if a level shrinks by less than this factor
  /// (matching stagnation guard; contraction must make progress).
  double min_shrink_factor = 0.95;

  // Phase 2: initial partitioning.
  InitPartScheme initpart = InitPartScheme::kGGGP;
  int ggp_trials = 10;   ///< paper: "we selected 10 vertices for GGP"
  int gggp_trials = 5;   ///< paper: "... and 5 for GGGP"
  FiedlerOptions fiedler;  ///< for InitPartScheme::kSpectral

  // Parallel execution (DESIGN.md "Threading model & determinism").
  /// Worker threads for the parallel pipeline (coarsening, contraction, and
  /// the recursive-bisection tree).  0 = hardware_concurrency();
  /// 1 = the fully sequential path.  Partitions are byte-identical for
  /// every value > 1 (parallel algorithms are thread-count-invariant and
  /// every subproblem draws from its own seeded RNG stream); threads == 1
  /// differs only in using sequential HEM instead of proposal HEM.
  int threads = 1;
  /// `threads` with 0 resolved to the machine's hardware concurrency.
  int resolved_threads() const;

  // Observability (DESIGN.md "Observability"): when non-null, the pipeline
  // maintains sharded metrics and collects a structured per-level /
  // per-KL-pass RunReport into `obs`.  Non-owning; the context must outlive
  // every call using this config.  Null (the default) disables all
  // collection — recording never draws randomness or alters control flow,
  // so partitions are byte-identical with obs on or off (asserted by the
  // determinism suite).  Tracing spans are controlled separately by
  // obs::trace_start()/trace_stop() plus the MGP_OBS compile switch.
  obs::Obs* obs = nullptr;

  // Cooperative cancellation (core/cancel.hpp): when non-null, the pipeline
  // polls the token at level boundaries and throws CancelledError once it
  // expires — how the server (src/server/) enforces per-request deadlines.
  // Non-owning; must outlive the call.  A token that never expires cannot
  // change results: the check draws no randomness and alters no control
  // flow, so partitions are byte-identical with or without one attached.
  const CancelToken* cancel = nullptr;

  // Phase 3: refinement during uncoarsening.
  RefinePolicy refine = RefinePolicy::kBKLGR;
  KlOptions kl;
  /// Refine every `refine_period`-th level during uncoarsening (Chaco-ML
  /// applies KL "every other coarsening level"; our scheme uses 1).  The
  /// finest level is always refined when refine != kNone.
  int refine_period = 1;

  /// The paper's default configuration: HEM + GGGP + BKLGR.
  static MultilevelConfig paper_default() { return MultilevelConfig{}; }

  /// Chaco-ML baseline [19, 20]: RM coarsening, spectral bisection of the
  /// coarsest graph, KL refinement every other level.
  static MultilevelConfig chaco_ml();
};

/// Human-readable "HEM+GGGP+BKLGR"-style tag for table headers.
std::string describe(const MultilevelConfig& cfg);

}  // namespace mgp
