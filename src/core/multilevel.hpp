// The multilevel graph bisection algorithm (§3): coarsen, partition the
// coarsest graph, uncoarsen with refinement.  This is the paper's primary
// contribution, assembled from the coarsen/, initpart/, and refine/ phases.
#pragma once

#include "core/config.hpp"
#include "initpart/bisection_state.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"

namespace mgp {

struct BisectWorkspace;

struct BisectResult {
  Bisection bisection;    ///< labels on the *original* graph
  int levels = 0;         ///< number of coarsening steps performed
  vid_t coarsest_n = 0;   ///< vertex count of the coarsest graph
  KlStats refine_stats;   ///< summed over all levels
};

/// BisectResult without the labelling — what multilevel_bisect_into returns
/// when the caller owns the output Bisection.
struct BisectStats {
  int levels = 0;
  vid_t coarsest_n = 0;
  KlStats refine_stats;
};

/// Bisects g so that side 0's vertex weight approaches `target0`.
///
/// If `timers` is non-null, phase times accumulate into it using the
/// paper's breakdown (CTime / ITime / RTime / PTime).  `timers` is written
/// once at the end of the call; concurrent callers must either pass
/// distinct accumulators or use `phase_metrics` instead.
///
/// If `phase_metrics` is non-null the same phase times are also added to
/// the sharded registry-backed accumulator — safe to share across
/// concurrent bisections with no locking (see obs/metrics.hpp); this is how
/// core/kway.cpp aggregates its recursion tree.
///
/// If `cfg.obs` is non-null, pipeline metrics are maintained and (when
/// cfg.obs->collect_report) a BisectionReport is appended to
/// cfg.obs->report.  Collection never draws randomness or alters control
/// flow: partitions are byte-identical with obs on or off.
///
/// If `pool` is non-null the coarsening phase runs in parallel: matching
/// by the proposal-based parallel HEM (when cfg.matching is kHeavyEdge)
/// and contraction by chunked row assembly.  Results are byte-identical
/// for every pool size, including a 1-thread pool (see DESIGN.md
/// "Threading model & determinism"); with pool == nullptr the fully
/// sequential pre-pool path runs.
///
/// If `ws` is non-null every kernel's scratch and the coarsening ladder's
/// storage come from it (see support/workspace.hpp): a warm workspace makes
/// the serial hot path allocation-free, and the partition is byte-identical
/// to a workspace-less call.  A null `ws` uses a call-local workspace.
BisectResult multilevel_bisect(const Graph& g, vwt_t target0,
                               const MultilevelConfig& cfg, Rng& rng,
                               PhaseTimers* timers = nullptr,
                               ThreadPool* pool = nullptr,
                               obs::PhaseMetrics* phase_metrics = nullptr,
                               BisectWorkspace* ws = nullptr);

/// As multilevel_bisect, but the labelling is written into the caller-owned
/// `out` (fully overwritten; its capacity is reused, so a warm Bisection
/// makes the call's one residual allocation disappear — the entry point the
/// allocation-free k-way driver and the server's steady state build on).
/// Draws the identical RNG stream as multilevel_bisect: the two forms are
/// byte-for-byte interchangeable.
///
/// If cfg.cancel is non-null and expires, throws CancelledError from the
/// next level boundary; `out` is then unspecified but remains a valid
/// (reusable) buffer.
BisectStats multilevel_bisect_into(const Graph& g, vwt_t target0,
                                   const MultilevelConfig& cfg, Rng& rng,
                                   Bisection& out, PhaseTimers* timers = nullptr,
                                   ThreadPool* pool = nullptr,
                                   obs::PhaseMetrics* phase_metrics = nullptr,
                                   BisectWorkspace* ws = nullptr);

}  // namespace mgp
