#include "core/config.hpp"

#include <sstream>

#include "support/thread_pool.hpp"

namespace mgp {

std::string to_string(InitPartScheme s) {
  switch (s) {
    case InitPartScheme::kGGP: return "GGP";
    case InitPartScheme::kGGGP: return "GGGP";
    case InitPartScheme::kSpectral: return "SBP";
  }
  return "?";
}

int MultilevelConfig::resolved_threads() const {
  return threads <= 0 ? ThreadPool::hardware_threads() : threads;
}

MultilevelConfig MultilevelConfig::chaco_ml() {
  MultilevelConfig cfg;
  cfg.matching = MatchingScheme::kRandom;
  cfg.initpart = InitPartScheme::kSpectral;
  cfg.refine = RefinePolicy::kKLR;
  cfg.refine_period = 2;
  // Chaco computes the coarse Fiedler vector iteratively (Lanczos/RQI), not
  // with a dense eigensolver.
  cfg.fiedler.dense_threshold = 32;
  return cfg;
}

std::string describe(const MultilevelConfig& cfg) {
  std::ostringstream os;
  if (cfg.coarsen.strategy == CoarsenStrategy::kMatching) {
    os << to_string(cfg.matching);
  } else {
    os << to_string(cfg.coarsen.strategy);
  }
  os << '+' << to_string(cfg.initpart) << '+' << to_string(cfg.refine);
  if (cfg.refine_period != 1) os << "(every " << cfg.refine_period << ")";
  return os.str();
}

}  // namespace mgp
