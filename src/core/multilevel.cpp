#include "core/multilevel.hpp"

#include <utility>
#include <vector>

#include "coarsen/contract.hpp"
#include "coarsen/parallel_matching.hpp"
#include "initpart/graph_grow.hpp"
#include "initpart/spectral_init.hpp"

namespace mgp {
namespace {

Bisection initial_partition(const Graph& g, vwt_t target0, const MultilevelConfig& cfg,
                            Rng& rng) {
  switch (cfg.initpart) {
    case InitPartScheme::kGGP:
      return ggp_bisect(g, target0, cfg.ggp_trials, rng);
    case InitPartScheme::kGGGP:
      return gggp_bisect(g, target0, cfg.gggp_trials, rng);
    case InitPartScheme::kSpectral:
      return spectral_bisect(g, target0, /*warm_start=*/{}, cfg.fiedler, rng);
  }
  return {};
}

}  // namespace

BisectResult multilevel_bisect(const Graph& g, vwt_t target0,
                               const MultilevelConfig& cfg, Rng& rng,
                               PhaseTimers* timers, ThreadPool* pool) {
  PhaseTimers local;
  PhaseTimers& pt = timers ? *timers : local;
  BisectResult out;

  // ---- Coarsening phase. -------------------------------------------------
  // levels[i] holds G_{i+1} and the map from G_i's vertices into it.
  std::vector<Contraction> levels;
  {
    ScopedPhase phase(pt, PhaseTimers::kCoarsen);
    const Graph* cur = &g;
    std::span<const ewt_t> cewgt;  // empty at level 0
    while (cur->num_vertices() > cfg.coarsen_to) {
      // With a pool, HEM switches to the proposal-based parallel matcher
      // (deterministic for every pool size; draws no RNG).  The other
      // schemes have no parallel variant and stay sequential — still
      // byte-identical across pool sizes, since they draw the same RNG
      // stream regardless and contraction is thread-count-invariant.
      Matching m = (pool && cfg.matching == MatchingScheme::kHeavyEdge)
                       ? compute_matching_parallel_hem(*cur, *pool)
                       : compute_matching(*cur, cfg.matching, cewgt, rng);
      Contraction c = contract(*cur, m, cewgt, pool);
      const vid_t fine_n = cur->num_vertices();
      const vid_t coarse_n = c.coarse.num_vertices();
      if (static_cast<double>(coarse_n) >
          cfg.min_shrink_factor * static_cast<double>(fine_n)) {
        break;  // matching stagnated; further levels would not help
      }
      levels.push_back(std::move(c));
      cur = &levels.back().coarse;
      cewgt = levels.back().cewgt;
    }
  }
  const Graph& coarsest = levels.empty() ? g : levels.back().coarse;
  out.levels = static_cast<int>(levels.size());
  out.coarsest_n = coarsest.num_vertices();

  // ---- Initial partitioning phase. ----------------------------------------
  Bisection b;
  {
    ScopedPhase phase(pt, PhaseTimers::kInitPart);
    b = initial_partition(coarsest, target0, cfg, rng);
  }

  // ---- Uncoarsening phase: refine, project, repeat. ------------------------
  const vid_t original_n = g.num_vertices();
  // Level index of `b`'s graph counts down: levels.size() .. 0, where 0 is g.
  for (std::size_t li = levels.size() + 1; li-- > 0;) {
    const Graph& level_graph = (li == 0) ? g : levels[li - 1].coarse;

    const bool refine_here =
        cfg.refine != RefinePolicy::kNone &&
        (li == 0 ||
         static_cast<int>((levels.size() - li)) % cfg.refine_period == 0);
    if (refine_here) {
      ScopedPhase phase(pt, PhaseTimers::kRefine);
      KlStats s = refine_bisection(level_graph, b, target0, cfg.refine, original_n,
                                   rng, cfg.kl);
      out.refine_stats.passes += s.passes;
      out.refine_stats.swapped += s.swapped;
      out.refine_stats.moves_attempted += s.moves_attempted;
      out.refine_stats.insertions += s.insertions;
      out.refine_stats.cut_reduction += s.cut_reduction;
    }

    if (li == 0) break;

    // Project P_{i+1} to P_i: each fine vertex inherits its multinode's side.
    ScopedPhase phase(pt, PhaseTimers::kProject);
    const std::vector<vid_t>& cmap = levels[li - 1].cmap;
    std::vector<part_t> fine_side(cmap.size());
    for (std::size_t v = 0; v < cmap.size(); ++v) {
      fine_side[v] = b.side[static_cast<std::size_t>(cmap[v])];
    }
    // Part weights and cut are invariant under projection (§3.1).
    Bisection fine;
    fine.side = std::move(fine_side);
    fine.part_weight[0] = b.part_weight[0];
    fine.part_weight[1] = b.part_weight[1];
    fine.cut = b.cut;
    b = std::move(fine);
  }

  out.bisection = std::move(b);
  return out;
}

}  // namespace mgp
