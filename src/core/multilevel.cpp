#include "core/multilevel.hpp"

#include <utility>
#include <vector>

#include "coarsen/contract.hpp"
#include "coarsen/strategy.hpp"
#include "core/cancel.hpp"
#include "initpart/graph_grow.hpp"
#include "initpart/spectral_init.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "support/workspace.hpp"

namespace mgp {
namespace {

/// Initial bisection of the coarsest graph into `b`, scratch from `ws`.
/// Exactly the draws and selection of the historical return-by-value
/// dispatch (the *_into kernels are byte-identical to their wrappers).
void initial_partition(const Graph& g, vwt_t target0, const MultilevelConfig& cfg,
                       Rng& rng, std::vector<ewt_t>* trial_cuts,
                       BisectWorkspace& ws, Bisection& b) {
  switch (cfg.initpart) {
    case InitPartScheme::kGGP:
      ggp_bisect_into(g, target0, cfg.ggp_trials, rng, ws.grow, b, trial_cuts);
      return;
    case InitPartScheme::kGGGP:
      gggp_bisect_into(g, target0, cfg.gggp_trials, rng, ws.grow, b, trial_cuts);
      return;
    case InitPartScheme::kSpectral: {
      FiedlerResult f = fiedler_vector(g, /*warm_start=*/{}, cfg.fiedler, rng);
      split_at_weighted_median_into(g, f.vector, target0, ws.median_order, b);
      if (trial_cuts) trial_cuts->push_back(b.cut);
      return;
    }
  }
  b = Bisection{};
}

}  // namespace

BisectResult multilevel_bisect(const Graph& g, vwt_t target0,
                               const MultilevelConfig& cfg, Rng& rng,
                               PhaseTimers* timers, ThreadPool* pool,
                               obs::PhaseMetrics* phase_metrics,
                               BisectWorkspace* ws) {
  BisectResult out;
  const BisectStats stats = multilevel_bisect_into(g, target0, cfg, rng, out.bisection,
                                                   timers, pool, phase_metrics, ws);
  out.levels = stats.levels;
  out.coarsest_n = stats.coarsest_n;
  out.refine_stats = stats.refine_stats;
  return out;
}

BisectStats multilevel_bisect_into(const Graph& g, vwt_t target0,
                                   const MultilevelConfig& cfg, Rng& rng,
                                   Bisection& out_b, PhaseTimers* timers,
                                   ThreadPool* pool, obs::PhaseMetrics* phase_metrics,
                                   BisectWorkspace* ext_ws) {
  obs::Span bisect_span("bisect");
  bisect_span.arg("n", g.num_vertices());
  throw_if_cancelled(cfg.cancel);

  PhaseTimers pt;  // forwarded to timers / phase_metrics on exit
  BisectStats out;

  // Workspace-less callers get a call-local one: same code path throughout,
  // just without cross-call buffer reuse.
  std::unique_ptr<BisectWorkspace> local_ws;
  if (!ext_ws) {
    local_ws = std::make_unique<BisectWorkspace>();
    ext_ws = local_ws.get();
  }
  BisectWorkspace& ws = *ext_ws;

  obs::Obs* const ob = cfg.obs;
  const bool report = ob && ob->collect_report;
  obs::BisectionReport rep;
  if (report) {
    rep.n = g.num_vertices();
    rep.total_weight = g.total_vertex_weight();
    rep.target0 = target0;
    obs::LevelReport finest;
    finest.level = 0;
    finest.vertices = g.num_vertices();
    finest.edges = g.num_edges();
    finest.total_vertex_weight = g.total_vertex_weight();
    rep.levels.push_back(finest);
  }

  // ---- Coarsening phase. -------------------------------------------------
  // ws.levels[i] holds G_{i+1} and the map from G_i's vertices into it.
  // Slots persist across calls (their storage is what contract_into
  // recycles); num_levels tracks how many this call actually used.
  std::size_t num_levels = 0;
  {
    ScopedPhase phase(pt, PhaseTimers::kCoarsen);
    const CoarseningStrategy& strategy = coarsening_strategy(cfg.coarsen.strategy);
    if (ob) {
      ob->metrics.record_max(ob->pipeline.coarsen_strategy,
                             static_cast<std::int64_t>(cfg.coarsen.strategy));
    }
    const Graph* cur = &g;
    std::span<const ewt_t> cewgt;  // empty at level 0
    while (cur->num_vertices() > cfg.coarsen_to) {
      throw_if_cancelled(cfg.cancel);
      obs::Span level_span("coarsen");
      level_span.arg("level", static_cast<std::int64_t>(num_levels));
      level_span.arg("n", cur->num_vertices());
      if (ws.levels.size() <= num_levels) {
        ws.levels.push_back(std::make_unique<Contraction>());
      }
      Contraction& c = *ws.levels[num_levels];
      // The strategy owns match→contract→stop for its level: a false return
      // means the ladder is done (matching stagnated / nothing left to
      // contract) and the just-computed level is discarded.
      CoarsenLevelStats ls;
      if (!strategy.coarsen_level(*cur, cewgt, cfg.matching, cfg.coarsen,
                                  cfg.min_shrink_factor, rng, pool, ws, c, ls)) {
        break;
      }
      const vid_t fine_n = cur->num_vertices();
      const vid_t coarse_n = c.coarse.num_vertices();
      if (ob) {
        ob->metrics.add(ob->pipeline.coarsen_levels);
        ob->metrics.add(ob->pipeline.matched_pairs, ls.matched_pairs);
        if (ls.ad_sweeps > 0) {
          ob->metrics.add(ob->pipeline.coarsen_ad_iters, ls.ad_sweeps);
        }
        if (ls.pq_updates > 0) {
          ob->metrics.add(ob->pipeline.coarsen_nlevel_pq_updates, ls.pq_updates);
        }
        ob->metrics.observe(ob->pipeline.shrink_pct,
                            fine_n > 0 ? 100 * static_cast<std::int64_t>(coarse_n) /
                                             fine_n
                                       : 0);
      }
      if (report) {
        // The matching that built the next level belongs to the *fine* side.
        rep.levels.back().matched_fraction =
            fine_n > 0 ? 2.0 * static_cast<double>(ls.matched_pairs) /
                             static_cast<double>(fine_n)
                       : 0.0;
        obs::LevelReport lr;
        lr.level = static_cast<int>(num_levels) + 1;
        lr.vertices = coarse_n;
        lr.edges = c.coarse.num_edges();
        lr.total_vertex_weight = c.coarse.total_vertex_weight();
        rep.levels.push_back(lr);
      }
      ++num_levels;
      cur = &c.coarse;
      cewgt = c.cewgt;
    }
  }
  const Graph& coarsest = num_levels == 0 ? g : ws.levels[num_levels - 1]->coarse;
  out.levels = static_cast<int>(num_levels);
  out.coarsest_n = coarsest.num_vertices();
  if (report) {
    rep.num_levels = out.levels;
    rep.coarsest_n = out.coarsest_n;
  }

  // ---- Initial partitioning phase. ----------------------------------------
  throw_if_cancelled(cfg.cancel);
  Bisection& b = out_b;
  {
    ScopedPhase phase(pt, PhaseTimers::kInitPart);
    obs::Span span("initpart");
    span.arg("n", coarsest.num_vertices());
    std::vector<ewt_t> trial_cuts;
    initial_partition(coarsest, target0, cfg, rng,
                      report ? &trial_cuts : nullptr, ws, b);
    if (report) {
      rep.initpart_candidate_cuts.assign(trial_cuts.begin(), trial_cuts.end());
      rep.initial_cut = b.cut;
    }
  }

  // ---- Uncoarsening phase: refine, project, repeat. ------------------------
  const vid_t original_n = g.num_vertices();
  // Level index of `b`'s graph counts down: num_levels .. 0, where 0 is g.
  for (std::size_t li = num_levels + 1; li-- > 0;) {
    throw_if_cancelled(cfg.cancel);
    const Graph& level_graph = (li == 0) ? g : ws.levels[li - 1]->coarse;

    const bool refine_here =
        cfg.refine != RefinePolicy::kNone &&
        (li == 0 ||
         static_cast<int>((num_levels - li)) % cfg.refine_period == 0);
    if (refine_here) {
      ScopedPhase phase(pt, PhaseTimers::kRefine);
      obs::Span span("refine");
      span.arg("level", static_cast<std::int64_t>(li));
      span.arg("n", level_graph.num_vertices());
      const ewt_t cut_before = b.cut;
      std::vector<obs::KlPassReport> pass_log;
      // With a pool the greedy boundary leg auto-selects the deterministic
      // parallel propose/commit refiner (refine/parallel_refine.*) once the
      // boundary passes cfg.kl.parallel_boundary_min; no pool keeps the
      // exact sequential path.
      KlStats s = refine_bisection(level_graph, b, target0, cfg.refine, original_n,
                                   rng, cfg.kl, ob ? &pass_log : nullptr, &ws.kl,
                                   pool);
      out.refine_stats.passes += s.passes;
      out.refine_stats.swapped += s.swapped;
      out.refine_stats.moves_attempted += s.moves_attempted;
      out.refine_stats.insertions += s.insertions;
      out.refine_stats.cut_reduction += s.cut_reduction;
      out.refine_stats.parallel_rounds += s.parallel_rounds;
      out.refine_stats.conflict_rejects += s.conflict_rejects;
      if (ob) {
        ob->metrics.add(ob->pipeline.kl_passes, s.passes);
        ob->metrics.add(ob->pipeline.kl_moves, s.moves_attempted);
        ob->metrics.add(ob->pipeline.kl_swapped, s.swapped);
        ob->metrics.add(ob->pipeline.kl_insertions, s.insertions);
        if (s.parallel_rounds > 0) {
          ob->metrics.add(ob->pipeline.refine_parallel_rounds, s.parallel_rounds);
          ob->metrics.add(ob->pipeline.refine_conflict_rejects, s.conflict_rejects);
        }
        for (const obs::KlPassReport& p : pass_log) {
          // Parallel propose/commit rounds log commit-time conflict rejects
          // in moves_undone; those are already counted by
          // refine.conflict_rejects above and are not KL undo rollbacks.
          if (s.parallel_rounds == 0) {
            ob->metrics.add(ob->pipeline.kl_rollbacks, p.moves_undone);
          }
          if (p.early_exit) ob->metrics.add(ob->pipeline.kl_early_exits);
          ob->metrics.record_max(ob->pipeline.queue_peak, p.queue_peak);
        }
      }
      if (report) {
        obs::LevelReport& lr = rep.levels[li];
        lr.cut_before_refine = cut_before;
        lr.cut_after_refine = b.cut;
        lr.balance = bisection_balance(level_graph, b, target0);
        lr.refined = true;
        lr.kl_passes = std::move(pass_log);
      }
    } else if (report) {
      obs::LevelReport& lr = rep.levels[li];
      lr.cut_before_refine = b.cut;
      lr.cut_after_refine = b.cut;
      lr.balance = bisection_balance(level_graph, b, target0);
      lr.refined = false;
    }

    if (li == 0) break;

    // Project P_{i+1} to P_i: each fine vertex inherits its multinode's side.
    // The side buffer ping-pongs with ws.proj, so projection reuses the same
    // two buffers all the way down the ladder.
    ScopedPhase phase(pt, PhaseTimers::kProject);
    obs::Span span("project");
    span.arg("level", static_cast<std::int64_t>(li));
    const std::vector<vid_t>& cmap = ws.levels[li - 1]->cmap;
    ws.proj.resize(cmap.size());
    for (std::size_t v = 0; v < cmap.size(); ++v) {
      ws.proj[v] = b.side[static_cast<std::size_t>(cmap[v])];
    }
    // Part weights and cut are invariant under projection (§3.1).
    std::swap(b.side, ws.proj);
  }

  // The ladder's swaps migrate capacity between the caller's side buffer and
  // ws.proj with level-count parity, so which physical buffer ends up where
  // depends on this call's shape.  Equalize the pair on exit: both settle at
  // the running max, and no later call — whatever its shape or order in a
  // request stream — can inherit a too-small buffer and be forced to regrow
  // (the server's zero-allocation steady state relies on this).
  const std::size_t side_cap = std::max(b.side.capacity(), ws.proj.capacity());
  b.side.reserve(side_cap);
  ws.proj.reserve(side_cap);

  if (ob) ob->metrics.add(ob->pipeline.bisections);
  if (report) {
    rep.final_cut = b.cut;
    rep.final_balance = bisection_balance(g, b, target0);
    ob->report.add_bisection(std::move(rep));
  }

  if (timers) {
    for (int p = 0; p < PhaseTimers::kNumPhases; ++p) {
      timers->add(static_cast<PhaseTimers::Phase>(p),
                  pt.get(static_cast<PhaseTimers::Phase>(p)));
    }
  }
  if (phase_metrics) phase_metrics->add(pt);
  return out;
}

}  // namespace mgp
