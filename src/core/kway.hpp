// k-way partitioning by recursive bisection (§2).
//
// "The k-way partition problem is most frequently solved by recursive
// bisection... After log k phases, graph G is partitioned into k parts."
// The driver is generic over the bisection routine so the same recursion
// produces k-way partitions for our multilevel scheme, MSB, MSB-KL, and
// Chaco-ML — the four contenders of Figures 1-4.
//
// Non-power-of-two k is supported by splitting with proportional target
// weights (ceil(k/2) : floor(k/2)) at every level.
//
// The two halves of every bisection are independent subproblems, so the
// recursion tree runs as fork/join tasks on an optional ThreadPool.  Each
// subproblem draws from its own RNG stream, seeded by (root seed, path in
// the bisection tree), so the partition is a pure function of the seed —
// independent of execution order and thread count (DESIGN.md "Threading
// model & determinism").
#pragma once

#include <functional>
#include <vector>

#include "core/config.hpp"
#include "core/multilevel.hpp"
#include "graph/csr.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"

namespace mgp {

/// A 2-way partitioner: bisect `g` so side 0 holds ~`target0` vertex weight.
/// May be invoked concurrently from several pool workers (on distinct
/// subproblems), so implementations must not share mutable state across
/// calls except under their own synchronisation.
using Bisector = std::function<Bisection(const Graph& g, vwt_t target0, Rng& rng)>;

struct KwayResult {
  std::vector<part_t> part;  ///< part[v] in [0, k)
  part_t k = 0;
  ewt_t edge_cut = 0;        ///< total weight of edges crossing parts
};

/// Recursively applies `bisect` until k blocks exist.  Deterministic given
/// rng: exactly one value is drawn from `rng` to seed the recursion's
/// per-subproblem streams, so the result depends only on that seed (not on
/// thread count or scheduling).  Handles k = 1 (trivial) and graphs with
/// fewer vertices than k (round-robin assignment of the remainder).
/// With a non-null `pool`, sibling subproblems run as pool tasks.
KwayResult recursive_bisection(const Graph& g, part_t k, const Bisector& bisect,
                               Rng& rng, ThreadPool* pool = nullptr);

/// k-way partition with the paper's multilevel bisection.  Phase times
/// accumulate into `timers` (summed over all k-1 bisections) when non-null;
/// under parallel execution concurrent bisections sum their phase times, so
/// the totals are CPU seconds rather than wall-clock.
///
/// Parallelism: uses `pool` when non-null; otherwise, if
/// cfg.resolved_threads() > 1, a pool of that size is created for the call.
/// Pass cfg.threads = 1 (the default) for the fully sequential path.
KwayResult kway_partition(const Graph& g, part_t k, const MultilevelConfig& cfg,
                          Rng& rng, PhaseTimers* timers = nullptr,
                          ThreadPool* pool = nullptr);

/// Edge-cut of an arbitrary k-way labelling.
ewt_t compute_kway_cut(const Graph& g, std::span<const part_t> part);

/// Best of `trials` independent k-way partitions (smallest edge-cut).  The
/// paper notes multiple trials are how randomized partitioners (geometric
/// ones especially) buy quality with time; the same lever applies here.
KwayResult kway_partition_best_of(const Graph& g, part_t k,
                                  const MultilevelConfig& cfg, int trials,
                                  Rng& rng, PhaseTimers* timers = nullptr);

}  // namespace mgp
