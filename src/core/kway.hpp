// k-way partitioning by recursive bisection (§2).
//
// "The k-way partition problem is most frequently solved by recursive
// bisection... After log k phases, graph G is partitioned into k parts."
// The driver is generic over the bisection routine so the same recursion
// produces k-way partitions for our multilevel scheme, MSB, MSB-KL, and
// Chaco-ML — the four contenders of Figures 1-4.
//
// Non-power-of-two k is supported by splitting with proportional target
// weights (ceil(k/2) : floor(k/2)) at every level.
//
// The two halves of every bisection are independent subproblems, so the
// recursion tree runs as fork/join tasks on an optional ThreadPool.  Each
// subproblem draws from its own RNG stream, seeded by (root seed, path in
// the bisection tree), so the partition is a pure function of the seed —
// independent of execution order and thread count (DESIGN.md "Threading
// model & determinism").
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/config.hpp"
#include "core/multilevel.hpp"
#include "graph/csr.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"

namespace mgp {

struct BisectWorkspace;

/// A 2-way partitioner: bisect `g` so side 0 holds ~`target0` vertex weight.
/// May be invoked concurrently from several pool workers (on distinct
/// subproblems), so implementations must not share mutable state across
/// calls except under their own synchronisation.
using Bisector = std::function<Bisection(const Graph& g, vwt_t target0, Rng& rng)>;

struct KwayResult {
  std::vector<part_t> part;  ///< part[v] in [0, k)
  part_t k = 0;
  ewt_t edge_cut = 0;        ///< total weight of edges crossing parts
};

/// Recursively applies `bisect` until k blocks exist.  Deterministic given
/// rng: exactly one value is drawn from `rng` to seed the recursion's
/// per-subproblem streams, so the result depends only on that seed (not on
/// thread count or scheduling).  Handles k = 1 (trivial) and graphs with
/// fewer vertices than k (round-robin assignment of the remainder).
/// With a non-null `pool`, sibling subproblems run as pool tasks.
KwayResult recursive_bisection(const Graph& g, part_t k, const Bisector& bisect,
                               Rng& rng, ThreadPool* pool = nullptr);

/// k-way partition with the paper's multilevel bisection.  Phase times
/// accumulate into `timers` (summed over all k-1 bisections) when non-null;
/// under parallel execution concurrent bisections sum their phase times, so
/// the totals are CPU seconds rather than wall-clock.
///
/// Parallelism: uses `pool` when non-null; otherwise, if
/// cfg.resolved_threads() > 1, a pool of that size is created for the call.
/// Pass cfg.threads = 1 (the default) for the fully sequential path.
KwayResult kway_partition(const Graph& g, part_t k, const MultilevelConfig& cfg,
                          Rng& rng, PhaseTimers* timers = nullptr,
                          ThreadPool* pool = nullptr);

/// Edge-cut of an arbitrary k-way labelling.
ewt_t compute_kway_cut(const Graph& g, std::span<const part_t> part);

/// Reusable scratch for kway_partition_into's sequential recursion: one
/// frame per recursion depth holding the subproblem's bisection buffer,
/// the side being descended into (its CSR storage recycled in place), and
/// the local→global id maps.  Sequential DFS touches one frame per depth at
/// a time, so ceil(log2 k) frames cover the whole tree; all of them warm to
/// their subproblem's high-water size on the first request and are reused
/// verbatim afterwards.
class KwayScratch {
 public:
  KwayScratch() = default;
  KwayScratch(const KwayScratch&) = delete;
  KwayScratch& operator=(const KwayScratch&) = delete;

  /// Heap bytes currently reserved (capacity, not size).
  std::size_t memory_bytes() const;

  /// One recursion depth's buffers.  unique_ptr keeps addresses stable while
  /// frames_ grows: a child frame's recursion borrows spans of its parent's
  /// buffers.
  struct Frame {
    Bisection bisection;
    Graph sub;                           ///< rebuilt in place per side visit
    std::vector<vid_t> local_to_global;  ///< sub's ids in the parent graph
    std::vector<vid_t> global_ids;       ///< sub's ids in the *root* graph
    std::vector<vid_t> extract_scratch;  ///< global→local table
  };

  /// Frame for `depth`, created on first use.
  Frame& frame(std::size_t depth);

 private:
  friend ewt_t kway_partition_into(const Graph&, part_t, const MultilevelConfig&,
                                   Rng&, KwayScratch&, BisectWorkspace*,
                                   std::vector<part_t>&);
  std::vector<std::unique_ptr<Frame>> frames_;
  std::vector<vid_t> identity_;  ///< root-level local→global map
};

/// k-way partition into caller-owned storage — the long-lived caller's
/// (server's) entry point.  Byte-identical to kway_partition with the same
/// (graph, k, cfg, rng state): it draws the same single u64 to seed the
/// per-subproblem streams and runs the same sequential recursion.  Always
/// sequential (cfg.threads is ignored; concurrency belongs to the caller,
/// one request per worker).  Labels are written into `out_part` and the
/// edge-cut returned.  With warm `scratch`, `ws`, and `out_part`, the call
/// performs zero heap allocations (asserted by the server's alloc-guard
/// regression test).  Honors cfg.cancel at every level boundary by
/// throwing CancelledError.
ewt_t kway_partition_into(const Graph& g, part_t k, const MultilevelConfig& cfg,
                          Rng& rng, KwayScratch& scratch, BisectWorkspace* ws,
                          std::vector<part_t>& out_part);

/// Best of `trials` independent k-way partitions (smallest edge-cut).  The
/// paper notes multiple trials are how randomized partitioners (geometric
/// ones especially) buy quality with time; the same lever applies here.
KwayResult kway_partition_best_of(const Graph& g, part_t k,
                                  const MultilevelConfig& cfg, int trials,
                                  Rng& rng, PhaseTimers* timers = nullptr);

}  // namespace mgp
