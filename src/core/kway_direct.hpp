// Direct multilevel k-way partitioning (extension).
//
// The paper partitions k ways by recursive bisection (log k multilevel
// V-cycles).  Its successor line of work (Karypis & Kumar's k-way METIS)
// coarsens *once*, partitions the coarsest graph into k parts, and refines
// the k-way partition directly during a single uncoarsening sweep — the
// obvious "future work" of this paper, implemented here:
//
//   * coarsening: HEM (or any scheme), stopping at max(coarsen_to, c*k)
//     vertices so the coarsest graph can hold k parts;
//   * initial partitioning: recursive bisection (the paper's algorithm) on
//     the tiny coarsest graph;
//   * refinement: greedy k-way refinement — random-order passes over
//     boundary vertices, moving each to the neighbouring part with the
//     largest positive gain subject to a balance ceiling.
//
// bench/figK_kway_direct measures the payoff: one coarsening instead of
// k-1 of them, so run time grows far more slowly with k at comparable cut.
#pragma once

#include "core/config.hpp"
#include "core/kway.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

namespace mgp {

struct KwayDirectConfig {
  MatchingScheme matching = MatchingScheme::kHeavyEdge;
  /// The coarsest graph keeps at least this many vertices per part.
  vid_t coarse_vertices_per_part = 8;
  vid_t coarsen_to_floor = 100;
  double min_shrink_factor = 0.95;
  /// Config for the recursive-bisection initial partition of the coarsest.
  MultilevelConfig initial;
  /// Greedy k-way refinement passes per level (stops early on no gain).
  int max_refine_passes = 8;
  /// Allowed part weight: ceil(total/k) * (1 + imbalance) + max vertex wt.
  double imbalance = 0.03;
};

/// One-shot multilevel k-way partitioning.
KwayResult kway_partition_direct(const Graph& g, part_t k,
                                 const KwayDirectConfig& cfg, Rng& rng,
                                 PhaseTimers* timers = nullptr);

struct KwayRefineStats {
  int passes = 0;
  vid_t moves = 0;
  ewt_t cut_reduction = 0;
};

/// Greedy k-way refinement of an existing labelling, in place.  Exposed for
/// tests and for refining partitions from any source.
/// `min_part_weight` stops moves that would shrink a part below the floor
/// (so refinement can never empty a part); pass 0 to disable.
KwayRefineStats kway_greedy_refine(const Graph& g, std::span<part_t> part, part_t k,
                                   vwt_t max_part_weight, vwt_t min_part_weight,
                                   int max_passes, Rng& rng);

}  // namespace mgp
