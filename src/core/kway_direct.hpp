// Direct multilevel k-way partitioning (extension).
//
// The paper partitions k ways by recursive bisection (log k multilevel
// V-cycles).  Its successor line of work (Karypis & Kumar's k-way METIS)
// coarsens *once*, partitions the coarsest graph into k parts, and refines
// the k-way partition directly during a single uncoarsening sweep — the
// obvious "future work" of this paper, implemented here as a first-class
// production path:
//
//   * coarsening: HEM (or any scheme), stopping at max(coarsen_to_floor,
//     coarse_vertices_per_part * k) vertices so the coarsest graph can hold
//     k parts; with a pool attached, HEM runs the deterministic parallel
//     propose/commit matcher (coarsen/parallel_matching.*);
//   * initial partitioning: recursive bisection (the paper's algorithm) on
//     the tiny coarsest graph, always via the sequential kway_partition_into
//     recursion so the draw order is independent of the pool;
//   * refinement: deterministic parallel k-way propose/commit refinement
//     (refine/kway_refine.*) at every level of the single uncoarsening
//     sweep, honouring a per-part balance ceiling and a uniform minimum
//     part-weight floor.
//
// Cancellation (cfg.base.cancel) is honoured at every level boundary.
// bench/figK_kway_direct measures the payoff: one coarsening instead of
// k-1 of them, so run time grows far more slowly with k at comparable cut.
#pragma once

#include <memory>
#include <vector>

#include "coarsen/contract.hpp"
#include "core/config.hpp"
#include "core/kway.hpp"
#include "refine/kway_refine.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"

namespace mgp {

struct KwayDirectConfig {
  /// Single source of truth for the pipeline knobs the direct path shares
  /// with recursive bisection: matching scheme, initial-partition schemes,
  /// thread count, obs sink, and cancellation token.  The former separate
  /// `initial` MultilevelConfig duplicated these fields and could silently
  /// disagree with the outer config; initial_config() now *derives* the
  /// coarsest-graph recursive-bisection config from `base`, so there is
  /// nothing left to contradict.
  MultilevelConfig base;

  /// The coarsest graph keeps at least this many vertices per part.
  vid_t coarse_vertices_per_part = 16;
  vid_t coarsen_to_floor = 100;
  double min_shrink_factor = 0.95;
  /// Unlock passes of k-way refinement per level (each pass runs
  /// propose/commit rounds to quiescence; stops early on no gain).
  int max_refine_passes = 8;
  /// Allowed part weight: (total/k) * (1 + imbalance) + the level's max
  /// vertex weight (recomputed per level of the uncoarsening sweep).
  double imbalance = 0.03;

  /// Config for the recursive-bisection initial partition of the coarsest
  /// graph, derived from `base` (sequential: the initial partition always
  /// runs the one-thread recursion regardless of base.threads, so the draw
  /// order — and with it the partition — is independent of the pool).
  MultilevelConfig initial_config() const;

  /// Rejects nonsense knob values (and k < 1) with std::invalid_argument.
  /// Called by the drivers on entry.
  void validate(part_t k) const;
};

/// Reusable state for kway_partition_direct_into: the direct path's own
/// coarsening ladder (separate from BisectWorkspace::levels, which the
/// initial partition's sub-bisections recycle for *their* ladders), the
/// sequential recursion scratch for the coarsest-graph initial partition,
/// the k-way refiner's tables, the incrementally-maintained part weights,
/// and the projection ping-pong buffer.  Default-constructed empty; warms
/// to the request's high-water size on first use.
struct KwayDirectWorkspace {
  /// One slot per coarsening level; unique_ptr keeps each Contraction's
  /// address stable while the vector grows (the ladder holds a pointer into
  /// the previous level's coarse graph).
  std::vector<std::unique_ptr<Contraction>> levels;
  KwayScratch init_scratch;
  KwayRefineWorkspace refine;
  std::vector<vwt_t> pwgts;  ///< k: maintained incrementally, never rescanned
  std::vector<part_t> proj;  ///< projection ping-pong buffer

  /// Heap bytes currently reserved (capacity, not size).
  std::size_t bytes_reserved() const;
};

/// Direct k-way partition into caller-owned storage — the long-lived
/// caller's (server's) entry point.  Labels are written into `out_part` and
/// the edge-cut returned.  With warm `dws`, `ws`, and `out_part`, the call
/// performs zero steady-state heap allocations (asserted by the alloc-guard
/// regression tests).  `ws` lends the matching/contraction/arena scratch
/// and serves the initial partition's sub-bisections; pass null for a
/// call-local one.  Honours cfg.base.cancel at every level boundary by
/// throwing CancelledError.  Draws no randomness beyond the sequential
/// matcher's stream and the initial partition's single root-seed u64, so
/// the result is byte-identical across pool sizes (including no pool when
/// the matching draws are unaffected, i.e. the sequential path).
ewt_t kway_partition_direct_into(const Graph& g, part_t k,
                                 const KwayDirectConfig& cfg, Rng& rng,
                                 KwayDirectWorkspace& dws, BisectWorkspace* ws,
                                 std::vector<part_t>& out_part,
                                 PhaseTimers* timers = nullptr,
                                 ThreadPool* pool = nullptr);

/// One-shot multilevel k-way partitioning.  Byte-identical to
/// kway_partition_direct_into with the same (graph, k, cfg, rng state) and
/// pool.  With no `pool` and cfg.base.resolved_threads() > 1, a pool of
/// that size is created for the call.
KwayResult kway_partition_direct(const Graph& g, part_t k,
                                 const KwayDirectConfig& cfg, Rng& rng,
                                 PhaseTimers* timers = nullptr,
                                 ThreadPool* pool = nullptr);

struct KwayRefineStats {
  int passes = 0;
  vid_t moves = 0;
  ewt_t cut_reduction = 0;
};

/// Sequential greedy k-way refinement of an existing labelling, in place.
/// Exposed for tests and for refining partitions from any source; the
/// production sweep uses kway_parallel_refine (refine/kway_refine.*).
/// Part weights are tracked incrementally across the whole call (computed
/// once on entry, updated per move).  `min_part_weight` stops moves that
/// would shrink a part below the floor — enforced uniformly for every k,
/// 2 included, so refinement can never empty a part; pass 0 to disable.
KwayRefineStats kway_greedy_refine(const Graph& g, std::span<part_t> part, part_t k,
                                   vwt_t max_part_weight, vwt_t min_part_weight,
                                   int max_passes, Rng& rng);

}  // namespace mgp
