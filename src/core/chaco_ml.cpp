#include "core/chaco_ml.hpp"

namespace mgp {

BisectResult chaco_ml_bisect(const Graph& g, vwt_t target0, Rng& rng,
                             PhaseTimers* timers) {
  return multilevel_bisect(g, target0, MultilevelConfig::chaco_ml(), rng, timers);
}

KwayResult chaco_ml_partition(const Graph& g, part_t k, Rng& rng,
                              PhaseTimers* timers) {
  return kway_partition(g, k, MultilevelConfig::chaco_ml(), rng, timers);
}

}  // namespace mgp
