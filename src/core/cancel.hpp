// Cooperative cancellation for long-running partitioning calls.
//
// The partitioning pipeline is a batch algorithm; the server (src/server/)
// turns it into a service with per-request deadlines.  A CancelToken is the
// bridge: the caller arms it (explicit cancel() or a steady-clock deadline),
// threads it through MultilevelConfig::cancel, and multilevel_bisect polls
// it at level boundaries — once per coarsening step, once before initial
// partitioning, once per uncoarsening level.  That granularity keeps the
// check off the per-vertex hot paths while bounding the overrun of an
// expired request to a single level's work.
//
// An expired token makes the pipeline throw CancelledError, which unwinds
// through the recursive-bisection tree (core/kway.cpp is exception-safe
// under fork/join: a throwing subproblem still joins its sibling before
// propagating).  A token that never expires is never observable: the check
// draws no randomness and alters no control flow, so partitions stay
// byte-identical with or without a token attached.
#pragma once

#include <atomic>
#include <chrono>
#include <stdexcept>

namespace mgp {

/// Thrown by pipeline code when its CancelToken expires mid-run.
class CancelledError : public std::runtime_error {
 public:
  CancelledError() : std::runtime_error("operation cancelled") {}
};

/// Shared cancellation state: an explicit flag plus an optional deadline.
/// cancel() may be called from any thread; expired() is safe to poll
/// concurrently.  Reusable: reset() re-arms a warm token (the server keeps
/// one per connection slot).
struct CancelToken {
  /// Requests cancellation (checked at the next level boundary).
  void cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// Arms an absolute steady-clock deadline.  The release store pairs with
  /// expired()'s acquire load so a concurrently polling thread never reads a
  /// half-written time point.
  void set_deadline(std::chrono::steady_clock::time_point tp) {
    deadline_ = tp;
    has_deadline_.store(true, std::memory_order_release);
  }

  /// Clears both the flag and the deadline.
  void reset() {
    cancelled_.store(false, std::memory_order_relaxed);
    has_deadline_.store(false, std::memory_order_relaxed);
  }

  /// True once cancel() was called or the deadline has passed.
  bool expired() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    return has_deadline_.load(std::memory_order_acquire) &&
           std::chrono::steady_clock::now() > deadline_;
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<bool> has_deadline_{false};
  std::chrono::steady_clock::time_point deadline_{};
};

/// Pipeline-side check: throws CancelledError when `token` (if any) expired.
inline void throw_if_cancelled(const CancelToken* token) {
  if (token && token->expired()) throw CancelledError();
}

}  // namespace mgp
