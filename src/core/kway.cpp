#include "core/kway.hpp"

#include <cassert>

#include "graph/permute.hpp"

namespace mgp {
namespace {

/// Recursive worker: labels g's vertices with parts [part_base, part_base+k)
/// into out_part via the local→global map.
void recurse(const Graph& g, std::span<const vid_t> to_global, part_t k,
             part_t part_base, const Bisector& bisect, Rng& rng,
             std::vector<part_t>& out_part) {
  if (k <= 1 || g.num_vertices() == 0) {
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
      out_part[static_cast<std::size_t>(to_global[static_cast<std::size_t>(v)])] =
          part_base;
    }
    return;
  }
  if (g.num_vertices() <= k) {
    // Degenerate: fewer vertices than requested parts; spread them out.
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
      out_part[static_cast<std::size_t>(to_global[static_cast<std::size_t>(v)])] =
          part_base + (v % k);
    }
    return;
  }

  const part_t k0 = (k + 1) / 2;  // side 0 gets the larger half for odd k
  const part_t k1 = k - k0;
  const vwt_t total = g.total_vertex_weight();
  const vwt_t target0 =
      static_cast<vwt_t>((static_cast<long double>(total) * k0) / k + 0.5L);

  Bisection b = bisect(g, target0, rng);
  assert(b.side.size() == static_cast<std::size_t>(g.num_vertices()));

  for (part_t s = 0; s < 2; ++s) {
    Subgraph sub = extract_where(g, b.side, s);
    // Rewire local→global through this level's map.
    std::vector<vid_t> global_ids(sub.local_to_global.size());
    for (std::size_t i = 0; i < global_ids.size(); ++i) {
      global_ids[i] =
          to_global[static_cast<std::size_t>(sub.local_to_global[i])];
    }
    recurse(sub.graph, global_ids, s == 0 ? k0 : k1,
            s == 0 ? part_base : part_base + k0, bisect, rng, out_part);
  }
}

}  // namespace

KwayResult recursive_bisection(const Graph& g, part_t k, const Bisector& bisect,
                               Rng& rng) {
  assert(k >= 1);
  KwayResult out;
  out.k = k;
  out.part.assign(static_cast<std::size_t>(g.num_vertices()), 0);
  std::vector<vid_t> identity(static_cast<std::size_t>(g.num_vertices()));
  for (vid_t v = 0; v < g.num_vertices(); ++v) identity[static_cast<std::size_t>(v)] = v;
  recurse(g, identity, k, 0, bisect, rng, out.part);
  out.edge_cut = compute_kway_cut(g, out.part);
  return out;
}

KwayResult kway_partition(const Graph& g, part_t k, const MultilevelConfig& cfg,
                          Rng& rng, PhaseTimers* timers) {
  Bisector bisect = [&cfg, timers](const Graph& sub, vwt_t target0, Rng& r) {
    return multilevel_bisect(sub, target0, cfg, r, timers).bisection;
  };
  return recursive_bisection(g, k, bisect, rng);
}

KwayResult kway_partition_best_of(const Graph& g, part_t k,
                                  const MultilevelConfig& cfg, int trials,
                                  Rng& rng, PhaseTimers* timers) {
  KwayResult best;
  for (int t = 0; t < trials; ++t) {
    KwayResult r = kway_partition(g, k, cfg, rng, timers);
    if (t == 0 || r.edge_cut < best.edge_cut) best = std::move(r);
  }
  return best;
}

ewt_t compute_kway_cut(const Graph& g, std::span<const part_t> part) {
  ewt_t cut2 = 0;
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    auto nbrs = g.neighbors(u);
    auto wgts = g.edge_weights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (part[static_cast<std::size_t>(u)] != part[static_cast<std::size_t>(nbrs[i])]) {
        cut2 += wgts[i];
      }
    }
  }
  return cut2 / 2;
}

}  // namespace mgp
