#include "core/kway.hpp"

#include <cassert>
#include <optional>

#include "graph/permute.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "support/workspace.hpp"

namespace mgp {
namespace {

/// Below this size a subproblem recurses inline: task overhead would exceed
/// the bisection work.  Purely a scheduling decision — results are identical
/// either way, so the constant can be retuned freely.
constexpr vid_t kSpawnThresholdVertices = 2048;

/// RNG seed of a subproblem: splitmix64-style mix of the run's root seed
/// and the subproblem's position in the bisection tree (heap encoding:
/// root = 1, children of p are 2p and 2p+1).  Sibling and ancestor streams
/// are unrelated, and the seed does not depend on execution order.
std::uint64_t subproblem_seed(std::uint64_t root_seed, std::uint64_t path) {
  std::uint64_t z = root_seed ^ (path * 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Shared, read-only (or disjointly-written) state of one recursion.
struct RbContext {
  const Bisector& bisect;
  std::vector<part_t>& out_part;  ///< subproblems write disjoint slots
  std::uint64_t root_seed;
  ThreadPool* pool;  ///< may be null (fully inline recursion)
};

/// Recursive worker: labels g's vertices with parts [part_base, part_base+k)
/// into ctx.out_part via the local→global map.  `path` identifies this
/// subproblem in the bisection tree and seeds its private RNG stream.
void recurse(const Graph& g, std::span<const vid_t> to_global, part_t k,
             part_t part_base, std::uint64_t path, const RbContext& ctx) {
  if (k <= 1 || g.num_vertices() == 0) {
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
      ctx.out_part[static_cast<std::size_t>(to_global[static_cast<std::size_t>(v)])] =
          part_base;
    }
    return;
  }
  if (g.num_vertices() <= k) {
    // Degenerate: fewer vertices than requested parts; spread them out.
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
      ctx.out_part[static_cast<std::size_t>(to_global[static_cast<std::size_t>(v)])] =
          part_base + (v % k);
    }
    return;
  }

  obs::Span span("bisect.subproblem");
  span.arg("path", static_cast<std::int64_t>(path));
  span.arg("n", g.num_vertices());

  const part_t k0 = (k + 1) / 2;  // side 0 gets the larger half for odd k
  const part_t k1 = k - k0;
  const vwt_t total = g.total_vertex_weight();
  const vwt_t target0 =
      static_cast<vwt_t>((static_cast<long double>(total) * k0) / k + 0.5L);

  Rng rng(subproblem_seed(ctx.root_seed, path));
  Bisection b = ctx.bisect(g, target0, rng);
  assert(b.side.size() == static_cast<std::size_t>(g.num_vertices()));

  // Build both subproblems in this frame so a spawned child can borrow them.
  Subgraph sub[2];
  std::vector<vid_t> global_ids[2];
  for (part_t s = 0; s < 2; ++s) {
    sub[s] = extract_where(g, b.side, s);
    // Rewire local→global through this level's map.
    global_ids[s].resize(sub[s].local_to_global.size());
    for (std::size_t i = 0; i < global_ids[s].size(); ++i) {
      global_ids[s][i] =
          to_global[static_cast<std::size_t>(sub[s].local_to_global[i])];
    }
  }

  const std::uint64_t child_path[2] = {2 * path, 2 * path + 1};
  const part_t child_k[2] = {k0, k1};
  const part_t child_base[2] = {part_base, part_base + k0};

  if (ctx.pool && ctx.pool->num_threads() > 1 &&
      g.num_vertices() >= kSpawnThresholdVertices) {
    // Fork side 0 to the pool, recurse on side 1 here, join with helping
    // (the waiting thread executes other queued subproblems meanwhile).
    // Exception safety: the forked child borrows this frame's subgraphs, so
    // a throw from the inline side (e.g. CancelledError from an expired
    // deadline) must still join the fork before unwinding.
    std::future<void> fut = ctx.pool->submit([&]() {
      recurse(sub[0].graph, global_ids[0], child_k[0], child_base[0],
              child_path[0], ctx);
    });
    std::exception_ptr inline_error;
    try {
      recurse(sub[1].graph, global_ids[1], child_k[1], child_base[1],
              child_path[1], ctx);
    } catch (...) {
      inline_error = std::current_exception();
    }
    try {
      ctx.pool->wait_help(fut);
    } catch (...) {
      if (!inline_error) inline_error = std::current_exception();
    }
    if (inline_error) std::rethrow_exception(inline_error);
  } else {
    for (part_t s = 0; s < 2; ++s) {
      recurse(sub[s].graph, global_ids[s], child_k[s], child_base[s],
              child_path[s], ctx);
    }
  }
}

}  // namespace

KwayResult recursive_bisection(const Graph& g, part_t k, const Bisector& bisect,
                               Rng& rng, ThreadPool* pool) {
  assert(k >= 1);
  KwayResult out;
  out.k = k;
  out.part.assign(static_cast<std::size_t>(g.num_vertices()), 0);
  std::vector<vid_t> identity(static_cast<std::size_t>(g.num_vertices()));
  for (vid_t v = 0; v < g.num_vertices(); ++v) identity[static_cast<std::size_t>(v)] = v;
  // One draw fixes every subproblem's stream; everything below is a pure
  // function of it, so thread count and scheduling cannot change the result.
  const std::uint64_t root_seed = rng.next_u64();
  RbContext ctx{bisect, out.part, root_seed, pool};
  recurse(g, identity, k, 0, /*path=*/1, ctx);
  out.edge_cut = compute_kway_cut(g, out.part);
  return out;
}

KwayResult kway_partition(const Graph& g, part_t k, const MultilevelConfig& cfg,
                          Rng& rng, PhaseTimers* timers, ThreadPool* pool) {
  std::optional<ThreadPool> owned;
  if (!pool && cfg.resolved_threads() > 1) {
    owned.emplace(cfg.resolved_threads());
    pool = &*owned;
  }
  obs::Span span("kway_partition");
  span.arg("k", k);
  span.arg("n", g.num_vertices());

  // Phase-time accounting rides the sharded metrics registry: every
  // concurrent bisection adds nanoseconds to its own thread's shard
  // (lock-free), and one merge at the end serves `timers` and the attached
  // Obs context.  A call-local registry keeps the merge scoped to exactly
  // this call (cfg.obs->metrics is cumulative across calls).
  std::optional<obs::MetricsRegistry> local_reg;
  std::optional<obs::PhaseMetrics> phases;
  if (timers || cfg.obs) phases.emplace(local_reg.emplace());
  obs::PhaseMetrics* const pm = phases ? &*phases : nullptr;

  // Workspaces are pooled across the recursion: each subproblem checks one
  // out for the duration of its bisection and returns it warm, so after the
  // first few subproblems the serial hot path stops allocating (the fork/
  // join recursion holds at most one checkout per concurrent worker).
  WorkspacePool wpool;
  Bisector bisect = [&cfg, pm, pool, &wpool](const Graph& sub, vwt_t target0, Rng& r) {
    WorkspacePool::Lease lease = wpool.checkout();
    return multilevel_bisect(sub, target0, cfg, r, nullptr, pool, pm, lease.get())
        .bisection;
  };
  KwayResult out = recursive_bisection(g, k, bisect, rng, pool);

  if (cfg.obs) {
    const WorkspacePool::Stats ws_stats = wpool.stats();
    cfg.obs->metrics.record_max(cfg.obs->pipeline.arena_bytes_peak,
                                static_cast<std::int64_t>(ws_stats.bytes_peak));
    cfg.obs->metrics.add(cfg.obs->pipeline.arena_reuse_hits,
                         static_cast<std::int64_t>(ws_stats.reuse_hits));
    cfg.obs->metrics.add(cfg.obs->pipeline.arena_workspaces,
                         static_cast<std::int64_t>(ws_stats.created));
  }

  if (phases) {
    const PhaseTimers merged = phases->view();
    if (timers) {
      for (int p = 0; p < PhaseTimers::kNumPhases; ++p) {
        const auto phase = static_cast<PhaseTimers::Phase>(p);
        timers->add(phase, merged.get(phase));
      }
    }
    if (cfg.obs) {
      cfg.obs->report.add_phase_times(merged);
      obs::PhaseMetrics(cfg.obs->metrics).add(merged);
    }
  }
  return out;
}

KwayResult kway_partition_best_of(const Graph& g, part_t k,
                                  const MultilevelConfig& cfg, int trials,
                                  Rng& rng, PhaseTimers* timers) {
  // One pool shared by every trial (constructing per trial would churn
  // threads); null when the config asks for sequential execution.
  std::optional<ThreadPool> owned;
  ThreadPool* pool = nullptr;
  if (cfg.resolved_threads() > 1) {
    owned.emplace(cfg.resolved_threads());
    pool = &*owned;
  }
  KwayResult best;
  for (int t = 0; t < trials; ++t) {
    KwayResult r = kway_partition(g, k, cfg, rng, timers, pool);
    if (t == 0 || r.edge_cut < best.edge_cut) best = std::move(r);
  }
  return best;
}

namespace {

/// Shared state of one kway_partition_into recursion.
struct RbScratchContext {
  const MultilevelConfig& cfg;
  std::vector<part_t>& out_part;
  std::uint64_t root_seed;
  KwayScratch& scratch;
  BisectWorkspace* ws;  ///< one workspace, reused by every subproblem
};

/// Sequential analogue of recurse() over pooled frame storage: identical
/// control flow, degenerate handling, and per-subproblem seeds, so the
/// resulting labelling is byte-identical to recursive_bisection's.  Sides
/// are descended one after the other, which lets both reuse the same frame
/// slot: by the time side 1 is extracted, side 0's subtree has completed.
void recurse_with_scratch(const Graph& g, std::span<const vid_t> to_global, part_t k,
                          part_t part_base, std::uint64_t path, std::size_t depth,
                          const RbScratchContext& ctx) {
  if (k <= 1 || g.num_vertices() == 0) {
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
      ctx.out_part[static_cast<std::size_t>(to_global[static_cast<std::size_t>(v)])] =
          part_base;
    }
    return;
  }
  if (g.num_vertices() <= k) {
    for (vid_t v = 0; v < g.num_vertices(); ++v) {
      ctx.out_part[static_cast<std::size_t>(to_global[static_cast<std::size_t>(v)])] =
          part_base + (v % k);
    }
    return;
  }

  obs::Span span("bisect.subproblem");
  span.arg("path", static_cast<std::int64_t>(path));
  span.arg("n", g.num_vertices());

  const part_t k0 = (k + 1) / 2;
  const part_t k1 = k - k0;
  const vwt_t total = g.total_vertex_weight();
  const vwt_t target0 =
      static_cast<vwt_t>((static_cast<long double>(total) * k0) / k + 0.5L);

  KwayScratch::Frame& fr = ctx.scratch.frame(depth);
  Rng rng(subproblem_seed(ctx.root_seed, path));
  multilevel_bisect_into(g, target0, ctx.cfg, rng, fr.bisection, nullptr, nullptr,
                         nullptr, ctx.ws);
  assert(fr.bisection.side.size() == static_cast<std::size_t>(g.num_vertices()));

  const std::uint64_t child_path[2] = {2 * path, 2 * path + 1};
  const part_t child_k[2] = {k0, k1};
  const part_t child_base[2] = {part_base, part_base + k0};

  for (part_t s = 0; s < 2; ++s) {
    extract_where_into(g, fr.bisection.side, s, fr.extract_scratch,
                       fr.local_to_global, fr.sub);
    fr.global_ids.resize(fr.local_to_global.size());
    for (std::size_t i = 0; i < fr.local_to_global.size(); ++i) {
      fr.global_ids[i] =
          to_global[static_cast<std::size_t>(fr.local_to_global[i])];
    }
    recurse_with_scratch(fr.sub, fr.global_ids, child_k[s], child_base[s],
                         child_path[s], depth + 1, ctx);
  }
}

}  // namespace

KwayScratch::Frame& KwayScratch::frame(std::size_t depth) {
  while (frames_.size() <= depth) {
    frames_.push_back(std::make_unique<Frame>());
  }
  return *frames_[depth];
}

std::size_t KwayScratch::memory_bytes() const {
  std::size_t total = identity_.capacity() * sizeof(vid_t);
  total += frames_.capacity() * sizeof(std::unique_ptr<Frame>);
  for (const auto& fr : frames_) {
    if (!fr) continue;
    total += fr->bisection.side.capacity() * sizeof(part_t);
    total += fr->sub.memory_bytes();
    total += fr->local_to_global.capacity() * sizeof(vid_t);
    total += fr->global_ids.capacity() * sizeof(vid_t);
    total += fr->extract_scratch.capacity() * sizeof(vid_t);
  }
  return total;
}

ewt_t kway_partition_into(const Graph& g, part_t k, const MultilevelConfig& cfg,
                          Rng& rng, KwayScratch& scratch, BisectWorkspace* ws,
                          std::vector<part_t>& out_part) {
  assert(k >= 1);
  obs::Span span("kway_partition");
  span.arg("k", k);
  span.arg("n", g.num_vertices());

  out_part.assign(static_cast<std::size_t>(g.num_vertices()), 0);
  scratch.identity_.resize(static_cast<std::size_t>(g.num_vertices()));
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    scratch.identity_[static_cast<std::size_t>(v)] = v;
  }
  // Same single draw as recursive_bisection: everything below is a pure
  // function of it, so the two drivers are interchangeable byte for byte.
  const std::uint64_t root_seed = rng.next_u64();
  RbScratchContext ctx{cfg, out_part, root_seed, scratch, ws};
  recurse_with_scratch(g, scratch.identity_, k, 0, /*path=*/1, /*depth=*/0, ctx);
  return compute_kway_cut(g, out_part);
}

ewt_t compute_kway_cut(const Graph& g, std::span<const part_t> part) {
  ewt_t cut2 = 0;
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    auto nbrs = g.neighbors(u);
    auto wgts = g.edge_weights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (part[static_cast<std::size_t>(u)] != part[static_cast<std::size_t>(nbrs[i])]) {
        cut2 += wgts[i];
      }
    }
  }
  return cut2 / 2;
}

}  // namespace mgp
