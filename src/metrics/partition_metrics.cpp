#include "metrics/partition_metrics.hpp"

#include <algorithm>
#include <sstream>

namespace mgp {

PartitionQuality evaluate_partition(const Graph& g, std::span<const part_t> part,
                                    part_t k) {
  PartitionQuality q;
  q.k = k;
  std::vector<vwt_t> weights(static_cast<std::size_t>(k), 0);
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    weights[static_cast<std::size_t>(part[static_cast<std::size_t>(v)])] +=
        g.vertex_weight(v);
  }
  q.max_part_weight = weights.empty() ? 0 : *std::max_element(weights.begin(), weights.end());
  q.min_part_weight = weights.empty() ? 0 : *std::min_element(weights.begin(), weights.end());
  const double ideal =
      static_cast<double>(g.total_vertex_weight()) / static_cast<double>(k);
  q.imbalance = ideal > 0 ? static_cast<double>(q.max_part_weight) / ideal : 1.0;

  // Edge-cut, boundary vertices and communication volume in one sweep.
  std::vector<part_t> seen;  // distinct foreign parts of the current vertex
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    const part_t pu = part[static_cast<std::size_t>(u)];
    auto nbrs = g.neighbors(u);
    auto wgts = g.edge_weights(u);
    seen.clear();
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const part_t pv = part[static_cast<std::size_t>(nbrs[i])];
      if (pv == pu) continue;
      q.edge_cut += wgts[i];
      if (std::find(seen.begin(), seen.end(), pv) == seen.end()) seen.push_back(pv);
    }
    if (!seen.empty()) {
      ++q.boundary_vertices;
      q.comm_volume += static_cast<std::int64_t>(seen.size());
    }
  }
  q.edge_cut /= 2;
  return q;
}

std::string check_partition(const Graph& g, std::span<const part_t> part, part_t k) {
  std::ostringstream err;
  if (part.size() != static_cast<std::size_t>(g.num_vertices())) {
    err << "part size " << part.size() << " != n " << g.num_vertices();
    return err.str();
  }
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    part_t p = part[static_cast<std::size_t>(v)];
    if (p < 0 || p >= k) {
      err << "vertex " << v << " has part " << p << " outside [0, " << k << ")";
      return err.str();
    }
  }
  return {};
}

}  // namespace mgp
