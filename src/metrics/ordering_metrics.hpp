// Ordering quality metrics: the numbers behind Figure 5 and the
// concurrency discussion of §4.3.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "graph/csr.hpp"
#include "order/symbolic.hpp"

namespace mgp {

struct OrderingQuality {
  std::int64_t nnz_factor = 0;       ///< fill: nonzeros of L
  std::int64_t flops = 0;            ///< Σ colcount², the paper's op count
  vid_t etree_height = 0;            ///< serial dependency chain
  std::int64_t critical_path_flops = 0;
  double average_width = 0.0;        ///< flops / critical path
};

/// Evaluates an ordering (new_to_old) of g's pattern.
OrderingQuality evaluate_ordering(const Graph& g, std::span<const vid_t> new_to_old);

/// Formats flops human-readably ("1.23e9") for table rows.
std::string format_flops(std::int64_t flops);

}  // namespace mgp
