#include "metrics/validate.hpp"

#include <algorithm>
#include <sstream>

namespace mgp {

PartitionValidation validate_partition(std::span<const part_t> part, vid_t n,
                                       part_t k, double max_imbalance) {
  PartitionValidation out;
  if (k < 1) {
    out.errors.push_back("k must be >= 1");
    return out;
  }
  if (part.size() != static_cast<std::size_t>(n)) {
    std::ostringstream os;
    os << part.size() << " labels for " << n << " vertices";
    out.errors.push_back(os.str());
  }
  out.part_sizes.assign(static_cast<std::size_t>(k), 0);
  // Mirror the script: cap the out-of-range spam, count in-range labels.
  constexpr std::size_t kMaxErrors = 11;
  for (std::size_t v = 0; v < part.size(); ++v) {
    const part_t p = part[v];
    if (p >= 0 && p < k) {
      ++out.part_sizes[static_cast<std::size_t>(p)];
    } else {
      std::ostringstream os;
      os << "vertex " << v << ": label " << p << " outside [0, " << k << ")";
      out.errors.push_back(os.str());
      if (out.errors.size() > kMaxErrors) break;
    }
  }
  if (out.errors.empty()) {
    for (part_t p = 0; p < k; ++p) {
      if (out.part_sizes[static_cast<std::size_t>(p)] == 0) {
        std::ostringstream os;
        os << "part " << p << " is empty";
        out.errors.push_back(os.str());
      }
    }
    const vid_t ideal = (n + k - 1) / k;  // ceil(n / k)
    const vid_t largest = *std::max_element(out.part_sizes.begin(), out.part_sizes.end());
    out.imbalance =
        ideal > 0 ? static_cast<double>(largest) / static_cast<double>(ideal) : 0.0;
    if (out.imbalance > max_imbalance) {
      std::ostringstream os;
      os << "imbalance " << out.imbalance << " > bound " << max_imbalance;
      out.errors.push_back(os.str());
    }
  }
  out.valid = out.errors.empty();
  return out;
}

}  // namespace mgp
