// Native partition validation — the C++ twin of
// scripts/validate_partition.py, so in-process tests and the server can
// check a labelling without shelling out.  Same four checks, same
// count-based imbalance definition (max part size / ceil(n/k)), so the two
// validators accept and reject exactly the same partitions.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "support/types.hpp"

namespace mgp {

struct PartitionValidation {
  bool valid = false;
  std::vector<std::string> errors;   ///< empty iff valid
  std::vector<vid_t> part_sizes;     ///< size k (vertex counts, not weights)
  double imbalance = 0.0;            ///< max part size / ceil(n / k)
};

/// Validates a k-way labelling of n vertices:
///   * part.size() == n;
///   * every label in [0, k);
///   * every part non-empty;
///   * max part size / ceil(n / k) <= max_imbalance.
/// The default bound matches the script's (generous: the tools balance by
/// vertex weight with slack proportional to the largest vertex).
PartitionValidation validate_partition(std::span<const part_t> part, vid_t n,
                                       part_t k, double max_imbalance = 1.5);

}  // namespace mgp
