#include "metrics/ordering_metrics.hpp"

#include <cstdio>

namespace mgp {

OrderingQuality evaluate_ordering(const Graph& g, std::span<const vid_t> new_to_old) {
  SymbolicFactor sf = symbolic_cholesky(g, new_to_old);
  ConcurrencyProfile cp = concurrency_profile(sf);
  OrderingQuality q;
  q.nnz_factor = sf.nnz_factor;
  q.flops = sf.flops;
  q.etree_height = cp.etree_height;
  q.critical_path_flops = cp.critical_path_flops;
  q.average_width = cp.average_width;
  return q;
}

std::string format_flops(std::int64_t flops) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3g", static_cast<double>(flops));
  return buf;
}

}  // namespace mgp
