// Partition quality metrics reported by the tables/figures.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "support/types.hpp"

namespace mgp {

struct PartitionQuality {
  part_t k = 0;
  ewt_t edge_cut = 0;
  vwt_t max_part_weight = 0;
  vwt_t min_part_weight = 0;
  /// max part weight / (total/k); 1.0 = perfectly balanced.
  double imbalance = 0.0;
  /// Vertices with at least one neighbour in another part.
  vid_t boundary_vertices = 0;
  /// Total communication volume: for each vertex, the number of *distinct*
  /// other parts its neighbours occupy (the SpMV ghost-exchange volume).
  std::int64_t comm_volume = 0;
};

/// Evaluates a k-way labelling.  O(|E|).
PartitionQuality evaluate_partition(const Graph& g, std::span<const part_t> part,
                                    part_t k);

/// Empty string if `part` is a valid k-way labelling (every label in [0,k)),
/// else a description of the violation.
std::string check_partition(const Graph& g, std::span<const part_t> part, part_t k);

}  // namespace mgp
