// Conjugate gradient solver — the paper's §1 motivating application.
//
// "The solution of a sparse system of linear equations Ax = b via iterative
// methods on a parallel computer gives rise to a graph partitioning
// problem.  A key step in each iteration of these methods is the
// multiplication of a sparse matrix and a (dense) vector."  This is that
// iterative method: every CG iteration performs exactly one SpMV, so a
// k-way partition's communication volume times the iteration count is the
// solver's total communication — what examples/iterative_solver.cpp
// reports per partitioning scheme.
//
// Optional Jacobi (diagonal) preconditioning.
#pragma once

#include <span>

#include "cholesky/sparse_cholesky.hpp"

namespace mgp {

struct CgOptions {
  double tolerance = 1e-10;  ///< relative residual ||r|| / ||b||
  int max_iterations = 5000;
  bool jacobi_preconditioner = true;
};

struct CgResult {
  bool converged = false;
  int iterations = 0;
  double relative_residual = 0.0;
};

/// Solves A x = b for SPD A.  `x` is both the initial guess and the result.
CgResult conjugate_gradient(const SymmetricMatrix& a, std::span<const double> b,
                            std::span<double> x, const CgOptions& opts = {});

}  // namespace mgp
