#include "cholesky/conjugate_gradient.hpp"

#include <cassert>
#include <cmath>
#include <vector>

#include "spectral/laplacian.hpp"

namespace mgp {

CgResult conjugate_gradient(const SymmetricMatrix& a, std::span<const double> b,
                            std::span<double> x, const CgOptions& opts) {
  const std::size_t n = static_cast<std::size_t>(a.n);
  assert(b.size() == n && x.size() == n);
  CgResult out;
  if (n == 0) {
    out.converged = true;
    return out;
  }

  // Inverse diagonal for the Jacobi preconditioner (identity when disabled).
  std::vector<double> dinv(n, 1.0);
  if (opts.jacobi_preconditioner) {
    for (vid_t j = 0; j < a.n; ++j) {
      const double d = a.values[static_cast<std::size_t>(a.colptr[static_cast<std::size_t>(j)])];
      dinv[static_cast<std::size_t>(j)] = d != 0.0 ? 1.0 / d : 1.0;
    }
  }

  // r = b - A x
  std::vector<double> r(b.begin(), b.end());
  {
    std::vector<double> ax(n, 0.0);
    a.multiply_add(x, ax);
    for (std::size_t i = 0; i < n; ++i) r[i] -= ax[i];
  }
  std::vector<double> z(n);
  for (std::size_t i = 0; i < n; ++i) z[i] = dinv[i] * r[i];
  std::vector<double> p(z);
  std::vector<double> ap(n);

  const double bnorm = std::max(norm2(b), 1e-300);
  double rz = dot(r, z);

  for (int it = 0; it < opts.max_iterations; ++it) {
    out.relative_residual = norm2(r) / bnorm;
    if (out.relative_residual <= opts.tolerance) {
      out.converged = true;
      out.iterations = it;
      return out;
    }
    std::fill(ap.begin(), ap.end(), 0.0);
    a.multiply_add(p, std::span<double>(ap));
    const double pap = dot(p, ap);
    if (pap <= 0.0) break;  // not SPD (or numerical breakdown)
    const double alpha = rz / pap;
    axpy(alpha, p, x);
    axpy(-alpha, ap, std::span<double>(r));
    for (std::size_t i = 0; i < n; ++i) z[i] = dinv[i] * r[i];
    const double rz_next = dot(r, z);
    const double beta = rz_next / rz;
    rz = rz_next;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
    out.iterations = it + 1;
  }
  out.relative_residual = norm2(r) / bnorm;
  out.converged = out.relative_residual <= opts.tolerance;
  return out;
}

}  // namespace mgp
