#include "cholesky/sparse_cholesky.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "graph/builder.hpp"
#include "graph/permute.hpp"
#include "order/etree.hpp"
#include "order/symbolic.hpp"

namespace mgp {

void SymmetricMatrix::multiply_add(std::span<const double> x,
                                   std::span<double> y) const {
  assert(x.size() == static_cast<std::size_t>(n));
  assert(y.size() == static_cast<std::size_t>(n));
  for (vid_t j = 0; j < n; ++j) {
    for (eid_t p = colptr[static_cast<std::size_t>(j)];
         p < colptr[static_cast<std::size_t>(j) + 1]; ++p) {
      const vid_t i = rowind[static_cast<std::size_t>(p)];
      const double v = values[static_cast<std::size_t>(p)];
      y[static_cast<std::size_t>(i)] += v * x[static_cast<std::size_t>(j)];
      if (i != j) y[static_cast<std::size_t>(j)] += v * x[static_cast<std::size_t>(i)];
    }
  }
}

SymmetricMatrix laplacian_matrix(const Graph& g, double shift) {
  const vid_t n = g.num_vertices();
  SymmetricMatrix a;
  a.n = n;
  a.colptr.assign(static_cast<std::size_t>(n) + 1, 0);
  // Column j holds the diagonal plus off-diagonals with row > j.
  for (vid_t j = 0; j < n; ++j) {
    eid_t cnt = 1;
    for (vid_t i : g.neighbors(j)) {
      if (i > j) ++cnt;
    }
    a.colptr[static_cast<std::size_t>(j) + 1] = a.colptr[static_cast<std::size_t>(j)] + cnt;
  }
  a.rowind.resize(static_cast<std::size_t>(a.colptr[static_cast<std::size_t>(n)]));
  a.values.resize(a.rowind.size());
  for (vid_t j = 0; j < n; ++j) {
    eid_t p = a.colptr[static_cast<std::size_t>(j)];
    double deg = 0.0;
    for (ewt_t w : g.edge_weights(j)) deg += static_cast<double>(w);
    a.rowind[static_cast<std::size_t>(p)] = j;
    a.values[static_cast<std::size_t>(p)] = deg + shift;
    ++p;
    auto nbrs = g.neighbors(j);
    auto wgts = g.edge_weights(j);
    // Graph adjacency is sorted, so rows within the column stay ascending.
    for (std::size_t t = 0; t < nbrs.size(); ++t) {
      if (nbrs[t] > j) {
        a.rowind[static_cast<std::size_t>(p)] = nbrs[t];
        a.values[static_cast<std::size_t>(p)] = -static_cast<double>(wgts[t]);
        ++p;
      }
    }
  }
  return a;
}

SymmetricMatrix permute_matrix(const SymmetricMatrix& a,
                               std::span<const vid_t> new_to_old) {
  const vid_t n = a.n;
  std::vector<vid_t> old_to_new = invert_permutation(new_to_old);
  // Collect the lower-triangle entries of P A P^T per new column.
  std::vector<std::vector<std::pair<vid_t, double>>> cols(static_cast<std::size_t>(n));
  for (vid_t j = 0; j < n; ++j) {
    for (eid_t p = a.colptr[static_cast<std::size_t>(j)];
         p < a.colptr[static_cast<std::size_t>(j) + 1]; ++p) {
      vid_t ni = old_to_new[static_cast<std::size_t>(a.rowind[static_cast<std::size_t>(p)])];
      vid_t nj = old_to_new[static_cast<std::size_t>(j)];
      if (ni < nj) std::swap(ni, nj);
      cols[static_cast<std::size_t>(nj)].emplace_back(ni, a.values[static_cast<std::size_t>(p)]);
    }
  }
  SymmetricMatrix out;
  out.n = n;
  out.colptr.assign(static_cast<std::size_t>(n) + 1, 0);
  out.rowind.reserve(a.rowind.size());
  out.values.reserve(a.values.size());
  for (vid_t j = 0; j < n; ++j) {
    auto& col = cols[static_cast<std::size_t>(j)];
    std::sort(col.begin(), col.end());
    for (auto& [i, v] : col) {
      out.rowind.push_back(i);
      out.values.push_back(v);
    }
    out.colptr[static_cast<std::size_t>(j) + 1] = static_cast<eid_t>(out.rowind.size());
  }
  return out;
}

namespace {

/// Adjacency graph of the off-diagonal pattern, for etree / column counts.
Graph pattern_graph(const SymmetricMatrix& a) {
  GraphBuilder b(a.n);
  for (vid_t j = 0; j < a.n; ++j) {
    for (eid_t p = a.colptr[static_cast<std::size_t>(j)];
         p < a.colptr[static_cast<std::size_t>(j) + 1]; ++p) {
      vid_t i = a.rowind[static_cast<std::size_t>(p)];
      if (i != j) b.add_edge(i, j);
    }
  }
  return std::move(b).build();
}

}  // namespace

CholeskyResult cholesky_factorize(const SymmetricMatrix& a) {
  const vid_t n = a.n;
  CholeskyResult out;
  CholeskyFactor& f = out.factor;
  f.n = n;

  // Symbolic phase: etree + column counts size the factor exactly.
  Graph pattern = pattern_graph(a);
  std::vector<vid_t> identity(static_cast<std::size_t>(n));
  for (vid_t v = 0; v < n; ++v) identity[static_cast<std::size_t>(v)] = v;
  SymbolicFactor sf = symbolic_cholesky(pattern, identity);
  f.parent = sf.parent;
  f.colptr.assign(static_cast<std::size_t>(n) + 1, 0);
  for (vid_t j = 0; j < n; ++j) {
    f.colptr[static_cast<std::size_t>(j) + 1] =
        f.colptr[static_cast<std::size_t>(j)] + sf.col_count[static_cast<std::size_t>(j)];
  }
  f.rowind.resize(static_cast<std::size_t>(sf.nnz_factor));
  f.values.resize(f.rowind.size());

  // Strict upper triangle by row (transpose of the strict lower part), so
  // row k's entries A(k, j), j < k are directly iterable.
  std::vector<eid_t> rowstart(static_cast<std::size_t>(n) + 1, 0);
  for (vid_t j = 0; j < n; ++j) {
    for (eid_t p = a.colptr[static_cast<std::size_t>(j)] + 1;
         p < a.colptr[static_cast<std::size_t>(j) + 1]; ++p) {
      ++rowstart[static_cast<std::size_t>(a.rowind[static_cast<std::size_t>(p)]) + 1];
    }
  }
  for (vid_t i = 0; i < n; ++i) {
    rowstart[static_cast<std::size_t>(i) + 1] += rowstart[static_cast<std::size_t>(i)];
  }
  std::vector<vid_t> rowcols(static_cast<std::size_t>(rowstart[static_cast<std::size_t>(n)]));
  std::vector<double> rowvals(rowcols.size());
  {
    std::vector<eid_t> cursor(rowstart.begin(), rowstart.end() - 1);
    for (vid_t j = 0; j < n; ++j) {
      for (eid_t p = a.colptr[static_cast<std::size_t>(j)] + 1;
           p < a.colptr[static_cast<std::size_t>(j) + 1]; ++p) {
        vid_t i = a.rowind[static_cast<std::size_t>(p)];
        eid_t q = cursor[static_cast<std::size_t>(i)]++;
        rowcols[static_cast<std::size_t>(q)] = j;
        rowvals[static_cast<std::size_t>(q)] = a.values[static_cast<std::size_t>(p)];
      }
    }
  }

  // Numeric phase: up-looking, one row of L per step, driven by
  // elimination-tree reachability (ereach).
  std::vector<eid_t> cursor(static_cast<std::size_t>(n));  // next free slot per column
  for (vid_t j = 0; j < n; ++j) cursor[static_cast<std::size_t>(j)] = f.colptr[static_cast<std::size_t>(j)];
  std::vector<double> x(static_cast<std::size_t>(n), 0.0);  // sparse row accumulator
  std::vector<vid_t> mark(static_cast<std::size_t>(n), kInvalidVid);
  std::vector<vid_t> stack(static_cast<std::size_t>(n));
  std::vector<vid_t> path(static_cast<std::size_t>(n));

  for (vid_t k = 0; k < n; ++k) {
    // ereach: collect the pattern of L's row k in topological order.
    std::size_t top = static_cast<std::size_t>(n);
    mark[static_cast<std::size_t>(k)] = k;
    double d = a.values[static_cast<std::size_t>(a.colptr[static_cast<std::size_t>(k)])];  // A(k,k)
    for (eid_t q = rowstart[static_cast<std::size_t>(k)];
         q < rowstart[static_cast<std::size_t>(k) + 1]; ++q) {
      vid_t j = rowcols[static_cast<std::size_t>(q)];
      x[static_cast<std::size_t>(j)] = rowvals[static_cast<std::size_t>(q)];
      std::size_t len = 0;
      while (mark[static_cast<std::size_t>(j)] != k) {
        path[len++] = j;
        mark[static_cast<std::size_t>(j)] = k;
        j = f.parent[static_cast<std::size_t>(j)];
        assert(j != kInvalidVid);
      }
      while (len > 0) stack[--top] = path[--len];
    }

    // Sparse triangular solve over the pattern + rank-1 pivot updates.
    for (std::size_t t = top; t < static_cast<std::size_t>(n); ++t) {
      const vid_t j = stack[t];
      const std::size_t sj = static_cast<std::size_t>(j);
      const double ljj = f.values[static_cast<std::size_t>(f.colptr[sj])];
      const double lkj = x[sj] / ljj;
      x[sj] = 0.0;
      for (eid_t p = f.colptr[sj] + 1; p < cursor[sj]; ++p) {
        x[static_cast<std::size_t>(f.rowind[static_cast<std::size_t>(p)])] -=
            f.values[static_cast<std::size_t>(p)] * lkj;
      }
      d -= lkj * lkj;
      const eid_t p = cursor[sj]++;
      f.rowind[static_cast<std::size_t>(p)] = k;
      f.values[static_cast<std::size_t>(p)] = lkj;
    }

    if (d <= 0.0) {
      out.ok = false;
      out.failed_column = k;
      return out;
    }
    const eid_t p = cursor[static_cast<std::size_t>(k)]++;
    f.rowind[static_cast<std::size_t>(p)] = k;
    f.values[static_cast<std::size_t>(p)] = std::sqrt(d);
  }

  out.ok = true;
  return out;
}

void CholeskyFactor::solve_lower(std::span<double> b) const {
  for (vid_t j = 0; j < n; ++j) {
    const std::size_t sj = static_cast<std::size_t>(j);
    b[sj] /= values[static_cast<std::size_t>(colptr[sj])];
    for (eid_t p = colptr[sj] + 1; p < colptr[sj + 1]; ++p) {
      b[static_cast<std::size_t>(rowind[static_cast<std::size_t>(p)])] -=
          values[static_cast<std::size_t>(p)] * b[sj];
    }
  }
}

void CholeskyFactor::solve_upper(std::span<double> b) const {
  for (vid_t j = n; j-- > 0;) {
    const std::size_t sj = static_cast<std::size_t>(j);
    double s = b[sj];
    for (eid_t p = colptr[sj] + 1; p < colptr[sj + 1]; ++p) {
      s -= values[static_cast<std::size_t>(p)] *
           b[static_cast<std::size_t>(rowind[static_cast<std::size_t>(p)])];
    }
    b[sj] = s / values[static_cast<std::size_t>(colptr[sj])];
  }
}

void CholeskyFactor::solve(std::span<double> b) const {
  solve_lower(b);
  solve_upper(b);
}

}  // namespace mgp
