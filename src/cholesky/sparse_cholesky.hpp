// Numeric simplicial sparse Cholesky factorisation.
//
// Figure 5 scores orderings by *symbolic* operation counts; this module
// closes the loop by actually factorising: an up-looking column Cholesky
// (CSparse-style, driven by elimination-tree reachability), plus the
// triangular solves a direct solver needs.  It serves three purposes:
//   * end-to-end validation — the numeric factor's nonzero structure must
//     match symbolic_cholesky() exactly (asserted in tests),
//   * the direct-solver example (examples/direct_solver.cpp),
//   * measured factorisation time per ordering (bench/figH_factor_time),
//     turning Figure 5's op counts into wall-clock evidence.
//
// The matrix is held in symmetric CSC form (lower triangle including the
// diagonal).  Only SPD matrices factorise; factorize() reports failure on
// a non-positive pivot.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "support/types.hpp"

namespace mgp {

/// Symmetric positive-definite matrix, lower triangle in compressed sparse
/// column form.  Row indices within each column are strictly increasing and
/// start with the diagonal entry.
struct SymmetricMatrix {
  vid_t n = 0;
  std::vector<eid_t> colptr;   ///< size n+1
  std::vector<vid_t> rowind;   ///< row indices, diagonal first per column
  std::vector<double> values;

  /// y += A x using symmetry (both triangles applied).  For residual checks.
  void multiply_add(std::span<const double> x, std::span<double> y) const;
};

/// Builds the (shifted) graph Laplacian L + shift*I as a SymmetricMatrix —
/// the standard SPD model problem on a mesh (shift > 0 makes it definite).
SymmetricMatrix laplacian_matrix(const Graph& g, double shift = 1.0);

/// Applies a fill-reducing ordering: returns P A P^T where new vertex i is
/// old vertex new_to_old[i].
SymmetricMatrix permute_matrix(const SymmetricMatrix& a,
                               std::span<const vid_t> new_to_old);

/// Cholesky factor L (A = L L^T), same CSC layout (diagonal first).
struct CholeskyFactor {
  vid_t n = 0;
  std::vector<eid_t> colptr;
  std::vector<vid_t> rowind;
  std::vector<double> values;
  std::vector<vid_t> parent;  ///< elimination tree used for the factorisation

  std::int64_t nnz() const { return static_cast<std::int64_t>(rowind.size()); }

  /// Solves L y = b in place.
  void solve_lower(std::span<double> b) const;
  /// Solves L^T x = y in place.
  void solve_upper(std::span<double> b) const;
  /// Full solve A x = b (b overwritten with x).
  void solve(std::span<double> b) const;
};

struct CholeskyResult {
  bool ok = false;            ///< false: matrix not positive definite
  vid_t failed_column = kInvalidVid;
  CholeskyFactor factor;
};

/// Up-looking numeric factorisation.  O(flops(L)) time, O(nnz(L)) memory.
CholeskyResult cholesky_factorize(const SymmetricMatrix& a);

}  // namespace mgp
