#include "graph/generators.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <stdexcept>

#include "graph/builder.hpp"
#include "geom/delaunay.hpp"
#include "graph/components.hpp"
#include "graph/permute.hpp"

namespace mgp {

Graph path_graph(vid_t n) {
  GraphBuilder b(n);
  for (vid_t i = 0; i + 1 < n; ++i) b.add_edge(i, i + 1);
  return std::move(b).build();
}

Graph cycle_graph(vid_t n) {
  if (n < 3) throw std::invalid_argument("cycle_graph: need n >= 3");
  GraphBuilder b(n);
  for (vid_t i = 0; i < n; ++i) b.add_edge(i, (i + 1) % n);
  return std::move(b).build();
}

Graph star_graph(vid_t n) {
  GraphBuilder b(n);
  for (vid_t i = 1; i < n; ++i) b.add_edge(0, i);
  return std::move(b).build();
}

Graph complete_graph(vid_t n) {
  GraphBuilder b(n);
  for (vid_t i = 0; i < n; ++i)
    for (vid_t j = i + 1; j < n; ++j) b.add_edge(i, j);
  return std::move(b).build();
}

Graph empty_graph(vid_t n) { return GraphBuilder(n).build(); }

Graph complete_bipartite(vid_t a, vid_t b) {
  GraphBuilder gb(a + b);
  for (vid_t i = 0; i < a; ++i)
    for (vid_t j = 0; j < b; ++j) gb.add_edge(i, a + j);
  return std::move(gb).build();
}

namespace {

inline vid_t idx2(vid_t x, vid_t y, vid_t nx) { return y * nx + x; }
inline vid_t idx3(vid_t x, vid_t y, vid_t z, vid_t nx, vid_t ny) {
  return (z * ny + y) * nx + x;
}

}  // namespace

Graph grid2d(vid_t nx, vid_t ny) {
  GraphBuilder b(nx * ny);
  for (vid_t y = 0; y < ny; ++y) {
    for (vid_t x = 0; x < nx; ++x) {
      if (x + 1 < nx) b.add_edge(idx2(x, y, nx), idx2(x + 1, y, nx));
      if (y + 1 < ny) b.add_edge(idx2(x, y, nx), idx2(x, y + 1, nx));
    }
  }
  return std::move(b).build();
}

Graph stencil9(vid_t nx, vid_t ny) {
  GraphBuilder b(nx * ny);
  for (vid_t y = 0; y < ny; ++y) {
    for (vid_t x = 0; x < nx; ++x) {
      if (x + 1 < nx) b.add_edge(idx2(x, y, nx), idx2(x + 1, y, nx));
      if (y + 1 < ny) b.add_edge(idx2(x, y, nx), idx2(x, y + 1, nx));
      if (x + 1 < nx && y + 1 < ny) b.add_edge(idx2(x, y, nx), idx2(x + 1, y + 1, nx));
      if (x > 0 && y + 1 < ny) b.add_edge(idx2(x, y, nx), idx2(x - 1, y + 1, nx));
    }
  }
  return std::move(b).build();
}

Graph fem2d_tri(vid_t nx, vid_t ny, std::uint64_t seed) {
  Rng rng(seed);
  GraphBuilder b(nx * ny);
  for (vid_t y = 0; y < ny; ++y) {
    for (vid_t x = 0; x < nx; ++x) {
      if (x + 1 < nx) b.add_edge(idx2(x, y, nx), idx2(x + 1, y, nx));
      if (y + 1 < ny) b.add_edge(idx2(x, y, nx), idx2(x, y + 1, nx));
      if (x + 1 < nx && y + 1 < ny) {
        // Each cell is split into two triangles by one of its diagonals,
        // chosen at random, as an unstructured mesher would.
        if (rng.next_u64() & 1) {
          b.add_edge(idx2(x, y, nx), idx2(x + 1, y + 1, nx));
        } else {
          b.add_edge(idx2(x + 1, y, nx), idx2(x, y + 1, nx));
        }
      }
    }
  }
  return std::move(b).build();
}

Graph lshape2d(vid_t n, std::uint64_t seed) {
  // An L-shaped domain: the n-by-n grid minus the open upper-right quadrant,
  // triangulated with alternating diagonals ("graded" effect approximated by
  // doubling resolution near the re-entrant corner via an extra ring of
  // edges).  Vertices in the removed quadrant are dropped and the rest
  // renumbered densely.
  Rng rng(seed);
  const vid_t half = n / 2;
  std::vector<vid_t> id(static_cast<std::size_t>(n) * static_cast<std::size_t>(n),
                        kInvalidVid);
  vid_t count = 0;
  auto inside = [&](vid_t x, vid_t y) { return !(x > half && y > half); };
  for (vid_t y = 0; y < n; ++y)
    for (vid_t x = 0; x < n; ++x)
      if (inside(x, y)) id[static_cast<std::size_t>(idx2(x, y, n))] = count++;

  GraphBuilder b(count);
  for (vid_t y = 0; y < n; ++y) {
    for (vid_t x = 0; x < n; ++x) {
      if (!inside(x, y)) continue;
      vid_t u = id[static_cast<std::size_t>(idx2(x, y, n))];
      if (x + 1 < n && inside(x + 1, y))
        b.add_edge(u, id[static_cast<std::size_t>(idx2(x + 1, y, n))]);
      if (y + 1 < n && inside(x, y + 1))
        b.add_edge(u, id[static_cast<std::size_t>(idx2(x, y + 1, n))]);
      if (x + 1 < n && y + 1 < n && inside(x + 1, y + 1) && inside(x + 1, y) &&
          inside(x, y + 1)) {
        if (rng.next_u64() & 1) {
          b.add_edge(u, id[static_cast<std::size_t>(idx2(x + 1, y + 1, n))]);
        } else {
          b.add_edge(id[static_cast<std::size_t>(idx2(x + 1, y, n))],
                     id[static_cast<std::size_t>(idx2(x, y + 1, n))]);
        }
      }
    }
  }
  return std::move(b).build();
}

Graph grid3d(vid_t nx, vid_t ny, vid_t nz) {
  GraphBuilder b(nx * ny * nz);
  for (vid_t z = 0; z < nz; ++z) {
    for (vid_t y = 0; y < ny; ++y) {
      for (vid_t x = 0; x < nx; ++x) {
        vid_t u = idx3(x, y, z, nx, ny);
        if (x + 1 < nx) b.add_edge(u, idx3(x + 1, y, z, nx, ny));
        if (y + 1 < ny) b.add_edge(u, idx3(x, y + 1, z, nx, ny));
        if (z + 1 < nz) b.add_edge(u, idx3(x, y, z + 1, nx, ny));
      }
    }
  }
  return std::move(b).build();
}

Graph grid3d_27(vid_t nx, vid_t ny, vid_t nz) {
  GraphBuilder b(nx * ny * nz);
  for (vid_t z = 0; z < nz; ++z) {
    for (vid_t y = 0; y < ny; ++y) {
      for (vid_t x = 0; x < nx; ++x) {
        vid_t u = idx3(x, y, z, nx, ny);
        // Emit each undirected edge once by only linking to lexicographically
        // later neighbours.
        for (vid_t dz = 0; dz <= 1; ++dz) {
          for (vid_t dy = -1; dy <= 1; ++dy) {
            for (vid_t dx = -1; dx <= 1; ++dx) {
              if (dz == 0 && (dy < 0 || (dy == 0 && dx <= 0))) continue;
              vid_t X = x + dx, Y = y + dy, Z = z + dz;
              if (X < 0 || X >= nx || Y < 0 || Y >= ny || Z < 0 || Z >= nz) continue;
              b.add_edge(u, idx3(X, Y, Z, nx, ny));
            }
          }
        }
      }
    }
  }
  return std::move(b).build();
}

Graph fem3d_tet(vid_t nx, vid_t ny, vid_t nz, std::uint64_t seed) {
  Rng rng(seed);
  GraphBuilder b(nx * ny * nz);
  // Split every grid cube into six tetrahedra sharing one of its four main
  // diagonals (chosen at random per cube); connect all tet edges.  The tet
  // edges of such a split are: the 12 cube edges, the 2 face diagonals per
  // face that touch the chosen main diagonal's endpoints, and the main
  // diagonal itself.  We approximate by adding the cube edges plus, per
  // face, the diagonal incident to the chosen corner, plus the main
  // diagonal — which yields the correct edge set for a Kuhn-type split.
  for (vid_t z = 0; z < nz; ++z) {
    for (vid_t y = 0; y < ny; ++y) {
      for (vid_t x = 0; x < nx; ++x) {
        vid_t u = idx3(x, y, z, nx, ny);
        if (x + 1 < nx) b.add_edge(u, idx3(x + 1, y, z, nx, ny));
        if (y + 1 < ny) b.add_edge(u, idx3(x, y + 1, z, nx, ny));
        if (z + 1 < nz) b.add_edge(u, idx3(x, y, z + 1, nx, ny));
        if (x + 1 < nx && y + 1 < ny && z + 1 < nz) {
          // Corners of the cube with origin (x,y,z).
          auto c = [&](vid_t dx, vid_t dy, vid_t dz) {
            return idx3(x + dx, y + dy, z + dz, nx, ny);
          };
          // Random main diagonal: pick corner pair ((0,0,0)-(1,1,1)) or one
          // of the three alternatives, then add the face diagonals through
          // its endpoints.
          switch (rng.next_below(4)) {
            case 0:
              b.add_edge(c(0, 0, 0), c(1, 1, 1));
              b.add_edge(c(0, 0, 0), c(1, 1, 0));
              b.add_edge(c(0, 0, 0), c(1, 0, 1));
              b.add_edge(c(0, 0, 0), c(0, 1, 1));
              break;
            case 1:
              b.add_edge(c(1, 0, 0), c(0, 1, 1));
              b.add_edge(c(1, 0, 0), c(0, 1, 0));
              b.add_edge(c(1, 0, 0), c(0, 0, 1));
              b.add_edge(c(1, 0, 0), c(1, 1, 1));
              break;
            case 2:
              b.add_edge(c(0, 1, 0), c(1, 0, 1));
              b.add_edge(c(0, 1, 0), c(1, 1, 1));
              b.add_edge(c(0, 1, 0), c(0, 0, 1));
              b.add_edge(c(0, 1, 0), c(1, 0, 0));
              break;
            default:
              b.add_edge(c(0, 0, 1), c(1, 1, 0));
              b.add_edge(c(0, 0, 1), c(1, 0, 0));
              b.add_edge(c(0, 0, 1), c(0, 1, 0));
              b.add_edge(c(0, 0, 1), c(1, 1, 1));
              break;
          }
        }
      }
    }
  }
  return std::move(b).build();
}

Graph power_grid(vid_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> px(static_cast<std::size_t>(n)), py(static_cast<std::size_t>(n));
  for (vid_t i = 0; i < n; ++i) {
    px[static_cast<std::size_t>(i)] = rng.next_double();
    py[static_cast<std::size_t>(i)] = rng.next_double();
  }
  // Spatial hashing: bucket side chosen so buckets hold O(1) points.
  const vid_t cells = std::max<vid_t>(1, static_cast<vid_t>(std::sqrt(double(n))));
  const double cell = 1.0 / cells;
  std::map<std::pair<vid_t, vid_t>, std::vector<vid_t>> grid;
  auto cell_of = [&](double v) {
    return std::min<vid_t>(cells - 1, static_cast<vid_t>(v / cell));
  };

  GraphBuilder b(n);
  grid[{cell_of(px[0]), cell_of(py[0])}].push_back(0);
  for (vid_t i = 1; i < n; ++i) {
    // Nearest earlier point, searched ring by ring around i's bucket.
    vid_t cx = cell_of(px[static_cast<std::size_t>(i)]);
    vid_t cy = cell_of(py[static_cast<std::size_t>(i)]);
    vid_t best = kInvalidVid;
    double best_d2 = 1e300;
    for (vid_t ring = 0; ring < cells; ++ring) {
      for (vid_t yy = cy - ring; yy <= cy + ring; ++yy) {
        for (vid_t xx = cx - ring; xx <= cx + ring; ++xx) {
          if (std::max(std::abs(xx - cx), std::abs(yy - cy)) != ring) continue;
          auto it = grid.find({xx, yy});
          if (it == grid.end()) continue;
          for (vid_t j : it->second) {
            double dx = px[static_cast<std::size_t>(i)] - px[static_cast<std::size_t>(j)];
            double dy = py[static_cast<std::size_t>(i)] - py[static_cast<std::size_t>(j)];
            double d2 = dx * dx + dy * dy;
            if (d2 < best_d2) {
              best_d2 = d2;
              best = j;
            }
          }
        }
      }
      // Stop once a hit exists and the next ring cannot beat it.
      if (best != kInvalidVid) {
        double ring_dist = double(ring) * cell;
        if (ring_dist * ring_dist > best_d2) break;
      }
    }
    if (best != kInvalidVid) b.add_edge(i, best);
    grid[{cx, cy}].push_back(i);
  }
  // Shortcut edges (~25% of n): connect each chosen vertex to a random
  // vertex in a nearby bucket, modelling transmission-line redundancy.
  vid_t shortcuts = n / 4;
  for (vid_t s = 0; s < shortcuts; ++s) {
    vid_t u = rng.next_vid(n);
    vid_t cx = cell_of(px[static_cast<std::size_t>(u)]) +
               static_cast<vid_t>(rng.next_below(3)) - 1;
    vid_t cy = cell_of(py[static_cast<std::size_t>(u)]) +
               static_cast<vid_t>(rng.next_below(3)) - 1;
    auto it = grid.find({cx, cy});
    if (it == grid.end() || it->second.empty()) continue;
    vid_t v = it->second[rng.next_below(it->second.size())];
    if (v != u) b.add_edge(u, v);
  }
  return std::move(b).build();
}

Graph finan(vid_t blocks, vid_t block_size, std::uint64_t seed) {
  Rng rng(seed);
  const vid_t n = blocks * block_size;
  GraphBuilder b(n);
  auto vtx = [&](vid_t blk, vid_t i) { return blk * block_size + i; };
  for (vid_t blk = 0; blk < blocks; ++blk) {
    // Dense block (clique) — the LP constraint coupling.
    for (vid_t i = 0; i < block_size; ++i)
      for (vid_t j = i + 1; j < block_size; ++j) b.add_edge(vtx(blk, i), vtx(blk, j));
    // Ring: a handful of bridges to the next block.
    vid_t nxt = (blk + 1) % blocks;
    if (blocks > 1) {
      for (vid_t l = 0; l < std::min<vid_t>(3, block_size); ++l) {
        b.add_edge(vtx(blk, rng.next_vid(block_size)), vtx(nxt, rng.next_vid(block_size)));
      }
    }
  }
  // Binary-tree overlay over block representatives (FINAN512's scenario tree).
  for (vid_t blk = 1; blk < blocks; ++blk) {
    vid_t parent = (blk - 1) / 2;
    b.add_edge(vtx(blk, 0), vtx(parent, 0));
  }
  return std::move(b).build();
}

Graph circuit(vid_t n, std::uint64_t seed) {
  Rng rng(seed);
  if (n < 8) throw std::invalid_argument("circuit: need n >= 8");
  GraphBuilder b(n);
  // Two-thirds of the vertices form a preferential-attachment core (each new
  // vertex attaches to 2 endpoints sampled from the arc list — classic BA),
  // one-third are spliced in as degree-2 buffer chains on random core edges.
  vid_t core = (2 * n) / 3;
  std::vector<vid_t> arc_ends;  // every arc endpoint once => degree-biased urn
  b.add_edge(0, 1);
  arc_ends.push_back(0);
  arc_ends.push_back(1);
  for (vid_t v = 2; v < core; ++v) {
    for (int rep = 0; rep < 2; ++rep) {
      vid_t target = arc_ends[rng.next_below(arc_ends.size())];
      if (target == v) target = static_cast<vid_t>(rng.next_below(v));
      if (target != v) {
        b.add_edge(v, target);
        arc_ends.push_back(v);
        arc_ends.push_back(target);
      }
    }
  }
  // Buffer chains: route chains of length 2-4 between random core pairs.
  vid_t next = core;
  while (next < n) {
    vid_t len = 2 + static_cast<vid_t>(rng.next_below(3));
    len = std::min<vid_t>(len, n - next);
    vid_t a = rng.next_vid(core);
    vid_t c = rng.next_vid(core);
    vid_t prev = a;
    for (vid_t k = 0; k < len; ++k) {
      b.add_edge(prev, next);
      prev = next;
      ++next;
    }
    if (prev != c) b.add_edge(prev, c);
  }
  return std::move(b).build();
}

Graph random_geometric(vid_t n, double avg_degree, std::uint64_t seed) {
  Rng rng(seed);
  // E[degree] = n * pi * r^2  =>  r = sqrt(avg_degree / (pi n)).
  const double r = std::sqrt(avg_degree / (3.14159265358979 * double(n)));
  std::vector<double> px(static_cast<std::size_t>(n)), py(static_cast<std::size_t>(n));
  for (vid_t i = 0; i < n; ++i) {
    px[static_cast<std::size_t>(i)] = rng.next_double();
    py[static_cast<std::size_t>(i)] = rng.next_double();
  }
  const vid_t cells = std::max<vid_t>(1, static_cast<vid_t>(1.0 / r));
  const double cell = 1.0 / cells;
  std::map<std::pair<vid_t, vid_t>, std::vector<vid_t>> grid;
  auto cell_of = [&](double v) {
    return std::min<vid_t>(cells - 1, static_cast<vid_t>(v / cell));
  };
  for (vid_t i = 0; i < n; ++i) {
    grid[{cell_of(px[static_cast<std::size_t>(i)]),
          cell_of(py[static_cast<std::size_t>(i)])}]
        .push_back(i);
  }
  GraphBuilder b(n);
  const double r2 = r * r;
  for (vid_t i = 0; i < n; ++i) {
    vid_t cx = cell_of(px[static_cast<std::size_t>(i)]);
    vid_t cy = cell_of(py[static_cast<std::size_t>(i)]);
    for (vid_t yy = cy - 1; yy <= cy + 1; ++yy) {
      for (vid_t xx = cx - 1; xx <= cx + 1; ++xx) {
        auto it = grid.find({xx, yy});
        if (it == grid.end()) continue;
        for (vid_t j : it->second) {
          if (j <= i) continue;
          double dx = px[static_cast<std::size_t>(i)] - px[static_cast<std::size_t>(j)];
          double dy = py[static_cast<std::size_t>(i)] - py[static_cast<std::size_t>(j)];
          if (dx * dx + dy * dy <= r2) b.add_edge(i, j);
        }
      }
    }
  }
  Graph g = std::move(b).build();
  // Return the largest component so downstream algorithms see a connected graph.
  Components cc = connected_components(g);
  if (cc.count <= 1) return g;
  std::vector<vid_t> sizes(static_cast<std::size_t>(cc.count), 0);
  for (vid_t v = 0; v < g.num_vertices(); ++v) ++sizes[static_cast<std::size_t>(cc.comp[static_cast<std::size_t>(v)])];
  vid_t big = static_cast<vid_t>(std::max_element(sizes.begin(), sizes.end()) - sizes.begin());
  std::vector<vid_t> keep;
  for (vid_t v = 0; v < g.num_vertices(); ++v)
    if (cc.comp[static_cast<std::size_t>(v)] == big) keep.push_back(v);
  return extract_subgraph(g, keep).graph;
}

namespace {

vid_t scaled(vid_t v, double s) { return std::max<vid_t>(2, static_cast<vid_t>(std::lround(double(v) * s))); }

}  // namespace

std::vector<NamedGraph> paper_suite(SuiteKind kind, double scale, std::uint64_t seed) {
  // Linear mesh dimensions scale with sqrt (2D) / cbrt (3D) of the vertex
  // scale factor so vertex counts scale ~linearly with `scale`.
  const double s2 = std::sqrt(scale);
  const double s3 = std::cbrt(scale);
  Rng seeder(seed);
  auto sd = [&]() { return seeder.next_u64(); };

  std::vector<NamedGraph> out;
  auto add = [&](std::string name, std::string desc, std::string gen, Graph g) {
    out.push_back(NamedGraph{std::move(name), std::move(desc), std::move(gen), std::move(g)});
  };

  const bool tables = kind == SuiteKind::kTables;
  const bool figures = kind == SuiteKind::kFigures;
  const bool ordering = kind == SuiteKind::kOrdering;

  // Smaller matrices appear only in the ordering experiment (paper Fig. 5
  // includes LS34, BC28, BSP10, BC33, BC29 that Tables 2-4 omit).
  if (ordering) {
    add("LS34", "Graded L-shape pattern", "lshape2d", lshape2d(scaled(85, s2), sd()));
    add("BC28", "Solid element model", "grid3d_27", grid3d_27(scaled(17, s3), scaled(16, s3), scaled(16, s3)));
    add("BSP10", "Eastern US power network", "power_grid", power_grid(scaled(5300, scale), sd()));
    add("BC33", "3D Stiffness matrix", "grid3d_27", grid3d_27(scaled(21, s3), scaled(21, s3), scaled(20, s3)));
    add("BC29", "3D Stiffness matrix", "grid3d_27", grid3d_27(scaled(25, s3), scaled(24, s3), scaled(23, s3)));
  }

  if (tables || ordering) {
    // A true unstructured triangulation (Delaunay of random points), like
    // the real 4ELT airfoil mesh.
    add("4ELT", "2D Finite element mesh", "delaunay_mesh",
        delaunay_mesh(scaled(15606, scale), sd()).graph);
  }
  if (figures || ordering) {
    add("BC30", "3D Stiffness matrix", "grid3d_27", grid3d_27(scaled(31, s3), scaled(31, s3), scaled(29, s3)));
  }
  if (tables || ordering) {
    add("BC31", "3D Stiffness matrix", "fem3d_tet", fem3d_tet(scaled(33, s3), scaled(33, s3), scaled(33, s3), sd()));
  }
  if (tables || figures || ordering) {
    add("BC32", "3D Stiffness matrix", "grid3d_27", grid3d_27(scaled(36, s3), scaled(35, s3), scaled(35, s3)));
    add("CY93", "3D Stiffness matrix", "grid3d_27", grid3d_27(scaled(36, s3), scaled(36, s3), scaled(35, s3)));
  }
  if (tables || ordering) {
    add("INPR", "3D Stiffness matrix", "grid3d_27", grid3d_27(scaled(37, s3), scaled(36, s3), scaled(35, s3)));
  }
  if (tables || figures || ordering) {
    add("CANT", "3D Stiffness matrix", "grid3d_27", grid3d_27(scaled(48, s3), scaled(38, s3), scaled(30, s3)));
    add("BRCK", "3D Finite element mesh", "fem3d_tet", fem3d_tet(scaled(40, s3), scaled(40, s3), scaled(39, s3), sd()));
    add("COPT", "3D Finite element mesh", "fem3d_tet", fem3d_tet(scaled(39, s3), scaled(38, s3), scaled(37, s3), sd()));
    add("ROTR", "3D Finite element mesh", "fem3d_tet", fem3d_tet(scaled(47, s3), scaled(46, s3), scaled(46, s3), sd()));
    add("WAVE", "3D Finite element mesh", "fem3d_tet", fem3d_tet(scaled(54, s3), scaled(54, s3), scaled(53, s3), sd()));
  }
  if (tables || figures) {
    add("SHEL", "3D Stiffness matrix", "grid3d_27", grid3d_27(scaled(57, s3), scaled(57, s3), scaled(56, s3)));
    add("TROL", "3D Stiffness matrix", "grid3d_27", grid3d_27(scaled(60, s3), scaled(60, s3), scaled(59, s3)));
  }
  if (ordering) {
    add("SHEL", "3D Stiffness matrix", "grid3d_27", grid3d_27(scaled(44, s3), scaled(44, s3), scaled(43, s3)));
    add("TROLL", "3D Stiffness matrix", "grid3d_27", grid3d_27(scaled(46, s3), scaled(46, s3), scaled(45, s3)));
  }
  if (figures) {
    add("FINC", "Linear programming", "finan", finan(scaled(512, scale), 16, sd()));
    add("LHR", "3D Coefficient matrix", "fem3d_tet", fem3d_tet(scaled(42, s3), scaled(41, s3), scaled(41, s3), sd()));
    add("MAP", "Highway network", "power_grid", power_grid(scaled(267241, scale), sd()));
    add("MEM", "Memory circuit", "circuit", circuit(scaled(17758, scale), sd()));
    add("S38", "Sequential circuit", "circuit", circuit(scaled(22143, scale), sd()));
    add("SHYY", "CFD/Navier-Stokes", "stencil9", stencil9(scaled(277, s2), scaled(276, s2)));
  }
  return out;
}

}  // namespace mgp
