#include "graph/io.hpp"

#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>

#include "graph/builder.hpp"

namespace mgp {
namespace {

/// Hard ceilings for untrusted input.  Vertex ids must fit vid_t; weights
/// get headroom below int64 so level-by-level accumulation (contraction
/// sums weights) cannot reach signed overflow even after ~20 doublings.
constexpr long long kMaxVertices = std::numeric_limits<vid_t>::max();
constexpr long long kMaxWeight = 1LL << 40;

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  std::ostringstream os;
  os << "graph parse error at line " << line << ": " << what;
  throw std::runtime_error(os.str());
}

/// Reads the next non-comment line ('%' or '#' prefixed lines are skipped).
bool next_data_line(std::istream& in, std::string& out, std::size_t& line_no) {
  while (std::getline(in, out)) {
    ++line_no;
    std::size_t i = out.find_first_not_of(" \t\r");
    if (i == std::string::npos) continue;
    if (out[i] == '%' || out[i] == '#') continue;
    return true;
  }
  return false;
}

}  // namespace

Graph read_metis_graph(std::istream& in) {
  std::size_t line_no = 0;
  std::string line;
  if (!next_data_line(in, line, line_no)) fail(line_no, "empty file");
  std::istringstream header(line);
  long long n = 0, m = 0;
  std::string fmt;
  header >> n >> m;
  if (!header) fail(line_no, "expected '<n> <m> [fmt]' header");
  if (header >> fmt) {
    std::string extra;
    if (header >> extra) fail(line_no, "unexpected token after the fmt field");
  } else {
    fmt = "000";
  }
  if (n < 0 || m < 0) fail(line_no, "negative size in header");
  if (n > kMaxVertices) fail(line_no, "vertex count exceeds the 32-bit limit");
  if (fmt.size() > 3 || fmt.find_first_not_of("01") != std::string::npos) {
    fail(line_no, "malformed fmt field (expected up to three 0/1 digits)");
  }
  while (fmt.size() < 3) fmt.insert(fmt.begin(), '0');
  const bool has_vsize = fmt[fmt.size() - 3] == '1';
  const bool has_vwgt = fmt[fmt.size() - 2] == '1';
  const bool has_ewgt = fmt[fmt.size() - 1] == '1';
  if (has_vsize) fail(line_no, "vertex sizes (fmt=1xx) are not supported");

  GraphBuilder b(static_cast<vid_t>(n));
  bool hit_eof = false;
  for (long long u = 0; u < n; ++u) {
    if (!next_data_line(in, line, line_no)) {
      // Trailing isolated vertices may legitimately have no line in some
      // writers; treat missing lines as isolated only at EOF.
      hit_eof = true;
      break;
    }
    std::istringstream row(line);
    if (has_vwgt) {
      long long w;
      if (!(row >> w)) fail(line_no, "missing or non-numeric vertex weight");
      if (w < 0) fail(line_no, "negative vertex weight");
      if (w > kMaxWeight) fail(line_no, "vertex weight too large");
      b.set_vertex_weight(static_cast<vid_t>(u), static_cast<vwt_t>(w));
    }
    long long v;
    while (row >> v) {
      if (v < 1 || v > n) fail(line_no, "neighbour id out of range");
      if (v - 1 == u) fail(line_no, "self-loop");
      long long w = 1;
      if (has_ewgt) {
        if (!(row >> w)) fail(line_no, "missing or non-numeric edge weight");
        if (w <= 0) fail(line_no, "non-positive edge weight");
        if (w > kMaxWeight) fail(line_no, "edge weight too large");
      }
      // Add each undirected edge once (from its smaller endpoint) to avoid
      // double-accumulating weights; format repeats each edge in both rows.
      if (u < v - 1) b.add_edge(static_cast<vid_t>(u), static_cast<vid_t>(v - 1),
                                static_cast<ewt_t>(w));
    }
    // The extraction loop above ends either at end-of-line or on a token
    // that is not a number; only the former is well-formed.
    if (!row.eof()) fail(line_no, "non-numeric token in adjacency list");
  }
  if (!hit_eof && next_data_line(in, line, line_no)) {
    fail(line_no, "more vertex lines than the header's vertex count");
  }
  Graph g = std::move(b).build();
  if (g.num_edges() != static_cast<eid_t>(m)) {
    std::ostringstream os;
    os << "header declared " << m << " edges but file contains " << g.num_edges();
    throw std::runtime_error(os.str());
  }
  return g;
}

Graph read_metis_graph_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open graph file: " + path);
  return read_metis_graph(in);
}

void write_metis_graph(std::ostream& out, const Graph& g) {
  bool any_vwgt = false;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (g.vertex_weight(v) != 1) { any_vwgt = true; break; }
  }
  bool any_ewgt = false;
  for (ewt_t w : g.adjwgt()) {
    if (w != 1) { any_ewgt = true; break; }
  }
  out << g.num_vertices() << ' ' << g.num_edges();
  if (any_vwgt || any_ewgt) {
    out << " 0" << (any_vwgt ? '1' : '0') << (any_ewgt ? '1' : '0');
  }
  out << '\n';
  for (vid_t u = 0; u < g.num_vertices(); ++u) {
    if (any_vwgt) out << g.vertex_weight(u) << ' ';
    auto nbrs = g.neighbors(u);
    auto wgts = g.edge_weights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (i || any_vwgt) out << ' ';
      out << nbrs[i] + 1;
      if (any_ewgt) out << ' ' << wgts[i];
    }
    out << '\n';
  }
}

void write_metis_graph_file(const std::string& path, const Graph& g) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open file for write: " + path);
  write_metis_graph(out, g);
}

Graph read_matrix_market(std::istream& in) {
  std::size_t line_no = 0;
  std::string line;
  // Banner is optional for our purposes but validated when present.
  if (!std::getline(in, line)) fail(1, "empty file");
  ++line_no;
  bool pattern = line.find("pattern") != std::string::npos;
  if (line.rfind("%%MatrixMarket", 0) == 0) {
    if (line.find("coordinate") == std::string::npos) {
      fail(line_no, "only coordinate MatrixMarket files are supported");
    }
    if (line.find("complex") != std::string::npos) {
      fail(line_no, "complex MatrixMarket files are not supported");
    }
  } else {
    // No banner: treat the first line as data by rewinding via re-parse.
    in.seekg(0);
    line_no = 0;
  }
  if (!next_data_line(in, line, line_no)) fail(line_no, "missing size line");
  std::istringstream szl(line);
  long long rows = 0, cols = 0, nnz = 0;
  szl >> rows >> cols >> nnz;
  if (!szl || rows <= 0 || cols <= 0 || nnz < 0) fail(line_no, "bad size line");
  if (rows != cols) fail(line_no, "matrix must be square to define a graph");
  if (rows > kMaxVertices) fail(line_no, "dimension exceeds the 32-bit limit");
  {
    std::string extra;
    if (szl >> extra) fail(line_no, "unexpected token after the size line");
  }

  GraphBuilder b(static_cast<vid_t>(rows));
  for (long long k = 0; k < nnz; ++k) {
    if (!next_data_line(in, line, line_no)) fail(line_no, "unexpected EOF in entries");
    std::istringstream ent(line);
    long long i = 0, j = 0;
    double val = 1.0;
    ent >> i >> j;
    if (!ent) fail(line_no, "bad entry line");
    if (!pattern) {
      // Value ignored (the pattern defines the graph), but a present token
      // must at least parse as a number; a missing one is tolerated since
      // some writers emit pattern-style lines under a real banner.
      if (!(ent >> val) && !ent.eof()) fail(line_no, "non-numeric value");
    }
    std::string extra;
    if (ent >> extra) fail(line_no, "trailing token on entry line");
    if (i < 1 || i > rows || j < 1 || j > cols) fail(line_no, "index out of range");
    if (i != j) {
      vid_t u = static_cast<vid_t>(i - 1), v = static_cast<vid_t>(j - 1);
      // Symmetric files store one triangle; general files may store both.
      // GraphBuilder accumulates duplicates, so normalise to (min,max) and
      // let build() merge — but merging would *sum* weights of (u,v) and
      // (v,u) duplicates.  Since all weights are 1 here, clamp via a final
      // unit-weight rebuild instead: record only u>j direction... simplest
      // correct approach: add every off-diagonal once; duplicates merge to
      // weight >= 1 and we reset weights to 1 afterwards.
      b.add_edge(u, v, 1);
    }
  }
  if (next_data_line(in, line, line_no)) {
    fail(line_no, "more entries than the size line declared");
  }
  Graph g = std::move(b).build();
  // Normalise accumulated duplicate weights back to unit weights.
  std::vector<eid_t> xadj(g.xadj().begin(), g.xadj().end());
  std::vector<vid_t> adjncy(g.adjncy().begin(), g.adjncy().end());
  std::vector<vwt_t> vwgt(g.vwgt().begin(), g.vwgt().end());
  std::vector<ewt_t> adjwgt(adjncy.size(), 1);
  return Graph(std::move(xadj), std::move(adjncy), std::move(vwgt), std::move(adjwgt));
}

Graph read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open MatrixMarket file: " + path);
  return read_matrix_market(in);
}

}  // namespace mgp
