// Incremental construction of CSR graphs from edge lists.
//
// Generators, file readers, and tests all build graphs through this class:
// it deduplicates parallel edges (summing weights), drops self-loops, and
// symmetrises, so the resulting Graph always satisfies Graph::validate().
#pragma once

#include <vector>

#include "graph/csr.hpp"
#include "support/types.hpp"

namespace mgp {

class GraphBuilder {
 public:
  /// Begins a graph with n vertices of unit weight.
  explicit GraphBuilder(vid_t n);

  vid_t num_vertices() const { return n_; }

  /// Sets the weight of vertex u (default 1).
  void set_vertex_weight(vid_t u, vwt_t w);

  /// Adds undirected edge {u, v} with weight w.  Self-loops are ignored.
  /// Adding the same pair twice accumulates the weight.
  void add_edge(vid_t u, vid_t v, ewt_t w = 1);

  /// Finalises into a validated CSR graph.  The builder is consumed.
  Graph build() &&;

 private:
  vid_t n_;
  std::vector<vwt_t> vwgt_;
  // One (neighbor, weight) record per direction; deduplicated in build().
  std::vector<vid_t> src_;
  std::vector<vid_t> dst_;
  std::vector<ewt_t> wgt_;
};

}  // namespace mgp
