// Weighted undirected graph in compressed-sparse-row (CSR) form.
//
// This is the single graph representation used by every phase of the
// multilevel algorithm.  Both directions of each undirected edge are stored
// (as in METIS/Chaco), so adjacency iteration is a contiguous scan and the
// structure doubles as the symmetric sparse-matrix pattern used by the
// ordering experiments.
//
// Weights: vertices carry weights that accumulate under contraction (a
// multinode weighs the sum of its constituents); edges carry weights that
// accumulate when parallel edges merge.  Section 3.1: with these rules "the
// edge-cut of the partition in a coarser graph will be equal to the edge-cut
// of the same partition in the finer graph."
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "support/types.hpp"

namespace mgp {

class Graph {
 public:
  Graph() = default;

  /// Takes ownership of fully-formed CSR arrays.
  /// Requirements (checked by validate(), cheap asserts in debug):
  ///   xadj.size() == n+1, xadj[0] == 0, xadj non-decreasing,
  ///   adjncy/adjwgt size == xadj[n], symmetric with matching weights,
  ///   no self-loops, vertex weights >= 0, edge weights > 0.
  Graph(std::vector<eid_t> xadj, std::vector<vid_t> adjncy,
        std::vector<vwt_t> vwgt, std::vector<ewt_t> adjwgt);

  /// Number of vertices.
  vid_t num_vertices() const { return n_; }
  /// Number of undirected edges (adjacency slots / 2).
  eid_t num_edges() const { return static_cast<eid_t>(adjncy_.size()) / 2; }
  /// Number of directed adjacency slots (= 2 * num_edges()).
  eid_t num_arcs() const { return static_cast<eid_t>(adjncy_.size()); }

  /// Degree of u (number of distinct neighbours).
  vid_t degree(vid_t u) const {
    return static_cast<vid_t>(xadj_[static_cast<std::size_t>(u) + 1] -
                              xadj_[static_cast<std::size_t>(u)]);
  }

  /// Neighbour ids of u.
  std::span<const vid_t> neighbors(vid_t u) const {
    return {adjncy_.data() + xadj_[static_cast<std::size_t>(u)],
            static_cast<std::size_t>(degree(u))};
  }
  /// Weights of u's incident edges, aligned with neighbors(u).
  std::span<const ewt_t> edge_weights(vid_t u) const {
    return {adjwgt_.data() + xadj_[static_cast<std::size_t>(u)],
            static_cast<std::size_t>(degree(u))};
  }

  vwt_t vertex_weight(vid_t u) const { return vwgt_[static_cast<std::size_t>(u)]; }

  /// Sum of all vertex weights (cached).
  vwt_t total_vertex_weight() const { return total_vwgt_; }
  /// Sum of all edge weights, each undirected edge counted once (cached).
  /// This is W(E) in Section 3.1's invariant W(E_{i+1}) = W(E_i) - W(M_i).
  ewt_t total_edge_weight() const { return total_ewgt_; }

  /// Maximum over vertices of the sum of incident edge weights; bounds any
  /// KL gain, so it sizes the bucket queue.
  ewt_t max_weighted_degree() const;

  /// Raw CSR access for kernels that iterate the flat arrays directly.
  std::span<const eid_t> xadj() const { return xadj_; }
  std::span<const vid_t> adjncy() const { return adjncy_; }
  std::span<const ewt_t> adjwgt() const { return adjwgt_; }
  std::span<const vwt_t> vwgt() const { return vwgt_; }

  /// Full structural check (symmetry, weights, sorting-independence).
  /// Returns an empty string when valid, else a description of the first
  /// violation.  O(|E| log d) — intended for tests and debug builds.
  std::string validate() const;

  bool empty() const { return n_ == 0; }

  /// The four CSR arrays, detached from a Graph so their capacity can be
  /// recycled (support/workspace.hpp): buffers move out, get refilled with
  /// a new graph's data, and move back in through the owning constructor —
  /// std::vector moves preserve capacity, so a warm workspace rebuilds
  /// coarse graphs without touching the heap.
  struct Storage {
    std::vector<eid_t> xadj;
    std::vector<vid_t> adjncy;
    std::vector<vwt_t> vwgt;
    std::vector<ewt_t> adjwgt;
  };

  /// Moves the CSR arrays out, leaving *this empty.
  Storage take_storage();

  /// Heap bytes currently reserved by the CSR arrays (capacity, not size).
  std::size_t memory_bytes() const {
    return xadj_.capacity() * sizeof(eid_t) + adjncy_.capacity() * sizeof(vid_t) +
           adjwgt_.capacity() * sizeof(ewt_t) + vwgt_.capacity() * sizeof(vwt_t);
  }

 private:
  vid_t n_ = 0;
  std::vector<eid_t> xadj_;
  std::vector<vid_t> adjncy_;
  std::vector<ewt_t> adjwgt_;
  std::vector<vwt_t> vwgt_;
  vwt_t total_vwgt_ = 0;
  ewt_t total_ewgt_ = 0;
};

}  // namespace mgp
