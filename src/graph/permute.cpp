#include "graph/permute.hpp"

#include <cassert>
#include <stdexcept>

namespace mgp {

Subgraph extract_subgraph(const Graph& g, std::span<const vid_t> vertices) {
  const vid_t n = g.num_vertices();
  std::vector<vid_t> global_to_local(static_cast<std::size_t>(n), kInvalidVid);
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    vid_t v = vertices[i];
    assert(v >= 0 && v < n);
    assert(global_to_local[static_cast<std::size_t>(v)] == kInvalidVid);
    global_to_local[static_cast<std::size_t>(v)] = static_cast<vid_t>(i);
  }

  const std::size_t sn = vertices.size();
  std::vector<eid_t> xadj(sn + 1, 0);
  std::vector<vwt_t> vwgt(sn);
  // Pass 1: count surviving arcs.
  for (std::size_t i = 0; i < sn; ++i) {
    vid_t u = vertices[i];
    vwgt[i] = g.vertex_weight(u);
    eid_t cnt = 0;
    for (vid_t v : g.neighbors(u)) {
      if (global_to_local[static_cast<std::size_t>(v)] != kInvalidVid) ++cnt;
    }
    xadj[i + 1] = xadj[i] + cnt;
  }
  std::vector<vid_t> adjncy(static_cast<std::size_t>(xadj[sn]));
  std::vector<ewt_t> adjwgt(static_cast<std::size_t>(xadj[sn]));
  // Pass 2: fill.
  for (std::size_t i = 0; i < sn; ++i) {
    vid_t u = vertices[i];
    auto nbrs = g.neighbors(u);
    auto wgts = g.edge_weights(u);
    eid_t pos = xadj[i];
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      vid_t lv = global_to_local[static_cast<std::size_t>(nbrs[k])];
      if (lv == kInvalidVid) continue;
      adjncy[static_cast<std::size_t>(pos)] = lv;
      adjwgt[static_cast<std::size_t>(pos)] = wgts[k];
      ++pos;
    }
  }

  Subgraph out{Graph(std::move(xadj), std::move(adjncy), std::move(vwgt),
                     std::move(adjwgt)),
               std::vector<vid_t>(vertices.begin(), vertices.end())};
  return out;
}

Subgraph extract_where(const Graph& g, std::span<const part_t> labels, part_t which) {
  std::vector<vid_t> sel;
  for (vid_t v = 0; v < g.num_vertices(); ++v) {
    if (labels[static_cast<std::size_t>(v)] == which) sel.push_back(v);
  }
  return extract_subgraph(g, sel);
}

void extract_where_into(const Graph& g, std::span<const part_t> labels, part_t which,
                        std::vector<vid_t>& scratch,
                        std::vector<vid_t>& local_to_global, Graph& out) {
  const vid_t n = g.num_vertices();
  local_to_global.clear();
  scratch.assign(static_cast<std::size_t>(n), kInvalidVid);
  for (vid_t v = 0; v < n; ++v) {
    if (labels[static_cast<std::size_t>(v)] == which) {
      scratch[static_cast<std::size_t>(v)] =
          static_cast<vid_t>(local_to_global.size());
      local_to_global.push_back(v);
    }
  }

  const std::size_t sn = local_to_global.size();
  Graph::Storage st = out.take_storage();
  st.xadj.assign(sn + 1, 0);
  st.vwgt.resize(sn);
  // Pass 1: count surviving arcs (mirrors extract_subgraph).
  for (std::size_t i = 0; i < sn; ++i) {
    vid_t u = local_to_global[i];
    st.vwgt[i] = g.vertex_weight(u);
    eid_t cnt = 0;
    for (vid_t v : g.neighbors(u)) {
      if (scratch[static_cast<std::size_t>(v)] != kInvalidVid) ++cnt;
    }
    st.xadj[i + 1] = st.xadj[i] + cnt;
  }
  st.adjncy.resize(static_cast<std::size_t>(st.xadj[sn]));
  st.adjwgt.resize(static_cast<std::size_t>(st.xadj[sn]));
  // Pass 2: fill.
  for (std::size_t i = 0; i < sn; ++i) {
    vid_t u = local_to_global[i];
    auto nbrs = g.neighbors(u);
    auto wgts = g.edge_weights(u);
    eid_t pos = st.xadj[i];
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      vid_t lv = scratch[static_cast<std::size_t>(nbrs[k])];
      if (lv == kInvalidVid) continue;
      st.adjncy[static_cast<std::size_t>(pos)] = lv;
      st.adjwgt[static_cast<std::size_t>(pos)] = wgts[k];
      ++pos;
    }
  }
  out = Graph(std::move(st.xadj), std::move(st.adjncy), std::move(st.vwgt),
              std::move(st.adjwgt));
}

Graph permute_graph(const Graph& g, std::span<const vid_t> new_to_old) {
  const vid_t n = g.num_vertices();
  if (static_cast<vid_t>(new_to_old.size()) != n || !is_permutation(new_to_old)) {
    throw std::invalid_argument("permute_graph: not a permutation of 0..n-1");
  }
  std::vector<vid_t> old_to_new = invert_permutation(new_to_old);

  std::vector<eid_t> xadj(static_cast<std::size_t>(n) + 1, 0);
  std::vector<vwt_t> vwgt(static_cast<std::size_t>(n));
  for (vid_t i = 0; i < n; ++i) {
    vid_t old = new_to_old[static_cast<std::size_t>(i)];
    vwgt[static_cast<std::size_t>(i)] = g.vertex_weight(old);
    xadj[static_cast<std::size_t>(i) + 1] =
        xadj[static_cast<std::size_t>(i)] + g.degree(old);
  }
  std::vector<vid_t> adjncy(static_cast<std::size_t>(xadj[static_cast<std::size_t>(n)]));
  std::vector<ewt_t> adjwgt(adjncy.size());
  for (vid_t i = 0; i < n; ++i) {
    vid_t old = new_to_old[static_cast<std::size_t>(i)];
    auto nbrs = g.neighbors(old);
    auto wgts = g.edge_weights(old);
    eid_t pos = xadj[static_cast<std::size_t>(i)];
    for (std::size_t k = 0; k < nbrs.size(); ++k, ++pos) {
      adjncy[static_cast<std::size_t>(pos)] = old_to_new[static_cast<std::size_t>(nbrs[k])];
      adjwgt[static_cast<std::size_t>(pos)] = wgts[k];
    }
  }
  return Graph(std::move(xadj), std::move(adjncy), std::move(vwgt), std::move(adjwgt));
}

std::vector<vid_t> invert_permutation(std::span<const vid_t> p) {
  std::vector<vid_t> inv(p.size(), kInvalidVid);
  for (std::size_t i = 0; i < p.size(); ++i) {
    inv[static_cast<std::size_t>(p[i])] = static_cast<vid_t>(i);
  }
  return inv;
}

bool is_permutation(std::span<const vid_t> p) {
  std::vector<bool> seen(p.size(), false);
  for (vid_t v : p) {
    if (v < 0 || static_cast<std::size_t>(v) >= p.size() ||
        seen[static_cast<std::size_t>(v)]) {
      return false;
    }
    seen[static_cast<std::size_t>(v)] = true;
  }
  return true;
}

}  // namespace mgp
