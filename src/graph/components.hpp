// Connected-component analysis.
//
// Multilevel bisection assumes (and nested dissection recursion can create)
// graphs with several components; knowing the component structure lets the
// initial-partitioning phase seed growth in the right places and lets tests
// assert generator outputs are connected.
#pragma once

#include <vector>

#include "graph/csr.hpp"
#include "support/types.hpp"

namespace mgp {

struct Components {
  /// comp[v] = component index in [0, count).
  std::vector<vid_t> comp;
  vid_t count = 0;
};

/// Labels connected components with an iterative BFS.  O(|V| + |E|).
Components connected_components(const Graph& g);

/// True iff the graph is connected (or empty).
bool is_connected(const Graph& g);

}  // namespace mgp
