#include "graph/builder.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace mgp {

GraphBuilder::GraphBuilder(vid_t n) : n_(n), vwgt_(static_cast<std::size_t>(n), 1) {}

void GraphBuilder::set_vertex_weight(vid_t u, vwt_t w) {
  assert(u >= 0 && u < n_);
  vwgt_[static_cast<std::size_t>(u)] = w;
}

void GraphBuilder::add_edge(vid_t u, vid_t v, ewt_t w) {
  if (u == v) return;
  if (u < 0 || u >= n_ || v < 0 || v >= n_) {
    throw std::out_of_range("GraphBuilder::add_edge: vertex id out of range");
  }
  if (w <= 0) throw std::invalid_argument("GraphBuilder::add_edge: weight must be positive");
  src_.push_back(u);
  dst_.push_back(v);
  wgt_.push_back(w);
  src_.push_back(v);
  dst_.push_back(u);
  wgt_.push_back(w);
}

Graph GraphBuilder::build() && {
  const std::size_t n = static_cast<std::size_t>(n_);
  const std::size_t arcs = src_.size();

  // Counting sort by source vertex: O(n + arcs), no comparison sort needed.
  std::vector<eid_t> xadj(n + 1, 0);
  for (std::size_t i = 0; i < arcs; ++i) ++xadj[static_cast<std::size_t>(src_[i]) + 1];
  for (std::size_t u = 0; u < n; ++u) xadj[u + 1] += xadj[u];

  std::vector<vid_t> adjncy(arcs);
  std::vector<ewt_t> adjwgt(arcs);
  {
    std::vector<eid_t> cursor(xadj.begin(), xadj.end() - 1);
    for (std::size_t i = 0; i < arcs; ++i) {
      eid_t pos = cursor[static_cast<std::size_t>(src_[i])]++;
      adjncy[static_cast<std::size_t>(pos)] = dst_[i];
      adjwgt[static_cast<std::size_t>(pos)] = wgt_[i];
    }
  }

  // Deduplicate parallel edges per vertex (sort each adjacency row, merge
  // equal neighbours by summing weights), then rebuild compacted arrays.
  std::vector<eid_t> new_xadj(n + 1, 0);
  std::vector<vid_t> new_adjncy;
  std::vector<ewt_t> new_adjwgt;
  new_adjncy.reserve(arcs);
  new_adjwgt.reserve(arcs);
  std::vector<std::pair<vid_t, ewt_t>> row;
  for (std::size_t u = 0; u < n; ++u) {
    row.clear();
    for (eid_t e = xadj[u]; e < xadj[u + 1]; ++e) {
      row.emplace_back(adjncy[static_cast<std::size_t>(e)],
                       adjwgt[static_cast<std::size_t>(e)]);
    }
    std::sort(row.begin(), row.end());
    for (std::size_t i = 0; i < row.size();) {
      vid_t v = row[i].first;
      ewt_t w = 0;
      while (i < row.size() && row[i].first == v) w += row[i++].second;
      new_adjncy.push_back(v);
      new_adjwgt.push_back(w);
    }
    new_xadj[u + 1] = static_cast<eid_t>(new_adjncy.size());
  }

  return Graph(std::move(new_xadj), std::move(new_adjncy), std::move(vwgt_),
               std::move(new_adjwgt));
}

}  // namespace mgp
