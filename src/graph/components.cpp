#include "graph/components.hpp"

namespace mgp {

Components connected_components(const Graph& g) {
  const vid_t n = g.num_vertices();
  Components result;
  result.comp.assign(static_cast<std::size_t>(n), kInvalidVid);
  std::vector<vid_t> queue;
  queue.reserve(static_cast<std::size_t>(n));
  for (vid_t s = 0; s < n; ++s) {
    if (result.comp[static_cast<std::size_t>(s)] != kInvalidVid) continue;
    vid_t label = result.count++;
    result.comp[static_cast<std::size_t>(s)] = label;
    queue.clear();
    queue.push_back(s);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      vid_t u = queue[head];
      for (vid_t v : g.neighbors(u)) {
        if (result.comp[static_cast<std::size_t>(v)] == kInvalidVid) {
          result.comp[static_cast<std::size_t>(v)] = label;
          queue.push_back(v);
        }
      }
    }
  }
  return result;
}

bool is_connected(const Graph& g) {
  if (g.num_vertices() == 0) return true;
  return connected_components(g).count == 1;
}

}  // namespace mgp
