// Partition-vector and permutation I/O (METIS-compatible).
//
// METIS tools exchange results as plain text, one integer per line in
// vertex order: part ids for partitions (`graph.part.k` files), new labels
// for orderings (`graph.iperm`).  These readers/writers make mgp's outputs
// interchangeable with that ecosystem and give the CLI examples a stable
// format.
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "support/types.hpp"

namespace mgp {

/// Writes one part id per line.
void write_partition(std::ostream& out, std::span<const part_t> part);
void write_partition_file(const std::string& path, std::span<const part_t> part);

/// Reads a partition of exactly n vertices; throws std::runtime_error on
/// malformed input, wrong count, or ids outside [0, k) when k > 0.
std::vector<part_t> read_partition(std::istream& in, vid_t n, part_t k = 0);
std::vector<part_t> read_partition_file(const std::string& path, vid_t n, part_t k = 0);

/// Writes a permutation (new_to_old), one original vertex id per line.
void write_permutation(std::ostream& out, std::span<const vid_t> perm);
void write_permutation_file(const std::string& path, std::span<const vid_t> perm);

/// Reads and validates a permutation of 0..n-1.
std::vector<vid_t> read_permutation(std::istream& in, vid_t n);
std::vector<vid_t> read_permutation_file(const std::string& path, vid_t n);

}  // namespace mgp
