#include "graph/partition_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "graph/permute.hpp"

namespace mgp {
namespace {

std::vector<long long> read_ints(std::istream& in, std::size_t n,
                                 const char* what) {
  std::vector<long long> vals;
  vals.reserve(n);
  long long v;
  while (vals.size() < n && in >> v) vals.push_back(v);
  if (vals.size() != n) {
    std::ostringstream os;
    os << what << ": expected " << n << " entries, found " << vals.size();
    throw std::runtime_error(os.str());
  }
  // Trailing garbage is an error too (catches off-by-one files).
  if (in >> v) {
    std::ostringstream os;
    os << what << ": more than " << n << " entries";
    throw std::runtime_error(os.str());
  }
  return vals;
}

std::ofstream open_out(const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  return out;
}

std::ifstream open_in(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open: " + path);
  return in;
}

}  // namespace

void write_partition(std::ostream& out, std::span<const part_t> part) {
  for (part_t p : part) out << p << '\n';
}

void write_partition_file(const std::string& path, std::span<const part_t> part) {
  auto out = open_out(path);
  write_partition(out, part);
}

std::vector<part_t> read_partition(std::istream& in, vid_t n, part_t k) {
  auto vals = read_ints(in, static_cast<std::size_t>(n), "partition");
  std::vector<part_t> part(vals.size());
  for (std::size_t i = 0; i < vals.size(); ++i) {
    if (vals[i] < 0 || (k > 0 && vals[i] >= k)) {
      std::ostringstream os;
      os << "partition: entry " << i << " = " << vals[i] << " out of range";
      throw std::runtime_error(os.str());
    }
    part[i] = static_cast<part_t>(vals[i]);
  }
  return part;
}

std::vector<part_t> read_partition_file(const std::string& path, vid_t n, part_t k) {
  auto in = open_in(path);
  return read_partition(in, n, k);
}

void write_permutation(std::ostream& out, std::span<const vid_t> perm) {
  for (vid_t v : perm) out << v << '\n';
}

void write_permutation_file(const std::string& path, std::span<const vid_t> perm) {
  auto out = open_out(path);
  write_permutation(out, perm);
}

std::vector<vid_t> read_permutation(std::istream& in, vid_t n) {
  auto vals = read_ints(in, static_cast<std::size_t>(n), "permutation");
  std::vector<vid_t> perm(vals.size());
  for (std::size_t i = 0; i < vals.size(); ++i) {
    if (vals[i] < 0 || vals[i] >= n) {
      throw std::runtime_error("permutation: entry out of range");
    }
    perm[i] = static_cast<vid_t>(vals[i]);
  }
  if (!is_permutation(perm)) {
    throw std::runtime_error("permutation: not a permutation of 0..n-1");
  }
  return perm;
}

std::vector<vid_t> read_permutation_file(const std::string& path, vid_t n) {
  auto in = open_in(path);
  return read_permutation(in, n);
}

}  // namespace mgp
