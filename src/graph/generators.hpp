// Synthetic graph generators: the reproduction's stand-in for Table 1.
//
// The paper evaluates on Boeing–Harwell / NASA matrices (BCSSTK*, BRACK2,
// CANT, ...) that are not redistributable and are unavailable offline.  Each
// generator below produces a graph family with the same structural profile
// as one class of paper matrices (degree distribution, separator growth,
// presence/absence of geometry, clique content) so every algorithmic code
// path the paper exercises is exercised here too.  DESIGN.md §1.4 documents
// the mapping in full.
//
// All generators are deterministic given their seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "support/rng.hpp"

namespace mgp {

// ---------------------------------------------------------------------------
// Elementary graphs (used heavily by unit tests).
// ---------------------------------------------------------------------------

/// Path 0-1-...-(n-1).
Graph path_graph(vid_t n);
/// Cycle on n >= 3 vertices.
Graph cycle_graph(vid_t n);
/// Star: vertex 0 adjacent to 1..n-1.
Graph star_graph(vid_t n);
/// Complete graph K_n.
Graph complete_graph(vid_t n);
/// n isolated vertices.
Graph empty_graph(vid_t n);
/// Complete bipartite K_{a,b}: vertices 0..a-1 vs a..a+b-1.
Graph complete_bipartite(vid_t a, vid_t b);

// ---------------------------------------------------------------------------
// Mesh / matrix-pattern families (Table 1 stand-ins).
// ---------------------------------------------------------------------------

/// nx-by-ny grid, 5-point stencil.  2D Laplacian pattern.
Graph grid2d(vid_t nx, vid_t ny);

/// nx-by-ny grid, 9-point stencil (adds diagonals).  Structured-CFD pattern;
/// stands in for SHYY161 / banded Navier–Stokes matrices.
Graph stencil9(vid_t nx, vid_t ny);

/// Triangulated nx-by-ny grid: each cell gets one diagonal with a random
/// orientation.  Average degree ~6, planar — 2D finite-element mesh profile
/// (stands in for 4ELT).
Graph fem2d_tri(vid_t nx, vid_t ny, std::uint64_t seed);

/// Graded L-shaped triangulated mesh: an n-by-n triangulated grid with one
/// quadrant removed and cells geometrically refined towards the re-entrant
/// corner (stands in for LSHP3466, "graded L-shape pattern").
Graph lshape2d(vid_t n, std::uint64_t seed);

/// nx-by-ny-by-nz grid, 7-point stencil.  3D Laplacian pattern.
Graph grid3d(vid_t nx, vid_t ny, vid_t nz);

/// nx-by-ny-by-nz grid, 27-point vertex connectivity (all Chebyshev-distance-1
/// neighbours).  This is the vertex-adjacency pattern of trilinear hexahedral
/// stiffness matrices; stands in for BCSSTK30-33, CANT, INPRO1, CYLINDER93,
/// SHELL93, TROLL.
Graph grid3d_27(vid_t nx, vid_t ny, vid_t nz);

/// Tetrahedralised nx-by-ny-by-nz brick: each cube split into 6 tetrahedra
/// around a randomly chosen main diagonal; graph connects vertices sharing a
/// tet edge.  Average degree ~14-18, mildly unstructured — 3D FE-mesh profile
/// (stands in for BRACK2, COPTER2, ROTOR, WAVE, LHR71).
Graph fem3d_tet(vid_t nx, vid_t ny, vid_t nz, std::uint64_t seed);

/// Power-network stand-in (BCSPWR10, MAP): n points in the unit square,
/// spatial spanning tree (each point links to the nearest earlier point via a
/// grid-bucket search) plus a small fraction of short-range shortcut edges.
/// Average degree ~2.5-3.5, huge diameter, tiny separators everywhere — the
/// family where nested dissection orderings do poorly in Fig. 5.
Graph power_grid(vid_t n, std::uint64_t seed);

/// Linear-programming / financial stand-in (FINAN512): `blocks` cliques of
/// `block_size` vertices arranged in a ring, consecutive cliques joined by
/// bridge edges, plus a binary-tree overlay over block representatives.  No
/// geometry, clique-rich — exercises HCM's edge-density machinery.
Graph finan(vid_t blocks, vid_t block_size, std::uint64_t seed);

/// VLSI-circuit stand-in (MEMPLUS, S38584.1): preferential-attachment core
/// (a few very-high-degree nets) with long degree-2 chains spliced in, like
/// buffered nets in a flattened netlist.
Graph circuit(vid_t n, std::uint64_t seed);

/// Random geometric graph: n points in the unit square, edges within the
/// radius that yields the requested expected average degree.  The largest
/// connected component is returned, so the result is always connected.
Graph random_geometric(vid_t n, double avg_degree, std::uint64_t seed);

// ---------------------------------------------------------------------------
// The reproduction's Table 1: a named suite mirroring the paper's test set.
// ---------------------------------------------------------------------------

struct NamedGraph {
  std::string name;           ///< paper's mnemonic (BC30, 4ELT, ...)
  std::string description;    ///< paper's description column
  std::string stands_in_for;  ///< which generator + parameters we used
  Graph graph;
};

/// Which experiments a suite instantiation feeds.
enum class SuiteKind {
  kTables,    ///< the 12-matrix set of Tables 2-4
  kFigures,   ///< the 16-matrix set of Figures 1-4
  kOrdering,  ///< the 18-matrix set of Figure 5
};

/// Builds the suite at a size factor (1.0 ≈ paper-magnitude vertex counts;
/// benches default to a smaller factor so the full harness runs in minutes).
/// Deterministic given the seed.
std::vector<NamedGraph> paper_suite(SuiteKind kind, double scale, std::uint64_t seed);

}  // namespace mgp
