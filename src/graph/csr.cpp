#include "graph/csr.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <sstream>
#include <utility>

namespace mgp {

Graph::Graph(std::vector<eid_t> xadj, std::vector<vid_t> adjncy,
             std::vector<vwt_t> vwgt, std::vector<ewt_t> adjwgt)
    : n_(static_cast<vid_t>(vwgt.size())),
      xadj_(std::move(xadj)),
      adjncy_(std::move(adjncy)),
      adjwgt_(std::move(adjwgt)),
      vwgt_(std::move(vwgt)) {
  assert(xadj_.size() == static_cast<std::size_t>(n_) + 1);
  assert(adjncy_.size() == adjwgt_.size());
  assert(xadj_.empty() || static_cast<std::size_t>(xadj_.back()) == adjncy_.size());
  total_vwgt_ = std::accumulate(vwgt_.begin(), vwgt_.end(), vwt_t{0});
  ewt_t twice = std::accumulate(adjwgt_.begin(), adjwgt_.end(), ewt_t{0});
  total_ewgt_ = twice / 2;
}

Graph::Storage Graph::take_storage() {
  Storage s;
  s.xadj = std::move(xadj_);
  s.adjncy = std::move(adjncy_);
  s.vwgt = std::move(vwgt_);
  s.adjwgt = std::move(adjwgt_);
  n_ = 0;
  total_vwgt_ = 0;
  total_ewgt_ = 0;
  xadj_.clear();
  adjncy_.clear();
  vwgt_.clear();
  adjwgt_.clear();
  return s;
}

ewt_t Graph::max_weighted_degree() const {
  ewt_t best = 0;
  for (vid_t u = 0; u < n_; ++u) {
    ewt_t sum = 0;
    for (ewt_t w : edge_weights(u)) sum += w;
    best = std::max(best, sum);
  }
  return best;
}

std::string Graph::validate() const {
  std::ostringstream err;
  if (xadj_.size() != static_cast<std::size_t>(n_) + 1) {
    err << "xadj has size " << xadj_.size() << ", expected " << n_ + 1;
    return err.str();
  }
  if (!xadj_.empty() && xadj_.front() != 0) return "xadj[0] != 0";
  for (vid_t u = 0; u < n_; ++u) {
    if (xadj_[static_cast<std::size_t>(u) + 1] < xadj_[static_cast<std::size_t>(u)]) {
      err << "xadj decreasing at vertex " << u;
      return err.str();
    }
  }
  if (static_cast<std::size_t>(xadj_.back()) != adjncy_.size()) {
    return "xadj[n] does not match adjncy size";
  }
  if (adjncy_.size() != adjwgt_.size()) return "adjncy/adjwgt size mismatch";
  for (vid_t u = 0; u < n_; ++u) {
    if (vertex_weight(u) < 0) {
      err << "negative vertex weight at " << u;
      return err.str();
    }
    auto nbrs = neighbors(u);
    auto wgts = edge_weights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      vid_t v = nbrs[i];
      if (v < 0 || v >= n_) {
        err << "edge (" << u << ", " << v << ") out of range";
        return err.str();
      }
      if (v == u) {
        err << "self-loop at vertex " << u;
        return err.str();
      }
      if (wgts[i] <= 0) {
        err << "non-positive edge weight on (" << u << ", " << v << ")";
        return err.str();
      }
      // Duplicate neighbour check within u's list.
      for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
        if (nbrs[j] == v) {
          err << "duplicate edge (" << u << ", " << v << ")";
          return err.str();
        }
      }
      // Symmetry: (v, u) must exist with the same weight.
      auto vn = neighbors(v);
      auto vw = edge_weights(v);
      bool found = false;
      for (std::size_t j = 0; j < vn.size(); ++j) {
        if (vn[j] == u) {
          if (vw[j] != wgts[i]) {
            err << "asymmetric weight on edge (" << u << ", " << v << ")";
            return err.str();
          }
          found = true;
          break;
        }
      }
      if (!found) {
        err << "missing reverse edge for (" << u << ", " << v << ")";
        return err.str();
      }
    }
  }
  return {};
}

}  // namespace mgp
