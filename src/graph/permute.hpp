// Vertex renumbering and induced-subgraph extraction.
//
// Recursive bisection and nested dissection both recurse on the subgraphs
// induced by one side of a partition; fill-reducing orderings are vertex
// permutations of the whole graph.  Both operations live here.
#pragma once

#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "support/types.hpp"

namespace mgp {

struct Subgraph {
  Graph graph;
  /// local_to_global[local id] = vertex id in the parent graph.
  std::vector<vid_t> local_to_global;
};

/// Extracts the subgraph induced by `vertices` (each in range, no
/// duplicates).  Edges with both endpoints selected are kept with their
/// weights; vertex weights carry over.  O(|V| + |E|) of the parent.
Subgraph extract_subgraph(const Graph& g, std::span<const vid_t> vertices);

/// Extracts the subgraph induced by {v : labels[v] == which}.
Subgraph extract_where(const Graph& g, std::span<const part_t> labels, part_t which);

/// As extract_where, but into caller-owned storage: `out`'s CSR arrays are
/// recycled (via Graph::take_storage), the local→global map is rebuilt in
/// `local_to_global`, and `scratch` holds the global→local table (sized to
/// the parent's |V|).  No heap allocation once every buffer's capacity has
/// warmed to the subproblem's size.  Produces a graph byte-identical to
/// extract_where's.
void extract_where_into(const Graph& g, std::span<const part_t> labels, part_t which,
                        std::vector<vid_t>& scratch,
                        std::vector<vid_t>& local_to_global, Graph& out);

/// Returns g with vertices renumbered: new vertex i is old vertex
/// new_to_old[i].  new_to_old must be a permutation of 0..n-1.
Graph permute_graph(const Graph& g, std::span<const vid_t> new_to_old);

/// Inverts a permutation: result[p[i]] = i.
std::vector<vid_t> invert_permutation(std::span<const vid_t> p);

/// True iff p is a permutation of 0..n-1.
bool is_permutation(std::span<const vid_t> p);

}  // namespace mgp
