// Graph file I/O.
//
// Two interchange formats are supported so mgp interoperates with the tools
// the paper compares against:
//   * the Chaco/METIS ".graph" format (1-based adjacency lists, optional
//     vertex/edge weights via the fmt flags),
//   * MatrixMarket coordinate format for symmetric sparse matrices (the
//     format in which the Boeing-Harwell test matrices circulate today);
//     the pattern is symmetrised and diagonal entries dropped, exactly the
//     graph the paper derives from each matrix.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/csr.hpp"

namespace mgp {

/// Parses a Chaco/METIS graph file.  Throws std::runtime_error with a
/// line-numbered message on malformed input.
Graph read_metis_graph(std::istream& in);
Graph read_metis_graph_file(const std::string& path);

/// Writes in Chaco/METIS format.  Weights are emitted only when any differ
/// from 1 (fmt code 011/001/010 accordingly).
void write_metis_graph(std::ostream& out, const Graph& g);
void write_metis_graph_file(const std::string& path, const Graph& g);

/// Parses a MatrixMarket coordinate file into the adjacency graph of the
/// symmetrised pattern (self-loops dropped, values ignored, unit weights).
Graph read_matrix_market(std::istream& in);
Graph read_matrix_market_file(const std::string& path);

}  // namespace mgp
