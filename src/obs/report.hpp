// Structured per-run reports for the multilevel pipeline.
//
// The paper's whole evaluation (§4) is per-phase accounting: CTime / ITime
// / RTime / PTime, coarsening ratios, KL pass behaviour.  A RunReport
// captures that accounting *per level and per pass* instead of as four
// opaque totals: every bisection records its coarsening ladder (vertex /
// edge counts, matched fraction, weight conservation), its initial-
// partitioning candidate cuts, and per-KL-pass move / rollback / early-exit
// counts plus bucket-queue peak occupancy — the statistics the KaHIP
// engineering papers attribute their tuning wins to.
//
// Collection is designed to never perturb the run: recording draws no
// randomness, allocates only on report paths, and appends finished
// BisectionReports under a mutex that is taken once per bisection (never in
// a vertex- or edge-frequency loop).  Serialization is JSON via obs/json;
// the output validates against schema/run_report.schema.json (enforced in
// CI).
#pragma once

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "support/timer.hpp"

namespace mgp::obs {

class JsonWriter;

/// Serializes a metrics snapshot as one JSON object (the RunReport's
/// "metrics" member; also the body of the server's /stats response).
void write_metrics_json(JsonWriter& w, const MetricsSnapshot& snap);

/// One Kernighan-Lin pass (refine/kl.cpp fills this when asked).
struct KlPassReport {
  int pass = 0;                      ///< 1-based index within the kl_refine call
  std::int64_t moves_attempted = 0;  ///< moves executed, including later-undone
  std::int64_t moves_kept = 0;       ///< best-prefix moves that survived undo
  std::int64_t moves_undone = 0;     ///< trailing rollback length (sequential
                                     ///< KL); commit-time conflict rejects
                                     ///< for parallel propose/commit rounds
  std::int64_t insertions = 0;       ///< gain-queue insertions this pass
  std::int64_t cut_before = 0;
  std::int64_t cut_after = 0;
  bool early_exit = false;  ///< pass ended by the non-improving window, not
                            ///< by exhausting the queues
  std::int64_t queue_peak = 0;  ///< max combined bucket-queue occupancy
};

/// One graph level of a bisection: coarsening info recorded on the way
/// down, refinement info on the way back up.  Level 0 is the finest graph.
struct LevelReport {
  int level = 0;
  std::int64_t vertices = 0;
  std::int64_t edges = 0;
  std::int64_t total_vertex_weight = 0;  ///< invariant across levels
  /// Fraction of this level's vertices covered by the matching that built
  /// the next-coarser level (0 for the coarsest level).
  double matched_fraction = 0.0;
  std::int64_t cut_before_refine = 0;
  std::int64_t cut_after_refine = 0;
  double balance = 0.0;  ///< max(part weight) / ideal, after refinement
  bool refined = false;  ///< false when refine_period skipped this level
  std::vector<KlPassReport> kl_passes;
};

/// One multilevel bisection (a node of the recursive-bisection tree).
struct BisectionReport {
  std::int64_t n = 0;  ///< |V| of the bisected (sub)graph
  std::int64_t total_weight = 0;
  std::int64_t target0 = 0;
  int num_levels = 0;  ///< coarsening steps performed
  std::int64_t coarsest_n = 0;
  /// Edge-cut of every initial-partitioning candidate (GGP/GGGP trials, or
  /// the single spectral solution), in trial order.
  std::vector<std::int64_t> initpart_candidate_cuts;
  std::int64_t initial_cut = 0;  ///< chosen candidate's cut
  std::vector<LevelReport> levels;  ///< index 0 = finest
  std::int64_t final_cut = 0;
  double final_balance = 0.0;
};

/// A whole run: metadata + phase times + every bisection.  Thread-safe
/// appends; bisections are sorted by a content key at serialization time so
/// the report is stable regardless of pool scheduling.
class RunReport {
 public:
  static constexpr int kVersion = 1;

  std::string tool;    ///< producing binary ("bench_parallel", ...)
  std::string scheme;  ///< describe(cfg): "HEM+GGGP+BKLGR"
  int k = 0;
  int threads = 1;
  std::uint64_t seed = 0;

  /// Appends a finished bisection (thread-safe; once per bisection).
  void add_bisection(BisectionReport&& rep);

  /// Accumulates phase times in the paper's vocabulary (thread-safe).
  void add_phase_times(const PhaseTimers& pt);

  std::size_t num_bisections() const;
  /// Copy of the collected bisections (test/aggregation use).
  std::vector<BisectionReport> bisections() const;
  PhaseTimers phase_times() const;

  /// Serializes the report (schema/run_report.schema.json).  When `metrics`
  /// is non-null its snapshot is embedded under "metrics".
  void write_json(std::ostream& os, const MetricsSnapshot* metrics = nullptr) const;
  std::string to_json(const MetricsSnapshot* metrics = nullptr) const;
  bool write_json_file(const std::string& path,
                       const MetricsSnapshot* metrics = nullptr) const;

 private:
  mutable std::mutex mu_;
  std::vector<BisectionReport> bisections_;
  PhaseTimers phases_;
};

/// The observability context threaded through the pipeline via
/// MultilevelConfig::obs (runtime enable: a null pointer disables
/// everything; tracing additionally requires obs::trace_start()).
struct Obs {
  MetricsRegistry metrics;
  RunReport report;
  /// Collect per-level/per-pass reports.  Metrics counters are always
  /// maintained while an Obs is attached (they are cheap); the structured
  /// report costs a few allocations per bisection and can be turned off
  /// separately.
  bool collect_report = true;

  /// Pre-registered pipeline metrics, so hot paths never pay name interning.
  struct PipelineMetrics {
    MetricsRegistry::Id coarsen_levels;    ///< counter: contractions performed
    MetricsRegistry::Id matched_pairs;     ///< counter
    MetricsRegistry::Id bisections;        ///< counter
    MetricsRegistry::Id kl_passes;         ///< counter
    MetricsRegistry::Id kl_moves;          ///< counter: moves attempted
    MetricsRegistry::Id kl_swapped;        ///< counter: moves kept
    MetricsRegistry::Id kl_rollbacks;      ///< counter: moves undone
    MetricsRegistry::Id kl_insertions;     ///< counter: queue insertions
    MetricsRegistry::Id kl_early_exits;    ///< counter: window-terminated passes
    MetricsRegistry::Id queue_peak;        ///< max gauge: bucket-queue occupancy
    MetricsRegistry::Id refine_parallel_rounds;   ///< counter: propose/commit rounds
    MetricsRegistry::Id refine_conflict_rejects;  ///< counter: stale proposals rejected
    MetricsRegistry::Id kway_direct_levels;       ///< counter: direct-kway ladder levels
    MetricsRegistry::Id kway_rounds;              ///< counter: k-way refine rounds
    MetricsRegistry::Id kway_conflict_rejects;    ///< counter: k-way stale rejects
    MetricsRegistry::Id shrink_pct;        ///< histogram: coarse/fine * 100 per level
    MetricsRegistry::Id coarsen_strategy;  ///< max gauge: CoarsenStrategy last used
    MetricsRegistry::Id coarsen_ad_iters;  ///< counter: AD Jacobi sweeps performed
    MetricsRegistry::Id coarsen_nlevel_pq_updates;  ///< counter: lazy-heap pushes
    MetricsRegistry::Id arena_bytes_peak;  ///< max gauge: workspace footprint peak
    MetricsRegistry::Id arena_reuse_hits;  ///< counter: warm workspace checkouts
    MetricsRegistry::Id arena_workspaces;  ///< counter: workspaces constructed
    MetricsRegistry::Id dyn_repartitions;  ///< counter: delta repartitions served
    MetricsRegistry::Id dyn_fallbacks;     ///< counter: deltas that fell back to
                                           ///< from-scratch direct k-way
    explicit PipelineMetrics(MetricsRegistry& reg);
  } pipeline;

  Obs() : pipeline(metrics) {}
};

}  // namespace mgp::obs
