#include "obs/metrics.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>

namespace mgp::obs {
namespace {

std::uint64_t next_registry_uid() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

// ---- MetricsSnapshot ------------------------------------------------------

std::int64_t MetricsSnapshot::counter_value(std::string_view name) const {
  for (const Counter& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

std::int64_t MetricsSnapshot::gauge_max(std::string_view name) const {
  for (const MaxGauge& g : gauges) {
    if (g.name == name) return g.max;
  }
  return 0;
}

const MetricsSnapshot::Histogram* MetricsSnapshot::histogram(
    std::string_view name) const {
  for (const Histogram& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

// ---- MetricsRegistry ------------------------------------------------------

MetricsRegistry::MetricsRegistry() : uid_(next_registry_uid()) {}

MetricsRegistry::Id MetricsRegistry::register_metric(std::string_view name,
                                                     Kind kind,
                                                     std::vector<std::int64_t> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  const int n = num_metrics_.load(std::memory_order_relaxed);
  for (int i = 0; i < n; ++i) {
    if (descs_[static_cast<std::size_t>(i)].name == name) {
      assert(descs_[static_cast<std::size_t>(i)].kind == kind);
      return i;
    }
  }
  assert(n < kMaxMetrics && "metrics registry capacity exhausted");
  Desc& d = descs_[static_cast<std::size_t>(n)];
  d.name = std::string(name);
  d.kind = kind;
  d.first_slot = num_slots_;
  if (kind == Kind::kHistogram) {
    assert(std::is_sorted(bounds.begin(), bounds.end()));
    d.bounds = std::move(bounds);
    // bucket counts (bounds + 1 for +inf), then sum, then count.
    d.num_slots = static_cast<int>(d.bounds.size()) + 3;
  } else {
    d.num_slots = 1;
  }
  num_slots_ += d.num_slots;
  // Publish: ids <= n are fully initialised once the count is visible.
  num_metrics_.store(n + 1, std::memory_order_release);
  return n;
}

MetricsRegistry::Id MetricsRegistry::counter(std::string_view name) {
  return register_metric(name, Kind::kCounter, {});
}

MetricsRegistry::Id MetricsRegistry::max_gauge(std::string_view name) {
  return register_metric(name, Kind::kMaxGauge, {});
}

MetricsRegistry::Id MetricsRegistry::histogram(std::string_view name,
                                               std::vector<std::int64_t> upper_bounds) {
  return register_metric(name, Kind::kHistogram, std::move(upper_bounds));
}

MetricsRegistry::Shard& MetricsRegistry::local_shard() {
  struct TlsEntry {
    std::uint64_t uid;
    Shard* shard;
  };
  // Keyed by process-unique registry uid: an entry for a destroyed registry
  // can never be matched again, so stale pointers are never dereferenced.
  thread_local std::vector<TlsEntry> tls;
  for (const TlsEntry& e : tls) {
    if (e.uid == uid_) return *e.shard;
  }
  std::lock_guard<std::mutex> lock(mu_);
  shards_.push_back(std::make_unique<Shard>());
  Shard* shard = shards_.back().get();
  tls.push_back({uid_, shard});
  return *shard;
}

std::atomic<std::int64_t>& MetricsRegistry::slot(Shard& shard, int index) {
  const std::size_t need = static_cast<std::size_t>(index) + 1;
  if (need > shard.num_slots) {
    // Grow to the registry's full current slot count (cold: once per thread
    // per registration epoch).  Only the owning thread reallocates; the
    // shard mutex excludes a concurrent snapshot.
    std::size_t capacity;
    {
      std::lock_guard<std::mutex> lock(mu_);
      capacity = static_cast<std::size_t>(num_slots_);
    }
    capacity = std::max(capacity, need);
    auto grown = std::make_unique<std::atomic<std::int64_t>[]>(capacity);
    for (std::size_t i = 0; i < capacity; ++i) {
      grown[i].store(i < shard.num_slots
                         ? shard.slots[i].load(std::memory_order_relaxed)
                         : 0,
                     std::memory_order_relaxed);
    }
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.slots = std::move(grown);
    shard.num_slots = capacity;
  }
  return shard.slots[static_cast<std::size_t>(index)];
}

void MetricsRegistry::add(Id id, std::int64_t delta) {
  assert(id >= 0 && id < size());
  const Desc& d = descs_[static_cast<std::size_t>(id)];
  slot(local_shard(), d.first_slot).fetch_add(delta, std::memory_order_relaxed);
}

void MetricsRegistry::record_max(Id id, std::int64_t v) {
  assert(id >= 0 && id < size());
  const Desc& d = descs_[static_cast<std::size_t>(id)];
  std::atomic<std::int64_t>& s = slot(local_shard(), d.first_slot);
  // Only the owning thread writes this slot, so load-compare-store suffices.
  if (v > s.load(std::memory_order_relaxed)) s.store(v, std::memory_order_relaxed);
}

void MetricsRegistry::observe(Id id, std::int64_t v) {
  assert(id >= 0 && id < size());
  const Desc& d = descs_[static_cast<std::size_t>(id)];
  assert(d.kind == Kind::kHistogram);
  Shard& shard = local_shard();
  // Touch the last slot first so one growth covers the whole range.
  std::atomic<std::int64_t>& count_slot = slot(shard, d.first_slot + d.num_slots - 1);
  const std::size_t bucket =
      static_cast<std::size_t>(std::lower_bound(d.bounds.begin(), d.bounds.end(), v) -
                               d.bounds.begin());
  shard.slots[static_cast<std::size_t>(d.first_slot) + bucket].fetch_add(
      1, std::memory_order_relaxed);
  shard.slots[static_cast<std::size_t>(d.first_slot + d.num_slots - 2)].fetch_add(
      v, std::memory_order_relaxed);  // sum
  count_slot.fetch_add(1, std::memory_order_relaxed);
}

std::int64_t MetricsRegistry::merge_slot(int index, Kind kind) const {
  std::int64_t out = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    if (static_cast<std::size_t>(index) >= shard->num_slots) continue;
    const std::int64_t v =
        shard->slots[static_cast<std::size_t>(index)].load(std::memory_order_relaxed);
    out = (kind == Kind::kMaxGauge) ? std::max(out, v) : out + v;
  }
  return out;
}

std::int64_t MetricsRegistry::current(Id id) const {
  assert(id >= 0 && id < size());
  const Desc& d = descs_[static_cast<std::size_t>(id)];
  std::lock_guard<std::mutex> lock(mu_);
  return merge_slot(d.first_slot, d.kind);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  const int n = size();
  std::lock_guard<std::mutex> lock(mu_);
  for (int i = 0; i < n; ++i) {
    const Desc& d = descs_[static_cast<std::size_t>(i)];
    switch (d.kind) {
      case Kind::kCounter:
        snap.counters.push_back({d.name, merge_slot(d.first_slot, d.kind)});
        break;
      case Kind::kMaxGauge:
        snap.gauges.push_back({d.name, merge_slot(d.first_slot, d.kind)});
        break;
      case Kind::kHistogram: {
        MetricsSnapshot::Histogram h;
        h.name = d.name;
        h.upper_bounds = d.bounds;
        const int buckets = static_cast<int>(d.bounds.size()) + 1;
        h.counts.resize(static_cast<std::size_t>(buckets));
        for (int b = 0; b < buckets; ++b) {
          h.counts[static_cast<std::size_t>(b)] =
              merge_slot(d.first_slot + b, Kind::kCounter);
        }
        h.sum = merge_slot(d.first_slot + buckets, Kind::kCounter);
        h.count = merge_slot(d.first_slot + buckets + 1, Kind::kCounter);
        snap.histograms.push_back(std::move(h));
        break;
      }
    }
  }
  return snap;
}

// ---- PhaseMetrics ---------------------------------------------------------

namespace {
constexpr const char* kPhaseMetricNames[PhaseTimers::kNumPhases] = {
    "phase.coarsen_ns", "phase.initpart_ns", "phase.refine_ns", "phase.project_ns"};
}  // namespace

PhaseMetrics::PhaseMetrics(MetricsRegistry& reg) : reg_(reg) {
  for (int p = 0; p < PhaseTimers::kNumPhases; ++p) {
    ids_[p] = reg.counter(kPhaseMetricNames[p]);
  }
}

void PhaseMetrics::add_ns(PhaseTimers::Phase phase, std::int64_t ns) {
  reg_.add(ids_[phase], ns);
}

void PhaseMetrics::add(const PhaseTimers& local) {
  for (int p = 0; p < PhaseTimers::kNumPhases; ++p) {
    const double s = local.get(static_cast<PhaseTimers::Phase>(p));
    if (s > 0) reg_.add(ids_[p], static_cast<std::int64_t>(s * 1e9));
  }
}

void PhaseMetrics::merge_into(PhaseTimers& out) const {
  for (int p = 0; p < PhaseTimers::kNumPhases; ++p) {
    out.add(static_cast<PhaseTimers::Phase>(p),
            static_cast<double>(reg_.current(ids_[p])) * 1e-9);
  }
}

PhaseTimers PhaseMetrics::view() const {
  PhaseTimers pt;
  merge_into(pt);
  return pt;
}

std::int64_t PhaseMetrics::Scope::now_ns_() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             clock::now().time_since_epoch())
      .count();
}

std::int64_t PhaseMetrics::Scope::timer_ns() const { return now_ns_() - start_ns_; }

}  // namespace mgp::obs
