// Minimal streaming JSON writer (observability substrate).
//
// The obs subsystem serializes traces and run reports without external
// dependencies, so this hand-rolled writer is the single JSON emitter for
// the whole repo: Chrome trace-event files (obs/trace), run reports
// (obs/report), and any bench binary that wants machine-readable rows.
//
// Scope-based API: begin_object()/end_object() and begin_array()/end_array()
// nest freely; key() names the next value inside an object; separators,
// newlines, and indentation are handled by the writer.  Strings are escaped
// per RFC 8259; non-finite doubles degrade to null (JSON has no NaN/Inf).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace mgp::obs {

class JsonWriter {
 public:
  /// Writes to `os`.  indent <= 0 produces compact single-line output.
  explicit JsonWriter(std::ostream& os, int indent = 2) : os_(os), indent_(indent) {}

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void begin_object();
  void end_object();
  void begin_array();
  void end_array();

  /// Names the next value.  Pre: inside an object.
  void key(std::string_view k);

  void value(std::string_view v);
  void value(const char* v) { value(std::string_view(v)); }
  void value(bool v);
  void value(double v);
  void value(std::int64_t v);
  void value(std::uint64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void null();

  /// key() + value() in one call.
  template <typename T>
  void kv(std::string_view k, T v) {
    key(k);
    value(v);
  }

  /// Escapes `s` per RFC 8259 (without the surrounding quotes).
  static std::string escape(std::string_view s);

 private:
  enum class Scope { kObject, kArray };
  void before_value();  // separator + layout for the next value slot
  void newline_indent();

  std::ostream& os_;
  int indent_;
  struct Frame {
    Scope scope;
    int count = 0;       // values emitted in this container
    bool keyed = false;  // a key() is pending its value
  };
  std::vector<Frame> stack_;
};

}  // namespace mgp::obs
