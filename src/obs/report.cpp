#include "obs/report.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <tuple>

#include "obs/json.hpp"

namespace mgp::obs {

void RunReport::add_bisection(BisectionReport&& rep) {
  std::lock_guard<std::mutex> lock(mu_);
  bisections_.push_back(std::move(rep));
}

void RunReport::add_phase_times(const PhaseTimers& pt) {
  std::lock_guard<std::mutex> lock(mu_);
  for (int p = 0; p < PhaseTimers::kNumPhases; ++p) {
    const auto phase = static_cast<PhaseTimers::Phase>(p);
    phases_.add(phase, pt.get(phase));
  }
}

std::size_t RunReport::num_bisections() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bisections_.size();
}

std::vector<BisectionReport> RunReport::bisections() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bisections_;
}

PhaseTimers RunReport::phase_times() const {
  std::lock_guard<std::mutex> lock(mu_);
  return phases_;
}

namespace {

void write_kl_pass(JsonWriter& w, const KlPassReport& p) {
  w.begin_object();
  w.kv("pass", p.pass);
  w.kv("moves_attempted", p.moves_attempted);
  w.kv("moves_kept", p.moves_kept);
  w.kv("moves_undone", p.moves_undone);
  w.kv("insertions", p.insertions);
  w.kv("cut_before", p.cut_before);
  w.kv("cut_after", p.cut_after);
  w.kv("early_exit", p.early_exit);
  w.kv("queue_peak", p.queue_peak);
  w.end_object();
}

void write_level(JsonWriter& w, const LevelReport& l) {
  w.begin_object();
  w.kv("level", l.level);
  w.kv("vertices", l.vertices);
  w.kv("edges", l.edges);
  w.kv("total_vertex_weight", l.total_vertex_weight);
  w.kv("matched_fraction", l.matched_fraction);
  w.kv("cut_before_refine", l.cut_before_refine);
  w.kv("cut_after_refine", l.cut_after_refine);
  w.kv("balance", l.balance);
  w.kv("refined", l.refined);
  w.key("kl_passes");
  w.begin_array();
  for (const KlPassReport& p : l.kl_passes) write_kl_pass(w, p);
  w.end_array();
  w.end_object();
}

void write_bisection(JsonWriter& w, const BisectionReport& b) {
  w.begin_object();
  w.kv("n", b.n);
  w.kv("total_weight", b.total_weight);
  w.kv("target0", b.target0);
  w.kv("num_levels", b.num_levels);
  w.kv("coarsest_n", b.coarsest_n);
  w.key("initpart_candidate_cuts");
  w.begin_array();
  for (std::int64_t c : b.initpart_candidate_cuts) w.value(c);
  w.end_array();
  w.kv("initial_cut", b.initial_cut);
  w.key("levels");
  w.begin_array();
  for (const LevelReport& l : b.levels) write_level(w, l);
  w.end_array();
  w.kv("final_cut", b.final_cut);
  w.kv("final_balance", b.final_balance);
  w.end_object();
}

void write_metrics(JsonWriter& w, const MetricsSnapshot& snap) {
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const auto& c : snap.counters) w.kv(c.name, c.value);
  w.end_object();
  w.key("max_gauges");
  w.begin_object();
  for (const auto& g : snap.gauges) w.kv(g.name, g.max);
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& h : snap.histograms) {
    w.key(h.name);
    w.begin_object();
    w.key("upper_bounds");
    w.begin_array();
    for (std::int64_t b : h.upper_bounds) w.value(b);
    w.end_array();
    w.key("counts");
    w.begin_array();
    for (std::int64_t c : h.counts) w.value(c);
    w.end_array();
    w.kv("count", h.count);
    w.kv("sum", h.sum);
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

}  // namespace

void write_metrics_json(JsonWriter& w, const MetricsSnapshot& snap) {
  write_metrics(w, snap);
}

void RunReport::write_json(std::ostream& os, const MetricsSnapshot* metrics) const {
  // Copy under the lock, then serialize lock-free.
  std::vector<BisectionReport> bis;
  PhaseTimers phases;
  {
    std::lock_guard<std::mutex> lock(mu_);
    bis = bisections_;
    phases = phases_;
  }
  // Pool scheduling decides completion order; sort by a content key so the
  // same run always serializes the same report.
  std::stable_sort(bis.begin(), bis.end(),
                   [](const BisectionReport& a, const BisectionReport& b) {
                     return std::tie(b.n, a.coarsest_n, a.initial_cut, a.final_cut) <
                            std::tie(a.n, b.coarsest_n, b.initial_cut, b.final_cut);
                   });

  JsonWriter w(os, /*indent=*/1);
  w.begin_object();
  w.kv("version", RunReport::kVersion);
  w.kv("tool", tool);
  w.kv("scheme", scheme);
  w.kv("k", k);
  w.kv("threads", threads);
  w.kv("seed", static_cast<std::uint64_t>(seed));
  w.key("phase_times");
  w.begin_object();
  w.kv("ctime_s", phases.get(PhaseTimers::kCoarsen));
  w.kv("itime_s", phases.get(PhaseTimers::kInitPart));
  w.kv("rtime_s", phases.get(PhaseTimers::kRefine));
  w.kv("ptime_s", phases.get(PhaseTimers::kProject));
  w.kv("utime_s", phases.utime());
  w.end_object();
  if (metrics) {
    w.key("metrics");
    write_metrics(w, *metrics);
    // The direct-k-way counters, surfaced as first-class report fields so
    // consumers need not dig through the raw metrics dump (they are zero —
    // but present — for recursive-bisection runs).
    w.key("kway_direct");
    w.begin_object();
    w.kv("levels", metrics->counter_value("kway.direct.levels"));
    w.kv("refine_rounds", metrics->counter_value("refine.kway_rounds"));
    w.kv("conflict_rejects",
         metrics->counter_value("refine.kway_conflict_rejects"));
    w.end_object();
  }
  w.key("bisections");
  w.begin_array();
  for (const BisectionReport& b : bis) write_bisection(w, b);
  w.end_array();
  w.end_object();
  os << '\n';
}

std::string RunReport::to_json(const MetricsSnapshot* metrics) const {
  std::ostringstream os;
  write_json(os, metrics);
  return os.str();
}

bool RunReport::write_json_file(const std::string& path,
                                const MetricsSnapshot* metrics) const {
  std::ofstream out(path);
  if (!out) return false;
  write_json(out, metrics);
  return static_cast<bool>(out);
}

Obs::PipelineMetrics::PipelineMetrics(MetricsRegistry& reg)
    : coarsen_levels(reg.counter("pipeline.coarsen_levels")),
      matched_pairs(reg.counter("pipeline.matched_pairs")),
      bisections(reg.counter("pipeline.bisections")),
      kl_passes(reg.counter("kl.passes")),
      kl_moves(reg.counter("kl.moves_attempted")),
      kl_swapped(reg.counter("kl.moves_kept")),
      kl_rollbacks(reg.counter("kl.moves_undone")),
      kl_insertions(reg.counter("kl.insertions")),
      kl_early_exits(reg.counter("kl.early_exits")),
      queue_peak(reg.max_gauge("kl.queue_peak")),
      refine_parallel_rounds(reg.counter("refine.parallel_rounds")),
      refine_conflict_rejects(reg.counter("refine.conflict_rejects")),
      kway_direct_levels(reg.counter("kway.direct.levels")),
      kway_rounds(reg.counter("refine.kway_rounds")),
      kway_conflict_rejects(reg.counter("refine.kway_conflict_rejects")),
      shrink_pct(reg.histogram("coarsen.shrink_pct",
                               {50, 55, 60, 65, 70, 75, 80, 85, 90, 95})),
      coarsen_strategy(reg.max_gauge("coarsen.strategy")),
      coarsen_ad_iters(reg.counter("coarsen.ad_iters")),
      coarsen_nlevel_pq_updates(reg.counter("coarsen.nlevel_pq_updates")),
      arena_bytes_peak(reg.max_gauge("arena.bytes_peak")),
      arena_reuse_hits(reg.counter("arena.reuse_hits")),
      arena_workspaces(reg.counter("arena.workspaces")),
      dyn_repartitions(reg.counter("dynamic.repartitions")),
      dyn_fallbacks(reg.counter("dynamic.fallbacks")) {}

}  // namespace mgp::obs
