#include "obs/json.hpp"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace mgp::obs {

void JsonWriter::newline_indent() {
  if (indent_ <= 0) return;
  os_.put('\n');
  const int depth = static_cast<int>(stack_.size());
  for (int i = 0; i < depth * indent_; ++i) os_.put(' ');
}

void JsonWriter::before_value() {
  if (stack_.empty()) return;  // top-level value
  Frame& f = stack_.back();
  if (f.scope == Scope::kObject) {
    // key() already wrote the separator and the key itself.
    assert(f.keyed && "object values must be preceded by key()");
    f.keyed = false;
    return;
  }
  if (f.count++ > 0) os_.put(',');
  newline_indent();
}

void JsonWriter::key(std::string_view k) {
  assert(!stack_.empty() && stack_.back().scope == Scope::kObject);
  Frame& f = stack_.back();
  assert(!f.keyed && "key() called twice without a value");
  if (f.count++ > 0) os_.put(',');
  newline_indent();
  os_.put('"');
  os_ << escape(k);
  os_ << "\": ";
  f.keyed = true;
}

void JsonWriter::begin_object() {
  before_value();
  os_.put('{');
  stack_.push_back({Scope::kObject});
}

void JsonWriter::end_object() {
  assert(!stack_.empty() && stack_.back().scope == Scope::kObject);
  const bool had_values = stack_.back().count > 0;
  stack_.pop_back();
  if (had_values) newline_indent();
  os_.put('}');
}

void JsonWriter::begin_array() {
  before_value();
  os_.put('[');
  stack_.push_back({Scope::kArray});
}

void JsonWriter::end_array() {
  assert(!stack_.empty() && stack_.back().scope == Scope::kArray);
  const bool had_values = stack_.back().count > 0;
  stack_.pop_back();
  if (had_values) newline_indent();
  os_.put(']');
}

void JsonWriter::value(std::string_view v) {
  before_value();
  os_.put('"');
  os_ << escape(v);
  os_.put('"');
}

void JsonWriter::value(bool v) {
  before_value();
  os_ << (v ? "true" : "false");
}

void JsonWriter::value(double v) {
  before_value();
  if (!std::isfinite(v)) {
    os_ << "null";  // JSON has no NaN / Infinity
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os_ << buf;
}

void JsonWriter::value(std::int64_t v) {
  before_value();
  os_ << v;
}

void JsonWriter::value(std::uint64_t v) {
  before_value();
  os_ << v;
}

void JsonWriter::null() {
  before_value();
  os_ << "null";
}

std::string JsonWriter::escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

}  // namespace mgp::obs
