// Low-overhead tracing spans for the multilevel pipeline.
//
// An RAII Span records {name, start, duration, up to two integer args} into
// a per-thread buffer; buffers are registered once per thread and appended
// to under an uncontended per-buffer mutex, so the hot path never touches a
// shared lock.  trace_write_chrome() exports everything as Chrome
// trace-event JSON ("X" complete events plus thread-name metadata), which
// opens directly in Perfetto / chrome://tracing — the PR-1 fork/join
// recursion shows up as a per-thread timeline of pool.task spans.
//
// Two kill switches (DESIGN.md "Observability"):
//   * compile time: building with -DMGP_OBS_ENABLED=0 (CMake -DMGP_OBS=OFF)
//     turns Span into an empty struct and MGP_SPAN into a no-op, so spans
//     cost literally nothing — the instrumented code is token-identical to
//     un-instrumented code after inlining;
//   * run time: spans record only between trace_start() and trace_stop();
//     when stopped, a Span costs one relaxed atomic load and a branch.
//
// Recording draws no randomness and never alters control flow, so tracing
// cannot perturb partitions (asserted by the determinism suite).
#pragma once

#include <cstdint>
#include <string>

#ifndef MGP_OBS_ENABLED
#define MGP_OBS_ENABLED 1
#endif

namespace mgp::obs {

/// True when the library was compiled with observability spans.
inline constexpr bool kObsCompiled = MGP_OBS_ENABLED != 0;

/// True between trace_start() and trace_stop().
bool tracing_enabled();

/// Clears previously recorded events (thread names survive) and enables
/// recording.  Call from a quiescent point (not concurrently with spans).
void trace_start();

/// Disables recording.  Buffered events stay available for export.
void trace_stop();

/// Number of span events currently buffered across all threads.
std::size_t trace_event_count();

/// Serializes buffered events as Chrome trace-event JSON.
std::string trace_chrome_json();

/// Writes trace_chrome_json() to `path`.  Returns false on I/O failure.
bool trace_write_chrome(const std::string& path);

/// Labels the calling thread in exported traces ("main", "pool-worker-2").
/// Cheap; safe to call whether or not tracing is enabled.
void set_thread_name(const std::string& name);

namespace detail {

struct SpanRecord {
  const char* name;  // static string; spans never own their names
  std::int64_t start_ns;
  std::int64_t dur_ns;
  const char* arg_key[2] = {nullptr, nullptr};
  std::int64_t arg_val[2] = {0, 0};
  int num_args = 0;
};

/// Nanoseconds since a process-wide steady-clock anchor.
std::int64_t now_ns();

/// Appends to the calling thread's buffer (creates and registers it on
/// first use).
void record(const SpanRecord& rec);

}  // namespace detail

#if MGP_OBS_ENABLED

/// RAII span: measures from construction to destruction.  `name` must be a
/// string with static storage duration (a literal).  When tracing is
/// disabled the constructor is a relaxed load + branch and the destructor a
/// branch.
class Span {
 public:
  explicit Span(const char* name) {
    if (tracing_enabled()) {
      active_ = true;
      rec_.name = name;
      rec_.start_ns = detail::now_ns();
    }
  }
  ~Span() {
    if (active_) {
      rec_.dur_ns = detail::now_ns() - rec_.start_ns;
      detail::record(rec_);
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches an integer argument (shown in the trace viewer).  `key` must
  /// be a static string.  At most two args per span; extras are dropped.
  void arg(const char* key, std::int64_t v) {
    if (active_ && rec_.num_args < 2) {
      rec_.arg_key[rec_.num_args] = key;
      rec_.arg_val[rec_.num_args] = v;
      ++rec_.num_args;
    }
  }

 private:
  detail::SpanRecord rec_;
  bool active_ = false;
};

#define MGP_OBS_CONCAT_INNER(a, b) a##b
#define MGP_OBS_CONCAT(a, b) MGP_OBS_CONCAT_INNER(a, b)
/// Scope-level span with an automatically unique variable name.
#define MGP_SPAN(name) ::mgp::obs::Span MGP_OBS_CONCAT(mgp_obs_span_, __LINE__)(name)

#else  // !MGP_OBS_ENABLED: spans compile to nothing.

class Span {
 public:
  explicit Span(const char*) {}
  void arg(const char*, std::int64_t) {}
};

#define MGP_SPAN(name) ((void)0)

#endif  // MGP_OBS_ENABLED

}  // namespace mgp::obs
