#include "obs/trace.hpp"

#include <atomic>
#include <chrono>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

#include "obs/json.hpp"

namespace mgp::obs {
namespace {

/// One thread's event buffer.  The owning thread appends under `mu` (never
/// contended except during export/clear); the exporter locks each buffer in
/// turn.  Buffers are shared_ptr so a thread exiting does not invalidate
/// the registry's view of its events.
struct ThreadBuffer {
  std::mutex mu;
  std::vector<detail::SpanRecord> events;
  std::string name;
  int tid;
};

struct TraceState {
  std::atomic<bool> enabled{false};
  std::mutex registry_mu;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  int next_tid = 1;
};

TraceState& state() {
  static TraceState s;
  return s;
}

std::shared_ptr<ThreadBuffer>& local_buffer_slot() {
  thread_local std::shared_ptr<ThreadBuffer> buf;
  return buf;
}

ThreadBuffer& local_buffer() {
  std::shared_ptr<ThreadBuffer>& buf = local_buffer_slot();
  if (!buf) {
    buf = std::make_shared<ThreadBuffer>();
    TraceState& s = state();
    std::lock_guard<std::mutex> lock(s.registry_mu);
    buf->tid = s.next_tid++;
    s.buffers.push_back(buf);
  }
  return *buf;
}

}  // namespace

namespace detail {

std::int64_t now_ns() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point anchor = clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - anchor)
      .count();
}

void record(const SpanRecord& rec) {
  ThreadBuffer& buf = local_buffer();
  std::lock_guard<std::mutex> lock(buf.mu);
  buf.events.push_back(rec);
}

}  // namespace detail

bool tracing_enabled() {
  return state().enabled.load(std::memory_order_relaxed);
}

void trace_start() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.registry_mu);
  for (auto& buf : s.buffers) {
    std::lock_guard<std::mutex> bl(buf->mu);
    buf->events.clear();
  }
  s.enabled.store(true, std::memory_order_relaxed);
}

void trace_stop() {
  state().enabled.store(false, std::memory_order_relaxed);
}

std::size_t trace_event_count() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.registry_mu);
  std::size_t n = 0;
  for (auto& buf : s.buffers) {
    std::lock_guard<std::mutex> bl(buf->mu);
    n += buf->events.size();
  }
  return n;
}

void set_thread_name(const std::string& name) {
  ThreadBuffer& buf = local_buffer();
  std::lock_guard<std::mutex> lock(buf.mu);
  buf.name = name;
}

std::string trace_chrome_json() {
  std::ostringstream os;
  JsonWriter w(os, /*indent=*/0);
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();

  // Process metadata, then per-thread name metadata and span events.
  w.begin_object();
  w.kv("name", "process_name");
  w.kv("ph", "M");
  w.kv("pid", 0);
  w.kv("tid", 0);
  w.key("args");
  w.begin_object();
  w.kv("name", "mgp");
  w.end_object();
  w.end_object();

  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.registry_mu);
  for (auto& buf : s.buffers) {
    std::lock_guard<std::mutex> bl(buf->mu);
    if (!buf->name.empty()) {
      w.begin_object();
      w.kv("name", "thread_name");
      w.kv("ph", "M");
      w.kv("pid", 0);
      w.kv("tid", buf->tid);
      w.key("args");
      w.begin_object();
      w.kv("name", buf->name);
      w.end_object();
      w.end_object();
    }
    for (const detail::SpanRecord& e : buf->events) {
      w.begin_object();
      w.kv("name", e.name);
      w.kv("ph", "X");
      w.kv("pid", 0);
      w.kv("tid", buf->tid);
      // Chrome trace timestamps are microseconds; fractional values keep
      // nanosecond resolution.
      w.kv("ts", static_cast<double>(e.start_ns) / 1000.0);
      w.kv("dur", static_cast<double>(e.dur_ns) / 1000.0);
      if (e.num_args > 0) {
        w.key("args");
        w.begin_object();
        for (int i = 0; i < e.num_args; ++i) w.kv(e.arg_key[i], e.arg_val[i]);
        w.end_object();
      }
      w.end_object();
    }
  }

  w.end_array();
  w.end_object();
  return os.str();
}

bool trace_write_chrome(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << trace_chrome_json() << '\n';
  return static_cast<bool>(out);
}

}  // namespace mgp::obs
