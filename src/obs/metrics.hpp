// Sharded metrics registry: counters, max-gauges, and fixed-bucket
// histograms with no hot-path locks.
//
// Every thread that touches a registry gets its own shard — a flat array of
// relaxed std::atomic<int64> slots.  Updates go to the calling thread's
// shard only (one relaxed fetch_add; no sharing, no contention, no false
// invalidation of other threads' cache lines beyond the first touch), and
// snapshot() merges all shards under per-shard mutexes that the hot path
// never takes.  This is the same per-thread-shard / merge-at-read design
// modern servers use for request counters, applied to the partitioning
// pipeline: concurrent bisections of the PR-1 fork/join tree can account
// their phase times and KL statistics without the per-bisection mutex merge
// the pre-obs code used (see core/kway.cpp).
//
// Registration (counter()/max_gauge()/histogram()) is cold-path and
// idempotent by name; handles are small integer ids.  Capacity is bounded
// (kMaxMetrics) so descriptor storage never reallocates under readers.
//
// Thread-safety contract:
//   * add()/record_max()/observe() — any thread, lock-free, relaxed;
//   * registration and snapshot()  — any thread, internally locked;
//   * values are monotone per shard, so a snapshot taken concurrently with
//     updates is a consistent "at least these" view.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "support/timer.hpp"

namespace mgp::obs {

/// Merged point-in-time view of a registry (see MetricsRegistry::snapshot).
struct MetricsSnapshot {
  struct Counter {
    std::string name;
    std::int64_t value;
  };
  struct MaxGauge {
    std::string name;
    std::int64_t max;  // 0 when never recorded (gauges are non-negative)
  };
  struct Histogram {
    std::string name;
    std::vector<std::int64_t> upper_bounds;  // bucket i counts v <= bounds[i]
    std::vector<std::int64_t> counts;        // size = bounds.size() + 1 (+inf)
    std::int64_t count = 0;
    std::int64_t sum = 0;
  };

  std::vector<Counter> counters;
  std::vector<MaxGauge> gauges;
  std::vector<Histogram> histograms;

  /// Value of a counter by name; 0 when absent.
  std::int64_t counter_value(std::string_view name) const;
  /// Max of a gauge by name; 0 when absent.
  std::int64_t gauge_max(std::string_view name) const;
  /// Histogram by name; nullptr when absent.
  const Histogram* histogram(std::string_view name) const;
};

class MetricsRegistry {
 public:
  using Id = int;
  static constexpr int kMaxMetrics = 256;

  MetricsRegistry();
  ~MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registers (or finds) a monotone counter.
  Id counter(std::string_view name);
  /// Registers (or finds) a max-gauge over non-negative values.
  Id max_gauge(std::string_view name);
  /// Registers (or finds) a histogram with the given inclusive upper bucket
  /// bounds (strictly increasing); an implicit +inf bucket is appended.
  Id histogram(std::string_view name, std::vector<std::int64_t> upper_bounds);

  /// Adds `delta` to a counter.  Lock-free hot path.
  void add(Id id, std::int64_t delta = 1);
  /// Raises a max-gauge to at least `v`.  Lock-free hot path.
  void record_max(Id id, std::int64_t v);
  /// Records an observation into a histogram.  Lock-free hot path.
  void observe(Id id, std::int64_t v);

  /// Merged value of a counter (sum) or max-gauge (max) across shards.
  std::int64_t current(Id id) const;

  /// Merges every shard into a named snapshot.
  MetricsSnapshot snapshot() const;

  /// Number of registered metrics.
  int size() const { return num_metrics_.load(std::memory_order_acquire); }

 private:
  enum class Kind { kCounter, kMaxGauge, kHistogram };
  struct Desc {
    std::string name;
    Kind kind = Kind::kCounter;
    int first_slot = 0;
    int num_slots = 1;  // histogram: buckets + 2 (sum, count)
    std::vector<std::int64_t> bounds;
  };
  /// Per-thread slot array.  Only the owning thread writes; growth and
  /// snapshot reads serialize on `mu`.
  struct Shard {
    mutable std::mutex mu;
    std::unique_ptr<std::atomic<std::int64_t>[]> slots;
    std::size_t num_slots = 0;
  };

  Id register_metric(std::string_view name, Kind kind, std::vector<std::int64_t> bounds);
  Shard& local_shard();
  const Shard* local_shard_if_exists() const;
  std::atomic<std::int64_t>& slot(Shard& shard, int index);
  /// Sums (counter/histogram slots) or maxes (gauge) one slot across shards.
  std::int64_t merge_slot(int index, Kind kind) const;

  const std::uint64_t uid_;  // process-unique; keys the thread-local shard cache
  mutable std::mutex mu_;    // registration + shard list
  std::array<Desc, kMaxMetrics> descs_;
  std::atomic<int> num_metrics_{0};
  int num_slots_ = 0;  // total slots registered (under mu_)
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// The paper's phase-time accounting (CTime/ITime/RTime/PTime) on top of
/// the sharded registry: concurrent bisections add nanoseconds to their own
/// thread's shard, and view() / merge_into() produce the familiar
/// PhaseTimers vocabulary at snapshot time.  This replaces the pre-obs
/// mutex-merge in core/kway.cpp.
class PhaseMetrics {
 public:
  explicit PhaseMetrics(MetricsRegistry& reg);

  /// Adds nanoseconds to one phase (calling thread's shard; lock-free).
  void add_ns(PhaseTimers::Phase phase, std::int64_t ns);
  /// Adds a per-call PhaseTimers accumulation (seconds -> ns).
  void add(const PhaseTimers& local);
  /// Adds the merged phase times into `out` in seconds.
  void merge_into(PhaseTimers& out) const;
  /// Merged phase times as the paper-vocabulary accumulator.
  PhaseTimers view() const;

  /// RAII scope that times into one phase (analogue of ScopedPhase).
  class Scope {
   public:
    Scope(PhaseMetrics& pm, PhaseTimers::Phase phase) : pm_(pm), phase_(phase) {}
    ~Scope() { pm_.add_ns(phase_, timer_ns()); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    std::int64_t timer_ns() const;
    PhaseMetrics& pm_;
    PhaseTimers::Phase phase_;
    std::int64_t start_ns_ = now_ns_();
    static std::int64_t now_ns_();
  };

 private:
  MetricsRegistry& reg_;
  MetricsRegistry::Id ids_[PhaseTimers::kNumPhases];
};

}  // namespace mgp::obs
