// Server-side store of pinned graphs for incremental repartitioning
// (DESIGN.md §11).
//
// A client PINs a graph once, then sends DELTA_REPARTITION requests that
// reference it by the 64-bit FNV-1a fingerprint of its wire encoding — the
// same hash the result cache keys on, so a fingerprint names graph *bytes*,
// not a session.  Each entry holds the decoded CSR, the ping-pong spare
// graph the patcher alternates with, per-(config digest, k) LabelStates
// (the warm-start inputs), and the patch scratch.  Entries are:
//
//   * refcounted — checkout() hands out a shared_ptr lease; an entry that
//     is checked out is never evicted, and delta processing happens under
//     the entry's own mutex so the store-wide lock is never held across a
//     repartition;
//   * byte-budgeted with LRU eviction — pinning past the budget evicts
//     idle least-recently-used entries first and rejects (the server maps
//     this to OVERLOADED) when the budget still cannot admit the graph;
//   * re-keyed after every delta — the entry moves to its post-delta
//     fingerprint (allocation-free unordered_map node reuse), which is the
//     cache-invalidation invariant: a labelling is only ever reachable
//     under the fingerprint of the exact graph it labels, so a stale
//     labelling can never be served.  A delta racing a re-key sees
//     NOT_FOUND and re-pins.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "dynamic/delta.hpp"
#include "dynamic/incremental.hpp"
#include "graph/csr.hpp"

namespace mgp::dynamic {

/// Identifies one warm-start slot within an entry: the request's config
/// digest (k, seed, scheme bytes — the same 20 bytes the result cache
/// digests) plus k for defence in depth.
struct LabelKey {
  std::uint64_t config_digest = 0;
  std::uint32_t k = 0;
  friend bool operator==(const LabelKey&, const LabelKey&) = default;
};

struct LabelKeyHash {
  std::size_t operator()(const LabelKey& key) const {
    std::uint64_t h = key.config_digest * 0x9e3779b97f4a7c15ULL;
    h ^= (static_cast<std::uint64_t>(key.k) + (h >> 29)) * 0xff51afd7ed558ccdULL;
    return static_cast<std::size_t>(h ^ (h >> 32));
  }
};

class GraphStore {
 public:
  struct Entry {
    std::uint64_t fingerprint = 0;
    Graph graph;
    Graph spare;  ///< patch target; swapped with graph after each delta
    DeltaScratch patch_scratch;
    std::unordered_map<LabelKey, LabelState, LabelKeyHash> labels;
    /// Serializes patch + repartition per entry (taken *after* the store
    /// lock is released; re-check `fingerprint` under it — a concurrent
    /// delta may have re-keyed the entry first).
    std::mutex mu;
  };
  using EntryPtr = std::shared_ptr<Entry>;

  explicit GraphStore(std::size_t max_bytes) : max_bytes_(max_bytes) {}

  struct PinOutcome {
    bool ok = false;
    bool already_pinned = false;
  };

  /// Pins `g` under `fingerprint`, evicting idle LRU entries as needed.
  /// When the fingerprint is already pinned the call just refreshes its
  /// recency and leaves `g` untouched (so the caller's decode buffer stays
  /// warm); otherwise `g` is moved in.  ok=false means the budget cannot
  /// admit the graph even with every idle entry evicted.
  PinOutcome pin(Graph& g, std::uint64_t fingerprint);

  /// Recency-refreshing lookup; null when the fingerprint is not pinned.
  /// The returned lease keeps the entry alive and un-evictable.
  EntryPtr checkout(std::uint64_t fingerprint);

  /// Moves a checked-out entry (whose mutex the caller holds, and whose
  /// graph/labels were just patched) from `old_fp` to `new_fp`, and
  /// re-charges its bytes against the budget.  Node-reusing: allocation-
  /// free.  If `new_fp` is already occupied by an idle entry, that entry is
  /// evicted (same bytes, newer labelling); if the occupant is checked out,
  /// this entry is simply dropped from the map instead (the caller's lease
  /// stays valid, later deltas see NOT_FOUND and re-pin).
  void rekey(const EntryPtr& entry, std::uint64_t old_fp, std::uint64_t new_fp);

  struct Stats {
    std::uint64_t pins = 0;       ///< graphs admitted
    std::uint64_t repins = 0;     ///< PINs of an already-pinned fingerprint
    std::uint64_t evictions = 0;  ///< entries evicted (budget or rekey)
    std::uint64_t rejected = 0;   ///< PINs refused by the budget
    std::size_t entries = 0;
    std::size_t bytes = 0;
    std::size_t max_bytes = 0;
  };
  Stats stats() const;

 private:
  static std::size_t entry_bytes(const Entry& e);
  /// Evicts idle LRU entries until `need` more bytes fit (best effort).
  void evict_for(std::size_t need);

  struct Slot {
    EntryPtr entry;
    std::list<std::uint64_t>::iterator pos;  ///< position in lru_
    std::size_t charged = 0;  ///< bytes billed against the budget
  };

  mutable std::mutex mu_;
  std::size_t max_bytes_;
  std::size_t bytes_ = 0;
  std::list<std::uint64_t> lru_;  ///< front = most recently used
  std::unordered_map<std::uint64_t, Slot> map_;
  Stats stats_;
};

}  // namespace mgp::dynamic
