// Warm-start k-way repartitioning after a graph delta (DESIGN.md §11).
//
// KaFFPa's iterated multilevel V-cycles (Sanders/Schulz, PAPERS.md) show
// that local search seeded from an existing partition preserves quality at
// a fraction of the cost of partitioning from scratch.  The incremental
// path here is the degenerate-but-fast V-cycle: project the previous
// labelling onto the mutated graph (tombstones keep their label, new
// vertices go to their cheapest-connectivity part), rebalance, then run the
// frontier-restricted k-way refiner seeded from the vertices the delta
// actually touched — so the work is proportional to the change, not the
// graph (ROADMAP item 5).
//
// The incremental path falls back to a full kway_partition_direct_into when
//   * there is no previous labelling for this (graph, config, k),
//   * the delta's churn ratio exceeds full_rebuild_ratio, or
//   * the incremental cut degrades past quality_bound × a tracked estimate
//     (anchored at the last from-scratch cut and inflated per delta by the
//     observed churn, so slow drift eventually forces a re-anchor).
//
// Both sides of the decision — and both compute paths — draw randomness
// only from a root seed and use the pool-size-invariant refiners, so the
// same delta sequence yields byte-identical labellings across pool sizes
// {1, 2, 4, 8} whether replayed by the server or by the offline
// `partition_file --delta-script` twin.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/kway_direct.hpp"
#include "dynamic/delta.hpp"
#include "refine/kway_refine.hpp"
#include "support/workspace.hpp"

namespace mgp::dynamic {

struct IncrementalConfig {
  /// From-scratch / fallback configuration (also supplies base.obs/cancel
  /// and the balance envelope shared by both paths).
  KwayDirectConfig direct;
  /// Refinement passes for the warm-start path (the from-scratch path uses
  /// direct.max_refine_passes).
  int refine_passes = 4;
  /// Fall back to from-scratch when arcs_changed / old_arcs exceeds this.
  double full_rebuild_ratio = 0.2;
  /// Fall back when the incremental cut exceeds bound × tracked estimate.
  double quality_bound = 1.5;
};

/// The last served labelling for one (graph, config digest, k) — lives in
/// the server's GraphStore next to the pinned graph, or in the offline
/// twin's replay loop.  `part` always labels the graph whose fingerprint is
/// `fingerprint`; repartition_after_delta refuses to warm-start from a
/// state whose fingerprint does not match (the cache-invalidation
/// invariant: a stale labelling can never be served).
struct LabelState {
  std::vector<part_t> part;
  std::uint64_t fingerprint = 0;
  ewt_t cut = 0;
  /// Obs-tracked quality estimate: anchored at the last from-scratch cut,
  /// inflated by the churn ratio per incremental step, tightened whenever
  /// the incremental path beats it.
  double cut_estimate = 0.0;
  bool valid = false;
};

/// Reusable scratch for repartition_after_delta.  Warms to the (n, k)
/// high-water shape; subsequent calls of no-larger shape allocate nothing.
struct IncrementalWorkspace {
  KwayDirectWorkspace direct;  ///< also supplies the shared refine workspace
  std::vector<vwt_t> pwgts;    ///< k
  std::vector<char> active;    ///< n: refinement frontier mask
  std::vector<ewt_t> conn;     ///< k: new-vertex placement connectivity
  std::vector<part_t> conn_touched;  ///< k

  std::size_t bytes_reserved() const;
};

struct RepartitionResult {
  enum class Reason : std::uint8_t {
    kIncremental = 0,   ///< warm start accepted
    kNoPrevious = 1,    ///< no (valid, fingerprint-matching) previous state
    kChurnRatio = 2,    ///< delta ratio above full_rebuild_ratio
    kQualityBound = 3,  ///< incremental cut degraded past the estimate
  };
  ewt_t cut = 0;
  bool from_scratch = false;
  Reason reason = Reason::kIncremental;
  int refine_rounds = 0;  ///< propose/commit rounds of the warm-start path
};

/// Repartitions the post-delta graph `g` into k parts, warm-starting from
/// `state` when possible and falling back to kway_partition_direct_into
/// otherwise (see file header for the policy).  On return `state` holds the
/// new labelling, its cut, and `new_fingerprint` — ready for the next
/// delta.  `state.fingerprint` must equal the *pre-delta* fingerprint for a
/// warm start to be legal; any mismatch forces from-scratch.  `touched` is
/// the delta's dirty-vertex frontier (apply_delta's scratch.touched) and
/// `churn_ratio` its arcs_changed ratio.
///
/// Deterministic: a fresh Rng is constructed from `seed` per call, and the
/// result is byte-identical for every pool size, null pool included.
RepartitionResult repartition_after_delta(
    const Graph& g, part_t k, const IncrementalConfig& icfg,
    std::uint64_t seed, LabelState& state, std::uint64_t new_fingerprint,
    std::span<const vid_t> touched, double churn_ratio,
    IncrementalWorkspace& ws, BisectWorkspace* bws, ThreadPool* pool);

}  // namespace mgp::dynamic
