// Graph deltas: the mutation vocabulary of the incremental-repartitioning
// subsystem (DESIGN.md §11).
//
// ROADMAP item 5 asks for repartitioning in time proportional to the change,
// not the graph.  The first half of that contract lives here: a DeltaBatch
// describes a set of mutations (edge insert/delete, vertex add/remove,
// vertex-weight update) and apply_delta materialises the patched CSR
// *non-destructively* — the source graph stays intact (it may be pinned in
// the server's GraphStore and concurrently referenced), and the destination
// recycles its previous storage so a warm patch performs zero heap
// allocations.  Only touched adjacency rows are rebuilt; clean rows are
// copied straight through.
//
// Semantics:
//   * vertex removal is a tombstone: incident edges are dropped and the
//     vertex weight zeroed, but the id remains, so labellings stay
//     index-compatible across deltas and ids never shift;
//   * vertex additions append fresh ids at the end (old_n, old_n+1, ...);
//   * edge insert/delete maintain symmetry automatically (one op covers
//     both directions) and are strictly validated — inserting an existing
//     edge, deleting a missing one, duplicate ops within a batch, ops that
//     touch a vertex removed by the same batch, self-loops, and
//     out-of-range ids are all rejected with a message (the server maps
//     this to BAD_REQUEST).
//
// apply_delta draws no randomness and iterates in deterministic orders
// only, so the patched graph — and its fingerprint — is a pure function of
// (source graph, batch).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/csr.hpp"
#include "support/types.hpp"

namespace mgp::dynamic {

struct EdgeIns {
  vid_t u = 0;
  vid_t v = 0;
  ewt_t w = 1;
};

struct EdgeDel {
  vid_t u = 0;
  vid_t v = 0;
};

struct WeightUpd {
  vid_t v = 0;
  vwt_t w = 0;
};

/// One batch of mutations, applied atomically.  Op application order is
/// fixed: vertex adds, weight updates, vertex removals, edge deletions,
/// edge insertions — so a batch may, e.g., add a vertex and connect it.
struct DeltaBatch {
  std::vector<EdgeIns> edge_ins;
  std::vector<EdgeDel> edge_del;
  std::vector<vwt_t> vertex_add;  ///< weights of appended vertices
  std::vector<vid_t> vertex_rem;  ///< ids to tombstone
  std::vector<WeightUpd> weight_upd;

  void clear();
  bool empty() const;
  std::size_t num_ops() const;
};

/// Reusable scratch for apply_delta.  Warms to the high-water (n, ops)
/// shape; subsequent patches of no-larger shape allocate nothing.
struct DeltaScratch {
  std::vector<char> dirty;     ///< new_n: row must be rebuilt
  std::vector<char> removed;   ///< new_n: tombstoned by this batch
  std::vector<vid_t> touched;  ///< dirty vertex ids, ascending (frontier seed)
  std::vector<eid_t> ins_xadj;  ///< new_n+1: per-row insertion offsets
  std::vector<vid_t> ins_nbr;   ///< 2*|edge_ins|
  std::vector<ewt_t> ins_w;     ///< 2*|edge_ins|
  std::vector<eid_t> del_xadj;  ///< new_n+1: per-row deletion offsets
  std::vector<vid_t> del_nbr;   ///< 2*|edge_del|

  std::size_t bytes_reserved() const;
};

struct DeltaApplyResult {
  vid_t old_n = 0;
  vid_t new_n = 0;
  /// Directed arc slots inserted plus removed (removals include the arcs
  /// dropped by tombstoning).  The warm-start fallback threshold compares
  /// churn_ratio = arcs_changed / max(1, old arcs).
  eid_t arcs_changed = 0;
  double churn_ratio = 0.0;
  /// FNV-1a fingerprint of the patched graph's canonical wire encoding —
  /// identical to the graph_fp the server's cache key would assign to a
  /// fresh PARTITION request carrying the patched graph.
  std::uint64_t fingerprint = 0;
};

/// FNV-1a 64 fingerprint of a graph's canonical wire encoding (the graph
/// region of a PARTITION request: n, arcs, xadj, adjncy, vwgt, adjwgt in
/// little-endian).  Streaming — no buffer is materialised.
std::uint64_t graph_fingerprint(const Graph& g);

/// Validates `batch` against `src` and materialises the patched graph into
/// `dst`, recycling dst's existing storage (ping-pong with the source under
/// the GraphStore's per-entry lock).  Returns "" on success or a
/// human-readable rejection; on rejection `dst` is left empty and `src` is
/// untouched either way.  `scratch.touched` is left holding the ascending
/// ids of every vertex whose adjacency row changed (plus all new vertices)
/// — the warm-start refinement frontier.
std::string apply_delta(const Graph& src, const DeltaBatch& batch,
                        DeltaScratch& scratch, Graph& dst,
                        DeltaApplyResult& out);

}  // namespace mgp::dynamic
