#include "dynamic/delta.hpp"

#include <algorithm>
#include <limits>

namespace mgp::dynamic {
namespace {

std::size_t vec_bytes(const auto& v) {
  return v.capacity() * sizeof(typename std::decay_t<decltype(v)>::value_type);
}

/// Streaming FNV-1a 64 over little-endian words — byte-for-byte the hash
/// the server computes over the graph region of an encoded request.
struct Fnv64 {
  std::uint64_t h = 0xcbf29ce484222325ULL;

  void byte(std::uint8_t b) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  void u32(std::uint32_t v) {
    byte(static_cast<std::uint8_t>(v));
    byte(static_cast<std::uint8_t>(v >> 8));
    byte(static_cast<std::uint8_t>(v >> 16));
    byte(static_cast<std::uint8_t>(v >> 24));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v));
    u32(static_cast<std::uint32_t>(v >> 32));
  }
};

/// Counting-sort fill helper: after bump-filling with xadj[u]++ cursors,
/// every xadj[u] holds what xadj[u+1] should be — shift back down.
void restore_offsets(std::vector<eid_t>& xadj, vid_t n) {
  for (vid_t u = n; u > 0; --u) {
    xadj[static_cast<std::size_t>(u)] = xadj[static_cast<std::size_t>(u) - 1];
  }
  xadj[0] = 0;
}

/// In-place insertion sort of a parallel (neighbor, weight) row segment,
/// ascending by neighbor id.  Per-row insertion counts are tiny under the
/// churn levels the incremental path serves, and this allocates nothing.
void sort_row_segment(std::vector<vid_t>& nbr, std::vector<ewt_t>& w,
                      std::size_t begin, std::size_t end) {
  for (std::size_t i = begin + 1; i < end; ++i) {
    const vid_t nv = nbr[i];
    const ewt_t nw = w[i];
    std::size_t j = i;
    while (j > begin && nbr[j - 1] > nv) {
      nbr[j] = nbr[j - 1];
      w[j] = w[j - 1];
      --j;
    }
    nbr[j] = nv;
    w[j] = nw;
  }
}

}  // namespace

void DeltaBatch::clear() {
  edge_ins.clear();
  edge_del.clear();
  vertex_add.clear();
  vertex_rem.clear();
  weight_upd.clear();
}

bool DeltaBatch::empty() const { return num_ops() == 0; }

std::size_t DeltaBatch::num_ops() const {
  return edge_ins.size() + edge_del.size() + vertex_add.size() +
         vertex_rem.size() + weight_upd.size();
}

std::size_t DeltaScratch::bytes_reserved() const {
  return vec_bytes(dirty) + vec_bytes(removed) + vec_bytes(touched) +
         vec_bytes(ins_xadj) + vec_bytes(ins_nbr) + vec_bytes(ins_w) +
         vec_bytes(del_xadj) + vec_bytes(del_nbr);
}

std::uint64_t graph_fingerprint(const Graph& g) {
  Fnv64 f;
  const vid_t n = g.num_vertices();
  f.u64(static_cast<std::uint64_t>(n));
  f.u64(static_cast<std::uint64_t>(g.num_arcs()));
  for (eid_t x : g.xadj()) f.u64(static_cast<std::uint64_t>(x));
  for (vid_t v : g.adjncy()) f.u32(static_cast<std::uint32_t>(v));
  for (vwt_t w : g.vwgt()) f.u64(static_cast<std::uint64_t>(w));
  for (ewt_t w : g.adjwgt()) f.u64(static_cast<std::uint64_t>(w));
  return f.h;
}

std::string apply_delta(const Graph& src, const DeltaBatch& b, DeltaScratch& s,
                        Graph& dst, DeltaApplyResult& out) {
  out = DeltaApplyResult{};
  const vid_t old_n = src.num_vertices();
  const eid_t old_arcs = src.num_arcs();
  if (b.vertex_add.size() >
      static_cast<std::size_t>(std::numeric_limits<vid_t>::max() - old_n)) {
    return "vertex additions overflow the id space";
  }
  const vid_t new_n = old_n + static_cast<vid_t>(b.vertex_add.size());
  const std::size_t nn = static_cast<std::size_t>(new_n);
  out.old_n = old_n;
  out.new_n = new_n;

  Graph::Storage st = dst.take_storage();

  for (vwt_t w : b.vertex_add) {
    if (w < 0) return "added vertex has negative weight";
  }

  s.dirty.assign(nn, 0);
  s.removed.assign(nn, 0);

  // --- Vertex removals (tombstones).  The removed row goes empty, and every
  // neighbour loses the arc back, so both sides are dirty.
  for (vid_t v : b.vertex_rem) {
    if (v < 0 || v >= old_n) return "vertex removal id out of range";
    if (s.removed[static_cast<std::size_t>(v)] != 0) {
      return "duplicate vertex removal";
    }
    s.removed[static_cast<std::size_t>(v)] = 1;
    s.dirty[static_cast<std::size_t>(v)] = 1;
  }
  for (vid_t v : b.vertex_rem) {
    for (vid_t u : src.neighbors(v)) s.dirty[static_cast<std::size_t>(u)] = 1;
  }

  // --- Weight updates (validated here, applied to the weight array below).
  for (const WeightUpd& wu : b.weight_upd) {
    if (wu.v < 0 || wu.v >= new_n) return "weight update id out of range";
    if (wu.w < 0) return "weight update is negative";
    if (s.removed[static_cast<std::size_t>(wu.v)] != 0) {
      return "weight update on a removed vertex";
    }
  }

  // New vertices need placement even when isolated: always in the frontier.
  for (vid_t v = old_n; v < new_n; ++v) s.dirty[static_cast<std::size_t>(v)] = 1;

  // --- Per-row deletion lists (counting sort: count, prefix, bump-fill).
  s.del_xadj.assign(nn + 1, 0);
  for (const EdgeDel& e : b.edge_del) {
    if (e.u < 0 || e.u >= old_n || e.v < 0 || e.v >= old_n) {
      return "edge deletion id out of range";
    }
    if (e.u == e.v) return "edge deletion is a self-loop";
    if (s.removed[static_cast<std::size_t>(e.u)] != 0 ||
        s.removed[static_cast<std::size_t>(e.v)] != 0) {
      return "edge deletion touches a removed vertex";
    }
    ++s.del_xadj[static_cast<std::size_t>(e.u) + 1];
    ++s.del_xadj[static_cast<std::size_t>(e.v) + 1];
    s.dirty[static_cast<std::size_t>(e.u)] = 1;
    s.dirty[static_cast<std::size_t>(e.v)] = 1;
  }
  for (std::size_t i = 1; i <= nn; ++i) s.del_xadj[i] += s.del_xadj[i - 1];
  s.del_nbr.resize(static_cast<std::size_t>(2) * b.edge_del.size());
  for (const EdgeDel& e : b.edge_del) {
    s.del_nbr[static_cast<std::size_t>(
        s.del_xadj[static_cast<std::size_t>(e.u)]++)] = e.v;
    s.del_nbr[static_cast<std::size_t>(
        s.del_xadj[static_cast<std::size_t>(e.v)]++)] = e.u;
  }
  restore_offsets(s.del_xadj, new_n);

  // --- Per-row insertion lists, same scheme.  Each row segment is sorted
  // by neighbor id below, so dirty rows come out in canonical (ascending)
  // order and the patched fingerprint is content-addressed: it equals the
  // fingerprint of the same graph built from scratch (given sorted source
  // rows, which every house builder produces).
  s.ins_xadj.assign(nn + 1, 0);
  for (const EdgeIns& e : b.edge_ins) {
    if (e.u < 0 || e.u >= new_n || e.v < 0 || e.v >= new_n) {
      return "edge insertion id out of range";
    }
    if (e.u == e.v) return "edge insertion is a self-loop";
    if (e.w <= 0) return "edge insertion weight must be positive";
    if (s.removed[static_cast<std::size_t>(e.u)] != 0 ||
        s.removed[static_cast<std::size_t>(e.v)] != 0) {
      return "edge insertion touches a removed vertex";
    }
    ++s.ins_xadj[static_cast<std::size_t>(e.u) + 1];
    ++s.ins_xadj[static_cast<std::size_t>(e.v) + 1];
    s.dirty[static_cast<std::size_t>(e.u)] = 1;
    s.dirty[static_cast<std::size_t>(e.v)] = 1;
  }
  for (std::size_t i = 1; i <= nn; ++i) s.ins_xadj[i] += s.ins_xadj[i - 1];
  s.ins_nbr.resize(static_cast<std::size_t>(2) * b.edge_ins.size());
  s.ins_w.resize(s.ins_nbr.size());
  for (const EdgeIns& e : b.edge_ins) {
    const auto pu =
        static_cast<std::size_t>(s.ins_xadj[static_cast<std::size_t>(e.u)]++);
    const auto pv =
        static_cast<std::size_t>(s.ins_xadj[static_cast<std::size_t>(e.v)]++);
    s.ins_nbr[pu] = e.v;
    s.ins_w[pu] = e.w;
    s.ins_nbr[pv] = e.u;
    s.ins_w[pv] = e.w;
  }
  restore_offsets(s.ins_xadj, new_n);
  for (vid_t u = 0; u < new_n; ++u) {
    const std::size_t uu = static_cast<std::size_t>(u);
    sort_row_segment(s.ins_nbr, s.ins_w,
                     static_cast<std::size_t>(s.ins_xadj[uu]),
                     static_cast<std::size_t>(s.ins_xadj[uu + 1]));
  }

  const auto in_del = [&](vid_t u, vid_t v) {
    const auto begin = static_cast<std::size_t>(
        s.del_xadj[static_cast<std::size_t>(u)]);
    const auto end = static_cast<std::size_t>(
        s.del_xadj[static_cast<std::size_t>(u) + 1]);
    for (std::size_t i = begin; i < end; ++i) {
      if (s.del_nbr[i] == v) return true;
    }
    return false;
  };

  // --- Insertion validation: no duplicates within the batch, and an
  // inserted edge must not already exist unless the same batch deletes it
  // (delete+insert is the edge-weight-update idiom).
  for (vid_t u = 0; u < new_n; ++u) {
    const auto begin = static_cast<std::size_t>(
        s.ins_xadj[static_cast<std::size_t>(u)]);
    const auto end = static_cast<std::size_t>(
        s.ins_xadj[static_cast<std::size_t>(u) + 1]);
    for (std::size_t i = begin; i < end; ++i) {
      const vid_t v = s.ins_nbr[i];
      for (std::size_t j = begin; j < i; ++j) {
        if (s.ins_nbr[j] == v) return "duplicate edge insertion";
      }
      if (u < old_n && v < old_n) {
        for (vid_t w : src.neighbors(u)) {
          if (w == v) {
            if (!in_del(u, v)) return "inserted edge already exists";
            break;
          }
        }
      }
    }
  }

  // --- Pass A: new per-row degrees.  Also validates that every deletion
  // matches an existing arc (per row: matched count == deletion count).
  st.xadj.assign(nn + 1, 0);
  for (vid_t u = 0; u < old_n; ++u) {
    const std::size_t uu = static_cast<std::size_t>(u);
    const eid_t du_ins = s.ins_xadj[uu + 1] - s.ins_xadj[uu];
    const eid_t du_del = s.del_xadj[uu + 1] - s.del_xadj[uu];
    if (s.removed[uu] != 0) {
      st.xadj[uu + 1] = 0;
      continue;
    }
    if (s.dirty[uu] == 0) {
      st.xadj[uu + 1] = src.degree(u);
      continue;
    }
    eid_t cnt = 0;
    eid_t matched = 0;
    for (vid_t v : src.neighbors(u)) {
      if (s.removed[static_cast<std::size_t>(v)] != 0) continue;
      if (du_del > 0 && in_del(u, v)) {
        ++matched;
        continue;
      }
      ++cnt;
    }
    if (matched != du_del) {
      return "edge deletion does not match an existing edge";
    }
    st.xadj[uu + 1] = cnt + du_ins;
  }
  for (vid_t u = old_n; u < new_n; ++u) {
    const std::size_t uu = static_cast<std::size_t>(u);
    st.xadj[uu + 1] = s.ins_xadj[uu + 1] - s.ins_xadj[uu];
  }
  for (std::size_t i = 1; i <= nn; ++i) st.xadj[i] += st.xadj[i - 1];
  const eid_t new_arcs = st.xadj[nn];

  // --- Pass B: fill rows.  Clean rows copy straight through; dirty rows
  // merge surviving source arcs with the (sorted) insertion segment, so a
  // sorted source row stays sorted — the canonical-fingerprint invariant.
  // Survivors and insertions never collide: an inserted edge either did
  // not exist or is deleted by the same batch, so strict < suffices.
  st.adjncy.resize(static_cast<std::size_t>(new_arcs));
  st.adjwgt.resize(static_cast<std::size_t>(new_arcs));
  for (vid_t u = 0; u < new_n; ++u) {
    const std::size_t uu = static_cast<std::size_t>(u);
    std::size_t pos = static_cast<std::size_t>(st.xadj[uu]);
    if (u < old_n && s.dirty[uu] == 0) {
      auto nbrs = src.neighbors(u);
      auto wgts = src.edge_weights(u);
      std::copy(nbrs.begin(), nbrs.end(), st.adjncy.begin() + pos);
      std::copy(wgts.begin(), wgts.end(), st.adjwgt.begin() + pos);
      continue;
    }
    std::size_t ip = static_cast<std::size_t>(s.ins_xadj[uu]);
    const auto ie = static_cast<std::size_t>(s.ins_xadj[uu + 1]);
    if (u < old_n && s.removed[uu] == 0) {
      auto nbrs = src.neighbors(u);
      auto wgts = src.edge_weights(u);
      const eid_t du_del = s.del_xadj[uu + 1] - s.del_xadj[uu];
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const vid_t v = nbrs[i];
        if (s.removed[static_cast<std::size_t>(v)] != 0) continue;
        if (du_del > 0 && in_del(u, v)) continue;
        while (ip < ie && s.ins_nbr[ip] < v) {
          st.adjncy[pos] = s.ins_nbr[ip];
          st.adjwgt[pos] = s.ins_w[ip];
          ++pos;
          ++ip;
        }
        st.adjncy[pos] = v;
        st.adjwgt[pos] = wgts[i];
        ++pos;
      }
    }
    for (; ip < ie; ++ip) {
      st.adjncy[pos] = s.ins_nbr[ip];
      st.adjwgt[pos] = s.ins_w[ip];
      ++pos;
    }
  }

  // --- Vertex weights: copy (tombstones zeroed), apply updates, append.
  st.vwgt.resize(nn);
  for (vid_t v = 0; v < old_n; ++v) {
    const std::size_t vv = static_cast<std::size_t>(v);
    st.vwgt[vv] = s.removed[vv] != 0 ? vwt_t{0} : src.vertex_weight(v);
  }
  for (std::size_t i = 0; i < b.vertex_add.size(); ++i) {
    st.vwgt[static_cast<std::size_t>(old_n) + i] = b.vertex_add[i];
  }
  for (const WeightUpd& wu : b.weight_upd) {
    st.vwgt[static_cast<std::size_t>(wu.v)] = wu.w;
  }

  // --- Frontier: ascending ids of every row that changed.
  s.touched.clear();
  for (vid_t v = 0; v < new_n; ++v) {
    if (s.dirty[static_cast<std::size_t>(v)] != 0) s.touched.push_back(v);
  }

  const eid_t ins_arcs = static_cast<eid_t>(2 * b.edge_ins.size());
  const eid_t surviving = new_arcs - ins_arcs;
  out.arcs_changed = (old_arcs - surviving) + ins_arcs;
  out.churn_ratio = static_cast<double>(out.arcs_changed) /
                    static_cast<double>(std::max<eid_t>(1, old_arcs));

  dst = Graph(std::move(st.xadj), std::move(st.adjncy), std::move(st.vwgt),
              std::move(st.adjwgt));
  out.fingerprint = graph_fingerprint(dst);
  return "";
}

}  // namespace mgp::dynamic
