#include "dynamic/churn.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <unordered_set>

namespace mgp::dynamic {
namespace {

std::uint64_t edge_key(vid_t u, vid_t v) {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(u)) << 32) |
         static_cast<std::uint32_t>(v);
}

bool has_edge(const Graph& g, vid_t u, vid_t v) {
  for (vid_t w : g.neighbors(u)) {
    if (w == v) return true;
  }
  return false;
}

}  // namespace

void synth_churn_batch(const Graph& g, double fraction, Rng& rng,
                       DeltaBatch& out) {
  out.clear();
  const vid_t n = g.num_vertices();
  const eid_t arcs = g.num_arcs();
  const eid_t m = arcs / 2;
  if (n < 2 || m == 0) return;
  fraction = std::clamp(fraction, 0.0, 0.5);
  const eid_t count = std::min<eid_t>(
      m, static_cast<eid_t>(std::ceil(fraction * static_cast<double>(m))));
  if (count == 0) return;

  auto xadj = g.xadj();
  std::unordered_set<std::uint64_t> chosen;
  chosen.reserve(static_cast<std::size_t>(count) * 2);

  // Deletions: sample distinct existing edges via random directed-arc slots
  // (degree-proportional, which is fine — churn should hit dense regions).
  while (out.edge_del.size() < static_cast<std::size_t>(count)) {
    const eid_t slot =
        static_cast<eid_t>(rng.next_below(static_cast<std::uint64_t>(arcs)));
    const auto it = std::upper_bound(xadj.begin(), xadj.end(), slot);
    const vid_t u = static_cast<vid_t>((it - xadj.begin()) - 1);
    const vid_t v = g.adjncy()[static_cast<std::size_t>(slot)];
    if (!chosen.insert(edge_key(u, v)).second) continue;
    out.edge_del.push_back({std::min(u, v), std::max(u, v)});
  }

  // Insertions: rejection-sample distinct non-edges (vs. the source graph,
  // the deletions above, and earlier insertions).
  std::unordered_set<std::uint64_t> inserted;
  inserted.reserve(static_cast<std::size_t>(count) * 2);
  while (out.edge_ins.size() < static_cast<std::size_t>(count)) {
    const vid_t u = rng.next_vid(n);
    const vid_t v = rng.next_vid(n);
    if (u == v) continue;
    const std::uint64_t key = edge_key(u, v);
    if (chosen.count(key) != 0 || inserted.count(key) != 0) continue;
    if (has_edge(g, u, v)) continue;
    inserted.insert(key);
    const ewt_t w = static_cast<ewt_t>(1 + rng.next_below(4));
    out.edge_ins.push_back({std::min(u, v), std::max(u, v), w});
  }
}

void invert_churn_batch(const Graph& g, const DeltaBatch& fwd,
                        DeltaBatch& out) {
  assert(fwd.vertex_add.empty() && fwd.vertex_rem.empty() &&
         fwd.weight_upd.empty());
  out.clear();
  for (const EdgeIns& e : fwd.edge_ins) out.edge_del.push_back({e.u, e.v});
  for (const EdgeDel& e : fwd.edge_del) {
    ewt_t w = 1;
    auto nbrs = g.neighbors(e.u);
    auto wgts = g.edge_weights(e.u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] == e.v) {
        w = wgts[i];
        break;
      }
    }
    out.edge_ins.push_back({e.u, e.v, w});
  }
}

}  // namespace mgp::dynamic
