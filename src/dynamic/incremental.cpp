#include "dynamic/incremental.hpp"

#include <algorithm>

#include "core/kway.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "support/rng.hpp"

namespace mgp::dynamic {
namespace {

std::size_t vec_bytes(const auto& v) {
  return v.capacity() * sizeof(typename std::decay_t<decltype(v)>::value_type);
}

/// Full recomputation (also the fallback target).  Re-anchors the quality
/// estimate at the fresh cut.
RepartitionResult run_scratch(const Graph& g, part_t k,
                              const IncrementalConfig& icfg,
                              std::uint64_t seed, LabelState& state,
                              RepartitionResult::Reason reason,
                              IncrementalWorkspace& ws, BisectWorkspace* bws,
                              ThreadPool* pool) {
  RepartitionResult res;
  res.from_scratch = true;
  res.reason = reason;
  Rng rng(seed);
  res.cut = kway_partition_direct_into(g, k, icfg.direct, rng, ws.direct, bws,
                                       state.part, nullptr, pool);
  state.cut = res.cut;
  state.cut_estimate = static_cast<double>(res.cut);
  return res;
}

}  // namespace

std::size_t IncrementalWorkspace::bytes_reserved() const {
  return direct.bytes_reserved() + vec_bytes(pwgts) + vec_bytes(active) +
         vec_bytes(conn) + vec_bytes(conn_touched);
}

RepartitionResult repartition_after_delta(
    const Graph& g, part_t k, const IncrementalConfig& icfg,
    std::uint64_t seed, LabelState& state, std::uint64_t new_fingerprint,
    std::span<const vid_t> touched, double churn_ratio,
    IncrementalWorkspace& ws, BisectWorkspace* bws, ThreadPool* pool) {
  obs::Obs* ob = icfg.direct.base.obs;
  const auto finish = [&](RepartitionResult res) {
    state.fingerprint = new_fingerprint;
    state.valid = true;
    if (ob != nullptr) {
      ob->metrics.add(ob->pipeline.dyn_repartitions);
      if (res.from_scratch) ob->metrics.add(ob->pipeline.dyn_fallbacks);
    }
    return res;
  };
  const auto scratch = [&](RepartitionResult::Reason why) {
    return finish(
        run_scratch(g, k, icfg, seed, state, why, ws, bws, pool));
  };

  if (!state.valid || k <= 0) {
    return scratch(RepartitionResult::Reason::kNoPrevious);
  }
  if (churn_ratio > icfg.full_rebuild_ratio) {
    return scratch(RepartitionResult::Reason::kChurnRatio);
  }

  obs::Span span("dynamic.repartition");
  const vid_t n = g.num_vertices();
  const vid_t old_n = static_cast<vid_t>(state.part.size());
  if (old_n > n) return scratch(RepartitionResult::Reason::kNoPrevious);
  span.arg("n", n);
  span.arg("touched", static_cast<std::int64_t>(touched.size()));

  // --- Project the previous labelling and rebuild part weights (one O(n)
  // rescan; tombstones weigh 0, so keeping their stale label is free).  A
  // label out of [0, k) means the state belongs to a different k — refuse.
  std::vector<part_t>& part = state.part;
  part.resize(static_cast<std::size_t>(n));
  const std::size_t kk = static_cast<std::size_t>(k);
  ws.pwgts.assign(kk, 0);
  for (vid_t v = 0; v < old_n; ++v) {
    const part_t p = part[static_cast<std::size_t>(v)];
    if (p < 0 || p >= k) return scratch(RepartitionResult::Reason::kNoPrevious);
    ws.pwgts[static_cast<std::size_t>(p)] += g.vertex_weight(v);
  }

  // --- Place new vertices, ascending id, by cheapest connectivity: the
  // part holding the most incident edge weight among already-labelled
  // neighbours (ties to the lower part id); isolated vertices go to the
  // lightest part.  Ascending order means every neighbour with a smaller
  // id — old or new — is already labelled.
  ws.conn.assign(kk, 0);
  ws.conn_touched.resize(kk);
  for (vid_t v = old_n; v < n; ++v) {
    auto nbrs = g.neighbors(v);
    auto wgts = g.edge_weights(v);
    int nt = 0;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const vid_t u = nbrs[i];
      if (u >= v) continue;  // not yet labelled
      const part_t p = part[static_cast<std::size_t>(u)];
      if (ws.conn[static_cast<std::size_t>(p)] == 0) {
        ws.conn_touched[static_cast<std::size_t>(nt++)] = p;
      }
      ws.conn[static_cast<std::size_t>(p)] += wgts[i];
    }
    part_t best = -1;
    if (nt > 0) {
      ewt_t best_conn = 0;
      for (int t = 0; t < nt; ++t) {
        const part_t p = ws.conn_touched[static_cast<std::size_t>(t)];
        const ewt_t c = ws.conn[static_cast<std::size_t>(p)];
        if (best == -1 || c > best_conn || (c == best_conn && p < best)) {
          best = p;
          best_conn = c;
        }
      }
      for (int t = 0; t < nt; ++t) {
        ws.conn[static_cast<std::size_t>(ws.conn_touched[
            static_cast<std::size_t>(t)])] = 0;
      }
    } else {
      for (part_t p = 0; p < k; ++p) {
        if (best == -1 ||
            ws.pwgts[static_cast<std::size_t>(p)] <
                ws.pwgts[static_cast<std::size_t>(best)]) {
          best = p;
        }
      }
    }
    part[static_cast<std::size_t>(v)] = best;
    ws.pwgts[static_cast<std::size_t>(best)] += g.vertex_weight(v);
  }

  // --- Balance envelope: identical to the direct path's finest level, so
  // incremental and from-scratch answers live under the same constraint.
  const vwt_t total = g.total_vertex_weight();
  vwt_t max_vwgt = 0;
  for (vid_t v = 0; v < n; ++v) {
    max_vwgt = std::max(max_vwgt, g.vertex_weight(v));
  }
  const vwt_t max_part_weight =
      static_cast<vwt_t>((static_cast<double>(total) / k) *
                         (1.0 + icfg.direct.imbalance)) +
      max_vwgt;
  const vwt_t min_part_weight = std::max<vwt_t>(1, (total / k) / 2);

  // --- Frontier: the delta's dirty rows plus their neighbours.
  ws.active.assign(static_cast<std::size_t>(n), 0);
  for (vid_t v : touched) {
    ws.active[static_cast<std::size_t>(v)] = 1;
    for (vid_t u : g.neighbors(v)) ws.active[static_cast<std::size_t>(u)] = 1;
  }

  kway_balance(g, part, k, ws.pwgts, max_part_weight, min_part_weight,
               ws.direct.refine);
  const KwayRefineResult rr = kway_parallel_refine_active(
      g, part, k, ws.pwgts, max_part_weight, min_part_weight,
      icfg.refine_passes, pool, ws.direct.refine, {ws.active});
  if (ob != nullptr) {
    ob->metrics.add(ob->pipeline.kway_rounds, rr.rounds);
    ob->metrics.add(ob->pipeline.kway_conflict_rejects, rr.conflict_rejects);
  }

  RepartitionResult res;
  res.cut = compute_kway_cut(g, part);
  res.refine_rounds = rr.rounds;

  // --- Quality gate: the tracked estimate inflates with the churn, and the
  // incremental answer must stay within quality_bound of it — otherwise
  // re-anchor with a full rebuild (run_scratch overwrites part/cut).
  const double inflated = state.cut_estimate * (1.0 + churn_ratio);
  if (inflated > 0.0 &&
      static_cast<double>(res.cut) > icfg.quality_bound * inflated) {
    return scratch(RepartitionResult::Reason::kQualityBound);
  }
  state.cut = res.cut;
  state.cut_estimate = std::max(
      1.0, std::min(inflated, static_cast<double>(res.cut)));
  return finish(res);
}

}  // namespace mgp::dynamic
