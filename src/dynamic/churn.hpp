// Synthetic edge churn for benchmarks and tests.
//
// synth_churn_batch builds a DeltaBatch that deletes a fixed fraction of a
// graph's edges and inserts the same number of fresh non-edges — the
// standard dynamic-graph workload shape (steady size, churning topology).
// All choices come from the caller's seeded Rng in a fixed draw order, so a
// pinned (graph, fraction, seed) triple yields the identical batch on every
// machine: the determinism suite, the golden corpus, and the figL bench all
// replay the same streams.
#pragma once

#include "dynamic/delta.hpp"
#include "support/rng.hpp"

namespace mgp::dynamic {

/// Fills `out` with a churn batch against `g`: ceil(fraction * |E|) edge
/// deletions (distinct existing edges) and the same count of insertions
/// (distinct non-edges, unit-to-small random weights).  `fraction` is
/// clamped to [0, 0.5].  Allocates freely — generation is a test/bench
/// concern, only *applying* deltas is allocation-gated.
void synth_churn_batch(const Graph& g, double fraction, Rng& rng,
                       DeltaBatch& out);

/// Builds the batch that undoes a pure edge-churn batch `fwd` applied to
/// `g` (delete what fwd inserted, re-insert what fwd deleted with the
/// original weights read from `g`).  Applying fwd then the result returns
/// to `g` exactly — the alloc tests ping-pong between the two states.
/// `fwd` must contain edge ops only.
void invert_churn_batch(const Graph& g, const DeltaBatch& fwd,
                        DeltaBatch& out);

}  // namespace mgp::dynamic
