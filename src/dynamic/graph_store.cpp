#include "dynamic/graph_store.hpp"

#include <utility>

namespace mgp::dynamic {

std::size_t GraphStore::entry_bytes(const Entry& e) {
  std::size_t total = sizeof(Entry) + e.graph.memory_bytes() +
                      e.spare.memory_bytes() +
                      e.patch_scratch.bytes_reserved();
  for (const auto& [key, state] : e.labels) {
    total += sizeof(LabelKey) + sizeof(LabelState) +
             state.part.capacity() * sizeof(part_t);
  }
  return total;
}

void GraphStore::evict_for(std::size_t need) {
  auto it = lru_.end();
  while (bytes_ + need > max_bytes_ && it != lru_.begin()) {
    --it;
    auto mit = map_.find(*it);
    // A lease pins the entry: shared_ptr copies are only minted under mu_
    // (checkout), so a use_count of 1 here means the map is the sole owner
    // and the entry is safe to drop.
    if (mit == map_.end() || mit->second.entry.use_count() != 1) continue;
    bytes_ -= mit->second.charged;
    map_.erase(mit);
    it = lru_.erase(it);
    ++stats_.evictions;
  }
}

GraphStore::PinOutcome GraphStore::pin(Graph& g, std::uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(fingerprint);
  if (it != map_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second.pos);
    ++stats_.repins;
    return {true, true};
  }
  auto entry = std::make_shared<Entry>();
  entry->fingerprint = fingerprint;
  entry->graph = std::move(g);
  const std::size_t need = entry_bytes(*entry);
  evict_for(need);
  if (bytes_ + need > max_bytes_) {
    g = std::move(entry->graph);  // hand the decode buffer back
    ++stats_.rejected;
    return {false, false};
  }
  lru_.push_front(fingerprint);
  map_[fingerprint] = Slot{std::move(entry), lru_.begin(), need};
  bytes_ += need;
  ++stats_.pins;
  return {true, false};
}

GraphStore::EntryPtr GraphStore::checkout(std::uint64_t fingerprint) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(fingerprint);
  if (it == map_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second.pos);
  return it->second.entry;
}

void GraphStore::rekey(const EntryPtr& entry, std::uint64_t old_fp,
                       std::uint64_t new_fp) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(old_fp);
  if (it == map_.end() || it->second.entry != entry) return;
  const std::size_t charged = entry_bytes(*entry);
  if (new_fp == old_fp) {
    bytes_ += charged;
    bytes_ -= it->second.charged;
    it->second.charged = charged;
    return;
  }
  auto occ = map_.find(new_fp);
  if (occ != map_.end()) {
    if (occ->second.entry.use_count() == 1) {
      // Identical bytes, older labellings: the freshly-patched entry wins.
      bytes_ -= occ->second.charged;
      lru_.erase(occ->second.pos);
      map_.erase(occ);
      ++stats_.evictions;
    } else {
      // The occupant is checked out — drop *this* entry from the map
      // instead.  The caller's lease stays valid for the in-flight
      // response; the next delta referencing new_fp finds the occupant.
      bytes_ -= it->second.charged;
      lru_.erase(it->second.pos);
      map_.erase(it);
      ++stats_.evictions;
      return;
    }
  }
  auto nh = map_.extract(it);  // node reuse: no allocation
  nh.key() = new_fp;
  bytes_ += charged;
  bytes_ -= nh.mapped().charged;
  nh.mapped().charged = charged;
  *nh.mapped().pos = new_fp;
  lru_.splice(lru_.begin(), lru_, nh.mapped().pos);
  map_.insert(std::move(nh));
}

GraphStore::Stats GraphStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.entries = map_.size();
  s.bytes = bytes_;
  s.max_bytes = max_bytes_;
  return s;
}

}  // namespace mgp::dynamic
