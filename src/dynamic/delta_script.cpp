#include "dynamic/delta_script.hpp"

#include <fstream>
#include <sstream>

namespace mgp::dynamic {
namespace {

std::string at_line(int line, const std::string& msg) {
  std::ostringstream os;
  os << "delta script line " << line << ": " << msg;
  return os.str();
}

}  // namespace

std::string parse_delta_script(std::istream& in,
                               std::vector<DeltaBatch>& out) {
  out.clear();
  std::string line;
  int lineno = 0;
  bool in_batch = false;
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string op;
    if (!(ls >> op)) continue;  // blank / comment-only line

    if (op == "batch") {
      out.emplace_back();
      in_batch = true;
      continue;
    }
    if (!in_batch) return at_line(lineno, "op before the first 'batch' line");
    DeltaBatch& b = out.back();

    if (op == "ae") {
      long long u = 0;
      long long v = 0;
      long long w = 0;
      if (!(ls >> u >> v >> w)) return at_line(lineno, "expected: ae u v w");
      b.edge_ins.push_back({static_cast<vid_t>(u), static_cast<vid_t>(v),
                            static_cast<ewt_t>(w)});
    } else if (op == "de") {
      long long u = 0;
      long long v = 0;
      if (!(ls >> u >> v)) return at_line(lineno, "expected: de u v");
      b.edge_del.push_back({static_cast<vid_t>(u), static_cast<vid_t>(v)});
    } else if (op == "av") {
      long long w = 0;
      if (!(ls >> w)) return at_line(lineno, "expected: av w");
      b.vertex_add.push_back(static_cast<vwt_t>(w));
    } else if (op == "rv") {
      long long v = 0;
      if (!(ls >> v)) return at_line(lineno, "expected: rv v");
      b.vertex_rem.push_back(static_cast<vid_t>(v));
    } else if (op == "vw") {
      long long v = 0;
      long long w = 0;
      if (!(ls >> v >> w)) return at_line(lineno, "expected: vw v w");
      b.weight_upd.push_back({static_cast<vid_t>(v), static_cast<vwt_t>(w)});
    } else {
      return at_line(lineno, "unknown op '" + op + "'");
    }
    std::string trailing;
    if (ls >> trailing) return at_line(lineno, "trailing tokens");
  }
  return "";
}

std::string parse_delta_script_file(const std::string& path,
                                    std::vector<DeltaBatch>& out) {
  std::ifstream in(path);
  if (!in) return "cannot open delta script '" + path + "'";
  return parse_delta_script(in, out);
}

void write_delta_script(std::ostream& os,
                        const std::vector<DeltaBatch>& batches) {
  for (const DeltaBatch& b : batches) {
    os << "batch\n";
    for (vwt_t w : b.vertex_add) os << "av " << w << "\n";
    for (const WeightUpd& wu : b.weight_upd) {
      os << "vw " << wu.v << " " << wu.w << "\n";
    }
    for (vid_t v : b.vertex_rem) os << "rv " << v << "\n";
    for (const EdgeDel& e : b.edge_del) {
      os << "de " << e.u << " " << e.v << "\n";
    }
    for (const EdgeIns& e : b.edge_ins) {
      os << "ae " << e.u << " " << e.v << " " << e.w << "\n";
    }
  }
}

}  // namespace mgp::dynamic
