// Text encoding of delta sequences, shared by the offline
// `partition_file --delta-script` twin, `mgp_client --delta-script`, and the
// test corpus — one canonical file format so the server-vs-offline byte
// comparison in CI replays the identical mutation stream on both sides.
//
// Grammar (one op per line, '#' starts a comment, blank lines ignored):
//
//   batch            start a new batch (required before the first op)
//   ae u v w         insert edge {u, v} with weight w
//   de u v           delete edge {u, v}
//   av w             append a vertex of weight w (id = current |V|)
//   rv v             remove (tombstone) vertex v
//   vw v w           set vertex v's weight to w
//
// Vertex ids are 0-based.  Each `batch` line opens a new DeltaBatch; the
// batch is implicitly closed by the next `batch` line or end of file.  An
// empty batch (two adjacent `batch` lines) is legal — it round-trips to a
// no-op DELTA_REPARTITION, which exercises the server's label-cache hit.
#pragma once

#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "dynamic/delta.hpp"

namespace mgp::dynamic {

/// Parses a delta script.  Returns "" and fills `out` on success, or a
/// message naming the offending line.  `out` is cleared first.
std::string parse_delta_script(std::istream& in, std::vector<DeltaBatch>& out);

/// As above, from a file path ("cannot open ..." on I/O failure).
std::string parse_delta_script_file(const std::string& path,
                                    std::vector<DeltaBatch>& out);

/// Writes `batches` in the script grammar (parse_delta_script inverse).
void write_delta_script(std::ostream& os,
                        const std::vector<DeltaBatch>& batches);

}  // namespace mgp::dynamic
