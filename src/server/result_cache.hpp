// LRU cache of finished partitions, keyed by request identity.
//
// The key pairs an FNV-1a fingerprint of the request's graph bytes with a
// digest of its (k, seed, scheme, coarsen_to) configuration — exactly the
// inputs the partition is a deterministic function of (the deadline is
// deliberately outside the digest; see server/protocol.hpp) — plus the
// exact vertex and part counts, so a fingerprint collision can never serve
// a labelling of the wrong shape.  A hit therefore returns bytes identical
// to what a fresh computation would produce, so cache state can never
// change observable results, only latency.  See protocol.hpp for the trust
// assumption behind the non-cryptographic fingerprint.
//
// lookup() copies the labelling into a caller-owned buffer: the caller's
// warm vector makes the hit path allocation-free, and no reference into the
// cache escapes the lock.  At capacity, insert() recycles the evicted
// entry's buffer for the incoming labelling (steady-state insertions touch
// the heap only when the new partition outgrows the evicted capacity).
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "server/protocol.hpp"
#include "support/types.hpp"

namespace mgp::server {

class ResultCache {
 public:
  /// Holds at most `capacity` partitions (>= 1).
  explicit ResultCache(std::size_t capacity);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// On hit, copies the labelling into `part_out` (resized; capacity
  /// reused), sets `cut_out`, refreshes recency, and returns true.
  bool lookup(const CacheKey& key, std::vector<part_t>& part_out, ewt_t& cut_out);

  /// Inserts (or refreshes) a finished partition, evicting the least
  /// recently used entry at capacity.
  void insert(const CacheKey& key, std::span<const part_t> part, ewt_t cut);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
  };
  Stats stats() const;
  std::size_t size() const;

 private:
  struct KeyHash {
    std::size_t operator()(const CacheKey& k) const {
      // The fingerprint is already FNV-mixed; one multiply decorrelates the
      // two halves before folding.
      std::uint64_t h = k.graph_fp ^ (k.config_digest * 0x9e3779b97f4a7c15ULL);
      h ^= (k.n + (static_cast<std::uint64_t>(k.k) << 32)) * 0xff51afd7ed558ccdULL;
      return static_cast<std::size_t>(h);
    }
  };
  struct Entry {
    CacheKey key;
    std::vector<part_t> part;
    ewt_t cut = 0;
  };

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<CacheKey, std::list<Entry>::iterator, KeyHash> index_;
  Stats stats_;
};

}  // namespace mgp::server
