#include "server/handler.hpp"

#include <exception>
#include <mutex>
#include <utility>

#include "obs/trace.hpp"
#include "support/rng.hpp"

namespace mgp::server {

ServerMetrics::ServerMetrics(obs::MetricsRegistry& reg)
    : requests_total(reg.counter("server.requests")),
      responses_ok(reg.counter("server.responses_ok")),
      cache_hits(reg.counter("server.cache_hits")),
      cache_misses(reg.counter("server.cache_misses")),
      rejected_overloaded(reg.counter("server.rejected_overloaded")),
      deadline_expired(reg.counter("server.deadline_expired")),
      bad_requests(reg.counter("server.bad_requests")),
      connections_total(reg.counter("server.connections")),
      queue_depth_peak(reg.max_gauge("server.queue_depth_peak")),
      pins_total(reg.counter("server.pins")),
      deltas_total(reg.counter("server.deltas")),
      delta_fallbacks(reg.counter("server.delta_fallbacks")),
      delta_not_found(reg.counter("server.delta_not_found")) {}

RequestHandler::RequestHandler(WorkspacePool& pool, ResultCache& cache,
                               obs::MetricsRegistry& reg, const ServerMetrics& ids,
                               int direct_min_k, dynamic::GraphStore* store)
    : pool_(pool),
      cache_(cache),
      reg_(reg),
      ids_(ids),
      direct_min_k_(direct_min_k),
      store_(store) {}

void RequestHandler::handle(std::span<const std::uint8_t> payload,
                            std::chrono::steady_clock::time_point arrival,
                            std::vector<std::uint8_t>& frame_out) {
  obs::Span span("server.handle");
  reg_.add(ids_.requests_total);

  RequestHead head;
  err_.clear();
  Status st = decode_request_head(payload, head, err_);
  if (st != Status::kOk) {
    reg_.add(ids_.bad_requests);
    write_error_frame(st, err_, frame_out);
    return;
  }
  const auto k = static_cast<part_t>(head.k);

  // Cache identity is computed over the wire bytes, so a hit skips even
  // graph decoding.
  const CacheKey key = cache_key_of(payload);
  if (cache_.lookup(key, part_, cut_)) {
    reg_.add(ids_.cache_hits);
    reg_.add(ids_.responses_ok);
    write_response_frame(k, /*cache_hit=*/true, frame_out);
    return;
  }
  reg_.add(ids_.cache_misses);

  cancel_.reset();
  if (head.deadline_ms > 0) {
    cancel_.set_deadline(arrival + std::chrono::milliseconds(head.deadline_ms));
    if (cancel_.expired()) {  // budget burned while the request sat queued
      reg_.add(ids_.deadline_expired);
      write_error_frame(Status::kDeadlineExceeded,
                        "deadline expired before partitioning started", frame_out);
      return;
    }
  }

  st = decode_request_graph(payload, head, graph_, err_);
  if (st != Status::kOk) {
    reg_.add(ids_.bad_requests);
    write_error_frame(st, err_, frame_out);
    return;
  }

  MultilevelConfig cfg = config_from_head(head);
  if (head.deadline_ms > 0) cfg.cancel = &cancel_;
  // Exactly the offline driver's draw order: Rng(seed) and a single
  // next_u64 inside kway_partition_into, so the response bytes match
  // `partition_file --seed=S` for the same graph and scheme.
  Rng rng(head.seed);
  // kAuto picks direct k-way once k is large enough that recursive
  // bisection's O(log k) ladders dominate; an explicit mode always wins.
  // Both paths draw from the same single-seed Rng, so either response is
  // byte-identical to the offline CLI run of the matching scheme.
  const auto mode = static_cast<KwayMode>(head.kway_mode);
  const bool use_direct =
      mode == KwayMode::kDirect ||
      (mode == KwayMode::kAuto && static_cast<int>(k) >= direct_min_k_);
  try {
    WorkspacePool::Lease lease = pool_.checkout();
    if (use_direct) {
      KwayDirectConfig dcfg;
      dcfg.base = cfg;
      cut_ = kway_partition_direct_into(graph_, k, dcfg, rng, direct_ws_,
                                        lease.get(), part_);
    } else {
      cut_ = kway_partition_into(graph_, k, cfg, rng, scratch_, lease.get(), part_);
    }
  } catch (const CancelledError&) {
    reg_.add(ids_.deadline_expired);
    write_error_frame(Status::kDeadlineExceeded,
                      "deadline expired during partitioning", frame_out);
    return;
  } catch (const std::exception& e) {
    write_error_frame(Status::kInternal, e.what(), frame_out);
    return;
  }

  cache_.insert(key, part_, cut_);
  reg_.add(ids_.responses_ok);
  write_response_frame(k, /*cache_hit=*/false, frame_out);
}

void RequestHandler::handle_pin(std::span<const std::uint8_t> payload,
                                std::vector<std::uint8_t>& frame_out) {
  obs::Span span("server.pin");
  reg_.add(ids_.requests_total);
  if (store_ == nullptr) {
    write_error_frame(Status::kInternal, "graph store disabled", frame_out);
    return;
  }

  RequestHead head;
  err_.clear();
  Status st = decode_pin_request(payload, head, err_);
  if (st != Status::kOk) {
    reg_.add(ids_.bad_requests);
    write_error_frame(st, err_, frame_out);
    return;
  }

  // The fingerprint is over the whole payload (the graph region encoding),
  // so a re-pin of a known graph skips CSR decoding entirely — checkout()
  // also refreshes the entry's recency.
  const std::uint64_t fp = fnv1a64(payload);
  if (dynamic::GraphStore::EntryPtr entry = store_->checkout(fp)) {
    reg_.add(ids_.pins_total);
    encode_pin_response(fp, head.n, head.arcs, /*already_pinned=*/true, body_);
    write_body_frame(MsgType::kPinGraphResponse, frame_out);
    return;
  }

  st = decode_pin_graph(payload, head, pin_graph_, err_);
  if (st != Status::kOk) {
    reg_.add(ids_.bad_requests);
    write_error_frame(st, err_, frame_out);
    return;
  }

  const dynamic::GraphStore::PinOutcome outcome = store_->pin(pin_graph_, fp);
  if (!outcome.ok) {
    reg_.add(ids_.rejected_overloaded);
    write_error_frame(Status::kOverloaded, "graph store byte budget exhausted",
                      frame_out);
    return;
  }
  reg_.add(ids_.pins_total);
  encode_pin_response(fp, head.n, head.arcs, outcome.already_pinned, body_);
  write_body_frame(MsgType::kPinGraphResponse, frame_out);
}

void RequestHandler::handle_delta(std::span<const std::uint8_t> payload,
                                  std::chrono::steady_clock::time_point arrival,
                                  std::vector<std::uint8_t>& frame_out) {
  obs::Span span("server.delta");
  reg_.add(ids_.requests_total);
  reg_.add(ids_.deltas_total);
  if (store_ == nullptr) {
    write_error_frame(Status::kInternal, "graph store disabled", frame_out);
    return;
  }

  DeltaHead head;
  err_.clear();
  Status st = decode_delta_head(payload, head, err_);
  if (st != Status::kOk) {
    reg_.add(ids_.bad_requests);
    write_error_frame(st, err_, frame_out);
    return;
  }
  const auto k = static_cast<part_t>(head.k);

  cancel_.reset();
  if (head.deadline_ms > 0) {
    cancel_.set_deadline(arrival + std::chrono::milliseconds(head.deadline_ms));
    if (cancel_.expired()) {
      reg_.add(ids_.deadline_expired);
      write_error_frame(Status::kDeadlineExceeded,
                        "deadline expired before repartitioning started",
                        frame_out);
      return;
    }
  }

  st = decode_delta_ops(payload, head, batch_, err_);
  if (st != Status::kOk) {
    reg_.add(ids_.bad_requests);
    write_error_frame(st, err_, frame_out);
    return;
  }

  dynamic::GraphStore::EntryPtr entry = store_->checkout(head.fingerprint);
  if (entry == nullptr) {
    reg_.add(ids_.delta_not_found);
    write_error_frame(Status::kNotFound,
                      "fingerprint is not pinned (never pinned, or evicted)",
                      frame_out);
    return;
  }

  // Entry lock: serializes patch + repartition against concurrent deltas on
  // the same graph.  The store lock is NOT held here, so other workers keep
  // serving other graphs.
  std::lock_guard<std::mutex> entry_lock(entry->mu);
  if (entry->fingerprint != head.fingerprint) {
    // A concurrent delta re-keyed the entry between checkout and lock; the
    // client's view of the graph is stale.  Re-PIN and retry.
    reg_.add(ids_.delta_not_found);
    write_error_frame(Status::kNotFound,
                      "fingerprint was re-keyed by a concurrent delta",
                      frame_out);
    return;
  }

  // Warm-start slot: config digest over bytes [0, 20) — the same layout a
  // PartitionRequest digests — plus k.
  const dynamic::LabelKey lkey{fnv1a64(payload.subspan(0, kConfigDigestBytes)),
                               head.k};

  // Empty batch with a current labelling: pure cache hit, no patch, no
  // repartition.
  if (batch_.empty()) {
    auto it = entry->labels.find(lkey);
    if (it != entry->labels.end() && it->second.valid &&
        it->second.fingerprint == entry->fingerprint) {
      reg_.add(ids_.cache_hits);
      reg_.add(ids_.responses_ok);
      encode_delta_response(entry->fingerprint, /*from_scratch=*/false,
                            static_cast<std::uint8_t>(
                                dynamic::RepartitionResult::Reason::kIncremental),
                            it->second.part, k, it->second.cut,
                            /*cache_hit=*/true, body_);
      write_body_frame(MsgType::kDeltaResponse, frame_out);
      return;
    }
  }

  // Patch into the spare graph, then swap — the pre-delta CSR survives in
  // `spare` so a failed repartition can restore it (failure atomicity: an
  // entry is never left holding a graph its fingerprint does not name).
  const std::string patch_err = dynamic::apply_delta(
      entry->graph, batch_, entry->patch_scratch, entry->spare, apply_);
  if (!patch_err.empty()) {
    reg_.add(ids_.bad_requests);
    write_error_frame(Status::kBadRequest, patch_err, frame_out);
    return;
  }
  std::swap(entry->graph, entry->spare);

  dynamic::LabelState& slot = entry->labels[lkey];
  if (slot.valid && slot.fingerprint != head.fingerprint) {
    // The slot labels some other revision of this graph (e.g. the entry was
    // re-keyed onto an occupant's labelling history) — never warm-start
    // from it.
    slot.valid = false;
  }

  dynamic::IncrementalConfig icfg;
  icfg.direct.base = config_from_head(head);
  if (head.deadline_ms > 0) icfg.direct.base.cancel = &cancel_;

  dynamic::RepartitionResult result;
  try {
    WorkspacePool::Lease lease = pool_.checkout();
    result = dynamic::repartition_after_delta(
        entry->graph, k, icfg, head.seed, slot, apply_.fingerprint,
        entry->patch_scratch.touched, apply_.churn_ratio, inc_ws_, lease.get(),
        nullptr);
  } catch (const CancelledError&) {
    std::swap(entry->graph, entry->spare);  // restore the pre-delta graph
    slot.valid = false;  // part may be half-mutated; force scratch next time
    reg_.add(ids_.deadline_expired);
    write_error_frame(Status::kDeadlineExceeded,
                      "deadline expired during repartitioning", frame_out);
    return;
  } catch (const std::exception& e) {
    std::swap(entry->graph, entry->spare);
    slot.valid = false;
    write_error_frame(Status::kInternal, e.what(), frame_out);
    return;
  }

  // Commit: the entry now answers to the post-delta fingerprint only.
  entry->fingerprint = apply_.fingerprint;
  store_->rekey(entry, head.fingerprint, apply_.fingerprint);

  if (result.from_scratch) reg_.add(ids_.delta_fallbacks);
  reg_.add(ids_.responses_ok);
  encode_delta_response(apply_.fingerprint, result.from_scratch,
                        static_cast<std::uint8_t>(result.reason), slot.part, k,
                        slot.cut, /*cache_hit=*/false, body_);
  write_body_frame(MsgType::kDeltaResponse, frame_out);
}

void RequestHandler::write_error_frame(Status status, std::string_view message,
                                       std::vector<std::uint8_t>& frame_out) {
  encode_error_frame(status, message, frame_out);
}

void RequestHandler::write_response_frame(part_t k, bool cache_hit,
                                          std::vector<std::uint8_t>& frame_out) {
  encode_partition_response(part_, k, cut_, cache_hit, body_);
  frame_out.clear();
  frame_out.resize(kFrameHeaderBytes);
  FrameHeader h;
  h.type = MsgType::kPartitionResponse;
  h.payload_len = static_cast<std::uint32_t>(body_.size());
  encode_frame_header(h, frame_out.data());
  frame_out.insert(frame_out.end(), body_.begin(), body_.end());
}

void RequestHandler::write_body_frame(MsgType type,
                                      std::vector<std::uint8_t>& frame_out) {
  frame_out.clear();
  frame_out.resize(kFrameHeaderBytes);
  FrameHeader h;
  h.type = type;
  h.payload_len = static_cast<std::uint32_t>(body_.size());
  encode_frame_header(h, frame_out.data());
  frame_out.insert(frame_out.end(), body_.begin(), body_.end());
}

}  // namespace mgp::server
