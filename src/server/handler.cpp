#include "server/handler.hpp"

#include <exception>

#include "obs/trace.hpp"
#include "support/rng.hpp"

namespace mgp::server {

ServerMetrics::ServerMetrics(obs::MetricsRegistry& reg)
    : requests_total(reg.counter("server.requests")),
      responses_ok(reg.counter("server.responses_ok")),
      cache_hits(reg.counter("server.cache_hits")),
      cache_misses(reg.counter("server.cache_misses")),
      rejected_overloaded(reg.counter("server.rejected_overloaded")),
      deadline_expired(reg.counter("server.deadline_expired")),
      bad_requests(reg.counter("server.bad_requests")),
      connections_total(reg.counter("server.connections")),
      queue_depth_peak(reg.max_gauge("server.queue_depth_peak")) {}

RequestHandler::RequestHandler(WorkspacePool& pool, ResultCache& cache,
                               obs::MetricsRegistry& reg, const ServerMetrics& ids,
                               int direct_min_k)
    : pool_(pool), cache_(cache), reg_(reg), ids_(ids), direct_min_k_(direct_min_k) {}

void RequestHandler::handle(std::span<const std::uint8_t> payload,
                            std::chrono::steady_clock::time_point arrival,
                            std::vector<std::uint8_t>& frame_out) {
  obs::Span span("server.handle");
  reg_.add(ids_.requests_total);

  RequestHead head;
  err_.clear();
  Status st = decode_request_head(payload, head, err_);
  if (st != Status::kOk) {
    reg_.add(ids_.bad_requests);
    write_error_frame(st, err_, frame_out);
    return;
  }
  const auto k = static_cast<part_t>(head.k);

  // Cache identity is computed over the wire bytes, so a hit skips even
  // graph decoding.
  const CacheKey key = cache_key_of(payload);
  if (cache_.lookup(key, part_, cut_)) {
    reg_.add(ids_.cache_hits);
    reg_.add(ids_.responses_ok);
    write_response_frame(k, /*cache_hit=*/true, frame_out);
    return;
  }
  reg_.add(ids_.cache_misses);

  cancel_.reset();
  if (head.deadline_ms > 0) {
    cancel_.set_deadline(arrival + std::chrono::milliseconds(head.deadline_ms));
    if (cancel_.expired()) {  // budget burned while the request sat queued
      reg_.add(ids_.deadline_expired);
      write_error_frame(Status::kDeadlineExceeded,
                        "deadline expired before partitioning started", frame_out);
      return;
    }
  }

  st = decode_request_graph(payload, head, graph_, err_);
  if (st != Status::kOk) {
    reg_.add(ids_.bad_requests);
    write_error_frame(st, err_, frame_out);
    return;
  }

  MultilevelConfig cfg = config_from_head(head);
  if (head.deadline_ms > 0) cfg.cancel = &cancel_;
  // Exactly the offline driver's draw order: Rng(seed) and a single
  // next_u64 inside kway_partition_into, so the response bytes match
  // `partition_file --seed=S` for the same graph and scheme.
  Rng rng(head.seed);
  // kAuto picks direct k-way once k is large enough that recursive
  // bisection's O(log k) ladders dominate; an explicit mode always wins.
  // Both paths draw from the same single-seed Rng, so either response is
  // byte-identical to the offline CLI run of the matching scheme.
  const auto mode = static_cast<KwayMode>(head.kway_mode);
  const bool use_direct =
      mode == KwayMode::kDirect ||
      (mode == KwayMode::kAuto && static_cast<int>(k) >= direct_min_k_);
  try {
    WorkspacePool::Lease lease = pool_.checkout();
    if (use_direct) {
      KwayDirectConfig dcfg;
      dcfg.base = cfg;
      cut_ = kway_partition_direct_into(graph_, k, dcfg, rng, direct_ws_,
                                        lease.get(), part_);
    } else {
      cut_ = kway_partition_into(graph_, k, cfg, rng, scratch_, lease.get(), part_);
    }
  } catch (const CancelledError&) {
    reg_.add(ids_.deadline_expired);
    write_error_frame(Status::kDeadlineExceeded,
                      "deadline expired during partitioning", frame_out);
    return;
  } catch (const std::exception& e) {
    write_error_frame(Status::kInternal, e.what(), frame_out);
    return;
  }

  cache_.insert(key, part_, cut_);
  reg_.add(ids_.responses_ok);
  write_response_frame(k, /*cache_hit=*/false, frame_out);
}

void RequestHandler::write_error_frame(Status status, std::string_view message,
                                       std::vector<std::uint8_t>& frame_out) {
  encode_error_frame(status, message, frame_out);
}

void RequestHandler::write_response_frame(part_t k, bool cache_hit,
                                          std::vector<std::uint8_t>& frame_out) {
  encode_partition_response(part_, k, cut_, cache_hit, body_);
  frame_out.clear();
  frame_out.resize(kFrameHeaderBytes);
  FrameHeader h;
  h.type = MsgType::kPartitionResponse;
  h.payload_len = static_cast<std::uint32_t>(body_.size());
  encode_frame_header(h, frame_out.data());
  frame_out.insert(frame_out.end(), body_.begin(), body_.end());
}

}  // namespace mgp::server
