// Client library of the partitioning service.
//
// One Client owns one connection and speaks the lockstep request/response
// protocol of server/protocol.hpp: partition() sends a PartitionRequest and
// blocks for the matching response; stats() fetches the server's metrics
// snapshot.  Request options default to the paper configuration and the
// CLI's default seed, so an option-free call returns bytes identical to
// `partition_file <graph> <k>` run offline.
//
// Not thread-safe: one Client per thread (connections are cheap; the server
// multiplexes many).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dynamic/delta.hpp"
#include "graph/csr.hpp"
#include "server/net.hpp"
#include "server/protocol.hpp"

namespace mgp::server {

/// Outcome of one partition() call.
struct PartitionOutcome {
  Status status = Status::kInternal;
  std::vector<part_t> part;  ///< filled iff status == kOk
  ewt_t edge_cut = 0;
  bool cache_hit = false;
  std::string error;  ///< server/transport message when status != kOk
  bool ok() const { return status == Status::kOk; }
};

class Client {
 public:
  Client() = default;

  /// Invalid client + `err` on failure.
  static Client connect_unix(const std::string& path, std::string& err);
  static Client connect_tcp(const std::string& host, std::uint16_t port,
                            std::string& err);

  bool connected() const { return fd_.valid(); }

  /// Partitions `g` remotely.  Transport failures surface as kInternal with
  /// an explanatory message; the connection is then dead.
  PartitionOutcome partition(const Graph& g, const RequestOptions& opts);

  /// Outcome of one pin() call.
  struct PinOutcome {
    Status status = Status::kInternal;
    std::uint64_t fingerprint = 0;  ///< filled iff status == kOk
    bool already_pinned = false;
    std::string error;
    bool ok() const { return status == Status::kOk; }
  };

  /// Pins `g` in the server's GraphStore; the returned fingerprint names
  /// the graph in subsequent delta() calls.
  PinOutcome pin(const Graph& g);

  /// Outcome of one delta() call.
  struct DeltaOutcome {
    Status status = Status::kInternal;
    std::uint64_t fingerprint = 0;  ///< post-delta; use for the next delta()
    bool from_scratch = false;
    std::uint8_t reason = 0;  ///< dynamic::RepartitionResult::Reason
    std::vector<part_t> part;
    ewt_t edge_cut = 0;
    bool cache_hit = false;
    std::string error;
    bool ok() const { return status == Status::kOk; }
  };

  /// Applies `batch` to the pinned graph named by `fingerprint` and returns
  /// the repartitioned labelling.  kNotFound means the fingerprint is
  /// unknown (never pinned, evicted, or re-keyed) — re-pin and retry.
  /// opts.k/seed/scheme select the warm-start slot exactly as they key the
  /// result cache for plain partition requests.
  DeltaOutcome delta(std::uint64_t fingerprint, const dynamic::DeltaBatch& batch,
                     const RequestOptions& opts);

  /// Fetches the server's /stats JSON.  False + `err` on failure.
  bool stats(std::string& json_out, std::string& err);

 private:
  explicit Client(Fd fd) : fd_(std::move(fd)) {}

  Fd fd_;
  std::vector<std::uint8_t> request_;  ///< reused wire buffers
  std::vector<std::uint8_t> reply_;
};

}  // namespace mgp::server
