#include "server/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <sstream>
#include <utility>

#include "obs/json.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"

namespace mgp::server {

Server::Server(ServerConfig cfg)
    : cfg_(std::move(cfg)),
      ids_(registry_),
      cache_(cfg_.cache_capacity),
      store_(cfg_.store_max_bytes),
      queue_(cfg_.queue_capacity) {
  // The stop pipe exists from construction so request_stop() is always
  // safe, including from a signal handler installed before start().
  int fds[2] = {-1, -1};
  if (::pipe(fds) == 0) {
    stop_pipe_rd_ = Fd(fds[0]);
    stop_pipe_wr_ = Fd(fds[1]);
  }
}

Server::~Server() {
  request_stop();
  join();
}

bool Server::start(std::string& err) {
  if (!stop_pipe_rd_.valid()) {
    err = "could not create the stop pipe";
    return false;
  }
  if (!cfg_.unix_path.empty()) {
    listen_fd_ = listen_unix(cfg_.unix_path, err);
  } else {
    listen_fd_ = listen_tcp(cfg_.tcp_port, err);
    if (listen_fd_.valid()) bound_port_ = local_port(listen_fd_.get());
  }
  if (!listen_fd_.valid()) return false;

  worker_threads_.reserve(static_cast<std::size_t>(cfg_.num_workers));
  for (int i = 0; i < cfg_.num_workers; ++i) {
    worker_threads_.emplace_back([this] { worker_loop(); });
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
  started_ = true;
  return true;
}

void Server::request_stop() {
  stopping_.store(true, std::memory_order_release);
  if (stop_pipe_wr_.valid()) {
    const char byte = 1;
    // Single write of one byte: async-signal-safe, and a full pipe just
    // means a stop byte is already pending.
    [[maybe_unused]] ssize_t rc = ::write(stop_pipe_wr_.get(), &byte, 1);
  }
}

void Server::join() {
  if (!started_ || joined_) return;
  joined_ = true;
  if (accept_thread_.joinable()) accept_thread_.join();
  // Drain: half-close every live connection so its reader sees EOF once the
  // in-flight request stream ends; responses already queued still go out.
  std::vector<std::thread> tail;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    tail.reserve(conns_.size());
    for (auto& [id, slot] : conns_) {
      if (std::shared_ptr<Connection> c = slot.conn.lock()) {
        ::shutdown(c->fd.get(), SHUT_RD);
      }
      tail.push_back(std::move(slot.thread));
    }
    conns_.clear();
    finished_conns_.clear();
  }
  for (std::thread& t : tail) {
    if (t.joinable()) t.join();
  }
  queue_.close();  // workers finish the backlog, then exit
  for (std::thread& t : worker_threads_) {
    if (t.joinable()) t.join();
  }
  listen_fd_.reset();
  if (!cfg_.unix_path.empty()) ::unlink(cfg_.unix_path.c_str());
}

void Server::accept_loop() {
  for (;;) {
    pollfd fds[2] = {{listen_fd_.get(), POLLIN, 0}, {stop_pipe_rd_.get(), POLLIN, 0}};
    int rc;
    do {
      rc = ::poll(fds, 2, -1);
    } while (rc < 0 && errno == EINTR);
    if (rc < 0) break;
    if (fds[1].revents != 0) break;  // stop requested
    if ((fds[0].revents & POLLIN) == 0) continue;

    int cfd;
    do {
      cfd = ::accept(listen_fd_.get(), nullptr, nullptr);
    } while (cfd < 0 && errno == EINTR);
    if (cfd < 0) continue;

    obs::Span span("server.accept");
    registry_.add(ids_.connections_total);
    reap_finished_connections();  // churn must not accumulate dead threads
    auto conn = std::make_shared<Connection>(Fd(cfd));
    std::lock_guard<std::mutex> lock(conns_mu_);
    const std::uint64_t id = next_conn_id_++;
    ConnSlot& slot = conns_[id];
    slot.conn = conn;
    // The announcement below waits on conns_mu_, so the slot's thread
    // member is fully assigned before the id can appear in finished_conns_.
    slot.thread = std::thread([this, id, conn = std::move(conn)]() mutable {
      connection_loop(std::move(conn));
      std::lock_guard<std::mutex> fin_lock(conns_mu_);
      finished_conns_.push_back(id);
    });
  }
}

void Server::reap_finished_connections() {
  std::vector<std::thread> done;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    done.reserve(finished_conns_.size());
    for (std::uint64_t id : finished_conns_) {
      auto it = conns_.find(id);
      if (it == conns_.end()) continue;  // already drained by join()
      done.push_back(std::move(it->second.thread));
      conns_.erase(it);
    }
    finished_conns_.clear();
  }
  // Joins outside the lock: each thread announced itself as its final
  // statement, so these complete immediately and never touch conns_mu_.
  for (std::thread& t : done) {
    if (t.joinable()) t.join();
  }
}

std::size_t Server::connection_slots() const {
  std::lock_guard<std::mutex> lock(conns_mu_);
  return conns_.size();
}

void Server::connection_loop(std::shared_ptr<Connection> conn) {
  std::vector<std::uint8_t> payload;
  std::vector<std::uint8_t> scratch;  // inline error / stats frames
  for (;;) {
    FrameHeader header;
    const ReadFrameResult r =
        read_frame(conn->fd.get(), header, payload, cfg_.max_payload_bytes);
    if (r != ReadFrameResult::kOk) break;  // EOF, torn frame, or oversize
    const auto arrival = std::chrono::steady_clock::now();

    if (header.version != kProtocolVersion) {
      write_inline_error(*conn, Status::kUnsupportedVersion,
                         "unsupported protocol version", scratch);
      continue;
    }
    switch (header.type) {
      case MsgType::kStatsRequest:
        write_stats(*conn, scratch);
        continue;
      case MsgType::kPartitionRequest:
      case MsgType::kPinGraphRequest:
      case MsgType::kDeltaRequest: {
        if (stopping_.load(std::memory_order_acquire)) {
          write_inline_error(*conn, Status::kShuttingDown, "server is draining",
                             scratch);
          continue;
        }
        obs::Span span("server.queue");
        Job job{conn, std::move(payload), arrival, header.type};
        if (queue_.try_push(std::move(job))) {
          registry_.record_max(ids_.queue_depth_peak,
                               static_cast<std::int64_t>(queue_.size()));
        } else {
          // Backpressure: reject now rather than block the connection.
          payload = std::move(job.payload);
          registry_.add(ids_.rejected_overloaded);
          write_inline_error(*conn, Status::kOverloaded, "request queue is full",
                             scratch);
        }
        continue;
      }
      default:
        write_inline_error(*conn, Status::kBadRequest, "unknown message type",
                           scratch);
        continue;
    }
  }
}

void Server::worker_loop() {
  RequestHandler handler(wpool_, cache_, registry_, ids_, cfg_.direct_min_k,
                         &store_);
  std::vector<std::uint8_t> frame;
  while (std::optional<Job> job = queue_.pop()) {
    // Exception barrier: a throw escaping a thread is std::terminate, so
    // nothing a single request does may leave this try — the handler maps
    // partitioning failures itself, but decode resizes, cache insertion
    // under memory pressure, or a test hook can still throw.  The client
    // gets INTERNAL and the worker lives on.
    try {
      if (cfg_.test_on_dequeue) cfg_.test_on_dequeue();
      switch (job->type) {
        case MsgType::kPinGraphRequest:
          handler.handle_pin(job->payload, frame);
          break;
        case MsgType::kDeltaRequest:
          handler.handle_delta(job->payload, job->arrival, frame);
          break;
        default:
          handler.handle(job->payload, job->arrival, frame);
          break;
      }
    } catch (const std::exception& e) {
      encode_error_frame(Status::kInternal, e.what(), frame);
    } catch (...) {
      encode_error_frame(Status::kInternal, "unexpected worker failure", frame);
    }
    std::lock_guard<std::mutex> lock(job->conn->write_mu);
    send_all(job->conn->fd.get(), frame.data(), frame.size());
  }
}

void Server::write_inline_error(Connection& conn, Status status,
                                std::string_view message,
                                std::vector<std::uint8_t>& scratch) {
  if (status == Status::kBadRequest) registry_.add(ids_.bad_requests);
  encode_error_response(status, message, scratch);
  std::lock_guard<std::mutex> lock(conn.write_mu);
  write_frame(conn.fd.get(), MsgType::kErrorResponse, scratch);
}

void Server::write_stats(Connection& conn, std::vector<std::uint8_t>& scratch) {
  const std::string json = stats_json();
  encode_stats_response(json, scratch);
  std::lock_guard<std::mutex> lock(conn.write_mu);
  write_frame(conn.fd.get(), MsgType::kStatsResponse, scratch);
}

std::string Server::stats_json() const {
  std::ostringstream os;
  obs::JsonWriter w(os, /*indent=*/0);
  w.begin_object();
  w.key("metrics");
  obs::write_metrics_json(w, registry_.snapshot());
  const ResultCache::Stats cs = cache_.stats();
  w.key("cache");
  w.begin_object();
  w.kv("hits", static_cast<std::int64_t>(cs.hits));
  w.kv("misses", static_cast<std::int64_t>(cs.misses));
  w.kv("insertions", static_cast<std::int64_t>(cs.insertions));
  w.kv("evictions", static_cast<std::int64_t>(cs.evictions));
  w.kv("entries", static_cast<std::int64_t>(cache_.size()));
  w.end_object();
  const dynamic::GraphStore::Stats ss = store_.stats();
  w.key("store");
  w.begin_object();
  w.kv("pins", static_cast<std::int64_t>(ss.pins));
  w.kv("repins", static_cast<std::int64_t>(ss.repins));
  w.kv("evictions", static_cast<std::int64_t>(ss.evictions));
  w.kv("rejected", static_cast<std::int64_t>(ss.rejected));
  w.kv("entries", static_cast<std::int64_t>(ss.entries));
  w.kv("bytes", static_cast<std::int64_t>(ss.bytes));
  w.kv("max_bytes", static_cast<std::int64_t>(ss.max_bytes));
  w.end_object();
  w.key("queue");
  w.begin_object();
  w.kv("depth", static_cast<std::int64_t>(queue_.size()));
  w.kv("capacity", static_cast<std::int64_t>(queue_.capacity()));
  w.end_object();
  w.kv("workers", cfg_.num_workers);
  w.end_object();
  return os.str();
}

}  // namespace mgp::server
