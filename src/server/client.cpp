#include "server/client.hpp"

namespace mgp::server {
namespace {

constexpr std::size_t kMaxReplyBytes = std::size_t{1} << 30;

std::uint32_t label_at(std::span<const std::uint8_t> labels, std::size_t i) {
  const std::uint8_t* p = labels.data() + 4 * i;
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

Client Client::connect_unix(const std::string& path, std::string& err) {
  Fd fd = server::connect_unix(path, err);
  return fd.valid() ? Client(std::move(fd)) : Client();
}

Client Client::connect_tcp(const std::string& host, std::uint16_t port,
                           std::string& err) {
  Fd fd = server::connect_tcp(host, port, err);
  return fd.valid() ? Client(std::move(fd)) : Client();
}

PartitionOutcome Client::partition(const Graph& g, const RequestOptions& opts) {
  PartitionOutcome out;
  if (!fd_.valid()) {
    out.error = "not connected";
    return out;
  }
  encode_partition_request(g, opts, request_);
  if (!write_frame(fd_.get(), MsgType::kPartitionRequest, request_)) {
    out.error = "send failed (connection lost)";
    return out;
  }
  FrameHeader header;
  if (read_frame(fd_.get(), header, reply_, kMaxReplyBytes) != ReadFrameResult::kOk) {
    out.error = "no response (connection lost)";
    return out;
  }
  switch (header.type) {
    case MsgType::kPartitionResponse: {
      PartitionResponseView view;
      if (!decode_partition_response(reply_, view)) {
        out.error = "malformed partition response";
        return out;
      }
      out.status = Status::kOk;
      out.edge_cut = view.edge_cut;
      out.cache_hit = view.cache_hit;
      out.part.resize(static_cast<std::size_t>(view.n));
      for (std::size_t i = 0; i < out.part.size(); ++i) {
        out.part[i] = static_cast<part_t>(label_at(view.labels, i));
      }
      return out;
    }
    case MsgType::kErrorResponse: {
      if (!decode_error_response(reply_, out.status, out.error)) {
        out.error = "malformed error response";
        out.status = Status::kInternal;
      }
      return out;
    }
    default:
      out.error = "unexpected response type";
      return out;
  }
}

Client::PinOutcome Client::pin(const Graph& g) {
  PinOutcome out;
  if (!fd_.valid()) {
    out.error = "not connected";
    return out;
  }
  encode_pin_request(g, request_);
  if (!write_frame(fd_.get(), MsgType::kPinGraphRequest, request_)) {
    out.error = "send failed (connection lost)";
    return out;
  }
  FrameHeader header;
  if (read_frame(fd_.get(), header, reply_, kMaxReplyBytes) != ReadFrameResult::kOk) {
    out.error = "no response (connection lost)";
    return out;
  }
  switch (header.type) {
    case MsgType::kPinGraphResponse: {
      PinResponseView view;
      if (!decode_pin_response(reply_, view)) {
        out.error = "malformed pin response";
        return out;
      }
      out.status = Status::kOk;
      out.fingerprint = view.fingerprint;
      out.already_pinned = view.already_pinned;
      return out;
    }
    case MsgType::kErrorResponse: {
      if (!decode_error_response(reply_, out.status, out.error)) {
        out.error = "malformed error response";
        out.status = Status::kInternal;
      }
      return out;
    }
    default:
      out.error = "unexpected response type";
      return out;
  }
}

Client::DeltaOutcome Client::delta(std::uint64_t fingerprint,
                                   const dynamic::DeltaBatch& batch,
                                   const RequestOptions& opts) {
  DeltaOutcome out;
  if (!fd_.valid()) {
    out.error = "not connected";
    return out;
  }
  encode_delta_request(fingerprint, batch, opts, request_);
  if (!write_frame(fd_.get(), MsgType::kDeltaRequest, request_)) {
    out.error = "send failed (connection lost)";
    return out;
  }
  FrameHeader header;
  if (read_frame(fd_.get(), header, reply_, kMaxReplyBytes) != ReadFrameResult::kOk) {
    out.error = "no response (connection lost)";
    return out;
  }
  switch (header.type) {
    case MsgType::kDeltaResponse: {
      DeltaResponseView view;
      if (!decode_delta_response(reply_, view)) {
        out.error = "malformed delta response";
        return out;
      }
      out.status = Status::kOk;
      out.fingerprint = view.fingerprint;
      out.from_scratch = view.from_scratch;
      out.reason = view.reason;
      out.edge_cut = view.body.edge_cut;
      out.cache_hit = view.body.cache_hit;
      out.part.resize(static_cast<std::size_t>(view.body.n));
      for (std::size_t i = 0; i < out.part.size(); ++i) {
        out.part[i] = static_cast<part_t>(label_at(view.body.labels, i));
      }
      return out;
    }
    case MsgType::kErrorResponse: {
      if (!decode_error_response(reply_, out.status, out.error)) {
        out.error = "malformed error response";
        out.status = Status::kInternal;
      }
      return out;
    }
    default:
      out.error = "unexpected response type";
      return out;
  }
}

bool Client::stats(std::string& json_out, std::string& err) {
  if (!fd_.valid()) {
    err = "not connected";
    return false;
  }
  if (!write_frame(fd_.get(), MsgType::kStatsRequest, {})) {
    err = "send failed (connection lost)";
    return false;
  }
  FrameHeader header;
  if (read_frame(fd_.get(), header, reply_, kMaxReplyBytes) != ReadFrameResult::kOk) {
    err = "no response (connection lost)";
    return false;
  }
  if (header.type != MsgType::kStatsResponse ||
      !decode_stats_response(reply_, json_out)) {
    err = "malformed stats response";
    return false;
  }
  return true;
}

}  // namespace mgp::server
